// Package repro reproduces "Towards Hybrid Classical-Quantum Computation
// Structures in Wirelessly-Networked Systems" (Kim, Venturelli &
// Jamieson, HotNets 2020) as a self-contained Go library: Large MIMO
// detection reduced to Ising/QUBO form, a simulated D-Wave-2000Q-style
// quantum annealer with forward / reverse / forward-reverse schedules,
// the classical detector and heuristic baselines, the hybrid
// classical-quantum coordination structures, and a benchmark harness
// that regenerates every figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// hardware-substitution rationale, and EXPERIMENTS.md for the
// paper-vs-measured record. The library lives under internal/; the
// executables under cmd/ and examples/ are the public entry points.
package repro
