# Tier-1 gate: everything `make check` runs must stay green on every
# change (see ROADMAP.md). No external dependencies — Go toolchain only.

GO ?= go

.PHONY: check vet build test race race-fleet fuzz-smoke fmt

check: vet build test race race-fleet fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fleet scheduler's determinism and stress suites are the lock on the
# multi-QPU serving path; run them race-enabled and uncached every time.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet/

# Run every fuzz target's seed corpus (no open-ended fuzzing): catches
# regressions on the known-interesting inputs in CI time.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/...

fmt:
	gofmt -l .
