# Tier-1 gate: everything `make check` runs must stay green on every
# change (see ROADMAP.md). No external dependencies — Go toolchain only.

GO ?= go

# Per-claim anneal-read budget for the validation gate; CI passes a
# tighter cap than the local default so the leg stays inside its slot.
VALIDATE_MAX_READS ?= 30000

.PHONY: check vet build test race race-fleet race-cran race-hybrid race-ensemble fuzz-smoke slo fmt validate update-golden cover

check: vet build test race race-fleet race-cran race-hybrid race-ensemble fuzz-smoke slo

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fleet scheduler's determinism and stress suites are the lock on the
# multi-QPU serving path; run them race-enabled and uncached every time.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet/

# Same lock one level up: the C-RAN tier's cross-shard failover, shared
# telemetry merge, and determinism battery under the race detector.
race-cran:
	$(GO) test -race -count=1 ./internal/cran/

# Heterogeneous-backend stress: concurrent mixed-backend Serves with
# hybrid routing, mid-flight classical-backend death, cancellation, and
# the mixed-pool determinism battery — all under the race detector.
race-hybrid:
	$(GO) test -race -count=1 -run 'Hybrid|Hetero|Backend|Route' ./internal/fleet/

# Flexible-parallelism ensemble lock: the K×G arm planner and grouped
# batching, multi-initial-state prepared runs, fusion purity, and the
# ensemble determinism battery — all under the race detector.
race-ensemble:
	$(GO) test -race -count=1 -run 'Ensemble|FuseLLR|RunPreparedMulti|TopKCandidates|PlanArms|SpGrid' \
		./internal/core/ ./internal/mimo/ ./internal/annealer/ ./internal/fleet/ ./internal/pipeline/

# Run every fuzz target's seed corpus (no open-ended fuzzing): catches
# regressions on the known-interesting inputs in CI time.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/...

# SLO monitoring gate: the uncached monitor/alerting/health suite (this
# battery pins the no-perturbation and live==offline determinism
# contracts) plus a slotool smoke run over the committed trace fixture.
slo:
	$(GO) test -count=1 ./internal/slo/
	$(GO) run ./cmd/slotool -trace internal/slo/testdata/trace_small.jsonl -quiet > /dev/null

fmt:
	gofmt -l .

# Statistical gate: every paper claim must clear its bootstrap-CI gate
# and every figure metric must stay inside its golden baseline. Exits
# non-zero on any failed/inconclusive claim or drifted metric; the drift
# report lands in drift-report.json for artifact upload.
validate:
	$(GO) run ./cmd/experiments -validate -check-golden \
		-validate-max-reads $(VALIDATE_MAX_READS) -drift-report drift-report.json

# Explicit re-baselining after an intentional model change — review the
# results/golden/ diff before committing.
update-golden:
	$(GO) run ./cmd/experiments -update-golden

# Ratcheted per-package coverage floors (see scripts/check_coverage.sh).
cover:
	./scripts/check_coverage.sh
