// Paramsweep: Challenge 2 (optimal parameters). For one detection
// instance, sweep the reverse-anneal switch/pause location s_p over the
// paper's grid, print p★ and TTS(99%) per point — Figure 8's axes — and
// pick the operating point a base station commissioning procedure would
// deploy.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func main() {
	inst, err := instance.Synthesize(instance.Spec{
		Users: 8, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(99)
	init := qubo.GreedySearchIsing(inst.Reduction.Ising, qubo.OrderDescending)
	dIS := metrics.DeltaEForIsing(inst.Reduction.Ising,
		inst.Reduction.Ising.Energy(init), inst.GroundEnergy)
	fmt.Printf("8-user 16-QAM instance; greedy candidate ΔE_IS%% = %.2f\n", dIS)
	fmt.Printf("sweeping s_p over the paper's grid (0.25..0.97 step 0.04), 200 reads/point\n\n")

	sweep, err := core.SweepSp(inst.Reduction, init, inst.GroundEnergy,
		core.SpRange(), 200, 99, core.AnnealConfig{}, r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %8s %10s %9s  %s\n", "s_p", "p★", "TTS(99%)", "dur_us", "")
	for i, pt := range sweep.Points {
		bar := strings.Repeat("█", int(math.Round(pt.PStar*40)))
		mark := ""
		if i == sweep.Best {
			mark = "  ← best TTS"
		}
		tts := fmt.Sprintf("%10.1f", pt.TTS)
		if math.IsInf(pt.TTS, 1) {
			tts = "         ∞"
		}
		fmt.Printf("%6.2f %8.3f %s %9.2f  %s%s\n", pt.Sp, pt.PStar, tts, pt.Duration, bar, mark)
	}
	if best, ok := sweep.BestPoint(); ok {
		fmt.Printf("\ndeploy s_p = %.2f: p★ = %.3f, TTS(99%%) = %.1f μs\n", best.Sp, best.PStar, best.TTS)
		fmt.Println("(too high: fluctuations cannot repair the candidate; too low: the")
		fmt.Println(" candidate is wiped out — §4.3's discussion of the s_p trade-off)")
	} else {
		fmt.Println("\nno s_p on the grid found the optimum — increase reads")
	}
}
