// Codeduplink: the full link-layer loop around the hybrid detector. An
// information packet is convolutionally encoded (K=7, rate 1/2), mapped
// onto 16-QAM symbols across successive channel uses of a 4-user MIMO
// uplink, and detected per channel use by the GS→RA hybrid. The
// annealer's sample ensemble yields per-bit LLRs (core.SampleSoftOutput)
// which feed a soft-decision Viterbi decoder — against a hard-decision
// baseline from the same detector.
//
//	go run ./examples/codeduplink
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/rng"
)

const (
	users   = 4
	snrDB   = 11.0
	packets = 6
	infoLen = 118 // + 6 tail bits → 248 coded bits = 62 symbols… padded below
)

func main() {
	scheme := modulation.QAM16
	code := coding.NewConvCode133171()
	n0 := channel.NoiseVarianceForSNR(snrDB, users)
	bitsPerUse := users * scheme.BitsPerSymbol()
	r := rng.New(2027)

	fmt.Printf("coded uplink: %d users × %s, %.0f dB SNR, K=%d rate-1/2 code\n",
		users, scheme, snrDB, code.K)
	fmt.Printf("%d info bits/packet → %d coded bits → %d channel uses\n\n",
		infoLen, code.CodedLength(infoLen), (code.CodedLength(infoLen)+bitsPerUse-1)/bitsPerUse)

	var hardInfoErrs, softInfoErrs, rawCodedErrs, totalInfo, totalCoded int
	for pkt := 0; pkt < packets; pkt++ {
		pr := r.Split(uint64(pkt))
		info := randomBits(pr.SplitString("info"), infoLen)
		coded, err := code.Encode(info)
		if err != nil {
			log.Fatal(err)
		}
		// Pad the coded stream to a whole number of channel uses.
		padded := append([]int8(nil), coded...)
		for len(padded)%bitsPerUse != 0 {
			padded = append(padded, 0)
		}

		hardBits := make([]int8, 0, len(padded))
		llrs := make([]float64, 0, len(padded))
		for use := 0; use*bitsPerUse < len(padded); use++ {
			seg := padded[use*bitsPerUse : (use+1)*bitsPerUse]
			ur := pr.Split(uint64(use))
			red, out, spinLLRs, err := detectUse(seg, scheme, n0, ur)
			if err != nil {
				log.Fatal(err)
			}
			// Reorder per-spin values into bitstream order (user-major,
			// binary labeling).
			for u := 0; u < users; u++ {
				hard := scheme.DemodulateBinary(out.Symbols[u])
				for b := 0; b < scheme.BitsPerSymbol(); b++ {
					idx := mimo.BitLLR{User: u, Bit: b}.SpinIndex(red)
					llrs = append(llrs, spinLLRs[idx])
					hardBits = append(hardBits, hard[b])
				}
			}
		}
		rawCodedErrs += coding.BitErrors(hardBits[:len(coded)], coded)
		totalCoded += len(coded)

		hardDec, err := code.DecodeHard(hardBits[:len(coded)])
		if err != nil {
			log.Fatal(err)
		}
		softDec, err := code.DecodeSoft(llrs[:len(coded)])
		if err != nil {
			log.Fatal(err)
		}
		hardInfoErrs += coding.BitErrors(info, hardDec)
		softInfoErrs += coding.BitErrors(info, softDec)
		totalInfo += infoLen
	}

	fmt.Printf("raw detected coded-bit BER:         %.4f (%d/%d)\n",
		float64(rawCodedErrs)/float64(totalCoded), rawCodedErrs, totalCoded)
	fmt.Printf("info BER, hard-decision decoding:   %.4f (%d/%d)\n",
		float64(hardInfoErrs)/float64(totalInfo), hardInfoErrs, totalInfo)
	fmt.Printf("info BER, soft-decision (LLR) path: %.4f (%d/%d)\n",
		float64(softInfoErrs)/float64(totalInfo), softInfoErrs, totalInfo)
	fmt.Println("\n(the sample-ensemble LLRs carry detector confidence through to the")
	fmt.Println(" decoder — the soft path should match or beat hard slicing.)")
}

// detectUse transmits one channel use's coded bits and detects them with
// the hybrid, returning the reduction, the outcome, and per-spin LLRs.
func detectUse(bits []int8, scheme modulation.Scheme, n0 float64, r *rng.Source) (*mimo.Reduction, *core.Outcome, []float64, error) {
	x := make([]complex128, users)
	for u := 0; u < users; u++ {
		sym, err := scheme.ModulateBinary(bits[u*scheme.BitsPerSymbol() : (u+1)*scheme.BitsPerSymbol()])
		if err != nil {
			return nil, nil, nil, err
		}
		x[u] = sym
	}
	h := channel.Draw(channel.Rayleigh, r.SplitString("channel"), users, users)
	y := channel.Transmit(r.SplitString("noise"), h, x, n0)
	p := &mimo.Problem{H: h, Y: y, Scheme: scheme}
	red, err := mimo.Reduce(p)
	if err != nil {
		return nil, nil, nil, err
	}
	hy := &core.Hybrid{NumReads: 120}
	out, llrs, err := hy.SolveSoft(red, 0, r.SplitString("hybrid"))
	if err != nil {
		return nil, nil, nil, err
	}
	return red, out, llrs, nil
}

func randomBits(r *rng.Source, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		if r.Bool() {
			out[i] = 1
		}
	}
	return out
}
