// Softinfo: §3.1's "soft information to narrow the search space" made
// concrete. An MMSE front-end produces per-bit log-likelihood ratios;
// the receiver's most confident bit pairs become Figure 4 constraint
// terms on the detection QUBO; forward annealing then samples the
// constrained landscape. The example compares unconstrained vs
// constrained sampling — and shows the failure mode the paper warns
// about by deliberately inverting the priors.
//
//	go run ./examples/softinfo
package main

import (
	"fmt"
	"log"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func main() {
	const (
		users = 4
		snrDB = 16.0
		reads = 400
	)
	n0 := channel.NoiseVarianceForSNR(snrDB, users)
	inst, err := instance.Synthesize(instance.Spec{
		Users: users, Scheme: modulation.QAM16,
		Channel: channel.UnitGainRandomPhase, NoiseVariance: n0, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	red := inst.Reduction

	// 1. MMSE front-end: filtered (unsliced) estimate → per-bit LLRs.
	hh := inst.Problem.H.ConjTranspose()
	gram := hh.Mul(inst.Problem.H).AddScaledIdentity(complex(n0, 0))
	inv, err := gram.Inverse()
	if err != nil {
		log.Fatal(err)
	}
	xf := inv.Mul(hh).MulVec(inst.Problem.Y)
	llrs, err := mimo.SoftOutput(modulation.QAM16, xf, n0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The most confident bit pairs become Figure 4 constraints.
	cons := mimo.ConfidentConstraints(red, llrs, 4.0, 1.0, 4)
	fmt.Printf("%d confident bit pairs selected from %d LLRs (|LLR| threshold 4.0)\n",
		len(cons), len(llrs))
	for _, c := range cons {
		fmt.Printf("  spins (%d,%d) believed (%d,%d), weight %.1f\n",
			c.I, c.J, c.TargetI, c.TargetJ, c.Weight)
	}

	base := red.Ising.ToQUBO()
	sample := func(q *qubo.QUBO, label string) {
		prof := annealer.CalibratedProfile()
		fa, _ := annealer.Forward(1, 0.41, 1)
		res, err := annealer.Run(q.ToIsing(), annealer.Params{
			Schedule: fa, NumReads: reads, Profile: &prof, SweepsPerMicrosecond: 30,
		}, rng.New(77))
		if err != nil {
			log.Fatal(err)
		}
		// Score samples under the ORIGINAL objective.
		var mean float64
		hits := 0
		for _, s := range res.Samples {
			e := red.Ising.Energy(s.Spins)
			mean += metrics.DeltaEForIsing(red.Ising, e, inst.GroundEnergy)
			if e <= inst.GroundEnergy+1e-6 {
				hits++
			}
		}
		fmt.Printf("%-22s mean ΔE%% %6.2f   p★ %.3f\n",
			label, mean/float64(reads), float64(hits)/float64(reads))
	}

	fmt.Println()
	sample(base, "unconstrained FA:")
	sample(qubo.ApplyConstraints(base, cons), "with correct priors:")

	// 3. The paper's warning: invert the priors and the same machinery
	//    steers the search away from the optimum.
	wrong := make([]qubo.SoftConstraint, len(cons))
	for i, c := range cons {
		c.TargetI, c.TargetJ = 1-c.TargetI, 1-c.TargetJ
		c.Weight = 4.0
		wrong[i] = c
	}
	sample(qubo.ApplyConstraints(base, wrong), "with inverted priors:")
	fmt.Println("\n(§3.1: helpful when the prior is right, harmful when it is wrong —")
	fmt.Println(" and on analog hardware the safe weight is instance-dependent.)")
}
