// Largemimo: detection beyond the quantum device's capacity. A 12-user
// 64-QAM uplink reduces to 72 Ising spins — more than the 2000Q's
// 64-variable clique ceiling — so no single anneal can hold it. The
// block-decomposition hybrid (paper references [44, 58]) clamps most
// variables classically and reverse-anneals the most frustrated block
// from the incumbent, one QPU-sized subproblem at a time.
//
//	go run ./examples/largemimo
package main

import (
	"fmt"
	"log"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func main() {
	const users = 12
	const snrDB = 22.0
	inst, err := instance.Synthesize(instance.Spec{
		Users: users, Scheme: modulation.QAM64,
		Channel:       channel.UnitGainRandomPhase,
		NoiseVariance: channel.NoiseVarianceForSNR(snrDB, users),
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}
	spins := inst.Reduction.NumSpins()
	capacity := annealer.NewQPU2000Q().MaxProblemSize()
	fmt.Printf("12-user 64-QAM detection at %.0f dB SNR: %d Ising spins (QPU clique capacity: %d)\n",
		snrDB, spins, capacity)
	if spins <= capacity {
		log.Fatal("example misconfigured: problem fits the device")
	}

	is := inst.Reduction.Ising
	gs := qubo.GreedySearchIsing(is, qubo.OrderDescending)
	dGS := metrics.DeltaEForIsing(is, is.Energy(gs), inst.GroundEnergy)
	fmt.Printf("greedy candidate: ΔE_IS%% = %.2f\n\n", dGS)

	d := &core.Decomposition{
		BlockSize:     32, // each subproblem fits the device with room to spare
		Rounds:        3,
		ReadsPerBlock: 60,
	}
	out, err := d.Solve(inst.Reduction, rng.New(17))
	if err != nil {
		log.Fatal(err)
	}
	dBest := metrics.DeltaEForIsing(is, out.Best.Energy, inst.GroundEnergy)
	fmt.Printf("decomposition hybrid: ΔE%% = %.2f  (anneal time %.0f μs across %d block reads)\n",
		dBest, out.AnnealTime, len(out.Samples))
	fmt.Printf("symbol errors vs ML optimum: %d/%d\n",
		mimo.SymbolErrors(out.Symbols, inst.Optimal), users)

	// Classical baselines at the same problem size, for context.
	for _, det := range []mimo.Detector{mimo.ZeroForcing{}, mimo.KBest{K: 16}} {
		syms, err := det.Detect(inst.Problem)
		if err != nil {
			log.Fatal(err)
		}
		spinsB, _ := inst.Reduction.EncodeSymbols(syms)
		dB := metrics.DeltaEForIsing(is, is.Energy(spinsB), inst.GroundEnergy)
		fmt.Printf("%-8s baseline:  ΔE%% = %.2f, symbol errors vs ML %d/%d\n",
			det.Name(), dB, mimo.SymbolErrors(syms, inst.Optimal), users)
	}
}
