// Pipeline: Figure 2's staged classical-quantum processing of successive
// wireless channel uses. Frames arrive periodically; a CPU stage runs
// greedy search while the QPU stage reverse-anneals the PREVIOUS frame,
// so the two processor types overlap. The example prints the modelled
// schedule, per-frame latencies against an ARQ deadline, and the
// throughput gain over serial execution.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/pipeline"
	"repro/internal/rng"

	"repro/internal/modulation"
)

func main() {
	const (
		users          = 4
		frames         = 10
		arrivalMicros  = 150.0  // channel-use spacing
		deadlineMicros = 2000.0 // ARQ turn-around budget
	)
	insts, err := instance.Corpus(instance.Spec{
		Users: users, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
	}, 31, frames)
	if err != nil {
		log.Fatal(err)
	}

	stages := []pipeline.Stage{
		&pipeline.ClassicalStage{
			Rng: rng.New(1),
			// Model a heavier classical module (e.g. K-best) so the
			// overlap with the quantum stage is visible.
			MicrosFor: func(n int) float64 { return 70 },
		},
		&pipeline.QuantumStage{
			NumReads: 60,
			Config:   core.AnnealConfig{},
			Rng:      rng.New(2),
		},
	}
	p := &pipeline.Pipeline{Stages: stages, BufferSize: 1}

	fr, err := pipeline.GenerateFrames(insts, arrivalMicros, deadlineMicros)
	if err != nil {
		log.Fatal(err)
	}
	processed, err := p.Run(fr)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := p.Schedule(processed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline: %v, %d channel uses arriving every %.0f μs\n",
		rep.StageNames, frames, arrivalMicros)
	fmt.Printf("%5s %10s %10s %10s %10s %8s %6s\n",
		"frame", "arrive_us", "cpu_start", "qpu_start", "finish", "lat_us", "ok")
	for i, ft := range rep.Frames {
		pl := processed[i].Payload.(*pipeline.DetectionPayload)
		ok := "yes"
		if ft.Missed || pl.SymbolErrors > 0 {
			ok = "NO"
		}
		fmt.Printf("%5d %10.0f %10.0f %10.0f %10.0f %8.0f %6s\n",
			ft.Seq, ft.Arrival, ft.Start[0], ft.Start[1], ft.Finish[1], ft.Latency, ok)
	}
	fmt.Printf("\nthroughput: %.0f frames/s  mean latency: %.0f μs  p95: %.0f μs\n",
		rep.ThroughputPerSecond, rep.MeanLatency, rep.P95Latency)
	fmt.Printf("deadline misses: %.0f%%  stage utilization: cpu %.0f%%, qpu %.0f%%\n",
		rep.DeadlineMissRate*100, rep.Utilization[0]*100, rep.Utilization[1]*100)
}
