// Basestation: an end-to-end uplink simulation. Users transmit random
// bits over a noisy channel for many channel uses; the base station
// detects each frame with several detectors — the linear and tree-search
// classical baselines and the GS→RA hybrid — and the example reports
// per-detector bit error rates and ML-optimality rates.
//
//	go run ./examples/basestation
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/rng"
)

const (
	users  = 6
	frames = 20
	snrDB  = 14.0
)

func main() {
	scheme := modulation.QAM16
	n0 := channel.NoiseVarianceForSNR(snrDB, users)
	insts, err := instance.Corpus(instance.Spec{
		Users: users, Scheme: scheme, Channel: channel.Rayleigh, NoiseVariance: n0,
	}, 99, frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uplink: %d users, %s, Rayleigh fading, %d frames at %.0f dB SNR\n",
		users, scheme, frames, snrDB)

	type detectFn func(in *instance.Instance, r *rng.Source) ([]complex128, error)
	r := rng.New(2024)
	hybrid := func(in *instance.Instance, r *rng.Source) ([]complex128, error) {
		out, err := (&core.Hybrid{NumReads: 150}).Solve(in.Reduction, r)
		if err != nil {
			return nil, err
		}
		return out.Symbols, nil
	}
	classical := func(d mimo.Detector) detectFn {
		return func(in *instance.Instance, _ *rng.Source) ([]complex128, error) {
			return d.Detect(in.Problem)
		}
	}
	detectors := []struct {
		name string
		fn   detectFn
	}{
		{"zf", classical(mimo.ZeroForcing{})},
		{"mmse", classical(mimo.MMSE{NoiseVariance: n0})},
		{"kbest16", classical(mimo.KBest{K: 16})},
		{"fcsd", classical(mimo.FCSD{FullExpansion: 2})},
		{"sd (ML)", classical(mimo.SphereDecoder{})},
		{"gs+ra", hybrid},
	}

	totalBits := frames * users * scheme.BitsPerSymbol()
	fmt.Printf("%-8s  %10s  %12s  %10s\n", "detector", "bit errors", "BER", "ML-optimal")
	for _, det := range detectors {
		bitErrs, mlHits := 0, 0
		for fi, in := range insts {
			syms, err := det.fn(in, r.SplitString(fmt.Sprintf("%s/%d", det.name, fi)))
			if err != nil {
				log.Fatalf("%s frame %d: %v", det.name, fi, err)
			}
			bitErrs += mimo.BitErrors(scheme, syms, in.Transmitted)
			// ML-optimality: the detector found a point at least as good
			// as the exact ML optimum's objective.
			if in.Problem.Objective(syms) <= in.Problem.Objective(in.Optimal)+1e-9 {
				mlHits++
			}
		}
		fmt.Printf("%-8s  %10d  %12.5f  %7d/%d\n",
			det.name, bitErrs, float64(bitErrs)/float64(totalBits), mlHits, frames)
	}
	fmt.Println("\n(sd is exact ML; the hybrid aims to match it within its anneal budget,")
	fmt.Println(" while zf/mmse trade optimality for a single matrix inversion.)")
}
