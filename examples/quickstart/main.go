// Quickstart: solve one Large MIMO detection problem with the paper's
// hybrid classical-quantum prototype (Greedy Search → Reverse Annealing).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/rng"
)

func main() {
	// 1. Synthesize a detection instance: 8 users sending 16-QAM symbols
	//    over a unit-gain random-phase channel (§4.2's workload).
	inst, err := instance.Synthesize(instance.Spec{
		Users:   8,
		Scheme:  modulation.QAM16,
		Channel: channel.UnitGainRandomPhase,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: recover %d symbols from y = Hx (%d-spin Ising form)\n",
		inst.Spec.Users, inst.Reduction.NumSpins())

	// 2. Solve with the hybrid: greedy search produces a candidate, which
	//    programs the initial state of a reverse anneal on the simulated
	//    quantum annealer; the best sample is the detection.
	hybrid := &core.Hybrid{NumReads: 200}
	out, err := hybrid.Solve(inst.Reduction, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	dInit := metrics.DeltaEForIsing(inst.Reduction.Ising, out.InitialEnergy, inst.GroundEnergy)
	dBest := metrics.DeltaEForIsing(inst.Reduction.Ising, out.Best.Energy, inst.GroundEnergy)
	fmt.Printf("greedy candidate quality ΔE_IS%%: %.2f\n", dInit)
	fmt.Printf("hybrid best sample   ΔE%%:      %.2f\n", dBest)
	fmt.Printf("quantum time: %d reads × %.2f μs = %.0f μs\n",
		len(out.Samples), out.ScheduleDuration, out.AnnealTime)
	fmt.Printf("symbol errors: %d/%d\n",
		mimo.SymbolErrors(out.Symbols, inst.Transmitted), inst.Spec.Users)
}
