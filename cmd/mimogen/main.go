// Command mimogen synthesizes MIMO detection instance corpora and writes
// them as JSON files consumable by cmd/annealsim and the instance
// package — the workload-generation half of the benchmark harness.
//
// Usage:
//
//	mimogen -users 8 -mod 16qam -count 20 -out corpus/
//	mimogen -users 12 -mod 64qam -snr 22 -corr 0.5 -channel rayleigh -out corpus/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/channel"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

func main() {
	var (
		users   = flag.Int("users", 8, "number of users / transmit antennas")
		ants    = flag.Int("antennas", 0, "receive antennas (0 = users)")
		mod     = flag.String("mod", "16qam", "modulation: bpsk|qpsk|16qam|64qam")
		chName  = flag.String("channel", "unitgain", "channel model: unitgain|rayleigh")
		snr     = flag.Float64("snr", -1, "receive SNR in dB (-1 = noiseless)")
		corr    = flag.Float64("corr", 0, "Kronecker antenna correlation (rayleigh only)")
		count   = flag.Int("count", 10, "instances to generate")
		seed    = flag.Uint64("seed", 2020, "corpus base seed")
		out     = flag.String("out", "corpus", "output directory")
		summary = flag.Bool("summary", true, "print per-instance summary")
	)
	flag.Parse()

	scheme, err := modulation.ParseScheme(*mod)
	if err != nil {
		fatalf("%v", err)
	}
	var model channel.Model
	switch *chName {
	case "unitgain":
		model = channel.UnitGainRandomPhase
	case "rayleigh":
		model = channel.Rayleigh
	default:
		fatalf("unknown channel %q (unitgain|rayleigh)", *chName)
	}
	n0 := 0.0
	if *snr >= 0 {
		n0 = channel.NoiseVarianceForSNR(*snr, *users)
	}
	spec := instance.Spec{
		Users: *users, Antennas: *ants, Scheme: scheme, Channel: model,
		NoiseVariance: n0, Correlation: *corr,
	}
	insts, err := instance.Corpus(spec, *seed, *count)
	if err != nil {
		fatalf("synthesize: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	for i, in := range insts {
		data, err := json.MarshalIndent(in, "", " ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		name := fmt.Sprintf("%s_%du_%02d.json", *mod, *users, i)
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatalf("write %s: %v", path, err)
		}
		if *summary {
			gs := qubo.GreedySearchIsing(in.Reduction.Ising, qubo.OrderDescending)
			d := metrics.DeltaEForIsing(in.Reduction.Ising, in.Reduction.Ising.Energy(gs), in.GroundEnergy)
			kappa, _ := in.Problem.H.ConditionNumber()
			fmt.Printf("%-24s %2d spins  κ=%7.2f  GS ΔE_IS%%=%6.2f\n",
				name, in.Reduction.NumSpins(), kappa, d)
		}
	}
	fmt.Printf("wrote %d instances to %s/\n", len(insts), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mimogen: "+format+"\n", args...)
	os.Exit(1)
}
