// Command mimogen synthesizes MIMO detection instance corpora and writes
// them as JSON files consumable by cmd/annealsim and the instance
// package — the workload-generation half of the benchmark harness.
//
// Usage:
//
//	mimogen -users 8 -mod 16qam -count 20 -out corpus/
//	mimogen -users 12 -mod 64qam -snr 22 -corr 0.5 -channel rayleigh -out corpus/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/channel"
	"repro/internal/cli"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/telemetry"
)

func main() {
	log := cli.New("mimogen")
	log.RegisterVerbosity()
	tel := cli.RegisterTelemetry()
	var (
		users   = flag.Int("users", 8, "number of users / transmit antennas")
		ants    = flag.Int("antennas", 0, "receive antennas (0 = users)")
		mod     = flag.String("mod", "16qam", "modulation: bpsk|qpsk|16qam|64qam")
		chName  = flag.String("channel", "unitgain", "channel model: unitgain|rayleigh")
		snr     = flag.Float64("snr", -1, "receive SNR in dB (-1 = noiseless)")
		corr    = flag.Float64("corr", 0, "Kronecker antenna correlation (rayleigh only)")
		count   = flag.Int("count", 10, "instances to generate")
		seed    = flag.Uint64("seed", 2020, "corpus base seed")
		out     = flag.String("out", "corpus", "output directory")
		summary = flag.Bool("summary", true, "print per-instance summary")
	)
	flag.Parse()
	if err := tel.Start("mimogen", log); err != nil {
		log.Fatalf("%v", err)
	}

	scheme, err := modulation.ParseScheme(*mod)
	if err != nil {
		log.Fatalf("%v", err)
	}
	var model channel.Model
	switch *chName {
	case "unitgain":
		model = channel.UnitGainRandomPhase
	case "rayleigh":
		model = channel.Rayleigh
	default:
		log.Fatalf("unknown channel %q (unitgain|rayleigh)", *chName)
	}
	n0 := 0.0
	if *snr >= 0 {
		n0 = channel.NoiseVarianceForSNR(*snr, *users)
	}
	spec := instance.Spec{
		Users: *users, Antennas: *ants, Scheme: scheme, Channel: model,
		NoiseVariance: n0, Correlation: *corr,
	}
	insts, err := instance.Corpus(spec, *seed, *count)
	if err != nil {
		log.Fatalf("synthesize: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("%v", err)
	}
	for i, in := range insts {
		data, err := json.MarshalIndent(in, "", " ")
		if err != nil {
			log.Fatalf("marshal: %v", err)
		}
		name := fmt.Sprintf("%s_%du_%02d.json", *mod, *users, i)
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		gs := qubo.GreedySearchIsing(in.Reduction.Ising, qubo.OrderDescending)
		d := metrics.DeltaEForIsing(in.Reduction.Ising, in.Reduction.Ising.Energy(gs), in.GroundEnergy)
		kappa, _ := in.Problem.H.ConditionNumber()
		if tel.Registry != nil {
			lbl := telemetry.Label{Key: "mod", Value: *mod}
			tel.Registry.Counter("mimogen_instances_total", lbl).Inc()
			tel.Registry.Histogram("mimogen_condition_number", 0, 50, 25, lbl).Observe(kappa)
			tel.Registry.Histogram("mimogen_greedy_delta_e_pct", 0, 100, 20, lbl).Observe(d)
		}
		if *summary {
			fmt.Printf("%-24s %2d spins  κ=%7.2f  GS ΔE_IS%%=%6.2f\n",
				name, in.Reduction.NumSpins(), kappa, d)
		}
	}
	fmt.Printf("wrote %d instances to %s/\n", len(insts), *out)
	if err := tel.Flush(log); err != nil {
		log.Fatalf("telemetry: %v", err)
	}
}
