// Command slotool is the offline SLO analyzer: it reads a simulated-clock
// JSONL trace (written by any command's -trace-out flag), reconstructs the
// serving tier's service levels, burn-rate alert timeline, per-device
// health scores, and per-frame critical paths, and renders the text
// dashboard.
//
// Because the analysis runs over the trace sorted into the exporter's
// deterministic order, slotool's output over an exported trace is
// bit-identical to what a live slo.Monitor attached to the same run
// reports — the trace file IS the monitoring stream.
//
// Usage:
//
//	slotool -trace run.jsonl                       # dashboard to stdout
//	slotool -trace run.jsonl -p99 50000 -tick 5000 # tune SLOs and windows
//	slotool -trace run.jsonl -alerts alerts.jsonl  # export alert timeline
//	slotool -trace corrupt.jsonl -lenient          # tolerate damaged lines
//
// Exit status: 0 on success, 1 on unreadable input or (strict mode) a
// malformed trace line.
package main

import (
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/slo"
)

func main() {
	log := cli.New("slotool")
	log.RegisterVerbosity()
	var (
		trace        = flag.String("trace", "", "JSONL trace file to analyze (required; - reads stdin)")
		tick         = flag.Float64("tick", 5000, "tumbling window width in simulated μs")
		slide        = flag.Int("slide", 4, "sliding window length in ticks")
		p99          = flag.Float64("p99", 50_000, "p99 frame-latency target in μs (0 disables the latency SLOs)")
		availability = flag.Float64("availability", 0.001, "availability error budget (0 disables the availability SLOs)")
		shed         = flag.Float64("shed", 0.01, "shed-rate error budget (0 disables the shed SLOs)")
		top          = flag.Int("top", 10, "slowest frames to detail with critical paths")
		alerts       = flag.String("alerts", "", "also write the alert transition timeline to this JSONL file")
		lenient      = flag.Bool("lenient", false, "skip malformed trace lines instead of aborting")
	)
	flag.Parse()
	if *trace == "" {
		log.Fatalf("-trace is required (see -h)")
	}

	in := os.Stdin
	if *trace != "-" {
		f, err := os.Open(*trace)
		if err != nil {
			log.Fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	records, stats, err := slo.ParseTrace(in, !*lenient)
	if err != nil {
		log.Fatalf("%v", err)
	}
	log.Debugf("parsed %d records from %d lines", stats.Records, stats.Lines)
	if stats.Skipped > 0 {
		log.Infof("skipped %d malformed line(s)", stats.Skipped)
	}
	if stats.Duplicates > 0 {
		log.Infof("input has %d duplicated line(s) — possibly a doubly-concatenated trace", stats.Duplicates)
	}
	if stats.OutOfOrder > 0 {
		log.Debugf("restored order across %d inversion(s)", stats.OutOfOrder)
	}

	var specs []slo.Spec
	for _, sp := range slo.DefaultSpecs(*p99) {
		switch sp.Kind {
		case slo.KindLatency:
			if *p99 <= 0 {
				continue
			}
		case slo.KindAvailability:
			if *availability <= 0 {
				continue
			}
			sp.Budget = *availability
		case slo.KindShed:
			if *shed <= 0 {
				continue
			}
			sp.Budget = *shed
		}
		specs = append(specs, sp)
	}

	snap, err := slo.Analyze(records, slo.Config{
		TickMicros: *tick,
		SlideTicks: *slide,
		Specs:      specs,
		TopSlow:    *top,
	})
	if err != nil {
		log.Fatalf("%v", err)
	}
	if err := snap.WriteDashboard(os.Stdout); err != nil {
		log.Fatalf("%v", err)
	}
	if *alerts != "" {
		f, err := os.Create(*alerts)
		if err != nil {
			log.Fatalf("%v", err)
		}
		if err := slo.WriteAlertsJSONL(f, snap.Alerts); err != nil {
			f.Close()
			log.Fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("%v", err)
		}
		log.Infof("wrote %d alert transition(s) to %s", len(snap.Alerts), *alerts)
	}
}
