// Command annealsim runs the simulated quantum annealer on a standalone
// QUBO/Ising problem — either a random spin glass or an instance file
// produced by the instance package — under any of the FA/RA/FR schedules,
// and reports sample statistics.
//
// Usage:
//
//	annealsim -spins 24 -schedule fa -reads 500
//	annealsim -spins 24 -schedule ra -sp 0.45 -reads 500
//	annealsim -instance inst.json -schedule fr -cp 0.7 -sp 0.4
//	annealsim -spins 16 -schedule ra -engine pimc -embed
//	annealsim -spins 24 -schedule ra -fault-timeout 0.3 -fault-storm 0.2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/annealer"
	"repro/internal/cli"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func main() {
	log := cli.New("annealsim")
	log.RegisterVerbosity()
	tel := cli.RegisterTelemetry()
	var (
		spins    = flag.Int("spins", 24, "random spin-glass size (ignored with -instance)")
		instPath = flag.String("instance", "", "JSON instance file (from the instance package)")
		schedule = flag.String("schedule", "ra", "anneal schedule: fa|ra|fr")
		sp       = flag.Float64("sp", 0.45, "pause / switch location s_p")
		cp       = flag.Float64("cp", 0.7, "FR forward turn point c_p")
		ta       = flag.Float64("ta", 1, "anneal time t_a (μs)")
		tp       = flag.Float64("tp", 1, "pause time t_p (μs)")
		reads    = flag.Int("reads", 500, "number of anneal reads N_s")
		engine   = flag.String("engine", "svmc", "dynamics engine: svmc|svmc-tf|pimc")
		embed    = flag.Bool("embed", false, "run through the Chimera-embedded QPU model")
		seed     = flag.Uint64("seed", 1, "random seed")
		ice      = flag.Bool("ice", false, "apply 2000Q-typical control-error noise")
		plot     = flag.Bool("plot", false, "render the anneal schedule (Figure 5 style)")

		faultProg    = flag.Float64("fault-prog", 0, "programming-failure probability per call")
		faultTimeout = flag.Float64("fault-timeout", 0, "per-read timeout probability")
		faultStorm   = flag.Float64("fault-storm", 0, "per-read chain-break-storm probability")
		faultDrift   = flag.Float64("fault-drift", 0, "per-read calibration-drift probability")
		probe        = flag.Bool("probe", false, "record sweep-level engine observations into -trace-out/-metrics-out")
	)
	flag.Parse()
	if err := tel.Start("annealsim", log); err != nil {
		log.Fatalf("%v", err)
	}

	is, ground, err := loadProblem(*instPath, *spins, *seed)
	if err != nil {
		log.Fatalf("%v", err)
	}
	fmt.Printf("problem: %d spins, %d couplings, ground energy %.6g\n", is.N, is.NumEdges(), ground)

	var sc *annealer.Schedule
	switch *schedule {
	case "fa":
		sc, err = annealer.Forward(*ta, *sp, *tp)
	case "ra":
		sc, err = annealer.Reverse(*sp, *tp)
	case "fr":
		sc, err = annealer.ForwardReverse(*cp, *sp, *tp, *ta)
	default:
		err = fmt.Errorf("unknown schedule %q (fa|ra|fr)", *schedule)
	}
	if err != nil {
		log.Fatalf("%v", err)
	}
	fmt.Printf("schedule: %s, duration %.2f μs, points %v\n", sc.Kind, sc.Duration(), sc.Points)
	if *plot {
		fmt.Print(sc.Render(60, 12))
	}

	params := annealer.Params{
		Schedule: sc,
		NumReads: *reads,
	}
	prof := annealer.CalibratedProfile()
	params.Profile = &prof
	switch *engine {
	case "svmc":
		params.Engine = annealer.SVMC{}
	case "svmc-tf":
		params.Engine = annealer.SVMC{TFMoves: true}
	case "pimc":
		params.Engine = annealer.PIMC{}
	default:
		log.Fatalf("unknown engine %q (svmc|svmc-tf|pimc)", *engine)
	}
	if *ice {
		params.ICE = annealer.DWave2000QICE()
	}
	params.Faults = annealer.FaultModel{
		ProgrammingFailureRate: *faultProg,
		ReadTimeoutRate:        *faultTimeout,
		ChainBreakStormRate:    *faultStorm,
		CalibrationDriftRate:   *faultDrift,
	}
	params.Trace = tel.Tracer
	params.Metrics = tel.Registry
	if *probe {
		params.Probe = &annealer.MetricsProbe{Trace: tel.Tracer, Metrics: tel.Registry, Engine: *engine}
	}
	if sc.StartsClassical() {
		// Initialize RA with the greedy candidate, as the hybrid does.
		params.InitialState = qubo.GreedySearchIsing(is, qubo.OrderDescending)
		fmt.Printf("RA initial state: greedy search, energy %.6g\n", is.Energy(params.InitialState))
	}

	r := rng.New(*seed ^ 0x5117)
	var res *annealer.Result
	if *embed {
		res, err = annealer.NewQPU2000Q().Run(is, params, r)
	} else {
		res, err = annealer.Run(is, params, r)
	}
	if err != nil {
		if fe, ok := annealer.AsFault(err); ok {
			log.Fatalf("run lost to injected fault: %s (retry or fall back to a classical answer)", fe.Kind)
		}
		log.Fatalf("run: %v", err)
	}
	if params.Faults.Enabled() {
		fmt.Printf("injected faults: %d read timeouts, %d chain-break storms, %d calibration drifts (%d/%d reads survived)\n",
			res.Faults.ReadTimeouts, res.Faults.ChainBreakStorms, res.Faults.CalibrationDrifts,
			len(res.Samples), *reads)
	}

	var energies []float64
	for _, s := range res.Samples {
		energies = append(energies, s.Energy)
	}
	p := metrics.SuccessProbability(res.Samples, ground, 1e-6)
	fmt.Printf("reads: %d, total anneal time %.1f μs\n", len(res.Samples), res.TotalAnnealTime)
	fmt.Printf("best energy: %.6g (ground %.6g)\n", res.Best.Energy, ground)
	fmt.Printf("energy mean/median/p95: %.6g / %.6g / %.6g\n",
		metrics.Mean(energies), metrics.Median(energies), metrics.Percentile(energies, 95))
	fmt.Printf("p★ (ground-state probability): %.4f\n", p)
	if p > 0 {
		fmt.Printf("TTS(99%%): %.2f μs\n", metrics.TTS(sc.Duration(), p, 99))
	} else {
		fmt.Println("TTS(99%): ∞ (ground state never sampled)")
	}
	if *embed {
		fmt.Printf("broken-chain rate: %.4f\n", res.BrokenChainRate)
	}
	if err := tel.Flush(log); err != nil {
		log.Fatalf("telemetry: %v", err)
	}
}

// loadProblem returns the Ising problem and its ground-energy witness.
func loadProblem(path string, spins int, seed uint64) (*qubo.Ising, float64, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		var in instance.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, 0, fmt.Errorf("parse %s: %w", path, err)
		}
		return in.Reduction.Ising, in.GroundEnergy, nil
	}
	// Random spin glass with N(0,1) fields and couplings.
	r := rng.New(seed)
	is := qubo.NewIsing(spins)
	for i := 0; i < spins; i++ {
		is.H[i] = r.NormFloat64() * 0.3
		for j := i + 1; j < spins; j++ {
			is.SetCoupling(i, j, r.NormFloat64()*0.5)
		}
	}
	var ground float64
	if spins <= qubo.MaxExhaustiveVars {
		g, err := qubo.ExhaustiveIsing(is)
		if err != nil {
			return nil, 0, err
		}
		ground = g.Energy
	} else {
		ground = qubo.MultiStartGroundEstimate(is, r, 8).Energy
	}
	return is, ground, nil
}
