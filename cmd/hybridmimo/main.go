// Command hybridmimo synthesizes a MIMO detection instance and solves it
// with any of the repository's detectors and hybrid solvers, printing the
// recovered symbols, solution quality (ΔE%), and timing.
//
// Usage:
//
//	hybridmimo -users 8 -mod 16qam -solver gs+ra
//	hybridmimo -users 12 -mod qpsk -solver sd -snr 20
//	hybridmimo -users 8 -mod 16qam -solver gs+ra -sweep   # s_p sweep
//
// Fleet-served runs (-fleet-devices > 0) can additionally emit the SLO
// monitoring dashboard with the shared telemetry flag -slo-report (see
// internal/slo and cmd/slotool for the offline path over -trace-out):
//
//	hybridmimo -users 8 -solver gs+ra -fleet-devices 4 -slo-report slo.txt
//
// Mixed-backend pools spell out each worker's kind and can route by
// instance hardness and deadline slack:
//
//	hybridmimo -users 8 -fleet-backends qpu,qpu,pt,sa -fleet-route hybrid
//
// Solvers: ml, zf, mmse, sd, kbest, fcsd, gs, sa, tabu, pt (classical);
// fa, fr, gs+ra, zf+ra, random+ra, fa+descent, co, decomp, persist
// (annealer-based).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cran"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func main() {
	log := cli.New("hybridmimo")
	log.RegisterQuiet() // -v already means per-sample details here
	tel := cli.RegisterTelemetry()
	var (
		users   = flag.Int("users", 8, "number of users / transmit antennas")
		mod     = flag.String("mod", "16qam", "modulation: bpsk|qpsk|16qam|64qam")
		solver  = flag.String("solver", "gs+ra", "solver name (see doc comment)")
		snr     = flag.Float64("snr", -1, "receive SNR in dB (-1 = noiseless, the paper's setting)")
		seed    = flag.Uint64("seed", 1, "instance seed")
		reads   = flag.Int("reads", 200, "anneal reads for quantum solvers")
		sp      = flag.Float64("sp", 0.45, "RA switch/pause location")
		sweep   = flag.Bool("sweep", false, "sweep s_p and report the best operating point")
		embed   = flag.Bool("embed", false, "run anneals through the Chimera-embedded QPU model")
		verbose = flag.Bool("v", false, "print per-sample details")

		faultProg     = flag.Float64("fault-prog", 0, "QPU programming-failure probability per call")
		faultTimeout  = flag.Float64("fault-timeout", 0, "per-read timeout probability")
		faultStorm    = flag.Float64("fault-storm", 0, "per-read chain-break-storm probability")
		faultDrift    = flag.Float64("fault-drift", 0, "per-read calibration-drift probability")
		fallback      = flag.Bool("fallback", false, "answer with the classical candidate when the quantum stage faults (gs+ra/zf+ra/random+ra)")
		probe         = flag.Bool("probe", false, "record sweep-level engine observations into -trace-out/-metrics-out")
		fleetDevices  = flag.Int("fleet-devices", 0, "serve the instance through a simulated multi-QPU fleet of this size (0 = direct solve)")
		fleetPolicy   = flag.String("fleet-policy", "least-loaded", "fleet scheduling policy: least-loaded|round-robin|edf")
		fleetBackends = flag.String("fleet-backends", "", "serve through an explicit mixed-backend pool, e.g. qpu,qpu,pt,sa (overrides -fleet-devices)")
		fleetRoute    = flag.String("fleet-route", "any", "fleet routing policy: any|hybrid (hardness/deadline-aware)")
		cranShards    = flag.Int("cran-shards", 0, "serve a generated city workload through a sharded C-RAN tier of this many shards (4 QPUs each; 0 = off)")
		cranCells     = flag.Int("cran-cells", 12, "cell count for the -cran-shards demo workload")
		cranPlace     = flag.String("cran-placement", "hash", "C-RAN cell-placement policy: hash|load-aware")
		progMicros    = flag.Float64("prog-us", 10_000, "programming overhead μs used to lay out trace spans (telemetry only)")
		readoutUs     = flag.Float64("readout-us", 123, "per-read readout μs used to lay out trace spans (telemetry only)")
	)
	flag.Parse()
	log.SetVerbose(*verbose)
	if err := tel.Start("hybridmimo", log); err != nil {
		log.Fatalf("%v", err)
	}

	scheme, err := modulation.ParseScheme(*mod)
	if err != nil {
		log.Fatalf("%v", err)
	}
	n0 := 0.0
	if *snr >= 0 {
		n0 = channel.NoiseVarianceForSNR(*snr, *users)
	}
	inst, err := instance.Synthesize(instance.Spec{
		Users: *users, Scheme: scheme, Channel: channel.UnitGainRandomPhase,
		NoiseVariance: n0, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("synthesize: %v", err)
	}
	fmt.Printf("instance: %d-user %s, %d QUBO variables, seed %d\n",
		*users, scheme, inst.Reduction.NumSpins(), *seed)
	fmt.Printf("ground energy (Ising, incl. offset): %.6g\n", inst.GroundEnergy)

	cfg := core.AnnealConfig{}
	prof := annealer.CalibratedProfile()
	cfg.Profile = &prof
	if *embed {
		cfg.QPU = annealer.NewQPU2000Q()
	}
	cfg.Faults = annealer.FaultModel{
		ProgrammingFailureRate: *faultProg,
		ReadTimeoutRate:        *faultTimeout,
		ChainBreakStormRate:    *faultStorm,
		CalibrationDriftRate:   *faultDrift,
	}
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry
	if *probe {
		cfg.Probe = &annealer.MetricsProbe{Trace: tel.Tracer, Metrics: tel.Registry, Engine: "svmc"}
	}
	if *progMicros > 0 || *readoutUs > 0 {
		cfg.Timing = &annealer.DeviceTiming{ProgrammingMicros: *progMicros, ReadoutMicros: *readoutUs}
	}
	r := rng.New(*seed ^ 0xABCDEF)

	if *cranShards > 0 {
		if err := serveCRAN(*cranShards, *cranCells, *cranPlace, *seed, tel); err != nil {
			log.Fatalf("cran: %v", err)
		}
		if err := tel.Flush(log); err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		return
	}

	if *fleetDevices > 0 || *fleetBackends != "" {
		if err := serveFleet(inst, *fleetDevices, *fleetBackends, *fleetPolicy, *fleetRoute, *reads, *seed, tel, r); err != nil {
			log.Fatalf("fleet: %v", err)
		}
		if err := tel.Flush(log); err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		return
	}

	if *sweep {
		best, init, err := core.OptimizeSp(inst.Reduction, nil, inst.GroundEnergy, *reads, cfg, r)
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		d := metrics.DeltaEForIsing(inst.Reduction.Ising, inst.Reduction.Ising.Energy(init), inst.GroundEnergy)
		fmt.Printf("greedy candidate ΔE_IS%%: %.3f\n", d)
		fmt.Printf("best s_p = %.2f: p★ = %.4f, TTS(99%%) = %.2f μs (schedule %.2f μs)\n",
			best.Sp, best.PStar, best.TTS, best.Duration)
		if err := tel.Flush(log); err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		return
	}

	symbols, info, err := solve(*solver, inst, cfg, *reads, *sp, *fallback, r)
	if err != nil {
		log.Fatalf("%v", err)
	}
	errs := mimo.SymbolErrors(symbols, inst.Transmitted)
	bits := mimo.BitErrors(scheme, symbols, inst.Transmitted)
	obj := inst.Problem.Objective(symbols)
	fmt.Printf("solver: %s\n", *solver)
	if info != "" {
		fmt.Print(info)
	}
	fmt.Printf("objective ‖y−Hx̂‖²: %.6g\n", obj)
	fmt.Printf("symbol errors: %d/%d, bit errors: %d/%d\n",
		errs, *users, bits, *users*scheme.BitsPerSymbol())
	if *verbose {
		for i, x := range symbols {
			fmt.Printf("  user %2d: detected %7.4f%+7.4fi  transmitted %7.4f%+7.4fi\n",
				i, real(x), imag(x), real(inst.Transmitted[i]), imag(inst.Transmitted[i]))
		}
	}
	if err := tel.Flush(log); err != nil {
		log.Fatalf("telemetry: %v", err)
	}
}

// serveFleet demos the multi-QPU serving path: the synthesized channel
// use is replayed as several concurrent detection streams against a
// heterogeneous simulated fleet, and the scheduler's report (throughput,
// batching, per-device utilization) is printed instead of a single solve.
func serveFleet(inst *instance.Instance, devices int, backends, policy, route string, reads int, seed uint64, tel *cli.Telemetry, r *rng.Source) error {
	pol, err := fleet.ParsePolicy(policy)
	if err != nil {
		return err
	}
	rt, err := fleet.ParseRoutePolicy(route)
	if err != nil {
		return err
	}
	devs := fleet.DefaultDevices(devices)
	if backends != "" {
		if devs, err = fleet.ParseBackends(backends); err != nil {
			return err
		}
	}
	const streams, perStream = 4, 4
	var reqs []fleet.Request
	for s := 0; s < streams; s++ {
		for q := 0; q < perStream; q++ {
			init, err := core.GreedyModule{}.Initialize(inst.Reduction, r.Split(uint64(s*perStream+q)))
			if err != nil {
				return err
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * 100,
				Problem:      inst.Reduction.Ising,
				InitialState: init,
			})
		}
	}
	out, err := fleet.Serve(context.Background(), fleet.Config{
		Devices:  devs,
		Policy:   pol,
		Route:    rt,
		NumReads: reads,
		Seed:     seed,
		Trace:    tel.Tracer,
		Metrics:  tel.Registry,
	}, reqs)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d devices serving %d streams × %d frames\n", len(devs), streams, perStream)
	bySource := map[string]int{}
	for _, o := range out.Outcomes {
		bySource[o.Source.String()]++
	}
	fmt.Printf("answers: %v\n\n", bySource)
	return out.Report.WriteTable(os.Stdout)
}

// serveCRAN demos the sharded serving tier: a generated bursty city
// workload of cells × 2 UE streams is routed across `shards` fleet
// shards of 4 simulated QPUs each, with one shard's pool dying mid-run
// so cross-shard failover shows up in the report.
func serveCRAN(shards, cells int, placement string, seed uint64, tel *cli.Telemetry) error {
	pol, err := cran.ParsePlacement(placement)
	if err != nil {
		return err
	}
	const duration = 30_000.0
	reqs, err := cran.Workload{
		Cells: cells, UEsPerCell: 2,
		DurationMicros:  duration,
		FramesPerSecond: 150,
		Diurnal:         cran.DefaultDiurnal(),
		BurstProb:       0.25, BurstFactor: 2.5,
		NumReads:       8,
		DeadlineMicros: 20_000,
		Seed:           seed,
	}.Generate()
	if err != nil {
		return err
	}
	pools := make([][]fleet.Device, shards)
	for s := range pools {
		pools[s] = fleet.DefaultDevices(4)
	}
	if shards >= 2 {
		// Kill shard 1 halfway through so the demo exercises failover.
		for d := range pools[1] {
			pools[1][d].FailAt = duration / 2
		}
	}
	out, err := cran.Serve(context.Background(), cran.Config{
		Shards:           pools,
		Placement:        pol,
		Fleet:            fleet.Config{BatchMax: 4},
		AdmitQueueMicros: 15_000,
		EstReadMicros:    350,
		Seed:             seed,
		Trace:            tel.Tracer,
		Metrics:          tel.Registry,
	}, reqs)
	if err != nil {
		return err
	}
	fmt.Printf("cran: %d shards × 4 QPUs serving %d cells (%d frames)\n\n",
		shards, cells, len(reqs))
	return out.Report.WriteTable(os.Stdout)
}

func solve(name string, inst *instance.Instance, cfg core.AnnealConfig, reads int, sp float64, fallback bool, r *rng.Source) ([]complex128, string, error) {
	red := inst.Reduction
	is := red.Ising
	deltaOf := func(e float64) float64 {
		return metrics.DeltaEForIsing(is, e, inst.GroundEnergy)
	}
	switch strings.ToLower(name) {
	case "ml", "zf", "mmse", "sd", "kbest", "fcsd":
		det, err := detectorByName(name)
		if err != nil {
			return nil, "", err
		}
		syms, err := det.Detect(inst.Problem)
		return syms, "", err
	case "gs":
		sol := qubo.GreedySearchIsing(is, qubo.OrderDescending)
		return red.DecodeSpins(sol), fmt.Sprintf("ΔE%%: %.3f\n", deltaOf(is.Energy(sol))), nil
	case "sa":
		sol := qubo.SimulatedAnnealing(is, r, qubo.SAOptions{})
		return red.DecodeSpins(sol.Spins), fmt.Sprintf("ΔE%%: %.3f\n", deltaOf(sol.Energy)), nil
	case "tabu":
		sol := qubo.TabuSearch(is, r, qubo.TabuOptions{})
		return red.DecodeSpins(sol.Spins), fmt.Sprintf("ΔE%%: %.3f\n", deltaOf(sol.Energy)), nil
	case "pt":
		sol := qubo.ParallelTempering(is, r, qubo.PTOptions{})
		return red.DecodeSpins(sol.Spins), fmt.Sprintf("ΔE%%: %.3f\n", deltaOf(sol.Energy)), nil
	}

	var out *core.Outcome
	var err error
	switch strings.ToLower(name) {
	case "fa":
		out, err = (&core.ForwardSolver{NumReads: reads, Config: cfg}).Solve(red, r)
	case "fr":
		out, err = (&core.ForwardReverseSolver{NumReads: reads, Sp: sp, Config: cfg}).Solve(red, r)
	case "gs+ra":
		out, err = (&core.Hybrid{Sp: sp, NumReads: reads, Config: cfg, FallbackOnFault: fallback}).Solve(red, r)
	case "zf+ra":
		out, err = (&core.Hybrid{Classical: core.DetectorModule{Detector: mimo.ZeroForcing{}}, Sp: sp, NumReads: reads, Config: cfg, FallbackOnFault: fallback}).Solve(red, r)
	case "random+ra":
		out, err = (&core.Hybrid{Classical: core.RandomModule{}, Sp: sp, NumReads: reads, Config: cfg, FallbackOnFault: fallback}).Solve(red, r)
	case "fa+descent":
		out, err = (&core.PostProcessing{Forward: core.ForwardSolver{NumReads: reads, Config: cfg}}).Solve(red, r)
	case "co":
		out, err = (&core.CoProcessing{ReadsPerRound: reads / 3, Sp: sp, Config: cfg}).Solve(red, r)
	case "decomp":
		out, err = (&core.Decomposition{ReadsPerBlock: reads / 4, Sp: sp, Config: cfg}).Solve(red, r)
	case "persist":
		out, err = (&core.SamplePersistence{ReadsPerRound: reads / 3, Config: cfg}).Solve(red, r)
	default:
		return nil, "", fmt.Errorf("unknown solver %q", name)
	}
	if err != nil {
		return nil, "", err
	}
	if out.Source == core.AnswerClassicalFallback {
		info := fmt.Sprintf("answer source: %s (quantum fault: %v)\n", out.Source, out.Fault)
		info += fmt.Sprintf("classical candidate ΔE_IS%%: %.3f\n", deltaOf(out.InitialEnergy))
		return out.Symbols, info, nil
	}
	p := metrics.SuccessProbability(out.Samples, inst.GroundEnergy, 1e-6)
	info := fmt.Sprintf("best sample ΔE%%: %.3f  p★: %.4f  anneal time: %.1f μs (%d reads × %.2f μs)\n",
		deltaOf(out.Best.Energy), p, out.AnnealTime, len(out.Samples), out.ScheduleDuration)
	info += fmt.Sprintf("answer source: %s\n", out.Source)
	if out.FaultStats.Total() > 0 {
		info += fmt.Sprintf("injected faults survived: %d timeouts, %d storms, %d drifts\n",
			out.FaultStats.ReadTimeouts, out.FaultStats.ChainBreakStorms, out.FaultStats.CalibrationDrifts)
	}
	if out.InitialState != nil {
		info += fmt.Sprintf("classical candidate ΔE_IS%%: %.3f\n", deltaOf(out.InitialEnergy))
	}
	return out.Symbols, info, nil
}

func detectorByName(name string) (mimo.Detector, error) {
	switch strings.ToLower(name) {
	case "ml":
		return mimo.ML{}, nil
	case "zf":
		return mimo.ZeroForcing{}, nil
	case "mmse":
		return mimo.MMSE{}, nil
	case "sd":
		return mimo.SphereDecoder{}, nil
	case "kbest":
		return mimo.KBest{K: 16}, nil
	case "fcsd":
		return mimo.FCSD{FullExpansion: 2}, nil
	}
	return nil, fmt.Errorf("unknown detector %q", name)
}
