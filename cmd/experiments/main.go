// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all                # every figure at quick scale
//	experiments -fig 8 -scale full      # Figure 8 at paper scale
//	experiments -fig headline -out dir  # write series files into dir
//	experiments -fig 8 -bench-json out  # also write BENCH_figure8.json
//	experiments -validate               # gate the paper claims on bootstrap CIs
//	experiments -check-golden           # compare figures against results/golden/
//	experiments -update-golden          # re-baseline results/golden/ (explicit!)
//
// Output is the same rows the paper plots (see DESIGN.md's
// per-experiment index); -out writes one text file per figure,
// otherwise everything prints to stdout. -bench-json additionally
// records each figure's wall time, configuration, and rendered series
// as a machine-readable BENCH_*.json file.
//
// The -validate and -check-golden modes exit non-zero when any claim
// fails (or is inconclusive) or any golden metric drifts; see DESIGN.md's
// "Validation" section for the statistics behind the gates.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cran"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/validate"
)

// Fleet-figure knobs, shared with runFigure.
var (
	fleetDevices int
	fleetPolicy  string
)

// C-RAN-figure knobs, shared with runFigure.
var (
	cranShards    int
	cranCells     int
	cranPlacement string
)

// Ensemble-figure knobs, shared with runFigure.
var (
	ensembleK      int
	ensembleSpGrid string
)

func main() {
	log := cli.New("experiments")
	log.RegisterVerbosity()
	tel := cli.RegisterTelemetry()
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2|3|4|6|7|8|headline|ablation-*|ber|hardness|qaoa|capacity|availability|fleet|hybrid|cran|cran-slo|ensemble|all")
		scale     = flag.String("scale", "quick", "effort: quick|full")
		out       = flag.String("out", "", "directory for per-figure output files (default stdout)")
		seed      = flag.Uint64("seed", 0, "override experiment seed (0 = default)")
		benchJSON = flag.String("bench-json", "", "directory for machine-readable BENCH_*.json records")
	)
	var (
		doValidate   = flag.Bool("validate", false, "run the statistical claim gates instead of regenerating figures")
		checkGolden  = flag.Bool("check-golden", false, "compare figure metrics against the committed golden baselines")
		updateGolden = flag.Bool("update-golden", false, "rewrite the golden baselines (explicit re-baselining only)")
		goldenDir    = flag.String("golden-dir", filepath.Join("results", "golden"), "directory holding the golden baseline JSON files")
		inject       = flag.String("validate-inject", "", "deliberate regression for harness self-tests: ra-degraded|reads-slashed|fleet-serial|cran-single-shard|hybrid-routing-off|ensemble-collapsed")
		maxReads     = flag.Int("validate-max-reads", 0, "per-claim anneal-read budget for -validate (0 = default)")
		driftOut     = flag.String("drift-report", "", "file for the machine-readable drift report JSON from -check-golden")
	)
	flag.IntVar(&fleetDevices, "fleet-devices", 8, "largest QPU pool the fleet figure scales to")
	flag.StringVar(&fleetPolicy, "fleet-policy", "least-loaded", "fleet scheduling policy: least-loaded|round-robin|edf")
	flag.IntVar(&cranShards, "cran-shards", 8, "shard count for the cran figure (4 QPUs per shard)")
	flag.IntVar(&cranCells, "cran-cells", 200, "cell count for the cran figure (5 UE streams per cell)")
	flag.StringVar(&cranPlacement, "cran-placement", "hash", "cran cell-placement policy: hash|load-aware")
	flag.IntVar(&ensembleK, "ensemble-k", 0, "extra custom ensemble-figure variant: candidate count (0 = default sweep only)")
	flag.StringVar(&ensembleSpGrid, "ensemble-sp-grid", "", "extra custom ensemble-figure variant: comma-separated s_p grid, e.g. 0.37,0.45,0.53")
	flag.Parse()
	if err := tel.Start("experiments", log); err != nil {
		log.Fatalf("%v", err)
	}

	if *doValidate || *checkGolden || *updateGolden {
		opts := validate.Options{Inject: *inject, MaxReads: *maxReads}
		opts.Config.Seed = *seed // 0 keeps the validation default (2020)
		if err := runValidation(opts, *doValidate, *checkGolden, *updateGolden, *goldenDir, *driftOut, log); err != nil {
			log.Fatalf("%v", err)
		}
		if err := tel.Flush(log); err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		return
	}

	cfg := experiments.Quick()
	if *scale == "full" {
		cfg = experiments.Full()
	} else if *scale != "quick" {
		log.Fatalf("unknown -scale %q (quick|full)", *scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"2", "3", "4", "6", "7", "8", "headline", "ablation-modules", "ablation-device", "ablation-gsorder", "ber", "hardness", "qaoa", "capacity", "availability", "fleet", "hybrid", "cran", "cran-slo", "ensemble"}
	}
	for _, f := range figs {
		if err := runFigure(strings.TrimSpace(f), cfg, *out, *benchJSON, log); err != nil {
			log.Fatalf("figure %s: %v", f, err)
		}
	}
	if err := tel.Flush(log); err != nil {
		log.Fatalf("telemetry: %v", err)
	}
}

// runValidation dispatches the -validate / -check-golden / -update-golden
// modes. Any failed or inconclusive claim and any drifted golden metric
// comes back as an error, so `make validate` gates on the exit code.
func runValidation(opts validate.Options, doValidate, checkGolden, updateGolden bool, goldenDir, driftOut string, log *cli.Logger) error {
	if updateGolden {
		start := time.Now()
		if err := validate.UpdateGoldens(goldenDir, opts); err != nil {
			return fmt.Errorf("update goldens: %w", err)
		}
		log.Infof("rebaselined %d golden figures under %s in %v", len(validate.GoldenFigures), goldenDir, time.Since(start))
	}
	if checkGolden {
		rep, err := validate.CheckGoldens(goldenDir, opts)
		if err != nil {
			return fmt.Errorf("check goldens: %w", err)
		}
		rep.WriteTable(os.Stdout)
		if driftOut != "" {
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(driftOut, append(buf, '\n'), 0o644); err != nil {
				return err
			}
			log.Infof("wrote drift report to %s", driftOut)
		}
		if n := rep.Failures(); n > 0 {
			return fmt.Errorf("golden check: %d metric(s) drifted from baseline", n)
		}
	}
	if doValidate {
		rep := validate.Run(opts)
		rep.WriteTable(os.Stdout)
		if n := rep.Failures(); n > 0 {
			return fmt.Errorf("validation: %d claim(s) not demonstrated", n)
		}
	}
	return nil
}

// tabler is the common surface of every figure result.
type tabler interface{ WriteTable(io.Writer) }

func runFigure(fig string, cfg experiments.Config, outDir, benchDir string, log *cli.Logger) error {
	var (
		res tabler
		err error
	)
	start := time.Now()
	switch fig {
	case "2", "pipeline":
		res, err = experiments.PipelineFigure(cfg, 0)
	case "3":
		res, err = experiments.Figure3(cfg, 0)
	case "4":
		res, err = experiments.Figure4(cfg)
	case "6":
		res, err = experiments.Figure6(cfg, 0)
	case "7":
		res, err = experiments.Figure7(cfg)
	case "8":
		res, err = experiments.Figure8(cfg)
	case "headline":
		res, err = experiments.Headline(cfg)
	case "ablation-modules":
		res, err = experiments.RunModuleAblation(cfg)
	case "ablation-device":
		res, err = experiments.RunDeviceAblation(cfg)
	case "ablation-gsorder":
		res, err = experiments.RunGreedyOrderAblation(cfg)
	case "ber":
		res, err = experiments.RunBER(cfg)
	case "hardness":
		res, err = experiments.RunHardness(cfg)
	case "qaoa":
		res, err = experiments.RunQAOA(cfg)
	case "capacity":
		res, err = experiments.RunCapacity(cfg)
	case "availability":
		res, err = experiments.RunAvailability(cfg)
	case "fleet":
		var pol fleet.Policy
		pol, err = fleet.ParsePolicy(fleetPolicy)
		if err != nil {
			return err
		}
		res, err = experiments.RunFleetScaling(cfg, fleetDevices, pol)
	case "hybrid":
		res, err = experiments.RunHybrid(cfg)
	case "cran":
		var pol cran.Placement
		pol, err = cran.ParsePlacement(cranPlacement)
		if err != nil {
			return err
		}
		res, err = experiments.RunCRAN(cfg, cranShards, cranCells, pol)
	case "cran-slo":
		var pol cran.Placement
		pol, err = cran.ParsePlacement(cranPlacement)
		if err != nil {
			return err
		}
		res, err = experiments.RunCRANSLO(cfg, 0, 0, pol)
	case "ensemble":
		var grid []float64
		if ensembleSpGrid != "" {
			if grid, err = core.ParseSpGrid(ensembleSpGrid); err != nil {
				return err
			}
		}
		res, err = experiments.RunEnsemble(cfg, ensembleK, grid)
	default:
		return fmt.Errorf("unknown figure %q (2|3|4|6|7|8|headline|ablation-modules|ablation-device|ablation-gsorder)", fig)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	log.Debugf("figure %s regenerated in %v", fig, elapsed)

	// Render once; tee to stdout/file and optionally into the bench record.
	var table bytes.Buffer
	res.WriteTable(&table)
	fmt.Fprintln(&table)
	w := io.Writer(os.Stdout)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, "figure"+fig+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(table.Bytes()); err != nil {
		return err
	}
	if benchDir != "" {
		rec := telemetry.BenchRecord{
			Name:       "figure" + fig,
			NsPerOp:    float64(elapsed.Nanoseconds()),
			Iterations: 1,
			Config:     cfg,
			Series:     table.String(),
		}
		if err := telemetry.WriteBenchJSON(benchDir, rec); err != nil {
			return err
		}
		log.Infof("wrote bench record for figure %s to %s", fig, benchDir)
	}
	return nil
}
