// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all                # every figure at quick scale
//	experiments -fig 8 -scale full      # Figure 8 at paper scale
//	experiments -fig headline -out dir  # write series files into dir
//	experiments -fig 8 -bench-json out  # also write BENCH_figure8.json
//
// Output is the same rows the paper plots (see DESIGN.md's
// per-experiment index); -out writes one text file per figure,
// otherwise everything prints to stdout. -bench-json additionally
// records each figure's wall time, configuration, and rendered series
// as a machine-readable BENCH_*.json file.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

// Fleet-figure knobs, shared with runFigure.
var (
	fleetDevices int
	fleetPolicy  string
)

func main() {
	log := cli.New("experiments")
	log.RegisterVerbosity()
	tel := cli.RegisterTelemetry()
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2|3|4|6|7|8|headline|ablation-*|ber|hardness|qaoa|capacity|availability|fleet|all")
		scale     = flag.String("scale", "quick", "effort: quick|full")
		out       = flag.String("out", "", "directory for per-figure output files (default stdout)")
		seed      = flag.Uint64("seed", 0, "override experiment seed (0 = default)")
		benchJSON = flag.String("bench-json", "", "directory for machine-readable BENCH_*.json records")
	)
	flag.IntVar(&fleetDevices, "fleet-devices", 8, "largest QPU pool the fleet figure scales to")
	flag.StringVar(&fleetPolicy, "fleet-policy", "least-loaded", "fleet scheduling policy: least-loaded|round-robin|edf")
	flag.Parse()
	if err := tel.Start("experiments", log); err != nil {
		log.Fatalf("%v", err)
	}

	cfg := experiments.Quick()
	if *scale == "full" {
		cfg = experiments.Full()
	} else if *scale != "quick" {
		log.Fatalf("unknown -scale %q (quick|full)", *scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"2", "3", "4", "6", "7", "8", "headline", "ablation-modules", "ablation-device", "ablation-gsorder", "ber", "hardness", "qaoa", "capacity", "availability", "fleet"}
	}
	for _, f := range figs {
		if err := runFigure(strings.TrimSpace(f), cfg, *out, *benchJSON, log); err != nil {
			log.Fatalf("figure %s: %v", f, err)
		}
	}
	if err := tel.Flush(log); err != nil {
		log.Fatalf("telemetry: %v", err)
	}
}

// tabler is the common surface of every figure result.
type tabler interface{ WriteTable(io.Writer) }

func runFigure(fig string, cfg experiments.Config, outDir, benchDir string, log *cli.Logger) error {
	var (
		res tabler
		err error
	)
	start := time.Now()
	switch fig {
	case "2", "pipeline":
		res, err = experiments.PipelineFigure(cfg, 0)
	case "3":
		res, err = experiments.Figure3(cfg, 0)
	case "4":
		res, err = experiments.Figure4(cfg)
	case "6":
		res, err = experiments.Figure6(cfg, 0)
	case "7":
		res, err = experiments.Figure7(cfg)
	case "8":
		res, err = experiments.Figure8(cfg)
	case "headline":
		res, err = experiments.Headline(cfg)
	case "ablation-modules":
		res, err = experiments.RunModuleAblation(cfg)
	case "ablation-device":
		res, err = experiments.RunDeviceAblation(cfg)
	case "ablation-gsorder":
		res, err = experiments.RunGreedyOrderAblation(cfg)
	case "ber":
		res, err = experiments.RunBER(cfg)
	case "hardness":
		res, err = experiments.RunHardness(cfg)
	case "qaoa":
		res, err = experiments.RunQAOA(cfg)
	case "capacity":
		res, err = experiments.RunCapacity(cfg)
	case "availability":
		res, err = experiments.RunAvailability(cfg)
	case "fleet":
		var pol fleet.Policy
		pol, err = fleet.ParsePolicy(fleetPolicy)
		if err != nil {
			return err
		}
		res, err = experiments.RunFleetScaling(cfg, fleetDevices, pol)
	default:
		return fmt.Errorf("unknown figure %q (2|3|4|6|7|8|headline|ablation-modules|ablation-device|ablation-gsorder)", fig)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	log.Debugf("figure %s regenerated in %v", fig, elapsed)

	// Render once; tee to stdout/file and optionally into the bench record.
	var table bytes.Buffer
	res.WriteTable(&table)
	fmt.Fprintln(&table)
	w := io.Writer(os.Stdout)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, "figure"+fig+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(table.Bytes()); err != nil {
		return err
	}
	if benchDir != "" {
		rec := telemetry.BenchRecord{
			Name:       "figure" + fig,
			NsPerOp:    float64(elapsed.Nanoseconds()),
			Iterations: 1,
			Config:     cfg,
			Series:     table.String(),
		}
		if err := telemetry.WriteBenchJSON(benchDir, rec); err != nil {
			return err
		}
		log.Infof("wrote bench record for figure %s to %s", fig, benchDir)
	}
	return nil
}
