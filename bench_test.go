package repro_test

// One benchmark per table/figure of the paper's evaluation (DESIGN.md's
// per-experiment index). Each benchmark regenerates its figure through
// the same harness cmd/experiments uses and prints the series, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at quick scale. The printed rows are
// the deliverable; ns/op measures the cost of regenerating the figure.
//
// With BENCH_JSON_DIR set, each benchmark additionally writes a
// machine-readable BENCH_<name>.json record (series, ns/op, config,
// git revision) into that directory, so perf and series can be tracked
// across commits without parsing benchmark output.

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// benchConfig keeps per-iteration cost manageable while preserving every
// sweep's structure; crank Reads/Instances (or use cmd/experiments
// -scale full) for paper-scale statistics.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Instances = 3
	cfg.Reads = 150
	return cfg
}

// tabler is the common surface of every figure result.
type tabler interface{ WriteTable(io.Writer) }

// runFigureBench drives one figure benchmark: regenerate b.N times, print
// the series once, and (when BENCH_JSON_DIR is set) record the result as
// BENCH_<name>.json.
func runFigureBench(b *testing.B, name string, cfg experiments.Config, run func() (tabler, error)) {
	b.Helper()
	var series bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.WriteTable(io.MultiWriter(os.Stdout, &series))
		}
	}
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		rec := telemetry.BenchRecord{
			Name:       name,
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config:     cfg,
			Series:     series.String(),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates §3.1's QUBO-simplification study: the
// fraction of simplified instances and mean fixed variables per problem
// size and modulation. Expected shape: ratios near 1 below ~16 variables
// decaying to 0 by 32–40 variables.
func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	cfg.Instances = 15
	runFigureBench(b, "Figure3", cfg, func() (tabler, error) { return experiments.Figure3(cfg, 48) })
}

// BenchmarkFigure4 regenerates the §3.1 soft-information constraint
// study: a correct prior leaves the optimum intact; a strong wrong prior
// displaces it.
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Figure4", cfg, func() (tabler, error) { return experiments.Figure4(cfg) })
}

// BenchmarkFigure6 regenerates §4.3's sample-quality distributions on
// 36-variable instances: FA vs RA(random init) vs RA(greedy init) per
// modulation. Expected shape: RA-GS concentrates at low ΔE%; RA-random
// is the worst of the three.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Figure6", cfg, func() (tabler, error) { return experiments.Figure6(cfg, 36) })
}

// BenchmarkFigure7 regenerates the initial-state quality study on the
// 8-user 16-QAM instance: success probability and expected cost vs
// ΔE_IS%. Expected shape: p★ highest at ΔE_IS% = 0 and degrading as the
// initial state worsens.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Figure7", cfg, func() (tabler, error) { return experiments.Figure7(cfg) })
}

// BenchmarkFigure8 regenerates the s_p sweep on the 8-user 16-QAM
// instance: p★ and TTS(99%) for FA, FR(oracle c_p), RA from the ground
// state, the RA candidate family, and RA from the greedy candidate.
// Expected shape: the RA family succeeds over a wide s_p window and its
// best TTS beats FA's.
func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Figure8", cfg, func() (tabler, error) { return experiments.Figure8(cfg) })
}

// BenchmarkHeadlineSpeedup regenerates the abstract's claim: RA from a
// good candidate achieves the paper's "2–10×" processing-time advantage
// (and "up to 10×" success probability) over FA at each solver's best
// s_p, across instances.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "HeadlineSpeedup", cfg, func() (tabler, error) { return experiments.Headline(cfg) })
}

// BenchmarkPipeline regenerates Figure 2's pipelining argument: staged
// classical/quantum processing of successive channel uses vs serial
// execution. Expected shape: makespan speedup > 1 (approaching 2 for
// balanced stages) with every frame decoded.
func BenchmarkPipeline(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Pipeline", cfg, func() (tabler, error) { return experiments.PipelineFigure(cfg, 8) })
}

// BenchmarkAblationModules regenerates the §5 classical-module study:
// candidate quality and hybrid solve rate for GS, ZF, K-best, FCSD, SA,
// and random initializers. Expected shape: tree-search modules deliver
// better ΔE_IS% than GS; random is far worse.
func BenchmarkAblationModules(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "AblationModules", cfg, func() (tabler, error) { return experiments.RunModuleAblation(cfg) })
}

// BenchmarkAblationDevice regenerates the simulator design-choice study:
// retention / repair / FA strength under each engine, profile, noise,
// quench, and embedding variant. Expected shape: only the calibrated
// configuration both retains and repairs.
func BenchmarkAblationDevice(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "AblationDevice", cfg, func() (tabler, error) { return experiments.RunDeviceAblation(cfg) })
}

// BenchmarkAblationGreedyOrder regenerates the §4.1 prose-ambiguity
// study: ascending vs descending greedy bit ordering.
func BenchmarkAblationGreedyOrder(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "AblationGreedyOrder", cfg, func() (tabler, error) { return experiments.RunGreedyOrderAblation(cfg) })
}

// BenchmarkBER regenerates the extension experiment behind the paper's
// motivation: uplink BER vs SNR on a correlated Rayleigh channel for
// linear, tree-search, exact-ML, and hybrid detectors. Expected shape:
// ZF ≫ MMSE > K-best ≈ hybrid ≈ SD, all falling with SNR.
func BenchmarkBER(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "BER", cfg, func() (tabler, error) { return experiments.RunBER(cfg) })
}

// BenchmarkHardness regenerates the channel-conditioning study: detector
// success probability per channel-condition-number bucket. Expected
// shape: FA and hybrid p★ fall monotonically as κ grows.
func BenchmarkHardness(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Hardness", cfg, func() (tabler, error) { return experiments.RunHardness(cfg) })
}

// BenchmarkQAOA regenerates the gate-model extension study: exact QAOA
// (depths 1 and 3) vs the annealing simulation on small detection
// instances — §2's two NISQ approaches side by side.
func BenchmarkQAOA(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "QAOA", cfg, func() (tabler, error) { return experiments.RunQAOA(cfg) })
}

// BenchmarkCapacity regenerates the Challenge-3 capacity-planning study:
// ARQ deadline miss rate vs QPU pool size under Poisson channel-use
// arrivals. Expected shape: misses fall monotonically as units are added
// and vanish once pool service capacity exceeds the arrival rate.
func BenchmarkCapacity(b *testing.B) {
	cfg := benchConfig()
	runFigureBench(b, "Capacity", cfg, func() (tabler, error) { return experiments.RunCapacity(cfg) })
}
