package repro_test

// End-to-end integration tests for the flows README.md promises,
// crossing every layer: synthesis → reduction → solvers → metrics.

import (
	"math"
	"testing"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qaoa"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// TestQuickstartFlow is the README quickstart, asserted.
func TestQuickstartFlow(t *testing.T) {
	inst, err := instance.Synthesize(instance.Spec{
		Users: 8, Scheme: modulation.QAM16,
		Channel: channel.UnitGainRandomPhase, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&core.Hybrid{NumReads: 200}).Solve(inst.Reduction, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if mimo.SymbolErrors(out.Symbols, inst.Transmitted) != 0 {
		t.Fatal("quickstart flow misdecoded")
	}
	d := metrics.DeltaEForIsing(inst.Reduction.Ising, out.Best.Energy, inst.GroundEnergy)
	if d > 1e-6 {
		t.Fatalf("quickstart best ΔE%% = %v", d)
	}
}

// TestSolverZooConsistency: every solver type produces a valid symbol
// vector on the same instance, and none beats the exact ML objective.
func TestSolverZooConsistency(t *testing.T) {
	inst, err := instance.Synthesize(instance.Spec{
		Users: 4, Scheme: modulation.QAM16, NoiseVariance: 0.4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	mlObjective := inst.Problem.Objective(inst.Optimal)
	red := inst.Reduction
	r := rng.New(11)
	type outcomeSolver interface {
		Name() string
		Solve(*mimo.Reduction, *rng.Source) (*core.Outcome, error)
	}
	solvers := []outcomeSolver{
		&core.Hybrid{NumReads: 60},
		&core.ForwardSolver{NumReads: 60},
		&core.ForwardReverseSolver{NumReads: 40},
		&core.PostProcessing{Forward: core.ForwardSolver{NumReads: 40}},
		&core.CoProcessing{Rounds: 2, ReadsPerRound: 20},
		&core.Decomposition{BlockSize: 8, Rounds: 2, ReadsPerBlock: 20},
		&core.SamplePersistence{Rounds: 2, ReadsPerRound: 30},
	}
	for _, s := range solvers {
		out, err := s.Solve(red, r.SplitString(s.Name()))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(out.Symbols) != 4 {
			t.Fatalf("%s: %d symbols", s.Name(), len(out.Symbols))
		}
		obj := inst.Problem.Objective(out.Symbols)
		if obj < mlObjective-1e-9 {
			t.Fatalf("%s: objective %v below the exact ML optimum %v", s.Name(), obj, mlObjective)
		}
	}
}

// TestScheduleSemanticsMatchPaper: the three schedule durations under the
// paper's §4.2 parameters (t_a = t_p = 1 μs).
func TestScheduleSemanticsMatchPaper(t *testing.T) {
	fa, err := annealer.Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fa.Duration()-2.0) > 1e-12 { // t_a + t_p
		t.Fatalf("FA duration %v", fa.Duration())
	}
	ra, err := annealer.Reverse(0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ra.Duration()-(2*(1-0.41)+1)) > 1e-12 { // 2(1−sp) + t_p
		t.Fatalf("RA duration %v", ra.Duration())
	}
	fr, err := annealer.ForwardReverse(0.7, 0.41, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*0.7 - 2*0.41 + 1 + 1 // 2cp − 2sp + tp + ta
	if math.Abs(fr.Duration()-want) > 1e-12 {
		t.Fatalf("FR duration %v, want %v", fr.Duration(), want)
	}
}

// TestCodedLinkRoundTrip: encode → binary-modulate → noiseless channel →
// hybrid detect → LLRs → soft Viterbi recovers the packet exactly.
func TestCodedLinkRoundTrip(t *testing.T) {
	code := coding.NewConvCode75()
	scheme := modulation.QAM16
	const users = 4
	bitsPerUse := users * scheme.BitsPerSymbol()
	r := rng.New(33)
	info := make([]int8, 30)
	for i := range info {
		if r.Bool() {
			info[i] = 1
		}
	}
	coded, err := code.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	padded := append([]int8(nil), coded...)
	for len(padded)%bitsPerUse != 0 {
		padded = append(padded, 0)
	}
	var llrs []float64
	for use := 0; use*bitsPerUse < len(padded); use++ {
		seg := padded[use*bitsPerUse : (use+1)*bitsPerUse]
		x := make([]complex128, users)
		for u := 0; u < users; u++ {
			x[u], err = scheme.ModulateBinary(seg[u*scheme.BitsPerSymbol() : (u+1)*scheme.BitsPerSymbol()])
			if err != nil {
				t.Fatal(err)
			}
		}
		ur := r.Split(uint64(use))
		h := channel.Draw(channel.UnitGainRandomPhase, ur.SplitString("h"), users, users)
		y := channel.Transmit(ur.SplitString("n"), h, x, 0)
		red, err := mimo.Reduce(&mimo.Problem{H: h, Y: y, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		_, spinLLRs, err := (&core.Hybrid{NumReads: 80}).SolveSoft(red, 0, ur.SplitString("hy"))
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < users; u++ {
			for b := 0; b < scheme.BitsPerSymbol(); b++ {
				llrs = append(llrs, spinLLRs[mimo.BitLLR{User: u, Bit: b}.SpinIndex(red)])
			}
		}
	}
	decoded, err := code.DecodeSoft(llrs[:len(coded)])
	if err != nil {
		t.Fatal(err)
	}
	if coding.BitErrors(info, decoded) != 0 {
		t.Fatal("noiseless coded link did not round-trip")
	}
}

// TestQAOAAgreesWithExhaustive: the gate-model path and the qubo
// exhaustive solver agree on the ground energy of a reduced instance.
func TestQAOAAgreesWithExhaustive(t *testing.T) {
	inst, err := instance.Synthesize(instance.Spec{Users: 4, Scheme: modulation.QPSK, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	circ, err := qaoa.Compile(inst.Reduction.Ising)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qubo.ExhaustiveIsing(inst.Reduction.Ising)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(circ.GroundEnergy()-g.Energy) > 1e-9 {
		t.Fatalf("QAOA spectrum ground %v vs exhaustive %v", circ.GroundEnergy(), g.Energy)
	}
}
