package validate

import (
	"fmt"

	"repro/internal/annealer"
	"repro/internal/fleet"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// groundTol is the energy slack for counting a read as a ground-state
// hit, matching the figure harnesses.
const groundTol = 1e-6

// arm is one solver configuration of a sequential test: a prepared
// fleet.Sampler (so repeated small batches pay Engine.Prepare once, the
// same economics the dispatcher has) plus the accumulated Bernoulli
// success counts the bootstrap resamples.
type arm struct {
	name string
	dur  float64 // one read's schedule μs, for TTS
	init []int8
	s    *fleet.Sampler
	r    *rng.Source

	successes int
	trials    int
}

// newArm prepares a single-device sampling arm from the environment's
// anneal configuration.
func (e *Env) newArm(name string, sc *annealer.Schedule, init []int8, r *rng.Source) (*arm, error) {
	cfg := e.opts.Config
	dev := fleet.Device{
		Engine:               cfg.Engine,
		Profile:              cfg.Profile,
		SweepsPerMicrosecond: cfg.SweepsPerMicrosecond,
		ICE:                  cfg.ICE,
	}
	s, err := fleet.NewSampler([]fleet.Device{dev}, sc, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("validate: arm %s: %w", name, err)
	}
	return &arm{name: name, dur: sc.Duration(), init: init, s: s, r: r}, nil
}

// draw pulls one batch of reads and folds them into the arm's counts.
func (a *arm) draw(is *qubo.Ising, groundEnergy float64, reads int) error {
	out, err := a.s.Draw(is, a.init, reads, a.r)
	if err != nil {
		return fmt.Errorf("validate: arm %s: %w", a.name, err)
	}
	for _, smp := range out.Samples {
		if smp.Energy <= groundEnergy+groundTol {
			a.successes++
		}
	}
	a.trials += len(out.Samples)
	return nil
}

// p returns the arm's running success-probability estimate.
func (a *arm) p() float64 {
	if a.trials == 0 {
		return 0
	}
	return float64(a.successes) / float64(a.trials)
}

// sequential is the SPRT-style sampling loop: every round draws one
// batch per arm, re-judges the claim's estimates, and stops as soon as
// every estimate is decided (each CI clear of or across its gate) or
// continuing would exceed the claim's read budget (minus any reads the
// claim already spent, e.g. on an oracle probe). Undecided estimates are
// marked Inconclusive/budget-exhausted. Returns the estimates and the
// reads drawn by this loop.
func (e *Env) sequential(arms []*arm, is *qubo.Ising, groundEnergy float64,
	alreadySpent int, judge func() []Estimate) ([]Estimate, int, error) {
	batch := e.opts.BatchReads
	spent := 0
	batches := 0
	for {
		for _, a := range arms {
			if err := a.draw(is, groundEnergy, batch); err != nil {
				return nil, spent, err
			}
			spent += batch
		}
		batches++
		ests := judge()
		done := true
		for i := range ests {
			ests[i].Batches = batches
			if ests[i].Verdict == "" {
				done = false
			}
		}
		if done {
			return ests, spent, nil
		}
		if alreadySpent+spent+batch*len(arms) > e.opts.MaxReads {
			for i := range ests {
				if ests[i].Verdict == "" {
					ests[i].Verdict = Inconclusive
					ests[i].Stop = "budget-exhausted"
				}
			}
			return ests, spent, nil
		}
	}
}
