package validate

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/cran"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// GoldenFigures lists the figures under golden-baseline regression, in
// run order.
var GoldenFigures = []string{"3", "4", "6", "7", "8", "pipeline", "fleet", "cran", "hybrid", "ensemble"}

// exactCI wraps a value the simulation reproduces bit-for-bit from a
// fixed seed: a degenerate interval, so any change at all is drift.
func exactCI(v float64) metrics.CI {
	return metrics.CI{Value: v, Lo: v, Hi: v, Confidence: 100, N: 1}
}

// bandCI wraps a deterministic scalar in an explicit tolerance band.
// Timing-model and sweep-kernel refinements legitimately move these
// values a little; the band encodes how much drift the baseline accepts
// (rel of |v|, with abs as the floor for near-zero values).
func bandCI(v, rel, abs float64) metrics.CI {
	slack := math.Abs(v) * rel
	if slack < abs {
		slack = abs
	}
	return metrics.CI{Value: v, Lo: v - slack, Hi: v + slack, Confidence: 100, N: 1}
}

// RunGoldenFigure executes one figure at the options' scale and distills
// its golden metrics. Counted statistics carry Wilson intervals, sampled
// vectors bootstrap intervals, and deterministic model outputs explicit
// tolerance bands.
func RunGoldenFigure(name string, opts Options) (*Golden, error) {
	opts = opts.withDefaults()
	cfg := opts.Config
	g := &Golden{
		Schema: GoldenSchema, Figure: name,
		Seed: cfg.Seed, Instances: cfg.Instances, Reads: cfg.Reads,
	}
	boot := rng.New(cfg.Seed).SplitString("golden/" + name)
	var res any
	var err error
	switch name {
	case "3":
		var r *experiments.Fig3Result
		r, err = experiments.Figure3(cfg, 0)
		if err == nil {
			res = r
			small, smallN, large, largeN := 0, 0, 0, 0
			for _, p := range r.Points {
				switch {
				case p.Variables <= 12:
					small += p.Simplified
					smallN += r.Instances
				case p.Variables >= 40:
					large += p.Simplified
					largeN += r.Instances
				}
			}
			g.add("fig3/small_simplified_ratio", metrics.WilsonCI(small, smallN))
			g.add("fig3/large_simplified_ratio", metrics.WilsonCI(large, largeN))
			g.add("fig3/points", exactCI(float64(len(r.Points))))
		}
	case "4":
		var r *experiments.Fig4Result
		r, err = experiments.Figure4(cfg)
		if err == nil {
			res = r
			for _, row := range r.Rows {
				key := fmt.Sprintf("fig4/w%g_wrong%t", row.Weight, row.PriorWrong)
				g.add(key+"/p_star", metrics.WilsonCI(row.Hits, row.Samples))
				moved := 0.0
				if row.OptimumMoved {
					moved = 1
				}
				g.add(key+"/optimum_moved", exactCI(moved))
			}
		}
	case "6":
		var r *experiments.Fig6Result
		r, err = experiments.Figure6(cfg, 0)
		if err == nil {
			res = r
			for _, sr := range r.Series {
				key := fmt.Sprintf("fig6/%s/%s", sr.Scheme, sr.Algorithm)
				g.add(key+"/ground_fraction", metrics.WilsonCI(sr.GroundHits, sr.Samples))
				g.add(key+"/mean_delta_e", bandCI(sr.MeanDeltaE, 0.25, 0.5))
			}
		}
	case "7":
		var r *experiments.Fig7Result
		r, err = experiments.Figure7(cfg)
		if err == nil {
			res = r
			for _, p := range r.Points {
				g.add(fmt.Sprintf("fig7/dE%g/p_star", p.DeltaEIS),
					metrics.BootstrapMeanCI(p.PStars, opts.Resamples, opts.Confidence, boot))
			}
			mono := 0.0
			if r.Monotone() {
				mono = 1
			}
			g.add("fig7/monotone", exactCI(mono))
		}
	case "8":
		var r *experiments.Fig8Result
		r, err = experiments.Figure8(cfg)
		if err == nil {
			res = r
			if fa, ok := r.BestTTS(experiments.Fig8FA); ok {
				g.add("fig8/fa/best_tts", bandCI(fa.TTS, 0.3, 2))
			}
			if fam, ok := r.BestFamilyTTS(); ok {
				g.add("fig8/family/best_tts", bandCI(fam.TTS, 0.3, 1))
			}
			if lo, hi, ok := r.FamilySuccessWindow(); ok {
				g.add("fig8/family/window_lo", bandCI(lo, 0, 0.045))
				g.add("fig8/family/window_hi", bandCI(hi, 0, 0.045))
			}
			for _, p := range r.PointsFor(experiments.Fig8RAGS) {
				if math.Abs(p.Sp-0.45) < 1e-9 || math.Abs(p.Sp-0.97) < 1e-9 {
					g.add(fmt.Sprintf("fig8/ra_gs/p_star@%.2f", p.Sp),
						metrics.WilsonCI(p.Successes, p.Reads))
				}
			}
		}
	case "pipeline":
		var r *experiments.PipelineResult
		r, err = experiments.PipelineFigure(cfg, 0)
		if err == nil {
			res = r
			g.add("pipeline/speedup_makespan", bandCI(r.SpeedupMakespan, 0.15, 0.1))
			g.add("pipeline/decode_rate",
				metrics.WilsonCI(int(r.DecodeRate*float64(r.Frames)+0.5), r.Frames))
		}
	case "fleet":
		var r *experiments.FleetScalingResult
		r, err = experiments.RunFleetScaling(cfg, 0, 0)
		if err == nil {
			res = r
			for _, row := range r.Rows {
				key := fmt.Sprintf("fleet/devices%d", row.Devices)
				g.add(key+"/speedup", bandCI(row.Speedup, 0.2, 0.2))
				g.add(key+"/served", exactCI(float64(row.Served)))
				g.add(key+"/miss_rate", bandCI(row.DeadlineMissRate, 0.25, 0.05))
			}
		}
	case "cran":
		// Reduced tier (4 shards × 4 QPUs, 48 cells) so the golden check
		// stays fast; the committed figure and bench records carry the full
		// 8-shard, 200-cell scale.
		var r *experiments.CRANResult
		r, err = experiments.RunCRAN(cfg, 4, 48, cran.PlacementHash)
		if err == nil {
			res = r
			for _, row := range r.Scaling {
				key := fmt.Sprintf("cran/shards%d", row.Shards)
				g.add(key+"/speedup", bandCI(row.Speedup, 0.2, 0.2))
				g.add(key+"/served", exactCI(float64(row.Served)))
			}
			for _, row := range r.Load {
				g.add(fmt.Sprintf("cran/load%gx/shed_rate", row.Multiplier),
					bandCI(row.ShedRate, 0.3, 0.05))
			}
		}
	case "hybrid":
		var r *experiments.HybridResult
		r, err = experiments.RunHybrid(cfg)
		if err == nil {
			res = r
			for _, row := range r.Rows {
				key := fmt.Sprintf("hybrid/%s/load%gx", row.Pool, row.Load)
				g.add(key+"/hit_rate", bandCI(row.DeadlineHitRate, 0.15, 0.05))
				g.add(key+"/served", exactCI(float64(row.Served)))
				g.add(key+"/classical_frames", exactCI(float64(row.ClassicalFrames)))
			}
		}
	case "ensemble":
		var r *experiments.EnsembleResult
		r, err = experiments.RunEnsemble(cfg, 0, nil)
		if err == nil {
			res = r
			for _, row := range r.Rows {
				key := "ensemble/" + row.Variant
				g.add(key+"/success", metrics.WilsonCI(row.Successes, row.Uses))
				g.add(key+"/soft_info_ber", metrics.WilsonCI(row.SoftInfoErrs, row.InfoBits))
				g.add(key+"/arms", exactCI(float64(row.Arms)))
			}
		}
	default:
		return nil, fmt.Errorf("validate: unknown golden figure %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("validate: figure %s: %w", name, err)
	}
	if g.Result, err = json.Marshal(res); err != nil {
		return nil, fmt.Errorf("validate: figure %s: %w", name, err)
	}
	return g, nil
}

func (g *Golden) add(name string, ci metrics.CI) {
	g.Metrics = append(g.Metrics, Metric{Name: name, CI: ci})
}

// UpdateGoldens regenerates every figure baseline under dir.
func UpdateGoldens(dir string, opts Options) error {
	for _, name := range GoldenFigures {
		g, err := RunGoldenFigure(name, opts)
		if err != nil {
			return err
		}
		if err := WriteGolden(dir, g); err != nil {
			return err
		}
	}
	return nil
}

// CheckGoldens re-runs every figure and diffs it against the committed
// baselines, accumulating one drift report.
func CheckGoldens(dir string, opts Options) (*DriftReport, error) {
	rep := &DriftReport{Schema: GoldenSchema}
	for _, name := range GoldenFigures {
		old, err := LoadGolden(dir, name)
		if err != nil {
			return nil, err
		}
		cur, err := RunGoldenFigure(name, opts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, CompareGolden(old, cur)...)
	}
	return rep, nil
}
