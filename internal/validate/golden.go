package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/metrics"
)

// GoldenSchema versions the golden-baseline JSON layout. Bump it when
// the file structure (not the measured values) changes; a mismatch asks
// for regeneration instead of misreading old files.
const GoldenSchema = 1

// Metric is one named summary statistic of a figure, with the interval
// the regression comparison operates on.
type Metric struct {
	Name string     `json:"name"`
	CI   metrics.CI `json:"ci"`
}

// Golden is one figure's committed baseline: the run's scale, the
// summary metrics, and the full structured result for archaeology.
type Golden struct {
	Schema    int             `json:"schema"`
	Figure    string          `json:"figure"`
	Seed      uint64          `json:"seed"`
	Instances int             `json:"instances"`
	Reads     int             `json:"reads"`
	Metrics   []Metric        `json:"metrics"`
	Result    json.RawMessage `json:"result"`
}

// goldenPath is the on-disk location of one figure's baseline.
func goldenPath(dir, figure string) string {
	return filepath.Join(dir, "figure"+figure+".golden.json")
}

// WriteGolden persists a baseline (indented, trailing newline — the file
// is committed and diffed).
func WriteGolden(dir string, g *Golden) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(goldenPath(dir, g.Figure), append(buf, '\n'), 0o644)
}

// LoadGolden reads and schema-checks one figure's baseline.
func LoadGolden(dir, figure string) (*Golden, error) {
	buf, err := os.ReadFile(goldenPath(dir, figure))
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(buf, &g); err != nil {
		return nil, fmt.Errorf("validate: golden %s: %w", figure, err)
	}
	if g.Schema != GoldenSchema {
		return nil, fmt.Errorf("validate: golden %s has schema %d, want %d — regenerate with -update-golden",
			figure, g.Schema, GoldenSchema)
	}
	return &g, nil
}

// Drift is one metric's old-vs-new comparison.
type Drift struct {
	Figure string     `json:"figure"`
	Metric string     `json:"metric"`
	Old    metrics.CI `json:"old"`
	New    metrics.CI `json:"new"`
	// Verdict is "ok" (intervals overlap), "drift" (they separated),
	// "missing" (baseline metric gone from the new run), or "new"
	// (unbaselined metric — commit it via -update-golden).
	Verdict string `json:"verdict"`
}

// DriftReport collects every figure's drifts for one comparison run.
type DriftReport struct {
	Schema int     `json:"schema"`
	Rows   []Drift `json:"rows"`
}

// Failures counts rows whose verdict is not "ok".
func (r *DriftReport) Failures() int {
	n := 0
	for _, d := range r.Rows {
		if d.Verdict != "ok" {
			n++
		}
	}
	return n
}

// WriteTable renders the drift report.
func (r *DriftReport) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "# Golden-baseline drift report (verdict by CI overlap)")
	fmt.Fprintf(w, "%-8s %-36s %28s %28s %s\n", "figure", "metric", "old [lo, hi]", "new [lo, hi]", "verdict")
	for _, d := range r.Rows {
		fmt.Fprintf(w, "%-8s %-36s %8.4f [%7.4f,%7.4f] %8.4f [%7.4f,%7.4f] %s\n",
			d.Figure, d.Metric, d.Old.Value, d.Old.Lo, d.Old.Hi,
			d.New.Value, d.New.Lo, d.New.Hi, d.Verdict)
	}
	fmt.Fprintf(w, "drift rows: %d of %d\n", r.Failures(), len(r.Rows))
}

// CompareGolden diffs a new run against a baseline by metric name:
// overlapping CIs are "ok", separated ones "drift", and set differences
// are "missing"/"new". Rows come back name-sorted for stable reports.
func CompareGolden(old, new *Golden) []Drift {
	oldBy := map[string]metrics.CI{}
	for _, m := range old.Metrics {
		oldBy[m.Name] = m.CI
	}
	var rows []Drift
	seen := map[string]bool{}
	for _, m := range new.Metrics {
		seen[m.Name] = true
		d := Drift{Figure: new.Figure, Metric: m.Name, New: m.CI}
		if o, ok := oldBy[m.Name]; ok {
			d.Old = o
			if o.Overlaps(m.CI) {
				d.Verdict = "ok"
			} else {
				d.Verdict = "drift"
			}
		} else {
			d.Verdict = "new"
		}
		rows = append(rows, d)
	}
	for name, o := range oldBy {
		if !seen[name] {
			rows = append(rows, Drift{Figure: new.Figure, Metric: name, Old: o, Verdict: "missing"})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Metric < rows[j].Metric })
	return rows
}
