package validate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestClaimRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.Name == "" || c.Figure == "" || c.Statement == "" || c.Eval == nil {
			t.Fatalf("incomplete claim %+v", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate claim name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(seen) != 9 {
		t.Fatalf("expected the 9 registered claims, got %d", len(seen))
	}
}

func TestGradeHelpers(t *testing.T) {
	above := metrics.CI{Value: 2, Lo: 1.6, Hi: 2.4}
	below := metrics.CI{Value: 0.5, Lo: 0.2, Hi: 0.9}
	straddle := metrics.CI{Value: 1.1, Lo: 0.8, Hi: 1.4}

	if e := gradeAbove("m", above, 1.5); e.Verdict != Pass || e.Stop != "ci-cleared" {
		t.Fatalf("gradeAbove clear: %+v", e)
	}
	if e := gradeAbove("m", below, 1.5); e.Verdict != Fail || e.Stop != "ci-crossed" {
		t.Fatalf("gradeAbove cross: %+v", e)
	}
	if e := gradeAbove("m", straddle, 1.0); e.Verdict != "" {
		t.Fatalf("gradeAbove undecided: %+v", e)
	}
	if e := gradeBelow("m", below, 1.0); e.Verdict != Pass {
		t.Fatalf("gradeBelow clear: %+v", e)
	}
	if e := gradeBelow("m", above, 1.0); e.Verdict != Fail {
		t.Fatalf("gradeBelow cross: %+v", e)
	}
	nan := metrics.CI{Value: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	if e := gradeAbove("m", nan, 1.0); e.Verdict != "" {
		t.Fatalf("NaN CI must stay undecided, got %+v", e)
	}
}

func TestCombineVerdicts(t *testing.T) {
	cases := []struct {
		name string
		in   []Verdict
		want Verdict
	}{
		{"empty", nil, Inconclusive},
		{"all pass", []Verdict{Pass, Pass}, Pass},
		{"any fail wins", []Verdict{Pass, Fail, Inconclusive}, Fail},
		{"undecided is inconclusive", []Verdict{Pass, ""}, Inconclusive},
		{"inconclusive sticks", []Verdict{Inconclusive, Pass}, Inconclusive},
	}
	for _, tc := range cases {
		var ests []Estimate
		for _, v := range tc.in {
			ests = append(ests, Estimate{Verdict: v})
		}
		if got := combine(ests); got != tc.want {
			t.Errorf("%s: combine = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestOptionsDefaultsAndInjection(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Config.Seed != 2020 || o.BatchReads <= 0 || o.MaxReads <= 0 ||
		o.Resamples <= 0 || o.Confidence != 95 || o.FleetDevices != 8 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	slashed := Options{Inject: "reads-slashed"}.withDefaults()
	if slashed.MaxReads != (o.MaxReads+9)/10 {
		t.Fatalf("reads-slashed kept MaxReads = %d (want %d)", slashed.MaxReads, (o.MaxReads+9)/10)
	}
}

func TestReportFailuresAndTable(t *testing.T) {
	rep := &Report{
		Seed: 2020, Confidence: 95, Inject: "ra-degraded",
		Claims: []ClaimResult{
			{Name: "a", Statement: "sa", Verdict: Pass,
				Estimates: []Estimate{{Metric: "m1", Gate: 1.5, Op: ">", Verdict: Pass, Stop: "ci-cleared", Batches: 2}}},
			{Name: "b", Statement: "sb", Verdict: Fail},
			{Name: "c", Statement: "sc", Verdict: Inconclusive, Err: "boom"},
		},
	}
	if got := rep.Failures(); got != 2 {
		t.Fatalf("Failures = %d, want 2", got)
	}
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"ra-degraded", "m1", "boom", "1 pass, 1 fail, 1 inconclusive"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// The cheap instance-counting claim doubles as the sequential-sampler
// integration test: deterministic, and decided from a fixed seed.
func TestFig3ClaimDeterministicPass(t *testing.T) {
	eval := claimByName(t, "fig3-simplification")
	run := func() ([]Estimate, int) {
		ests, reads, err := eval(NewEnv(Options{}))
		if err != nil {
			t.Fatal(err)
		}
		return ests, reads
	}
	e1, r1 := run()
	e2, r2 := run()
	if r1 != r2 || len(e1) != len(e2) {
		t.Fatalf("non-deterministic claim: %d/%d reads", r1, r2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("estimate %d differs across identical runs:\n%+v\n%+v", i, e1[i], e2[i])
		}
		if e1[i].Verdict != Pass {
			t.Fatalf("estimate %+v did not pass", e1[i])
		}
	}
}

func claimByName(t *testing.T, name string) func(*Env) ([]Estimate, int, error) {
	t.Helper()
	for _, c := range Claims() {
		if c.Name == name {
			return c.Eval
		}
	}
	t.Fatalf("claim %q not registered", name)
	return nil
}
