package validate

import (
	"testing"
)

// The acceptance property of the whole harness: an injected regression
// must flip a claim from pass to fail. The RA-candidate claim is the
// cheapest anneal-backed one (it decides in one batch both ways), so it
// carries the end-to-end test: honest sampling passes, a degraded
// greedy-search module (random candidate states) crosses the gate.
func TestRAClaimGatesInjectedRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-backed sequential test")
	}
	eval := claimByName(t, "fig8-ra-beats-fa")
	opts := Options{BatchReads: 200, MaxReads: 4000}

	ests, reads, err := eval(NewEnv(opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Pass {
		t.Fatalf("honest run should pass, got %+v", ests)
	}
	if reads <= 0 || ests[0].Stop != "ci-cleared" {
		t.Fatalf("expected ci-cleared with reads spent, got %+v after %d reads", ests[0], reads)
	}

	opts.Inject = "ra-degraded"
	ests, _, err = eval(NewEnv(opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Fail || ests[0].Stop != "ci-crossed" {
		t.Fatalf("degraded run should cross the gate, got %+v", ests)
	}
}

// A starved read budget must yield Inconclusive (which gates), never a
// spurious pass: one 20-read batch per arm cannot separate a 1.5× ratio.
func TestBudgetExhaustionIsInconclusive(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-backed sequential test")
	}
	eval := claimByName(t, "fig8-ra-beats-fa")
	ests, reads, err := eval(NewEnv(Options{BatchReads: 20, MaxReads: 40}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 {
		t.Fatalf("want 1 estimate, got %+v", ests)
	}
	if ests[0].Verdict != Inconclusive || ests[0].Stop != "budget-exhausted" {
		t.Fatalf("starved run should be inconclusive/budget-exhausted, got %+v", ests[0])
	}
	if reads > 40 {
		t.Fatalf("budget overrun: %d reads drawn under a 40-read cap", reads)
	}
	if combine(ests) == Pass {
		t.Fatal("inconclusive estimates must not pass the claim")
	}
}

// The fleet claim under the fleet-serial injection measures a 1× fleet
// against itself — the speedup gate must cross, not stall.
func TestFleetClaimGatesSerialInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("serves several fleet workloads")
	}
	eval := claimByName(t, "fleet-speedup")
	ests, _, err := eval(NewEnv(Options{Inject: "fleet-serial"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Fail {
		t.Fatalf("serial fleet should fail the 3x gate, got %+v", ests)
	}
	if ests[0].CI.Value != 1.0 {
		t.Fatalf("a pool serving against itself has speedup exactly 1, got %g", ests[0].CI.Value)
	}
}

// The C-RAN claim under the cran-single-shard injection measures a
// 1-shard tier against itself — the 2.5× gate must cross, not stall.
func TestCRANClaimGatesSingleShardInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("serves several tier workloads")
	}
	eval := claimByName(t, "cran-shard-scaling")
	ests, _, err := eval(NewEnv(Options{Inject: "cran-single-shard"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Fail {
		t.Fatalf("single-shard tier should fail the 2.5x gate, got %+v", ests)
	}
	if ests[0].CI.Value != 1.0 {
		t.Fatalf("a tier serving against itself has speedup exactly 1, got %g", ests[0].CI.Value)
	}
}

// The hybrid claim under the hybrid-routing-off injection pins every
// frame in the hybrid pool to the classical class, so the pool degrades
// into a worse all-classical tier (its two QPUs idle): both hit-rate
// advantage gates must cross, not stall.
func TestHybridClaimGatesRoutingOffInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("serves several fleet workloads")
	}
	eval := claimByName(t, "hybrid-routing")
	ests, _, err := eval(NewEnv(Options{Inject: "hybrid-routing-off"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("want 2 estimates, got %+v", ests)
	}
	for _, est := range ests {
		if est.Verdict != Fail || est.Stop != "ci-crossed" {
			t.Fatalf("routing-off run should cross the %s gate, got %+v", est.Metric, est)
		}
		if est.CI.Value >= 0 {
			t.Fatalf("forced-classical hybrid must lose to both baselines, got %s = %g", est.Metric, est.CI.Value)
		}
	}
}

// The ensemble claim under the ensemble-collapsed injection shrinks the
// detector to K=1 over the trivial {0.45} grid — the "ensemble" IS the
// single arm, every paired difference is identically zero, and the gate
// must cross immediately, never stall.
func TestEnsembleClaimGatesCollapseInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-backed sequential test")
	}
	eval := claimByName(t, "ensemble-ra")
	ests, reads, err := eval(NewEnv(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Pass || ests[0].Stop != "ci-cleared" {
		t.Fatalf("honest run should pass, got %+v", ests)
	}
	if reads <= 0 {
		t.Fatalf("no reads accounted for a %d-batch run", ests[0].Batches)
	}

	ests, _, err = eval(NewEnv(Options{Inject: "ensemble-collapsed"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Verdict != Fail || ests[0].Stop != "ci-crossed" {
		t.Fatalf("collapsed run should cross the gate, got %+v", ests)
	}
	if ests[0].CI.Value != 0 || ests[0].CI.Lo != 0 || ests[0].CI.Hi != 0 {
		t.Fatalf("a collapsed ensemble differs from itself by exactly zero, got %+v", ests[0].CI)
	}
}
