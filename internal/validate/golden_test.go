package validate

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func ci(v, lo, hi float64) metrics.CI {
	return metrics.CI{Value: v, Lo: lo, Hi: hi, Confidence: 95, N: 100}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := &Golden{
		Schema: GoldenSchema, Figure: "test", Seed: 2020, Instances: 3, Reads: 150,
		Metrics: []Metric{{Name: "x/y", CI: ci(1, 0.9, 1.1)}},
		Result:  json.RawMessage(`{"points":[]}`),
	}
	if err := WriteGolden(dir, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGolden(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 2020 || len(got.Metrics) != 1 || got.Metrics[0].Name != "x/y" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	buf, _ := os.ReadFile(goldenPath(dir, "test"))
	if buf[len(buf)-1] != '\n' {
		t.Fatal("golden files must end in a newline (they are committed)")
	}
}

func TestGoldenSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	g := &Golden{Schema: GoldenSchema + 1, Figure: "test"}
	if err := WriteGolden(dir, g); err != nil {
		t.Fatal(err)
	}
	_, err := LoadGolden(dir, "test")
	if err == nil || !strings.Contains(err.Error(), "-update-golden") {
		t.Fatalf("schema mismatch must ask for regeneration, got %v", err)
	}
}

func TestGoldenLoadMissing(t *testing.T) {
	if _, err := LoadGolden(t.TempDir(), "nope"); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestCompareGoldenVerdicts(t *testing.T) {
	old := &Golden{Figure: "f", Metrics: []Metric{
		{Name: "stable", CI: ci(1.0, 0.9, 1.1)},
		{Name: "drifted", CI: ci(1.0, 0.9, 1.1)},
		{Name: "gone", CI: ci(5, 4, 6)},
	}}
	cur := &Golden{Figure: "f", Metrics: []Metric{
		{Name: "stable", CI: ci(1.05, 0.95, 1.15)}, // overlaps
		{Name: "drifted", CI: ci(2.0, 1.8, 2.2)},   // separated
		{Name: "fresh", CI: ci(3, 2.9, 3.1)},       // unbaselined
	}}
	rows := CompareGolden(old, cur)
	byName := map[string]string{}
	for _, d := range rows {
		byName[d.Metric] = d.Verdict
	}
	want := map[string]string{"stable": "ok", "drifted": "drift", "gone": "missing", "fresh": "new"}
	for name, v := range want {
		if byName[name] != v {
			t.Errorf("%s: verdict %q, want %q", name, byName[name], v)
		}
	}
	rep := &DriftReport{Schema: GoldenSchema, Rows: rows}
	if rep.Failures() != 3 {
		t.Fatalf("Failures = %d, want 3 (drift+missing+new)", rep.Failures())
	}
	var sb strings.Builder
	rep.WriteTable(&sb)
	if !strings.Contains(sb.String(), "drift rows: 3 of 4") {
		t.Fatalf("report summary wrong:\n%s", sb.String())
	}
}

// Degenerate (exact) intervals compare by equality — the committed
// deterministic metrics drift on ANY change.
func TestCompareGoldenExactIntervals(t *testing.T) {
	old := &Golden{Figure: "f", Metrics: []Metric{{Name: "served", CI: exactCI(48)}}}
	same := &Golden{Figure: "f", Metrics: []Metric{{Name: "served", CI: exactCI(48)}}}
	moved := &Golden{Figure: "f", Metrics: []Metric{{Name: "served", CI: exactCI(47)}}}
	if CompareGolden(old, same)[0].Verdict != "ok" {
		t.Fatal("identical exact metrics must be ok")
	}
	if CompareGolden(old, moved)[0].Verdict != "drift" {
		t.Fatal("any change to an exact metric must drift")
	}
}

// The fastest real figure exercises the full snapshot → compare loop.
func TestFigure3GoldenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Figure 3 sweep")
	}
	dir := t.TempDir()
	opts := Options{}
	g, err := RunGoldenFigure("3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Metrics) == 0 || len(g.Result) == 0 {
		t.Fatalf("empty golden: %+v", g)
	}
	if err := WriteGolden(dir, g); err != nil {
		t.Fatal(err)
	}
	old, err := LoadGolden(dir, "3")
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunGoldenFigure("3", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range CompareGolden(old, again) {
		if d.Verdict != "ok" {
			t.Errorf("same-seed re-run drifted: %+v", d)
		}
	}
	// An injected regression in the preprocessing stats must be caught.
	broken := *again
	broken.Metrics = append([]Metric(nil), again.Metrics...)
	for i := range broken.Metrics {
		if broken.Metrics[i].Name == "fig3/small_simplified_ratio" {
			broken.Metrics[i].CI = ci(0.05, 0.01, 0.10)
		}
	}
	found := false
	for _, d := range CompareGolden(old, &broken) {
		if d.Metric == "fig3/small_simplified_ratio" && d.Verdict == "drift" {
			found = true
		}
	}
	if !found {
		t.Fatal("regressed simplification ratio not flagged as drift")
	}
}

func TestRunGoldenFigureUnknown(t *testing.T) {
	if _, err := RunGoldenFigure("nope", Options{}); err == nil {
		t.Fatal("unknown figure must error")
	}
}
