// Package validate is the statistical validation harness: it encodes the
// paper's headline observations as typed, machine-checkable Claims and
// decides each with seeded bootstrap confidence intervals instead of
// point estimates. Samples are drawn through the same fleet/annealer
// lease path production frames take, in sequential batches (SPRT-style):
// a claim keeps drawing anneal reads until its CI clears the gate (pass),
// crosses it (fail), or the read budget runs out (inconclusive — which
// gates just as hard as a failure).
//
// The second half of the harness is golden-baseline regression: every
// paper figure is summarized into named metrics with confidence
// intervals, snapshotted under results/golden/, and compared by CI
// overlap on later runs — drift reports name the metric, both intervals,
// and a verdict, instead of diffing floats.
package validate

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/annealer"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Verdict is a claim's (or estimate's) decision.
type Verdict string

// The three decisions a sequential test can reach. Inconclusive means
// the budget ran out before the CI separated from the gate — for gating
// purposes that is a failure (the claim is not demonstrated).
const (
	Pass         Verdict = "pass"
	Fail         Verdict = "fail"
	Inconclusive Verdict = "inconclusive"
)

// Options tunes a validation run.
type Options struct {
	// Config scales the underlying experiments (zero value: the
	// validation defaults — seed 2020, calibrated profile, 30 sweeps/μs).
	Config experiments.Config
	// BatchReads is the per-arm batch size of the sequential sampler.
	BatchReads int
	// MaxReads caps the total reads one claim may draw across all of its
	// arms — the CI-budget knob. Exhausting it yields Inconclusive.
	MaxReads int
	// Resamples and Confidence parameterize the bootstrap.
	Resamples  int
	Confidence float64
	// FleetDevices is the pool size the fleet-speedup claim scales to.
	FleetDevices int
	// Inject enables a deliberate regression for harness self-tests:
	// "ra-degraded" replaces every RA candidate state with random spins,
	// "reads-slashed" cuts MaxReads 10×, "fleet-serial" serves the
	// scaled fleet with one device, "cran-single-shard" serves the scaled
	// C-RAN tier with one shard, "hybrid-routing-off" pins every frame in
	// the hybrid pool to the classical class, "ensemble-collapsed"
	// shrinks the RA ensemble to K=1 over the trivial {0.45} grid.
	// Empty: no injection.
	Inject string
}

func (o Options) withDefaults() Options {
	c := &o.Config
	if c.Seed == 0 {
		c.Seed = 2020
	}
	if c.Instances <= 0 {
		c.Instances = 3
	}
	if c.Reads <= 0 {
		c.Reads = 150
	}
	if c.SweepsPerMicrosecond <= 0 {
		c.SweepsPerMicrosecond = 30
	}
	if c.Profile == nil {
		prof := annealer.CalibratedProfile()
		c.Profile = &prof
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
		if c.Parallelism > 8 {
			c.Parallelism = 8
		}
	}
	if o.BatchReads <= 0 {
		o.BatchReads = 250
	}
	if o.MaxReads <= 0 {
		o.MaxReads = 30000
	}
	if o.Resamples <= 0 {
		o.Resamples = 500
	}
	if o.Confidence <= 0 || o.Confidence >= 100 {
		o.Confidence = 95
	}
	if o.FleetDevices <= 0 {
		o.FleetDevices = 8
	}
	if o.Inject == "reads-slashed" {
		o.MaxReads = (o.MaxReads + 9) / 10
	}
	return o
}

// Estimate is one gated statistic of a claim: the bootstrap CI, the gate
// it must clear, and how the sequential test stopped.
type Estimate struct {
	Metric string     `json:"metric"`
	CI     metrics.CI `json:"ci"`
	Gate   float64    `json:"gate"`
	// Op is ">" (CI must lie above Gate) or "<" (below).
	Op      string  `json:"op"`
	Verdict Verdict `json:"verdict"`
	// Stop records why sampling ended for this estimate: "ci-cleared",
	// "ci-crossed", or "budget-exhausted".
	Stop string `json:"stop"`
	// Batches is the number of sequential rounds drawn before stopping.
	Batches int `json:"batches"`
}

// gradeAbove grades a "statistic exceeds gate" estimate; the verdict
// stays empty while the CI still straddles the gate.
func gradeAbove(metric string, ci metrics.CI, gate float64) Estimate {
	e := Estimate{Metric: metric, CI: ci, Gate: gate, Op: ">"}
	switch {
	case ci.Above(gate):
		e.Verdict, e.Stop = Pass, "ci-cleared"
	case ci.Below(gate):
		e.Verdict, e.Stop = Fail, "ci-crossed"
	}
	return e
}

// gradeBelow is gradeAbove mirrored: the CI must lie under the gate.
func gradeBelow(metric string, ci metrics.CI, gate float64) Estimate {
	e := Estimate{Metric: metric, CI: ci, Gate: gate, Op: "<"}
	switch {
	case ci.Below(gate):
		e.Verdict, e.Stop = Pass, "ci-cleared"
	case ci.Above(gate):
		e.Verdict, e.Stop = Fail, "ci-crossed"
	}
	return e
}

// ClaimResult is one claim's decision with its evidence.
type ClaimResult struct {
	Name      string     `json:"name"`
	Figure    string     `json:"figure"`
	Statement string     `json:"statement"`
	Verdict   Verdict    `json:"verdict"`
	Reads     int        `json:"reads"` // samples consumed by the claim
	Estimates []Estimate `json:"estimates"`
	Err       string     `json:"error,omitempty"`
}

// Report is a full validation run.
type Report struct {
	Schema     int           `json:"schema"`
	Seed       uint64        `json:"seed"`
	Confidence float64       `json:"confidence"`
	Inject     string        `json:"inject,omitempty"`
	Claims     []ClaimResult `json:"claims"`
}

// Failures counts claims that did not pass (failed, inconclusive, or
// errored) — the process exit criterion.
func (r *Report) Failures() int {
	n := 0
	for _, c := range r.Claims {
		if c.Verdict != Pass {
			n++
		}
	}
	return n
}

// WriteTable renders the run for humans.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Claim validation: seed %d, %g%% bootstrap CIs", r.Seed, r.Confidence)
	if r.Inject != "" {
		fmt.Fprintf(w, " [injected regression: %s]", r.Inject)
	}
	fmt.Fprintln(w)
	pass, fail, inc := 0, 0, 0
	for _, c := range r.Claims {
		fmt.Fprintf(w, "%-28s %-12s %s (%d reads)\n", c.Name, string(c.Verdict), c.Statement, c.Reads)
		if c.Err != "" {
			fmt.Fprintf(w, "    error: %s\n", c.Err)
		}
		for _, e := range c.Estimates {
			fmt.Fprintf(w, "    %-32s %8.4f [%8.4f, %8.4f] %s %g  %s/%s (%d batches)\n",
				e.Metric, e.CI.Value, e.CI.Lo, e.CI.Hi, e.Op, e.Gate,
				string(e.Verdict), e.Stop, e.Batches)
		}
		switch c.Verdict {
		case Pass:
			pass++
		case Fail:
			fail++
		default:
			inc++
		}
	}
	fmt.Fprintf(w, "claims: %d pass, %d fail, %d inconclusive\n", pass, fail, inc)
}

// Env is the evaluation environment claims sample in: the scaled config,
// the budget, and the root randomness every claim splits its own
// deterministic streams from.
type Env struct {
	opts Options
	root *rng.Source
}

// NewEnv builds an environment from options (defaults applied).
func NewEnv(opts Options) *Env {
	o := opts.withDefaults()
	return &Env{opts: o, root: rng.New(o.Config.Seed).SplitString("validate")}
}

// Options returns the environment's normalized options.
func (e *Env) Options() Options { return e.opts }

// claimRng derives a claim's private randomness stream.
func (e *Env) claimRng(name string) *rng.Source { return e.root.SplitString(name) }

// Run evaluates every registered claim and assembles the report. An
// evaluation error fails its claim but does not abort the run.
func Run(opts Options) *Report {
	env := NewEnv(opts)
	rep := &Report{
		Schema:     GoldenSchema,
		Seed:       env.opts.Config.Seed,
		Confidence: env.opts.Confidence,
		Inject:     env.opts.Inject,
	}
	for _, cl := range Claims() {
		res := ClaimResult{Name: cl.Name, Figure: cl.Figure, Statement: cl.Statement}
		ests, reads, err := cl.Eval(env)
		res.Estimates, res.Reads = ests, reads
		if err != nil {
			res.Verdict, res.Err = Fail, err.Error()
		} else {
			res.Verdict = combine(ests)
		}
		rep.Claims = append(rep.Claims, res)
	}
	return rep
}

// combine folds estimate verdicts into the claim verdict: any failure
// fails the claim; any undecided estimate leaves it inconclusive.
func combine(ests []Estimate) Verdict {
	v := Pass
	for _, e := range ests {
		switch e.Verdict {
		case Fail:
			return Fail
		case Pass:
		default:
			v = Inconclusive
		}
	}
	if len(ests) == 0 {
		return Inconclusive
	}
	return v
}
