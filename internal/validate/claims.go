package validate

import (
	"context"
	"fmt"
	"math"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/cran"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Claim is one paper invariant under statistical test.
type Claim struct {
	Name      string
	Figure    string
	Statement string
	// Eval samples until decided and returns the gated estimates plus
	// the reads (samples) it consumed.
	Eval func(e *Env) ([]Estimate, int, error)
}

// Claims returns the registered paper claims, in report order. Gates are
// calibrated against the committed seed-2020 tables with wide margins:
// each gate sits far enough from the measured value that an honest
// re-run decides quickly, and far enough from the null that a regressed
// solver crosses instead of stalling.
func Claims() []Claim {
	return []Claim{
		{
			Name:      "fig8-ra-beats-fa",
			Figure:    "8",
			Statement: "RA from a good candidate beats FA on success probability (p* ratio > 1.5 at each solver's favorable s_p)",
			Eval:      evalRABeatsFA,
		},
		{
			Name:      "fig8-freeze-erase",
			Figure:    "8",
			Statement: "RA-GS p*(s_p) is non-monotone: the mid-s_p peak beats both the frozen (s_p->1) and erased (s_p->0) ends",
			Eval:      evalFreezeErase,
		},
		{
			Name:      "fig8-tts-ordering",
			Figure:    "8",
			Statement: "TTS at s_p = 0.57: RA beats FA and FR-oracle by >= 1.25x; FR-oracle tracks FA (ratio in [0.7, 1.4])",
			Eval:      evalTTSOrdering,
		},
		{
			Name:      "fig3-simplification",
			Figure:    "3",
			Statement: "QUBO simplification fires on small problems (ratio > 0.5 at <= 12 vars) and vanishes on large ones (ratio < 0.3 at >= 40 vars)",
			Eval:      evalFig3Window,
		},
		{
			Name:      "fleet-speedup",
			Figure:    "fleet",
			Statement: "a multi-QPU fleet serves the reference workload >= 3x faster than one device",
			Eval:      evalFleetSpeedup,
		},
		{
			Name:      "cran-shard-scaling",
			Figure:    "cran",
			Statement: "the sharded C-RAN serving tier scales near-linearly: 4 shards serve the city workload >= 2.5x faster than one",
			Eval:      evalCRANShardScaling,
		},
		{
			Name:      "hybrid-routing",
			Figure:    "hybrid",
			Statement: "hardness/deadline-aware hybrid routing beats both the all-QPU and all-classical pools on mixed-workload deadline-hit rate",
			Eval:      evalHybridRouting,
		},
		{
			Name:      "ensemble-ra",
			Figure:    "ensemble",
			Statement: "flexible-parallelism RA (K=4 candidates x 3-point s_p grid) beats the single-RA arm on success probability by a CI-cleared margin",
			Eval:      evalEnsembleRA,
		},
		{
			Name:      "classical-ber-parity",
			Figure:    "hybrid",
			Statement: "a default simulated-annealing backend decodes easy uplink frames at BER parity with the QPU-sim hybrid (excess BER < 2%)",
			Eval:      evalClassicalBERParity,
		},
	}
}

// fig8Instance reproduces the Figure 7/8 study instance.
func (e *Env) fig8Instance() (*instance.Instance, error) {
	return instance.Synthesize(instance.Spec{
		Users: 8, Scheme: modulation.QAM16, Seed: e.opts.Config.Seed ^ 0x88,
	})
}

// candidate applies the ra-degraded injection: a regressed greedy-search
// module hands RA an uncorrelated random state instead of a near-ground
// candidate.
func (e *Env) candidate(good []int8, r *rng.Source) []int8 {
	if e.opts.Inject != "ra-degraded" {
		return good
	}
	bad := make([]int8, len(good))
	for i := range bad {
		bad[i] = 1
		if r.Bool() {
			bad[i] = -1
		}
	}
	return bad
}

// pVector is the arm's Bernoulli sample vector.
func pVector(a *arm) []float64 { return metrics.BernoulliVector(a.successes, a.trials) }

// evalRABeatsFA tests the headline Figure 8 separation: RA seeded with a
// representative-quality candidate (ΔE_IS% ≈ 5, the paper's yellow
// family) at its favorable s_p = 0.77 versus FA at its own best
// s_p = 0.41. Committed seed-2020 values: p*_RA ≈ 0.79, p*_FA ≈ 0.29
// (ratio ≈ 2.7); the gate of 1.5 leaves margin on both sides.
func evalRABeatsFA(e *Env) ([]Estimate, int, error) {
	in, err := e.fig8Instance()
	if err != nil {
		return nil, 0, err
	}
	is := in.Reduction.Ising
	r := e.claimRng("fig8-ra-beats-fa")
	cand, _ := experiments.CandidateAtQuality(is, in.GroundSpins, in.GroundEnergy, 5, r.SplitString("cand"))
	cand = e.candidate(cand, r.SplitString("inject"))

	fa, err := annealer.Forward(1, 0.41, 1)
	if err != nil {
		return nil, 0, err
	}
	ra, err := annealer.Reverse(0.77, 1)
	if err != nil {
		return nil, 0, err
	}
	faArm, err := e.newArm("fa", fa, nil, r.SplitString("fa"))
	if err != nil {
		return nil, 0, err
	}
	raArm, err := e.newArm("ra", ra, cand, r.SplitString("ra"))
	if err != nil {
		return nil, 0, err
	}
	boot := r.SplitString("bootstrap")
	judge := func() []Estimate {
		ci := metrics.BootstrapCI2(pVector(raArm), pVector(faArm), ratioStat,
			e.opts.Resamples, e.opts.Confidence, boot)
		return []Estimate{gradeAbove("p_star_ratio_ra_over_fa", ci, 1.5)}
	}
	return e.sequential([]*arm{raArm, faArm}, is, in.GroundEnergy, 0, judge)
}

// ratioStat is mean(xs)/mean(ys) with a +Inf guard for a zero
// denominator resample.
func ratioStat(xs, ys []float64) float64 {
	den := metrics.Mean(ys)
	if den == 0 {
		return math.Inf(1)
	}
	return metrics.Mean(xs) / den
}

// evalFreezeErase tests Figure 8's physics story for the RA-GS curve:
// reverse annealing from the greedy candidate peaks at intermediate s_p
// (≈ 0.45) and degrades toward BOTH ends — at s_p→1 the anneal freezes
// and merely returns the (excited) candidate, at s_p→0 the transverse
// field erases it. Committed seed-2020 values: p*(0.45) ≈ 0.38,
// p*(0.97) = 0.00, p*(0.25) ≈ 0.25.
func evalFreezeErase(e *Env) ([]Estimate, int, error) {
	in, err := e.fig8Instance()
	if err != nil {
		return nil, 0, err
	}
	is := in.Reduction.Ising
	r := e.claimRng("fig8-freeze-erase")
	cand := e.candidate(qubo.GreedySearchIsing(is, qubo.OrderDescending), r.SplitString("inject"))

	sps := []float64{0.45, 0.97, 0.25} // peak, frozen, erased
	arms := make([]*arm, len(sps))
	for i, sp := range sps {
		ra, err := annealer.Reverse(sp, 1)
		if err != nil {
			return nil, 0, err
		}
		arms[i], err = e.newArm(fmt.Sprintf("ra-gs@%.2f", sp), ra, cand, r.SplitString(fmt.Sprintf("sp/%g", sp)))
		if err != nil {
			return nil, 0, err
		}
	}
	peak, frozen, erased := arms[0], arms[1], arms[2]
	boot := r.SplitString("bootstrap")
	judge := func() []Estimate {
		freeze := metrics.BootstrapCI2(pVector(peak), pVector(frozen), diffStat,
			e.opts.Resamples, e.opts.Confidence, boot)
		erase := metrics.BootstrapCI2(pVector(peak), pVector(erased), diffStat,
			e.opts.Resamples, e.opts.Confidence, boot)
		return []Estimate{
			gradeAbove("p_peak_minus_p_frozen", freeze, 0.02),
			gradeAbove("p_peak_minus_p_erased", erase, 0.02),
		}
	}
	return e.sequential(arms, is, in.GroundEnergy, 0, judge)
}

// diffStat is mean(xs) − mean(ys).
func diffStat(xs, ys []float64) float64 { return metrics.Mean(xs) - metrics.Mean(ys) }

// evalTTSOrdering tests the three-solver time-to-solution comparison at
// the paper's operating point s_p = 0.57. What survives honest
// sequential estimation on this surrogate is: RA from a good candidate
// beats both FA and the FR-oracle by a wide margin (measured ≈ 1.7×,
// gate 1.25×), while FR-oracle and FA are statistically close (honest
// ratio ≈ 0.9; gated to the band [0.7, 1.4]). The committed figure's
// stronger FA > FR > RA ordering rests on the oracle's argmax over
// 200-read c_p probes — winner's-curse inflation that continued
// sampling washes out; see DESIGN.md's Validation section. The FR
// oracle is reproduced as Figure 8 builds it — a probe round over the
// c_p grid (selected on probe TTS), then only the winner keeps
// sampling.
func evalTTSOrdering(e *Env) ([]Estimate, int, error) {
	in, err := e.fig8Instance()
	if err != nil {
		return nil, 0, err
	}
	is := in.Reduction.Ising
	r := e.claimRng("fig8-tts-ordering")
	const sp = 0.57
	cand, _ := experiments.CandidateAtQuality(is, in.GroundSpins, in.GroundEnergy, 5, r.SplitString("cand"))
	cand = e.candidate(cand, r.SplitString("inject"))

	fa, err := annealer.Forward(1, sp, 1)
	if err != nil {
		return nil, 0, err
	}
	ra, err := annealer.Reverse(sp, 1)
	if err != nil {
		return nil, 0, err
	}
	faArm, err := e.newArm("fa", fa, nil, r.SplitString("fa"))
	if err != nil {
		return nil, 0, err
	}
	raArm, err := e.newArm("ra", ra, cand, r.SplitString("ra"))
	if err != nil {
		return nil, 0, err
	}

	// Oracle probe: two batches per c_p candidate, keep the arm with the
	// best probe TTS (the oracle's own selection metric); its probe
	// counts stay in the estimate, like the figure's argmax construction,
	// but continued sampling dominates them.
	probeSpent := 0
	probeReads := 2 * e.opts.BatchReads
	var frArm *arm
	for cp := sp + 0.08; cp <= 1.0; cp += 0.08 {
		cp = math.Round(cp*100) / 100
		fr, err := annealer.ForwardReverse(cp, sp, 1, 1)
		if err != nil {
			return nil, 0, err
		}
		a, err := e.newArm(fmt.Sprintf("fr@%.2f", cp), fr, nil, r.SplitString(fmt.Sprintf("fr/%.2f", cp)))
		if err != nil {
			return nil, 0, err
		}
		if err := a.draw(is, in.GroundEnergy, probeReads); err != nil {
			return nil, probeSpent, err
		}
		probeSpent += probeReads
		if frArm == nil || metrics.TTS(a.dur, a.p(), 99) < metrics.TTS(frArm.dur, frArm.p(), 99) {
			frArm = a
		}
	}

	boot := r.SplitString("bootstrap")
	judge := func() []Estimate {
		faOverRA := metrics.BootstrapCI2(pVector(faArm), pVector(raArm), ttsRatioStat(faArm.dur, raArm.dur),
			e.opts.Resamples, e.opts.Confidence, boot)
		frOverRA := metrics.BootstrapCI2(pVector(frArm), pVector(raArm), ttsRatioStat(frArm.dur, raArm.dur),
			e.opts.Resamples, e.opts.Confidence, boot)
		faOverFR := metrics.BootstrapCI2(pVector(faArm), pVector(frArm), ttsRatioStat(faArm.dur, frArm.dur),
			e.opts.Resamples, e.opts.Confidence, boot)
		return []Estimate{
			gradeAbove("tts_fa_over_ra", faOverRA, 1.25),
			gradeAbove("tts_fr_over_ra", frOverRA, 1.25),
			gradeAbove("tts_fa_over_fr_lower", faOverFR, 0.7),
			gradeBelow("tts_fa_over_fr_upper", faOverFR, 1.4),
		}
	}
	ests, spent, err := e.sequential([]*arm{faArm, frArm, raArm}, is, in.GroundEnergy, probeSpent, judge)
	return ests, probeSpent + spent, err
}

// ttsRatioStat builds the two-sample statistic TTS(durX, p̂x)/TTS(durY,
// p̂y) at the figures' C_t = 99%. A zero-success resample makes the
// corresponding TTS +Inf, pushing the resample to the distribution edge.
func ttsRatioStat(durX, durY float64) func(xs, ys []float64) float64 {
	return func(xs, ys []float64) float64 {
		tx := metrics.TTS(durX, metrics.Mean(xs), 99)
		ty := metrics.TTS(durY, metrics.Mean(ys), 99)
		if math.IsInf(ty, 1) {
			if math.IsInf(tx, 1) {
				return 1
			}
			return 0
		}
		return tx / ty
	}
}

// evalFig3Window tests Figure 3's size window for the Lewis–Glover
// simplification: pooled over BPSK/QPSK/16-QAM, preprocessing fixes at
// least one variable on most small instances (≤ 12 variables) and on
// almost no large ones (≥ 40 variables). No anneals are involved — the
// sequential sampler draws fresh instance corpora per round; each
// preprocessed instance counts one read against the budget.
func evalFig3Window(e *Env) ([]Estimate, int, error) {
	r := e.claimRng("fig3-simplification")
	boot := r.SplitString("bootstrap")
	schemes := []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16}
	smallVars := []int{4, 8, 12}
	largeVars := []int{40, 44, 48}
	const perPoint = 2 // instances per (scheme, size) per round

	var smallSucc, smallTrials, largeSucc, largeTrials int
	pool := func(vars []int, round int) (succ, trials int, err error) {
		for _, s := range schemes {
			for _, v := range vars {
				if v%s.BitsPerSymbol() != 0 {
					continue
				}
				seed := e.opts.Config.Seed ^ uint64(v*131+int(s)) ^ uint64(round)<<20
				insts, err := instance.Corpus(instance.Spec{Users: v / s.BitsPerSymbol(), Scheme: s}, seed, perPoint)
				if err != nil {
					return 0, 0, err
				}
				for _, in := range insts {
					if qubo.Preprocess(in.Reduction.Ising.ToQUBO()).Simplified {
						succ++
					}
					trials++
				}
			}
		}
		return succ, trials, nil
	}

	spent, batches := 0, 0
	for {
		ss, st, err := pool(smallVars, batches)
		if err != nil {
			return nil, spent, err
		}
		ls, lt, err := pool(largeVars, batches)
		if err != nil {
			return nil, spent, err
		}
		smallSucc, smallTrials = smallSucc+ss, smallTrials+st
		largeSucc, largeTrials = largeSucc+ls, largeTrials+lt
		spent += st + lt
		batches++

		small := metrics.BootstrapCI(metrics.BernoulliVector(smallSucc, smallTrials),
			metrics.Mean, e.opts.Resamples, e.opts.Confidence, boot)
		large := metrics.BootstrapCI(metrics.BernoulliVector(largeSucc, largeTrials),
			metrics.Mean, e.opts.Resamples, e.opts.Confidence, boot)
		ests := []Estimate{
			gradeAbove("small_simplified_ratio", small, 0.5),
			gradeBelow("large_simplified_ratio", large, 0.3),
		}
		done := true
		for i := range ests {
			ests[i].Batches = batches
			if ests[i].Verdict == "" {
				done = false
			}
		}
		if done {
			return ests, spent, nil
		}
		if spent+st+lt > e.opts.MaxReads || batches >= 16 {
			for i := range ests {
				if ests[i].Verdict == "" {
					ests[i].Verdict = Inconclusive
					ests[i].Stop = "budget-exhausted"
				}
			}
			return ests, spent, nil
		}
	}
}

// evalFleetSpeedup tests the fleet scheduler's scaling claim: the
// reference backlogged workload (concurrent 8-user 16-QAM detection
// streams) is served once by a single device and once by the scaled
// pool, per replicate workload seed; the mean throughput speedup across
// replicates must clear 3×. Replicates are added sequentially until the
// bootstrap CI decides. Committed seed-2020 scaling: 5.95× at 8 devices.
func evalFleetSpeedup(e *Env) ([]Estimate, int, error) {
	const (
		streams   = 6
		perStream = 4
		interval  = 100.0
		reads     = 30
	)
	devices := e.opts.FleetDevices
	if e.opts.Inject == "fleet-serial" {
		devices = 1
	}
	r := e.claimRng("fleet-speedup")
	boot := r.SplitString("bootstrap")

	replicate := func(rep int) (float64, int, error) {
		seed := e.opts.Config.Seed ^ uint64(0xF1EE+rep*1009)
		insts, err := instance.Corpus(instance.Spec{Users: 8, Scheme: modulation.QAM16}, seed, 4)
		if err != nil {
			return 0, 0, err
		}
		var reqs []fleet.Request
		gs := core.GreedyModule{}
		wr := r.Split(uint64(rep))
		for s := 0; s < streams; s++ {
			for q := 0; q < perStream; q++ {
				inst := insts[(s+q)%len(insts)]
				init, err := gs.Initialize(inst.Reduction, wr.Split(uint64(s*perStream+q)))
				if err != nil {
					return 0, 0, err
				}
				reqs = append(reqs, fleet.Request{
					Stream: s, Seq: q,
					Arrival:      float64(q) * interval,
					Problem:      inst.Reduction.Ising,
					InitialState: init,
				})
			}
		}
		serve := func(n int) (float64, error) {
			out, err := fleet.Serve(context.Background(), fleet.Config{
				Devices:          fleet.DefaultDevices(n),
				NumReads:         reads,
				BatchMax:         4,
				StreamQueueBound: 64,
				Seed:             seed,
			}, reqs)
			if err != nil {
				return 0, err
			}
			return out.Report.ThroughputPerSecond, nil
		}
		base, err := serve(1)
		if err != nil {
			return 0, 0, err
		}
		scaled, err := serve(devices)
		if err != nil {
			return 0, 0, err
		}
		if base == 0 {
			return 0, 0, fmt.Errorf("validate: single-device fleet served nothing")
		}
		return scaled / base, len(reqs) * reads * 2, nil
	}

	var speedups []float64
	spent, batches := 0, 0
	const minReplicates, maxReplicates = 3, 6
	for rep := 0; ; rep++ {
		sp, reads, err := replicate(rep)
		if err != nil {
			return nil, spent, err
		}
		speedups = append(speedups, sp)
		spent += reads
		if len(speedups) < minReplicates {
			continue
		}
		batches++
		ci := metrics.BootstrapMeanCI(speedups, e.opts.Resamples, e.opts.Confidence, boot)
		est := gradeAbove(fmt.Sprintf("fleet_speedup_%dx1", devices), ci, 3.0)
		est.Batches = batches
		if est.Verdict != "" {
			return []Estimate{est}, spent, nil
		}
		if len(speedups) >= maxReplicates {
			est.Verdict, est.Stop = Inconclusive, "budget-exhausted"
			return []Estimate{est}, spent, nil
		}
	}
}

// evalHybridRouting tests the heterogeneous-fleet claim: on the mixed
// easy/hard deadline workload at 2× load, the hybrid pool (2 QPU + 1 PT
// + 1 SA with hardness/deadline routing) must beat BOTH same-size
// homogeneous baselines on deadline-hit rate. The separation is
// structural: the easy streams' deadlines sit under the QPU programming
// floor (all-QPU forfeits them), and the hard frames' Monte-Carlo cost
// drowns a classical-only pool under backlog. Committed seed-2020
// per-replicate diffs: ≈ +0.33 over all-QPU, ≈ +0.15 over
// all-classical; gates of 0.2 and 0.06 leave margin on both sides, and
// the "hybrid-routing-off" injection (every frame forced classical)
// lands at ≈ −0.06 / −0.23 — decisively across both gates.
func evalHybridRouting(e *Env) ([]Estimate, int, error) {
	r := e.claimRng("hybrid-routing")
	boot := r.SplitString("bootstrap")
	var router fleet.RouterConfig
	if e.opts.Inject == "hybrid-routing-off" {
		router.ForceClass = fleet.ClassClassical
	}

	replicate := func(rep int) (dq, dc float64, reads int, err error) {
		seed := e.opts.Config.Seed ^ uint64(0x4B1D+rep*6151)
		reqs, err := experiments.HybridWorkload(e.opts.Config, seed, 2)
		if err != nil {
			return 0, 0, 0, err
		}
		hit := make(map[string]float64, 3)
		for _, pool := range experiments.HybridPools() {
			rc := fleet.RouterConfig{}
			if pool.Name == "hybrid" {
				rc = router
			}
			rep2, err := experiments.ServeHybridPool(e.opts.Config, pool.Devices, pool.Route, rc, seed, reqs)
			if err != nil {
				return 0, 0, 0, err
			}
			hit[pool.Name] = 1 - rep2.DeadlineMissRate
		}
		reads = 3 * len(reqs) * experiments.HybridReads
		return hit["hybrid"] - hit["all-qpu"], hit["hybrid"] - hit["all-classical"], reads, nil
	}

	var overQPU, overClassical []float64
	spent, batches := 0, 0
	const minReplicates, maxReplicates = 3, 6
	for rep := 0; ; rep++ {
		dq, dc, reads, err := replicate(rep)
		if err != nil {
			return nil, spent, err
		}
		overQPU = append(overQPU, dq)
		overClassical = append(overClassical, dc)
		spent += reads
		if len(overQPU) < minReplicates {
			continue
		}
		batches++
		qpuCI := metrics.BootstrapMeanCI(overQPU, e.opts.Resamples, e.opts.Confidence, boot)
		classicalCI := metrics.BootstrapMeanCI(overClassical, e.opts.Resamples, e.opts.Confidence, boot)
		ests := []Estimate{
			gradeAbove("hybrid_hit_minus_all_qpu", qpuCI, 0.2),
			gradeAbove("hybrid_hit_minus_all_classical", classicalCI, 0.06),
		}
		done := true
		for i := range ests {
			ests[i].Batches = batches
			if ests[i].Verdict == "" {
				done = false
			}
		}
		if done {
			return ests, spent, nil
		}
		if len(overQPU) >= maxReplicates || spent >= e.opts.MaxReads {
			for i := range ests {
				if ests[i].Verdict == "" {
					ests[i].Verdict, ests[i].Stop = Inconclusive, "budget-exhausted"
				}
			}
			return ests, spent, nil
		}
	}
}

// evalClassicalBERParity tests the surrogate-quality half of the
// heterogeneous-fleet story: on the easy end of the workload (3-user
// QPSK uplink at 12 dB), a default simulated-annealing backend seeded
// with the same greedy candidate decodes at the same bit error rate as
// the QPU-sim hybrid — easy frames lose nothing by routing classical.
// Both arms sit at or near BER 0 on this corpus, so the gate of 2%
// excess BER is many bit-errors wide.
func evalClassicalBERParity(e *Env) ([]Estimate, int, error) {
	const (
		users     = 3
		snrDB     = 12.0
		frames    = 12
		readsEach = 10
	)
	r := e.claimRng("classical-ber-parity")
	boot := r.SplitString("bootstrap")
	scheme := modulation.QPSK
	bitsPerFrame := users * scheme.BitsPerSymbol()

	replicate := func(rep int) (diff float64, reads int, err error) {
		seed := e.opts.Config.Seed ^ uint64(0xBE12+rep*7919)
		n0 := channel.NoiseVarianceForSNR(snrDB, users)
		insts, err := instance.Corpus(instance.Spec{
			Users: users, Scheme: scheme, Channel: channel.Rayleigh,
			NoiseVariance: n0,
		}, seed, frames)
		if err != nil {
			return 0, 0, err
		}
		wr := r.SplitString("replicate").Split(uint64(rep))
		qErr, cErr := 0, 0
		for fi, in := range insts {
			fr := wr.Split(uint64(fi))
			out, err := (&core.Hybrid{NumReads: readsEach}).Solve(in.Reduction, fr.SplitString("qpu"))
			if err != nil {
				return 0, 0, err
			}
			qErr += mimo.BitErrors(scheme, out.Symbols, in.Transmitted)
			cr := fr.SplitString("sa")
			var best qubo.Sample
			for k := 0; k < readsEach; k++ {
				s := qubo.SimulatedAnnealingFrom(in.Reduction.Ising, cr.Split(uint64(k)), out.InitialState, qubo.SAOptions{})
				if k == 0 || s.Energy < best.Energy {
					best = s
				}
			}
			cErr += mimo.BitErrors(scheme, in.Reduction.DecodeSpins(best.Spins), in.Transmitted)
		}
		bits := float64(frames * bitsPerFrame)
		return (float64(cErr) - float64(qErr)) / bits, 2 * frames * readsEach, nil
	}

	var diffs []float64
	spent, batches := 0, 0
	const minReplicates, maxReplicates = 3, 6
	for rep := 0; ; rep++ {
		diff, reads, err := replicate(rep)
		if err != nil {
			return nil, spent, err
		}
		diffs = append(diffs, diff)
		spent += reads
		if len(diffs) < minReplicates {
			continue
		}
		batches++
		ci := metrics.BootstrapMeanCI(diffs, e.opts.Resamples, e.opts.Confidence, boot)
		est := gradeBelow("classical_minus_qpu_ber", ci, 0.02)
		est.Batches = batches
		if est.Verdict != "" {
			return []Estimate{est}, spent, nil
		}
		if len(diffs) >= maxReplicates || spent >= e.opts.MaxReads {
			est.Verdict, est.Stop = Inconclusive, "budget-exhausted"
			return []Estimate{est}, spent, nil
		}
	}
}

// evalCRANShardScaling tests the serving tier's scaling claim: a bursty
// diurnal city workload offered at roughly twice the 4-shard tier's
// drain rate is served once by a single shard and once by four, per
// replicate workload seed; the mean throughput speedup across replicates
// must clear 2.5×. Shedding is disabled on both sides so throughput is
// makespan-bound and the ratio isolates the shard seam. Committed
// seed-2020 values: ≈ 2.9× here (200 single-UE cells), 3.76× in the
// full-scale experiment harness — the gate of 2.5 leaves margin while a
// tier that stopped sharding (speedup 1) crosses immediately.
func evalCRANShardScaling(e *Env) ([]Estimate, int, error) {
	const (
		shards  = 4
		devices = 4 // per shard
		reads   = 4
	)
	scaled := shards
	if e.opts.Inject == "cran-single-shard" {
		scaled = 1
	}
	r := e.claimRng("cran-shard-scaling")
	boot := r.SplitString("bootstrap")

	pools := func(n int) [][]fleet.Device {
		ps := make([][]fleet.Device, n)
		for s := range ps {
			ps[s] = fleet.DefaultDevices(devices)
		}
		return ps
	}
	replicate := func(rep int) (float64, int, error) {
		seed := e.opts.Config.Seed ^ uint64(0xC7A9+rep*7919)
		reqs, err := cran.Workload{
			// City-scale cell count: consistent-hash balance tightens with
			// cells, and the speedup ceiling is set by the hottest shard's
			// load share.
			Cells: 200, UEsPerCell: 1,
			DurationMicros:  30_000,
			FramesPerSecond: 53, // ≈ 2× the 4-shard tier's drain rate across 200 streams
			Diurnal:         cran.DefaultDiurnal(),
			BurstProb:       0.25, BurstFactor: 2.5,
			NumReads: reads,
			Seed:     seed,
		}.Generate()
		if err != nil {
			return 0, 0, err
		}
		serve := func(n int) (float64, error) {
			out, err := cran.Serve(context.Background(), cran.Config{
				Shards: pools(n),
				Fleet:  fleet.Config{BatchMax: 4, StreamQueueBound: 64},
				Seed:   seed,
			}, reqs)
			if err != nil {
				return 0, err
			}
			return out.Report.ThroughputPerSecond, nil
		}
		base, err := serve(1)
		if err != nil {
			return 0, 0, err
		}
		sc, err := serve(scaled)
		if err != nil {
			return 0, 0, err
		}
		if base == 0 {
			return 0, 0, fmt.Errorf("validate: single-shard tier served nothing")
		}
		return sc / base, len(reqs) * reads * 2, nil
	}

	var speedups []float64
	spent, batches := 0, 0
	const minReplicates, maxReplicates = 3, 6
	for rep := 0; ; rep++ {
		sp, reads, err := replicate(rep)
		if err != nil {
			return nil, spent, err
		}
		speedups = append(speedups, sp)
		spent += reads
		if len(speedups) < minReplicates {
			continue
		}
		batches++
		ci := metrics.BootstrapMeanCI(speedups, e.opts.Resamples, e.opts.Confidence, boot)
		est := gradeAbove(fmt.Sprintf("cran_shard_speedup_%dx1", shards), ci, 2.5)
		est.Batches = batches
		if est.Verdict != "" {
			return []Estimate{est}, spent, nil
		}
		if len(speedups) >= maxReplicates {
			est.Verdict, est.Stop = Inconclusive, "budget-exhausted"
			return []Estimate{est}, spent, nil
		}
	}
}

// evalEnsembleRA tests the flexible-parallelism claim (X-ResQ's shape on
// the Figure 8 instance): fanning one detection into K=4 candidates ×
// the 3-point s_p grid must beat the single greedy/0.45 arm on success
// probability. The comparison is PAIRED inside one ensemble solve — the
// single-RA baseline is arm 0's own reads against its candidate, exactly
// the Hybrid answer rule — so each trial's difference is Bernoulli in
// {0, 1} and the "ensemble-collapsed" injection (K→1, trivial grid)
// makes every difference identically zero: the gate crosses immediately
// instead of stalling. Committed seed-2020 mean difference ≈ 0.6 at two
// reads per arm; the gate of 0.12 leaves margin on both sides.
func evalEnsembleRA(e *Env) ([]Estimate, int, error) {
	in, err := e.fig8Instance()
	if err != nil {
		return nil, 0, err
	}
	k, grid := 4, core.DefaultSpGrid()
	if e.opts.Inject == "ensemble-collapsed" {
		k, grid = 1, []float64{0.45}
	}
	// Two reads per arm keeps the single arm off its saturation plateau:
	// the claim separates arm counts, not read counts.
	const readsPerArm = 2
	det := &core.Ensemble{K: k, SpGrid: grid, NumReads: readsPerArm}
	arms := k * len(grid)
	r := e.claimRng("ensemble-ra")
	boot := r.SplitString("bootstrap")

	// One batch is a dozen paired solves; readsPerArm reads per arm.
	batchTrials := (e.opts.BatchReads + arms*readsPerArm - 1) / (arms * readsPerArm)
	if batchTrials < 1 {
		batchTrials = 1
	}
	var diffs []float64
	spent, batches, trials := 0, 0, 0
	for {
		for t := 0; t < batchTrials; t++ {
			out, err := det.Solve(in.Reduction, r.SplitString("trial").Split(uint64(trials)))
			if err != nil {
				return nil, spent, err
			}
			arm0 := out.Arms[0]
			singleBest := arm0.Best.Energy
			if arm0.InitialEnergy < singleBest {
				singleBest = arm0.InitialEnergy
			}
			single := singleBest <= in.GroundEnergy+groundTol
			ens := out.Best.Energy <= in.GroundEnergy+groundTol
			d := 0.0
			if ens && !single {
				d = 1
			}
			diffs = append(diffs, d)
			trials++
			spent += arms * readsPerArm
		}
		batches++
		ci := metrics.BootstrapMeanCI(diffs, e.opts.Resamples, e.opts.Confidence, boot)
		est := gradeAbove("ensemble_minus_single_success", ci, 0.12)
		est.Batches = batches
		if est.Verdict != "" {
			return []Estimate{est}, spent, nil
		}
		if spent+arms*readsPerArm*batchTrials > e.opts.MaxReads {
			est.Verdict, est.Stop = Inconclusive, "budget-exhausted"
			return []Estimate{est}, spent, nil
		}
	}
}
