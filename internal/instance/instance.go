// Package instance synthesizes and serializes MIMO detection instances —
// the experimental workload of §4.2: random transmitted symbols for a
// chosen user count and modulation, sent over a unit-gain random-phase
// channel, with AWGN optionally excluded exactly as the paper does.
//
// Every instance carries its ground truth: in the noiseless setting the
// transmitted vector is the ML optimum, so its spin encoding is the
// Ising ground state (energy ≈ 0 before offset stripping); with noise the
// sphere decoder supplies the exact ML optimum instead.
package instance

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/linalg"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// Spec declares one instance's workload parameters.
type Spec struct {
	Users int
	// Antennas is the base station's receive-antenna count; 0 means
	// Users (the paper's square setting). Massive-MIMO configurations set
	// Antennas > Users, which conditions the channel and eases detection.
	Antennas      int
	Scheme        modulation.Scheme
	Channel       channel.Model
	NoiseVariance float64
	// Correlation applies Kronecker antenna correlation (exponential
	// model, ρ = Correlation) on top of a Rayleigh draw; 0 disables it.
	// Only meaningful with Channel == Rayleigh.
	Correlation float64
	Seed        uint64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Users <= 0 {
		return fmt.Errorf("instance: non-positive user count %d", s.Users)
	}
	if s.Antennas < 0 || (s.Antennas > 0 && s.Antennas < s.Users) {
		return fmt.Errorf("instance: %d antennas cannot serve %d users", s.Antennas, s.Users)
	}
	if s.NoiseVariance < 0 {
		return fmt.Errorf("instance: negative noise variance")
	}
	if s.Correlation < 0 || s.Correlation >= 1 {
		return fmt.Errorf("instance: correlation %g must lie in [0, 1)", s.Correlation)
	}
	if s.Correlation > 0 && s.Channel != channel.Rayleigh {
		return fmt.Errorf("instance: correlation requires the Rayleigh channel model")
	}
	return nil
}

// NumSpins returns the Ising size the spec reduces to.
func (s Spec) NumSpins() int { return s.Users * s.Scheme.BitsPerSymbol() }

// Instance is a fully materialized detection problem with ground truth.
type Instance struct {
	Spec        Spec
	Problem     *mimo.Problem
	Transmitted []complex128
	// Reduction is the problem's Ising form with spin layout.
	Reduction *mimo.Reduction
	// GroundSpins/GroundEnergy witness the Ising global optimum.
	GroundSpins  []int8
	GroundEnergy float64
	// Optimal holds the ML-optimal symbols (== Transmitted when
	// noiseless).
	Optimal []complex128
}

// Synthesize materializes an instance from its spec, deterministically in
// the spec's seed.
func Synthesize(spec Spec) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(spec.Seed)
	nr := spec.Antennas
	if nr == 0 {
		nr = spec.Users
	}
	var h *linalg.CMatrix
	if spec.Correlation > 0 {
		var err error
		h, err = channel.DrawCorrelated(r.SplitString("channel"), nr, spec.Users, spec.Correlation)
		if err != nil {
			return nil, err
		}
	} else {
		h = channel.Draw(spec.Channel, r.SplitString("channel"), nr, spec.Users)
	}
	x, _ := mimo.RandomSymbols(r.SplitString("symbols"), spec.Scheme, spec.Users)
	y := channel.Transmit(r.SplitString("noise"), h, x, spec.NoiseVariance)
	p := &mimo.Problem{H: h, Y: y, Scheme: spec.Scheme}
	red, err := mimo.Reduce(p)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Spec: spec, Problem: p, Transmitted: x, Reduction: red}
	if spec.NoiseVariance == 0 {
		inst.Optimal = x
	} else {
		opt, err := (mimo.SphereDecoder{}).Detect(p)
		if err != nil {
			return nil, fmt.Errorf("instance: ML ground truth: %w", err)
		}
		inst.Optimal = opt
	}
	spins, err := red.EncodeSymbols(inst.Optimal)
	if err != nil {
		return nil, err
	}
	inst.GroundSpins = spins
	inst.GroundEnergy = red.Ising.Energy(spins)
	return inst, nil
}

// Corpus synthesizes count instances with seeds derived from baseSeed.
func Corpus(spec Spec, baseSeed uint64, count int) ([]*Instance, error) {
	if count <= 0 {
		return nil, fmt.Errorf("instance: non-positive corpus size")
	}
	root := rng.New(baseSeed)
	out := make([]*Instance, 0, count)
	for i := 0; i < count; i++ {
		s := spec
		s.Seed = root.Split(uint64(i)).Uint64()
		inst, err := Synthesize(s)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// VariableBudgetUsers returns the user count whose reduction has exactly
// target spins under the scheme, or an error when the target is not an
// integer multiple of bits-per-symbol — how the paper's "36-variable
// decoding problems ... for different modulations" are constructed.
func VariableBudgetUsers(s modulation.Scheme, target int) (int, error) {
	b := s.BitsPerSymbol()
	if target <= 0 || target%b != 0 {
		return 0, fmt.Errorf("instance: %d variables not divisible by %s's %d bits/symbol", target, s, b)
	}
	return target / b, nil
}

// NewProblemFromParts reassembles a Problem (used by deserialization and
// the CLI tools).
func NewProblemFromParts(h *linalg.CMatrix, y []complex128, s modulation.Scheme) *mimo.Problem {
	return &mimo.Problem{H: h, Y: y, Scheme: s}
}
