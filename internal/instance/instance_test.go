package instance

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

func TestSynthesizeNoiseless(t *testing.T) {
	for _, s := range modulation.Schemes {
		spec := Spec{Users: 4, Scheme: s, Channel: channel.UnitGainRandomPhase, Seed: 1}
		inst, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: objective at the transmitted symbols is 0, and the
		// Ising energy of the ground spins equals it (within the offset).
		if obj := inst.Problem.Objective(inst.Transmitted); obj > 1e-18 {
			t.Fatalf("%v: objective at truth %v", s, obj)
		}
		if math.Abs(inst.GroundEnergy) > 1e-6 {
			t.Fatalf("%v: ground energy %v, want ≈0", s, inst.GroundEnergy)
		}
		if len(inst.GroundSpins) != spec.NumSpins() {
			t.Fatalf("%v: %d ground spins, want %d", s, len(inst.GroundSpins), spec.NumSpins())
		}
		// Optimal == transmitted in the noiseless setting.
		for i := range inst.Optimal {
			if inst.Optimal[i] != inst.Transmitted[i] {
				t.Fatalf("%v: optimal differs from transmitted", s)
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := Spec{Users: 4, Scheme: modulation.QAM16, Seed: 42}
	a, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Problem.Y {
		if a.Problem.Y[i] != b.Problem.Y[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
	spec.Seed = 43
	c, _ := Synthesize(spec)
	same := true
	for i := range a.Problem.Y {
		if a.Problem.Y[i] != c.Problem.Y[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

// TestNoisyGroundTruthIsMLOptimum: with AWGN, the stored ground state must
// be the exhaustive Ising optimum.
func TestNoisyGroundTruthIsMLOptimum(t *testing.T) {
	spec := Spec{Users: 3, Scheme: modulation.QPSK, NoiseVariance: 0.8, Seed: 7}
	inst, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	ground, err := qubo.ExhaustiveIsing(inst.Reduction.Ising)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.GroundEnergy-ground.Energy) > 1e-8 {
		t.Fatalf("stored ground %v, exhaustive %v", inst.GroundEnergy, ground.Energy)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Synthesize(Spec{Users: 0, Scheme: modulation.BPSK}); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := Synthesize(Spec{Users: 2, Scheme: modulation.BPSK, NoiseVariance: -1}); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestCorpus(t *testing.T) {
	spec := Spec{Users: 2, Scheme: modulation.QPSK}
	insts, err := Corpus(spec, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 5 {
		t.Fatalf("corpus size %d", len(insts))
	}
	// Instances differ.
	if insts[0].Problem.Y[0] == insts[1].Problem.Y[0] {
		t.Fatal("corpus instances identical")
	}
	// Deterministic in base seed.
	again, _ := Corpus(spec, 99, 5)
	for i := range insts {
		if insts[i].Problem.Y[0] != again[i].Problem.Y[0] {
			t.Fatal("corpus not deterministic")
		}
	}
	if _, err := Corpus(spec, 1, 0); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestVariableBudgetUsers(t *testing.T) {
	cases := []struct {
		s    modulation.Scheme
		vars int
		want int
		err  bool
	}{
		{modulation.BPSK, 36, 36, false},
		{modulation.QPSK, 36, 18, false},
		{modulation.QAM16, 36, 9, false},
		{modulation.QAM64, 36, 6, false},
		{modulation.QAM16, 30, 0, true}, // 30 not divisible by 4
		{modulation.BPSK, 0, 0, true},
	}
	for _, c := range cases {
		got, err := VariableBudgetUsers(c.s, c.vars)
		if c.err != (err != nil) {
			t.Fatalf("%v/%d: err %v", c.s, c.vars, err)
		}
		if !c.err && got != c.want {
			t.Fatalf("%v/%d: users %d, want %d", c.s, c.vars, got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	spec := Spec{Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase, Seed: 11}
	inst, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Users != 3 || back.Spec.Scheme != modulation.QAM16 || back.Spec.Seed != 11 {
		t.Fatalf("spec lost: %+v", back.Spec)
	}
	for i := range inst.Problem.Y {
		if inst.Problem.Y[i] != back.Problem.Y[i] {
			t.Fatal("y lost precision")
		}
	}
	for r := 0; r < inst.Problem.H.Rows; r++ {
		for c := 0; c < inst.Problem.H.Cols; c++ {
			if inst.Problem.H.At(r, c) != back.Problem.H.At(r, c) {
				t.Fatal("H lost precision")
			}
		}
	}
	// Recomputed ground truth matches.
	if math.Abs(inst.GroundEnergy-back.GroundEnergy) > 1e-9 {
		t.Fatalf("ground energy %v vs %v", inst.GroundEnergy, back.GroundEnergy)
	}
	// Ising forms agree on a probe state.
	probe := make([]int8, inst.Reduction.NumSpins())
	for i := range probe {
		probe[i] = 1
	}
	if math.Abs(inst.Reduction.Ising.Energy(probe)-back.Reduction.Ising.Energy(probe)) > 1e-9 {
		t.Fatal("reduced Ising differs after round trip")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	var in Instance
	if err := json.Unmarshal([]byte(`{"scheme":"nope","h":[],"y":[]}`), &in); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if err := json.Unmarshal([]byte(`{"scheme":"bpsk","users":1,"h":[[[1,0]]],"y":[[1,0],[2,0]]}`), &in); err == nil {
		t.Fatal("mismatched y length accepted")
	}
}

// TestDeltaEOfGreedyInitIsSmall reflects §4.3: GS solutions typically land
// at ΔE_IS% ≤ 10% on the paper's instances.
func TestDeltaEOfGreedyInitIsSmall(t *testing.T) {
	insts, err := Corpus(Spec{Users: 8, Scheme: modulation.QAM16}, 123, 10)
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	for _, inst := range insts {
		gs := qubo.GreedySearchIsing(inst.Reduction.Ising, qubo.OrderDescending)
		d := metrics.DeltaEForIsing(inst.Reduction.Ising, inst.Reduction.Ising.Energy(gs), inst.GroundEnergy)
		if d < 0 {
			t.Fatalf("ΔE%% below zero: %v", d)
		}
		if d <= 10 {
			within++
		}
	}
	if within < 7 {
		t.Fatalf("greedy ΔE_IS%% ≤ 10%% on only %d/10 instances", within)
	}
}

func TestSynthesizeCorrelated(t *testing.T) {
	spec := Spec{Users: 4, Scheme: modulation.QPSK, Channel: channel.Rayleigh, Correlation: 0.6, Seed: 3}
	inst, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.GroundEnergy) > 1e-6 {
		t.Fatalf("noiseless correlated ground energy %v", inst.GroundEnergy)
	}
	// Correlation changes the channel relative to the plain draw.
	plain, _ := Synthesize(Spec{Users: 4, Scheme: modulation.QPSK, Channel: channel.Rayleigh, Seed: 3})
	same := true
	for i := range inst.Problem.H.Data {
		if inst.Problem.H.Data[i] != plain.Problem.H.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("correlation had no effect on the channel")
	}
}

func TestSynthesizeCorrelationValidation(t *testing.T) {
	if _, err := Synthesize(Spec{Users: 2, Scheme: modulation.BPSK, Correlation: 0.5}); err == nil {
		t.Fatal("correlation with unit-gain model accepted")
	}
	if _, err := Synthesize(Spec{Users: 2, Scheme: modulation.BPSK, Channel: channel.Rayleigh, Correlation: 1.2}); err == nil {
		t.Fatal("rho > 1 accepted")
	}
}

// TestSynthesizeMassiveMIMO: more antennas than users (a massive-MIMO
// base station); the reduction and ground truth remain exact.
func TestSynthesizeMassiveMIMO(t *testing.T) {
	spec := Spec{Users: 4, Antennas: 12, Scheme: modulation.QAM16, Channel: channel.Rayleigh, Seed: 77}
	inst, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Problem.Nr() != 12 || inst.Problem.Nt() != 4 {
		t.Fatalf("channel is %dx%d", inst.Problem.Nr(), inst.Problem.Nt())
	}
	if math.Abs(inst.GroundEnergy) > 1e-6 {
		t.Fatalf("ground energy %v", inst.GroundEnergy)
	}
	if inst.Reduction.NumSpins() != 16 {
		t.Fatalf("%d spins", inst.Reduction.NumSpins())
	}
	// The Ising form still equals the objective on random candidates.
	g, err := qubo.ExhaustiveIsing(inst.Reduction.Ising)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Energy-inst.GroundEnergy) > 1e-6 {
		t.Fatalf("exhaustive ground %v vs stored %v", g.Energy, inst.GroundEnergy)
	}
}

func TestSynthesizeAntennaValidation(t *testing.T) {
	if _, err := Synthesize(Spec{Users: 4, Antennas: 2, Scheme: modulation.BPSK}); err == nil {
		t.Fatal("fewer antennas than users accepted")
	}
	if _, err := Synthesize(Spec{Users: 4, Antennas: -1, Scheme: modulation.BPSK}); err == nil {
		t.Fatal("negative antennas accepted")
	}
}

func TestNewProblemFromParts(t *testing.T) {
	inst, err := Synthesize(Spec{Users: 2, Scheme: modulation.QPSK, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblemFromParts(inst.Problem.H, inst.Problem.Y, inst.Problem.Scheme)
	if p.Nt() != 2 || p.Scheme != modulation.QPSK {
		t.Fatal("reassembled problem wrong")
	}
	if p.Objective(inst.Transmitted) > 1e-18 {
		t.Fatal("reassembled problem differs")
	}
}
