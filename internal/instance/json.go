package instance

import (
	"encoding/json"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/mimo"
	"repro/internal/modulation"
)

// wireComplex is a JSON-safe complex number [re, im].
type wireComplex [2]float64

func toWire(v complex128) wireComplex { return wireComplex{real(v), imag(v)} }

func fromWire(w wireComplex) complex128 { return complex(w[0], w[1]) }

// wireInstance is the serialized form of an Instance. The reduction and
// ground truth are recomputed on load, so the wire format stays minimal
// and cannot go stale against the code.
type wireInstance struct {
	Users         int             `json:"users"`
	Scheme        string          `json:"scheme"`
	Channel       string          `json:"channel"`
	NoiseVariance float64         `json:"noise_variance"`
	Seed          uint64          `json:"seed"`
	H             [][]wireComplex `json:"h"`
	Y             []wireComplex   `json:"y"`
	Transmitted   []wireComplex   `json:"transmitted"`
}

// MarshalJSON serializes the instance's problem and provenance.
func (in *Instance) MarshalJSON() ([]byte, error) {
	w := wireInstance{
		Users:         in.Spec.Users,
		Scheme:        schemeName(in.Spec.Scheme),
		Channel:       in.Spec.Channel.String(),
		NoiseVariance: in.Spec.NoiseVariance,
		Seed:          in.Spec.Seed,
	}
	h := in.Problem.H
	w.H = make([][]wireComplex, h.Rows)
	for r := 0; r < h.Rows; r++ {
		row := make([]wireComplex, h.Cols)
		for c := 0; c < h.Cols; c++ {
			row[c] = toWire(h.At(r, c))
		}
		w.H[r] = row
	}
	for _, v := range in.Problem.Y {
		w.Y = append(w.Y, toWire(v))
	}
	for _, v := range in.Transmitted {
		w.Transmitted = append(w.Transmitted, toWire(v))
	}
	return json.Marshal(w)
}

func schemeName(s modulation.Scheme) string {
	switch s {
	case modulation.BPSK:
		return "bpsk"
	case modulation.QPSK:
		return "qpsk"
	case modulation.QAM16:
		return "16qam"
	case modulation.QAM64:
		return "64qam"
	}
	return "unknown"
}

// UnmarshalJSON restores an instance, recomputing its reduction and
// ground truth.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w wireInstance
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	scheme, err := modulation.ParseScheme(w.Scheme)
	if err != nil {
		return err
	}
	if len(w.H) == 0 || len(w.Y) != len(w.H) {
		return fmt.Errorf("instance: malformed wire matrix")
	}
	h := linalg.NewCMatrix(len(w.H), len(w.H[0]))
	for r, row := range w.H {
		if len(row) != h.Cols {
			return fmt.Errorf("instance: ragged wire matrix")
		}
		for c, v := range row {
			h.Set(r, c, fromWire(v))
		}
	}
	y := make([]complex128, len(w.Y))
	for i, v := range w.Y {
		y[i] = fromWire(v)
	}
	x := make([]complex128, len(w.Transmitted))
	for i, v := range w.Transmitted {
		x[i] = fromWire(v)
	}
	p := &mimo.Problem{H: h, Y: y, Scheme: scheme}
	red, err := mimo.Reduce(p)
	if err != nil {
		return err
	}
	in.Spec = Spec{Users: w.Users, Scheme: scheme, NoiseVariance: w.NoiseVariance, Seed: w.Seed}
	in.Problem = p
	in.Transmitted = x
	in.Reduction = red
	if w.NoiseVariance == 0 && len(x) > 0 {
		in.Optimal = x
	} else {
		opt, err := (mimo.SphereDecoder{}).Detect(p)
		if err != nil {
			return err
		}
		in.Optimal = opt
	}
	spins, err := red.EncodeSymbols(in.Optimal)
	if err != nil {
		return err
	}
	in.GroundSpins = spins
	in.GroundEnergy = red.Ising.Energy(spins)
	return nil
}
