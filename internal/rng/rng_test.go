package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero-seeded source looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children with different keys collided %d times", same)
	}
}

func TestSplitStability(t *testing.T) {
	// Splitting the same key from identical parents yields identical streams,
	// regardless of other splits performed.
	p1 := New(9)
	p2 := New(9)
	_ = p1.Split(99) // extra split must not perturb the (parent, key) stream
	a := p1.Split(5)
	b := p2.Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split stream not stable under unrelated splits")
		}
	}
}

func TestSplitString(t *testing.T) {
	root := New(3)
	a := root.SplitString("fig8/run1")
	b := New(3).SplitString("fig8/run1")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitString not deterministic")
	}
	c := New(3).SplitString("fig8/run2")
	if New(3).SplitString("fig8/run1").Uint64() == c.Uint64() {
		t.Fatal("distinct names produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(19)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestSpinBalance(t *testing.T) {
	r := New(29)
	n := 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += int(r.Spin())
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(float64(n)) {
		t.Fatalf("spins unbalanced: sum=%d over %d draws", sum, n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflepreservesMultiset(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestMul64Property(t *testing.T) {
	// mul64 must agree with big-integer multiplication. Check via the
	// identity on the low 64 bits and a few structured cases.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	hi, lo := mul64(1<<63, 2)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul64(2^63,2) = (%d,%d), want (1,0)", hi, lo)
	}
	hi, lo = mul64(0xffffffffffffffff, 0xffffffffffffffff)
	if hi != 0xfffffffffffffffe || lo != 1 {
		t.Fatalf("mul64(max,max) = (%#x,%#x)", hi, lo)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(41)
	trues := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-float64(n)/2) > 4*math.Sqrt(float64(n)/4) {
		t.Fatalf("Bool unbalanced: %d of %d", trues, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
