// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible experiments.
//
// The experiments in this repository must be exactly reproducible from a
// single seed: every instance corpus, every anneal run, and every noise
// draw derives its stream from a named split of a root generator, so
// adding a new consumer never perturbs existing streams.
//
// The core generator is xoshiro256++ seeded via SplitMix64, following the
// reference constructions by Blackman and Vigna. Both are small, fast, and
// pass BigCrush; neither is cryptographically secure, which is fine for
// Monte-Carlo use.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving split keys.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256++ generator.
//
// The zero value is not a valid generator; use New or Split.
type Source struct {
	s [4]uint64

	// Gaussian spare value cache for Box-Muller.
	hasSpare bool
	spare    float64
}

// New returns a Source seeded from seed via SplitMix64 state expansion.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// rotl rotates x left by k bits.
func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child generator keyed by key. Children with
// distinct keys produce statistically independent streams, and splitting is
// stable: the child for a given (parent seed, key) never changes when other
// consumers are added.
func (r *Source) Split(key uint64) *Source {
	var c Source
	r.SplitInto(&c, key)
	return &c
}

// SplitInto derives the child keyed by key into dst, overwriting dst's
// state entirely (including the Gaussian spare). It is Split without the
// allocation, for hot paths that derive one short-lived stream per work
// item; dst must not be in concurrent use.
func (r *Source) SplitInto(dst *Source, key uint64) {
	// Mix the parent's state with the key through SplitMix64 so child
	// streams decorrelate from the parent and from each other.
	sm := r.s[0] ^ rotl(r.s[1], 13) ^ rotl(r.s[2], 29) ^ rotl(r.s[3], 41) ^ (key * 0xd1342543de82ef95)
	for i := range dst.s {
		dst.s[i] = splitMix64(&sm)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
	dst.hasSpare = false
	dst.spare = 0
}

// SplitString derives an independent child generator keyed by a name.
// Experiment code uses names ("fig8/instance3/ra") so streams are
// self-describing.
func (r *Source) SplitString(name string) *Source {
	return r.Split(hashString(name))
}

// SplitStringInto is SplitString without the allocation; see SplitInto.
func (r *Source) SplitStringInto(dst *Source, name string) {
	r.SplitInto(dst, hashString(name))
}

// hashString is FNV-1a over the name, sufficient for stream keying.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// State returns the xoshiro256++ core state. Together with SetState it
// lets a hot loop advance the generator in local variables — the method
// calls above keep the state in memory and are too large to inline — by
// applying the documented xoshiro256++ step inline, while remaining
// bit-identical to drawing through the Source directly. The Gaussian
// spare cache is not part of the core state; NormFloat64 draws must go
// through the Source.
func (r *Source) State() (s0, s1, s2, s3 uint64) {
	return r.s[0], r.s[1], r.s[2], r.s[3]
}

// SetState stores a core state advanced externally; see State.
func (r *Source) SetState(s0, s1, s2, s3 uint64) {
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// compiles to a single wide-multiply instruction on 64-bit targets, which
// matters because Intn sits inside every Monte-Carlo proposal.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Bool returns a uniform random boolean.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Spin returns ±1 uniformly.
func (r *Source) Spin() int8 {
	if r.Bool() {
		return 1
	}
	return -1
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// transform, caching the spare value.
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
