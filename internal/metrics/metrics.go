// Package metrics implements the evaluation metrics of §4.3: the ΔE%
// solution-quality percentile, ground-state success probability p★, the
// time-to-solution TTS(C_t%) formula (Eq. 2, following Rønnow et al.),
// and the distribution/percentile machinery the figures are built from.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/qubo"
)

// DeltaEPercent computes the paper's solution-quality metric for
// offset-free energies (energies measured without the constant term, so
// the ground energy E_g is strictly negative as in the paper's QUBO
// forms):
//
//	ΔE% = 100·(E_s − E_g)/|E_g| ,
//
// which equals the paper's 100·(|E_g| − |E_s|)/|E_g| on the meaningful
// range E_g ≤ E_s ≤ 0 and stays monotone for samples above zero. ΔE% = 0
// means the global optimum was found. Panics if E_g is zero (use the
// offset-stripping helpers).
func DeltaEPercent(sampleEnergy, groundEnergy float64) float64 {
	if groundEnergy == 0 {
		panic("metrics: ΔE%% undefined for zero ground energy; strip the constant offset first")
	}
	return 100 * (sampleEnergy - groundEnergy) / math.Abs(groundEnergy)
}

// DeltaEForIsing computes ΔE% for a sample of an Ising problem whose
// energies include a constant Offset (as the MIMO reductions do): both
// energies are shifted by −Offset before applying the formula, recovering
// the paper's convention where the constant ‖y‖² term is not part of the
// QUBO cost.
func DeltaEForIsing(is *qubo.Ising, sampleEnergy, groundEnergy float64) float64 {
	return DeltaEPercent(sampleEnergy-is.Offset, groundEnergy-is.Offset)
}

// SuccessProbability returns the fraction of samples whose energy is
// within tol of the ground energy — the single-execution ground-state
// probability p★ of Eq. 2.
func SuccessProbability(samples []qubo.Sample, groundEnergy, tol float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	hits := 0
	for _, s := range samples {
		if s.Energy <= groundEnergy+tol {
			hits++
		}
	}
	return float64(hits) / float64(len(samples))
}

// TTS evaluates Eq. 2: the expected time (same unit as duration) to find
// the ground state at least once with confidence ct% when one execution
// takes `duration` and succeeds with probability pstar:
//
//	TTS(C_t%) = duration · log(1 − C_t/100) / log(1 − p★).
//
// Edge cases follow the metric's semantics: p★ ≤ 0 → +Inf (never
// succeeds); p★ ≥ 1 → duration (one shot suffices); if a single
// execution already meets the confidence target the result is floored at
// one duration.
func TTS(duration, pstar, ct float64) float64 {
	if duration <= 0 {
		panic("metrics: non-positive duration")
	}
	if ct <= 0 || ct >= 100 {
		panic("metrics: confidence must lie in (0, 100)")
	}
	if pstar <= 0 {
		return math.Inf(1)
	}
	if pstar >= 1 {
		return duration
	}
	runs := math.Log(1-ct/100) / math.Log(1-pstar)
	if runs < 1 {
		runs = 1
	}
	return duration * runs
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation on the sorted data (NaN for empty input).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic("metrics: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// WilsonInterval returns the 95% Wilson score confidence interval for a
// binomial proportion with k successes in n trials — the uncertainty bars
// for success probabilities.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram is a fixed-width binned distribution over [Min, Max); values
// outside the range land in the first/last bin (clamped), so fractions
// always sum to 1.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram with bins of equal width over
// [min, max).
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("metrics: bad histogram shape")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records a value. NaN is dropped (it has no bin and no meaningful
// clamp); ±Inf clamp to the edge bins like any other out-of-range value.
// Clamping happens in float space because converting NaN/±Inf (or any
// out-of-range float) to int is implementation-specific in Go.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	pos := (x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts))
	var idx int
	switch {
	case pos < 0:
		idx = 0
	case pos >= float64(len(h.Counts)):
		idx = len(h.Counts) - 1
	default:
		idx = int(pos)
	}
	h.Counts[idx]++
	h.Total++
}

// Fraction returns bin i's share of all recorded values.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// String renders "center fraction" rows, the format the figure harnesses
// print.
func (h *Histogram) String() string {
	out := ""
	for i := range h.Counts {
		out += fmt.Sprintf("%8.2f %8.5f\n", h.BinCenter(i), h.Fraction(i))
	}
	return out
}

// Binned groups (x, y) observations into fixed-width x-bins and reports
// each bin's mean y — the construction behind Figure 7's ΔE_IS% sweep.
type Binned struct {
	Min, Width float64
	sums       []float64
	counts     []int
}

// NewBinned builds bins [min+k·width, min+(k+1)·width) for k < n.
func NewBinned(min, width float64, n int) *Binned {
	if width <= 0 || n <= 0 {
		panic("metrics: bad binning shape")
	}
	return &Binned{Min: min, Width: width, sums: make([]float64, n), counts: make([]int, n)}
}

// Add records observation (x, y); out-of-range x is dropped.
func (b *Binned) Add(x, y float64) {
	k := int((x - b.Min) / b.Width)
	if k < 0 || k >= len(b.sums) {
		return
	}
	b.sums[k] += y
	b.counts[k]++
}

// Bins returns the number of bins.
func (b *Binned) Bins() int { return len(b.sums) }

// Center returns bin k's x midpoint.
func (b *Binned) Center(k int) float64 { return b.Min + (float64(k)+0.5)*b.Width }

// MeanAt returns bin k's mean y and whether the bin has data.
func (b *Binned) MeanAt(k int) (float64, bool) {
	if b.counts[k] == 0 {
		return 0, false
	}
	return b.sums[k] / float64(b.counts[k]), true
}

// CountAt returns bin k's observation count.
func (b *Binned) CountAt(k int) int { return b.counts[k] }
