package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// 400 draws from a known Bernoulli(0.3); the 95% CI should cover 0.3
	// and tighten as n grows.
	r := rng.New(7)
	var xs []float64
	for i := 0; i < 400; i++ {
		if r.Float64() < 0.3 {
			xs = append(xs, 1)
		} else {
			xs = append(xs, 0)
		}
	}
	ci := BootstrapMeanCI(xs, 800, 95, rng.New(11))
	if !ci.Contains(ci.Value) {
		t.Fatalf("interval excludes its own point estimate: %+v", ci)
	}
	if ci.Lo > 0.3 || ci.Hi < 0.3 {
		t.Fatalf("95%% CI misses the true mean 0.3: %+v", ci)
	}
	if ci.Hi-ci.Lo > 0.12 {
		t.Fatalf("CI too wide for n=400: %+v", ci)
	}
	if ci.N != 400 || ci.Confidence != 95 {
		t.Fatalf("metadata wrong: %+v", ci)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := BootstrapMeanCI(xs, 200, 90, rng.New(3))
	b := BootstrapMeanCI(xs, 200, 90, rng.New(3))
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := BootstrapMeanCI(xs, 200, 90, rng.New(4))
	if a.Lo == c.Lo && a.Hi == c.Hi {
		t.Fatal("different seeds produced identical intervals (suspicious)")
	}
}

func TestBootstrapCIEmptyInput(t *testing.T) {
	ci := BootstrapMeanCI(nil, 100, 95, rng.New(1))
	if !math.IsNaN(ci.Value) || !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
		t.Fatalf("empty input should yield NaNs: %+v", ci)
	}
	ci2 := BootstrapCI2(nil, []float64{1}, func(a, b []float64) float64 { return 0 }, 100, 95, rng.New(1))
	if !math.IsNaN(ci2.Value) {
		t.Fatalf("empty arm should yield NaNs: %+v", ci2)
	}
}

func TestBootstrapCI2RatioSeparates(t *testing.T) {
	// Two clearly separated Bernoulli arms: the ratio CI must clear 1.
	ra := BernoulliVector(300, 600) // p = 0.5
	fa := BernoulliVector(60, 600)  // p = 0.1
	ratio := func(xs, ys []float64) float64 {
		my, mx := Mean(ys), Mean(xs)
		if my == 0 {
			return math.Inf(1)
		}
		return mx / my
	}
	ci := BootstrapCI2(ra, fa, ratio, 600, 95, rng.New(9))
	if !ci.Above(2) {
		t.Fatalf("ratio 5.0 arms should clear gate 2: %+v", ci)
	}
	if ci.Value < 4 || ci.Value > 6 {
		t.Fatalf("point estimate off: %+v", ci)
	}
}

func TestCIPredicates(t *testing.T) {
	a := CI{Lo: 1, Hi: 2}
	b := CI{Lo: 1.5, Hi: 3}
	c := CI{Lo: 2.5, Hi: 3}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping intervals reported disjoint")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint intervals reported overlapping")
	}
	if !a.Above(0.5) || a.Above(1) {
		t.Fatal("Above boundary wrong")
	}
	if !a.Below(2.5) || a.Below(2) {
		t.Fatal("Below boundary wrong")
	}
	nan := CI{Lo: math.NaN(), Hi: math.NaN()}
	if nan.Overlaps(a) || a.Overlaps(nan) || nan.Above(0) || nan.Below(0) {
		t.Fatal("NaN interval must fail every predicate")
	}
}

func TestBernoulliVector(t *testing.T) {
	xs := BernoulliVector(3, 5)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if len(xs) != 5 || sum != 3 {
		t.Fatalf("bad vector: %v", xs)
	}
	if got := len(BernoulliVector(0, 0)); got != 0 {
		t.Fatalf("0/0 should be empty, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("successes > trials must panic")
		}
	}()
	BernoulliVector(6, 5)
}

func TestWilsonCI(t *testing.T) {
	ci := WilsonCI(30, 100)
	if ci.Value != 0.3 || ci.N != 100 {
		t.Fatalf("bad point estimate: %+v", ci)
	}
	if !ci.Contains(0.3) || ci.Lo <= 0.2 || ci.Hi >= 0.42 {
		t.Fatalf("interval implausible for 30/100: %+v", ci)
	}
	empty := WilsonCI(0, 0)
	if !math.IsNaN(empty.Value) || empty.Lo != 0 || empty.Hi != 1 {
		t.Fatalf("0 trials should give vacuous interval: %+v", empty)
	}
}
