package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/qubo"
)

func TestDeltaEPercent(t *testing.T) {
	// Ground −100, sample −90: 10% away.
	if got := DeltaEPercent(-90, -100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("ΔE%% = %v", got)
	}
	// At the optimum: 0%.
	if got := DeltaEPercent(-100, -100); got != 0 {
		t.Fatalf("ΔE%% at optimum = %v", got)
	}
	// Matches the paper's |E| form on the negative range:
	// 100·(|Eg|−|Es|)/|Eg|.
	eg, es := -57.3, -31.9
	want := 100 * (math.Abs(eg) - math.Abs(es)) / math.Abs(eg)
	if got := DeltaEPercent(es, eg); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ΔE%% = %v, want paper form %v", got, want)
	}
}

func TestDeltaEPercentMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 100)), math.Abs(math.Mod(b, 100))
		if a == b {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		// Higher energy → higher ΔE%.
		return DeltaEPercent(-lo, -200) > DeltaEPercent(-hi, -200)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEPercentZeroGroundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ground energy accepted")
		}
	}()
	DeltaEPercent(1, 0)
}

func TestDeltaEForIsingStripsOffset(t *testing.T) {
	is := qubo.NewIsing(2)
	is.Offset = 50
	// Total energies 50 (ground, offset-free 0? no—) ground total 40 →
	// offset-free −10; sample total 45 → offset-free −5: ΔE% = 50%.
	got := DeltaEForIsing(is, 45, 40)
	if math.Abs(got-50) > 1e-12 {
		t.Fatalf("ΔE%% = %v", got)
	}
}

func TestSuccessProbability(t *testing.T) {
	samples := []qubo.Sample{
		{Energy: -10}, {Energy: -10}, {Energy: -9}, {Energy: -5},
	}
	if got := SuccessProbability(samples, -10, 1e-9); got != 0.5 {
		t.Fatalf("p★ = %v", got)
	}
	if got := SuccessProbability(nil, -10, 0); got != 0 {
		t.Fatalf("empty p★ = %v", got)
	}
	// Tolerance widens the success set.
	if got := SuccessProbability(samples, -10, 1.5); got != 0.75 {
		t.Fatalf("tolerant p★ = %v", got)
	}
}

func TestTTSKnownValues(t *testing.T) {
	// p★ = 0.5, ct = 99: runs = ln(0.01)/ln(0.5) ≈ 6.64.
	got := TTS(2.0, 0.5, 99)
	want := 2.0 * math.Log(0.01) / math.Log(0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TTS = %v, want %v", got, want)
	}
	if !math.IsInf(TTS(1, 0, 99), 1) {
		t.Fatal("p★=0 should give infinite TTS")
	}
	if TTS(3, 1, 99) != 3 {
		t.Fatal("p★=1 should give one duration")
	}
	// Floor at one run: p★ = 0.999, ct = 50 — formula would say < 1 run.
	if TTS(3, 0.999, 50) != 3 {
		t.Fatal("TTS not floored at one run")
	}
}

func TestTTSMonotoneInPstar(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.01, 0.05, 0.2, 0.5, 0.9} {
		cur := TTS(1, p, 99)
		if cur > prev {
			t.Fatalf("TTS not decreasing in p★ at %v", p)
		}
		prev = cur
	}
}

func TestTTSPanics(t *testing.T) {
	for _, f := range []func(){
		func() { TTS(0, 0.5, 99) },
		func() { TTS(1, 0.5, 0) },
		func() { TTS(1, 0.5, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad TTS arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestMeanMedianPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("median %v", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Fatal("percentile endpoints wrong")
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5}, 50); got != 3 {
		t.Fatalf("odd median %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty input should be NaN")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad percentile accepted")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] excludes the point estimate", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Fatalf("interval [%v, %v] implausibly wide for n=100", lo, hi)
	}
	// Extreme proportions stay in [0, 1].
	lo, hi = WilsonInterval(0, 10)
	if lo != 0 || hi > 0.35 {
		t.Fatalf("k=0 interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(10, 10)
	if hi != 1 || lo < 0.65 {
		t.Fatalf("k=n interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatal("empty interval should be [0, 1]")
	}
	// Narrower with more data.
	lo1, hi1 := WilsonInterval(5, 10)
	lo2, hi2 := WilsonInterval(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval not shrinking with n")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 3.9, 9.9, -5, 15} {
		h.Add(x)
	}
	if h.Total != 7 {
		t.Fatalf("total %d", h.Total)
	}
	// Bin 0 holds 0.5, 1, and the clamped −5.
	if h.Counts[0] != 3 {
		t.Fatalf("bin 0 count %d", h.Counts[0])
	}
	// Bin 4 holds 9.9 and the clamped 15.
	if h.Counts[4] != 2 {
		t.Fatalf("bin 4 count %d", h.Counts[4])
	}
	var total float64
	for i := range h.Counts {
		total += h.Fraction(i)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", total)
	}
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Fatal("bin centers wrong")
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestBinned(t *testing.T) {
	b := NewBinned(0, 2, 5) // bins [0,2) [2,4) ... [8,10)
	b.Add(1, 10)
	b.Add(1.5, 20)
	b.Add(9, 7)
	b.Add(50, 99) // out of range: dropped
	if b.Bins() != 5 {
		t.Fatal("bin count wrong")
	}
	if m, ok := b.MeanAt(0); !ok || m != 15 {
		t.Fatalf("bin 0 mean %v ok=%v", m, ok)
	}
	if _, ok := b.MeanAt(1); ok {
		t.Fatal("empty bin reported data")
	}
	if m, _ := b.MeanAt(4); m != 7 {
		t.Fatal("bin 4 mean wrong")
	}
	if b.CountAt(0) != 2 || b.CountAt(4) != 1 {
		t.Fatal("counts wrong")
	}
	if b.Center(0) != 1 || b.Center(4) != 9 {
		t.Fatal("centers wrong")
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty fraction not 0")
	}
}

func TestBinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad binning accepted")
		}
	}()
	NewBinned(0, 0, 3)
}
