package metrics

// Edge-case pins for the metric primitives: empty and single-element
// inputs, NaN/±Inf values, and out-of-range Histogram.Add. These
// behaviors are relied on by the telemetry registry (which feeds
// arbitrary observed values into Histogram) and by harnesses that take
// percentiles of possibly-degenerate series.

import (
	"math"
	"testing"
)

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 37.5, 50, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Fatalf("p%v of a singleton = %v, want 42", p, got)
		}
	}
}

func TestPercentileInfinities(t *testing.T) {
	xs := []float64{math.Inf(-1), 0, math.Inf(1)}
	if got := Percentile(xs, 0); !math.IsInf(got, -1) {
		t.Fatalf("p0 = %v, want -Inf", got)
	}
	if got := Percentile(xs, 100); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
	if got := Percentile(xs, 50); got != 0 {
		t.Fatalf("p50 = %v, want the finite middle value", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input reordered: %v", xs)
	}
}

func TestMeanSingleAndInf(t *testing.T) {
	if got := Mean([]float64{7}); got != 7 {
		t.Fatalf("singleton mean = %v", got)
	}
	if got := Mean([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Fatalf("mean with +Inf = %v", got)
	}
}

func TestTTSSmallPstarFinite(t *testing.T) {
	// Tiny but positive p★ must give a large finite TTS, not overflow.
	got := TTS(1, 1e-12, 99)
	if math.IsInf(got, 1) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("TTS(1, 1e-12, 99) = %v", got)
	}
	// And it must exceed the p★ = 0.5 cost by many orders of magnitude.
	if got < TTS(1, 0.5, 99)*1e9 {
		t.Fatalf("TTS(1e-12) = %v implausibly small", got)
	}
}

func TestTTSNaNPstar(t *testing.T) {
	// NaN p★ fails every threshold comparison and propagates NaN — it must
	// not be mistaken for a valid finite time.
	got := TTS(1, math.NaN(), 99)
	if !math.IsNaN(got) {
		t.Fatalf("TTS with NaN p★ = %v, want NaN", got)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	if h.Total != 0 {
		t.Fatalf("NaN counted: total %d", h.Total)
	}
	h.Add(5)
	h.Add(math.NaN())
	if h.Total != 1 {
		t.Fatalf("total %d after one finite value and two NaNs", h.Total)
	}
}

func TestHistogramClampsInfinities(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	if h.Counts[0] != 1 {
		t.Fatalf("-Inf not clamped to bin 0: %v", h.Counts)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("+Inf not clamped to the last bin: %v", h.Counts)
	}
	if h.Total != 2 {
		t.Fatalf("total %d", h.Total)
	}
}

func TestHistogramFarOutOfRange(t *testing.T) {
	// Values far enough outside [Min, Max) that the naive float→int index
	// conversion would overflow must still clamp to the edge bins.
	h := NewHistogram(0, 1, 4)
	h.Add(1e300)
	h.Add(-1e300)
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Total != 2 {
		t.Fatalf("extreme values not clamped: counts %v total %d", h.Counts, h.Total)
	}
}

func TestHistogramUpperBoundExclusive(t *testing.T) {
	// Max itself is outside the half-open range and clamps to the last bin.
	h := NewHistogram(0, 10, 5)
	h.Add(10)
	if h.Counts[4] != 1 {
		t.Fatalf("x = Max landed in %v", h.Counts)
	}
}
