package metrics

import (
	"math"

	"repro/internal/rng"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Value float64 `json:"value"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	// Confidence is the nominal coverage in percent (e.g. 95).
	Confidence float64 `json:"confidence"`
	// N is the number of underlying observations.
	N int `json:"n"`
}

// Contains reports whether x lies inside [Lo, Hi].
func (c CI) Contains(x float64) bool { return x >= c.Lo && x <= c.Hi }

// Overlaps reports whether two intervals share any point. Degenerate
// (Lo == Hi) intervals are handled like any other; an interval with a
// NaN endpoint overlaps nothing.
func (c CI) Overlaps(o CI) bool {
	if math.IsNaN(c.Lo) || math.IsNaN(c.Hi) || math.IsNaN(o.Lo) || math.IsNaN(o.Hi) {
		return false
	}
	return c.Lo <= o.Hi && o.Lo <= c.Hi
}

// Above reports whether the whole interval clears x from above (Lo > x).
func (c CI) Above(x float64) bool { return !math.IsNaN(c.Lo) && c.Lo > x }

// Below reports whether the whole interval lies under x (Hi < x).
func (c CI) Below(x float64) bool { return !math.IsNaN(c.Hi) && c.Hi < x }

// BootstrapCI estimates a percentile-bootstrap confidence interval for
// stat(xs): `resamples` with-replacement resamples of xs are drawn from r,
// the statistic is evaluated on each, and the (α/2, 1−α/2) percentiles of
// the bootstrap distribution bound the interval. The point estimate is
// stat on the original data. Deterministic for a fixed r stream. Empty
// input yields a NaN estimate with a NaN interval; confidence must lie in
// (0, 100).
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, r *rng.Source) CI {
	if confidence <= 0 || confidence >= 100 {
		panic("metrics: bootstrap confidence must lie in (0, 100)")
	}
	if resamples <= 0 {
		panic("metrics: bootstrap needs at least one resample")
	}
	ci := CI{Confidence: confidence, N: len(xs)}
	if len(xs) == 0 {
		ci.Value, ci.Lo, ci.Hi = math.NaN(), math.NaN(), math.NaN()
		return ci
	}
	ci.Value = stat(xs)
	dist := make([]float64, resamples)
	scratch := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range scratch {
			scratch[i] = xs[r.Intn(len(xs))]
		}
		dist[b] = stat(scratch)
	}
	alpha := (100 - confidence) / 2
	ci.Lo = Percentile(dist, alpha)
	ci.Hi = Percentile(dist, 100-alpha)
	return ci
}

// BootstrapMeanCI is BootstrapCI with the arithmetic mean.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, r *rng.Source) CI {
	return BootstrapCI(xs, Mean, resamples, confidence, r)
}

// BootstrapCI2 is the two-sample analogue: xs and ys are resampled
// independently and stat(xs*, ys*) is evaluated on each pair — the
// construction for ratio and difference statistics between two solver
// arms (e.g. p★_RA / p★_FA). Either sample being empty yields NaNs.
func BootstrapCI2(xs, ys []float64, stat func(xs, ys []float64) float64, resamples int, confidence float64, r *rng.Source) CI {
	if confidence <= 0 || confidence >= 100 {
		panic("metrics: bootstrap confidence must lie in (0, 100)")
	}
	if resamples <= 0 {
		panic("metrics: bootstrap needs at least one resample")
	}
	ci := CI{Confidence: confidence, N: len(xs) + len(ys)}
	if len(xs) == 0 || len(ys) == 0 {
		ci.Value, ci.Lo, ci.Hi = math.NaN(), math.NaN(), math.NaN()
		return ci
	}
	ci.Value = stat(xs, ys)
	dist := make([]float64, resamples)
	sx := make([]float64, len(xs))
	sy := make([]float64, len(ys))
	for b := 0; b < resamples; b++ {
		for i := range sx {
			sx[i] = xs[r.Intn(len(xs))]
		}
		for i := range sy {
			sy[i] = ys[r.Intn(len(ys))]
		}
		dist[b] = stat(sx, sy)
	}
	alpha := (100 - confidence) / 2
	ci.Lo = Percentile(dist, alpha)
	ci.Hi = Percentile(dist, 100-alpha)
	return ci
}

// BernoulliVector expands (successes, trials) into the 0/1 sample vector
// bootstrap resampling operates on — the per-read success indicators the
// figure harnesses aggregate away.
func BernoulliVector(successes, trials int) []float64 {
	if trials < 0 || successes < 0 || successes > trials {
		panic("metrics: malformed Bernoulli counts")
	}
	xs := make([]float64, trials)
	for i := 0; i < successes; i++ {
		xs[i] = 1
	}
	return xs
}

// WilsonCI packages WilsonInterval as a CI (95% only, matching the
// z = 1.96 constant of WilsonInterval).
func WilsonCI(successes, trials int) CI {
	lo, hi := WilsonInterval(successes, trials)
	v := math.NaN()
	if trials > 0 {
		v = float64(successes) / float64(trials)
	}
	return CI{Value: v, Lo: lo, Hi: hi, Confidence: 95, N: trials}
}
