// Retry/fallback layer: the robustness half of Challenge 3. A real cQ-RAN
// deployment cannot treat a QPU programming failure as a lost frame — the
// ARQ turn-around still expects an answer. A Retry-wrapped stage re-issues
// failed attempts (each with a fresh per-attempt RNG stream) under a
// bounded budget of simulated-μs backoff charged against the frame's
// deadline, and when attempts are exhausted — or further attempts could no
// longer meet the deadline — a Fallback answers the frame from what the
// classical stage already computed. Every frame gets an answer; quality
// degrades, availability doesn't.
package pipeline

import (
	"fmt"

	"repro/internal/telemetry"
)

// Fallback produces a degraded answer for a frame whose primary stage
// could not complete within its retry/deadline budget.
type Fallback interface {
	// Name identifies the fallback in reports.
	Name() string
	// Recover answers the frame and returns the modelled μs it charges.
	Recover(f *Frame) (serviceMicros float64, err error)
}

// Retry wraps a stage with bounded re-attempts, simulated-μs backoff, and
// a terminal fallback. The wrapped stage sees Frame.Attempt = 0, 1, 2, …
// so it can derive a fresh RNG stream per attempt (attempt 0 uses the
// exact stream an unwrapped stage would, keeping no-fault runs
// bit-identical to the unwrapped pipeline).
type Retry struct {
	// Stage is the primary processing unit.
	Stage Stage
	// MaxAttempts bounds the attempts per frame (default 2: one retry).
	MaxAttempts int
	// BackoffMicros is the simulated pause charged before each re-attempt
	// (default 0: immediate re-issue).
	BackoffMicros float64
	// BackoffFactor multiplies the backoff after each retry (default 2).
	BackoffFactor float64
	// Fallback answers the frame when attempts are exhausted or the
	// deadline budget is gone; nil re-raises the last stage error.
	Fallback Fallback
	// DisableDeadlineAbort keeps retrying even when the frame's charged
	// service time already exceeds its deadline. By default a frame whose
	// known service consumption can no longer meet the ARQ budget skips
	// straight to the fallback — the retry would be wasted device time.
	// (The check is against service time, a lower bound on latency;
	// queueing delay can still cause misses the policy cannot foresee.)
	DisableDeadlineAbort bool
	// Trace, when set, receives retry/attempt, retry/fault, retry/abort,
	// and retry/fallback events. Event timestamps are the frame's charged
	// SERVICE time so far (simulated μs consumed by completed stages plus
	// this wrapper's attempts and backoff) — a service-relative clock,
	// since absolute start times are only known to the later schedule
	// recurrence. Nil-safe.
	Trace *telemetry.Tracer
}

// Name implements Stage.
func (rt *Retry) Name() string { return rt.Stage.Name() + "+retry" }

// Process implements Stage: attempt, back off, re-attempt, fall back.
// The returned service time charges every attempt (failed calls still
// occupied the device), all backoff pauses, and the fallback's own cost.
func (rt *Retry) Process(f *Frame) (float64, error) {
	maxAttempts := rt.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	factor := rt.BackoffFactor
	if factor <= 0 {
		factor = 2
	}
	var charged float64
	var lastErr error
	backoff := rt.BackoffMicros
	reason := ""
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			charged += backoff
			f.Stats.BackoffMicros += backoff
			backoff *= factor
		}
		if !rt.DisableDeadlineAbort && f.Deadline > 0 && f.ServiceSoFar()+charged >= f.Deadline {
			reason = "deadline"
			rt.Trace.Event("retry/abort", f.ServiceSoFar()+charged, telemetry.Attrs{
				"frame": f.Seq, "attempt": attempt, "deadline_us": f.Deadline,
			})
			break
		}
		f.Attempt = attempt
		f.Stats.Attempts++
		if attempt > 0 {
			f.Stats.Retries++
			rt.Trace.Event("retry/attempt", f.ServiceSoFar()+charged, telemetry.Attrs{
				"frame": f.Seq, "attempt": attempt, "stage": rt.Stage.Name(),
			})
		}
		micros, err := rt.Stage.Process(f)
		f.Attempt = 0
		charged += micros
		if err == nil {
			return charged, nil
		}
		lastErr = err
		f.Stats.FaultedAttempts++
		rt.Trace.Event("retry/fault", f.ServiceSoFar()+charged, telemetry.Attrs{
			"frame": f.Seq, "attempt": attempt, "error": err.Error(),
		})
	}
	if reason == "" {
		reason = "retries-exhausted"
	}
	if rt.Fallback == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("pipeline: %s: deadline budget exhausted before any attempt", rt.Stage.Name())
		}
		return charged, lastErr
	}
	micros, err := rt.Fallback.Recover(f)
	if err != nil {
		return charged, fmt.Errorf("pipeline: fallback %s: %w", rt.Fallback.Name(), err)
	}
	f.Stats.FellBack = true
	f.Stats.FallbackReason = reason
	rt.Trace.Event("retry/fallback", f.ServiceSoFar()+charged+micros, telemetry.Attrs{
		"frame": f.Seq, "reason": reason, "fallback": rt.Fallback.Name(),
	})
	return charged + micros, nil
}
