package pipeline

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// flakyStage fails the first failuresFor[Seq] attempts of each frame and
// charges a constant service time per attempt, success or not.
type flakyStage struct {
	micros      float64
	failuresFor map[int]int
}

func (s *flakyStage) Name() string { return "flaky" }

func (s *flakyStage) Process(f *Frame) (float64, error) {
	if f.Attempt < s.failuresFor[f.Seq] {
		return s.micros, fmt.Errorf("injected failure (attempt %d)", f.Attempt)
	}
	return s.micros, nil
}

// stubFallback charges a constant recovery cost, or refuses.
type stubFallback struct {
	micros float64
	fail   bool
	calls  int
}

func (s *stubFallback) Name() string { return "stub" }

func (s *stubFallback) Recover(f *Frame) (float64, error) {
	s.calls++
	if s.fail {
		return 0, fmt.Errorf("fallback refused")
	}
	return s.micros, nil
}

// TestRetryAdversarial drives the retry policy through its failure table:
// recover-on-retry, exhaustion→fallback, deadline abort, fallback failure,
// and exhaustion without a fallback.
func TestRetryAdversarial(t *testing.T) {
	cases := []struct {
		name        string
		failures    int     // stage failures before success
		priorMicros float64 // service already charged by earlier stages
		deadline    float64
		noFallback  bool
		fallbackErr bool

		wantErr      bool
		wantCharged  float64
		wantAttempts int
		wantRetries  int
		wantFellBack bool
		wantReason   string
	}{
		{
			name: "first-attempt-success", failures: 0,
			wantCharged: 7, wantAttempts: 1,
		},
		{
			name: "recovers-on-retry", failures: 1,
			// attempt 7, backoff 5, attempt 7
			wantCharged: 19, wantAttempts: 2, wantRetries: 1,
		},
		{
			name: "exhaustion-falls-back", failures: 99,
			// 3 attempts × 7 + backoff 5 + 10, then fallback 2
			wantCharged: 38, wantAttempts: 3, wantRetries: 2,
			wantFellBack: true, wantReason: "retries-exhausted",
		},
		{
			name: "deadline-aborts-to-fallback", failures: 99,
			priorMicros: 8, deadline: 10,
			// attempt0 runs (7), backoff 5 → 8+12 ≥ 10 → abort, fallback 2
			wantCharged: 14, wantAttempts: 1,
			wantFellBack: true, wantReason: "deadline",
		},
		{
			name: "dead-before-first-attempt", failures: 0,
			priorMicros: 20, deadline: 10,
			// no attempt ever runs; fallback answers at its own cost
			wantCharged: 2, wantAttempts: 0,
			wantFellBack: true, wantReason: "deadline",
		},
		{
			name: "no-fallback-exhaustion-errors", failures: 99, noFallback: true,
			wantErr: true, wantAttempts: 3, wantRetries: 2,
		},
		{
			name: "fallback-failure-errors", failures: 99, fallbackErr: true,
			wantErr: true, wantAttempts: 3, wantRetries: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := &Retry{
				Stage:         &flakyStage{micros: 7, failuresFor: map[int]int{0: tc.failures}},
				MaxAttempts:   3,
				BackoffMicros: 5,
			}
			if !tc.noFallback {
				rt.Fallback = &stubFallback{micros: 2, fail: tc.fallbackErr}
			}
			f := &Frame{Seq: 0, Deadline: tc.deadline, ServiceTimes: []float64{tc.priorMicros}}
			charged, err := rt.Process(f)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if !tc.wantErr && math.Abs(charged-tc.wantCharged) > 1e-9 {
				t.Fatalf("charged %v, want %v", charged, tc.wantCharged)
			}
			if f.Stats.Attempts != tc.wantAttempts || f.Stats.Retries != tc.wantRetries {
				t.Fatalf("attempts/retries %d/%d, want %d/%d",
					f.Stats.Attempts, f.Stats.Retries, tc.wantAttempts, tc.wantRetries)
			}
			if f.Stats.FellBack != tc.wantFellBack || f.Stats.FallbackReason != tc.wantReason {
				t.Fatalf("fellback %v (%q), want %v (%q)",
					f.Stats.FellBack, f.Stats.FallbackReason, tc.wantFellBack, tc.wantReason)
			}
			if f.Attempt != 0 {
				t.Fatal("Frame.Attempt not reset after retry loop")
			}
		})
	}
}

// TestPipelineZeroFrames: an empty frame stream runs and schedules to an
// all-zero report rather than erroring or dividing by zero.
func TestPipelineZeroFrames(t *testing.T) {
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", micros: 1}}}
	out, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("collected %d frames from empty input", len(out))
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || rep.MeanLatency != 0 || rep.DeadlineMissRate != 0 ||
		rep.FallbackRate != 0 || len(rep.Frames) != 0 {
		t.Fatalf("empty run produced non-zero report: %+v", rep)
	}
}

// TestPipelineMidStreamFailureAccounting: a stage that fails only for some
// mid-stream frames, wrapped in retry+fallback, still delivers every frame
// to the collector with complete accounting.
func TestPipelineMidStreamFailureAccounting(t *testing.T) {
	fb := &stubFallback{micros: 1}
	p := &Pipeline{Stages: []Stage{
		&fixedStage{name: "pre", micros: 2},
		&Retry{
			Stage:         &flakyStage{micros: 5, failuresFor: map[int]int{3: 99, 4: 1, 5: 99}},
			MaxAttempts:   2,
			BackoffMicros: 1,
			Fallback:      fb,
		},
	}}
	frames := simpleFrames(10, 1, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("collector received %d/10 frames", len(out))
	}
	for _, f := range out {
		if f.Err != nil {
			t.Fatalf("frame %d errored despite fallback: %v", f.Seq, f.Err)
		}
	}
	if !out[3].Stats.FellBack || !out[5].Stats.FellBack {
		t.Fatal("persistently failing frames did not fall back")
	}
	if out[4].Stats.FellBack || out[4].Stats.Retries != 1 {
		t.Fatal("transiently failing frame should recover via retry, not fallback")
	}
	if out[0].Stats.Attempts != 1 || out[0].Stats.FellBack {
		t.Fatal("healthy frame accounting polluted")
	}
	if fb.calls != 2 {
		t.Fatalf("fallback invoked %d times, want 2", fb.calls)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallbacks != 2 || rep.Retries != 3 {
		t.Fatalf("report fallbacks/retries %d/%d, want 2/3", rep.Fallbacks, rep.Retries)
	}
	if math.Abs(rep.FallbackRate-0.2) > 1e-9 {
		t.Fatalf("fallback rate %v", rep.FallbackRate)
	}
	if rep.BackoffMicros <= 0 {
		t.Fatal("backoff not aggregated")
	}
}

// TestPipelineAllFramesMissDeadline: a saturated stream where every frame
// blows its ARQ budget still completes and reports a 100% miss rate.
func TestPipelineAllFramesMissDeadline(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		&Retry{Stage: &flakyStage{micros: 50, failuresFor: nil}, MaxAttempts: 2,
			Fallback: &stubFallback{micros: 1}, DisableDeadlineAbort: true},
	}}
	frames := simpleFrames(8, 1, 10) // 50 μs service vs 10 μs deadline
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMissRate != 1 {
		t.Fatalf("miss rate %v, want 1", rep.DeadlineMissRate)
	}
	if rep.Fallbacks != 0 {
		t.Fatal("healthy stage should not fall back even when deadlines miss")
	}
	for _, ft := range rep.Frames {
		if !ft.Missed {
			t.Fatalf("frame %d not marked missed", ft.Seq)
		}
	}
}

// TestPipelineFallbackFailurePropagates: when the fallback itself fails,
// the frame carries the error to the collector and Schedule refuses the
// batch — a loud failure, not silent data loss.
func TestPipelineFallbackFailurePropagates(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		&Retry{Stage: &flakyStage{micros: 1, failuresFor: map[int]int{1: 99}},
			MaxAttempts: 2, Fallback: &stubFallback{fail: true}},
	}}
	frames := simpleFrames(3, 1, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatal("failed frame dropped from collector")
	}
	if out[1].Err == nil {
		t.Fatal("fallback failure not recorded on frame")
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatal("healthy frames contaminated")
	}
	if _, err := p.Schedule(out); err == nil {
		t.Fatal("Schedule accepted a failed frame")
	}
}

// TestDetectionPipelineRetryFallbackAcceptance is the PR's headline
// criterion: with a QPU failing half its programming cycles, the
// retry+fallback pipeline answers every frame — zero errors — with
// non-zero retry and fallback counts.
func TestDetectionPipelineRetryFallbackAcceptance(t *testing.T) {
	insts, err := instance.Corpus(instance.Spec{
		Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
	}, 21, 12)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := GenerateFrames(insts, 400, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.AnnealConfig{
		SweepsPerMicrosecond: 60,
		Faults:               annealer.FaultModel{ProgrammingFailureRate: 0.5},
	}
	p := &Pipeline{Stages: []Stage{
		&ClassicalStage{Rng: rng.New(1)},
		&Retry{
			Stage:         &QuantumStage{NumReads: 30, Config: cfg, Rng: rng.New(2)},
			MaxAttempts:   2,
			BackoffMicros: 10,
			Fallback:      &ClassicalFallback{},
		},
	}}
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out {
		if f.Err != nil {
			t.Fatalf("frame %d errored: %v", f.Seq, f.Err)
		}
		pl := f.Payload.(*DetectionPayload)
		if pl.Symbols == nil {
			t.Fatalf("frame %d has no answer", f.Seq)
		}
		if f.Stats.FellBack && pl.Source != core.AnswerClassicalFallback {
			t.Fatalf("frame %d fell back but source is %v", f.Seq, pl.Source)
		}
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("50% failure rate produced zero retries")
	}
	if rep.Fallbacks == 0 {
		t.Fatal("50% failure rate with 2 attempts produced zero fallbacks")
	}
	if rep.BackoffMicros <= 0 {
		t.Fatal("retries charged no backoff")
	}
	t.Logf("retries=%d fallbacks=%d backoff=%.0fμs", rep.Retries, rep.Fallbacks, rep.BackoffMicros)
}

// TestRetryWrapperIsTransparentWithoutFaults: wrapping the quantum stage
// in Retry must not change a single bit of a healthy run — same service
// times, same symbols, same energies, zero retries/fallbacks.
func TestRetryWrapperIsTransparentWithoutFaults(t *testing.T) {
	mk := func(wrap bool) ([]*Frame, *Report) {
		insts, err := instance.Corpus(instance.Spec{
			Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
		}, 23, 8)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := GenerateFrames(insts, 400, 5_000)
		if err != nil {
			t.Fatal(err)
		}
		var qs Stage = &QuantumStage{
			NumReads: 30,
			Config:   core.AnnealConfig{SweepsPerMicrosecond: 60},
			Rng:      rng.New(2),
		}
		if wrap {
			qs = &Retry{Stage: qs, MaxAttempts: 3, BackoffMicros: 10, Fallback: &ClassicalFallback{}}
		}
		p := &Pipeline{Stages: []Stage{&ClassicalStage{Rng: rng.New(1)}, qs}}
		out, err := p.Run(frames)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Schedule(out)
		if err != nil {
			t.Fatal(err)
		}
		return out, rep
	}
	plain, plainRep := mk(false)
	wrapped, wrappedRep := mk(true)
	if wrappedRep.Retries != 0 || wrappedRep.Fallbacks != 0 || wrappedRep.BackoffMicros != 0 {
		t.Fatalf("healthy wrapped run recorded retries=%d fallbacks=%d",
			wrappedRep.Retries, wrappedRep.Fallbacks)
	}
	for i := range plain {
		pp := plain[i].Payload.(*DetectionPayload)
		wp := wrapped[i].Payload.(*DetectionPayload)
		if pp.BestEnergy != wp.BestEnergy || pp.SymbolErrors != wp.SymbolErrors {
			t.Fatalf("frame %d solution diverged under retry wrapper", i)
		}
		for j := range pp.Symbols {
			if pp.Symbols[j] != wp.Symbols[j] {
				t.Fatalf("frame %d symbol %d diverged", i, j)
			}
		}
		for s := range plain[i].ServiceTimes {
			if plain[i].ServiceTimes[s] != wrapped[i].ServiceTimes[s] {
				t.Fatalf("frame %d stage %d service time diverged: %v vs %v",
					i, s, plain[i].ServiceTimes[s], wrapped[i].ServiceTimes[s])
			}
		}
	}
	if plainRep.MeanLatency != wrappedRep.MeanLatency || plainRep.Makespan != wrappedRep.Makespan {
		t.Fatal("healthy timing diverged under retry wrapper")
	}
}
