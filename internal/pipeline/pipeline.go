// Package pipeline implements Challenge 3 / Figure 2 of the paper: the
// staged classical-quantum computational pipeline that processes
// successive wireless channel uses. Data bits from channel use N are in
// the quantum stage while channel use N+1 is in the classical stage,
// exploiting the sequential arrival of traffic over a wireless link.
//
// Execution and timing are separated: stages run concurrently as
// goroutines connected by buffered channels (the pipeline's buffers), and
// each stage reports a modelled service time in simulated microseconds —
// the classical module's compute estimate, or the QPU's
// programming+anneal+readout budget. A deterministic schedule recurrence
// then turns per-frame service times into start/finish times, latencies,
// throughput, stage utilization, and ARQ-deadline misses, independent of
// host scheduling jitter.
package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// Frame is one channel use travelling through the pipeline.
type Frame struct {
	// Seq is the channel-use index (0-based).
	Seq int
	// Arrival is the frame's arrival time in simulated μs.
	Arrival float64
	// Deadline is the ARQ turn-around budget in μs from arrival; 0 means
	// no deadline.
	Deadline float64
	// Payload carries the stage data (detection problem, candidate state,
	// detected symbols) — owned by the stages.
	Payload any
	// ServiceTimes[s] is stage s's modelled μs for this frame, recorded
	// as the frame passes through.
	ServiceTimes []float64
	// Attempt is the current retry attempt at the executing stage (0 =
	// first try), set by Retry so stages can derive fresh RNG streams per
	// attempt; always reset to 0 between stages.
	Attempt int
	// Stats accumulates the frame's robustness accounting (retries,
	// backoff, fallbacks) as it flows through retry-wrapped stages.
	Stats FrameStats
	// Err aborts downstream processing but still flows to the collector
	// so accounting stays complete.
	Err error
}

// FrameStats is one frame's robustness accounting.
type FrameStats struct {
	// Attempts counts stage attempts under retry-wrapped stages (0 when
	// no wrapped stage ran the frame).
	Attempts int
	// Retries counts attempts beyond the first.
	Retries int
	// FaultedAttempts counts attempts that ended in a stage error.
	FaultedAttempts int
	// BackoffMicros is the total simulated backoff charged to the frame.
	BackoffMicros float64
	// FellBack reports the frame was answered by a fallback.
	FellBack bool
	// FallbackReason is "retries-exhausted" or "deadline" when FellBack.
	FallbackReason string
}

// ServiceSoFar sums the service time already charged to the frame by
// completed stages — the frame's known lower bound on consumed latency,
// which the retry policy charges its deadline budget against.
func (f *Frame) ServiceSoFar() float64 {
	var sum float64
	for _, s := range f.ServiceTimes {
		sum += s
	}
	return sum
}

// Stage is one processing unit (a CPU pool or a QPU).
type Stage interface {
	// Name identifies the stage in reports.
	Name() string
	// Process transforms the frame's payload and returns the modelled
	// service time in μs.
	Process(f *Frame) (serviceMicros float64, err error)
}

// Pipeline executes frames through stages in order.
type Pipeline struct {
	Stages []Stage
	// BufferSize is the channel capacity between consecutive stages
	// (default 1 — the tightest pipelining of Figure 2).
	BufferSize int
	// Replicas[s] models stage s as a pool of identical units (e.g. a
	// CPU pool or several QPUs — Challenge 3's "assign those units to
	// staged processing units"); missing/zero entries mean 1.
	Replicas []int
	// Trace, when set, receives one "stage/<name>" span per frame per
	// stage on the simulated clock (start/finish from the schedule
	// recurrence) plus deadline-miss events. Nil-safe.
	Trace *telemetry.Tracer
	// Metrics, when set, receives run counters (frames, deadline misses,
	// retries, fallbacks, answer sources), a latency histogram, and
	// per-stage utilization gauges. Nil-safe.
	Metrics *telemetry.Registry
}

// replicasAt returns stage s's server count (≥ 1).
func (p *Pipeline) replicasAt(s int) int {
	if s < len(p.Replicas) && p.Replicas[s] > 0 {
		return p.Replicas[s]
	}
	return 1
}

// Run pushes every frame through all stages concurrently (one goroutine
// per stage) and returns them in order with service times recorded.
func (p *Pipeline) Run(frames []*Frame) ([]*Frame, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	buf := p.BufferSize
	if buf <= 0 {
		buf = 1
	}
	for _, f := range frames {
		f.ServiceTimes = make([]float64, len(p.Stages))
	}
	in := make(chan *Frame, buf)
	cur := in
	var wg sync.WaitGroup
	for si, st := range p.Stages {
		out := make(chan *Frame, buf)
		wg.Add(1)
		go func(si int, st Stage, in <-chan *Frame, out chan<- *Frame) {
			defer wg.Done()
			defer close(out)
			for f := range in {
				if f.Err == nil {
					micros, err := st.Process(f)
					if err != nil {
						f.Err = fmt.Errorf("pipeline: stage %s frame %d: %w", st.Name(), f.Seq, err)
					} else {
						f.ServiceTimes[si] = micros
					}
				}
				out <- f
			}
		}(si, st, cur, out)
		cur = out
	}
	done := make(chan []*Frame)
	go func() {
		var collected []*Frame
		for f := range cur {
			collected = append(collected, f)
		}
		done <- collected
	}()
	for _, f := range frames {
		in <- f
	}
	close(in)
	wg.Wait()
	collected := <-done
	// Stages preserve order (single goroutine per stage, FIFO channels).
	for i, f := range collected {
		if f.Seq != frames[i].Seq {
			return nil, fmt.Errorf("pipeline: frame order violated at %d", i)
		}
	}
	return collected, nil
}

// FrameTiming is one frame's modelled schedule.
type FrameTiming struct {
	Seq      int
	Arrival  float64
	Start    []float64 // per stage
	Finish   []float64 // per stage
	Latency  float64   // completion − arrival
	Deadline float64
	Missed   bool
	// Attempts and FellBack carry the frame's retry/fallback accounting
	// into the report.
	Attempts int
	FellBack bool
}

// Report aggregates a pipeline run's modelled timing.
type Report struct {
	Frames []FrameTiming
	// Makespan is the completion time of the last frame (μs).
	Makespan float64
	// ThroughputPerSecond is frames per simulated second in steady state.
	ThroughputPerSecond float64
	// MeanLatency and P95Latency are per-frame latencies (μs).
	MeanLatency, P95Latency float64
	// DeadlineMissRate is the fraction of frames finishing past their
	// deadline.
	DeadlineMissRate float64
	// Utilization[s] is stage s's busy fraction of the makespan.
	Utilization []float64
	// StageNames labels the columns.
	StageNames []string
	// Retries is the total attempts beyond the first across all frames.
	Retries int
	// Fallbacks is the number of frames answered by a fallback, and
	// FallbackRate their fraction.
	Fallbacks    int
	FallbackRate float64
	// BackoffMicros is the total simulated retry backoff charged.
	BackoffMicros float64
}

// Schedule computes the modelled pipeline timing for processed frames:
// stage s starts frame i when the frame has arrived, stage s has finished
// frame i−1, stage s−1 has delivered frame i, and — with bounded buffers
// of capacity B — the downstream stage has started frame i−B (back-
// pressure).
func (p *Pipeline) Schedule(frames []*Frame) (*Report, error) {
	n := len(frames)
	s := len(p.Stages)
	if s == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	buf := p.BufferSize
	if buf <= 0 {
		buf = 1
	}
	start := make([][]float64, n)
	finish := make([][]float64, n)
	for i := range start {
		start[i] = make([]float64, s)
		finish[i] = make([]float64, s)
	}
	for i, f := range frames {
		if f.Err != nil {
			return nil, fmt.Errorf("pipeline: cannot schedule failed frame %d: %w", f.Seq, f.Err)
		}
		for st := 0; st < s; st++ {
			t := f.Arrival
			if st > 0 {
				t = max2(t, finish[i][st-1])
			}
			// With R replicated units, frame i waits for the unit that
			// processed frame i−R (FIFO dispatch).
			if rep := p.replicasAt(st); i-rep >= 0 {
				t = max2(t, finish[i-rep][st])
			}
			// Back-pressure: with buffer capacity buf between this stage
			// and the next, frame i cannot enter stage st until frame
			// i−buf−1 has vacated it into the buffer... conservatively,
			// until the downstream stage has started frame i−buf.
			if st+1 < s && i-buf >= 0 {
				t = max2(t, start[i-buf][st+1])
			}
			start[i][st] = t
			finish[i][st] = t + f.ServiceTimes[st]
		}
	}
	rep := &Report{Utilization: make([]float64, s)}
	for _, st := range p.Stages {
		rep.StageNames = append(rep.StageNames, st.Name())
	}
	var latencies []float64
	busy := make([]float64, s)
	missed := 0
	for i, f := range frames {
		ft := FrameTiming{
			Seq:      f.Seq,
			Arrival:  f.Arrival,
			Start:    start[i],
			Finish:   finish[i],
			Latency:  finish[i][s-1] - f.Arrival,
			Deadline: f.Deadline,
			Attempts: f.Stats.Attempts,
			FellBack: f.Stats.FellBack,
		}
		if f.Deadline > 0 && ft.Latency > f.Deadline {
			ft.Missed = true
			missed++
		}
		rep.Retries += f.Stats.Retries
		rep.BackoffMicros += f.Stats.BackoffMicros
		if f.Stats.FellBack {
			rep.Fallbacks++
		}
		rep.Frames = append(rep.Frames, ft)
		latencies = append(latencies, ft.Latency)
		for st := 0; st < s; st++ {
			busy[st] += f.ServiceTimes[st]
		}
		if finish[i][s-1] > rep.Makespan {
			rep.Makespan = finish[i][s-1]
		}
	}
	if n > 0 {
		rep.MeanLatency = mean(latencies)
		rep.P95Latency = percentile95(latencies)
		rep.DeadlineMissRate = float64(missed) / float64(n)
		rep.FallbackRate = float64(rep.Fallbacks) / float64(n)
		if rep.Makespan > 0 {
			for st := 0; st < s; st++ {
				rep.Utilization[st] = busy[st] / rep.Makespan / float64(p.replicasAt(st))
			}
			rep.ThroughputPerSecond = float64(n) / rep.Makespan * 1e6
		}
	}
	p.emitTelemetry(frames, rep)
	return rep, nil
}

// emitTelemetry publishes a scheduled run's spans (per frame per stage on
// the simulated clock) and aggregate metrics. Purely observational: the
// report is complete before emission, and both sinks are nil-safe.
func (p *Pipeline) emitTelemetry(frames []*Frame, rep *Report) {
	if p.Trace == nil && p.Metrics == nil {
		return
	}
	last := len(p.Stages) - 1
	for _, ft := range rep.Frames {
		for st := range p.Stages {
			attrs := telemetry.Attrs{"frame": ft.Seq}
			if ft.Attempts > 1 && st == last {
				attrs["attempts"] = ft.Attempts
			}
			if ft.FellBack && st == last {
				attrs["fellback"] = true
			}
			if st == last {
				attrs["latency_us"] = ft.Latency
			}
			p.Trace.Span("stage/"+rep.StageNames[st], ft.Start[st], ft.Finish[st], attrs)
		}
		if ft.Missed {
			p.Trace.Event("deadline-miss", ft.Finish[last], telemetry.Attrs{
				"frame": ft.Seq, "latency_us": ft.Latency, "deadline_us": ft.Deadline,
			})
		}
	}
	if reg := p.Metrics; reg != nil {
		missed := 0
		for _, ft := range rep.Frames {
			if ft.Missed {
				missed++
			}
			// Latency window: 10 ms covers every paper-scale ARQ budget;
			// beyond-window latencies clamp into the last bucket.
			reg.Histogram("pipeline_frame_latency_micros", 0, 10_000, 50).Observe(ft.Latency)
		}
		reg.Counter("pipeline_frames_total").Add(float64(len(rep.Frames)))
		reg.Counter("pipeline_deadline_misses_total").Add(float64(missed))
		reg.Counter("pipeline_retries_total").Add(float64(rep.Retries))
		reg.Counter("pipeline_fallbacks_total").Add(float64(rep.Fallbacks))
		reg.Counter("pipeline_backoff_micros_total").Add(rep.BackoffMicros)
		reg.Gauge("pipeline_throughput_fps").Set(rep.ThroughputPerSecond)
		for st, name := range rep.StageNames {
			reg.Gauge("pipeline_stage_utilization", telemetry.Label{Key: "stage", Value: name}).
				Set(rep.Utilization[st])
		}
		RecordDetectionOutcomes(reg, frames)
	}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile95(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	// Insertion sort: frame counts are modest.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(0.95 * float64(len(sorted)-1))
	return sorted[idx]
}
