package pipeline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/rng"
)

func validationCorpus(t *testing.T) []*instance.Instance {
	t.Helper()
	insts, err := instance.Corpus(instance.Spec{Users: 2, Scheme: modulation.BPSK}, 31, 3)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

// TestGenerateFramesValidation pins the arrival-parameter contract:
// interval 0 (full backlog) and deadline 0 (no deadline) are valid, while
// negative and non-finite values are rejected with errors instead of
// silently producing inverted or NaN arrival times.
func TestGenerateFramesValidation(t *testing.T) {
	insts := validationCorpus(t)
	cases := []struct {
		name               string
		interval, deadline float64
		wantErr            string
	}{
		{"valid", 100, 500, ""},
		{"zero interval valid", 0, 500, ""},
		{"zero deadline valid", 100, 0, ""},
		{"both zero valid", 0, 0, ""},
		{"negative interval", -1, 500, "interval must be non-negative"},
		{"NaN interval", math.NaN(), 500, "interval must be finite"},
		{"+Inf interval", math.Inf(1), 500, "interval must be finite"},
		{"-Inf interval", math.Inf(-1), 500, "interval must be finite"},
		{"negative deadline", 100, -2, "deadline must be non-negative"},
		{"NaN deadline", 100, math.NaN(), "deadline must be finite"},
		{"Inf deadline", 100, math.Inf(1), "deadline must be finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames, err := GenerateFrames(insts, tc.interval, tc.deadline)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(frames) != len(insts) {
					t.Fatalf("%d frames for %d instances", len(frames), len(insts))
				}
				return
			}
			if err == nil {
				t.Fatalf("interval=%v deadline=%v accepted", tc.interval, tc.deadline)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if frames != nil {
				t.Fatal("frames returned alongside an error")
			}
		})
	}
}

// TestGenerateFramesPoissonValidation: an exponential with mean ≤ 0 is
// not a distribution, so unlike the periodic generator a zero interval is
// an error here; the deadline contract matches GenerateFrames.
func TestGenerateFramesPoissonValidation(t *testing.T) {
	insts := validationCorpus(t)
	cases := []struct {
		name           string
		mean, deadline float64
		r              *rng.Source
		wantErr        string
	}{
		{"valid", 100, 500, rng.New(7), ""},
		{"zero deadline valid", 100, 0, rng.New(7), ""},
		{"zero mean", 0, 500, rng.New(7), "mean interval must be positive"},
		{"negative mean", -10, 500, rng.New(7), "mean interval must be positive"},
		{"NaN mean", math.NaN(), 500, rng.New(7), "mean interval must be finite"},
		{"Inf mean", math.Inf(1), 500, rng.New(7), "mean interval must be finite"},
		{"negative deadline", 100, -1, rng.New(7), "deadline must be non-negative"},
		{"NaN deadline", 100, math.NaN(), rng.New(7), "deadline must be finite"},
		{"nil rng", 100, 500, nil, "need an RNG source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames, err := GenerateFramesPoisson(insts, tc.mean, tc.deadline, tc.r)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(frames) != len(insts) {
					t.Fatalf("%d frames for %d instances", len(frames), len(insts))
				}
				return
			}
			if err == nil {
				t.Fatalf("mean=%v deadline=%v accepted", tc.mean, tc.deadline)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestQuantumStageLeaseMatchesUnleased: routing the quantum stage through
// a prepared device lease must not change a single bit — same symbols,
// energies, sources, and service times as the stage that re-validates and
// re-compiles per frame. This is the contract that lets the fleet serving
// path share one compiled session across frames.
func TestQuantumStageLeaseMatchesUnleased(t *testing.T) {
	run := func(lease *annealer.Lease) []*Frame {
		insts, err := instance.Corpus(instance.Spec{
			Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
		}, 29, 6)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := GenerateFrames(insts, 300, 5_000)
		if err != nil {
			t.Fatal(err)
		}
		p := &Pipeline{Stages: []Stage{
			&ClassicalStage{Rng: rng.New(1)},
			&QuantumStage{
				NumReads: 20,
				Config:   core.AnnealConfig{SweepsPerMicrosecond: 60},
				Lease:    lease,
				Rng:      rng.New(2),
			},
		}}
		out, err := p.Run(frames)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	sc, err := annealer.Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := annealer.NewLease(annealer.Params{Schedule: sc, SweepsPerMicrosecond: 60})
	if err != nil {
		t.Fatal(err)
	}
	plain, leased := run(nil), run(lease)
	if len(plain) != len(leased) {
		t.Fatalf("frame counts differ: %d vs %d", len(plain), len(leased))
	}
	for i := range plain {
		a := plain[i].Payload.(*DetectionPayload)
		b := leased[i].Payload.(*DetectionPayload)
		if a.BestEnergy != b.BestEnergy || a.Source != b.Source || a.SymbolErrors != b.SymbolErrors {
			t.Fatalf("frame %d diverged: plain {E=%v src=%v errs=%d}, leased {E=%v src=%v errs=%d}",
				i, a.BestEnergy, a.Source, a.SymbolErrors, b.BestEnergy, b.Source, b.SymbolErrors)
		}
		for j := range a.Symbols {
			if a.Symbols[j] != b.Symbols[j] {
				t.Fatalf("frame %d symbol %d diverged: %v vs %v", i, j, a.Symbols[j], b.Symbols[j])
			}
		}
		for j := range plain[i].ServiceTimes {
			if plain[i].ServiceTimes[j] != leased[i].ServiceTimes[j] {
				t.Fatalf("frame %d service time %d diverged: %v vs %v",
					i, j, plain[i].ServiceTimes[j], leased[i].ServiceTimes[j])
			}
		}
	}
}
