package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mimo"
	"repro/internal/rng"
)

// EnsembleStage reverse-anneals each frame as a K×G flexible-parallelism
// ensemble (top-K classical candidates × an s_p grid, fused to soft
// LLRs) in place of QuantumStage's single arm. Candidate 0 of the
// ensemble's top-K expansion is the same greedy state the default
// ClassicalStage computes, and arm 0 runs on the exact RNG stream the
// single-arm stage uses — so K=1 over the trivial {0.45} grid detects
// bit-identically to QuantumStage on a greedy-seeded pipeline.
type EnsembleStage struct {
	// K, SpGrid, Tp, ReadsPerArm and Beta configure the core.Ensemble
	// (defaults 1, {0.45}, 1 μs, 50 reads, scale-free fusion beta).
	K           int
	SpGrid      []float64
	Tp          float64
	ReadsPerArm int
	Beta        float64
	Config      core.AnnealConfig
	// ProgrammingMicros and ReadoutMicros model device overheads as in
	// QuantumStage. Every arm shares one programmed instance (the
	// prepared-problem path), so programming is charged once per frame;
	// anneal and readout time are charged per arm.
	ProgrammingMicros float64
	ReadoutMicros     float64
	Rng               *rng.Source
}

// Name implements Stage.
func (s *EnsembleStage) Name() string {
	k, g := s.K, len(s.SpGrid)
	if k <= 0 {
		k = 1
	}
	if g == 0 {
		g = 1
	}
	return fmt.Sprintf("qpu:ra-ensemble[k=%d,g=%d]", k, g)
}

// Process implements Stage.
func (s *EnsembleStage) Process(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	reads := s.ReadsPerArm
	if reads <= 0 {
		reads = 50
	}
	r := s.Rng
	if r == nil {
		r = rng.New(1)
	}
	rr := r.Split(uint64(f.Seq))
	if f.Attempt > 0 {
		rr = rr.Split(uint64(f.Attempt))
	}
	det := &core.Ensemble{
		K: s.K, SpGrid: s.SpGrid, Tp: s.Tp, NumReads: reads,
		Beta: s.Beta, Config: s.Config,
	}
	out, err := det.Solve(pl.Instance.Reduction, rr)
	if err != nil {
		// A failed call still occupied the device for its programming
		// cycle, exactly as in QuantumStage.
		return s.ProgrammingMicros, err
	}
	pl.Symbols = out.Symbols
	pl.BestEnergy = out.Best.Energy
	pl.SymbolErrors = mimo.SymbolErrors(out.Symbols, pl.Instance.Transmitted)
	pl.Source = out.Source
	pl.Degraded = out.Source.Degraded()
	pl.SoftLLRs = out.FusedLLRs
	service := s.ProgrammingMicros
	for _, a := range out.Arms {
		service += a.AnnealTime + float64(reads)*s.ReadoutMicros
	}
	return service, nil
}
