package pipeline

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// fixedStage charges a constant service time and tags the payload.
type fixedStage struct {
	name   string
	micros float64
	fail   bool
}

func (s *fixedStage) Name() string { return s.name }

func (s *fixedStage) Process(f *Frame) (float64, error) {
	if s.fail {
		return 0, fmt.Errorf("boom")
	}
	return s.micros, nil
}

func simpleFrames(n int, interval, deadline float64) []*Frame {
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = &Frame{Seq: i, Arrival: float64(i) * interval, Deadline: deadline}
	}
	return frames
}

func TestPipelinePreservesOrder(t *testing.T) {
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", micros: 1}, &fixedStage{name: "b", micros: 2}}}
	frames := simpleFrames(50, 0.5, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f.Seq != i {
			t.Fatalf("frame %d out of order", i)
		}
		if f.ServiceTimes[0] != 1 || f.ServiceTimes[1] != 2 {
			t.Fatal("service times not recorded")
		}
	}
}

func TestPipelineNoStages(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(simpleFrames(1, 1, 0)); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := p.Schedule(nil); err == nil {
		t.Fatal("empty pipeline schedule accepted")
	}
}

func TestPipelineStageErrorPropagates(t *testing.T) {
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", fail: true}, &fixedStage{name: "b", micros: 1}}}
	frames := simpleFrames(3, 1, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out {
		if f.Err == nil {
			t.Fatal("stage error not propagated")
		}
	}
	if _, err := p.Schedule(out); err == nil {
		t.Fatal("failed frames scheduled")
	}
}

// TestScheduleSerialVsPipelined: the pipeline's makespan for two balanced
// stages approaches half the serial time — Figure 2's point.
func TestScheduleSerialVsPipelined(t *testing.T) {
	const per = 10.0
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "cpu", micros: per}, &fixedStage{name: "qpu", micros: per}}}
	// All frames arrive at t=0: pure pipelining, no arrival spacing.
	frames := simpleFrames(20, 0, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined makespan: (n+1)·per = 210 vs serial 2·n·per = 400.
	want := float64(20+1) * per
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", rep.Makespan, want)
	}
	// The bottleneck stage is ~fully utilized.
	if rep.Utilization[1] < 0.9 {
		t.Fatalf("bottleneck utilization %v", rep.Utilization[1])
	}
}

func TestScheduleRespectsArrivals(t *testing.T) {
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", micros: 1}}}
	frames := simpleFrames(5, 100, 0) // sparse arrivals: no queueing
	out, _ := p.Run(frames)
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, ft := range rep.Frames {
		if ft.Start[0] != float64(i)*100 {
			t.Fatalf("frame %d started at %v", i, ft.Start[0])
		}
		if math.Abs(ft.Latency-1) > 1e-9 {
			t.Fatalf("frame %d latency %v", i, ft.Latency)
		}
	}
	if rep.DeadlineMissRate != 0 {
		t.Fatal("spurious deadline misses")
	}
}

func TestScheduleDeadlineMisses(t *testing.T) {
	// Service 10 μs, arrivals every 1 μs, deadline 15 μs: the queue grows
	// and later frames miss.
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", micros: 10}}}
	frames := simpleFrames(10, 1, 15)
	out, _ := p.Run(frames)
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Frames[len(rep.Frames)-1].Missed {
		t.Fatal("saturated queue did not miss deadlines")
	}
	if rep.Frames[0].Missed {
		t.Fatal("first frame should meet its deadline")
	}
	if rep.DeadlineMissRate <= 0 || rep.DeadlineMissRate > 1 {
		t.Fatalf("miss rate %v", rep.DeadlineMissRate)
	}
	// Latencies increase monotonically under saturation.
	for i := 1; i < len(rep.Frames); i++ {
		if rep.Frames[i].Latency < rep.Frames[i-1].Latency {
			t.Fatal("latency not increasing under saturation")
		}
	}
}

// TestBackPressure: with buffer capacity 1, a slow downstream stage
// throttles the upstream one.
func TestBackPressure(t *testing.T) {
	p := &Pipeline{
		Stages:     []Stage{&fixedStage{name: "fast", micros: 1}, &fixedStage{name: "slow", micros: 10}},
		BufferSize: 1,
	}
	frames := simpleFrames(10, 0, 0)
	out, _ := p.Run(frames)
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	// Upstream stage must not race arbitrarily far ahead: frame i cannot
	// start on "fast" before frame i−1 started on "slow".
	for i := 1; i < len(rep.Frames); i++ {
		if rep.Frames[i].Start[0]+1e-9 < rep.Frames[i-1].Start[1] {
			t.Fatalf("frame %d entered the fast stage before back-pressure allowed", i)
		}
	}
}

func TestThroughputAndStats(t *testing.T) {
	p := &Pipeline{Stages: []Stage{&fixedStage{name: "a", micros: 2}}}
	frames := simpleFrames(100, 2, 0) // perfectly matched arrival rate
	out, _ := p.Run(frames)
	rep, _ := p.Schedule(out)
	// 1 frame per 2 μs = 500k frames/s.
	if math.Abs(rep.ThroughputPerSecond-100.0/rep.Makespan*1e6) > 1e-6 {
		t.Fatal("throughput inconsistent with makespan")
	}
	if rep.MeanLatency != 2 || rep.P95Latency != 2 {
		t.Fatalf("latency stats %v/%v", rep.MeanLatency, rep.P95Latency)
	}
	if len(rep.StageNames) != 1 || rep.StageNames[0] != "a" {
		t.Fatal("stage names missing")
	}
}

// TestDetectionPipelineEndToEnd runs real channel uses through the
// GS→RA pipeline of Figure 2 and checks every frame decodes correctly
// with modelled timings recorded.
func TestDetectionPipelineEndToEnd(t *testing.T) {
	insts, err := instance.Corpus(instance.Spec{
		Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
	}, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := GenerateFrames(insts, 500, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	cs := &ClassicalStage{Rng: rng.New(1)}
	qs := &QuantumStage{
		NumReads: 30,
		Config:   core.AnnealConfig{SweepsPerMicrosecond: 60},
		Rng:      rng.New(2),
	}
	p := &Pipeline{Stages: []Stage{cs, qs}}
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out {
		if f.Err != nil {
			t.Fatal(f.Err)
		}
		pl := f.Payload.(*DetectionPayload)
		if pl.SymbolErrors != 0 {
			t.Fatalf("frame %d misdecoded with %d symbol errors", f.Seq, pl.SymbolErrors)
		}
		if f.ServiceTimes[0] <= 0 || f.ServiceTimes[1] <= 0 {
			t.Fatalf("frame %d missing service times: %v", f.Seq, f.ServiceTimes)
		}
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMissRate != 0 {
		t.Fatalf("deadline misses: %v", rep.DeadlineMissRate)
	}
	// The quantum stage dominates: RA at sp=0.45 runs 2.1 μs × 30 reads.
	want, err := qs.QuantumServiceTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0].ServiceTimes[1]-want) > 1e-9 {
		t.Fatalf("quantum service %v, model %v", out[0].ServiceTimes[1], want)
	}
}

func TestQuantumStageRequiresCandidate(t *testing.T) {
	insts, _ := instance.Corpus(instance.Spec{Users: 2, Scheme: modulation.QPSK}, 9, 1)
	frames, err := GenerateFrames(insts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	qs := &QuantumStage{NumReads: 5, Config: core.AnnealConfig{SweepsPerMicrosecond: 60}, Rng: rng.New(1)}
	p := &Pipeline{Stages: []Stage{qs}} // no classical stage
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err == nil {
		t.Fatal("quantum stage accepted a frame without a candidate")
	}
}

func TestStagePayloadTypeChecked(t *testing.T) {
	cs := &ClassicalStage{Rng: rng.New(1)}
	f := &Frame{Payload: "not a payload", ServiceTimes: make([]float64, 1)}
	if _, err := cs.Process(f); err == nil {
		t.Fatal("bad payload accepted")
	}
	qs := &QuantumStage{Rng: rng.New(1)}
	if _, err := qs.Process(f); err == nil {
		t.Fatal("bad payload accepted by quantum stage")
	}
}

func TestGenerateFrames(t *testing.T) {
	insts, _ := instance.Corpus(instance.Spec{Users: 2, Scheme: modulation.BPSK}, 11, 3)
	frames, err := GenerateFrames(insts, 1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatal("frame count wrong")
	}
	for i, f := range frames {
		if f.Arrival != float64(i)*1000 || f.Deadline != 3000 || f.Seq != i {
			t.Fatalf("frame %d fields wrong: %+v", i, f)
		}
	}
}

// TestScheduleReplicatedStage: doubling a bottleneck stage's units halves
// its effective service interval — Challenge 3's unit-assignment lever.
func TestScheduleReplicatedStage(t *testing.T) {
	const per = 10.0
	single := &Pipeline{Stages: []Stage{&fixedStage{name: "qpu", micros: per}}}
	frames := simpleFrames(20, 0, 0)
	out, _ := single.Run(frames)
	rep1, err := single.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	dual := &Pipeline{Stages: []Stage{&fixedStage{name: "qpu", micros: per}}, Replicas: []int{2}}
	frames2 := simpleFrames(20, 0, 0)
	out2, _ := dual.Run(frames2)
	rep2, err := dual.Schedule(out2)
	if err != nil {
		t.Fatal(err)
	}
	// 20 frames × 10 μs on 1 unit = 200; on 2 units = 100.
	if math.Abs(rep1.Makespan-200) > 1e-9 || math.Abs(rep2.Makespan-100) > 1e-9 {
		t.Fatalf("makespans %v / %v, want 200 / 100", rep1.Makespan, rep2.Makespan)
	}
	// Utilization is per-unit: both ≈ 1.
	if rep2.Utilization[0] < 0.95 || rep2.Utilization[0] > 1.0+1e-9 {
		t.Fatalf("dual utilization %v", rep2.Utilization[0])
	}
}

// TestThreeStagePipeline: classical → quantum → classical post-processing
// composes, and the modelled bound (bottleneck spacing) holds.
func TestThreeStagePipeline(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		&fixedStage{name: "pre", micros: 2},
		&fixedStage{name: "qpu", micros: 8},
		&fixedStage{name: "post", micros: 3},
	}}
	frames := simpleFrames(15, 0, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: one frame per bottleneck period (8 μs); makespan =
	// fill (2) + 15·8 + drain (3) − 8 + 8 = 2 + 120 + 3.
	want := 2 + 15*8.0 + 3
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", rep.Makespan, want)
	}
	if len(rep.StageNames) != 3 {
		t.Fatal("stage names wrong")
	}
}

func TestGenerateFramesPoisson(t *testing.T) {
	insts, _ := instance.Corpus(instance.Spec{Users: 2, Scheme: modulation.BPSK}, 13, 200)
	frames, err := GenerateFramesPoisson(insts, 100, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].Arrival != 0 {
		t.Fatal("first arrival not at 0")
	}
	var sum float64
	for i := 1; i < len(frames); i++ {
		gap := frames[i].Arrival - frames[i-1].Arrival
		if gap < 0 {
			t.Fatal("arrivals not monotone")
		}
		sum += gap
	}
	mean := sum / float64(len(frames)-1)
	if mean < 70 || mean > 130 {
		t.Fatalf("mean inter-arrival %v, want ≈100", mean)
	}
	// Deterministic in the seed.
	again, err := GenerateFramesPoisson(insts, 100, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if frames[i].Arrival != again[i].Arrival {
			t.Fatal("Poisson arrivals not deterministic")
		}
	}
}
