package pipeline

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// TestEnsembleStageCollapsesToQuantumStage: a K=1/{0.45} ensemble stage
// on a greedy-seeded pipeline must detect bit-identically to the
// single-arm QuantumStage — same symbols, best energy, answer source,
// and service time — because candidate 0 is the same greedy state and
// arm 0 runs on the same RNG stream.
func TestEnsembleStageCollapsesToQuantumStage(t *testing.T) {
	insts, err := instance.Corpus(instance.Spec{
		Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
	}, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(quantum Stage) []*Frame {
		frames, err := GenerateFrames(insts, 500, 0)
		if err != nil {
			t.Fatal(err)
		}
		p := &Pipeline{Stages: []Stage{&ClassicalStage{Rng: rng.New(1)}, quantum}}
		out, err := p.Run(frames)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range out {
			if f.Err != nil {
				t.Fatal(f.Err)
			}
		}
		return out
	}
	cfg := core.AnnealConfig{SweepsPerMicrosecond: 60}
	single := run(&QuantumStage{NumReads: 20, Config: cfg, Rng: rng.New(2)})
	ens := run(&EnsembleStage{ReadsPerArm: 20, Config: cfg, Rng: rng.New(2)})
	for i := range single {
		sp := single[i].Payload.(*DetectionPayload)
		ep := ens[i].Payload.(*DetectionPayload)
		if !reflect.DeepEqual(sp.Symbols, ep.Symbols) || sp.BestEnergy != ep.BestEnergy || sp.Source != ep.Source {
			t.Fatalf("frame %d: collapsed ensemble diverges from the single arm", i)
		}
		if math.Abs(single[i].ServiceTimes[1]-ens[i].ServiceTimes[1]) > 1e-9 {
			t.Fatalf("frame %d: service %v vs %v", i, ens[i].ServiceTimes[1], single[i].ServiceTimes[1])
		}
		if len(ep.SoftLLRs) != len(sp.Symbols)*modulation.QAM16.BitsPerSymbol() {
			t.Fatalf("frame %d: fused LLRs %d, want one per spin", i, len(ep.SoftLLRs))
		}
	}
}

// TestEnsembleStageWidensAndCharges: a K×G stage fuses every arm and
// charges each arm's anneal plus per-read readout on top of one shared
// programming cycle.
func TestEnsembleStageWidensAndCharges(t *testing.T) {
	insts, err := instance.Corpus(instance.Spec{
		Users: 3, Scheme: modulation.QAM16, Channel: channel.UnitGainRandomPhase,
	}, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := GenerateFrames(insts, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		reads       = 10
		programming = 1000.0
		readout     = 25.0
	)
	es := &EnsembleStage{
		K: 2, SpGrid: []float64{0.37, 0.45}, ReadsPerArm: reads,
		Config:            core.AnnealConfig{SweepsPerMicrosecond: 60},
		ProgrammingMicros: programming, ReadoutMicros: readout,
		Rng: rng.New(3),
	}
	if es.Name() != "qpu:ra-ensemble[k=2,g=2]" {
		t.Fatalf("stage name %q", es.Name())
	}
	p := &Pipeline{Stages: []Stage{&ClassicalStage{Rng: rng.New(1)}, es}}
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out {
		if f.Err != nil {
			t.Fatal(f.Err)
		}
		pl := f.Payload.(*DetectionPayload)
		if pl.SoftLLRs == nil {
			t.Fatalf("frame %d missing fused soft output", f.Seq)
		}
		// 4 arms: programming once, readout per read per arm, anneal > 0.
		floor := programming + 4*reads*readout
		if f.ServiceTimes[1] <= floor {
			t.Fatalf("frame %d service %v under the %v overhead floor", f.Seq, f.ServiceTimes[1], floor)
		}
	}
}
