package pipeline

import (
	"fmt"
	"math"

	"repro/internal/annealer"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/mimo"
	"repro/internal/qubo"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// DetectionPayload is the data a channel use carries through the
// classical→quantum detection pipeline.
type DetectionPayload struct {
	Instance *instance.Instance
	// InitialState is produced by the classical stage.
	InitialState []int8
	// Symbols and BestEnergy are produced by the quantum stage (or the
	// fallback).
	Symbols    []complex128
	BestEnergy float64
	// SymbolErrors compares against the transmitted truth.
	SymbolErrors int
	// Source records where the answer came from (quantum-refined,
	// classical candidate, or classical fallback).
	Source core.AnswerSource
	// SoftLLRs is the fused per-spin soft output when the frame was
	// detected by an EnsembleStage (nil on the single-arm path).
	SoftLLRs []float64
	// Degraded reports the quantum stage contributed nothing — the frame
	// was answered by the classical candidate after a fault or deadline
	// abort.
	Degraded bool
}

// ClassicalStage runs the hybrid design's classical module on each frame
// and charges a compute-time model for it.
type ClassicalStage struct {
	Module core.ClassicalModule
	// MicrosFor models the module's compute time from the spin count;
	// nil charges the default N²·1ns quadratic model (GS's sort+pass is
	// "nearly negligible" — §4.1 — so the default lands well under a μs
	// for paper-scale problems).
	MicrosFor func(numSpins int) float64
	// Rng seeds stochastic modules; deterministic per frame sequence.
	Rng *rng.Source
}

// Name implements Stage.
func (s *ClassicalStage) Name() string {
	m := s.Module
	if m == nil {
		m = core.GreedyModule{}
	}
	return "cpu:" + m.Name()
}

// Process implements Stage.
func (s *ClassicalStage) Process(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	m := s.Module
	if m == nil {
		m = core.GreedyModule{}
	}
	r := s.Rng
	if r == nil {
		r = rng.New(0)
	}
	init, err := m.Initialize(pl.Instance.Reduction, r.Split(uint64(f.Seq)))
	if err != nil {
		return 0, err
	}
	pl.InitialState = init
	n := pl.Instance.Reduction.NumSpins()
	if s.MicrosFor != nil {
		return s.MicrosFor(n), nil
	}
	return float64(n*n) * 1e-3, nil
}

// QuantumStage reverse-anneals each frame from its classical candidate
// and charges the device service time.
type QuantumStage struct {
	// Sp, Tp, NumReads configure the RA program (defaults 0.45, 1, 50).
	Sp, Tp   float64
	NumReads int
	Config   core.AnnealConfig
	// Lease, when set, routes every frame through a prepared device
	// session instead of re-validating and re-compiling per call — the
	// fleet serving path. The lease's schedule and device settings take
	// the place of Sp/Tp/Config; results are bit-identical to the
	// unleased stage when both describe the same device.
	Lease *annealer.Lease
	// ProgrammingMicros and ReadoutMicros model per-call and per-read
	// device overheads added to the pure anneal time. The paper's Figure 2
	// pipelining is exactly about hiding these behind the classical
	// stage; defaults are 0 (fully amortized) — set them to
	// 2000Q-realistic values (10⁴, 123) to see today's integration cost.
	ProgrammingMicros float64
	ReadoutMicros     float64
	Rng               *rng.Source
}

// Name implements Stage.
func (s *QuantumStage) Name() string { return "qpu:ra" }

// Process implements Stage.
func (s *QuantumStage) Process(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	if pl.InitialState == nil {
		return 0, fmt.Errorf("frame %d reached the quantum stage without a classical candidate", f.Seq)
	}
	sp, tp, reads := s.Sp, s.Tp, s.NumReads
	if sp == 0 {
		sp = 0.45
	}
	if tp == 0 {
		tp = 1
	}
	if reads <= 0 {
		reads = 50
	}
	r := s.Rng
	if r == nil {
		r = rng.New(1)
	}
	// Attempt 0 uses the exact per-frame stream an unretried stage would;
	// re-attempts derive fresh sub-streams so a retry is not a replay of
	// the same faulted call.
	rr := r.Split(uint64(f.Seq))
	if f.Attempt > 0 {
		rr = rr.Split(uint64(f.Attempt))
	}
	if s.Lease != nil {
		return s.processLeased(f, pl, reads, rr)
	}
	h := &core.Hybrid{
		Classical: core.FixedModule{State: pl.InitialState},
		Sp:        sp, Tp: tp, NumReads: reads,
		Config: s.Config,
	}
	out, err := h.Solve(pl.Instance.Reduction, rr)
	if err != nil {
		// A failed call still occupied the device for its programming
		// cycle; charge that so retry accounting reflects real time lost.
		return s.ProgrammingMicros, err
	}
	pl.Symbols = out.Symbols
	pl.BestEnergy = out.Best.Energy
	pl.SymbolErrors = mimo.SymbolErrors(out.Symbols, pl.Instance.Transmitted)
	pl.Source = out.Source
	pl.Degraded = out.Source.Degraded()
	service := s.ProgrammingMicros + float64(reads)*(out.ScheduleDuration+s.ReadoutMicros)
	return service, nil
}

// processLeased is the prepared-session path: the lease already holds the
// validated schedule and compiled sweep program, so per-frame cost is the
// anneal itself. The RNG stream ("quantum" under the per-frame split) and
// the best-of contest against the classical candidate match Hybrid.Solve
// exactly, so a leased stage is bit-identical to the unleased one.
func (s *QuantumStage) processLeased(f *Frame, pl *DetectionPayload, reads int, rr *rng.Source) (float64, error) {
	red := pl.Instance.Reduction
	if len(pl.InitialState) != red.NumSpins() {
		return 0, fmt.Errorf("pipeline: frame %d candidate has %d spins for %d-spin problem",
			f.Seq, len(pl.InitialState), red.NumSpins())
	}
	res, err := s.Lease.Run(red.Ising, pl.InitialState, reads, rr.SplitString("quantum"))
	if err != nil {
		return s.ProgrammingMicros, err
	}
	best, source := res.Best, core.AnswerQuantum
	if initE := red.Ising.Energy(pl.InitialState); initE < best.Energy {
		best = qubo.Sample{Spins: append([]int8(nil), pl.InitialState...), Energy: initE}
		source = core.AnswerClassicalCandidate
	}
	pl.Symbols = red.DecodeSpins(best.Spins)
	pl.BestEnergy = best.Energy
	pl.SymbolErrors = mimo.SymbolErrors(pl.Symbols, pl.Instance.Transmitted)
	pl.Source = source
	pl.Degraded = source.Degraded()
	service := s.ProgrammingMicros + float64(reads)*(res.ScheduleDuration+s.ReadoutMicros)
	return service, nil
}

// ClassicalFallback answers a frame whose quantum stage could not complete
// with the classical candidate the classical stage already computed — the
// availability guarantee of the hybrid structure: the GS answer is always
// on hand, so a QPU outage degrades quality, never completeness.
type ClassicalFallback struct {
	// MicrosFor models the decode cost from the spin count; nil charges
	// a linear N·1ns model (decoding a ready candidate is nearly free).
	MicrosFor func(numSpins int) float64
}

// Name implements Fallback.
func (c *ClassicalFallback) Name() string { return "cpu:classical-fallback" }

// Recover implements Fallback.
func (c *ClassicalFallback) Recover(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	if pl.InitialState == nil {
		return 0, fmt.Errorf("frame %d has no classical candidate to fall back to", f.Seq)
	}
	red := pl.Instance.Reduction
	pl.Symbols = red.DecodeSpins(pl.InitialState)
	pl.BestEnergy = red.Ising.Energy(pl.InitialState)
	pl.SymbolErrors = mimo.SymbolErrors(pl.Symbols, pl.Instance.Transmitted)
	pl.Source = core.AnswerClassicalFallback
	pl.Degraded = true
	n := red.NumSpins()
	if c.MicrosFor != nil {
		return c.MicrosFor(n), nil
	}
	return float64(n) * 1e-3, nil
}

// validateFrameTiming rejects degenerate arrival parameters before they
// poison a simulation: NaN/Inf intervals or deadlines silently collapse
// every frame onto t=0 (or push them past any deadline), and negative
// values invert the arrival order.
func validateFrameTiming(intervalName string, intervalMicros float64, requirePositive bool, deadlineMicros float64) error {
	if math.IsNaN(intervalMicros) || math.IsInf(intervalMicros, 0) {
		return fmt.Errorf("pipeline: %s must be finite, got %v", intervalName, intervalMicros)
	}
	if requirePositive && intervalMicros <= 0 {
		return fmt.Errorf("pipeline: %s must be positive, got %v", intervalName, intervalMicros)
	}
	if !requirePositive && intervalMicros < 0 {
		return fmt.Errorf("pipeline: %s must be non-negative, got %v", intervalName, intervalMicros)
	}
	if math.IsNaN(deadlineMicros) || math.IsInf(deadlineMicros, 0) {
		return fmt.Errorf("pipeline: deadline must be finite, got %v", deadlineMicros)
	}
	if deadlineMicros < 0 {
		return fmt.Errorf("pipeline: deadline must be non-negative, got %v (0 disables the deadline)", deadlineMicros)
	}
	return nil
}

// GenerateFrames turns an instance corpus into a periodic frame arrival
// process: frame i arrives at i·interval μs with the given ARQ deadline.
// Interval 0 (all frames arrive together — a full backlog) and deadline 0
// (no deadline) are valid; negative or non-finite values are errors.
func GenerateFrames(insts []*instance.Instance, intervalMicros, deadlineMicros float64) ([]*Frame, error) {
	if err := validateFrameTiming("interval", intervalMicros, false, deadlineMicros); err != nil {
		return nil, err
	}
	frames := make([]*Frame, len(insts))
	for i, inst := range insts {
		frames[i] = &Frame{
			Seq:      i,
			Arrival:  float64(i) * intervalMicros,
			Deadline: deadlineMicros,
			Payload:  &DetectionPayload{Instance: inst},
		}
	}
	return frames, nil
}

// RecordDetectionOutcomes publishes each detection frame's answer source
// (quantum / classical-candidate / classical-fallback) and fallback
// reason to reg — the runtime fallback-share exposition that PR 1's
// degradation ladder previously only surfaced in post-hoc tables. Frames
// whose payload is not a DetectionPayload are skipped.
func RecordDetectionOutcomes(reg *telemetry.Registry, frames []*Frame) {
	if reg == nil {
		return
	}
	for _, f := range frames {
		pl, ok := f.Payload.(*DetectionPayload)
		if !ok {
			continue
		}
		reg.Counter("pipeline_answer_source_total",
			telemetry.Label{Key: "source", Value: pl.Source.String()}).Inc()
		if f.Stats.FellBack && f.Stats.FallbackReason != "" {
			reg.Counter("pipeline_fallback_reason_total",
				telemetry.Label{Key: "reason", Value: f.Stats.FallbackReason}).Inc()
		}
	}
}

// QuantumServiceTime exposes the stage's service model for capacity
// planning: the μs one frame occupies the QPU.
func (s *QuantumStage) QuantumServiceTime() (float64, error) {
	sp, tp, reads := s.Sp, s.Tp, s.NumReads
	if sp == 0 {
		sp = 0.45
	}
	if tp == 0 {
		tp = 1
	}
	if reads <= 0 {
		reads = 50
	}
	sc, err := annealer.Reverse(sp, tp)
	if err != nil {
		return 0, err
	}
	return s.ProgrammingMicros + float64(reads)*(sc.Duration()+s.ReadoutMicros), nil
}

// GenerateFramesPoisson turns an instance corpus into a Poisson arrival
// process with the given mean inter-arrival time — the bursty-traffic
// counterpart of GenerateFrames for stress-testing deadline behaviour
// under Challenge 3. The mean must be strictly positive and finite (an
// exponential with mean ≤ 0 is not a distribution); deadline 0 disables
// the deadline.
func GenerateFramesPoisson(insts []*instance.Instance, meanIntervalMicros, deadlineMicros float64, r *rng.Source) ([]*Frame, error) {
	if err := validateFrameTiming("mean interval", meanIntervalMicros, true, deadlineMicros); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("pipeline: Poisson arrivals need an RNG source")
	}
	frames := make([]*Frame, len(insts))
	t := 0.0
	for i, inst := range insts {
		if i > 0 {
			// Exponential inter-arrival via inverse CDF.
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			t += -meanIntervalMicros * math.Log(u)
		}
		frames[i] = &Frame{
			Seq:      i,
			Arrival:  t,
			Deadline: deadlineMicros,
			Payload:  &DetectionPayload{Instance: inst},
		}
	}
	return frames, nil
}
