package pipeline

import (
	"fmt"
	"math"

	"repro/internal/annealer"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/mimo"
	"repro/internal/rng"
)

// DetectionPayload is the data a channel use carries through the
// classical→quantum detection pipeline.
type DetectionPayload struct {
	Instance *instance.Instance
	// InitialState is produced by the classical stage.
	InitialState []int8
	// Symbols and BestEnergy are produced by the quantum stage.
	Symbols    []complex128
	BestEnergy float64
	// SymbolErrors compares against the transmitted truth.
	SymbolErrors int
}

// ClassicalStage runs the hybrid design's classical module on each frame
// and charges a compute-time model for it.
type ClassicalStage struct {
	Module core.ClassicalModule
	// MicrosFor models the module's compute time from the spin count;
	// nil charges the default N²·1ns quadratic model (GS's sort+pass is
	// "nearly negligible" — §4.1 — so the default lands well under a μs
	// for paper-scale problems).
	MicrosFor func(numSpins int) float64
	// Rng seeds stochastic modules; deterministic per frame sequence.
	Rng *rng.Source
}

// Name implements Stage.
func (s *ClassicalStage) Name() string {
	m := s.Module
	if m == nil {
		m = core.GreedyModule{}
	}
	return "cpu:" + m.Name()
}

// Process implements Stage.
func (s *ClassicalStage) Process(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	m := s.Module
	if m == nil {
		m = core.GreedyModule{}
	}
	r := s.Rng
	if r == nil {
		r = rng.New(0)
	}
	init, err := m.Initialize(pl.Instance.Reduction, r.Split(uint64(f.Seq)))
	if err != nil {
		return 0, err
	}
	pl.InitialState = init
	n := pl.Instance.Reduction.NumSpins()
	if s.MicrosFor != nil {
		return s.MicrosFor(n), nil
	}
	return float64(n*n) * 1e-3, nil
}

// QuantumStage reverse-anneals each frame from its classical candidate
// and charges the device service time.
type QuantumStage struct {
	// Sp, Tp, NumReads configure the RA program (defaults 0.45, 1, 50).
	Sp, Tp   float64
	NumReads int
	Config   core.AnnealConfig
	// ProgrammingMicros and ReadoutMicros model per-call and per-read
	// device overheads added to the pure anneal time. The paper's Figure 2
	// pipelining is exactly about hiding these behind the classical
	// stage; defaults are 0 (fully amortized) — set them to
	// 2000Q-realistic values (10⁴, 123) to see today's integration cost.
	ProgrammingMicros float64
	ReadoutMicros     float64
	Rng               *rng.Source
}

// Name implements Stage.
func (s *QuantumStage) Name() string { return "qpu:ra" }

// Process implements Stage.
func (s *QuantumStage) Process(f *Frame) (float64, error) {
	pl, ok := f.Payload.(*DetectionPayload)
	if !ok {
		return 0, fmt.Errorf("frame payload is %T, want *DetectionPayload", f.Payload)
	}
	if pl.InitialState == nil {
		return 0, fmt.Errorf("frame %d reached the quantum stage without a classical candidate", f.Seq)
	}
	sp, tp, reads := s.Sp, s.Tp, s.NumReads
	if sp == 0 {
		sp = 0.45
	}
	if tp == 0 {
		tp = 1
	}
	if reads <= 0 {
		reads = 50
	}
	r := s.Rng
	if r == nil {
		r = rng.New(1)
	}
	h := &core.Hybrid{
		Classical: core.FixedModule{State: pl.InitialState},
		Sp:        sp, Tp: tp, NumReads: reads,
		Config: s.Config,
	}
	out, err := h.Solve(pl.Instance.Reduction, r.Split(uint64(f.Seq)))
	if err != nil {
		return 0, err
	}
	pl.Symbols = out.Symbols
	pl.BestEnergy = out.Best.Energy
	pl.SymbolErrors = mimo.SymbolErrors(out.Symbols, pl.Instance.Transmitted)
	service := s.ProgrammingMicros + float64(reads)*(out.ScheduleDuration+s.ReadoutMicros)
	return service, nil
}

// GenerateFrames turns an instance corpus into a periodic frame arrival
// process: frame i arrives at i·interval μs with the given ARQ deadline.
func GenerateFrames(insts []*instance.Instance, intervalMicros, deadlineMicros float64) []*Frame {
	frames := make([]*Frame, len(insts))
	for i, inst := range insts {
		frames[i] = &Frame{
			Seq:      i,
			Arrival:  float64(i) * intervalMicros,
			Deadline: deadlineMicros,
			Payload:  &DetectionPayload{Instance: inst},
		}
	}
	return frames
}

// QuantumServiceTime exposes the stage's service model for capacity
// planning: the μs one frame occupies the QPU.
func (s *QuantumStage) QuantumServiceTime() (float64, error) {
	sp, tp, reads := s.Sp, s.Tp, s.NumReads
	if sp == 0 {
		sp = 0.45
	}
	if tp == 0 {
		tp = 1
	}
	if reads <= 0 {
		reads = 50
	}
	sc, err := annealer.Reverse(sp, tp)
	if err != nil {
		return 0, err
	}
	return s.ProgrammingMicros + float64(reads)*(sc.Duration()+s.ReadoutMicros), nil
}

// GenerateFramesPoisson turns an instance corpus into a Poisson arrival
// process with the given mean inter-arrival time — the bursty-traffic
// counterpart of GenerateFrames for stress-testing deadline behaviour
// under Challenge 3.
func GenerateFramesPoisson(insts []*instance.Instance, meanIntervalMicros, deadlineMicros float64, r *rng.Source) []*Frame {
	frames := make([]*Frame, len(insts))
	t := 0.0
	for i, inst := range insts {
		if i > 0 {
			// Exponential inter-arrival via inverse CDF.
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			t += -meanIntervalMicros * math.Log(u)
		}
		frames[i] = &Frame{
			Seq:      i,
			Arrival:  t,
			Deadline: deadlineMicros,
			Payload:  &DetectionPayload{Instance: inst},
		}
	}
	return frames
}
