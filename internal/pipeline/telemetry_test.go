package pipeline

// Pins for the pipeline's telemetry emission: tracing must not change
// the report (observation-only), stage spans must mirror the schedule
// recurrence exactly, and the counters must add up to the report's
// robustness accounting.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestTracedScheduleIdenticalReport(t *testing.T) {
	run := func(tr *telemetry.Tracer, reg *telemetry.Registry) *Report {
		p := &Pipeline{Stages: []Stage{
			&fixedStage{name: "cpu", micros: 3},
			&fixedStage{name: "qpu", micros: 7},
		}, Trace: tr, Metrics: reg}
		frames := simpleFrames(20, 2, 50)
		out, err := p.Run(frames)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Schedule(out)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(nil, nil)
	traced := run(telemetry.NewTracer(), telemetry.NewRegistry())
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("tracing changed the report")
	}
}

func TestStageSpansMatchSchedule(t *testing.T) {
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	p := &Pipeline{Stages: []Stage{
		&fixedStage{name: "cpu", micros: 4},
		&fixedStage{name: "qpu", micros: 9},
	}, Trace: tr, Metrics: reg}
	const n = 12
	frames := simpleFrames(n, 1, 5) // tight deadline: most frames miss
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}

	// Index spans by (name, frame) and compare to the recurrence.
	type key struct {
		name  string
		frame int
	}
	spans := map[key]telemetry.Record{}
	misses := 0
	for _, r := range tr.Records() {
		switch {
		case strings.HasPrefix(r.Name, "stage/"):
			spans[key{r.Name, r.Attrs["frame"].(int)}] = r
		case r.Name == "deadline-miss":
			misses++
		}
	}
	if len(spans) != 2*n {
		t.Fatalf("got %d stage spans, want %d", len(spans), 2*n)
	}
	for i, ft := range rep.Frames {
		for st, name := range rep.StageNames {
			r, ok := spans[key{"stage/" + name, ft.Seq}]
			if !ok {
				t.Fatalf("no span for stage %s frame %d", name, ft.Seq)
			}
			if r.T0 != ft.Start[st] || r.T1 != ft.Finish[st] {
				t.Fatalf("frame %d stage %s span [%v,%v] != schedule [%v,%v]",
					i, name, r.T0, r.T1, ft.Start[st], ft.Finish[st])
			}
		}
	}
	wantMisses := int(rep.DeadlineMissRate * float64(n))
	if misses != wantMisses {
		t.Fatalf("%d deadline-miss events, report says %d", misses, wantMisses)
	}
	if reg.Counter("pipeline_frames_total").Value() != n {
		t.Fatal("frame counter wrong")
	}
	if reg.Counter("pipeline_deadline_misses_total").Value() != float64(wantMisses) {
		t.Fatal("miss counter wrong")
	}
	if reg.Gauge("pipeline_throughput_fps").Value() != rep.ThroughputPerSecond {
		t.Fatal("throughput gauge wrong")
	}
	for st, name := range rep.StageNames {
		g := reg.Gauge("pipeline_stage_utilization", telemetry.Label{Key: "stage", Value: name})
		if g.Value() != rep.Utilization[st] {
			t.Fatalf("stage %s utilization gauge %v != %v", name, g.Value(), rep.Utilization[st])
		}
	}
}

func TestRetryEventsAndCounters(t *testing.T) {
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	fb := &stubFallback{micros: 1}
	p := &Pipeline{Stages: []Stage{&Retry{
		Stage:         &flakyStage{micros: 2, failuresFor: map[int]int{0: 1, 2: 5}},
		MaxAttempts:   3,
		BackoffMicros: 4,
		Fallback:      fb,
		Trace:         tr,
	}}, Trace: tr, Metrics: reg}
	frames := simpleFrames(4, 1, 0)
	out, err := p.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Schedule(out)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0 recovers on its 2nd attempt; frame 2 exhausts 3 attempts and
	// falls back; frames 1 and 3 pass clean.
	names := map[string]int{}
	for _, r := range tr.Records() {
		names[r.Name]++
	}
	if names["retry/attempt"] != 3 { // frame 0: 1 retry, frame 2: 2 retries
		t.Fatalf("retry/attempt events %d, want 3 (trace: %v)", names["retry/attempt"], names)
	}
	if names["retry/fault"] != 4 { // frame 0: 1 fault, frame 2: 3 faults
		t.Fatalf("retry/fault events %d, want 4", names["retry/fault"])
	}
	if names["retry/fallback"] != 1 {
		t.Fatalf("retry/fallback events %d, want 1", names["retry/fallback"])
	}
	if got := reg.Counter("pipeline_retries_total").Value(); got != float64(rep.Retries) {
		t.Fatalf("retries counter %v != report %d", got, rep.Retries)
	}
	if got := reg.Counter("pipeline_fallbacks_total").Value(); got != float64(rep.Fallbacks) {
		t.Fatalf("fallbacks counter %v != report %d", got, rep.Fallbacks)
	}
	if got := reg.Counter("pipeline_backoff_micros_total").Value(); got != rep.BackoffMicros {
		t.Fatalf("backoff counter %v != report %v", got, rep.BackoffMicros)
	}
}
