// Package chimera models the D-Wave 2000Q's qubit-connectivity graph (the
// Chimera topology) and the minor embedding that maps fully-connected
// Ising problems — which MIMO detection reductions are — onto it.
//
// A Chimera graph C_m is an m×m grid of unit cells; each cell is a
// complete bipartite K_{4,4} over four "vertical" (side 0) and four
// "horizontal" (side 1) qubits. Vertical qubits couple to the same unit in
// the cells directly above and below; horizontal qubits couple along the
// row. The 2000Q is C_16: 2048 qubits, degree ≤ 6 — far short of the
// all-to-all coupling a dense QUBO needs, which is why chains of
// physically-coupled qubits must be composed into single logical
// variables (embedding.go).
package chimera

import "fmt"

// CellUnits is the number of qubits per cell side (the "4" in K_{4,4}).
const CellUnits = 4

// Graph is a Chimera topology C_m.
type Graph struct {
	M   int // grid dimension
	adj [][]int
}

// DWave2000Q returns the C_16 graph of the paper's hardware platform
// (2048 qubits).
func DWave2000Q() *Graph { return NewGraph(16) }

// NewGraph builds C_m.
func NewGraph(m int) *Graph {
	if m <= 0 {
		panic("chimera: non-positive grid dimension")
	}
	g := &Graph{M: m, adj: make([][]int, 8*m*m)}
	for row := 0; row < m; row++ {
		for col := 0; col < m; col++ {
			// Intra-cell K_{4,4}: every vertical to every horizontal.
			for kv := 0; kv < CellUnits; kv++ {
				v := g.QubitID(row, col, 0, kv)
				for kh := 0; kh < CellUnits; kh++ {
					g.addEdge(v, g.QubitID(row, col, 1, kh))
				}
			}
			// Inter-cell vertical couplers (to the cell below).
			if row+1 < m {
				for k := 0; k < CellUnits; k++ {
					g.addEdge(g.QubitID(row, col, 0, k), g.QubitID(row+1, col, 0, k))
				}
			}
			// Inter-cell horizontal couplers (to the cell to the right).
			if col+1 < m {
				for k := 0; k < CellUnits; k++ {
					g.addEdge(g.QubitID(row, col, 1, k), g.QubitID(row, col+1, 1, k))
				}
			}
		}
	}
	return g
}

func (g *Graph) addEdge(a, b int) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// NumQubits returns 8·m².
func (g *Graph) NumQubits() int { return 8 * g.M * g.M }

// NumCouplers returns the number of physical couplers.
func (g *Graph) NumCouplers() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// QubitID maps (row, col, side, unit) to a physical qubit index. side 0 is
// vertical, side 1 horizontal; unit ∈ [0, 4).
func (g *Graph) QubitID(row, col, side, unit int) int {
	if row < 0 || row >= g.M || col < 0 || col >= g.M || side < 0 || side > 1 || unit < 0 || unit >= CellUnits {
		panic(fmt.Sprintf("chimera: bad qubit coordinate (%d,%d,%d,%d)", row, col, side, unit))
	}
	return ((row*g.M+col)*2+side)*CellUnits + unit
}

// Coord inverts QubitID.
func (g *Graph) Coord(id int) (row, col, side, unit int) {
	unit = id % CellUnits
	id /= CellUnits
	side = id % 2
	id /= 2
	col = id % g.M
	row = id / g.M
	return
}

// Neighbors returns the physical neighbours of a qubit.
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// HasEdge reports whether qubits a and b share a physical coupler.
func (g *Graph) HasEdge(a, b int) bool {
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Degree returns the coupler count of a qubit (≤ 6 on Chimera).
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }
