package chimera

import (
	"fmt"

	"repro/internal/qubo"
)

// This file implements the triangle clique embedding that maps a fully-
// connected (K_N) Ising problem onto Chimera, the construction used in
// practice for dense problems on the 2000Q (cf. QuAMax [29] and the
// D-Wave clique embedder): logical variable i = 4·g + k owns an L-shaped
// chain of physical qubits — the vertical unit k of every cell in column
// g from row g downward, plus the horizontal unit k of every cell in row
// g from column g leftward to column 0 — giving uniform chains of m+1
// qubits and supporting N ≤ 4·m logical variables on C_m (64 on the
// 2000Q's C_16).
//
// The two chain segments meet (and are physically coupled) in the
// diagonal cell (g, g); chains of groups g_i < g_j intersect in cell
// (g_j, g_i), where chain i's vertical qubit couples to chain j's
// horizontal qubit; same-group chains intersect in their shared diagonal
// cell. Every logical pair therefore has at least one physical coupler.

// Embedding maps logical variables to chains of physical qubits.
type Embedding struct {
	Graph  *Graph
	Chains [][]int // Chains[i] = physical qubit ids of logical variable i
	// chainOf[q] = logical variable owning physical qubit q, or −1.
	chainOf []int
}

// MaxCliqueSize returns the largest all-to-all problem C_m supports under
// the triangle embedding.
func MaxCliqueSize(m int) int { return 4 * m }

// MinGridFor returns the smallest m with MaxCliqueSize(m) ≥ n.
func MinGridFor(n int) int {
	m := (n + 3) / 4
	if m < 1 {
		m = 1
	}
	return m
}

// EmbedClique builds the triangle clique embedding of K_n on g.
func EmbedClique(g *Graph, n int) (*Embedding, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chimera: cannot embed %d variables", n)
	}
	if n > MaxCliqueSize(g.M) {
		return nil, fmt.Errorf("chimera: K_%d exceeds C_%d clique capacity %d", n, g.M, MaxCliqueSize(g.M))
	}
	e := &Embedding{Graph: g, Chains: make([][]int, n), chainOf: make([]int, g.NumQubits())}
	for i := range e.chainOf {
		e.chainOf[i] = -1
	}
	for i := 0; i < n; i++ {
		grp, unit := i/CellUnits, i%CellUnits
		var chain []int
		// Vertical segment: column grp, rows grp..M−1, side 0.
		for row := grp; row < g.M; row++ {
			chain = append(chain, g.QubitID(row, grp, 0, unit))
		}
		// Horizontal segment: row grp, columns grp..0, side 1.
		for col := grp; col >= 0; col-- {
			chain = append(chain, g.QubitID(grp, col, 1, unit))
		}
		e.Chains[i] = chain
		for _, q := range chain {
			if e.chainOf[q] != -1 {
				return nil, fmt.Errorf("chimera: qubit %d claimed by chains %d and %d", q, e.chainOf[q], i)
			}
			e.chainOf[q] = i
		}
	}
	return e, nil
}

// ChainOf returns the logical variable owning physical qubit q, or −1.
func (e *Embedding) ChainOf(q int) int { return e.chainOf[q] }

// N returns the number of logical variables.
func (e *Embedding) N() int { return len(e.Chains) }

// interChainCouplers returns the physical couplers joining chains i and j.
func (e *Embedding) interChainCouplers(i, j int) [][2]int {
	var out [][2]int
	for _, q := range e.Chains[i] {
		for _, n := range e.Graph.Neighbors(q) {
			if e.chainOf[n] == j {
				out = append(out, [2]int{q, n})
			}
		}
	}
	return out
}

// intraChainCouplers returns the physical couplers internal to chain i.
func (e *Embedding) intraChainCouplers(i int) [][2]int {
	var out [][2]int
	for _, q := range e.Chains[i] {
		for _, n := range e.Graph.Neighbors(q) {
			if n > q && e.chainOf[n] == i {
				out = append(out, [2]int{q, n})
			}
		}
	}
	return out
}

// EmbedIsing maps a logical Ising problem onto the physical graph:
// logical fields are split equally across each chain's qubits, logical
// couplings are split equally across the available inter-chain couplers,
// and every intra-chain coupler gets the ferromagnetic chain coupling
// −chainStrength that ties the chain's qubits together. The returned
// problem ranges over all NumQubits() physical qubits (unused qubits have
// zero terms). The logical Offset carries over; the chain-coupling energy
// floor (−chainStrength per intra-chain coupler when chains are intact)
// is compensated in the offset so an unbroken physical state's energy
// equals its logical energy.
func (e *Embedding) EmbedIsing(logical *qubo.Ising, chainStrength float64) (*qubo.Ising, error) {
	if logical.N != e.N() {
		return nil, fmt.Errorf("chimera: embedding has %d chains, problem has %d variables", e.N(), logical.N)
	}
	if chainStrength < 0 {
		return nil, fmt.Errorf("chimera: negative chain strength")
	}
	phys := qubo.NewIsing(e.Graph.NumQubits())
	phys.Offset = logical.Offset
	for i, h := range logical.H {
		if h == 0 {
			continue
		}
		per := h / float64(len(e.Chains[i]))
		for _, q := range e.Chains[i] {
			phys.H[q] += per
		}
	}
	for _, edge := range logical.Edges() {
		couplers := e.interChainCouplers(edge.I, edge.J)
		if len(couplers) == 0 {
			return nil, fmt.Errorf("chimera: no physical coupler between chains %d and %d", edge.I, edge.J)
		}
		per := edge.V / float64(len(couplers))
		for _, c := range couplers {
			phys.AddCoupling(c[0], c[1], per)
		}
	}
	for i := range e.Chains {
		for _, c := range e.intraChainCouplers(i) {
			phys.AddCoupling(c[0], c[1], -chainStrength)
			// An intact chain contributes −chainStrength per coupler;
			// compensate so intact physical energies match logical ones.
			phys.Offset += chainStrength
		}
	}
	return phys, nil
}

// Unembed recovers a logical spin configuration from a physical one by
// majority vote over each chain (ties break to +1), also reporting how
// many chains were broken (not unanimous).
func (e *Embedding) Unembed(physSpins []int8) (logical []int8, brokenChains int) {
	logical = make([]int8, e.N())
	return logical, e.UnembedInto(logical, physSpins)
}

// UnembedInto is Unembed writing into a caller-provided logical buffer of
// length N(), for hot paths that unembed every read without allocating.
// It returns the broken-chain count.
func (e *Embedding) UnembedInto(logical []int8, physSpins []int8) (brokenChains int) {
	if len(physSpins) != e.Graph.NumQubits() {
		panic("chimera: Unembed with wrong-length physical state")
	}
	if len(logical) != e.N() {
		panic("chimera: UnembedInto with wrong-length logical buffer")
	}
	for i, chain := range e.Chains {
		sum := 0
		for _, q := range chain {
			sum += int(physSpins[q])
		}
		if sum >= 0 {
			logical[i] = 1
		} else {
			logical[i] = -1
		}
		if sum != len(chain) && sum != -len(chain) {
			brokenChains++
		}
	}
	return brokenChains
}

// EmbedSpins maps a logical spin configuration to the physical qubits
// (every chain qubit takes its variable's value; unused qubits get +1).
// This is how a classical candidate solution is loaded as a reverse-
// annealing initial state on embedded hardware.
func (e *Embedding) EmbedSpins(logical []int8) []int8 {
	if len(logical) != e.N() {
		panic("chimera: EmbedSpins with wrong-length logical state")
	}
	phys := make([]int8, e.Graph.NumQubits())
	for i := range phys {
		phys[i] = 1
	}
	for i, chain := range e.Chains {
		for _, q := range chain {
			phys[q] = logical[i]
		}
	}
	return phys
}

// RecommendedChainStrength returns a chain strength that dominates the
// logical problem's couplings — the common √(max |J|·deg) style heuristic
// reduced to a simple safety factor over the largest coefficient, which
// is what practitioners tune around on the 2000Q.
func RecommendedChainStrength(logical *qubo.Ising) float64 {
	m := logical.MaxAbsCoeff()
	if m == 0 {
		return 1
	}
	return 1.5 * m
}
