package chimera

import (
	"math"
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

func TestGraphSizes(t *testing.T) {
	g := NewGraph(2)
	if g.NumQubits() != 32 {
		t.Fatalf("C_2 has %d qubits", g.NumQubits())
	}
	// C_m couplers: m²·16 intra + 2·m·(m−1)·4 inter.
	want := 2*2*16 + 2*2*1*4
	if g.NumCouplers() != want {
		t.Fatalf("C_2 has %d couplers, want %d", g.NumCouplers(), want)
	}
	dw := DWave2000Q()
	if dw.NumQubits() != 2048 {
		t.Fatalf("2000Q model has %d qubits", dw.NumQubits())
	}
	if dw.M != 16 {
		t.Fatal("2000Q is not C_16")
	}
}

func TestQubitIDCoordRoundTrip(t *testing.T) {
	g := NewGraph(4)
	for id := 0; id < g.NumQubits(); id++ {
		r, c, s, u := g.Coord(id)
		if g.QubitID(r, c, s, u) != id {
			t.Fatalf("coord round trip failed at %d", id)
		}
	}
}

func TestQubitIDPanicsOutOfRange(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad coordinate accepted")
		}
	}()
	g.QubitID(2, 0, 0, 0)
}

func TestDegreeBounds(t *testing.T) {
	g := NewGraph(16)
	for id := 0; id < g.NumQubits(); id++ {
		d := g.Degree(id)
		if d < 4 || d > 6 {
			t.Fatalf("qubit %d has degree %d (Chimera degree is 4..6)", id, d)
		}
	}
}

func TestIntraCellK44(t *testing.T) {
	g := NewGraph(3)
	for kv := 0; kv < 4; kv++ {
		for kh := 0; kh < 4; kh++ {
			if !g.HasEdge(g.QubitID(1, 1, 0, kv), g.QubitID(1, 1, 1, kh)) {
				t.Fatalf("missing intra-cell edge v%d-h%d", kv, kh)
			}
		}
	}
	// No vertical-vertical edges within a cell.
	if g.HasEdge(g.QubitID(1, 1, 0, 0), g.QubitID(1, 1, 0, 1)) {
		t.Fatal("spurious vertical-vertical intra-cell edge")
	}
}

func TestInterCellCouplers(t *testing.T) {
	g := NewGraph(3)
	// Vertical unit k couples down the column.
	if !g.HasEdge(g.QubitID(0, 1, 0, 2), g.QubitID(1, 1, 0, 2)) {
		t.Fatal("missing vertical inter-cell edge")
	}
	// Horizontal unit k couples along the row.
	if !g.HasEdge(g.QubitID(1, 0, 1, 3), g.QubitID(1, 1, 1, 3)) {
		t.Fatal("missing horizontal inter-cell edge")
	}
	// No diagonal coupling.
	if g.HasEdge(g.QubitID(0, 0, 0, 0), g.QubitID(1, 1, 0, 0)) {
		t.Fatal("spurious diagonal edge")
	}
	// Vertical qubits do not couple along rows.
	if g.HasEdge(g.QubitID(1, 0, 0, 0), g.QubitID(1, 1, 0, 0)) {
		t.Fatal("vertical qubits coupled along a row")
	}
}

func TestEmbedCliqueChainsValid(t *testing.T) {
	g := NewGraph(4)
	for _, n := range []int{1, 4, 7, 16} {
		e, err := EmbedClique(g, n)
		if err != nil {
			t.Fatal(err)
		}
		if e.N() != n {
			t.Fatalf("embedding has %d chains", e.N())
		}
		// Chains are disjoint, uniform length m+1, and connected.
		seen := map[int]bool{}
		for i, chain := range e.Chains {
			if len(chain) != g.M+1 {
				t.Fatalf("chain %d has length %d, want %d", i, len(chain), g.M+1)
			}
			for _, q := range chain {
				if seen[q] {
					t.Fatalf("qubit %d in two chains", q)
				}
				seen[q] = true
				if e.ChainOf(q) != i {
					t.Fatalf("chainOf(%d) = %d, want %d", q, e.ChainOf(q), i)
				}
			}
			if !chainConnected(g, chain) {
				t.Fatalf("chain %d is not connected in the hardware graph", i)
			}
		}
	}
}

func chainConnected(g *Graph, chain []int) bool {
	if len(chain) == 0 {
		return false
	}
	in := map[int]bool{}
	for _, q := range chain {
		in[q] = true
	}
	visited := map[int]bool{chain[0]: true}
	stack := []int{chain[0]}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range g.Neighbors(q) {
			if in[n] && !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(visited) == len(chain)
}

// TestEmbedCliqueAllPairsCoupled: the defining property of a clique
// embedding — every pair of chains shares at least one physical coupler.
func TestEmbedCliqueAllPairsCoupled(t *testing.T) {
	g := NewGraph(4)
	e, err := EmbedClique(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.N(); i++ {
		for j := i + 1; j < e.N(); j++ {
			if len(e.interChainCouplers(i, j)) == 0 {
				t.Fatalf("chains %d and %d share no coupler", i, j)
			}
		}
	}
}

func TestEmbedCliqueCapacity(t *testing.T) {
	g := NewGraph(2)
	if _, err := EmbedClique(g, 9); err == nil {
		t.Fatal("overcapacity clique accepted")
	}
	if _, err := EmbedClique(g, 0); err == nil {
		t.Fatal("empty clique accepted")
	}
	if MaxCliqueSize(16) != 64 {
		t.Fatal("2000Q clique capacity wrong")
	}
	if MinGridFor(36) != 9 || MinGridFor(1) != 1 || MinGridFor(64) != 16 {
		t.Fatal("MinGridFor wrong")
	}
}

// TestEmbedIsingEnergyEquivalence: for intact (unbroken) chain states, the
// physical energy equals the logical energy exactly.
func TestEmbedIsingEnergyEquivalence(t *testing.T) {
	r := rng.New(1)
	g := NewGraph(3)
	n := 10
	logical := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		logical.H[i] = r.NormFloat64()
		for j := i + 1; j < n; j++ {
			logical.SetCoupling(i, j, r.NormFloat64())
		}
	}
	logical.Offset = 0.7
	e, err := EmbedClique(g, n)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := e.EmbedIsing(logical, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		spins := make([]int8, n)
		for i := range spins {
			spins[i] = r.Spin()
		}
		physSpins := e.EmbedSpins(spins)
		le := logical.Energy(spins)
		pe := phys.Energy(physSpins)
		if math.Abs(le-pe) > 1e-9 {
			t.Fatalf("intact-chain energy mismatch: logical %v vs physical %v", le, pe)
		}
	}
}

// TestUnembedMajorityVote: intact chains recover exactly; a broken chain
// resolves by majority and is counted.
func TestUnembedMajorityVote(t *testing.T) {
	g := NewGraph(3)
	e, err := EmbedClique(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	logical := []int8{1, -1, 1, -1, 1}
	phys := e.EmbedSpins(logical)
	got, broken := e.Unembed(phys)
	if broken != 0 {
		t.Fatalf("intact state reported %d broken chains", broken)
	}
	for i := range logical {
		if got[i] != logical[i] {
			t.Fatal("unembed lost the logical state")
		}
	}
	// Flip one qubit of chain 2 (chains have 4 qubits on C_3; majority
	// stays with the original value).
	phys[e.Chains[2][0]] = -phys[e.Chains[2][0]]
	got, broken = e.Unembed(phys)
	if broken != 1 {
		t.Fatalf("broken chains = %d, want 1", broken)
	}
	if got[2] != 1 {
		t.Fatal("majority vote failed")
	}
}

func TestEmbedIsingValidation(t *testing.T) {
	g := NewGraph(2)
	e, _ := EmbedClique(g, 4)
	if _, err := e.EmbedIsing(qubo.NewIsing(5), 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := e.EmbedIsing(qubo.NewIsing(4), -1); err == nil {
		t.Fatal("negative chain strength accepted")
	}
}

// TestEmbeddedGroundStateMatchesLogical: with a sufficiently strong chain
// coupling, the physical ground state restricted to chains is the logical
// ground state (verified exhaustively on a tiny problem).
func TestEmbeddedGroundStateMatchesLogical(t *testing.T) {
	r := rng.New(2)
	g := NewGraph(1) // 8 qubits
	n := 3
	logical := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		logical.H[i] = r.NormFloat64()
		for j := i + 1; j < n; j++ {
			logical.SetCoupling(i, j, r.NormFloat64())
		}
	}
	e, err := EmbedClique(g, n)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := e.EmbedIsing(logical, RecommendedChainStrength(logical)+2)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict the physical problem to the used qubits for exhaustive
	// search: chains on C_1 are 2 qubits each, 6 used + 2 idle = 8 total.
	pg, err := qubo.ExhaustiveIsing(phys)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := qubo.ExhaustiveIsing(logical)
	if err != nil {
		t.Fatal(err)
	}
	got, broken := e.Unembed(pg.Spins)
	if broken != 0 {
		t.Fatal("physical ground state has broken chains despite strong coupling")
	}
	if math.Abs(logical.Energy(got)-lg.Energy) > 1e-9 {
		t.Fatalf("embedded ground state decodes to energy %v, logical ground %v", logical.Energy(got), lg.Energy)
	}
	// Physical ground energy equals logical ground energy (offset
	// compensation): idle qubits have zero terms.
	if math.Abs(pg.Energy-lg.Energy) > 1e-9 {
		t.Fatalf("physical ground energy %v, logical %v", pg.Energy, lg.Energy)
	}
}

func TestRecommendedChainStrength(t *testing.T) {
	is := qubo.NewIsing(2)
	if RecommendedChainStrength(is) != 1 {
		t.Fatal("zero problem default wrong")
	}
	is.SetCoupling(0, 1, -4)
	if RecommendedChainStrength(is) != 6 {
		t.Fatalf("got %v", RecommendedChainStrength(is))
	}
}

func TestEmbedSpinsLengthPanics(t *testing.T) {
	g := NewGraph(2)
	e, _ := EmbedClique(g, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad length accepted")
		}
	}()
	e.EmbedSpins(make([]int8, 3))
}
