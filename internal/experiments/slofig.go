package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cran"
	"repro/internal/fleet"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// CRANSLOResult is the C-RAN SLO monitoring figure: the capacity sweep's
// 2× overload point re-served with an slo.Monitor tapping the trace, so
// the committed output shows the full observability surface — per-shard
// SLIs, the burn-rate alert timeline, device health, utilization, and
// critical paths — on a workload that actually stresses the tier.
type CRANSLOResult struct {
	Shards   int           `json:"shards"`
	Cells    int           `json:"cells"`
	Frames   int           `json:"frames"`
	Snapshot *slo.Snapshot `json:"snapshot"`
}

// RunCRANSLO serves one overloaded C-RAN workload (2× the tier's
// estimated drain capacity, deadlines and admission backpressure on —
// the same operating point as RunCRAN's 2× capacity row) with a live SLO
// monitor attached, and returns the monitoring snapshot. The run is
// fully deterministic in cfg.Seed, so the rendered dashboard is
// golden-able.
func RunCRANSLO(cfg Config, shards, cells int, placement cran.Placement) (*CRANSLOResult, error) {
	cfg = cfg.withDefaults()
	if shards <= 0 {
		shards = 2
	}
	if cells <= 0 {
		cells = 24
	}
	streams := cells * cranUEsPerCell
	capacityFPS := float64(shards*cranDevicesPerShard) * cranPerDeviceFPS

	const deadline = 50_000.0
	reqs, err := cranCity(cfg, cells, 2*capacityFPS/float64(streams), deadline)
	if err != nil {
		return nil, err
	}

	tracer := telemetry.NewTracer()
	monitor := slo.NewMonitor(slo.Config{Specs: slo.DefaultSpecs(deadline)})
	tracer.AddSink(monitor)

	if _, err := cran.Serve(context.Background(), cran.Config{
		Shards:    cranPools(shards),
		Placement: placement,
		Fleet: fleet.Config{
			BatchMax:         4,
			StreamQueueBound: 16,
		},
		AdmitQueueMicros: 25_000,
		EstReadMicros:    700,
		Seed:             cfg.Seed,
		Trace:            tracer,
		Metrics:          cfg.Metrics,
	}, reqs); err != nil {
		return nil, err
	}
	snap, err := monitor.Finish()
	if err != nil {
		return nil, err
	}
	return &CRANSLOResult{Shards: shards, Cells: cells, Frames: len(reqs), Snapshot: snap}, nil
}

// WriteTable renders the monitoring dashboard.
func (r *CRANSLOResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# C-RAN SLO monitor: %d shards × %d QPUs, %d cells, %d frames at 2x capacity\n",
		r.Shards, cranDevicesPerShard, r.Cells, r.Frames)
	r.Snapshot.WriteDashboard(w)
}
