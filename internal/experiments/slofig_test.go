package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cran"
	"repro/internal/slo"
)

// TestCRANSLOMonitoring gates the observability figure: serving the 2×
// overload point with the monitor attached must yield per-shard SLIs, a
// non-empty burn-rate alert timeline (an overloaded tier sheds, and shed
// frames burn the availability and shed budgets), scored devices, and
// queue-dominated critical paths.
func TestCRANSLOMonitoring(t *testing.T) {
	res, err := RunCRANSLO(Quick(), 2, 24, cran.PlacementHash)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot
	if len(snap.Shards) < 2 {
		t.Fatalf("per-shard SLIs missing: %+v", snap.Shards)
	}
	if snap.Tier.Served == 0 || snap.Tier.Shed == 0 {
		t.Fatalf("2x overload point did not stress the tier: %+v", snap.Tier)
	}
	fired := false
	for _, tr := range snap.Alerts {
		if tr.To == slo.StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("no SLO fired under 2x overload: %+v", snap.Alerts)
	}
	if len(snap.Devices) != res.Shards*cranDevicesPerShard {
		t.Fatalf("scored %d devices, want %d", len(snap.Devices), res.Shards*cranDevicesPerShard)
	}
	if len(snap.Frames) != snap.Tier.Served {
		t.Fatalf("%d critical paths for %d served frames", len(snap.Frames), snap.Tier.Served)
	}

	var buf bytes.Buffer
	res.WriteTable(&buf)
	for _, want := range []string{"service levels", "alerts", "critical path", "device health"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("dashboard missing %q:\n%s", want, buf.String())
		}
	}
}
