package experiments

import (
	"fmt"
	"io"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// CapacityRow is one QPU-pool size's modelled service quality under a
// fixed Poisson arrival process.
type CapacityRow struct {
	QPUs                int
	DeadlineMissRate    float64
	MeanLatencyMicros   float64
	P95LatencyMicros    float64
	QPUUtilization      float64
	ThroughputPerSecond float64
}

// CapacityResult is the Challenge-3 capacity-planning study: how many
// quantum processing units a base station needs for a given channel-use
// arrival rate and ARQ deadline — the "assign those units to staged
// processing units" question, answered with the pipeline model's
// replicated-stage scheduling.
type CapacityResult struct {
	Rows           []CapacityRow
	Frames         int
	MeanArrival    float64
	DeadlineMicros float64
	ServiceMicros  float64
}

// RunCapacity sweeps the QPU pool size for a bursty (Poisson) stream of
// channel uses whose quantum service time exceeds the mean inter-arrival
// time — so a single QPU saturates and the deadline miss rate reveals
// the required pool size.
func RunCapacity(cfg Config) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	const (
		users          = 4
		frames         = 40
		meanArrival    = 60.0  // μs between channel uses
		deadlineMicros = 800.0 // ARQ budget
		reads          = 60    // quantum stage reads → ~126 μs service
	)
	insts, err := instance.Corpus(instance.Spec{Users: users, Scheme: modulation.QAM16},
		cfg.Seed^0xCAFE, frames)
	if err != nil {
		return nil, err
	}
	res := &CapacityResult{Frames: frames, MeanArrival: meanArrival, DeadlineMicros: deadlineMicros}
	for _, qpus := range []int{1, 2, 3, 4} {
		stages := []pipeline.Stage{
			&pipeline.ClassicalStage{Rng: rng.New(cfg.Seed ^ 3)},
			&pipeline.QuantumStage{
				NumReads: reads,
				Config:   cfg.annealConfig(),
				Rng:      rng.New(cfg.Seed ^ 4),
			},
		}
		p := &pipeline.Pipeline{Stages: stages, Replicas: []int{1, qpus},
			Trace: cfg.Trace, Metrics: cfg.Metrics}
		fr, err := pipeline.GenerateFramesPoisson(insts, meanArrival, deadlineMicros,
			rng.New(cfg.Seed^0xA881)) // same arrival draw for every pool size
		if err != nil {
			return nil, err
		}
		processed, err := p.Run(fr)
		if err != nil {
			return nil, err
		}
		rep, err := p.Schedule(processed)
		if err != nil {
			return nil, err
		}
		if res.ServiceMicros == 0 {
			res.ServiceMicros = processed[0].ServiceTimes[1]
		}
		res.Rows = append(res.Rows, CapacityRow{
			QPUs:                qpus,
			DeadlineMissRate:    rep.DeadlineMissRate,
			MeanLatencyMicros:   rep.MeanLatency,
			P95LatencyMicros:    rep.P95Latency,
			QPUUtilization:      rep.Utilization[1],
			ThroughputPerSecond: rep.ThroughputPerSecond,
		})
	}
	return res, nil
}

// WriteTable renders the study.
func (r *CapacityResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Capacity planning: QPU pool size vs deadline misses (%d frames, %.0f μs mean arrival, %.0f μs QPU service, %.0f μs deadline)\n",
		r.Frames, r.MeanArrival, r.ServiceMicros, r.DeadlineMicros)
	writeRow(w, "qpus", "miss_rate", "mean_lat", "p95_lat", "qpu_util", "thru_fps")
	for _, row := range r.Rows {
		writeRow(w, row.QPUs, row.DeadlineMissRate, row.MeanLatencyMicros,
			row.P95LatencyMicros, row.QPUUtilization, row.ThroughputPerSecond)
	}
}
