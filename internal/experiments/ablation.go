package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/annealer"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

// This file implements the ablation studies DESIGN.md calls out: the
// paper's §5 proposal of application-specific classical modules, and the
// simulator's own design choices (dynamics engine, energy-scale profile,
// end-of-anneal quench, Chimera embedding).

// ModuleAblationRow scores one classical module as the hybrid's
// initializer on a corpus of instances.
type ModuleAblationRow struct {
	Module string
	// MeanDeltaEIS is the mean candidate quality the module delivers.
	MeanDeltaEIS float64
	// GroundRate is the fraction of instances where the module alone
	// already finds the optimum.
	GroundRate float64
	// HybridPStar is the mean per-read RA success probability when the
	// module initializes the anneal.
	HybridPStar float64
	// SolveRate is the fraction of instances the full hybrid decodes to
	// the ML optimum (best sample or candidate).
	SolveRate float64
}

// ModuleAblation is the §5 study: GS vs linear vs tree-search vs SA
// initializers feeding the same RA quantum module.
type ModuleAblation struct {
	Rows      []ModuleAblationRow
	Users     int
	Scheme    modulation.Scheme
	Instances int
}

// RunModuleAblation compares classical modules on a NOISY 16-QAM corpus
// (14 dB receive SNR): with AWGN the linear detectors no longer recover
// the ML optimum for free, so candidate quality genuinely varies across
// modules, as §5 anticipates.
func RunModuleAblation(cfg Config) (*ModuleAblation, error) {
	cfg = cfg.withDefaults()
	const users = 6
	insts, err := instance.Corpus(instance.Spec{
		Users: users, Scheme: modulation.QAM16,
		NoiseVariance: channel.NoiseVarianceForSNR(14, users),
	}, cfg.Seed^0xAB1, cfg.Instances)
	if err != nil {
		return nil, err
	}
	modules := []core.ClassicalModule{
		core.GreedyModule{},
		core.DetectorModule{Detector: mimo.ZeroForcing{}},
		core.DetectorModule{Detector: mimo.KBest{K: 8}},
		core.DetectorModule{Detector: mimo.FCSD{FullExpansion: 2}},
		core.SAModule{Opts: qubo.SAOptions{Sweeps: 200}},
		core.RandomModule{},
	}
	root := cfg.root().SplitString("ablation/module")
	res := &ModuleAblation{Users: users, Scheme: modulation.QAM16, Instances: cfg.Instances}
	for mi, m := range modules {
		row := ModuleAblationRow{Module: m.Name()}
		for ii, in := range insts {
			r := root.Split(uint64(mi*1000 + ii))
			init, err := m.Initialize(in.Reduction, r.SplitString("classical"))
			if err != nil {
				return nil, err
			}
			d := metrics.DeltaEForIsing(in.Reduction.Ising,
				in.Reduction.Ising.Energy(init), in.GroundEnergy)
			row.MeanDeltaEIS += d
			if d <= 1e-9 {
				row.GroundRate++
			}
			h := &core.Hybrid{
				Classical: core.FixedModule{State: init},
				NumReads:  cfg.Reads,
				Config:    cfg.annealConfig(),
			}
			out, err := h.Solve(in.Reduction, r.SplitString("hybrid"))
			if err != nil {
				return nil, err
			}
			row.HybridPStar += metrics.SuccessProbability(out.Samples, in.GroundEnergy, 1e-6)
			if out.Best.Energy <= in.GroundEnergy+1e-6 {
				row.SolveRate++
			}
		}
		n := float64(len(insts))
		row.MeanDeltaEIS /= n
		row.GroundRate /= n
		row.HybridPStar /= n
		row.SolveRate /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the module ablation.
func (r *ModuleAblation) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Ablation: classical modules feeding RA (%d-user %s, %d instances)\n",
		r.Users, r.Scheme, r.Instances)
	writeRow(w, "module", "dE_IS%", "gnd_rate", "ra_p", "solve_rate")
	for _, row := range r.Rows {
		writeRow(w, row.Module, row.MeanDeltaEIS, row.GroundRate, row.HybridPStar, row.SolveRate)
	}
}

// RowFor fetches one module's row.
func (r *ModuleAblation) RowFor(name string) (ModuleAblationRow, bool) {
	for _, row := range r.Rows {
		if row.Module == name {
			return row, true
		}
	}
	return ModuleAblationRow{}, false
}

// DeviceAblationRow scores one simulator configuration on the Figure 8
// mechanism set.
type DeviceAblationRow struct {
	Variant string
	// RetentionHighSp is RA(ground init) p★ at s_p = 0.93 (freeze-out).
	RetentionHighSp float64
	// RepairMidSp is RA(imperfect init) p★ at its best mid s_p.
	RepairMidSp float64
	// FAPStar is forward annealing's best p★ over the grid.
	FAPStar float64
	// BrokenChainRate reports chain breakage for embedded variants.
	BrokenChainRate float64
}

// DeviceAblation compares simulator design choices.
type DeviceAblation struct {
	Rows  []DeviceAblationRow
	Users int
}

// RunDeviceAblation evaluates engine, profile, quench, and embedding
// choices against the three mechanisms the reproduction rests on:
// high-s_p retention, mid-s_p repair, and a diabatic FA baseline.
func RunDeviceAblation(cfg Config) (*DeviceAblation, error) {
	cfg = cfg.withDefaults()
	const users = 6
	in, err := instance.Synthesize(instance.Spec{Users: users, Scheme: modulation.QAM16, Seed: cfg.Seed ^ 0xDE7})
	if err != nil {
		return nil, err
	}
	is := in.Reduction.Ising
	root := cfg.root().SplitString("ablation/device")

	physical := annealer.DWave2000QProfile()
	linear := annealer.LinearProfile()
	type variant struct {
		name     string
		mutate   func(*annealer.Params)
		embedded bool
	}
	variants := []variant{
		{name: "calibrated", mutate: func(*annealer.Params) {}},
		{name: "svmc-tf", mutate: func(p *annealer.Params) { p.Engine = annealer.SVMC{TFMoves: true} }},
		{name: "pimc", mutate: func(p *annealer.Params) { p.Engine = annealer.PIMC{Slices: 12} }},
		{name: "physical-temp", mutate: func(p *annealer.Params) { p.Profile = &physical }},
		{name: "linear-profile", mutate: func(p *annealer.Params) { p.Profile = &linear }},
		{name: "no-quench", mutate: func(p *annealer.Params) { p.NoQuench = true }},
		{name: "ice-noise", mutate: func(p *annealer.Params) { p.ICE = annealer.DWave2000QICE() }},
		{name: "embedded", mutate: func(*annealer.Params) {}, embedded: true},
	}

	// Imperfect candidate for the repair probe.
	imperfect, _ := stateAtQuality(is, in.GroundSpins, in.GroundEnergy, 4, root.SplitString("imperfect"))

	res := &DeviceAblation{Users: users}
	qpu := annealer.NewQPU2000Q()
	for vi, v := range variants {
		row := DeviceAblationRow{Variant: v.name}
		r := root.Split(uint64(vi))
		run := func(sc *annealer.Schedule, init []int8, key string) (*annealer.Result, error) {
			p := cfg.annealParams(sc, init, cfg.Reads)
			v.mutate(&p)
			if v.embedded {
				return qpu.Run(is, p, r.SplitString(key))
			}
			return annealer.Run(is, p, r.SplitString(key))
		}
		// Retention: RA from ground at high s_p.
		ra93, err := annealer.Reverse(0.93, 1)
		if err != nil {
			return nil, err
		}
		out, err := run(ra93, in.GroundSpins, "retention")
		if err != nil {
			return nil, err
		}
		row.RetentionHighSp = metrics.SuccessProbability(out.Samples, in.GroundEnergy, 1e-6)
		// Repair: RA from the imperfect candidate, best of mid s_p.
		for _, sp := range []float64{0.37, 0.45, 0.53, 0.61} {
			ra, err := annealer.Reverse(sp, 1)
			if err != nil {
				return nil, err
			}
			out, err = run(ra, imperfect, fmt.Sprintf("repair/%0.2f", sp))
			if err != nil {
				return nil, err
			}
			if p := metrics.SuccessProbability(out.Samples, in.GroundEnergy, 1e-6); p > row.RepairMidSp {
				row.RepairMidSp = p
			}
		}
		// FA baseline: best over a small s_p grid.
		for _, sp := range []float64{0.29, 0.41, 0.61, 0.85} {
			fa, err := annealer.Forward(1, sp, 1)
			if err != nil {
				return nil, err
			}
			out, err = run(fa, nil, fmt.Sprintf("fa/%0.2f", sp))
			if err != nil {
				return nil, err
			}
			if p := metrics.SuccessProbability(out.Samples, in.GroundEnergy, 1e-6); p > row.FAPStar {
				row.FAPStar = p
			}
			// Chain breakage is most visible when chains must form from
			// scratch: record the worst FA run's rate.
			if out.BrokenChainRate > row.BrokenChainRate {
				row.BrokenChainRate = out.BrokenChainRate
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the device ablation.
func (r *DeviceAblation) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Ablation: simulator design choices (%d-user 16-QAM)\n", r.Users)
	writeRow(w, "variant", "retain@.93", "repair_mid", "fa_best", "broken")
	for _, row := range r.Rows {
		writeRow(w, row.Variant, row.RetentionHighSp, row.RepairMidSp, row.FAPStar, row.BrokenChainRate)
	}
}

// RowFor fetches one variant's row.
func (r *DeviceAblation) RowFor(name string) (DeviceAblationRow, bool) {
	for _, row := range r.Rows {
		if row.Variant == name {
			return row, true
		}
	}
	return DeviceAblationRow{}, false
}

// GreedyOrderAblation resolves the paper's §4.1 prose ambiguity
// empirically: candidate quality of ascending vs descending greedy bit
// ordering over a corpus.
type GreedyOrderAblation struct {
	Instances                 int
	MeanDeltaEISDescending    float64
	MeanDeltaEISAscending     float64
	DescendingWinsOrTiesCount int
}

// RunGreedyOrderAblation measures both GS orderings.
func RunGreedyOrderAblation(cfg Config) (*GreedyOrderAblation, error) {
	cfg = cfg.withDefaults()
	insts, err := instance.Corpus(instance.Spec{Users: 8, Scheme: modulation.QAM16},
		cfg.Seed^0x69D, cfg.Instances*4)
	if err != nil {
		return nil, err
	}
	res := &GreedyOrderAblation{Instances: len(insts)}
	for _, in := range insts {
		is := in.Reduction.Ising
		desc := qubo.GreedySearchIsing(is, qubo.OrderDescending)
		asc := qubo.GreedySearchIsing(is, qubo.OrderAscending)
		dd := metrics.DeltaEForIsing(is, is.Energy(desc), in.GroundEnergy)
		da := metrics.DeltaEForIsing(is, is.Energy(asc), in.GroundEnergy)
		res.MeanDeltaEISDescending += dd
		res.MeanDeltaEISAscending += da
		if dd <= da+1e-9 {
			res.DescendingWinsOrTiesCount++
		}
	}
	n := float64(len(insts))
	res.MeanDeltaEISDescending /= n
	res.MeanDeltaEISAscending /= n
	return res, nil
}

// WriteTable renders the greedy-order ablation.
func (r *GreedyOrderAblation) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Ablation: greedy-search bit ordering (%d instances, 8-user 16-QAM)\n", r.Instances)
	writeRow(w, "order", "mean_dE_IS%")
	writeRow(w, "descending", r.MeanDeltaEISDescending)
	writeRow(w, "ascending", r.MeanDeltaEISAscending)
	frac := float64(r.DescendingWinsOrTiesCount) / math.Max(1, float64(r.Instances))
	fmt.Fprintf(w, "descending wins or ties on %.0f%% of instances\n", 100*frac)
}
