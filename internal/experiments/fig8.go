package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Fig8Solver labels the curves of Figure 8.
type Fig8Solver string

// Figure 8's compared solvers. The paper's yellow band is a family of RA
// curves, one per initial-state quality ΔE_IS% (its δ = 0.2% grid is
// coarsened here to a handful of representative qualities); the red
// dashed reference is RA from the exact ground state; RA-GS is the
// hybrid prototype's own greedy-search candidate.
const (
	Fig8FA       Fig8Solver = "FA"
	Fig8FROracle Fig8Solver = "FR-oracle"
	Fig8RAGround Fig8Solver = "RA-dE0"
	Fig8RAGS     Fig8Solver = "RA-GS"
)

// fig8FamilyTargets are the representative ΔE_IS% qualities of the RA
// family (the paper sweeps 0 < ΔE_IS% < 10).
var fig8FamilyTargets = []float64{1, 3, 5, 8}

// Fig8FamilySolver names the RA curve for one ΔE_IS target.
func Fig8FamilySolver(target float64) Fig8Solver {
	return Fig8Solver(fmt.Sprintf("RA-dE%g", target))
}

// Fig8Point is one (solver, s_p) measurement.
type Fig8Point struct {
	Solver   Fig8Solver `json:"solver"`
	Sp       float64    `json:"sp"`
	PStar    float64    `json:"p_star"`
	TTS      float64    `json:"tts"`      // μs at C_t = 99%
	Duration float64    `json:"duration"` // one read's schedule μs
	// DeltaEIS is the RA initial state's actual quality (NaN for FA/FR).
	DeltaEIS float64 `json:"delta_e_is"`
	// Successes of Reads is the success count behind PStar — the point's
	// sample vector (per-read Bernoulli indicators) for confidence
	// intervals. For FR-oracle points the counts are the winning c_p's.
	Successes int `json:"successes"`
	Reads     int `json:"reads"`
}

// MarshalJSON implements json.Marshaler: TTS and DeltaEIS may be
// non-finite (never-succeeded, no-initial-state), which plain JSON
// numbers cannot carry.
func (p Fig8Point) MarshalJSON() ([]byte, error) {
	type wire Fig8Point
	return json.Marshal(struct {
		wire
		TTS      jsonFloat `json:"tts"`
		DeltaEIS jsonFloat `json:"delta_e_is"`
	}{wire: wire(p), TTS: jsonFloat(p.TTS), DeltaEIS: jsonFloat(p.DeltaEIS)})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (p *Fig8Point) UnmarshalJSON(b []byte) error {
	type wire Fig8Point
	var w struct {
		wire
		TTS      jsonFloat `json:"tts"`
		DeltaEIS jsonFloat `json:"delta_e_is"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = Fig8Point(w.wire)
	p.TTS, p.DeltaEIS = float64(w.TTS), float64(w.DeltaEIS)
	return nil
}

// Fig8Result is the full sweep on the paper's 8-user 16-QAM instance.
type Fig8Result struct {
	Points []Fig8Point       `json:"points"`
	Users  int               `json:"users"`
	Scheme modulation.Scheme `json:"scheme"`
	// Confidence is the TTS target C_t%.
	Confidence float64 `json:"confidence"`
	// GSDeltaE is the greedy candidate's ΔE_IS%.
	GSDeltaE float64 `json:"gs_delta_e"`
}

// Figure8 sweeps the switch/pause location s_p ∈ {0.25 … 0.97 step 0.04}
// for FA, FR (oracle c_p: best of an exhaustive c_p grid per s_p), RA
// from the ground state, RA from candidate states of representative
// qualities ΔE_IS% ∈ {1, 3, 5, 8} (the paper's yellow family), and RA
// from the hybrid's greedy-search candidate — reporting p★ and TTS(99%)
// per point, Figure 8's axes.
func Figure8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	const users = 8
	in, err := instance.Synthesize(instance.Spec{Users: users, Scheme: modulation.QAM16, Seed: cfg.Seed ^ 0x88})
	if err != nil {
		return nil, err
	}
	is := in.Reduction.Ising
	root := cfg.root().SplitString("fig8")
	res := &Fig8Result{Users: users, Scheme: modulation.QAM16, Confidence: 99}
	tol := 1e-6

	gsState := qubo.GreedySearchIsing(is, qubo.OrderDescending)
	res.GSDeltaE = metrics.DeltaEForIsing(is, is.Energy(gsState), in.GroundEnergy)

	// One candidate state per family target quality.
	family := make(map[float64][]int8)
	familyD := make(map[float64]float64)
	for _, target := range fig8FamilyTargets {
		st, d := stateAtQuality(is, in.GroundSpins, in.GroundEnergy, target, root.SplitString(fmt.Sprintf("family/%g", target)))
		family[target] = st
		familyD[target] = d
	}

	// run draws one batch and returns (p★, successes, surviving reads).
	run := func(sc *annealer.Schedule, init []int8, r *rng.Source) (float64, int, int, error) {
		out, err := annealer.Run(is, cfg.annealParams(sc, init, cfg.Reads), r)
		if err != nil {
			return 0, 0, 0, err
		}
		hits := 0
		for _, s := range out.Samples {
			if s.Energy <= in.GroundEnergy+tol {
				hits++
			}
		}
		return metrics.SuccessProbability(out.Samples, in.GroundEnergy, tol), hits, len(out.Samples), nil
	}

	for i, sp := range spGrid() {
		r := root.Split(uint64(i))
		// FA with pause at sp.
		fa, err := annealer.Forward(1, sp, 1)
		if err != nil {
			return nil, err
		}
		p, hits, reads, err := run(fa, nil, r.SplitString("fa"))
		if err != nil {
			return nil, err
		}
		res.add(Fig8FA, sp, p, fa.Duration(), math.NaN(), hits, reads)

		// FR with oracle cp: best success over a cp grid above sp.
		bestP, bestDur := 0.0, 0.0
		bestHits, bestReads := 0, 0
		for _, cp := range cpGrid(sp) {
			fr, err := annealer.ForwardReverse(cp, sp, 1, 1)
			if err != nil {
				return nil, err
			}
			pp, hh, rr, err := run(fr, nil, r.SplitString(fmt.Sprintf("fr/%0.2f", cp)))
			if err != nil {
				return nil, err
			}
			if pp > bestP || bestDur == 0 {
				bestP, bestDur = pp, fr.Duration()
				bestHits, bestReads = hh, rr
			}
		}
		res.add(Fig8FROracle, sp, bestP, bestDur, math.NaN(), bestHits, bestReads)

		// RA from the exact ground state (red dashed reference).
		ra, err := annealer.Reverse(sp, 1)
		if err != nil {
			return nil, err
		}
		p, hits, reads, err = run(ra, in.GroundSpins, r.SplitString("ra0"))
		if err != nil {
			return nil, err
		}
		res.add(Fig8RAGround, sp, p, ra.Duration(), 0, hits, reads)

		// RA family: one curve per candidate quality.
		for _, target := range fig8FamilyTargets {
			p, hits, reads, err = run(ra, family[target], r.SplitString(fmt.Sprintf("ra/%g", target)))
			if err != nil {
				return nil, err
			}
			res.add(Fig8FamilySolver(target), sp, p, ra.Duration(), familyD[target], hits, reads)
		}

		// RA from the hybrid's greedy candidate.
		p, hits, reads, err = run(ra, gsState, r.SplitString("ra-gs"))
		if err != nil {
			return nil, err
		}
		res.add(Fig8RAGS, sp, p, ra.Duration(), res.GSDeltaE, hits, reads)
	}
	return res, nil
}

func (r *Fig8Result) add(sv Fig8Solver, sp, p, dur, dIS float64, successes, reads int) {
	r.Points = append(r.Points, Fig8Point{
		Solver: sv, Sp: sp, PStar: p,
		TTS:       metrics.TTS(dur, p, r.Confidence),
		Duration:  dur,
		DeltaEIS:  dIS,
		Successes: successes,
		Reads:     reads,
	})
}

// spGrid is the paper's §4.2 sweep: 0.25–0.99 step 0.04.
func spGrid() []float64 {
	var out []float64
	for sp := 0.25; sp < 0.995; sp += 0.04 {
		out = append(out, math.Round(sp*100)/100)
	}
	return out
}

// cpGrid is the FR oracle's turn-point candidates above sp.
func cpGrid(sp float64) []float64 {
	var out []float64
	for cp := sp + 0.08; cp <= 1.0; cp += 0.08 {
		out = append(out, math.Round(cp*100)/100)
	}
	if len(out) == 0 {
		out = append(out, math.Min(1, sp+0.04))
	}
	return out
}

// CandidateAtQuality exposes the figure harnesses' candidate-state
// synthesis to the validation harness: a state whose ΔE_IS% lands as
// close as possible to target, plus the achieved quality. Deterministic
// for a fixed r stream.
func CandidateAtQuality(is *qubo.Ising, ground []int8, groundEnergy, target float64, r *rng.Source) ([]int8, float64) {
	return stateAtQuality(is, ground, groundEnergy, target, r)
}

// stateAtQuality synthesizes a candidate whose ΔE_IS% is as close as
// possible to target, by random low-cost flips from the ground state —
// the stand-in for the paper's harvest of anneal samples at each quality.
func stateAtQuality(is *qubo.Ising, ground []int8, groundEnergy, target float64, r *rng.Source) ([]int8, float64) {
	bestState := append([]int8(nil), ground...)
	bestState[0] *= -1
	bestGap := math.Inf(1)
	bestD := metrics.DeltaEForIsing(is, is.Energy(bestState), groundEnergy)
	for attempt := 0; attempt < 4000; attempt++ {
		state := append([]int8(nil), ground...)
		flips := 1 + r.Intn(6)
		for f := 0; f < flips; f++ {
			if r.Bool() {
				state[cheapestFlip(is, state, r)] *= -1
			} else {
				state[r.Intn(is.N)] *= -1
			}
		}
		d := metrics.DeltaEForIsing(is, is.Energy(state), groundEnergy)
		if d <= 0 {
			continue
		}
		if gap := math.Abs(d - target); gap < bestGap {
			bestGap, bestD, bestState = gap, d, state
			if gap < target*0.05 {
				break
			}
		}
	}
	return bestState, bestD
}

// WriteTable renders the sweep.
func (r *Fig8Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 8: p★ and TTS(%.0f%%) vs s_p, %d-user %s (GS candidate ΔE_IS%%=%.2f)\n",
		r.Confidence, r.Users, r.Scheme, r.GSDeltaE)
	writeRow(w, "solver", "sp", "p_star", "tts_us", "dur_us", "dE_IS%")
	for _, p := range r.Points {
		writeRow(w, string(p.Solver), p.Sp, p.PStar, p.TTS, p.Duration, p.DeltaEIS)
	}
}

// PointsFor filters one solver's curve.
func (r *Fig8Result) PointsFor(sv Fig8Solver) []Fig8Point {
	var out []Fig8Point
	for _, p := range r.Points {
		if p.Solver == sv {
			out = append(out, p)
		}
	}
	return out
}

// FamilyPoints returns every RA-family point (excluding the ground-state
// reference and the GS curve).
func (r *Fig8Result) FamilyPoints() []Fig8Point {
	var out []Fig8Point
	for _, p := range r.Points {
		if strings.HasPrefix(string(p.Solver), "RA-dE") && p.Solver != Fig8RAGround {
			out = append(out, p)
		}
	}
	return out
}

// SuccessWindow returns the s_p interval [lo, hi] over which the solver's
// p★ is strictly positive (the paper: RA succeeds on 0.33–0.49, FA only
// at 0.41).
func (r *Fig8Result) SuccessWindow(sv Fig8Solver) (lo, hi float64, ok bool) {
	for _, p := range r.PointsFor(sv) {
		if p.PStar > 0 {
			if !ok {
				lo, hi, ok = p.Sp, p.Sp, true
			} else {
				hi = p.Sp
			}
		}
	}
	return lo, hi, ok
}

// FamilySuccessWindow is SuccessWindow over the whole RA family.
func (r *Fig8Result) FamilySuccessWindow() (lo, hi float64, ok bool) {
	for _, p := range r.FamilyPoints() {
		if p.PStar > 0 {
			if !ok {
				lo, hi, ok = p.Sp, p.Sp, true
			} else {
				if p.Sp < lo {
					lo = p.Sp
				}
				if p.Sp > hi {
					hi = p.Sp
				}
			}
		}
	}
	return lo, hi, ok
}

// BestTTS returns the solver's minimum-TTS point.
func (r *Fig8Result) BestTTS(sv Fig8Solver) (Fig8Point, bool) {
	return bestOf(r.PointsFor(sv))
}

// BestFamilyTTS returns the minimum-TTS point across the RA family.
func (r *Fig8Result) BestFamilyTTS() (Fig8Point, bool) {
	return bestOf(r.FamilyPoints())
}

func bestOf(pts []Fig8Point) (Fig8Point, bool) {
	best := Fig8Point{TTS: math.Inf(1)}
	found := false
	for _, p := range pts {
		if p.PStar > 0 && p.TTS < best.TTS {
			best = p
			found = true
		}
	}
	return best, found
}
