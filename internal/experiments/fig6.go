package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
)

// Fig6Algorithm labels the three compared samplers of Figure 6.
type Fig6Algorithm string

// The three panels of Figure 6.
const (
	Fig6FA       Fig6Algorithm = "FA"
	Fig6RARandom Fig6Algorithm = "RA-random"
	Fig6RAGS     Fig6Algorithm = "RA-GS"
)

// Fig6Series is one (modulation, algorithm) sample distribution.
type Fig6Series struct {
	Scheme    modulation.Scheme `json:"scheme"`
	Algorithm Fig6Algorithm     `json:"algorithm"`
	// Hist is the ΔE% distribution over all anneal samples of all
	// instances (0–100%, 25 bins as plotted) — the series' sample vector
	// in binned form.
	Hist *metrics.Histogram `json:"hist"`
	// MeanDeltaE and GroundFraction summarize the distribution.
	MeanDeltaE     float64 `json:"mean_delta_e"`
	GroundFraction float64 `json:"ground_fraction"`
	// GroundHits is the success count behind GroundFraction.
	GroundHits int `json:"ground_hits"`
	Samples    int `json:"samples"`
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Series    []*Fig6Series `json:"series"`
	Variables int           `json:"variables"`
	Instances int           `json:"instances"`
	Reads     int           `json:"reads"`
}

// Figure6 reproduces the §4.3 distribution study: 36-variable decoding
// problems per modulation, solved by FA, RA from a random initial state,
// and RA from the greedy-search state (the hybrid prototype), with the
// ΔE% of every anneal sample recorded.
func Figure6(cfg Config, variables int) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	if variables <= 0 {
		variables = 36
	}
	res := &Fig6Result{Variables: variables, Instances: cfg.Instances, Reads: cfg.Reads}
	root := cfg.root()
	for _, s := range modulation.Schemes {
		users, err := instance.VariableBudgetUsers(s, variables)
		if err != nil {
			return nil, err
		}
		insts, err := instance.Corpus(instance.Spec{Users: users, Scheme: s},
			cfg.Seed^uint64(1000+int(s)), cfg.Instances)
		if err != nil {
			return nil, err
		}
		series := map[Fig6Algorithm]*Fig6Series{}
		for _, alg := range []Fig6Algorithm{Fig6FA, Fig6RARandom, Fig6RAGS} {
			series[alg] = &Fig6Series{
				Scheme: s, Algorithm: alg,
				Hist: metrics.NewHistogram(0, 100, 25),
			}
		}
		for ii, in := range insts {
			r := root.SplitString(fmt.Sprintf("fig6/%s/%d", s, ii))
			outs := map[Fig6Algorithm]*core.Outcome{}
			fa := &core.ForwardSolver{NumReads: cfg.Reads, Config: cfg.annealConfig()}
			out, err := fa.Solve(in.Reduction, r.SplitString("fa"))
			if err != nil {
				return nil, err
			}
			outs[Fig6FA] = out
			raRand := &core.Hybrid{Classical: core.RandomModule{}, NumReads: cfg.Reads, Config: cfg.annealConfig()}
			out, err = raRand.Solve(in.Reduction, r.SplitString("ra-random"))
			if err != nil {
				return nil, err
			}
			outs[Fig6RARandom] = out
			raGS := &core.Hybrid{NumReads: cfg.Reads, Config: cfg.annealConfig()}
			out, err = raGS.Solve(in.Reduction, r.SplitString("ra-gs"))
			if err != nil {
				return nil, err
			}
			outs[Fig6RAGS] = out

			for alg, o := range outs {
				sr := series[alg]
				for _, sample := range o.Samples {
					d := metrics.DeltaEForIsing(in.Reduction.Ising, sample.Energy, in.GroundEnergy)
					sr.Hist.Add(d)
					sr.MeanDeltaE += d
					if d <= 1e-6 {
						sr.GroundHits++
					}
					sr.Samples++
				}
			}
		}
		for _, alg := range []Fig6Algorithm{Fig6FA, Fig6RARandom, Fig6RAGS} {
			sr := series[alg]
			if sr.Samples > 0 {
				sr.MeanDeltaE /= float64(sr.Samples)
				sr.GroundFraction = float64(sr.GroundHits) / float64(sr.Samples)
			}
			res.Series = append(res.Series, sr)
		}
	}
	return res, nil
}

// WriteTable renders the distributions and their summaries.
func (r *Fig6Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 6: ΔE%% distribution over %d-variable instances (%d instances × %d reads)\n",
		r.Variables, r.Instances, r.Reads)
	writeRow(w, "scheme", "algorithm", "mean_dE%", "p(dE=0)")
	for _, sr := range r.Series {
		writeRow(w, sr.Scheme.String(), string(sr.Algorithm), sr.MeanDeltaE, sr.GroundFraction)
	}
	fmt.Fprintln(w, "\n# per-bin fractions (bin_center fraction), series in order above:")
	for _, sr := range r.Series {
		fmt.Fprintf(w, "## %s %s\n%s", sr.Scheme, sr.Algorithm, sr.Hist.String())
	}
}

// SeriesFor retrieves one (scheme, algorithm) series.
func (r *Fig6Result) SeriesFor(s modulation.Scheme, alg Fig6Algorithm) *Fig6Series {
	for _, sr := range r.Series {
		if sr.Scheme == s && sr.Algorithm == alg {
			return sr
		}
	}
	return nil
}
