package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func TestProbeGSOrder(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe")
	}
	prof := annealer.CalibratedProfile()
	for i := 0; i < 8; i++ {
		in, _ := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: uint64(4000 + i*713)})
		is := in.Reduction.Ising
		for _, order := range []qubo.GreedyOrder{qubo.OrderDescending, qubo.OrderAscending} {
			gs := qubo.GreedySearchIsing(is, order)
			gd := metrics.DeltaEForIsing(is, is.Energy(gs), in.GroundEnergy)
			ham := 0
			for k := range gs {
				if gs[k] != in.GroundSpins[k] {
					ham++
				}
			}
			// best RA p over a few sp
			bestP, bestSp := 0.0, 0.0
			for _, sp := range []float64{0.37, 0.45, 0.53, 0.61, 0.77} {
				ra, _ := annealer.Reverse(sp, 1)
				res, _ := annealer.Run(is, annealer.Params{Schedule: ra, InitialState: gs,
					NumReads: 100, Profile: &prof, SweepsPerMicrosecond: 30}, rng.New(uint64(i)*77+uint64(sp*100)+uint64(order)*13))
				p := metrics.SuccessProbability(res.Samples, in.GroundEnergy, 1e-6)
				if p > bestP {
					bestP, bestSp = p, sp
				}
			}
			fmt.Printf("inst=%d order=%d dE=%.2f ham=%2d  bestRA p=%.2f@sp=%.2f\n", i, order, gd, ham, bestP, bestSp)
		}
	}
}
