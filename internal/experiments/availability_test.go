package experiments

import (
	"strings"
	"testing"
)

func TestAvailabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		// The fallback guarantee: every frame is answered at every rate.
		if row.Completed != res.Frames || row.Errors != 0 {
			t.Fatalf("row %d: %d/%d frames answered, %d errors",
				i, row.Completed, res.Frames, row.Errors)
		}
		if row.QuantumRate+row.FallbackRate != 1 {
			t.Fatalf("row %d: quantum %v + fallback %v ≠ 1", i, row.QuantumRate, row.FallbackRate)
		}
	}
	healthy := res.Rows[0]
	if healthy.Retries != 0 || healthy.Fallbacks != 0 {
		t.Fatalf("healthy QPU recorded retries=%d fallbacks=%d", healthy.Retries, healthy.Fallbacks)
	}
	if healthy.DecodeRate < 0.5 {
		t.Fatalf("healthy decode rate %v", healthy.DecodeRate)
	}
	worst := res.Rows[len(res.Rows)-1]
	if worst.Retries == 0 || worst.Fallbacks == 0 {
		t.Fatalf("75%% failure rate recorded retries=%d fallbacks=%d", worst.Retries, worst.Fallbacks)
	}
	if worst.QuantumRate >= 1 {
		t.Fatal("heavy faults left the quantum share at 1")
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Availability under QPU soft failure") {
		t.Fatal("table render incomplete")
	}
}
