package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/rng"
)

func TestProbeFig6Sp(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe")
	}
	cfg := Config{Seed: 2020, Instances: 4, Reads: 150}.withDefaults()
	for _, s := range []modulation.Scheme{modulation.QPSK, modulation.QAM16, modulation.QAM64} {
		users, _ := instance.VariableBudgetUsers(s, 36)
		insts, _ := instance.Corpus(instance.Spec{Users: users, Scheme: s}, cfg.Seed^uint64(1000+int(s)), cfg.Instances)
		for _, sp := range []float64{0.45, 0.53, 0.61, 0.69} {
			var meanRA, meanFA, lowRA, lowFA float64
			n := 0
			for ii, in := range insts {
				r := rng.New(uint64(ii)*31 + uint64(sp*100))
				ra := &core.Hybrid{Sp: sp, NumReads: cfg.Reads, Config: cfg.annealConfig()}
				ro, err := ra.Solve(in.Reduction, r.Split(1))
				if err != nil {
					t.Fatal(err)
				}
				fa := &core.ForwardSolver{NumReads: cfg.Reads, Config: cfg.annealConfig()}
				fo, _ := fa.Solve(in.Reduction, r.Split(2))
				for _, smp := range ro.Samples {
					d := metrics.DeltaEForIsing(in.Reduction.Ising, smp.Energy, in.GroundEnergy)
					meanRA += d
					if d <= 10 {
						lowRA++
					}
					n++
				}
				for _, smp := range fo.Samples {
					d := metrics.DeltaEForIsing(in.Reduction.Ising, smp.Energy, in.GroundEnergy)
					meanFA += d
					if d <= 10 {
						lowFA++
					}
				}
			}
			fmt.Printf("%-7s sp=%.2f  RA: mean=%.2f low=%.2f   FA: mean=%.2f low=%.2f\n",
				s, sp, meanRA/float64(n), lowRA/float64(n), meanFA/float64(n), lowFA/float64(n))
		}
	}
}
