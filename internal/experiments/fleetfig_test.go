package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// TestFleetScalingSpeedup gates the acceptance criterion: on the 8-user
// 16-QAM serving workload, four devices must deliver at least 3× the
// single-device throughput, and speedup must grow monotonically with the
// pool.
func TestFleetScalingSpeedup(t *testing.T) {
	res, err := RunFleetScaling(Quick(), 4, fleet.PolicyLeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows for pools %v, want 1/2/4", res.Rows)
	}
	prev := 0.0
	for _, row := range res.Rows {
		if row.Shed != 0 {
			t.Fatalf("%d devices shed %d frames on the reference workload", row.Devices, row.Shed)
		}
		if row.ThroughputPerSecond <= prev {
			t.Fatalf("throughput not monotone: %d devices at %.1f fps after %.1f",
				row.Devices, row.ThroughputPerSecond, prev)
		}
		prev = row.ThroughputPerSecond
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Devices != 4 || last.Speedup < 3 {
		t.Fatalf("4-device speedup %.2f×, want ≥ 3×", last.Speedup)
	}

	var buf bytes.Buffer
	res.WriteTable(&buf)
	for _, want := range []string{"Fleet scaling", "devices", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}
