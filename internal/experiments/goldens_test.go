package experiments

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cran"
)

var update = flag.Bool("update", false, "rewrite the WriteTable golden files under testdata/")

// tabler is any figure result that renders itself.
type tabler interface{ WriteTable(w io.Writer) }

// tableFor adapts a harness result, forwarding its error.
func tableFor(r tabler, err error) (tabler, error) { return r, err }

// The rendered tables are part of the repo's interface — results/*.txt is
// committed and diffed across PRs — so every figure's WriteTable output
// is pinned against a golden file at the test scale. Regenerate with
//
//	go test ./internal/experiments -run TestWriteTableGoldens -update
//
// after an intentional format or model change, and review the diff.
func TestWriteTableGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure harness")
	}
	figures := []struct {
		name string
		run  func(cfg Config) (tabler, error)
	}{
		{"fig3", func(cfg Config) (tabler, error) { return tableFor(Figure3(cfg, 0)) }},
		{"fig4", func(cfg Config) (tabler, error) { return tableFor(Figure4(cfg)) }},
		{"fig6", func(cfg Config) (tabler, error) { return tableFor(Figure6(cfg, 0)) }},
		{"fig7", func(cfg Config) (tabler, error) { return tableFor(Figure7(cfg)) }},
		{"fig8", func(cfg Config) (tabler, error) { return tableFor(Figure8(cfg)) }},
		{"fleet", func(cfg Config) (tabler, error) { return tableFor(RunFleetScaling(cfg, 0, 0)) }},
		{"cran", func(cfg Config) (tabler, error) { return tableFor(RunCRAN(cfg, 0, 0, cran.PlacementHash)) }},
		{"hybrid", func(cfg Config) (tabler, error) { return tableFor(RunHybrid(cfg)) }},
		{"cran-slo", func(cfg Config) (tabler, error) { return tableFor(RunCRANSLO(cfg, 0, 0, cran.PlacementHash)) }},
		{"ensemble", func(cfg Config) (tabler, error) { return tableFor(RunEnsemble(cfg, 0, nil)) }},
		{"pipeline", func(cfg Config) (tabler, error) { return tableFor(PipelineFigure(cfg, 0)) }},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			res, err := fig.run(tiny())
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			res.WriteTable(&sb)
			got := sb.String()
			path := filepath.Join("testdata", fig.name+".golden.txt")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s table drifted from golden (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
					fig.name, got, want)
			}
		})
	}
}
