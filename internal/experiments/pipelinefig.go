package experiments

import (
	"fmt"
	"io"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// PipelineResult quantifies Figure 2's pipelining argument: processing
// successive channel uses through staged classical/quantum units versus
// running both stages serially per frame.
type PipelineResult struct {
	Frames int `json:"frames"`
	// Pipelined and Serial are the two execution disciplines' reports.
	Pipelined *pipeline.Report `json:"pipelined"`
	Serial    *pipeline.Report `json:"serial"`
	// SpeedupMakespan = serial makespan / pipelined makespan.
	SpeedupMakespan float64 `json:"speedup_makespan"`
	// DecodeRate is the fraction of frames decoded to the transmitted
	// symbols.
	DecodeRate float64 `json:"decode_rate"`
}

// PipelineFigure runs a stream of 16-QAM channel uses through the GS→RA
// pipeline twice: once pipelined (Figure 2) and once with an artificial
// single-stage serialization, and compares modelled makespans.
func PipelineFigure(cfg Config, frames int) (*PipelineResult, error) {
	cfg = cfg.withDefaults()
	if frames <= 0 {
		frames = 8
	}
	insts, err := instance.Corpus(instance.Spec{Users: 4, Scheme: modulation.QAM16},
		cfg.Seed^0x22, frames)
	if err != nil {
		return nil, err
	}
	build := func() []pipeline.Stage {
		return []pipeline.Stage{
			&pipeline.ClassicalStage{
				Rng: rng.New(cfg.Seed ^ 1),
				// Charge a classical stage comparable to the quantum one
				// so the pipeline overlap is visible (a GS-only classical
				// stage is ≈free; a K-best/FCSD module would not be).
				MicrosFor: func(n int) float64 { return 60 },
			},
			&pipeline.QuantumStage{
				NumReads: 100,
				Config:   cfg.annealConfig(),
				Rng:      rng.New(cfg.Seed ^ 2),
			},
		}
	}

	// Pipelined: both stages overlap across frames.
	pl := &pipeline.Pipeline{Stages: build(), Trace: cfg.Trace, Metrics: cfg.Metrics}
	fr, err := pipeline.GenerateFrames(insts, 0, 0)
	if err != nil {
		return nil, err
	}
	processed, err := pl.Run(fr)
	if err != nil {
		return nil, err
	}
	pipelined, err := pl.Schedule(processed)
	if err != nil {
		return nil, err
	}
	decoded := 0
	for _, f := range processed {
		if f.Err != nil {
			return nil, f.Err
		}
		if f.Payload.(*pipeline.DetectionPayload).SymbolErrors == 0 {
			decoded++
		}
	}

	// Serial: same service times, but fused into one stage so no overlap.
	serialTimes := make([]float64, len(processed))
	for i, f := range processed {
		for _, st := range f.ServiceTimes {
			serialTimes[i] += st
		}
	}
	serialStage := &replayStage{name: "serial", micros: serialTimes}
	sp := &pipeline.Pipeline{Stages: []pipeline.Stage{serialStage}}
	sfr, err := pipeline.GenerateFrames(insts, 0, 0)
	if err != nil {
		return nil, err
	}
	sprocessed, err := sp.Run(sfr)
	if err != nil {
		return nil, err
	}
	serial, err := sp.Schedule(sprocessed)
	if err != nil {
		return nil, err
	}

	res := &PipelineResult{
		Frames:     frames,
		Pipelined:  pipelined,
		Serial:     serial,
		DecodeRate: float64(decoded) / float64(frames),
	}
	if pipelined.Makespan > 0 {
		res.SpeedupMakespan = serial.Makespan / pipelined.Makespan
	}
	return res, nil
}

// replayStage charges pre-recorded per-frame service times.
type replayStage struct {
	name   string
	micros []float64
}

// Name implements pipeline.Stage.
func (s *replayStage) Name() string { return s.name }

// Process implements pipeline.Stage.
func (s *replayStage) Process(f *pipeline.Frame) (float64, error) {
	if f.Seq < 0 || f.Seq >= len(s.micros) {
		return 0, fmt.Errorf("replay stage has no time for frame %d", f.Seq)
	}
	return s.micros[f.Seq], nil
}

// WriteTable renders the comparison. Missing discipline reports (an
// empty or partially built result) render as zero rows instead of
// dereferencing nil.
func (r *PipelineResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 2: pipelined vs serial classical-quantum processing (%d channel uses)\n", r.Frames)
	writeRow(w, "discipline", "makespan_us", "thru_fps", "mean_lat_us")
	row := func(name string, rep *pipeline.Report) {
		if rep == nil {
			rep = &pipeline.Report{}
		}
		writeRow(w, name, rep.Makespan, rep.ThroughputPerSecond, rep.MeanLatency)
	}
	row("pipelined", r.Pipelined)
	row("serial", r.Serial)
	fmt.Fprintf(w, "makespan speedup: %.2fx; decode rate: %.2f\n", r.SpeedupMakespan, r.DecodeRate)
}
