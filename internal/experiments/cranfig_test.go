package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cran"
)

// TestCRANShardScaling gates the tier's acceptance criterion: on the
// city overload workload, a 4-shard tier must deliver at least 2.5× the
// single-shard throughput, with throughput monotone in shard count and
// nothing shed on the scaling sweep (shedding is disabled there — any
// shed frame means a queue-bound leak).
func TestCRANShardScaling(t *testing.T) {
	res, err := RunCRAN(Quick(), 4, 24, cran.PlacementHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 3 {
		t.Fatalf("scaling rows %+v, want shards 1/2/4", res.Scaling)
	}
	prev := 0.0
	for _, row := range res.Scaling {
		if row.Shed != 0 {
			t.Fatalf("%d shards shed %d frames with shedding disabled", row.Shards, row.Shed)
		}
		if row.ThroughputPerSecond <= prev {
			t.Fatalf("throughput not monotone: %d shards at %.1f fps after %.1f",
				row.Shards, row.ThroughputPerSecond, prev)
		}
		prev = row.ThroughputPerSecond
	}
	last := res.Scaling[len(res.Scaling)-1]
	if last.Shards != 4 || last.Speedup < 2.5 {
		t.Fatalf("4-shard speedup %.2f×, want ≥ 2.5×", last.Speedup)
	}

	// The capacity sweep must show saturation: shed rate non-decreasing
	// in offered load and strictly positive once the tier is overloaded.
	if len(res.Load) != 4 {
		t.Fatalf("load rows %+v, want 0.5/1/2/3×", res.Load)
	}
	prevShed := -1.0
	for _, row := range res.Load {
		if row.Frames == 0 || row.Served == 0 {
			t.Fatalf("load point %gx served nothing: %+v", row.Multiplier, row)
		}
		if row.ShedRate < prevShed {
			t.Fatalf("shed rate fell from %.3f to %.3f at %gx offered load",
				prevShed, row.ShedRate, row.Multiplier)
		}
		prevShed = row.ShedRate
	}
	overload := res.Load[len(res.Load)-1]
	if overload.ShedRate == 0 {
		t.Fatalf("3x offered load shed nothing: %+v", overload)
	}

	var buf bytes.Buffer
	res.WriteTable(&buf)
	for _, want := range []string{"C-RAN capacity", "Shard scaling", "x_capacity", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}
