package experiments

import (
	"fmt"
	"io"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qaoa"
	"repro/internal/qubo"
)

// QAOARow compares the two NISQ approaches of §2 on one workload size.
type QAOARow struct {
	Users  int
	Scheme modulation.Scheme
	Qubits int
	// QAOA success probabilities: depth 1 cost-optimized, depth 3
	// layerwise cost-optimized, and the depth-1 oracle (success-selected
	// angles — the best the method could achieve at p=1).
	QAOAP1, QAOAP3, QAOAP1Oracle float64
	// FA and RA-GS per-read success probabilities on the calibrated
	// annealer simulation.
	FAPStar float64
	RAPStar float64
}

// QAOAResult is the gate-model-vs-annealing extension study.
type QAOAResult struct {
	Rows      []QAOARow
	Instances int
}

// RunQAOA compares QAOA (exact statevector, the digital NISQ path) with
// the annealing simulation on detection instances small enough for exact
// simulation. The two columns are not on equal footing — QAOA here is an
// ideal noiseless device, the annealer a calibrated noisy surrogate —
// so the table reads as "what the gate-model approach could offer at
// these sizes", the §2 framing.
func RunQAOA(cfg Config) (*QAOAResult, error) {
	cfg = cfg.withDefaults()
	workloads := []struct {
		users  int
		scheme modulation.Scheme
	}{
		{2, modulation.QAM16}, // 8 qubits
		{4, modulation.QPSK},  // 8 qubits
		{3, modulation.QAM16}, // 12 qubits
		{4, modulation.QAM16}, // 16 qubits
	}
	res := &QAOAResult{Instances: cfg.Instances}
	root := cfg.root().SplitString("qaoa")
	for wi, w := range workloads {
		row := QAOARow{Users: w.users, Scheme: w.scheme, Qubits: w.users * w.scheme.BitsPerSymbol()}
		insts, err := instance.Corpus(instance.Spec{Users: w.users, Scheme: w.scheme},
			cfg.Seed^uint64(0x0A0A+wi), cfg.Instances)
		if err != nil {
			return nil, err
		}
		for ii, in := range insts {
			r := root.Split(uint64(wi*1000 + ii))
			circ, err := qaoa.Compile(in.Reduction.Ising)
			if err != nil {
				return nil, err
			}
			p1, err := circ.OptimizeGrid(10, 0)
			if err != nil {
				return nil, err
			}
			p3, err := circ.ExtendDepth(p1, 2, 8, 0)
			if err != nil {
				return nil, err
			}
			row.QAOAP1 += p1.SuccessProbability
			row.QAOAP3 += p3.SuccessProbability
			oracle, err := circ.OptimizeGridOracle(10, 0)
			if err != nil {
				return nil, err
			}
			row.QAOAP1Oracle += oracle.SuccessProbability

			fa, err := annealer.Forward(1, 0.41, 1)
			if err != nil {
				return nil, err
			}
			fres, err := annealer.Run(in.Reduction.Ising, cfg.annealParams(fa, nil, cfg.Reads), r.SplitString("fa"))
			if err != nil {
				return nil, err
			}
			row.FAPStar += metrics.SuccessProbability(fres.Samples, in.GroundEnergy, 1e-6)

			ra, err := annealer.Reverse(0.45, 1)
			if err != nil {
				return nil, err
			}
			gs := qubo.GreedySearchIsing(in.Reduction.Ising, qubo.OrderDescending)
			rres, err := annealer.Run(in.Reduction.Ising, cfg.annealParams(ra, gs, cfg.Reads), r.SplitString("ra"))
			if err != nil {
				return nil, err
			}
			row.RAPStar += metrics.SuccessProbability(rres.Samples, in.GroundEnergy, 1e-6)
		}
		n := float64(len(insts))
		row.QAOAP1 /= n
		row.QAOAP3 /= n
		row.QAOAP1Oracle /= n
		row.FAPStar /= n
		row.RAPStar /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the comparison.
func (r *QAOAResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Extension: QAOA (ideal gate model) vs annealing simulation (%d instances/row)\n", r.Instances)
	writeRow(w, "workload", "qubits", "qaoa_p1", "qaoa_p3", "p1_oracle", "fa_p", "ra_gs_p")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%du-%s", row.Users, row.Scheme)
		writeRow(w, label, row.Qubits, row.QAOAP1, row.QAOAP3, row.QAOAP1Oracle, row.FAPStar, row.RAPStar)
	}
}
