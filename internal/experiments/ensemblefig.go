package experiments

import (
	"fmt"
	"io"

	"repro/internal/channel"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/mimo"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// Ensemble figure shape: a coded 4-user 16-QAM uplink (the codeduplink
// loop) detected per channel use by the flexible-parallelism RA
// ensemble at growing arm counts, against the K=1/{0.45} anchor that is
// byte-identical to the single-RA hybrid. Success probability counts
// channel uses whose fused best reaches the exact-ML (sphere-decoder)
// energy; coded BER runs the fused LLRs through the rate-1/2 soft
// Viterbi decoder.
const (
	ensembleUsers = 4
	ensembleSNRdB = 11.0
	// ensembleInfoLen + 6 tail bits → 64 coded bits = 4 channel uses at
	// 16 coded bits per 4-user 16-QAM use.
	ensembleInfoLen = 26
)

// EnsembleVariant is one (K, s_p grid) cell of the sweep.
type EnsembleVariant struct {
	Name string
	K    int
	Grid []float64
}

// EnsembleVariants returns the sweep cells: the single-RA anchor, grid
// widening at K=1, then candidate widening at the full grid.
func EnsembleVariants() []EnsembleVariant {
	grid := core.DefaultSpGrid()
	return []EnsembleVariant{
		{"single", 1, []float64{0.45}},
		{"k1-grid3", 1, grid},
		{"k2-grid3", 2, grid},
		{"k4-grid3", 4, grid},
	}
}

// EnsembleRow is one variant's aggregate over every packet.
type EnsembleRow struct {
	Variant      string    `json:"variant"`
	K            int       `json:"k"`
	GridSize     int       `json:"grid_size"`
	Arms         int       `json:"arms"`
	Successes    int       `json:"successes"`
	Uses         int       `json:"uses"`
	SuccessRate  jsonFloat `json:"success_rate"`
	CodedBitErrs int       `json:"coded_bit_errs"`
	CodedBits    int       `json:"coded_bits"`
	CodedBER     jsonFloat `json:"coded_ber"`
	SoftInfoErrs int       `json:"soft_info_errs"`
	HardInfoErrs int       `json:"hard_info_errs"`
	InfoBits     int       `json:"info_bits"`
	SoftInfoBER  jsonFloat `json:"soft_info_ber"`
	HardInfoBER  jsonFloat `json:"hard_info_ber"`
	AnnealMicros jsonFloat `json:"anneal_us"`
}

// EnsembleResult is the ensemble-vs-single-RA study.
type EnsembleResult struct {
	Users       int           `json:"users"`
	Scheme      string        `json:"scheme"`
	SNRdB       float64       `json:"snr_db"`
	Packets     int           `json:"packets"`
	InfoLen     int           `json:"info_len"`
	UsesPerPkt  int           `json:"uses_per_packet"`
	ReadsPerArm int           `json:"reads_per_arm"`
	Rows        []EnsembleRow `json:"rows"`
}

// ensembleUse is one precomputed channel use, shared by every variant so
// the sweep is paired: same info bits, channel draws, and ML witness.
type ensembleUse struct {
	seg    []int8 // transmitted coded bits, user-major binary labeling
	red    *mimo.Reduction
	ground float64 // exact-ML Ising energy (sphere decoder witness)
}

// RunEnsemble runs the flexible-parallelism study: every variant detects
// the identical coded packets, per channel use, through core.Ensemble.
// A positive k or non-empty grid appends one custom variant to the
// default sweep (the -ensemble-k / -ensemble-sp-grid flags), with the
// unset half defaulting to K=1 / the default grid.
func RunEnsemble(cfg Config, k int, grid []float64) (*EnsembleResult, error) {
	cfg = cfg.withDefaults()
	scheme := modulation.QAM16
	code := coding.NewConvCode133171()
	n0 := channel.NoiseVarianceForSNR(ensembleSNRdB, ensembleUsers)
	bitsPerUse := ensembleUsers * scheme.BitsPerSymbol()
	packets := cfg.Instances
	readsPerArm := cfg.Reads / 30
	if readsPerArm < 4 {
		readsPerArm = 4
	}
	variants := EnsembleVariants()
	if k > 0 || len(grid) > 0 {
		if k <= 0 {
			k = 1
		}
		if len(grid) == 0 {
			grid = core.DefaultSpGrid()
		}
		variants = append(variants, EnsembleVariant{
			Name: fmt.Sprintf("k%d-grid%d", k, len(grid)), K: k, Grid: grid,
		})
	}

	res := &EnsembleResult{
		Users: ensembleUsers, Scheme: scheme.String(), SNRdB: ensembleSNRdB,
		Packets: packets, InfoLen: ensembleInfoLen,
		UsesPerPkt:  (code.CodedLength(ensembleInfoLen) + bitsPerUse - 1) / bitsPerUse,
		ReadsPerArm: readsPerArm,
	}

	// Synthesize every packet's channel uses once; variants pair on them.
	root := cfg.root().SplitString("ensemble")
	type packet struct {
		info  []int8
		coded []int8
		uses  []ensembleUse
	}
	pkts := make([]packet, packets)
	for pi := range pkts {
		pr := root.Split(uint64(pi))
		info := randomEnsembleBits(pr.SplitString("info"), ensembleInfoLen)
		coded, err := code.Encode(info)
		if err != nil {
			return nil, err
		}
		padded := append([]int8(nil), coded...)
		for len(padded)%bitsPerUse != 0 {
			padded = append(padded, 0)
		}
		pkts[pi] = packet{info: info, coded: coded}
		for use := 0; use*bitsPerUse < len(padded); use++ {
			seg := padded[use*bitsPerUse : (use+1)*bitsPerUse]
			ur := pr.Split(uint64(use))
			u, err := synthesizeEnsembleUse(seg, scheme, n0, ur)
			if err != nil {
				return nil, err
			}
			pkts[pi].uses = append(pkts[pi].uses, *u)
		}
	}

	for _, v := range variants {
		if err := core.ValidateSpGrid(v.Grid); err != nil {
			return nil, err
		}
		det := &core.Ensemble{
			K: v.K, SpGrid: v.Grid, NumReads: readsPerArm,
			Config: cfg.annealConfig(),
		}
		row := EnsembleRow{
			Variant: v.Name, K: v.K, GridSize: len(v.Grid), Arms: v.K * len(v.Grid),
		}
		anneal := 0.0
		for pi := range pkts {
			pkt := &pkts[pi]
			var llrs []float64
			var hardBits []int8
			for ui := range pkt.uses {
				u := &pkt.uses[ui]
				dr := root.SplitString("detect/" + v.Name).Split(uint64(pi*1024 + ui))
				out, err := det.Solve(u.red, dr)
				if err != nil {
					return nil, err
				}
				row.Uses++
				if out.Best.Energy <= u.ground+1e-6 {
					row.Successes++
				}
				anneal += out.AnnealTime
				spinLLRs := out.FusedLLRs
				if spinLLRs == nil {
					// Every arm faulted (not reachable without a fault
					// model, but keep the decode total): hard ±1 LLRs
					// from the fallback answer.
					spinLLRs = make([]float64, len(out.Best.Spins))
					for i, sp := range out.Best.Spins {
						spinLLRs[i] = float64(sp)
					}
				}
				for uu := 0; uu < ensembleUsers; uu++ {
					hard := scheme.DemodulateBinary(out.Symbols[uu])
					for b := 0; b < scheme.BitsPerSymbol(); b++ {
						idx := mimo.BitLLR{User: uu, Bit: b}.SpinIndex(u.red)
						llrs = append(llrs, spinLLRs[idx])
						hardBits = append(hardBits, hard[b])
					}
				}
			}
			row.CodedBitErrs += coding.BitErrors(hardBits[:len(pkt.coded)], pkt.coded)
			row.CodedBits += len(pkt.coded)
			softDec, err := code.DecodeSoft(llrs[:len(pkt.coded)])
			if err != nil {
				return nil, err
			}
			hardDec, err := code.DecodeHard(hardBits[:len(pkt.coded)])
			if err != nil {
				return nil, err
			}
			row.SoftInfoErrs += coding.BitErrors(pkt.info, softDec)
			row.HardInfoErrs += coding.BitErrors(pkt.info, hardDec)
			row.InfoBits += len(pkt.info)
		}
		row.SuccessRate = jsonFloat(float64(row.Successes) / float64(row.Uses))
		row.CodedBER = jsonFloat(float64(row.CodedBitErrs) / float64(row.CodedBits))
		row.SoftInfoBER = jsonFloat(float64(row.SoftInfoErrs) / float64(row.InfoBits))
		row.HardInfoBER = jsonFloat(float64(row.HardInfoErrs) / float64(row.InfoBits))
		row.AnnealMicros = jsonFloat(anneal)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// synthesizeEnsembleUse transmits one channel use's coded bits and
// reduces it, with the sphere decoder witnessing the exact-ML energy.
func synthesizeEnsembleUse(bits []int8, scheme modulation.Scheme, n0 float64, r *rng.Source) (*ensembleUse, error) {
	x := make([]complex128, ensembleUsers)
	for u := 0; u < ensembleUsers; u++ {
		sym, err := scheme.ModulateBinary(bits[u*scheme.BitsPerSymbol() : (u+1)*scheme.BitsPerSymbol()])
		if err != nil {
			return nil, err
		}
		x[u] = sym
	}
	h := channel.Draw(channel.Rayleigh, r.SplitString("channel"), ensembleUsers, ensembleUsers)
	y := channel.Transmit(r.SplitString("noise"), h, x, n0)
	p := &mimo.Problem{H: h, Y: y, Scheme: scheme}
	red, err := mimo.Reduce(p)
	if err != nil {
		return nil, err
	}
	ml, err := mimo.SphereDecoder{}.Detect(p)
	if err != nil {
		return nil, err
	}
	spins, err := red.EncodeSymbols(ml)
	if err != nil {
		return nil, err
	}
	return &ensembleUse{
		seg: append([]int8(nil), bits...), red: red,
		ground: red.Ising.Energy(spins),
	}, nil
}

func randomEnsembleBits(r *rng.Source, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		if r.Bool() {
			out[i] = 1
		}
	}
	return out
}

// WriteTable renders the study.
func (r *EnsembleResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Ensemble RA coded uplink: %d users × %s @ %g dB, %d packets × %d uses, %d reads/arm (K candidates × s_p grid)\n",
		r.Users, r.Scheme, r.SNRdB, r.Packets, r.UsesPerPkt, r.ReadsPerArm)
	writeRow(w, "variant", "k", "grid", "arms", "success", "coded_ber", "soft_ber", "hard_ber", "anneal_us")
	for _, row := range r.Rows {
		writeRow(w, row.Variant, row.K, row.GridSize, row.Arms,
			float64(row.SuccessRate), float64(row.CodedBER),
			float64(row.SoftInfoBER), float64(row.HardInfoBER), float64(row.AnnealMicros))
	}
}
