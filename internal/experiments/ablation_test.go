package experiments

import (
	"strings"
	"testing"
)

// TestModuleAblationShape verifies the §5 hypothesis the paper states:
// stronger classical modules deliver better candidate quality than GS,
// and every module's hybrid solves at least as often as the random
// initializer's.
func TestModuleAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunModuleAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	gs, ok1 := res.RowFor("gs")
	kb, ok2 := res.RowFor("kbest")
	rnd, ok3 := res.RowFor("random")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing rows")
	}
	// Tree search beats greedy on candidate quality (the paper's §5
	// expectation: application-specific solvers improve ΔE_IS%).
	if kb.MeanDeltaEIS > gs.MeanDeltaEIS+1e-9 {
		t.Fatalf("K-best candidates (%v) no better than greedy (%v)", kb.MeanDeltaEIS, gs.MeanDeltaEIS)
	}
	// Random initialization is the worst candidate by far.
	if rnd.MeanDeltaEIS < gs.MeanDeltaEIS {
		t.Fatalf("random candidates (%v) better than greedy (%v)?", rnd.MeanDeltaEIS, gs.MeanDeltaEIS)
	}
	// Solve rates are probabilities.
	for _, row := range res.Rows {
		if row.SolveRate < 0 || row.SolveRate > 1 || row.HybridPStar < 0 || row.HybridPStar > 1 {
			t.Fatalf("row %q out of range: %+v", row.Module, row)
		}
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "kbest") {
		t.Fatal("table render incomplete")
	}
}

// TestDeviceAblationShape verifies the calibration narrative: the
// calibrated simulator retains AND repairs; TF moves retain but do not
// repair; the embedded QPU breaks chains under FA; ICE noise degrades
// everything.
func TestDeviceAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunDeviceAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, ok := res.RowFor("calibrated")
	if !ok {
		t.Fatal("missing calibrated row")
	}
	if cal.RetentionHighSp < 0.3 {
		t.Fatalf("calibrated retention %v too low", cal.RetentionHighSp)
	}
	if cal.RepairMidSp <= 0 {
		t.Fatal("calibrated simulator never repaired the imperfect candidate")
	}
	tf, ok := res.RowFor("svmc-tf")
	if !ok {
		t.Fatal("missing svmc-tf row")
	}
	if tf.RetentionHighSp < cal.RetentionHighSp-0.2 {
		t.Fatalf("TF retention %v unexpectedly below calibrated %v", tf.RetentionHighSp, cal.RetentionHighSp)
	}
	emb, ok := res.RowFor("embedded")
	if !ok {
		t.Fatal("missing embedded row")
	}
	if emb.BrokenChainRate <= 0 {
		t.Fatal("embedded runs reported no chain breakage")
	}
	ice, ok := res.RowFor("ice-noise")
	if !ok {
		t.Fatal("missing ice row")
	}
	if ice.RetentionHighSp > cal.RetentionHighSp+0.1 {
		t.Fatalf("ICE noise improved retention (%v vs %v)", ice.RetentionHighSp, cal.RetentionHighSp)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "calibrated") {
		t.Fatal("table render incomplete")
	}
}

// TestGreedyOrderAblation documents the §4.1 prose-ambiguity resolution:
// descending (greedy-descent-style) ordering is at least as good as the
// literal ascending prose on average.
func TestGreedyOrderAblation(t *testing.T) {
	cfg := tiny()
	res, err := RunGreedyOrderAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Fatal("no instances")
	}
	if res.MeanDeltaEISDescending > res.MeanDeltaEISAscending+1e-9 {
		t.Fatalf("descending order (%v) worse on average than ascending (%v)",
			res.MeanDeltaEISDescending, res.MeanDeltaEISAscending)
	}
	if res.DescendingWinsOrTiesCount*2 < res.Instances {
		t.Fatalf("descending wins/ties on only %d/%d instances",
			res.DescendingWinsOrTiesCount, res.Instances)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "descending") {
		t.Fatal("table render incomplete")
	}
}

// TestBERShape: the intro's motivation — linear detection loses badly to
// (near-)ML on a correlated channel, BER falls with SNR, and the hybrid
// tracks the sphere decoder.
func TestBERShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunBER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBER("zf") <= res.TotalBER("sd") {
		t.Fatalf("ZF (%v) not worse than exact ML (%v)", res.TotalBER("zf"), res.TotalBER("sd"))
	}
	if res.TotalBER("gs+ra") > res.TotalBER("zf") {
		t.Fatalf("hybrid (%v) worse than ZF (%v)", res.TotalBER("gs+ra"), res.TotalBER("zf"))
	}
	// BER decreases with SNR for the ML detector.
	sd := res.BER["sd"]
	if sd[0] < sd[len(sd)-1] {
		t.Fatalf("ML BER rose with SNR: %v", sd)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "BER vs SNR") {
		t.Fatal("table render incomplete")
	}
}

// TestHardnessShape: well-conditioned channels are easy (high success,
// near-zero greedy defect); the hardest bucket is measurably worse.
func TestHardnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunHardness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.PopulatedRows()
	if len(rows) < 2 {
		t.Fatalf("only %d condition-number buckets populated", len(rows))
	}
	// Success probabilities are the hardness signal. (Greedy ΔE%% is NOT
	// asserted: it is normalized by each instance's own energy scale, so
	// it is not comparable across channels of different conditioning.)
	first, last := rows[0], rows[len(rows)-1]
	if last.HybridPStar >= first.HybridPStar {
		t.Fatalf("hybrid success did not degrade with conditioning: %v vs %v",
			first.HybridPStar, last.HybridPStar)
	}
	if last.FAPStar >= first.FAPStar {
		t.Fatalf("FA success did not degrade with conditioning: %v vs %v",
			first.FAPStar, last.FAPStar)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "condition number") {
		t.Fatal("table render incomplete")
	}
}

// TestQAOAShape: deeper QAOA improves success; all probabilities valid;
// on these sizes the ideal gate model beats random guessing massively.
func TestQAOAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	cfg.Instances = 2
	res, err := RunQAOA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Layerwise training optimizes EXPECTED COST monotonically;
		// success probability mostly follows but may wobble — allow slack.
		if row.QAOAP3 < row.QAOAP1*0.5 {
			t.Fatalf("%du-%v: depth 3 (%v) collapsed vs depth 1 (%v)", row.Users, row.Scheme, row.QAOAP3, row.QAOAP1)
		}
		// The p=1 ORACLE must beat uniform random guessing on the small
		// workloads (the cost-optimized column legitimately may not:
		// minimizing ⟨H⟩ can concentrate amplitude on low-lying excited
		// states at the ground state's expense).
		random := 1.0 / float64(int(1)<<uint(row.Qubits))
		if row.Qubits <= 12 && row.QAOAP1Oracle < 2*random {
			t.Fatalf("%du-%v: QAOA p1 oracle %v at random-guess level %v", row.Users, row.Scheme, row.QAOAP1Oracle, random)
		}
		// The annealing path dominates low-depth QAOA at every size —
		// the observed (and literature-consistent) ordering.
		if row.QAOAP3 > row.RAPStar {
			t.Fatalf("%du-%v: depth-3 QAOA (%v) beat the annealer (%v)?", row.Users, row.Scheme, row.QAOAP3, row.RAPStar)
		}
		for _, p := range []float64{row.QAOAP1, row.QAOAP3, row.QAOAP1Oracle, row.FAPStar, row.RAPStar} {
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %+v", row)
			}
		}
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "QAOA") {
		t.Fatal("table render incomplete")
	}
}

// TestCapacityShape: more QPUs monotonically reduce deadline misses and
// per-unit utilization; one QPU saturates under the chosen load.
func TestCapacityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := RunCapacity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0].DeadlineMissRate <= res.Rows[len(res.Rows)-1].DeadlineMissRate {
		t.Fatalf("adding QPUs did not reduce misses: %v -> %v",
			res.Rows[0].DeadlineMissRate, res.Rows[len(res.Rows)-1].DeadlineMissRate)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].DeadlineMissRate > res.Rows[i-1].DeadlineMissRate+1e-9 {
			t.Fatal("miss rate not monotone in pool size")
		}
		if res.Rows[i].MeanLatencyMicros > res.Rows[i-1].MeanLatencyMicros+1e-9 {
			t.Fatal("latency not monotone in pool size")
		}
	}
	// The single-QPU configuration is overloaded (service > arrival).
	if res.Rows[0].QPUUtilization < 0.8 {
		t.Fatalf("single QPU utilization %v — load too light for the study", res.Rows[0].QPUUtilization)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Capacity planning") {
		t.Fatal("table render incomplete")
	}
}
