package experiments

import (
	"fmt"
	"io"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

// Fig3Point is one (modulation, size) measurement of the §3.1 QUBO-
// simplification scheme: the fraction of instances where Lewis–Glover
// fixing removed at least one variable (left panel) and the mean number
// of fixed variables among simplified instances (right panel).
type Fig3Point struct {
	Scheme          modulation.Scheme `json:"scheme"`
	Variables       int               `json:"variables"`
	SimplifiedRatio float64           `json:"simplified_ratio"`
	AvgFixed        float64           `json:"avg_fixed"`
	// Simplified is the success count behind SimplifiedRatio — the
	// point's sample vector (out of the result's Instances trials) for
	// confidence intervals.
	Simplified int `json:"simplified"`
}

// Fig3Result is the full Figure 3 sweep.
type Fig3Result struct {
	Points []Fig3Point `json:"points"`
	// Instances per point.
	Instances int `json:"instances"`
}

// Figure3 sweeps problem sizes (in QUBO variables) per modulation and
// measures the simplification scheme on `cfg.Instances` random instances
// each. The paper uses 50 instances per point across sizes up to the
// regime where simplification vanishes (32–40 variables).
func Figure3(cfg Config, maxVars int) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	if maxVars <= 0 {
		maxVars = 48
	}
	res := &Fig3Result{Instances: cfg.Instances}
	// The paper's Figure 3 covers BPSK, QPSK and 16-QAM.
	for _, s := range []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		b := s.BitsPerSymbol()
		for vars := b; vars <= maxVars; vars += b {
			users := vars / b
			insts, err := instance.Corpus(instance.Spec{Users: users, Scheme: s},
				cfg.Seed^uint64(vars*131+int(s)), cfg.Instances)
			if err != nil {
				return nil, err
			}
			simplified, fixedSum := 0, 0
			for _, in := range insts {
				pre := qubo.Preprocess(in.Reduction.Ising.ToQUBO())
				if pre.Simplified {
					simplified++
					fixedSum += len(pre.Fixed)
				}
			}
			pt := Fig3Point{Scheme: s, Variables: vars, Simplified: simplified}
			pt.SimplifiedRatio = float64(simplified) / float64(cfg.Instances)
			if simplified > 0 {
				pt.AvgFixed = float64(fixedSum) / float64(simplified)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// WriteTable renders the figure's two panels as rows.
func (r *Fig3Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 3: QUBO simplification vs problem size (%d instances/point)\n", r.Instances)
	writeRow(w, "scheme", "vars", "ratio", "avg_fixed")
	for _, p := range r.Points {
		writeRow(w, p.Scheme.String(), p.Variables, p.SimplifiedRatio, p.AvgFixed)
	}
}

// VanishingPoint returns, per scheme, the smallest size from which the
// simplification ratio stays at or below `threshold` for every larger
// measured size — the paper's "nearly no effect over 32–40 variables"
// observation.
func (r *Fig3Result) VanishingPoint(s modulation.Scheme, threshold float64) (int, bool) {
	best, found := 0, false
	// Walk sizes descending; extend the vanishing run while the ratio
	// stays under threshold.
	var pts []Fig3Point
	for _, p := range r.Points {
		if p.Scheme == s {
			pts = append(pts, p)
		}
	}
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].SimplifiedRatio <= threshold {
			best, found = pts[i].Variables, true
		} else {
			break
		}
	}
	return best, found
}
