package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
)

// FleetScalingRow is one fleet size's serving performance on the shared
// workload.
type FleetScalingRow struct {
	Devices             int     `json:"devices"`
	Served              int     `json:"served"`
	Shed                int     `json:"shed"`
	ThroughputPerSecond float64 `json:"throughput_fps"`
	Speedup             float64 `json:"speedup_vs_1"`
	P99LatencyMicros    float64 `json:"p99_latency_us"`
	DeadlineMissRate    float64 `json:"deadline_miss_rate"`
	MeanBatchSize       float64 `json:"mean_batch_size"`
	MeanUtilization     float64 `json:"mean_utilization"`
}

// FleetScalingResult is the fleet-serving scaling study: the same
// backlogged multi-stream workload served by growing heterogeneous QPU
// pools, showing how added devices translate into detection throughput.
type FleetScalingResult struct {
	Policy  string            `json:"policy"`
	Streams int               `json:"streams"`
	Frames  int               `json:"frames"`
	Reads   int               `json:"reads"`
	Rows    []FleetScalingRow `json:"rows"`
}

// RunFleetScaling serves the paper's reference serving workload — 8
// concurrent streams of 8-user 16-QAM detection frames arriving faster
// than one device drains them — through fleets of 1..maxDevices
// (default 8) simulated 2000Q-class QPUs under the given policy, and
// reports throughput scaling against the single-device baseline. The
// workload shape matches BenchmarkFleetServe so the committed bench
// records and this figure describe the same experiment.
func RunFleetScaling(cfg Config, maxDevices int, policy fleet.Policy) (*FleetScalingResult, error) {
	cfg = cfg.withDefaults()
	if maxDevices <= 0 {
		maxDevices = 8
	}
	const (
		streams   = 8
		perStream = 6
		interval  = 100.0 // μs between frames of one stream: a deep backlog
		reads     = 60
	)

	insts, err := instance.Corpus(instance.Spec{Users: 8, Scheme: modulation.QAM16},
		cfg.Seed^0xF1EE, 4)
	if err != nil {
		return nil, err
	}
	var reqs []fleet.Request
	gs := core.GreedyModule{}
	for s := 0; s < streams; s++ {
		for q := 0; q < perStream; q++ {
			inst := insts[(s+q)%len(insts)]
			init, err := gs.Initialize(inst.Reduction, cfg.root().Split(uint64(s*perStream+q)))
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * interval,
				Problem:      inst.Reduction.Ising,
				InitialState: init,
			})
		}
	}

	sizes := []int{}
	for _, n := range []int{1, 2, 4, 8} {
		if n <= maxDevices {
			sizes = append(sizes, n)
		}
	}
	if sizes[len(sizes)-1] != maxDevices {
		sizes = append(sizes, maxDevices)
	}

	res := &FleetScalingResult{
		Policy: policy.String(), Streams: streams, Frames: len(reqs), Reads: reads,
	}
	var base float64
	for _, n := range sizes {
		fc := fleet.Config{
			Devices:          fleet.DefaultDevices(n),
			Policy:           policy,
			NumReads:         reads,
			BatchMax:         4,
			StreamQueueBound: 64,
			Seed:             cfg.Seed,
			Trace:            cfg.Trace,
			Metrics:          cfg.Metrics,
		}
		out, err := fleet.Serve(context.Background(), fc, reqs)
		if err != nil {
			return nil, err
		}
		rep := out.Report
		var util float64
		for _, d := range rep.Devices {
			util += d.Utilization
		}
		if len(rep.Devices) > 0 {
			util /= float64(len(rep.Devices))
		}
		if base == 0 {
			base = rep.ThroughputPerSecond
		}
		row := FleetScalingRow{
			Devices:             n,
			Served:              rep.Served,
			Shed:                rep.Shed,
			ThroughputPerSecond: rep.ThroughputPerSecond,
			P99LatencyMicros:    rep.P99LatencyMicros,
			DeadlineMissRate:    rep.DeadlineMissRate,
			MeanBatchSize:       rep.MeanBatchSize,
			MeanUtilization:     util,
		}
		if base > 0 {
			row.Speedup = rep.ThroughputPerSecond / base
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the study. An empty result (zero streams) renders
// its header with zero frames rather than dividing by zero.
func (r *FleetScalingResult) WriteTable(w io.Writer) {
	perStream := 0
	if r.Streams > 0 {
		perStream = r.Frames / r.Streams
	}
	fmt.Fprintf(w, "# Fleet scaling: %d streams × %d frames of 8-user 16-QAM, %d reads, policy %s\n",
		r.Streams, perStream, r.Reads, r.Policy)
	writeRow(w, "devices", "served", "shed", "thru_fps", "speedup", "p99_lat", "miss_rate", "batch", "util")
	for _, row := range r.Rows {
		writeRow(w, row.Devices, row.Served, row.Shed, row.ThroughputPerSecond,
			row.Speedup, row.P99LatencyMicros, row.DeadlineMissRate,
			row.MeanBatchSize, row.MeanUtilization)
	}
}
