package experiments

import (
	"fmt"
	"io"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/mimo"
	"repro/internal/modulation"
)

// BERResult is an extension experiment beyond the paper's figures: the
// uplink bit-error-rate curves that motivate its introduction — "to make
// full use of spatial multiplexing, much more sophisticated receiver
// designs with (near) optimal detectors are required". Linear detectors
// collapse on correlated channels; the exact-ML sphere decoder and the
// hybrid GS→RA solver hold the floor.
type BERResult struct {
	Users       int
	Scheme      modulation.Scheme
	Correlation float64
	Frames      int
	SNRs        []float64
	// BER[detector][snrIndex].
	BER map[string][]float64
	// Detectors in presentation order.
	Detectors []string
}

// RunBER sweeps SNR on a correlated Rayleigh uplink for the classical
// detectors and the hybrid.
func RunBER(cfg Config) (*BERResult, error) {
	cfg = cfg.withDefaults()
	const (
		users = 4
		rho   = 0.5
	)
	scheme := modulation.QAM16
	snrs := []float64{8, 12, 16, 20, 24}
	frames := cfg.Instances * 4

	res := &BERResult{
		Users: users, Scheme: scheme, Correlation: rho, Frames: frames,
		SNRs:      snrs,
		BER:       map[string][]float64{},
		Detectors: []string{"zf", "mmse", "kbest", "sd", "gs+ra"},
	}
	for _, d := range res.Detectors {
		res.BER[d] = make([]float64, len(snrs))
	}
	root := cfg.root().SplitString("ber")
	bitsPerFrame := users * scheme.BitsPerSymbol()
	for si, snr := range snrs {
		n0 := channel.NoiseVarianceForSNR(snr, users)
		insts, err := instance.Corpus(instance.Spec{
			Users: users, Scheme: scheme, Channel: channel.Rayleigh,
			Correlation: rho, NoiseVariance: n0,
		}, cfg.Seed^uint64(0xBE0+si), frames)
		if err != nil {
			return nil, err
		}
		for fi, in := range insts {
			r := root.Split(uint64(si*10_000 + fi))
			detect := func(name string) ([]complex128, error) {
				switch name {
				case "zf":
					return mimo.ZeroForcing{}.Detect(in.Problem)
				case "mmse":
					return mimo.MMSE{NoiseVariance: n0}.Detect(in.Problem)
				case "kbest":
					return mimo.KBest{K: 8}.Detect(in.Problem)
				case "sd":
					return mimo.SphereDecoder{}.Detect(in.Problem)
				case "gs+ra":
					out, err := (&core.Hybrid{NumReads: cfg.Reads / 2, Config: cfg.annealConfig()}).
						Solve(in.Reduction, r)
					if err != nil {
						return nil, err
					}
					return out.Symbols, nil
				}
				return nil, fmt.Errorf("unknown detector %q", name)
			}
			for _, d := range res.Detectors {
				syms, err := detect(d)
				if err != nil {
					return nil, err
				}
				res.BER[d][si] += float64(mimo.BitErrors(scheme, syms, in.Transmitted))
			}
		}
		for _, d := range res.Detectors {
			res.BER[d][si] /= float64(frames * bitsPerFrame)
		}
	}
	return res, nil
}

// WriteTable renders the BER curves.
func (r *BERResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Extension: uplink BER vs SNR, %d-user %s, Kronecker ρ=%.1f (%d frames/point)\n",
		r.Users, r.Scheme, r.Correlation, r.Frames)
	header := []any{"snr_db"}
	for _, d := range r.Detectors {
		header = append(header, d)
	}
	writeRow(w, header...)
	for si, snr := range r.SNRs {
		row := []any{snr}
		for _, d := range r.Detectors {
			row = append(row, r.BER[d][si])
		}
		writeRow(w, row...)
	}
}

// TotalBER sums a detector's BER over the sweep (for coarse ordering
// checks).
func (r *BERResult) TotalBER(detector string) float64 {
	var sum float64
	for _, b := range r.BER[detector] {
		sum += b
	}
	return sum
}
