// Package experiments regenerates every table and figure of the paper's
// evaluation: one harness per figure, shared by cmd/experiments and the
// root-level benchmarks. Each harness returns structured series and can
// render the same rows the paper plots.
//
// Harness ↔ figure map (see DESIGN.md's per-experiment index):
//
//	Figure3  — QUBO-simplification ratio & avg fixed variables (§3.1)
//	Figure4  — soft-information constraint effect report (§3.1)
//	Figure6  — ΔE% sample distributions: FA vs RA(random) vs RA(GS) (§4.3)
//	Figure7  — success probability & E[cost] vs ΔE_IS% (§4.3)
//	Figure8  — p★ and TTS vs s_p for FA / FR / RA (§4.3)
//	Headline — RA-vs-FA success-probability and TTS ratios (§1, §4.3)
//	Pipeline — Figure 2 pipelining throughput/latency (§3)
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"

	"repro/internal/annealer"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// jsonFloat marshals the non-finite float64s figure results legitimately
// contain (TTS = +Inf when a solver never succeeds, ΔE_IS = NaN for
// solvers without an initial state) as JSON strings — plain encoding/json
// rejects them, and the golden-baseline files embed whole results.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both the string
// spellings above and plain numbers.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "NaN":
			*f = jsonFloat(math.NaN())
		case "+Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		default:
			return fmt.Errorf("experiments: unknown float spelling %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// Config scales every harness's effort. Quick() keeps the full sweep
// structure at a few seconds per figure for benchmarks and CI; Full()
// approaches the paper's sample counts.
type Config struct {
	// Seed roots all randomness; a fixed seed reproduces every number.
	Seed uint64
	// Instances per (modulation, size) point.
	Instances int
	// Reads per anneal setting (the paper's N_s).
	Reads int
	// SweepsPerMicrosecond is the simulator clock rate. The calibrated
	// default of 30 keeps dynamics diabatic: forward anneals cannot fully
	// equilibrate (as on hardware), which is what separates the solvers.
	SweepsPerMicrosecond float64
	// Engine simulates quantum dynamics (default SVMC).
	Engine annealer.Engine
	// Profile sets device energy scales (default CalibratedProfile).
	Profile *annealer.Profile
	// ICE applies control-error noise when non-zero.
	ICE annealer.ICE
	// Parallelism fans anneal reads across goroutines (default
	// runtime.NumCPU, capped at 8; deterministic at any level).
	Parallelism int
	// Trace and Metrics, when set, are threaded into every anneal batch
	// and pipeline run a harness issues — one registry/trace accumulates
	// the whole experiment. Nil-safe and observation-only (results are
	// bit-identical either way).
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry
}

// Quick returns the benchmark-scale configuration.
func Quick() Config {
	return Config{
		Seed:                 2020,
		Instances:            5,
		Reads:                200,
		SweepsPerMicrosecond: 30,
	}
}

// Full returns the paper-scale configuration (minutes per figure).
func Full() Config {
	return Config{
		Seed:                 2020,
		Instances:            20,
		Reads:                2000,
		SweepsPerMicrosecond: 30,
	}
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2020
	}
	if c.Instances <= 0 {
		c.Instances = 5
	}
	if c.Reads <= 0 {
		c.Reads = 200
	}
	if c.SweepsPerMicrosecond <= 0 {
		c.SweepsPerMicrosecond = 30
	}
	if c.Profile == nil {
		prof := annealer.CalibratedProfile()
		c.Profile = &prof
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
		if c.Parallelism > 8 {
			c.Parallelism = 8
		}
	}
	return c
}

// annealConfig builds the shared device settings.
func (c Config) annealConfig() core.AnnealConfig {
	return core.AnnealConfig{
		Engine:               c.Engine,
		Profile:              c.Profile,
		SweepsPerMicrosecond: c.SweepsPerMicrosecond,
		ICE:                  c.ICE,
		Parallelism:          c.Parallelism,
		Trace:                c.Trace,
		Metrics:              c.Metrics,
	}
}

// annealParams builds raw annealer parameters for harnesses that bypass
// the solver types.
func (c Config) annealParams(sc *annealer.Schedule, init []int8, reads int) annealer.Params {
	return annealer.Params{
		Schedule:             sc,
		InitialState:         init,
		NumReads:             reads,
		Engine:               c.Engine,
		Profile:              c.Profile,
		SweepsPerMicrosecond: c.SweepsPerMicrosecond,
		ICE:                  c.ICE,
		Parallelism:          c.Parallelism,
		Trace:                c.Trace,
		Metrics:              c.Metrics,
	}
}

func (c Config) root() *rng.Source { return rng.New(c.Seed) }

// writeRow writes one aligned table row.
func writeRow(w io.Writer, cols ...any) {
	for i, col := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		switch v := col.(type) {
		case string:
			fmt.Fprintf(w, "%-10s", v)
		case float64:
			fmt.Fprintf(w, "%10.4f", v)
		case int:
			fmt.Fprintf(w, "%6d", v)
		default:
			fmt.Fprintf(w, "%v", v)
		}
	}
	fmt.Fprintln(w)
}
