package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/modulation"
)

// The figure result helpers are consumed by the validation harness on
// arbitrary (possibly empty or degenerate) sweeps; these tables pin their
// edge behavior: empty sweeps answer (0, false)-style "not found", single
// points behave like one-element runs, and thresholds are inclusive.

func TestVanishingPointTable(t *testing.T) {
	mk := func(ratios ...float64) *Fig3Result {
		r := &Fig3Result{Instances: 5}
		for i, ratio := range ratios {
			r.Points = append(r.Points, Fig3Point{
				Scheme: modulation.BPSK, Variables: (i + 1) * 4, SimplifiedRatio: ratio,
			})
		}
		return r
	}
	cases := []struct {
		name      string
		res       *Fig3Result
		threshold float64
		want      int
		found     bool
	}{
		{"empty sweep", mk(), 0.2, 0, false},
		{"single point above", mk(0.8), 0.2, 0, false},
		{"single point at threshold (inclusive)", mk(0.2), 0.2, 4, true},
		{"single point below", mk(0.1), 0.2, 4, true},
		{"vanishes mid-sweep", mk(1, 0.8, 0.15, 0.1), 0.2, 12, true},
		{"re-emerges then vanishes", mk(1, 0.1, 0.9, 0.05), 0.2, 16, true},
		{"never vanishes", mk(1, 0.9, 0.8), 0.2, 0, false},
		{"all below threshold", mk(0.1, 0.05, 0), 0.2, 4, true},
		{"other scheme untouched", mk(0.1), 0.2, 0, false},
	}
	for _, tc := range cases {
		scheme := modulation.BPSK
		if tc.name == "other scheme untouched" {
			scheme = modulation.QAM16
		}
		got, found := tc.res.VanishingPoint(scheme, tc.threshold)
		if got != tc.want || found != tc.found {
			t.Errorf("%s: VanishingPoint = (%d, %v), want (%d, %v)",
				tc.name, got, found, tc.want, tc.found)
		}
	}
}

func TestFig8WindowAndBestTTSTable(t *testing.T) {
	mk := func(ps ...float64) *Fig8Result {
		r := &Fig8Result{Confidence: 99}
		for i, p := range ps {
			r.add(Fig8FA, 0.25+0.04*float64(i), p, 2.0, math.NaN(), int(p*100), 100)
		}
		return r
	}
	t.Run("empty sweep", func(t *testing.T) {
		r := mk()
		if _, _, ok := r.SuccessWindow(Fig8FA); ok {
			t.Fatal("empty sweep reported a success window")
		}
		if _, ok := r.BestTTS(Fig8FA); ok {
			t.Fatal("empty sweep reported a best-TTS point")
		}
		if _, _, ok := r.FamilySuccessWindow(); ok {
			t.Fatal("empty sweep reported a family window")
		}
		if _, ok := r.BestFamilyTTS(); ok {
			t.Fatal("empty sweep reported a family best TTS")
		}
	})
	t.Run("all-zero p-star", func(t *testing.T) {
		r := mk(0, 0, 0)
		if _, _, ok := r.SuccessWindow(Fig8FA); ok {
			t.Fatal("all-zero sweep has no window")
		}
		if _, ok := r.BestTTS(Fig8FA); ok {
			t.Fatal("all-zero sweep has no finite TTS")
		}
	})
	t.Run("single positive point", func(t *testing.T) {
		r := mk(0.3)
		lo, hi, ok := r.SuccessWindow(Fig8FA)
		if !ok || lo != hi || lo != 0.25 {
			t.Fatalf("window = (%g, %g, %v), want single point at 0.25", lo, hi, ok)
		}
		best, ok := r.BestTTS(Fig8FA)
		if !ok || best.Sp != 0.25 {
			t.Fatalf("best = %+v, %v", best, ok)
		}
	})
	t.Run("window with interior zero", func(t *testing.T) {
		r := mk(0, 0.2, 0, 0.4, 0)
		lo, hi, ok := r.SuccessWindow(Fig8FA)
		if !ok || lo != 0.29 || hi != 0.37 {
			t.Fatalf("window = (%g, %g, %v), want (0.29, 0.37)", lo, hi, ok)
		}
		best, ok := r.BestTTS(Fig8FA)
		if !ok || best.Sp != 0.37 {
			t.Fatalf("best-TTS point %+v, want the p=0.4 point", best)
		}
	})
}

func TestFig7MonotoneTable(t *testing.T) {
	mk := func(ps ...float64) *Fig7Result {
		r := &Fig7Result{}
		for i, p := range ps {
			r.Points = append(r.Points, Fig7Point{DeltaEIS: float64(i), PStar: p})
		}
		return r
	}
	cases := []struct {
		name string
		res  *Fig7Result
		want bool
	}{
		{"empty", mk(), false},
		{"single point", mk(0.5), false},
		{"degrading", mk(0.9, 0.5, 0.1), true},
		{"flat (within tolerance)", mk(0.5, 0.5), true},
		{"improving", mk(0.1, 0.9), false},
	}
	for _, tc := range cases {
		if got := tc.res.Monotone(); got != tc.want {
			t.Errorf("%s: Monotone = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFig4RowForTable(t *testing.T) {
	r := &Fig4Result{Rows: []Fig4Row{
		{Weight: 0, PriorWrong: false, PStar: 0.3},
		{Weight: 2, PriorWrong: true, PStar: 0.1},
	}}
	if row, ok := r.RowFor(true, 2); !ok || row.PStar != 0.1 {
		t.Fatalf("RowFor(true, 2) = %+v, %v", row, ok)
	}
	if _, ok := r.RowFor(false, 99); ok {
		t.Fatal("missing weight reported found")
	}
	empty := &Fig4Result{}
	if _, ok := empty.RowFor(false, 0); ok {
		t.Fatal("empty result reported a row")
	}
}

func TestFig6SeriesForTable(t *testing.T) {
	empty := &Fig6Result{}
	if sr := empty.SeriesFor(modulation.BPSK, Fig6FA); sr != nil {
		t.Fatal("empty result returned a series")
	}
	r := &Fig6Result{Series: []*Fig6Series{{Scheme: modulation.QPSK, Algorithm: Fig6RAGS}}}
	if sr := r.SeriesFor(modulation.QPSK, Fig6RAGS); sr == nil {
		t.Fatal("present series not found")
	}
	if sr := r.SeriesFor(modulation.QPSK, Fig6FA); sr != nil {
		t.Fatal("absent algorithm reported present")
	}
}

// Empty results must render their tables without panicking — the
// validation harness writes tables for whatever it got back.
func TestWriteTableEmptyResults(t *testing.T) {
	var sb strings.Builder
	(&Fig3Result{}).WriteTable(&sb)
	(&Fig4Result{}).WriteTable(&sb)
	(&Fig6Result{}).WriteTable(&sb)
	(&Fig7Result{}).WriteTable(&sb)
	(&Fig8Result{}).WriteTable(&sb)
	(&HeadlineResult{}).WriteTable(&sb)
	(&FleetScalingResult{}).WriteTable(&sb)
	(&PipelineResult{}).WriteTable(&sb)
	if !strings.Contains(sb.String(), "Figure 3") || !strings.Contains(sb.String(), "Fleet scaling") {
		t.Fatal("headers missing from empty-table rendering")
	}
}
