package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/modulation"
)

// HeadlineResult quantifies the paper's abstract claim — reverse
// annealing from a good candidate achieves "approximately 2–10× better
// performance in terms of processing time" (and "up to 10× higher
// success probability") than forward annealing on 8-user 16-QAM decoding
// — by running the Figure-8 sweep on several instances and comparing
// each solver at its own best s_p.
//
// Two RA variants are scored. The FAMILY ratio initializes RA with a
// candidate of representative quality (ΔE_IS% < 10, the paper's
// yellow-curve construction) — this is the published-figure comparison.
// The GS ratio initializes RA with the literal greedy-search output; on
// the classical surrogate the ratio is smaller than on hardware because
// healing a greedy candidate's correlated defect cluster is exactly the
// multi-spin tunnelling move the surrogate lacks (see EXPERIMENTS.md).
type HeadlineResult struct {
	Instances int           `json:"instances"`
	Rows      []HeadlineRow `json:"rows"`
	// Median ratios across instances (FA TTS / RA TTS; > 1 = RA wins).
	MedianFamilyTTSRatio float64 `json:"median_family_tts_ratio"`
	MedianGSTTSRatio     float64 `json:"median_gs_tts_ratio"`
	// MedianPStarRatio is RA-family best p★ / FA best p★.
	MedianPStarRatio float64 `json:"median_p_star_ratio"`
}

// HeadlineRow is one instance's comparison at each solver's best s_p.
type HeadlineRow struct {
	Instance    int     `json:"instance"`
	FAPStar     float64 `json:"fa_p_star"`
	FATTS       float64 `json:"fa_tts"`
	FamilyPStar float64 `json:"family_p_star"`
	FamilyTTS   float64 `json:"family_tts"`
	GSPStar     float64 `json:"gs_p_star"`
	GSTTS       float64 `json:"gs_tts"`
	FamilyRatio float64 `json:"family_ratio"` // FA TTS / family-RA TTS
	GSRatio     float64 `json:"gs_ratio"`     // FA TTS / GS-RA TTS
	PStarRatio  float64 `json:"p_star_ratio"` // family-RA p★ / FA p★
	GSDeltaE    float64 `json:"gs_delta_e"`
}

// headlineWire carries HeadlineRow's non-finite-capable fields (TTS is
// +Inf when a solver never succeeded, and the derived ratios follow) at
// depth 0 so they shadow the embedded row's plain-float tags.
type headlineWire struct {
	wireHeadlineRow
	FATTS       jsonFloat `json:"fa_tts"`
	FamilyTTS   jsonFloat `json:"family_tts"`
	GSTTS       jsonFloat `json:"gs_tts"`
	FamilyRatio jsonFloat `json:"family_ratio"`
	GSRatio     jsonFloat `json:"gs_ratio"`
	PStarRatio  jsonFloat `json:"p_star_ratio"`
}

// wireHeadlineRow is HeadlineRow without its marshal methods.
type wireHeadlineRow HeadlineRow

// MarshalJSON implements json.Marshaler (non-finite TTS/ratio fields).
func (r HeadlineRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(headlineWire{
		wireHeadlineRow: wireHeadlineRow(r),
		FATTS:           jsonFloat(r.FATTS), FamilyTTS: jsonFloat(r.FamilyTTS), GSTTS: jsonFloat(r.GSTTS),
		FamilyRatio: jsonFloat(r.FamilyRatio), GSRatio: jsonFloat(r.GSRatio), PStarRatio: jsonFloat(r.PStarRatio),
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (r *HeadlineRow) UnmarshalJSON(b []byte) error {
	var w headlineWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = HeadlineRow(w.wireHeadlineRow)
	r.FATTS, r.FamilyTTS, r.GSTTS = float64(w.FATTS), float64(w.FamilyTTS), float64(w.GSTTS)
	r.FamilyRatio, r.GSRatio, r.PStarRatio = float64(w.FamilyRatio), float64(w.GSRatio), float64(w.PStarRatio)
	return nil
}

// Headline runs the Figure-8 sweep per instance and extracts the ratios.
func Headline(cfg Config) (*HeadlineResult, error) {
	cfg = cfg.withDefaults()
	res := &HeadlineResult{Instances: cfg.Instances}
	var famRatios, gsRatios, pRatios []float64
	for i := 0; i < cfg.Instances; i++ {
		sub := cfg
		sub.Seed = cfg.Seed ^ uint64(0x9E00+i*37)
		sub.Instances = 1
		fig, err := Figure8(sub)
		if err != nil {
			return nil, err
		}
		row := HeadlineRow{Instance: i, GSDeltaE: fig.GSDeltaE, FATTS: math.Inf(1), FamilyTTS: math.Inf(1), GSTTS: math.Inf(1)}
		if fa, ok := fig.BestTTS(Fig8FA); ok {
			row.FAPStar, row.FATTS = fa.PStar, fa.TTS
		}
		if fam, ok := fig.BestFamilyTTS(); ok {
			row.FamilyPStar, row.FamilyTTS = fam.PStar, fam.TTS
		}
		if gs, ok := fig.BestTTS(Fig8RAGS); ok {
			row.GSPStar, row.GSTTS = gs.PStar, gs.TTS
		}
		row.FamilyRatio = ratio(row.FATTS, row.FamilyTTS)
		row.GSRatio = ratio(row.FATTS, row.GSTTS)
		if row.FAPStar > 0 {
			row.PStarRatio = row.FamilyPStar / row.FAPStar
		} else if row.FamilyPStar > 0 {
			row.PStarRatio = math.Inf(1)
		}
		res.Rows = append(res.Rows, row)
		famRatios = append(famRatios, capInf(row.FamilyRatio))
		gsRatios = append(gsRatios, capInf(row.GSRatio))
		pRatios = append(pRatios, capInf(row.PStarRatio))
	}
	res.MedianFamilyTTSRatio = median(famRatios)
	res.MedianGSTTSRatio = median(gsRatios)
	res.MedianPStarRatio = median(pRatios)
	return res, nil
}

// ratio computes fa/ra handling never-succeeded (+Inf) endpoints.
func ratio(fa, ra float64) float64 {
	switch {
	case math.IsInf(ra, 1) && math.IsInf(fa, 1):
		return 1
	case math.IsInf(ra, 1):
		return 0
	case math.IsInf(fa, 1):
		return math.Inf(1)
	default:
		return fa / ra
	}
}

// capInf caps infinite ratios (FA never succeeded) for medians.
func capInf(x float64) float64 {
	if math.IsInf(x, 1) {
		return 1000
	}
	return x
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// WriteTable renders the comparison.
func (r *HeadlineResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Headline: RA vs FA at best s_p, 8-user %s (%d instances)\n",
		modulation.QAM16, r.Instances)
	writeRow(w, "instance", "fa_p", "fa_tts", "fam_p", "fam_tts", "gs_p", "gs_tts", "fam_ratio", "gs_ratio", "gs_dE%")
	for _, row := range r.Rows {
		writeRow(w, row.Instance, row.FAPStar, row.FATTS, row.FamilyPStar, row.FamilyTTS,
			row.GSPStar, row.GSTTS, row.FamilyRatio, row.GSRatio, row.GSDeltaE)
	}
	fmt.Fprintf(w, "median TTS ratio, RA(candidate family) vs FA: %.2f\n", r.MedianFamilyTTSRatio)
	fmt.Fprintf(w, "median TTS ratio, RA(greedy candidate) vs FA:  %.2f\n", r.MedianGSTTSRatio)
	fmt.Fprintf(w, "median p★ ratio,  RA(candidate family) vs FA: %.2f\n", r.MedianPStarRatio)
}
