package experiments

import (
	"fmt"
	"io"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

// Fig4Result reports the soft-information constraint scheme of §3.1 /
// Figure 4: how adding pairwise constraint terms toward the (correct)
// transmitted bits changes FA sampling quality, and how a wrong prior
// harms it — the paper's conclusion being that tuning the constraint
// factors on noisy analog hardware is impractical.
type Fig4Result struct {
	Users  int               `json:"users"`
	Scheme modulation.Scheme `json:"scheme"`
	Rows   []Fig4Row         `json:"rows"`
}

// Fig4Row is one constraint-weight setting.
type Fig4Row struct {
	Weight     float64 `json:"weight"`
	PriorWrong bool    `json:"prior_wrong"`
	PStar      float64 `json:"p_star"`
	MeanDeltaE float64 `json:"mean_delta_e"`
	// OptimumMoved reports whether the constrained problem's optimum no
	// longer matches the original optimum's bits.
	OptimumMoved bool `json:"optimum_moved"`
	// Hits of Samples is the success count behind PStar — the row's
	// sample vector for confidence intervals.
	Hits    int `json:"hits"`
	Samples int `json:"samples"`
}

// Figure4 runs the constraint study on one 16-QAM instance: the first
// two bit pairs get constraints à la the Figure 4 example, with weights
// swept, under both a correct and a deliberately wrong prior. Samples
// are drawn by FA on the constrained landscape and scored against the
// ORIGINAL problem's energies.
func Figure4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	const users = 5 // 20 variables: exhaustively checkable optimum shift
	in, err := instance.Synthesize(instance.Spec{Users: users, Scheme: modulation.QAM16, Seed: cfg.Seed ^ 0x44})
	if err != nil {
		return nil, err
	}
	root := cfg.root().SplitString("fig4")
	res := &Fig4Result{Users: users, Scheme: modulation.QAM16}
	base := in.Reduction.Ising.ToQUBO()
	groundBits := qubo.SpinsToBits(in.GroundSpins)
	sc, err := annealer.Forward(1, 0.41, 1)
	if err != nil {
		return nil, err
	}

	for _, wrong := range []bool{false, true} {
		for _, weight := range []float64{0, 0.5, 2, 8} {
			target := func(i int) int8 {
				if wrong {
					return 1 - groundBits[i]
				}
				return groundBits[i]
			}
			var cons []qubo.SoftConstraint
			if weight > 0 {
				cons = []qubo.SoftConstraint{
					{I: 0, J: 1, TargetI: target(0), TargetJ: target(1), Weight: weight},
					{I: 2, J: 3, TargetI: target(2), TargetJ: target(3), Weight: weight},
				}
			}
			constrained := qubo.ApplyConstraints(base, cons)

			opt, err := qubo.Exhaustive(constrained)
			if err != nil {
				return nil, err
			}
			moved := false
			for i := range opt.Bits {
				if opt.Bits[i] != groundBits[i] {
					moved = true
					break
				}
			}

			out, err := annealer.Run(constrained.ToIsing(),
				cfg.annealParams(sc, nil, cfg.Reads),
				root.SplitString(fmt.Sprintf("w%.1f-%v", weight, wrong)))
			if err != nil {
				return nil, err
			}
			var dSum float64
			hits := 0
			for _, smp := range out.Samples {
				e := in.Reduction.Ising.Energy(smp.Spins)
				dSum += metrics.DeltaEForIsing(in.Reduction.Ising, e, in.GroundEnergy)
				if e <= in.GroundEnergy+1e-6 {
					hits++
				}
			}
			res.Rows = append(res.Rows, Fig4Row{
				Weight:       weight,
				PriorWrong:   wrong,
				PStar:        float64(hits) / float64(len(out.Samples)),
				MeanDeltaE:   dSum / float64(len(out.Samples)),
				OptimumMoved: moved,
				Hits:         hits,
				Samples:      len(out.Samples),
			})
		}
	}
	return res, nil
}

// WriteTable renders the study.
func (r *Fig4Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 4 scheme: soft-information constraints, %d-user %s\n", r.Users, r.Scheme)
	writeRow(w, "prior", "weight", "p_star", "mean_dE%", "opt_moved")
	for _, row := range r.Rows {
		prior := "correct"
		if row.PriorWrong {
			prior = "wrong"
		}
		moved := 0
		if row.OptimumMoved {
			moved = 1
		}
		writeRow(w, prior, row.Weight, row.PStar, row.MeanDeltaE, moved)
	}
}

// RowFor fetches one (prior, weight) row.
func (r *Fig4Result) RowFor(wrong bool, weight float64) (Fig4Row, bool) {
	for _, row := range r.Rows {
		if row.PriorWrong == wrong && row.Weight == weight {
			return row, true
		}
	}
	return Fig4Row{}, false
}
