package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/modulation"
)

// tiny returns a configuration small enough for unit tests while keeping
// every sweep's structure.
func tiny() Config {
	return Config{
		Seed:      2020,
		Instances: 3,
		Reads:     120,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.Instances == 0 || c.Reads == 0 || c.SweepsPerMicrosecond == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
	q, f := Quick(), Full()
	if f.Reads <= q.Reads || f.Instances <= q.Instances {
		t.Fatal("Full is not larger than Quick")
	}
}

// TestFigure3Shape: the paper's observation — simplification is common on
// small problems and vanishes above 32–40 variables for every modulation.
func TestFigure3Shape(t *testing.T) {
	cfg := tiny()
	cfg.Instances = 15
	res, err := Figure3(cfg, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16} {
		var small, large float64
		var nSmall, nLarge int
		for _, p := range res.Points {
			if p.Scheme != s {
				continue
			}
			if p.Variables <= 12 {
				small += p.SimplifiedRatio
				nSmall++
			}
			if p.Variables >= 40 {
				large += p.SimplifiedRatio
				nLarge++
			}
		}
		if nSmall == 0 || nLarge == 0 {
			t.Fatalf("%v: sweep missing sizes", s)
		}
		small /= float64(nSmall)
		large /= float64(nLarge)
		if small < 0.5 {
			t.Fatalf("%v: small problems simplified at rate %v, expected common", s, small)
		}
		if large > 0.1 {
			t.Fatalf("%v: 40+ variable problems simplified at rate %v, expected ≈0", s, large)
		}
		if vp, ok := res.VanishingPoint(s, 0.1); !ok || vp > 44 {
			t.Fatalf("%v: vanishing point %d ok=%v", s, vp, ok)
		}
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Figure 3") {
		t.Fatal("table render missing header")
	}
}

// TestFigure6Shape: RA from the GS state concentrates samples at low ΔE%
// — better than both FA and RA from random states; RA-random is the
// worst.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := Figure6(cfg, 36)
	if err != nil {
		t.Fatal(err)
	}
	var faSum, rrSum, rgSum float64
	for _, s := range modulation.Schemes {
		fa := res.SeriesFor(s, Fig6FA)
		rr := res.SeriesFor(s, Fig6RARandom)
		rg := res.SeriesFor(s, Fig6RAGS)
		if fa == nil || rr == nil || rg == nil {
			t.Fatalf("%v: missing series", s)
		}
		if fa.Samples == 0 || rr.Samples == 0 || rg.Samples == 0 {
			t.Fatalf("%v: empty series", s)
		}
		// Per-modulation: the hybrid must not be far off FA (quenched
		// readout tightens every distribution, so gaps are small).
		if rg.MeanDeltaE > fa.MeanDeltaE*1.3+0.3 {
			t.Fatalf("%v: RA-GS mean ΔE%% %v far worse than FA %v", s, rg.MeanDeltaE, fa.MeanDeltaE)
		}
		faSum += fa.MeanDeltaE
		rrSum += rr.MeanDeltaE
		rgSum += rg.MeanDeltaE
	}
	// Aggregate over modulations (robust to per-point sampling noise):
	// the hybrid's distribution is the best of the three.
	if rgSum > faSum+1e-9 {
		t.Fatalf("aggregate RA-GS mean ΔE%% %v worse than FA %v", rgSum, faSum)
	}
	if rgSum > rrSum+1e-9 {
		t.Fatalf("aggregate RA-GS mean ΔE%% %v worse than RA-random %v", rgSum, rrSum)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "RA-GS") {
		t.Fatal("table render incomplete")
	}
}

// TestFigure7Shape: success probability degrades as the initial state's
// ΔE_IS% grows, and the expected cost rises.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("only %d ΔE_IS%% bins populated", len(res.Points))
	}
	if !res.Monotone() {
		t.Fatalf("success probability did not degrade with ΔE_IS%%: %+v", res.Points)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.DeltaEIS != 0 {
		t.Fatal("missing ΔE_IS%=0 reference point")
	}
	if first.PStar <= 0 {
		t.Fatal("RA from the ground state never succeeded")
	}
	if last.MeanDeltaE < first.MeanDeltaE {
		t.Fatalf("expected cost did not rise with ΔE_IS%%: %v vs %v", last.MeanDeltaE, first.MeanDeltaE)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Figure 7") {
		t.Fatal("table render missing header")
	}
}

// TestFigure8Shape: RA succeeds over a wider s_p window than FA, and the
// ground-state-initialized RA dominates the imperfect one.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raLo, raHi, raOK := res.FamilySuccessWindow()
	if !raOK {
		t.Fatal("RA family never found the ground state anywhere on the s_p grid")
	}
	if raHi-raLo < 0.1 {
		t.Fatalf("RA success window [%v, %v] implausibly narrow", raLo, raHi)
	}
	// The RA family's TTS at its best point must beat FA's (the headline).
	raBest, ok := res.BestFamilyTTS()
	if !ok {
		t.Fatal("no RA best point")
	}
	faBest, faOK := res.BestTTS(Fig8FA)
	if faOK && raBest.TTS > faBest.TTS {
		t.Fatalf("RA best TTS %v not better than FA best %v", raBest.TTS, faBest.TTS)
	}
	// Ground-state-initialized RA dominates the quality-1%% family curve
	// at most s_p (better initial states cannot hurt).
	ground := res.PointsFor(Fig8RAGround)
	good := res.PointsFor(Fig8FamilySolver(1))
	if len(ground) != len(good) {
		t.Fatal("curve lengths differ")
	}
	worse := 0
	for i := range ground {
		if ground[i].PStar+0.2 < good[i].PStar {
			worse++
		}
	}
	if worse > len(ground)/4 {
		t.Fatalf("ground-init RA worse than 1%%-init RA at %d/%d points", worse, len(ground))
	}
	// The GS curve exists and reports its candidate quality.
	if len(res.PointsFor(Fig8RAGS)) == 0 || res.GSDeltaE <= 0 {
		t.Fatalf("GS curve missing or GS ΔE%% = %v", res.GSDeltaE)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Figure 8") {
		t.Fatal("table render missing header")
	}
}

// TestHeadlineShape: the hybrid's advantage over FA — the ~2–10× claim.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	cfg.Instances = 2
	res, err := Headline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if math.IsNaN(res.MedianFamilyTTSRatio) || res.MedianFamilyTTSRatio < 1.2 {
		t.Fatalf("median family TTS ratio %v: hybrid not winning", res.MedianFamilyTTSRatio)
	}
	if res.MedianPStarRatio < 1 {
		t.Fatalf("median p★ ratio %v: hybrid not winning", res.MedianPStarRatio)
	}
	// The literal greedy-candidate ratio is recorded (its value is
	// surrogate-limited; see EXPERIMENTS.md).
	if math.IsNaN(res.MedianGSTTSRatio) {
		t.Fatal("GS ratio missing")
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "median") {
		t.Fatal("table render incomplete")
	}
}

// TestFigure4Shape: a correct prior must not move the optimum; a strong
// wrong prior must.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row, ok := res.RowFor(false, 8); !ok || row.OptimumMoved {
		t.Fatalf("correct strong prior moved the optimum: %+v", row)
	}
	if row, ok := res.RowFor(true, 8); !ok || !row.OptimumMoved {
		t.Fatalf("wrong strong prior failed to move the optimum: %+v", row)
	}
	// Baseline (weight 0) rows exist for both priors and agree.
	a, okA := res.RowFor(false, 0)
	bRow, okB := res.RowFor(true, 0)
	if !okA || !okB {
		t.Fatal("missing baselines")
	}
	if a.OptimumMoved || bRow.OptimumMoved {
		t.Fatal("unconstrained baseline moved the optimum")
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "Figure 4") {
		t.Fatal("table render missing header")
	}
}

// TestPipelineFigureShape: pipelining overlaps the stages — makespan
// speedup strictly above 1 and approaching 2 for balanced stages.
func TestPipelineFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("anneal-heavy")
	}
	cfg := tiny()
	res, err := PipelineFigure(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeRate < 0.8 {
		t.Fatalf("pipeline decode rate %v", res.DecodeRate)
	}
	if res.SpeedupMakespan <= 1.05 {
		t.Fatalf("pipelining speedup %v: stages did not overlap", res.SpeedupMakespan)
	}
	if res.SpeedupMakespan > 2.5 {
		t.Fatalf("speedup %v impossible for two stages", res.SpeedupMakespan)
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "speedup") {
		t.Fatal("table render incomplete")
	}
}
