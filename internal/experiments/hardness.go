package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/qubo"

	"repro/internal/modulation"
)

// HardnessRow aggregates instances whose channel condition number falls
// in one bucket.
type HardnessRow struct {
	// KappaLo/KappaHi bound the bucket (condition number).
	KappaLo, KappaHi float64
	Instances        int
	// MeanGSDeltaE is the greedy candidate's mean quality. Note ΔE%% is
	// normalized per instance, so it is reported for context but is not a
	// cross-bucket hardness signal; the success probabilities are.
	MeanGSDeltaE float64
	// FAPStar / HybridPStar are mean per-read success probabilities.
	FAPStar     float64
	HybridPStar float64
}

// HardnessResult is the channel-conditioning study — an extension
// experiment: ill-conditioned channels are simultaneously where linear
// detection collapses (the paper's motivation) and where the Ising
// landscape gets rugged, quantifying WHICH channel uses a base station
// should route to the quantum path.
type HardnessResult struct {
	Users  int
	Scheme modulation.Scheme
	Rows   []HardnessRow
}

// RunHardness draws channels across correlation strengths (to spread the
// conditioning), buckets instances by condition number, and measures
// greedy quality plus FA/hybrid success per bucket.
func RunHardness(cfg Config) (*HardnessResult, error) {
	cfg = cfg.withDefaults()
	const users = 4
	scheme := modulation.QAM16
	edges := []float64{1, 4, 10, 30, math.Inf(1)}
	rows := make([]HardnessRow, len(edges)-1)
	for i := range rows {
		rows[i] = HardnessRow{KappaLo: edges[i], KappaHi: edges[i+1]}
	}
	root := cfg.root().SplitString("hardness")
	perRho := cfg.Instances * 2
	for ri, rho := range []float64{0, 0.5, 0.8, 0.92} {
		ch := channel.Rayleigh
		insts, err := instance.Corpus(instance.Spec{
			Users: users, Scheme: scheme, Channel: ch, Correlation: rho,
		}, cfg.Seed^uint64(0x4A0+ri), perRho)
		if err != nil {
			return nil, err
		}
		for ii, in := range insts {
			kappa, err := in.Problem.H.ConditionNumber()
			if err != nil {
				return nil, err
			}
			bi := bucketOf(edges, kappa)
			if bi < 0 {
				continue
			}
			r := root.Split(uint64(ri*1_000 + ii))
			gs := qubo.GreedySearchIsing(in.Reduction.Ising, qubo.OrderDescending)
			d := metrics.DeltaEForIsing(in.Reduction.Ising, in.Reduction.Ising.Energy(gs), in.GroundEnergy)

			fa := &core.ForwardSolver{NumReads: cfg.Reads / 2, Config: cfg.annealConfig()}
			fo, err := fa.Solve(in.Reduction, r.SplitString("fa"))
			if err != nil {
				return nil, err
			}
			hy := &core.Hybrid{NumReads: cfg.Reads / 2, Config: cfg.annealConfig()}
			ho, err := hy.Solve(in.Reduction, r.SplitString("hybrid"))
			if err != nil {
				return nil, err
			}
			row := &rows[bi]
			row.Instances++
			row.MeanGSDeltaE += d
			row.FAPStar += metrics.SuccessProbability(fo.Samples, in.GroundEnergy, 1e-6)
			row.HybridPStar += metrics.SuccessProbability(ho.Samples, in.GroundEnergy, 1e-6)
		}
	}
	for i := range rows {
		if rows[i].Instances > 0 {
			n := float64(rows[i].Instances)
			rows[i].MeanGSDeltaE /= n
			rows[i].FAPStar /= n
			rows[i].HybridPStar /= n
		}
	}
	return &HardnessResult{Users: users, Scheme: scheme, Rows: rows}, nil
}

func bucketOf(edges []float64, v float64) int {
	for i := 0; i+1 < len(edges); i++ {
		if v >= edges[i] && v < edges[i+1] {
			return i
		}
	}
	return -1
}

// WriteTable renders the study.
func (r *HardnessResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Extension: detection hardness vs channel condition number (%d-user %s)\n", r.Users, r.Scheme)
	writeRow(w, "kappa", "n", "gs_dE%", "fa_p", "hyb_p")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%g-%g", row.KappaLo, row.KappaHi)
		writeRow(w, label, row.Instances, row.MeanGSDeltaE, row.FAPStar, row.HybridPStar)
	}
}

// PopulatedRows returns buckets that received instances.
func (r *HardnessResult) PopulatedRows() []HardnessRow {
	var out []HardnessRow
	for _, row := range r.Rows {
		if row.Instances > 0 {
			out = append(out, row)
		}
	}
	return out
}
