package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cran"
	"repro/internal/fleet"
)

// Tier shape shared by every C-RAN capacity run. The per-device rate is
// the calibration constant the offered-load axis is expressed against:
// at 4 reads per frame and 4-frame batches a 2000Q-class device programs
// once (10 ms) per ~16 reads, draining roughly 330 frames per simulated
// second.
const (
	cranDevicesPerShard = 4
	cranUEsPerCell      = 5
	cranDurationMicros  = 80_000.0
	cranReads           = 4
	cranPerDeviceFPS    = 330.0
)

// CRANLoadRow is one offered-load point of the capacity sweep: the full
// tier serving a city workload whose mean arrival rate is Multiplier ×
// the tier's estimated drain capacity.
type CRANLoadRow struct {
	Multiplier          float64 `json:"multiplier"`
	OfferedFPS          float64 `json:"offered_fps"`
	Frames              int     `json:"frames"`
	Served              int     `json:"served"`
	RouterShed          int     `json:"router_shed"`
	Shed                int     `json:"shed"`
	ShedRate            float64 `json:"shed_rate"`
	ThroughputPerSecond float64 `json:"throughput_fps"`
	P99LatencyMicros    float64 `json:"p99_latency_us"`
	DeadlineMissRate    float64 `json:"deadline_miss_rate"`
}

// CRANScalingRow is one shard count's serving performance on the shared
// overload workload.
type CRANScalingRow struct {
	Shards              int     `json:"shards"`
	Devices             int     `json:"devices"`
	Served              int     `json:"served"`
	Shed                int     `json:"shed"`
	ThroughputPerSecond float64 `json:"throughput_fps"`
	Speedup             float64 `json:"speedup_vs_1"`
	P99LatencyMicros    float64 `json:"p99_latency_us"`
	MeanUtilization     float64 `json:"mean_utilization"`
}

// CRANResult is the C-RAN serving-tier capacity study: a sharded
// multi-cell tier under a city-scale diurnal workload, swept over offered
// load (capacity curve) and over shard count at fixed overload (scaling
// curve).
type CRANResult struct {
	Placement       string           `json:"placement"`
	Shards          int              `json:"shards"`
	DevicesPerShard int              `json:"devices_per_shard"`
	Cells           int              `json:"cells"`
	Streams         int              `json:"streams"`
	Reads           int              `json:"reads"`
	Load            []CRANLoadRow    `json:"load_rows"`
	Scaling         []CRANScalingRow `json:"scaling_rows"`
}

// cranCity declares the study's city workload at one offered-load level:
// Cells × 5 UE streams of mixed-class traffic shaped by the default
// diurnal profile with moderate bursts.
func cranCity(cfg Config, cells int, rate, deadline float64) ([]cran.Request, error) {
	return cran.Workload{
		Cells: cells, UEsPerCell: cranUEsPerCell,
		DurationMicros:  cranDurationMicros,
		FramesPerSecond: rate,
		Diurnal:         cran.DefaultDiurnal(),
		BurstProb:       0.25, BurstFactor: 2.5,
		NumReads:       cranReads,
		DeadlineMicros: deadline,
		Seed:           cfg.Seed ^ 0xC8A9,
	}.Generate()
}

// cranPools builds n shards of the default heterogeneous 2000Q-class
// pool.
func cranPools(n int) [][]fleet.Device {
	pools := make([][]fleet.Device, n)
	for s := range pools {
		pools[s] = fleet.DefaultDevices(cranDevicesPerShard)
	}
	return pools
}

// RunCRAN runs the C-RAN serving-tier capacity experiment over a tier of
// `shards` × 4 simulated 2000Q-class QPUs (default 8 × 4 = 32) serving
// `cells` base stations of 5 UE streams each (default 200 cells, 1000
// streams). Two sweeps share the tier:
//
//   - Capacity: offered load at 0.5×/1×/2×/3× the tier's estimated drain
//     rate, with deadlines and admission backpressure on, reporting
//     throughput, p99 latency, and shed rate as the tier saturates.
//   - Scaling: one fixed workload at 2× the full tier's capacity served
//     by 1..shards shard tiers with shedding disabled, reporting
//     throughput speedup over the single-shard baseline.
//
// The workload shape matches BenchmarkCRANServe so the committed bench
// records and this figure describe the same experiment.
func RunCRAN(cfg Config, shards, cells int, placement cran.Placement) (*CRANResult, error) {
	cfg = cfg.withDefaults()
	if shards <= 0 {
		shards = 8
	}
	if cells <= 0 {
		cells = 200
	}
	streams := cells * cranUEsPerCell
	capacityFPS := float64(shards*cranDevicesPerShard) * cranPerDeviceFPS

	res := &CRANResult{
		Placement:       placement.String(),
		Shards:          shards,
		DevicesPerShard: cranDevicesPerShard,
		Cells:           cells,
		Streams:         streams,
		Reads:           cranReads,
	}

	// Capacity sweep: the full tier, deadlines and backpressure on.
	for _, mult := range []float64{0.5, 1, 2, 3} {
		reqs, err := cranCity(cfg, cells, mult*capacityFPS/float64(streams), 50_000)
		if err != nil {
			return nil, err
		}
		out, err := cran.Serve(context.Background(), cran.Config{
			Shards:    cranPools(shards),
			Placement: placement,
			Fleet: fleet.Config{
				BatchMax:         4,
				StreamQueueBound: 16,
			},
			AdmitQueueMicros: 25_000,
			EstReadMicros:    700,
			Seed:             cfg.Seed,
			Trace:            cfg.Trace,
			Metrics:          cfg.Metrics,
		}, reqs)
		if err != nil {
			return nil, err
		}
		rep := out.Report
		res.Load = append(res.Load, CRANLoadRow{
			Multiplier:          mult,
			OfferedFPS:          float64(len(reqs)) / cranDurationMicros * 1e6,
			Frames:              len(reqs),
			Served:              rep.Served,
			RouterShed:          rep.RouterShed,
			Shed:                rep.Shed,
			ShedRate:            rep.ShedRate,
			ThroughputPerSecond: rep.ThroughputPerSecond,
			P99LatencyMicros:    rep.P99LatencyMicros,
			DeadlineMissRate:    rep.DeadlineMissRate,
		})
	}

	// Scaling sweep: one overload workload (2× the FULL tier's capacity,
	// no deadlines, shedding off) served by growing shard counts, so
	// throughput is makespan-bound and the speedup isolates the shard
	// seam.
	scaleReqs, err := cranCity(cfg, cells, 2*capacityFPS/float64(streams), 0)
	if err != nil {
		return nil, err
	}
	sizes := []int{}
	for _, n := range []int{1, 2, 4, 8} {
		if n <= shards {
			sizes = append(sizes, n)
		}
	}
	if sizes[len(sizes)-1] != shards {
		sizes = append(sizes, shards)
	}
	var base float64
	for _, n := range sizes {
		out, err := cran.Serve(context.Background(), cran.Config{
			Shards:    cranPools(n),
			Placement: placement,
			Fleet: fleet.Config{
				BatchMax:         4,
				StreamQueueBound: 64,
			},
			Seed:    cfg.Seed,
			Trace:   cfg.Trace,
			Metrics: cfg.Metrics,
		}, scaleReqs)
		if err != nil {
			return nil, err
		}
		rep := out.Report
		var util float64
		for _, row := range rep.ShardRows {
			util += row.MeanUtilization
		}
		util /= float64(len(rep.ShardRows))
		if base == 0 {
			base = rep.ThroughputPerSecond
		}
		row := CRANScalingRow{
			Shards:              n,
			Devices:             rep.Devices,
			Served:              rep.Served,
			Shed:                rep.Shed,
			ThroughputPerSecond: rep.ThroughputPerSecond,
			P99LatencyMicros:    rep.P99LatencyMicros,
			MeanUtilization:     util,
		}
		if base > 0 {
			row.Speedup = rep.ThroughputPerSecond / base
		}
		res.Scaling = append(res.Scaling, row)
	}
	return res, nil
}

// WriteTable renders both sweeps.
func (r *CRANResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# C-RAN capacity: %d shards × %d QPUs, %d cells / %d streams, %d reads, placement %s\n",
		r.Shards, r.DevicesPerShard, r.Cells, r.Streams, r.Reads, r.Placement)
	writeRow(w, "x_capacity", "offer_fps", "frames", "served", "rtr_shed", "shed_rate", "thru_fps", "p99_lat", "miss_rate")
	for _, row := range r.Load {
		writeRow(w, row.Multiplier, row.OfferedFPS, row.Frames, row.Served, row.RouterShed,
			row.ShedRate, row.ThroughputPerSecond, row.P99LatencyMicros, row.DeadlineMissRate)
	}
	fmt.Fprintf(w, "\n# Shard scaling at 2x offered load, shedding off\n")
	writeRow(w, "shards", "devices", "served", "shed", "thru_fps", "speedup", "p99_lat", "util")
	for _, row := range r.Scaling {
		writeRow(w, row.Shards, row.Devices, row.Served, row.Shed,
			row.ThroughputPerSecond, row.Speedup, row.P99LatencyMicros, row.MeanUtilization)
	}
}
