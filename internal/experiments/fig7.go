package experiments

import (
	"fmt"
	"io"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Fig7Point is one ΔE_IS% bin of Figure 7: RA runs initialized at states
// of that quality, reporting the success probability and the expectation
// value of the (offset-free, ΔE%-scaled) cost over the anneal samples.
type Fig7Point struct {
	DeltaEIS   float64 `json:"delta_e_is"` // bin center, %
	PStar      float64 `json:"p_star"`
	MeanDeltaE float64 `json:"mean_delta_e"`
	Inits      int     `json:"inits"` // initial states contributing to the bin
	Samples    int     `json:"samples"`
	// PStars is the per-init success-probability sample vector PStar
	// averages — what a bootstrap resamples for the bin's CI.
	PStars []float64 `json:"p_stars"`
}

// Fig7Result is the full ΔE_IS% sweep on one instance.
type Fig7Result struct {
	Points []Fig7Point       `json:"points"`
	Users  int               `json:"users"`
	Scheme modulation.Scheme `json:"scheme"`
	Sp     float64           `json:"sp"`
}

// Figure7 studies the impact of the RA initial state's quality on one
// 8-user 16-QAM instance (§4.3): candidate initial states of varied
// ΔE_IS% are synthesized by randomly flipping spins of the known ground
// state (the paper harvests them from 750k anneal samples; flips cover
// the same 0–10% range directly), binned at δ = 2%, and each is used to
// initialize RA runs at the median-best s_p.
func Figure7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	const (
		users = 8
		sp    = 0.45
		delta = 2.0  // bin width, %
		maxD  = 12.0 // sweep range, %
	)
	in, err := instance.Synthesize(instance.Spec{Users: users, Scheme: modulation.QAM16, Seed: cfg.Seed ^ 0x77})
	if err != nil {
		return nil, err
	}
	root := cfg.root().SplitString("fig7")
	is := in.Reduction.Ising
	bins := int(maxD / delta)
	type agg struct {
		pSum, dSum float64
		inits      int
		samples    int
		pStars     []float64
	}
	aggs := make([]agg, bins)

	sc, err := annealer.Reverse(sp, 1)
	if err != nil {
		return nil, err
	}
	readsPerInit := cfg.Reads / 4
	if readsPerInit < 20 {
		readsPerInit = 20
	}
	// Synthesize initial states by random flips away from the ground
	// state: candidates are generated in bulk and credited to whichever
	// ΔE_IS% bin still needs initial states. Low-cost flips (spins with
	// the weakest local fields) are preferred so the low-ΔE bins populate
	// as densely as the paper's sample harvest does.
	initsPerBin := cfg.Instances * 4
	maxAttempts := initsPerBin * bins * 60
	remaining := bins * initsPerBin
	for attempt := 0; attempt < maxAttempts && remaining > 0; attempt++ {
		r := root.Split(uint64(attempt))
		state := append([]int8(nil), in.GroundSpins...)
		flips := 1 + r.Intn(6)
		for f := 0; f < flips; f++ {
			// Half the time, flip one of the cheapest spins; otherwise a
			// uniform one — together they cover the ΔE_IS% range.
			if r.Bool() {
				state[cheapestFlip(is, state, r)] *= -1
			} else {
				i := r.Intn(is.N)
				state[i] = -state[i]
			}
		}
		d := metrics.DeltaEForIsing(is, is.Energy(state), in.GroundEnergy)
		b := int(d / delta)
		if d <= 0 || b >= bins || aggs[b].inits >= initsPerBin {
			continue
		}
		res, err := annealer.Run(is, cfg.annealParams(sc, state, readsPerInit), r.SplitString("anneal"))
		if err != nil {
			return nil, err
		}
		aggs[b].inits++
		remaining--
		aggs[b].samples += len(res.Samples)
		p := metrics.SuccessProbability(res.Samples, in.GroundEnergy, 1e-6)
		aggs[b].pSum += p
		aggs[b].pStars = append(aggs[b].pStars, p)
		for _, smp := range res.Samples {
			aggs[b].dSum += metrics.DeltaEForIsing(is, smp.Energy, in.GroundEnergy)
		}
	}
	res := &Fig7Result{Users: users, Scheme: modulation.QAM16, Sp: sp}
	for bin := 0; bin < bins; bin++ {
		a := aggs[bin]
		if a.inits == 0 {
			continue
		}
		res.Points = append(res.Points, Fig7Point{
			DeltaEIS:   (float64(bin) + 0.5) * delta,
			PStar:      a.pSum / float64(a.inits),
			MeanDeltaE: a.dSum / float64(a.samples),
			Inits:      a.inits,
			Samples:    a.samples,
			PStars:     a.pStars,
		})
	}
	// Also include the ΔE_IS% = 0 reference point (ground-state init).
	gsRes, err := annealer.Run(is, cfg.annealParams(sc, in.GroundSpins, readsPerInit), root.SplitString("ground"))
	if err != nil {
		return nil, err
	}
	var dSum float64
	for _, smp := range gsRes.Samples {
		dSum += metrics.DeltaEForIsing(is, smp.Energy, in.GroundEnergy)
	}
	zero := Fig7Point{
		DeltaEIS:   0,
		PStar:      metrics.SuccessProbability(gsRes.Samples, in.GroundEnergy, 1e-6),
		MeanDeltaE: dSum / float64(len(gsRes.Samples)),
		Inits:      1,
		Samples:    len(gsRes.Samples),
	}
	zero.PStars = []float64{zero.PStar}
	res.Points = append([]Fig7Point{zero}, res.Points...)
	return res, nil
}

// WriteTable renders the sweep.
func (r *Fig7Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Figure 7: RA vs initial-state quality, %d-user %s, sp=%.2f\n", r.Users, r.Scheme, r.Sp)
	writeRow(w, "dE_IS%", "p_star", "mean_dE%", "inits", "samples")
	for _, p := range r.Points {
		writeRow(w, p.DeltaEIS, p.PStar, p.MeanDeltaE, p.Inits, p.Samples)
	}
}

// cheapestFlip returns the index of a spin whose flip costs the least
// energy given the current state (random tie-breaking among the 3
// cheapest).
func cheapestFlip(is *qubo.Ising, state []int8, r *rng.Source) int {
	type cand struct {
		i    int
		cost float64
	}
	best := [3]cand{{-1, 0}, {-1, 0}, {-1, 0}}
	for i := 0; i < is.N; i++ {
		c := is.FlipDelta(state, i)
		for k := 0; k < 3; k++ {
			if best[k].i < 0 || c < best[k].cost {
				copy(best[k+1:], best[k:2])
				best[k] = cand{i, c}
				break
			}
		}
	}
	k := r.Intn(3)
	if best[k].i < 0 {
		k = 0
	}
	return best[k].i
}

// Monotone reports whether success probability broadly degrades with
// initial-state quality: the first point's p★ must be within the top of
// the sweep and the last point must not exceed the first.
func (r *Fig7Result) Monotone() bool {
	if len(r.Points) < 2 {
		return false
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	return last.PStar <= first.PStar+1e-9
}
