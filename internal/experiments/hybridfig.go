package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
)

// HybridRow is one (pool, load) cell of the heterogeneous-fleet capacity
// study.
type HybridRow struct {
	Pool             string  `json:"pool"`
	Load             float64 `json:"load"`
	Served           int     `json:"served"`
	Shed             int     `json:"shed"`
	DeadlineHitRate  float64 `json:"deadline_hit_rate"`
	ThroughputPerSec float64 `json:"throughput_fps"`
	P99LatencyMicros float64 `json:"p99_latency_us"`
	RouteFallbacks   int     `json:"route_fallbacks,omitempty"`
	ClassicalFrames  int     `json:"classical_frames"`
}

// HybridResult is the heterogeneous-backend capacity experiment: the
// same mixed easy/hard deadline workload offered at growing load to an
// all-QPU pool, an all-classical surrogate pool, and a hybrid pool with
// hardness/deadline-aware routing.
type HybridResult struct {
	Streams int         `json:"streams"`
	Frames  int         `json:"frames"`
	Reads   int         `json:"reads"`
	Rows    []HybridRow `json:"rows"`
}

// Hybrid workload shape: even streams carry easy low-dimension frames
// whose deadlines sit far below a QPU's programming floor (latency-bound
// control traffic), odd streams carry the paper's hard 8-user 16-QAM
// frames with a service-bound deadline. A QPU-only fleet forfeits every
// easy frame to its programming overhead; a classical-only fleet drowns
// in the hard frames' Monte-Carlo cost. Routing on hardness and deadline
// slack is the only way to win both.
const (
	hybridStreams      = 8
	hybridPerStream    = 6
	hybridEasyDeadline = 5_000.0  // μs — under the 10 ms programming floor
	hybridHardDeadline = 60_000.0 // μs — tight for a backlogged classical pool
	hybridBaseInterval = 2_000.0  // μs between one stream's frames at load 1
)

// HybridReads is the per-frame read count of the hybrid study — exported
// so the validation gate can account the reads it consumes.
const HybridReads = 30

// HybridWorkload builds the mixed easy/hard request set at the given
// load multiplier (arrival intervals shrink as load grows). The workload
// is a pure function of seed, so baselines and the hybrid pool serve
// bit-identical requests.
func HybridWorkload(cfg Config, seed uint64, load float64) ([]fleet.Request, error) {
	if load <= 0 {
		load = 1
	}
	hard, err := instance.Corpus(instance.Spec{Users: 8, Scheme: modulation.QAM16}, seed^0xA1, 4)
	if err != nil {
		return nil, err
	}
	easy, err := instance.Corpus(instance.Spec{Users: 3, Scheme: modulation.QPSK}, seed^0xB2, 4)
	if err != nil {
		return nil, err
	}
	gs := core.GreedyModule{}
	wr := cfg.root().SplitString("hybrid/workload").Split(seed)
	var reqs []fleet.Request
	for s := 0; s < hybridStreams; s++ {
		for q := 0; q < hybridPerStream; q++ {
			in := hard[(s+q)%len(hard)]
			deadline := hybridHardDeadline
			if s%2 == 0 {
				in = easy[(s+q)%len(easy)]
				deadline = hybridEasyDeadline
			}
			init, err := gs.Initialize(in.Reduction, wr.Split(uint64(s*hybridPerStream+q)))
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * hybridBaseInterval / load,
				Deadline:     deadline,
				Problem:      in.Reduction.Ising,
				InitialState: init,
			})
		}
	}
	return reqs, nil
}

// HybridPools returns the three contending pools at matched size: four
// QPUs, four classical workers (2 PT + 2 SA), and a 2+1+1 hybrid.
func HybridPools() []struct {
	Name    string
	Devices []fleet.Device
	Route   fleet.RoutePolicy
} {
	return []struct {
		Name    string
		Devices []fleet.Device
		Route   fleet.RoutePolicy
	}{
		{"all-qpu", fleet.DefaultDevices(4), fleet.RouteAny},
		{"all-classical", fleet.HybridDevices(0, 2, 2), fleet.RouteAny},
		{"hybrid", fleet.HybridDevices(2, 1, 1), fleet.RouteHybrid},
	}
}

// ServeHybridPool serves one request set on one pool and returns the
// fleet report. The router config is zero for the study itself; the
// validation harness passes a forced class to simulate routing loss.
func ServeHybridPool(cfg Config, devices []fleet.Device, route fleet.RoutePolicy, router fleet.RouterConfig, seed uint64, reqs []fleet.Request) (*fleet.Report, error) {
	out, err := fleet.Serve(context.Background(), fleet.Config{
		Devices:          devices,
		Route:            route,
		Router:           router,
		NumReads:         HybridReads,
		BatchMax:         4,
		StreamQueueBound: 64,
		Seed:             seed,
		Trace:            cfg.Trace,
		Metrics:          cfg.Metrics,
	}, reqs)
	if err != nil {
		return nil, err
	}
	return &out.Report, nil
}

// RunHybrid runs the capacity study: each pool serves the identical
// workload at load multipliers 1×, 1.5×, and 2×.
func RunHybrid(cfg Config) (*HybridResult, error) {
	cfg = cfg.withDefaults()
	res := &HybridResult{
		Streams: hybridStreams,
		Frames:  hybridStreams * hybridPerStream,
		Reads:   HybridReads,
	}
	for _, load := range []float64{1, 1.5, 2} {
		reqs, err := HybridWorkload(cfg, cfg.Seed^0x4B1D, load)
		if err != nil {
			return nil, err
		}
		for _, pool := range HybridPools() {
			rep, err := ServeHybridPool(cfg, pool.Devices, pool.Route, fleet.RouterConfig{}, cfg.Seed, reqs)
			if err != nil {
				return nil, err
			}
			classical := 0
			for _, b := range rep.Backends {
				if b.Backend != fleet.BackendQPUSim.String() {
					classical += b.Frames
				}
			}
			res.Rows = append(res.Rows, HybridRow{
				Pool:             pool.Name,
				Load:             load,
				Served:           rep.Served,
				Shed:             rep.Shed,
				DeadlineHitRate:  1 - rep.DeadlineMissRate,
				ThroughputPerSec: rep.ThroughputPerSecond,
				P99LatencyMicros: rep.P99LatencyMicros,
				RouteFallbacks:   rep.RouteFallbacks,
				ClassicalFrames:  classical,
			})
		}
	}
	return res, nil
}

// WriteTable renders the study.
func (r *HybridResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Hybrid fleet capacity: %d streams × %d frames (even: easy %gms deadlines, odd: hard %gms), %d reads\n",
		hybridStreams, hybridPerStream, hybridEasyDeadline/1000, hybridHardDeadline/1000, r.Reads)
	writeRow(w, "pool", "load", "served", "shed", "hit_rate", "thru_fps", "p99_lat", "classical")
	for _, row := range r.Rows {
		writeRow(w, row.Pool, row.Load, row.Served, row.Shed, row.DeadlineHitRate,
			row.ThroughputPerSec, row.P99LatencyMicros, row.ClassicalFrames)
	}
}
