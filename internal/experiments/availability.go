package experiments

import (
	"fmt"
	"io"

	"repro/internal/annealer"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// AvailabilityRow is one injected-fault rate's end-to-end service quality
// through the retry+fallback pipeline.
type AvailabilityRow struct {
	// ProgrammingFailureRate is the injected per-call QPU failure rate.
	ProgrammingFailureRate float64
	// Completed counts frames that produced an answer (must equal Frames:
	// the fallback guarantee), Errors the frames that did not.
	Completed, Errors int
	// Retries / Fallbacks are summed over frames.
	Retries, Fallbacks int
	FallbackRate       float64
	// DecodeRate is the fraction of frames decoded to the transmitted
	// symbols — the quality that degrades as fallbacks take over.
	DecodeRate float64
	// QuantumRate is the fraction of frames whose answer used the quantum
	// stage (1 − fallback rate).
	QuantumRate float64
	// MeanLatencyMicros and DeadlineMissRate come from the modelled
	// schedule, including retry backoff and failed-attempt charges.
	MeanLatencyMicros float64
	DeadlineMissRate  float64
}

// AvailabilityResult is the soft-failure study: availability of the
// staged classical-quantum pipeline as the simulated QPU degrades from
// healthy to failing more than half its programming cycles.
type AvailabilityResult struct {
	Rows           []AvailabilityRow
	Frames         int
	MaxAttempts    int
	BackoffMicros  float64
	DeadlineMicros float64
}

// RunAvailability sweeps the QPU programming-failure rate for a fixed
// frame stream through the GS→RA pipeline with retry+fallback enabled.
// The paper's Challenge 3 pipelines stages against a hard ARQ deadline;
// this harness shows the robustness corollary: with bounded retries and
// the classical GS candidate as fallback, every frame is answered at any
// fault rate — fault pressure converts quality (decode rate, quantum
// share), not availability.
func RunAvailability(cfg Config) (*AvailabilityResult, error) {
	cfg = cfg.withDefaults()
	const (
		users          = 4
		frames         = 24
		intervalMicros = 400.0
		deadlineMicros = 4_000.0
		reads          = 60
		maxAttempts    = 3
		backoffMicros  = 25.0
	)
	insts, err := instance.Corpus(instance.Spec{Users: users, Scheme: modulation.QAM16},
		cfg.Seed^0xFA17, frames)
	if err != nil {
		return nil, err
	}
	res := &AvailabilityResult{
		Frames: frames, MaxAttempts: maxAttempts,
		BackoffMicros: backoffMicros, DeadlineMicros: deadlineMicros,
	}
	for _, rate := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		qcfg := cfg.annealConfig()
		qcfg.Faults = annealer.FaultModel{ProgrammingFailureRate: rate}
		p := &pipeline.Pipeline{Stages: []pipeline.Stage{
			&pipeline.ClassicalStage{Rng: rng.New(cfg.Seed ^ 5)},
			&pipeline.Retry{
				Stage: &pipeline.QuantumStage{
					NumReads: reads,
					Config:   qcfg,
					Rng:      rng.New(cfg.Seed ^ 6),
				},
				MaxAttempts:   maxAttempts,
				BackoffMicros: backoffMicros,
				Fallback:      &pipeline.ClassicalFallback{},
				Trace:         cfg.Trace,
			},
		}, Trace: cfg.Trace, Metrics: cfg.Metrics}
		fr, err := pipeline.GenerateFrames(insts, intervalMicros, deadlineMicros)
		if err != nil {
			return nil, err
		}
		processed, err := p.Run(fr)
		if err != nil {
			return nil, err
		}
		row := AvailabilityRow{ProgrammingFailureRate: rate}
		decoded := 0
		for _, f := range processed {
			if f.Err != nil {
				row.Errors++
				continue
			}
			row.Completed++
			if f.Payload.(*pipeline.DetectionPayload).SymbolErrors == 0 {
				decoded++
			}
		}
		if row.Errors > 0 {
			return nil, fmt.Errorf("availability: %d frames errored at rate %.2f — fallback guarantee violated", row.Errors, rate)
		}
		rep, err := p.Schedule(processed)
		if err != nil {
			return nil, err
		}
		row.Retries = rep.Retries
		row.Fallbacks = rep.Fallbacks
		row.FallbackRate = rep.FallbackRate
		row.QuantumRate = 1 - rep.FallbackRate
		row.DecodeRate = float64(decoded) / float64(frames)
		row.MeanLatencyMicros = rep.MeanLatency
		row.DeadlineMissRate = rep.DeadlineMissRate
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the study.
func (r *AvailabilityResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# Availability under QPU soft failure (%d frames, ≤%d attempts, %.0f μs backoff, %.0f μs deadline)\n",
		r.Frames, r.MaxAttempts, r.BackoffMicros, r.DeadlineMicros)
	writeRow(w, "fail_rate", "done", "retries", "fallbacks", "quantum", "decode", "mean_lat", "miss_rate")
	for _, row := range r.Rows {
		writeRow(w, row.ProgrammingFailureRate, row.Completed, row.Retries,
			row.Fallbacks, row.QuantumRate, row.DecodeRate,
			row.MeanLatencyMicros, row.DeadlineMissRate)
	}
}
