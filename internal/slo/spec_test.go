package slo

import (
	"strings"
	"testing"
)

// feedPhase pushes `n` events with `bad` of them bad into tick `idx`.
func feedPhase(rs *RatioSeries, idx int64, n, bad int) {
	at := (float64(idx) + 0.5) * testTick
	for i := 0; i < n; i++ {
		rs.Observe(at, i < bad)
	}
}

func testSpec(t *testing.T) Spec {
	t.Helper()
	sp, err := Spec{
		Name: "latency", Kind: KindLatency, LatencyMicros: 1000, Budget: 0.01,
		FastTicks: 1, SlowTicks: 4, FastBurn: 10, SlowBurn: 5, MinEvents: 10,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestBurnRateLifecycle drives one spec through healthy traffic, a
// sustained breach, and recovery, checking the typed transition sequence
// idle → firing → idle (with the slow window draining behind the fast
// one).
func TestBurnRateLifecycle(t *testing.T) {
	sp := testSpec(t)
	rs := NewRatioSeries(testTick)
	// Ticks 0-3: healthy (1% bad, exactly budget: burn 1 < thresholds).
	for i := int64(0); i < 4; i++ {
		feedPhase(rs, i, 100, 1)
	}
	// Ticks 4-6: breach — 30% bad (burn 30 ≥ fast 10, slow catches up).
	for i := int64(4); i < 7; i++ {
		feedPhase(rs, i, 100, 30)
	}
	// Ticks 7-12: recovery.
	for i := int64(7); i < 13; i++ {
		feedPhase(rs, i, 100, 0)
	}
	ts := evalSpec(sp, "", rs, testTick)
	if len(ts) < 2 {
		t.Fatalf("expected at least fire+resolve, got %+v", ts)
	}
	if ts[0].To != StateFiring {
		t.Fatalf("first transition %+v, want firing", ts[0])
	}
	// Fast window = 1 tick at 30% bad: burn 30 ≥ 10. Slow window at tick 4:
	// (1·3 + 30)/400 = 8.25% → burn 8.25 ≥ 5 → fires already at tick 4's
	// boundary.
	if ts[0].AtMicros != 5*testTick {
		t.Fatalf("fired at %g, want %g", ts[0].AtMicros, 5*testTick)
	}
	last := ts[len(ts)-1]
	if last.To != StateIdle {
		t.Fatalf("alert never resolved: %+v", ts)
	}
	for _, tr := range ts {
		if tr.SLO != "latency" {
			t.Fatalf("wrong slo name %q", tr.SLO)
		}
	}
}

// TestBurnRateMinEventsGate: a breach over too few events must not page.
func TestBurnRateMinEventsGate(t *testing.T) {
	sp := testSpec(t)
	rs := NewRatioSeries(testTick)
	feedPhase(rs, 0, 5, 5) // 100% bad, but 5 < MinEvents=10 in slow window
	for _, tr := range evalSpec(sp, "", rs, testTick) {
		if tr.To == StateFiring {
			t.Fatalf("fired on %d events: %+v", 5, tr)
		}
	}
}

// TestBurnRatePendingState: fast window breaching while the slow window
// stays inside budget yields pending, not firing.
func TestBurnRatePendingState(t *testing.T) {
	sp := testSpec(t)
	rs := NewRatioSeries(testTick)
	// Long healthy history fills the slow window.
	for i := int64(0); i < 3; i++ {
		feedPhase(rs, i, 200, 0)
	}
	// One sharp single-tick blip: fast burn high, slow burn diluted.
	feedPhase(rs, 3, 20, 4) // fast: 20% → burn 20; slow: 4/620 ≈ 0.65% → burn < 5
	ts := evalSpec(sp, "", rs, testTick)
	found := false
	for _, tr := range ts {
		if tr.To == StateFiring {
			t.Fatalf("blip paged: %+v", tr)
		}
		if tr.To == StatePending {
			found = true
		}
	}
	if !found {
		t.Fatalf("no pending transition: %+v", ts)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{},                                       // no name
		{Name: "x", Kind: KindLatency},           // latency without threshold
		{Name: "x", Kind: KindShed, Budget: 1.5}, // bad budget
		{Name: "x", Kind: KindShed, FastTicks: 5, SlowTicks: 2}, // slow < fast
		{Name: "x", Kind: KindShed, FastBurn: -1},               // bad burn
	}
	for i, sp := range cases {
		if _, err := sp.withDefaults(); err == nil {
			t.Fatalf("case %d (%+v) validated", i, sp)
		}
	}
}

func TestDefaultSpecs(t *testing.T) {
	specs := DefaultSpecs(50_000)
	if len(specs) != 6 {
		t.Fatalf("want 6 default specs, got %d", len(specs))
	}
	perShard := 0
	for _, sp := range specs {
		if _, err := sp.withDefaults(); err != nil {
			t.Fatalf("default spec %q invalid: %v", sp.Name, err)
		}
		if sp.Scope == ScopePerShard {
			perShard++
		}
	}
	if perShard != 3 {
		t.Fatalf("want 3 per-shard specs, got %d", perShard)
	}
}

func TestWriteAlertsJSONL(t *testing.T) {
	var sb strings.Builder
	err := WriteAlertsJSONL(&sb, []AlertTransition{
		{AtMicros: 5000, SLO: "latency", From: StateIdle, To: StateFiring, FastBurn: 30, SlowBurn: 8, BadSlow: 33, TotalSlow: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{`"at_us":5000`, `"slo":"latency"`, `"to":"firing"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("JSONL missing %s:\n%s", want, got)
		}
	}
}
