package slo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDashboard renders the snapshot as a plain-text operator view:
// run overview, per-shard SLI table, per-cell latency table, device
// utilization and health, the burn-rate alert timeline, and the top-K
// slowest frames with their critical-path attribution. Deterministic:
// same snapshot, same bytes.
func (s *Snapshot) WriteDashboard(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "SLO dashboard  window [%.0f, %.0f] us  tick %.0f us  slide %d ticks\n",
		s.StartMicros, s.EndMicros, s.Config.TickMicros, s.Config.SlideTicks)
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "== service levels ==")
	fmt.Fprintf(bw, "%-8s %7s %7s %6s %9s %9s %9s %9s %12s %9s\n",
		"scope", "served", "answers", "shed", "p50_us", "p99_us", "max_us", "q_p99_us", "availability", "shed_rate")
	writeScope := func(sli ScopeSLI) {
		scope := sli.Scope
		if scope == "" {
			scope = "tier"
		} else if scope != "router" {
			scope = "shard " + scope
		}
		fmt.Fprintf(bw, "%-8s %7d %7d %6d %9.1f %9.1f %9.1f %9.1f %12.5f %9.5f\n",
			scope, sli.Served, sli.Answers, sli.Shed,
			sli.LatencyP50, sli.LatencyP99, sli.LatencyMax, sli.QueueP99,
			sli.Availability, sli.ShedRate)
	}
	writeScope(s.Tier)
	for _, sli := range s.Shards {
		writeScope(sli)
	}
	fmt.Fprintln(bw)

	if len(s.Cells) > 1 {
		fmt.Fprintln(bw, "== per-cell latency ==")
		fmt.Fprintf(bw, "%-6s %7s %9s %9s\n", "cell", "served", "p50_us", "p99_us")
		for _, c := range s.Cells {
			fmt.Fprintf(bw, "%-6d %7d %9.1f %9.1f\n", c.Cell, c.Served, c.LatencyP50, c.LatencyP99)
		}
		fmt.Fprintln(bw)
	}

	if len(s.LatencySliding) > 0 {
		fmt.Fprintln(bw, "== sliding p99 latency (tier) ==")
		fmt.Fprintf(bw, "%-22s %7s %9s %9s\n", "window_us", "count", "p50_us", "p99_us")
		for _, b := range s.LatencySliding {
			fmt.Fprintf(bw, "[%9.0f,%9.0f) %7d %9.1f %9.1f\n", b.T0, b.T1, b.Count, b.P50, b.P99)
		}
		fmt.Fprintln(bw)
	}

	if len(s.Utilization) > 0 {
		fmt.Fprintln(bw, "== device utilization ==")
		fmt.Fprintf(bw, "%-14s %11s %6s %6s\n", "device", "busy_us", "util", "peak")
		for _, u := range s.Utilization {
			fmt.Fprintf(bw, "%-14s %11.1f %6.3f %6.3f\n", devName(u.Shard, u.Device), u.BusyMicros, u.Utilization, u.PeakUtilization)
		}
		fmt.Fprintln(bw)
	}

	if len(s.Devices) > 0 {
		fmt.Fprintln(bw, "== device health ==")
		fmt.Fprintf(bw, "%-14s %7s %12s %12s %8s %8s %7s %s\n",
			"device", "frames", "ewma_resid", "ewma_cbr", "z_resid", "z_cbr", "score", "status")
		for _, h := range s.Devices {
			status := "ok"
			if h.Suspect {
				status = "SUSPECT"
			}
			fmt.Fprintf(bw, "%-14s %7d %12.4f %12.4f %8.2f %8.2f %7.3f %s\n",
				devName(h.Shard, h.Device), h.Frames, h.EWMAResidual, h.EWMAChainBreak,
				clipZ(h.ZResidual), clipZ(h.ZChainBreak), h.Score, status)
		}
		fmt.Fprintln(bw)
	}

	fmt.Fprintln(bw, "== alerts ==")
	if len(s.Alerts) == 0 {
		fmt.Fprintln(bw, "(no transitions)")
	} else {
		for _, t := range s.Alerts {
			scope := t.Scope
			if scope == "" {
				scope = "tier"
			}
			fmt.Fprintf(bw, "%10.0f us  %-20s %-12s %-7s -> %-7s  fast=%.2fx slow=%.2fx (%d/%d bad in slow window)\n",
				t.AtMicros, t.SLO, scope, t.From, t.To, t.FastBurn, t.SlowBurn, t.BadSlow, t.TotalSlow)
		}
	}
	fmt.Fprintln(bw)

	if k := s.Config.TopSlow; k > 0 && len(s.Frames) > 0 {
		slow := append([]FramePath(nil), s.Frames...)
		sort.SliceStable(slow, func(a, b int) bool {
			if slow[a].Latency != slow[b].Latency {
				return slow[a].Latency > slow[b].Latency
			}
			if slow[a].Stream != slow[b].Stream {
				return slow[a].Stream < slow[b].Stream
			}
			return slow[a].Seq < slow[b].Seq
		})
		if len(slow) > k {
			slow = slow[:k]
		}
		fmt.Fprintf(bw, "== top %d slow frames (critical path) ==\n", len(slow))
		fmt.Fprintf(bw, "%-18s %10s %9s %9s %9s %9s %9s %5s %s\n",
			"frame", "latency_us", "queue", "program", "wait", "anneal", "readout", "retry", "dominant")
		for _, f := range slow {
			id := fmt.Sprintf("s%d/%d", f.Stream, f.Seq)
			if f.Shard != "" {
				id = "sh" + f.Shard + ":" + id
			}
			retry := ""
			if f.Retried {
				retry = "yes"
			}
			fmt.Fprintf(bw, "%-18s %10.1f %9.1f %9.1f %9.1f %9.1f %9.1f %5s %s\n",
				id, f.Latency, f.Queue, f.Program, f.BatchWait, f.Anneal, f.Readout, retry, f.Dominant)
		}
	}
	return bw.Flush()
}

// devName renders a (shard, device) pair compactly.
func devName(shard string, dev int) string {
	if shard == "" {
		return fmt.Sprintf("qpu%d", dev)
	}
	return fmt.Sprintf("sh%s:qpu%d", shard, dev)
}

// clipZ bounds the sentinel huge-z values to keep columns readable.
func clipZ(z float64) float64 {
	if z > 999 {
		return 999
	}
	if z < -999 {
		return -999
	}
	return z
}

// RenderAlertTimeline returns the alert transitions as a compact
// multi-line string (used by -slo-report outputs).
func RenderAlertTimeline(ts []AlertTransition) string {
	if len(ts) == 0 {
		return "(no alert transitions)\n"
	}
	var sb strings.Builder
	for _, t := range ts {
		scope := t.Scope
		if scope == "" {
			scope = "tier"
		}
		fmt.Fprintf(&sb, "%10.0f us  %-20s %-12s %s -> %s\n", t.AtMicros, t.SLO, scope, t.From, t.To)
	}
	return sb.String()
}
