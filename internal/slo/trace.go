package slo

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
)

// ParseError is a typed per-line trace parse failure.
type ParseError struct {
	// Line is the 1-based JSONL line number.
	Line int
	// Err is the underlying JSON error.
	Err error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("slo: trace line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ParseStats summarizes one ParseTrace call — what the lenient mode
// tolerated is reported, never silently dropped.
type ParseStats struct {
	// Lines is the number of non-blank input lines.
	Lines int
	// Records is the number of parsed records (manifest line included).
	Records int
	// Skipped counts malformed lines dropped in lenient mode.
	Skipped int
	// Duplicates counts lines byte-identical to an earlier line. They are
	// kept (the analyzer sees them), but a nonzero count flags a
	// corrupted or doubly-concatenated trace.
	Duplicates int
	// OutOfOrder counts adjacent input pairs that violated the exporter's
	// deterministic (T0, Name, attrs) order; ParseTrace restores the
	// order, so a nonzero count is informational.
	OutOfOrder int
}

// maxTraceLine bounds one JSONL line (16 MiB — far above any real record,
// small enough that a corrupt unterminated line fails fast).
const maxTraceLine = 16 << 20

// ParseTrace reads a JSONL trace. In strict mode the first malformed
// line aborts with a *ParseError; in lenient mode malformed lines are
// counted and skipped (a truncated tail parses to the records before the
// cut). Records are returned re-sorted into the exporter's deterministic
// order, with the manifest record (if any) first, so downstream analysis
// is insensitive to line shuffling.
func ParseTrace(r io.Reader, strict bool) ([]telemetry.Record, ParseStats, error) {
	var (
		stats    ParseStats
		manifest []telemetry.Record
		records  []telemetry.Record
		seen     = make(map[string]struct{})
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxTraceLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		stats.Lines++
		if _, dup := seen[string(line)]; dup {
			stats.Duplicates++
		} else {
			seen[string(line)] = struct{}{}
		}
		var rec telemetry.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if strict {
				return nil, stats, &ParseError{Line: lineNo, Err: err}
			}
			stats.Skipped++
			continue
		}
		stats.Records++
		if rec.Type == "manifest" {
			manifest = append(manifest, rec)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		if strict {
			return nil, stats, &ParseError{Line: lineNo + 1, Err: err}
		}
		// Lenient: an over-long or truncated tail loses everything after
		// the failure point but keeps what parsed.
		stats.Skipped++
	}
	stats.OutOfOrder = countInversions(records)
	sortRecords(records)
	return append(manifest, records...), stats, nil
}

// recordKey is the exporter's deterministic sort key.
func recordKey(r telemetry.Record) (float64, string, string) {
	attrs, _ := json.Marshal(r.Attrs)
	return r.T0, r.Name, string(attrs)
}

// sortRecords orders records exactly as telemetry.Tracer.Records does:
// by (T0, Name, marshaled attrs).
func sortRecords(recs []telemetry.Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		ti, ni, ai := recordKey(recs[i])
		tj, nj, aj := recordKey(recs[j])
		if ti != tj {
			return ti < tj
		}
		if ni != nj {
			return ni < nj
		}
		return ai < aj
	})
}

// countInversions counts adjacent pairs out of exporter order.
func countInversions(recs []telemetry.Record) int {
	n := 0
	for i := 1; i < len(recs); i++ {
		ti, ni, ai := recordKey(recs[i-1])
		tj, nj, aj := recordKey(recs[i])
		if ti > tj || (ti == tj && (ni > nj || (ni == nj && ai > aj))) {
			n++
		}
	}
	return n
}
