package slo

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Config tunes one monitoring pass.
type Config struct {
	// TickMicros is the tumbling window width in simulated μs
	// (default 5000).
	TickMicros float64
	// SlideTicks is the sliding window length in ticks (default 4).
	SlideTicks int
	// Specs are the SLOs to evaluate (empty: SLIs only, no alerts).
	// DefaultSpecs(deadline) is the serving tier's standard set.
	Specs []Spec
	// Health tunes device health scoring.
	Health HealthConfig
	// UEsPerCell recovers the cell id from a packed fleet stream id
	// (cell = stream / UEsPerCell; default 1024, matching cran.StreamID).
	// Set negative to disable per-cell tables.
	UEsPerCell int
	// TopSlow is how many slowest frames the dashboard details
	// (default 10).
	TopSlow int
}

func (c Config) withDefaults() (Config, error) {
	if c.TickMicros == 0 {
		c.TickMicros = 5000
	}
	if c.TickMicros <= 0 || math.IsNaN(c.TickMicros) || math.IsInf(c.TickMicros, 0) {
		return c, fmt.Errorf("slo: bad tick %g", c.TickMicros)
	}
	if c.SlideTicks == 0 {
		c.SlideTicks = 4
	}
	if c.SlideTicks < 1 {
		return c, fmt.Errorf("slo: slide ticks %d < 1", c.SlideTicks)
	}
	if c.UEsPerCell == 0 {
		c.UEsPerCell = 1024
	}
	if c.TopSlow == 0 {
		c.TopSlow = 10
	}
	specs := make([]Spec, len(c.Specs))
	for i, sp := range c.Specs {
		var err error
		if specs[i], err = sp.withDefaults(); err != nil {
			return c, err
		}
	}
	c.Specs = specs
	return c, nil
}

// ScopeSLI is one scope's (whole tier, or one shard's) service levels
// over the full run.
type ScopeSLI struct {
	// Scope is "" for the tier aggregate or the shard label.
	Scope string `json:"scope,omitempty"`
	// Served counts frames that completed service (fleet/frame spans).
	Served int `json:"served"`
	// Answers counts every answered frame (served + shed + router-shed).
	Answers int `json:"answers"`
	// Fallback counts answers from the classical-fallback rung.
	Fallback int `json:"fallback"`
	// Shed counts shed frames (fleet admission/retry or router).
	Shed int `json:"shed"`
	// Latency percentiles over served frames (μs).
	LatencyP50 float64 `json:"latency_p50_us"`
	LatencyP99 float64 `json:"latency_p99_us"`
	LatencyMax float64 `json:"latency_max_us"`
	// Queue percentiles over served frames' queue delay (μs) — the queue
	// drain time SLI.
	QueueP50 float64 `json:"queue_p50_us"`
	QueueP99 float64 `json:"queue_p99_us"`
	// Availability is 1 − Fallback/Answers.
	Availability float64 `json:"availability"`
	// ShedRate is Shed/Answers.
	ShedRate float64 `json:"shed_rate"`
}

// CellSLI is one cell's latency summary.
type CellSLI struct {
	Cell       int     `json:"cell"`
	Served     int     `json:"served"`
	LatencyP50 float64 `json:"latency_p50_us"`
	LatencyP99 float64 `json:"latency_p99_us"`
}

// DeviceUtil is one device's busy fraction over the observed span.
type DeviceUtil struct {
	Shard       string  `json:"shard,omitempty"`
	Device      int     `json:"device"`
	BusyMicros  float64 `json:"busy_us"`
	Utilization float64 `json:"utilization"`
	// PeakUtilization is the highest single-tick busy fraction.
	PeakUtilization float64 `json:"peak_utilization"`
}

// Snapshot is one completed monitoring pass.
type Snapshot struct {
	Config Config `json:"-"`
	// StartMicros/EndMicros bound the observed simulated time.
	StartMicros float64 `json:"start_us"`
	EndMicros   float64 `json:"end_us"`
	// Tier aggregates everything; Shards holds one entry per shard label.
	Tier   ScopeSLI   `json:"tier"`
	Shards []ScopeSLI `json:"shards,omitempty"`
	Cells  []CellSLI  `json:"cells,omitempty"`
	// LatencyTumbling/LatencySliding are the tier-wide windowed latency
	// series.
	LatencyTumbling []Bucket `json:"latency_tumbling,omitempty"`
	LatencySliding  []Bucket `json:"latency_sliding,omitempty"`
	// Devices is the per-device health report; Utilization the per-device
	// load report.
	Devices     []DeviceHealth `json:"devices,omitempty"`
	Utilization []DeviceUtil   `json:"utilization,omitempty"`
	// Alerts is the full burn-rate transition timeline.
	Alerts []AlertTransition `json:"alerts,omitempty"`
	// Frames holds every served frame's critical path.
	Frames []FramePath `json:"-"`
}

// Monitor is the live tap: attach it with Tracer.AddSink before a run,
// call Finish after. ObserveRecord only buffers (one mutex-guarded
// append), so the monitored run's outcomes and exported trace stay
// bit-identical; all computation happens in Finish over the sorted
// record set — the same records, in the same order, that WriteJSONL
// exports, which is why Finish agrees exactly with an offline
// slotool pass over the exported file.
type Monitor struct {
	cfg  Config
	mu   sync.Mutex
	recs []telemetry.Record
}

// NewMonitor returns a Monitor with the given config.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg}
}

// ObserveRecord implements telemetry.RecordSink.
func (m *Monitor) ObserveRecord(r telemetry.Record) {
	m.mu.Lock()
	m.recs = append(m.recs, r)
	m.mu.Unlock()
}

// ObserveAll buffers a batch of records (offline feeding).
func (m *Monitor) ObserveAll(rs []telemetry.Record) {
	m.mu.Lock()
	m.recs = append(m.recs, rs...)
	m.mu.Unlock()
}

// Len returns the number of buffered records.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Finish analyzes everything observed so far.
func (m *Monitor) Finish() (*Snapshot, error) {
	m.mu.Lock()
	recs := append([]telemetry.Record(nil), m.recs...)
	m.mu.Unlock()
	return Analyze(recs, m.cfg)
}

// Analyze runs the full monitoring pass over a record set (live-captured
// or parsed from JSONL — both paths land here). The input order is
// irrelevant: records are sorted into the exporter's deterministic order
// first.
func Analyze(records []telemetry.Record, cfg Config) (*Snapshot, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	recs := append([]telemetry.Record(nil), records...)
	sortRecords(recs)

	a := &analysis{
		cfg:        cfg,
		tierLat:    NewSeries(cfg.TickMicros),
		tierQueue:  NewSeries(cfg.TickMicros),
		shardLat:   map[string]*Series{},
		shardQueue: map[string]*Series{},
		cellLat:    map[int]*Series{},
		scopes:     map[string]*scopeCount{},
		specSeries: make([]map[string]*RatioSeries, len(cfg.Specs)),
		load:       map[devKey]*SpanLoad{},
	}
	for i := range a.specSeries {
		a.specSeries[i] = map[string]*RatioSeries{}
	}
	for _, r := range recs {
		a.ingest(r)
	}
	return a.snapshot(recs)
}

type devKey struct {
	shard  string
	device int
}

type scopeCount struct {
	served, answers, fallback, shed int
}

type analysis struct {
	cfg        Config
	start, end float64
	any        bool

	tierLat, tierQueue   *Series
	shardLat, shardQueue map[string]*Series
	cellLat              map[int]*Series
	tier                 scopeCount
	scopes               map[string]*scopeCount

	specSeries []map[string]*RatioSeries
	load       map[devKey]*SpanLoad
	annealObs  []AnnealObs
}

func (a *analysis) touch(t float64) {
	if !a.any {
		a.start, a.end, a.any = t, t, true
		return
	}
	if t < a.start {
		a.start = t
	}
	if t > a.end {
		a.end = t
	}
}

func (a *analysis) scope(shard string) *scopeCount {
	sc := a.scopes[shard]
	if sc == nil {
		sc = &scopeCount{}
		a.scopes[shard] = sc
	}
	return sc
}

// feedSpecs routes one (shard, event) observation into every spec of
// the matching kind, under that spec's scoping rule; bad is evaluated
// per spec (latency specs carry their own thresholds).
func (a *analysis) feedSpecs(kind Kind, shard string, at float64, bad func(Spec) bool) {
	for i, sp := range a.cfg.Specs {
		if sp.Kind != kind {
			continue
		}
		var key string
		switch sp.Scope {
		case "":
			key = ""
		case ScopePerShard:
			if shard == "" {
				// Unsharded runs have no shard label; the tier-scope
				// instance of this spec already covers those events.
				continue
			}
			key = "shard=" + shard
		default:
			if sp.Scope != "shard="+shard {
				continue
			}
			key = sp.Scope
		}
		rs := a.specSeries[i][key]
		if rs == nil {
			rs = NewRatioSeries(a.cfg.TickMicros)
			a.specSeries[i][key] = rs
		}
		rs.Observe(at, bad(sp))
	}
}

func constBad(b bool) func(Spec) bool { return func(Spec) bool { return b } }

func (a *analysis) ingest(r telemetry.Record) {
	switch {
	case r.Type == "span" && r.Name == "fleet/frame":
		a.touch(r.T0)
		a.touch(r.T1)
		shard, _ := attrString(r.Attrs, "shard")
		lat := r.T1 - r.T0
		a.tierLat.Observe(r.T1, lat)
		a.seriesFor(a.shardLat, shard).Observe(r.T1, lat)
		if q, ok := attrNum(r.Attrs, "queue_us"); ok {
			a.tierQueue.Observe(r.T1, q)
			a.seriesFor(a.shardQueue, shard).Observe(r.T1, q)
		}
		if a.cfg.UEsPerCell > 0 {
			if stream, ok := attrInt(r.Attrs, "stream"); ok {
				cell := stream / a.cfg.UEsPerCell
				s := a.cellLat[cell]
				if s == nil {
					s = NewSeries(a.cfg.TickMicros)
					a.cellLat[cell] = s
				}
				s.Observe(r.T1, lat)
			}
		}
		a.tier.served++
		a.scope(shard).served++
		a.feedSpecs(KindLatency, shard, r.T1, func(sp Spec) bool { return lat > sp.LatencyMicros })

	case r.Type == "span" && r.Name == "fleet/batch":
		a.touch(r.T0)
		a.touch(r.T1)
		shard, _ := attrString(r.Attrs, "shard")
		dev, ok := attrInt(r.Attrs, "device")
		if !ok {
			return
		}
		k := devKey{shard, dev}
		l := a.load[k]
		if l == nil {
			l = NewSpanLoad(a.cfg.TickMicros)
			a.load[k] = l
		}
		l.Observe(r.T0, r.T1)

	case r.Type == "event" && r.Name == "fleet/answer":
		a.touch(r.T0)
		shard, _ := attrString(r.Attrs, "shard")
		source, _ := attrString(r.Attrs, "source")
		shed := attrBool(r.Attrs, "shed")
		fallback := source == "classical-fallback"
		a.tier.answers++
		sc := a.scope(shard)
		sc.answers++
		if fallback {
			a.tier.fallback++
			sc.fallback++
		}
		if shed {
			a.tier.shed++
			sc.shed++
		}
		a.feedSpecs(KindAvailability, shard, r.T0, constBad(fallback))
		a.feedSpecs(KindShed, shard, r.T0, constBad(shed))

	case r.Type == "event" && r.Name == "cran/router-shed":
		// Router-shed frames never reach a shard: they are answered
		// classically at admission, so they count against tier
		// availability and shed under the pseudo-scope "router".
		a.touch(r.T0)
		const shard = "router"
		a.tier.answers++
		a.tier.fallback++
		a.tier.shed++
		sc := a.scope(shard)
		sc.answers++
		sc.fallback++
		sc.shed++
		a.feedSpecs(KindAvailability, shard, r.T0, constBad(true))
		a.feedSpecs(KindShed, shard, r.T0, constBad(true))

	case r.Type == "event" && r.Name == "fleet/anneal-stats":
		a.touch(r.T0)
		shard, _ := attrString(r.Attrs, "shard")
		dev, _ := attrInt(r.Attrs, "device")
		stream, _ := attrInt(r.Attrs, "stream")
		seq, _ := attrInt(r.Attrs, "seq")
		ob := AnnealObs{At: r.T0, Shard: shard, Device: dev, Stream: stream, Seq: seq}
		if survived, _ := attrInt(r.Attrs, "survived"); survived == 0 {
			ob.HardFault = true
		} else {
			mean, _ := attrNum(r.Attrs, "mean_energy")
			cand, _ := attrNum(r.Attrs, "cand_energy")
			ob.Residual = mean - cand
			ob.ChainBreakRate, _ = attrNum(r.Attrs, "chain_break_rate")
		}
		a.annealObs = append(a.annealObs, ob)

	case r.Type == "span" || r.Type == "event":
		a.touch(r.T0)
		if r.Type == "span" {
			a.touch(r.T1)
		}
	}
}

func (a *analysis) seriesFor(m map[string]*Series, key string) *Series {
	s := m[key]
	if s == nil {
		s = NewSeries(a.cfg.TickMicros)
		m[key] = s
	}
	return s
}

// summarize converts accumulated counters + series into a ScopeSLI.
func summarize(scope string, c scopeCount, lat, queue *Series) ScopeSLI {
	sli := ScopeSLI{Scope: scope, Served: c.served, Answers: c.answers, Fallback: c.fallback, Shed: c.shed}
	if c.answers > 0 {
		sli.Availability = 1 - float64(c.fallback)/float64(c.answers)
		sli.ShedRate = float64(c.shed) / float64(c.answers)
	}
	if lb := lat.All(); lb.Count > 0 {
		sli.LatencyP50, sli.LatencyP99, sli.LatencyMax = lb.P50, lb.P99, lb.Max
	}
	if qb := queue.All(); qb.Count > 0 {
		sli.QueueP50, sli.QueueP99 = qb.P50, qb.P99
	}
	return sli
}

func (a *analysis) snapshot(recs []telemetry.Record) (*Snapshot, error) {
	snap := &Snapshot{Config: a.cfg, StartMicros: a.start, EndMicros: a.end}
	snap.Tier = summarize("", a.tier, a.tierLat, a.tierQueue)

	shardKeys := make([]string, 0, len(a.scopes))
	for k := range a.scopes {
		// The unlabelled scope (a plain fleet run, no shard router) is
		// already the tier aggregate — listing it again as a shard row
		// would just duplicate Tier.
		if k == "" {
			continue
		}
		shardKeys = append(shardKeys, k)
	}
	sort.Strings(shardKeys)
	for _, k := range shardKeys {
		lat, ok := a.shardLat[k]
		if !ok {
			lat = NewSeries(a.cfg.TickMicros)
		}
		q, ok := a.shardQueue[k]
		if !ok {
			q = NewSeries(a.cfg.TickMicros)
		}
		snap.Shards = append(snap.Shards, summarize(k, *a.scopes[k], lat, q))
	}

	cellKeys := make([]int, 0, len(a.cellLat))
	for c := range a.cellLat {
		cellKeys = append(cellKeys, c)
	}
	sort.Ints(cellKeys)
	for _, c := range cellKeys {
		all := a.cellLat[c].All()
		snap.Cells = append(snap.Cells, CellSLI{
			Cell: c, Served: all.Count, LatencyP50: all.P50, LatencyP99: all.P99,
		})
	}

	snap.LatencyTumbling = a.tierLat.Buckets()
	snap.LatencySliding = a.tierLat.Sliding(a.cfg.SlideTicks)

	// Utilization per device over the observed span.
	span := a.end - a.start
	devKeys := make([]devKey, 0, len(a.load))
	for k := range a.load {
		devKeys = append(devKeys, k)
	}
	sort.Slice(devKeys, func(i, j int) bool {
		if devKeys[i].shard != devKeys[j].shard {
			return devKeys[i].shard < devKeys[j].shard
		}
		return devKeys[i].device < devKeys[j].device
	})
	for _, k := range devKeys {
		var busy, peak float64
		for _, b := range a.load[k].Buckets() {
			busy += b.BusyMicros
			if b.Utilization > peak {
				peak = b.Utilization
			}
		}
		du := DeviceUtil{Shard: k.shard, Device: k.device, BusyMicros: busy, PeakUtilization: peak}
		if span > 0 {
			du.Utilization = busy / span
		}
		snap.Utilization = append(snap.Utilization, du)
	}

	snap.Devices = ScoreDevices(a.annealObs, a.cfg.Health)
	snap.Frames = CriticalPaths(recs)

	// Burn-rate alerting: each spec over each scope it expanded to.
	for i, sp := range a.cfg.Specs {
		keys := make([]string, 0, len(a.specSeries[i]))
		for k := range a.specSeries[i] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			snap.Alerts = append(snap.Alerts, evalSpec(sp, k, a.specSeries[i][k], a.cfg.TickMicros)...)
		}
	}
	sortTransitions(snap.Alerts)
	return snap, nil
}
