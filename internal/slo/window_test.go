package slo

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

const testTick = 1000.0

// randomObs draws n (at, v) observations over about `ticks` ticks.
func randomObs(r *rand.Rand, n, ticks int) (at, v []float64) {
	at = make([]float64, n)
	v = make([]float64, n)
	for i := 0; i < n; i++ {
		at[i] = r.Float64() * float64(ticks) * testTick
		v[i] = r.Float64() * 5000
	}
	return at, v
}

// TestTumblingMatchesDirectRecompute: every tumbling bucket must equal a
// from-scratch recomputation over the raw events that fall in its
// window — the streaming path cannot drift from the definition.
func TestTumblingMatchesDirectRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(400)
		at, v := randomObs(r, n, 8)
		s := NewSeries(testTick)
		for i := range at {
			s.Observe(at[i], v[i])
		}
		buckets := s.Buckets()

		// Direct recomputation per occupied bucket index.
		byIdx := map[int64][]float64{}
		for i := range at {
			idx := int64(math.Floor(at[i] / testTick))
			byIdx[idx] = append(byIdx[idx], v[i])
		}
		if len(buckets) != len(byIdx) {
			t.Fatalf("trial %d: %d buckets, want %d", trial, len(buckets), len(byIdx))
		}
		for _, b := range buckets {
			vals := append([]float64(nil), byIdx[b.Index]...)
			sort.Float64s(vals)
			want := Bucket{Index: b.Index, T0: float64(b.Index) * testTick, T1: float64(b.Index+1) * testTick}
			finalize(&want, vals)
			if !reflect.DeepEqual(b, want) {
				t.Fatalf("trial %d bucket %d: got %+v want %+v", trial, b.Index, b, want)
			}
		}
	}
}

// TestSlidingShiftInvariantUnderReordering: permuting the observation
// sequence — including full shuffles, which subsume any within-tick
// reordering the concurrent emitters can produce — must not change a
// single sliding window.
func TestSlidingShiftInvariantUnderReordering(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(300)
		at, v := randomObs(r, n, 6)
		k := 1 + r.Intn(4)

		build := func(perm []int) []Bucket {
			s := NewSeries(testTick)
			for _, i := range perm {
				s.Observe(at[i], v[i])
			}
			return s.Sliding(k)
		}
		ident := make([]int, n)
		for i := range ident {
			ident[i] = i
		}
		base := build(ident)
		for shuffle := 0; shuffle < 3; shuffle++ {
			perm := append([]int(nil), ident...)
			r.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			if got := build(perm); !reflect.DeepEqual(got, base) {
				t.Fatalf("trial %d: sliding windows changed under reordering", trial)
			}
		}
	}
}

// TestSlidingCoversTumbling: a k=1 sliding window IS the tumbling
// window.
func TestSlidingCoversTumbling(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	at, v := randomObs(r, 250, 5)
	s := NewSeries(testTick)
	for i := range at {
		s.Observe(at[i], v[i])
	}
	if got, want := s.Sliding(1), s.Buckets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sliding(1) != Buckets():\n%+v\n%+v", got, want)
	}
}

// TestAllAggregates: All() equals a direct recomputation over every
// observation.
func TestAllAggregates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	at, v := randomObs(r, 500, 7)
	s := NewSeries(testTick)
	for i := range at {
		s.Observe(at[i], v[i])
	}
	all := s.All()
	vals := append([]float64(nil), v...)
	sort.Float64s(vals)
	if all.Count != len(vals) {
		t.Fatalf("All count %d want %d", all.Count, len(vals))
	}
	if all.P50 != nearestRank(vals, 50) || all.P99 != nearestRank(vals, 99) || all.Max != vals[len(vals)-1] {
		t.Fatalf("All percentiles mismatch: %+v", all)
	}
}

// TestRatioSeriesCounts: bucket bad/total equal direct counts, and are
// order-insensitive.
func TestRatioSeriesCounts(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 400
	at := make([]float64, n)
	bad := make([]bool, n)
	for i := range at {
		at[i] = r.Float64() * 5 * testTick
		bad[i] = r.Float64() < 0.3
	}
	s := NewRatioSeries(testTick)
	for i := range at {
		s.Observe(at[i], bad[i])
	}
	wantBad := map[int64]int{}
	wantTotal := map[int64]int{}
	for i := range at {
		idx := int64(math.Floor(at[i] / testTick))
		wantTotal[idx]++
		if bad[i] {
			wantBad[idx]++
		}
	}
	for _, b := range s.Buckets() {
		if b.Bad != wantBad[b.Index] || b.Total != wantTotal[b.Index] {
			t.Fatalf("bucket %d: got %d/%d want %d/%d", b.Index, b.Bad, b.Total, wantBad[b.Index], wantTotal[b.Index])
		}
	}
}

// TestSpanLoadConservation: total busy time across buckets equals the
// summed span lengths, and no bucket exceeds its tick width per span
// set that cannot overlap itself.
func TestSpanLoadConservation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	l := NewSpanLoad(testTick)
	var total float64
	cursor := 0.0
	for i := 0; i < 100; i++ {
		d := r.Float64() * 2500
		l.Observe(cursor, cursor+d)
		total += d
		cursor += d + r.Float64()*500
	}
	var got float64
	for _, b := range l.Buckets() {
		got += b.BusyMicros
		if b.BusyMicros > testTick+1e-9 {
			t.Fatalf("bucket %d busy %g exceeds tick", b.Index, b.BusyMicros)
		}
	}
	if math.Abs(got-total) > 1e-6 {
		t.Fatalf("busy time not conserved: got %g want %g", got, total)
	}
}
