// Package slo is the serving tier's monitoring brain: it consumes the
// simulated-clock telemetry stream the fleet/cran/pipeline layers emit
// (live, as a telemetry.RecordSink, or offline from an exported JSONL
// trace) and turns it into streaming SLIs over tumbling and sliding
// windows, multi-window burn-rate SLO alerts, per-device health scores,
// and per-frame critical-path decompositions.
//
// Determinism contract: the package is a pure consumer. It holds no
// locks the emitters contend on beyond a buffer append, consumes no RNG,
// and never feeds back into a running Serve call — health scores are
// published as plain numbers a *subsequent* run's config may consult
// (fleet.Config.DeviceHealth, cran.Config.ShardHealth). Records arrive
// in host-scheduling order from parallel emitters, so every aggregate
// here is order-insensitive by construction: window buckets accumulate
// commutatively and sort their values at finalize, and the analysis pass
// itself runs over the record set sorted exactly the way
// telemetry.Tracer.Records orders its export. Same trace, same numbers —
// bit for bit, on any worker count.
package slo

import (
	"math"
	"sort"
)

// Bucket is one finalized window: a tumbling tick, or a sliding window
// of several ticks ending at a tick boundary.
type Bucket struct {
	// Index is the tick index: the window covers simulated time
	// [T0, T1) with T1 = (Index+1)·tick.
	Index int64
	// T0 and T1 bound the window in simulated μs.
	T0, T1 float64
	// Count, Sum, Mean, P50, P99, Max summarize the values observed in
	// the window. Percentiles use the repo's nearest-rank convention.
	Count int
	Sum   float64
	Mean  float64
	P50   float64
	P99   float64
	Max   float64
}

// accum is one in-progress bucket. It only collects; every statistic —
// including the Sum, since float addition is not bitwise commutative —
// is computed at finalize over the SORTED values, which is what makes
// every Series aggregate insensitive to the host-scheduling order
// records arrive in.
type accum struct {
	values []float64
}

// Series buckets scalar observations (latencies, queue times) into
// tumbling windows of a fixed simulated-μs tick.
type Series struct {
	tick    float64
	buckets map[int64]*accum
}

// NewSeries returns a Series with the given tick width (μs, > 0).
func NewSeries(tick float64) *Series {
	return &Series{tick: tick, buckets: make(map[int64]*accum)}
}

// Observe records value v at simulated time at. NaN values are dropped.
func (s *Series) Observe(at, v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := int64(math.Floor(at / s.tick))
	a := s.buckets[idx]
	if a == nil {
		a = &accum{}
		s.buckets[idx] = a
	}
	a.values = append(a.values, v)
}

// Count returns the total observations across all buckets.
func (s *Series) Count() int {
	n := 0
	for _, a := range s.buckets {
		n += len(a.values)
	}
	return n
}

// finalize summarizes a sorted value slice into b. The sum is taken in
// sorted order so the result is bit-identical however the values
// arrived.
func finalize(b *Bucket, values []float64) {
	b.Count = len(values)
	if len(values) == 0 {
		return
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	b.Sum = sum
	b.Mean = sum / float64(len(values))
	b.P50 = nearestRank(values, 50)
	b.P99 = nearestRank(values, 99)
	b.Max = values[len(values)-1]
}

// nearestRank returns the p-th percentile of sorted values by the
// nearest-rank method (the convention fleet/cran reports use).
func nearestRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Buckets returns the tumbling windows, finalized and sorted by index.
// Empty ticks between occupied ones are NOT materialized — callers that
// need a dense timeline walk the index range themselves.
func (s *Series) Buckets() []Bucket {
	idxs := make([]int64, 0, len(s.buckets))
	for i := range s.buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]Bucket, 0, len(idxs))
	for _, i := range idxs {
		a := s.buckets[i]
		vals := append([]float64(nil), a.values...)
		sort.Float64s(vals)
		b := Bucket{Index: i, T0: float64(i) * s.tick, T1: float64(i+1) * s.tick}
		finalize(&b, vals)
		out = append(out, b)
	}
	return out
}

// Sliding returns one window per occupied tick index, each covering the
// k ticks ending at that index (a sliding window advanced tick-by-tick).
// Reordering observations WITHIN a tick cannot change the output: bucket
// membership depends only on each observation's own timestamp, and the
// merged values are sorted before summarizing.
func (s *Series) Sliding(k int) []Bucket {
	if k < 1 {
		k = 1
	}
	idxs := make([]int64, 0, len(s.buckets))
	for i := range s.buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]Bucket, 0, len(idxs))
	for _, i := range idxs {
		var vals []float64
		for j := i - int64(k) + 1; j <= i; j++ {
			if a, ok := s.buckets[j]; ok {
				vals = append(vals, a.values...)
			}
		}
		sort.Float64s(vals)
		b := Bucket{Index: i, T0: float64(i-int64(k)+1) * s.tick, T1: float64(i+1) * s.tick}
		finalize(&b, vals)
		out = append(out, b)
	}
	return out
}

// All returns a single bucket summarizing every observation in the
// series (the whole-run aggregate).
func (s *Series) All() Bucket {
	var vals []float64
	lo, hi := int64(0), int64(0)
	first := true
	for i, a := range s.buckets {
		vals = append(vals, a.values...)
		if first || i < lo {
			lo = i
		}
		if first || i > hi {
			hi = i
		}
		first = false
	}
	sort.Float64s(vals)
	b := Bucket{Index: hi, T0: float64(lo) * s.tick, T1: float64(hi+1) * s.tick}
	finalize(&b, vals)
	return b
}

// RatioBucket is one window of a good/bad event ratio (availability,
// shed rate, latency-budget violations).
type RatioBucket struct {
	Index      int64
	T0, T1     float64
	Bad, Total int
}

// BadFraction returns Bad/Total (0 when empty).
func (b RatioBucket) BadFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Bad) / float64(b.Total)
}

// RatioSeries buckets binary (good/bad) events into tumbling windows.
type RatioSeries struct {
	tick    float64
	buckets map[int64]*RatioBucket
}

// NewRatioSeries returns a RatioSeries with the given tick width.
func NewRatioSeries(tick float64) *RatioSeries {
	return &RatioSeries{tick: tick, buckets: make(map[int64]*RatioBucket)}
}

// Observe records one event at simulated time at.
func (s *RatioSeries) Observe(at float64, bad bool) {
	idx := int64(math.Floor(at / s.tick))
	b := s.buckets[idx]
	if b == nil {
		b = &RatioBucket{Index: idx, T0: float64(idx) * s.tick, T1: float64(idx+1) * s.tick}
		s.buckets[idx] = b
	}
	b.Total++
	if bad {
		b.Bad++
	}
}

// Buckets returns the tumbling ratio windows sorted by index.
func (s *RatioSeries) Buckets() []RatioBucket {
	out := make([]RatioBucket, 0, len(s.buckets))
	for _, b := range s.buckets {
		out = append(out, *b)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// LoadBucket is one window of span-overlap load (QPU busy time).
type LoadBucket struct {
	Index      int64
	T0, T1     float64
	BusyMicros float64
	// Utilization is BusyMicros normalized by the window width, per
	// contributing capacity unit (the series does not know device counts;
	// callers feeding one device per series read this as busy fraction).
	Utilization float64
}

// SpanLoad accumulates span overlap per tumbling tick — the utilization
// SLI's window machinery. Overlap addition is commutative, so the result
// is independent of span arrival order.
type SpanLoad struct {
	tick    float64
	buckets map[int64]float64
}

// NewSpanLoad returns a SpanLoad with the given tick width.
func NewSpanLoad(tick float64) *SpanLoad {
	return &SpanLoad{tick: tick, buckets: make(map[int64]float64)}
}

// Observe distributes the busy interval [t0, t1] across the ticks it
// overlaps.
func (l *SpanLoad) Observe(t0, t1 float64) {
	if !(t1 > t0) {
		return
	}
	first := int64(math.Floor(t0 / l.tick))
	last := int64(math.Ceil(t1/l.tick)) - 1
	for i := first; i <= last; i++ {
		w0 := math.Max(t0, float64(i)*l.tick)
		w1 := math.Min(t1, float64(i+1)*l.tick)
		if w1 > w0 {
			l.buckets[i] += w1 - w0
		}
	}
}

// Buckets returns the load windows sorted by index.
func (l *SpanLoad) Buckets() []LoadBucket {
	idxs := make([]int64, 0, len(l.buckets))
	for i := range l.buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]LoadBucket, 0, len(idxs))
	for _, i := range idxs {
		busy := l.buckets[i]
		out = append(out, LoadBucket{
			Index: i, T0: float64(i) * l.tick, T1: float64(i+1) * l.tick,
			BusyMicros: busy, Utilization: busy / l.tick,
		})
	}
	return out
}
