package slo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Kind selects which bad-event stream an SLO is defined over. Every kind
// reduces to a ratio SLI — bad events over total events per tick — so one
// burn-rate evaluator serves all three.
type Kind int

const (
	// KindLatency: a frame is bad when its latency exceeds the spec's
	// LatencyMicros threshold. Budget is the allowed bad fraction, so
	// Budget 0.01 states "p99 latency ≤ LatencyMicros".
	KindLatency Kind = iota
	// KindAvailability: a frame is bad when it was answered by the
	// classical-fallback rung of the degradation ladder (the quantum
	// service did not contribute). Budget 0.001 states 99.9% availability.
	KindAvailability
	// KindShed: a frame is bad when it was shed (fleet admission, retry
	// exhaustion, or router backpressure). Budget 0.01 states "shed ≤ 1%".
	KindShed
)

// String names the kind for reports and alert records.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindAvailability:
		return "availability"
	case KindShed:
		return "shed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ScopePerShard expands a spec into one independent evaluation per shard
// observed in the trace.
const ScopePerShard = "per-shard"

// Spec is one declarative SLO evaluated with multi-window burn-rate
// alerting (the fast window catches sharp regressions quickly, the slow
// window keeps brief blips from paging).
type Spec struct {
	// Name identifies the SLO in alerts and dashboards (required).
	Name string
	// Kind selects the bad-event stream.
	Kind Kind
	// Scope: "" evaluates tier-wide; ScopePerShard evaluates each shard
	// independently; "shard=<label>" evaluates one shard only.
	Scope string
	// LatencyMicros is KindLatency's per-frame threshold (required for
	// that kind, ignored otherwise).
	LatencyMicros float64
	// Budget is the error budget: the allowed long-run bad fraction
	// (default 0.01 for latency/shed, 0.001 for availability).
	Budget float64
	// FastTicks and SlowTicks are the two burn windows in ticks
	// (defaults 2 and 12). SlowTicks must be ≥ FastTicks.
	FastTicks, SlowTicks int
	// FastBurn and SlowBurn are the burn-rate thresholds: the alert
	// fires when BOTH windows burn at or above their threshold
	// (defaults 14.4 and 6 — the SRE-workbook page tier).
	FastBurn, SlowBurn float64
	// MinEvents gates alerting on the slow window holding at least this
	// many events (default 20), so near-empty windows cannot page.
	MinEvents int
}

func (sp Spec) withDefaults() (Spec, error) {
	if sp.Name == "" {
		return sp, fmt.Errorf("slo: spec has no name")
	}
	if sp.Kind == KindLatency && !(sp.LatencyMicros > 0) {
		return sp, fmt.Errorf("slo: spec %s: latency kind needs LatencyMicros > 0", sp.Name)
	}
	if sp.Budget == 0 {
		if sp.Kind == KindAvailability {
			sp.Budget = 0.001
		} else {
			sp.Budget = 0.01
		}
	}
	if sp.Budget <= 0 || sp.Budget >= 1 || math.IsNaN(sp.Budget) {
		return sp, fmt.Errorf("slo: spec %s: budget %g outside (0, 1)", sp.Name, sp.Budget)
	}
	if sp.FastTicks == 0 {
		sp.FastTicks = 2
	}
	if sp.SlowTicks == 0 {
		sp.SlowTicks = 12
	}
	if sp.FastTicks < 1 || sp.SlowTicks < sp.FastTicks {
		return sp, fmt.Errorf("slo: spec %s: bad windows fast=%d slow=%d", sp.Name, sp.FastTicks, sp.SlowTicks)
	}
	if sp.FastBurn == 0 {
		sp.FastBurn = 14.4
	}
	if sp.SlowBurn == 0 {
		sp.SlowBurn = 6
	}
	if sp.FastBurn <= 0 || sp.SlowBurn <= 0 {
		return sp, fmt.Errorf("slo: spec %s: burn thresholds must be > 0", sp.Name)
	}
	if sp.MinEvents == 0 {
		sp.MinEvents = 20
	}
	return sp, nil
}

// DefaultSpecs returns the serving tier's standard SLO set for a given
// frame deadline: p99 latency within deadline, 99.9% availability
// (answers above the classical-fallback rung), and shed rate ≤ 1% —
// each evaluated tier-wide and per shard.
func DefaultSpecs(deadlineMicros float64) []Spec {
	specs := []Spec{
		{Name: "frame-p99-latency", Kind: KindLatency, LatencyMicros: deadlineMicros, Budget: 0.01},
		{Name: "availability", Kind: KindAvailability, Budget: 0.001},
		{Name: "shed-rate", Kind: KindShed, Budget: 0.01},
	}
	perShard := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		sp.Scope = ScopePerShard
		perShard = append(perShard, sp)
	}
	return append(specs, perShard...)
}

// Alert states.
const (
	StateIdle    = "idle"
	StatePending = "pending" // fast window burning, slow window not yet
	StateFiring  = "firing"  // both windows at or above threshold
)

// AlertTransition is one typed state change of one (SLO, scope) pair,
// stamped on the simulated clock at the tick boundary that produced it.
type AlertTransition struct {
	AtMicros float64 `json:"at_us"`
	SLO      string  `json:"slo"`
	Scope    string  `json:"scope,omitempty"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	// FastBurn / SlowBurn are the measured burn rates at the transition.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BadSlow / TotalSlow give the slow window's raw evidence.
	BadSlow   int `json:"bad_slow"`
	TotalSlow int `json:"total_slow"`
}

// WriteAlertsJSONL writes transitions one JSON object per line.
func WriteAlertsJSONL(w io.Writer, ts []AlertTransition) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range ts {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// evalSpec runs one spec's burn-rate state machine over a ratio series,
// walking every tick from the first to the last occupied index (empty
// ticks participate — a quiet tick drains the fast window). Transitions
// are stamped at each tick's end boundary.
func evalSpec(sp Spec, scope string, rs *RatioSeries, tick float64) []AlertTransition {
	buckets := rs.Buckets()
	if len(buckets) == 0 {
		return nil
	}
	byIdx := make(map[int64]RatioBucket, len(buckets))
	for _, b := range buckets {
		byIdx[b.Index] = b
	}
	lo, hi := buckets[0].Index, buckets[len(buckets)-1].Index

	sum := func(end, k int64) (bad, total int) {
		for j := end - k + 1; j <= end; j++ {
			if b, ok := byIdx[j]; ok {
				bad += b.Bad
				total += b.Total
			}
		}
		return bad, total
	}
	burn := func(bad, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(bad) / float64(total) / sp.Budget
	}

	state := StateIdle
	var out []AlertTransition
	for i := lo; i <= hi; i++ {
		fb, ft := sum(i, int64(sp.FastTicks))
		sb, st := sum(i, int64(sp.SlowTicks))
		fBurn, sBurn := burn(fb, ft), burn(sb, st)
		next := StateIdle
		switch {
		case st >= sp.MinEvents && fBurn >= sp.FastBurn && sBurn >= sp.SlowBurn:
			next = StateFiring
		case ft > 0 && fBurn >= sp.FastBurn:
			next = StatePending
		}
		if next != state {
			out = append(out, AlertTransition{
				AtMicros: float64(i+1) * tick,
				SLO:      sp.Name, Scope: scope,
				From: state, To: next,
				FastBurn: fBurn, SlowBurn: sBurn,
				BadSlow: sb, TotalSlow: st,
			})
			state = next
		}
	}
	return out
}

// sortTransitions orders alert output deterministically by
// (time, slo, scope).
func sortTransitions(ts []AlertTransition) {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].AtMicros != ts[b].AtMicros {
			return ts[a].AtMicros < ts[b].AtMicros
		}
		if ts[a].SLO != ts[b].SLO {
			return ts[a].SLO < ts[b].SLO
		}
		return ts[a].Scope < ts[b].Scope
	})
}
