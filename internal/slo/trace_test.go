package slo

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/annealer"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

const fixturePath = "testdata/trace_small.jsonl"

// fixtureTrace regenerates the committed fixture's byte content: a small
// deterministic fleet run with one drifting device. The fixture on disk
// is written by TestRegenerateFixture (run with SLO_REGEN=1).
func fixtureTrace(t testing.TB) []byte {
	t.Helper()
	devs := logicalDevices(2)
	devs[1].Faults = annealer.FaultModel{CalibrationDriftRate: 0.5, DriftSigma: 0.4}
	reqs := uniformRequests(t, 2, 5, 150, 0)
	tr := telemetry.NewTracer()
	if _, err := fleet.Serve(context.Background(), fleet.Config{
		Devices: devs, NumReads: 4, Seed: 23, Trace: tr,
	}, reqs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegenerateFixture rewrites testdata/trace_small.jsonl when
// SLO_REGEN=1 is set; otherwise it verifies the committed fixture still
// matches what the serving tier emits today, so the fixture cannot
// silently rot.
func TestRegenerateFixture(t *testing.T) {
	want := fixtureTrace(t)
	if os.Getenv("SLO_REGEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(fixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("%v (regenerate with SLO_REGEN=1 go test -run TestRegenerateFixture ./internal/slo/)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("committed fixture is stale; regenerate with SLO_REGEN=1")
	}
}

func TestParseTraceCleanRoundTrip(t *testing.T) {
	raw := fixtureTrace(t)
	recs, stats, err := ParseTrace(bytes.NewReader(raw), true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Duplicates != 0 || stats.OutOfOrder != 0 {
		t.Fatalf("clean export parsed dirty: %+v", stats)
	}
	if stats.Records != stats.Lines || stats.Records == 0 {
		t.Fatalf("line/record mismatch: %+v", stats)
	}
	// The parsed record set analyzes without error and yields frames.
	snap, err := Analyze(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tier.Served == 0 {
		t.Fatalf("no served frames in fixture analysis: %+v", snap.Tier)
	}
}

func TestParseTraceShuffledLinesSortBack(t *testing.T) {
	raw := fixtureTrace(t)
	recs, _, err := ParseTrace(bytes.NewReader(raw), true)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	// Reverse the body (keep the manifest line wherever it lands — the
	// parser pulls it back to the front).
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	shuffled := bytes.Join(lines, []byte("\n"))
	recs2, stats, err := ParseTrace(bytes.NewReader(shuffled), true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutOfOrder == 0 {
		t.Fatal("reversed input reported zero inversions")
	}
	if !reflect.DeepEqual(recs, recs2) {
		t.Fatal("shuffled trace did not sort back to canonical order")
	}
}

func TestParseTraceMalformedStrictVsLenient(t *testing.T) {
	raw := fixtureTrace(t)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	lines[2] = []byte(`{"type":"span","t0_us":`) // truncated mid-object
	dirty := bytes.Join(lines, []byte("\n"))

	_, _, err := ParseTrace(bytes.NewReader(dirty), true)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("strict mode error %v, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Fatalf("ParseError line %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("error string %q lacks line number", pe.Error())
	}

	recs, stats, err := ParseTrace(bytes.NewReader(dirty), false)
	if err != nil {
		t.Fatalf("lenient mode errored: %v", err)
	}
	if stats.Skipped != 1 {
		t.Fatalf("lenient skipped %d, want 1", stats.Skipped)
	}
	if len(recs) != stats.Records {
		t.Fatalf("returned %d records, stats say %d", len(recs), stats.Records)
	}
}

func TestParseTraceDuplicatedAndTruncated(t *testing.T) {
	raw := fixtureTrace(t)

	// Doubly-concatenated trace: every line is a duplicate the second
	// time around.
	doubled := append(append([]byte(nil), raw...), raw...)
	_, stats, err := ParseTrace(bytes.NewReader(doubled), true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicates != stats.Lines/2 {
		t.Fatalf("doubled trace: %d duplicates over %d lines", stats.Duplicates, stats.Lines)
	}

	// Truncated tail: cut mid-line. Lenient keeps the prefix.
	cut := raw[:len(raw)-20]
	recs, stats, err := ParseTrace(bytes.NewReader(cut), false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 {
		t.Fatalf("truncated tail skipped %d, want 1", stats.Skipped)
	}
	if len(recs) == 0 {
		t.Fatal("truncated trace lost its prefix")
	}
	// Strict mode refuses the same input.
	if _, _, err := ParseTrace(bytes.NewReader(cut), true); err == nil {
		t.Fatal("strict mode accepted a truncated trace")
	}
}

func TestParseTraceEmptyAndBlank(t *testing.T) {
	recs, stats, err := ParseTrace(strings.NewReader("\n\n  \n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Lines != 0 {
		t.Fatalf("blank input produced %d records, %+v", len(recs), stats)
	}
}
