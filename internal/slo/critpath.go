package slo

import (
	"sort"

	"repro/internal/telemetry"
)

// FramePath is one served frame's critical-path decomposition: where the
// frame's latency actually went, reconstructed from its "fleet/frame"
// span joined with the serving batch's "fleet/batch" span. The
// components tile the latency exactly:
//
//	Latency = Queue + Program + BatchWait + Anneal + Readout
//
// where Queue is time from arrival to the final batch's launch (retried
// frames' failed cycles are queue time — the frame was not being
// annealed), Program is the device programming overhead, BatchWait is
// time the batch spent on OTHER frames' reads before this frame's, and
// Anneal/Readout are the frame's own reads.
type FramePath struct {
	Shard     string  `json:"shard,omitempty"`
	Stream    int     `json:"stream"`
	Seq       int     `json:"seq"`
	Device    int     `json:"device"`
	Batch     int     `json:"batch"`
	Arrival   float64 `json:"arrival_us"`
	Finish    float64 `json:"finish_us"`
	Latency   float64 `json:"latency_us"`
	Queue     float64 `json:"queue_us"`
	Program   float64 `json:"program_us"`
	BatchWait float64 `json:"batch_wait_us"`
	Anneal    float64 `json:"anneal_us"`
	Readout   float64 `json:"readout_us"`
	Attempts  int     `json:"attempts"`
	Retried   bool    `json:"retried,omitempty"`
	// Dominant names the largest component.
	Dominant string `json:"dominant"`
}

type batchInfo struct {
	t0, t1                float64
	prog, anneal, readout float64
	ok                    bool
}

// CriticalPaths decomposes every served frame in a record set. Records
// may be in any order; frames whose batch span is missing from the trace
// fall back to a queue+service split using only the frame span's own
// attributes. Output is sorted by (Shard, Stream, Seq).
func CriticalPaths(records []telemetry.Record) []FramePath {
	type bkey struct {
		shard string
		batch int
	}
	batches := make(map[bkey]batchInfo)
	for _, r := range records {
		if r.Type != "span" || r.Name != "fleet/batch" {
			continue
		}
		shard, _ := attrString(r.Attrs, "shard")
		id, ok := attrInt(r.Attrs, "batch")
		if !ok {
			continue
		}
		prog, _ := attrNum(r.Attrs, "prog_us")
		anneal, _ := attrNum(r.Attrs, "anneal_us")
		readout, _ := attrNum(r.Attrs, "readout_us")
		batches[bkey{shard, id}] = batchInfo{
			t0: r.T0, t1: r.T1, prog: prog, anneal: anneal, readout: readout, ok: true,
		}
	}

	var out []FramePath
	for _, r := range records {
		if r.Type != "span" || r.Name != "fleet/frame" {
			continue
		}
		shard, _ := attrString(r.Attrs, "shard")
		stream, _ := attrInt(r.Attrs, "stream")
		seq, _ := attrInt(r.Attrs, "seq")
		device, _ := attrInt(r.Attrs, "device")
		batch, _ := attrInt(r.Attrs, "batch")
		attempts, _ := attrInt(r.Attrs, "attempts")
		queue, _ := attrNum(r.Attrs, "queue_us")
		reads, _ := attrNum(r.Attrs, "reads")

		fp := FramePath{
			Shard: shard, Stream: stream, Seq: seq,
			Device: device, Batch: batch,
			Arrival: r.T0, Finish: r.T1, Latency: r.T1 - r.T0,
			Queue: queue, Attempts: attempts, Retried: attempts > 1,
		}
		if b := batches[bkey{shard, batch}]; b.ok {
			fp.Program = b.prog
			fp.Anneal = reads * b.anneal
			fp.Readout = reads * b.readout
			// Everything between batch launch and this frame's finish that
			// is not programming or the frame's own reads is time spent on
			// batch-mates' reads.
			wait := (fp.Finish - b.t0) - fp.Program - fp.Anneal - fp.Readout
			if wait > 0 {
				fp.BatchWait = wait
			}
		}
		fp.Dominant = dominant(fp)
		out = append(out, fp)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Shard != out[b].Shard {
			return out[a].Shard < out[b].Shard
		}
		if out[a].Stream != out[b].Stream {
			return out[a].Stream < out[b].Stream
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

func dominant(fp FramePath) string {
	best, name := fp.Queue, "queue"
	for _, c := range []struct {
		v float64
		n string
	}{
		{fp.Program, "program"},
		{fp.BatchWait, "batch-wait"},
		{fp.Anneal, "anneal"},
		{fp.Readout, "readout"},
	} {
		if c.v > best {
			best, name = c.v, c.n
		}
	}
	return name
}
