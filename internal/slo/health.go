package slo

import (
	"math"
	"sort"
)

// HealthConfig tunes per-device health scoring.
type HealthConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.2).
	Alpha float64
	// ZMax is the robust z-score at which a device's score reaches 0
	// (default 4). A device is Suspect at z ≥ ZMax/2.
	ZMax float64
	// MinFrames is the per-device frame count below which the device is
	// scored 1.0 unconditionally — too little evidence to indict
	// (default 8).
	MinFrames int
}

func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.Alpha == 0 {
		hc.Alpha = 0.2
	}
	if hc.ZMax == 0 {
		hc.ZMax = 4
	}
	if hc.MinFrames == 0 {
		hc.MinFrames = 8
	}
	return hc
}

// AnnealObs is one frame's anneal-quality observation, extracted from a
// "fleet/anneal-stats" trace event.
type AnnealObs struct {
	At          float64
	Shard       string
	Device      int
	Stream, Seq int
	// Residual is meanSampleEnergy − candidateEnergy: how much worse the
	// device's typical sample is than the frame's own classical candidate.
	// The candidate is device-independent, so residuals are comparable
	// across devices; a drifting device anneals a perturbed Hamiltonian
	// and lands systematically higher on the true problem.
	Residual float64
	// ChainBreakRate is the batch's broken-chain fraction.
	ChainBreakRate float64
	// HardFault marks a frame whose batch lost every read.
	HardFault bool
}

// DeviceHealth is one device's scored health.
type DeviceHealth struct {
	Shard  string `json:"shard,omitempty"`
	Device int    `json:"device"`
	Frames int    `json:"frames"`
	// EWMAResidual and EWMAChainBreak are the smoothed quality signals.
	EWMAResidual   float64 `json:"ewma_residual"`
	EWMAChainBreak float64 `json:"ewma_chain_break"`
	// ZResidual and ZChainBreak are robust z-scores against the fleet's
	// median/MAD — "how many robust deviations worse than the typical
	// device".
	ZResidual   float64 `json:"z_residual"`
	ZChainBreak float64 `json:"z_chain_break"`
	// Score ∈ [0, 1]: 1 healthy, 0 fully indicted. Feedable to
	// fleet.Config.DeviceHealth / cran.Config.ShardHealth on a LATER run.
	Score float64 `json:"score"`
	// Suspect marks devices at z ≥ ZMax/2 on either signal.
	Suspect bool `json:"suspect,omitempty"`
}

// ScoreDevices computes per-(shard, device) health from anneal
// observations. The observations are sorted by (At, Shard, Stream, Seq)
// before the order-sensitive EWMA pass, so host-scheduling arrival order
// cannot change a score. Scoring is relative within each shard's fleet:
// a device is unhealthy when its smoothed residual or chain-break rate
// is a robust outlier against the shard's median.
func ScoreDevices(obs []AnnealObs, hc HealthConfig) []DeviceHealth {
	hc = hc.withDefaults()
	sorted := append([]AnnealObs(nil), obs...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].At != sorted[b].At {
			return sorted[a].At < sorted[b].At
		}
		if sorted[a].Shard != sorted[b].Shard {
			return sorted[a].Shard < sorted[b].Shard
		}
		if sorted[a].Stream != sorted[b].Stream {
			return sorted[a].Stream < sorted[b].Stream
		}
		return sorted[a].Seq < sorted[b].Seq
	})

	type key struct {
		shard  string
		device int
	}
	acc := make(map[key]*DeviceHealth)
	var order []key
	for _, ob := range sorted {
		if ob.Device < 0 {
			continue
		}
		k := key{ob.Shard, ob.Device}
		h := acc[k]
		if h == nil {
			h = &DeviceHealth{Shard: ob.Shard, Device: ob.Device}
			acc[k] = h
			order = append(order, k)
		}
		res, cbr := ob.Residual, ob.ChainBreakRate
		if ob.HardFault {
			// A lost batch carries no energies; treat it as a fully broken
			// read set so hard-faulting devices do not look pristine.
			res, cbr = 0, 1
		}
		if h.Frames == 0 {
			h.EWMAResidual, h.EWMAChainBreak = res, cbr
		} else {
			h.EWMAResidual += hc.Alpha * (res - h.EWMAResidual)
			h.EWMAChainBreak += hc.Alpha * (cbr - h.EWMAChainBreak)
		}
		h.Frames++
	}

	sort.Slice(order, func(a, b int) bool {
		if order[a].shard != order[b].shard {
			return order[a].shard < order[b].shard
		}
		return order[a].device < order[b].device
	})

	// Robust z against each shard's fleet.
	byShard := make(map[string][]*DeviceHealth)
	for _, k := range order {
		byShard[k.shard] = append(byShard[k.shard], acc[k])
	}
	for _, fleet := range byShard {
		resMed, resMAD := medianMAD(collect(fleet, func(h *DeviceHealth) float64 { return h.EWMAResidual }))
		cbrMed, cbrMAD := medianMAD(collect(fleet, func(h *DeviceHealth) float64 { return h.EWMAChainBreak }))
		for _, h := range fleet {
			h.ZResidual = robustZ(h.EWMAResidual, resMed, resMAD)
			h.ZChainBreak = robustZ(h.EWMAChainBreak, cbrMed, cbrMAD)
			z := math.Max(h.ZResidual, h.ZChainBreak)
			h.Score = clamp01(1 - math.Max(0, z)/hc.ZMax)
			h.Suspect = z >= hc.ZMax/2
			if h.Frames < hc.MinFrames {
				h.Score, h.Suspect = 1, false
			}
		}
	}

	out := make([]DeviceHealth, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	return out
}

// Scores flattens a single-shard health report into the []float64 shape
// fleet.Config.DeviceHealth takes: one entry per device index in
// [0, nDevices), defaulting to 1 for devices the trace never saw.
func Scores(hs []DeviceHealth, nDevices int) []float64 {
	out := make([]float64, nDevices)
	for i := range out {
		out[i] = 1
	}
	for _, h := range hs {
		if h.Device >= 0 && h.Device < nDevices {
			out[h.Device] = h.Score
		}
	}
	return out
}

func collect(hs []*DeviceHealth, f func(*DeviceHealth) float64) []float64 {
	out := make([]float64, len(hs))
	for i, h := range hs {
		out[i] = f(h)
	}
	return out
}

// medianMAD returns the median and median-absolute-deviation.
func medianMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med = s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	dev := make([]float64, len(s))
	for i, x := range s {
		dev[i] = math.Abs(x - med)
	}
	sort.Float64s(dev)
	mad = dev[len(dev)/2]
	if len(dev)%2 == 0 {
		mad = (dev[len(dev)/2-1] + dev[len(dev)/2]) / 2
	}
	return med, mad
}

// robustZ is (x − med)/(1.4826·MAD), with a floor on the scale so a
// perfectly uniform fleet (MAD 0) yields z = 0 rather than ±Inf.
func robustZ(x, med, mad float64) float64 {
	scale := 1.4826 * mad
	if scale < 1e-12 {
		if math.Abs(x-med) < 1e-12 {
			return 0
		}
		// Distinct value against a zero-spread fleet: infinitely unusual;
		// cap at a large finite z so scores stay well-defined.
		if x > med {
			return 1e6
		}
		return -1e6
	}
	return (x - med) / scale
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
