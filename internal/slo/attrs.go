package slo

import (
	"encoding/json"

	"repro/internal/telemetry"
)

// Attribute accessors tolerant of both in-process records (Go ints,
// floats, bools) and JSONL round-tripped records (every number a
// float64): the live sink path and the offline slotool path must read
// one record shape identically.

func attrNum(a telemetry.Attrs, key string) (float64, bool) {
	switch v := a[key].(type) {
	case float64:
		return v, true
	case float32:
		return float64(v), true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

func attrInt(a telemetry.Attrs, key string) (int, bool) {
	f, ok := attrNum(a, key)
	return int(f), ok
}

func attrString(a telemetry.Attrs, key string) (string, bool) {
	s, ok := a[key].(string)
	return s, ok
}

func attrBool(a telemetry.Attrs, key string) bool {
	b, ok := a[key].(bool)
	return ok && b
}
