package slo

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseTrace throws arbitrary bytes at the trace parser. The
// contract under fuzzing: never panic, lenient mode never returns an
// error, strict mode returns either nil or a typed *ParseError, and both
// modes agree on the record set whenever strict succeeds.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"type":"event","name":"fleet/answer","t0_us":10,"attrs":{"stream":1,"seq":0,"device":0,"source":"quantum"}}`))
	f.Add([]byte(`{"type":"span","name":"fleet/frame","t0_us":0,"t1_us":42.5,"attrs":{"stream":0,"seq":0,"queue_us":1.5}}`))
	f.Add([]byte(`{"type":"manifest","manifest":{}}` + "\n" + `{"type":"event","name":"x","t0_us":1}`))
	f.Add([]byte(`{"type":"span","t0_us":`))                                          // truncated object
	f.Add([]byte("not json at all\n{\"type\":\"event\"}"))                            // mixed garbage
	f.Add([]byte(`{"type":"event","t0_us":2}` + "\n" + `{"type":"event","t0_us":1}`)) // out of order
	f.Add([]byte(`{"type":"event","t0_us":1}` + "\n" + `{"type":"event","t0_us":1}`)) // duplicate
	f.Add([]byte(`{"type":"event","attrs":{"k":["nested",{"deep":true}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, stats, err := ParseTrace(bytes.NewReader(data), false)
		if err != nil {
			t.Fatalf("lenient mode errored: %v", err)
		}
		if len(recs) != stats.Records {
			t.Fatalf("lenient: %d records returned, stats claim %d", len(recs), stats.Records)
		}
		if stats.Records+stats.Skipped != stats.Lines && stats.Skipped != stats.Lines-stats.Records+1 {
			// Normal accounting: every non-blank line is parsed or skipped.
			// A scanner-level failure (over-long line) adds one extra skip
			// beyond the line count.
			t.Fatalf("lenient accounting broken: %+v", stats)
		}

		strictRecs, _, strictErr := ParseTrace(bytes.NewReader(data), true)
		if strictErr != nil {
			var pe *ParseError
			if !errors.As(strictErr, &pe) {
				t.Fatalf("strict error not a *ParseError: %v", strictErr)
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError with line %d", pe.Line)
			}
			return
		}
		if stats.Skipped != 0 {
			t.Fatalf("strict succeeded but lenient skipped %d lines", stats.Skipped)
		}
		if len(strictRecs) != len(recs) {
			t.Fatalf("strict and lenient disagree: %d vs %d records", len(strictRecs), len(recs))
		}
		// Whatever parsed must be analyzable without panics.
		if _, err := Analyze(strictRecs, Config{}); err != nil {
			t.Fatalf("Analyze rejected parsed records: %v", err)
		}
	})
}
