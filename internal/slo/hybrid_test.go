package slo

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/telemetry"
)

// hybridRequests interleaves easy 6-spin frames (even streams) with the
// paper's hard 32-spin frames (odd streams), the shape hardness routing
// splits across backend classes.
func hybridRequests(t testing.TB, streams, perStream int, interval float64) []fleet.Request {
	t.Helper()
	easy := testProblems(t)
	hard, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []fleet.Request
	for s := 0; s < streams; s++ {
		for q := 0; q < perStream; q++ {
			p := hard.Reduction.Ising
			if s%2 == 0 {
				p = easy[(s+q)%len(easy)]
			}
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * interval,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

// TestMonitorDoesNotPerturbHybridFleet extends the monitor acceptance
// regression to heterogeneous pools: a hybrid serve (QPU + PT + SA with
// hardness routing) tapped by a Monitor must stay bit-identical, and the
// snapshot's per-device utilization must cover the classical workers.
func TestMonitorDoesNotPerturbHybridFleet(t *testing.T) {
	reqs := hybridRequests(t, 4, 3, 200)
	devices := fleet.HybridDevices(1, 1, 1)
	run := func(attach bool) (*fleet.Result, []byte, *Monitor) {
		tr := telemetry.NewTracer()
		var m *Monitor
		if attach {
			m = NewMonitor(Config{Specs: DefaultSpecs(5000)})
			tr.AddSink(m)
		}
		res, err := fleet.Serve(context.Background(), fleet.Config{
			Devices: devices, Route: fleet.RouteHybrid,
			NumReads: 4, Seed: 42, Trace: tr,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res, traceJSONL(t, tr), m
	}
	plain, plainTrace, _ := run(false)
	monitored, monTrace, m := run(true)
	if !reflect.DeepEqual(plain.Outcomes, monitored.Outcomes) {
		t.Fatal("hybrid outcomes changed with monitoring attached")
	}
	if !bytes.Equal(plainTrace, monTrace) {
		t.Fatal("hybrid exported trace changed with monitoring attached")
	}

	snap, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tier.Served != len(reqs) || snap.Tier.Answers != len(reqs) {
		t.Fatalf("snapshot totals: %+v for %d requests", snap.Tier, len(reqs))
	}
	busy := map[int]bool{}
	for _, u := range snap.Utilization {
		if u.BusyMicros > 0 {
			busy[u.Device] = true
		}
	}
	for d := range devices {
		if !busy[d] {
			t.Fatalf("device %d (backend %s) shows no utilization: %+v",
				d, devices[d].Backend, snap.Utilization)
		}
	}

	// The routing decision itself must be visible in the outcomes: easy
	// frames land on classical solvers, hard ones refine on the QPU.
	classical, quantum := 0, 0
	for _, o := range plain.Outcomes {
		if o.Shed {
			continue
		}
		if o.Source == core.AnswerClassicalSolver {
			classical++
		} else {
			quantum++
		}
	}
	if classical == 0 || quantum == 0 {
		t.Fatalf("hybrid serve should exercise both classes, got %d classical / %d quantum", classical, quantum)
	}
}
