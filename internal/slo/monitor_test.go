package slo

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/annealer"
	"repro/internal/cran"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/telemetry"
)

var (
	problemOnce sync.Once
	problemPool []*qubo.Ising
)

func testProblems(t testing.TB) []*qubo.Ising {
	t.Helper()
	problemOnce.Do(func() {
		for seed := uint64(1); seed <= 4; seed++ {
			in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			problemPool = append(problemPool, in.Reduction.Ising)
		}
	})
	return problemPool
}

func uniformRequests(t testing.TB, streams, perStream int, interval, deadline float64) []fleet.Request {
	t.Helper()
	probs := testProblems(t)
	var reqs []fleet.Request
	for s := 0; s < streams; s++ {
		for q := 0; q < perStream; q++ {
			p := probs[(s*perStream+q)%len(probs)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * interval,
				Deadline:     deadline,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

func logicalDevices(n int) []fleet.Device {
	devs := make([]fleet.Device, n)
	for i := range devs {
		devs[i].SweepsPerMicrosecond = 30
	}
	return devs
}

func traceJSONL(t *testing.T, tr *telemetry.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMonitorDoesNotPerturbFleet is the acceptance regression: a fleet
// run with a Monitor tapping the tracer must produce bit-identical
// outcomes AND a bit-identical exported trace versus the same run
// without monitoring.
func TestMonitorDoesNotPerturbFleet(t *testing.T) {
	reqs := uniformRequests(t, 3, 6, 120, 0)
	run := func(attach bool) (*fleet.Result, []byte, *Monitor) {
		tr := telemetry.NewTracer()
		var m *Monitor
		if attach {
			m = NewMonitor(Config{Specs: DefaultSpecs(5000)})
			tr.AddSink(m)
		}
		res, err := fleet.Serve(context.Background(), fleet.Config{
			Devices: logicalDevices(2), NumReads: 4, Seed: 42, Trace: tr,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res, traceJSONL(t, tr), m
	}
	plain, plainTrace, _ := run(false)
	monitored, monTrace, m := run(true)
	if !reflect.DeepEqual(plain.Outcomes, monitored.Outcomes) {
		t.Fatal("outcomes changed with monitoring attached")
	}
	if !bytes.Equal(plainTrace, monTrace) {
		t.Fatal("exported trace changed with monitoring attached")
	}
	snap, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tier.Served != len(reqs) || snap.Tier.Answers != len(reqs) {
		t.Fatalf("snapshot totals: %+v for %d requests", snap.Tier, len(reqs))
	}
}

// TestMonitorDoesNotPerturbCRAN: same regression one level up, with
// shard labels in every record.
func TestMonitorDoesNotPerturbCRAN(t *testing.T) {
	probs := testProblems(t)
	var reqs []cran.Request
	for cell := 0; cell < 4; cell++ {
		for q := 0; q < 4; q++ {
			p := probs[(cell+q)%len(probs)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, cran.Request{
				Cell: cell, UE: 0, Seq: q,
				Arrival: float64(q) * 150, Problem: p, InitialState: init,
			})
		}
	}
	run := func(attach bool) (*cran.Result, []byte, *Monitor) {
		tr := telemetry.NewTracer()
		var m *Monitor
		if attach {
			m = NewMonitor(Config{Specs: DefaultSpecs(5000)})
			tr.AddSink(m)
		}
		res, err := cran.Serve(context.Background(), cran.Config{
			Shards: [][]fleet.Device{logicalDevices(2), logicalDevices(2)},
			Fleet:  fleet.Config{NumReads: 4},
			Seed:   7, Trace: tr,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res, traceJSONL(t, tr), m
	}
	plain, plainTrace, _ := run(false)
	monitored, monTrace, m := run(true)
	if !reflect.DeepEqual(plain.Outcomes, monitored.Outcomes) {
		t.Fatal("cran outcomes changed with monitoring attached")
	}
	if !bytes.Equal(plainTrace, monTrace) {
		t.Fatal("cran exported trace changed with monitoring attached")
	}
	snap, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Shards) == 0 {
		t.Fatal("no per-shard SLIs from a sharded run")
	}
	for _, s := range snap.Shards {
		if s.Scope == "" {
			t.Fatalf("unlabelled shard scope in %+v", snap.Shards)
		}
	}
}

// TestOfflineAnalysisMatchesLive: analyzing the exported JSONL must
// reproduce the live monitor's snapshot exactly — the slotool path and
// the in-process path are the same computation.
func TestOfflineAnalysisMatchesLive(t *testing.T) {
	reqs := uniformRequests(t, 4, 6, 100, 0)
	tr := telemetry.NewTracer()
	cfg := Config{Specs: DefaultSpecs(4000)}
	m := NewMonitor(cfg)
	tr.AddSink(m)
	if _, err := fleet.Serve(context.Background(), fleet.Config{
		Devices: logicalDevices(3), NumReads: 4, Seed: 9, Trace: tr,
	}, reqs); err != nil {
		t.Fatal(err)
	}
	live, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ParseTrace(bytes.NewReader(traceJSONL(t, tr)), true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Duplicates != 0 {
		t.Fatalf("clean trace parsed dirty: %+v", stats)
	}
	offline, err := Analyze(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, offline) {
		t.Fatalf("offline analysis diverged from live:\nlive:    %+v\noffline: %+v", live.Tier, offline.Tier)
	}

	var dashLive, dashOffline bytes.Buffer
	if err := live.WriteDashboard(&dashLive); err != nil {
		t.Fatal(err)
	}
	if err := offline.WriteDashboard(&dashOffline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dashLive.Bytes(), dashOffline.Bytes()) {
		t.Fatal("dashboards diverged")
	}
}

// TestCriticalPathTilesLatency: on a real fleet trace, every served
// frame's critical-path components must sum to its latency.
func TestCriticalPathTilesLatency(t *testing.T) {
	reqs := uniformRequests(t, 3, 8, 80, 0)
	tr := telemetry.NewTracer()
	if _, err := fleet.Serve(context.Background(), fleet.Config{
		Devices: logicalDevices(2), NumReads: 4, Seed: 5, Trace: tr,
	}, reqs); err != nil {
		t.Fatal(err)
	}
	paths := CriticalPaths(tr.Records())
	if len(paths) != len(reqs) {
		t.Fatalf("%d paths for %d served frames", len(paths), len(reqs))
	}
	for _, fp := range paths {
		sum := fp.Queue + fp.Program + fp.BatchWait + fp.Anneal + fp.Readout
		if math.Abs(sum-fp.Latency) > 1e-6*(1+fp.Latency) {
			t.Fatalf("frame (%d,%d): components %g != latency %g (%+v)",
				fp.Stream, fp.Seq, sum, fp.Latency, fp)
		}
		if fp.Latency <= 0 || fp.Dominant == "" {
			t.Fatalf("degenerate path %+v", fp)
		}
	}
}

// TestHealthRoutingOffIsIdentical: DeviceHealth nil and DeviceHealth of
// all-ones must schedule identically (the flag is off by default and
// uniform health divides busy time by 1 everywhere).
func TestHealthRoutingOffIsIdentical(t *testing.T) {
	// Two streams over three devices: each arrival tick leaves the
	// scheduler a real choice (with streams == devices every device gets
	// a forced pick and health weighting cannot show up).
	reqs := uniformRequests(t, 2, 9, 100, 0)
	run := func(health []float64) *fleet.Result {
		res, err := fleet.Serve(context.Background(), fleet.Config{
			Devices: logicalDevices(3), NumReads: 4, Seed: 11, DeviceHealth: health,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	uniform := run([]float64{1, 1, 1})
	if !reflect.DeepEqual(base.Outcomes, uniform.Outcomes) {
		t.Fatal("uniform health changed scheduling")
	}

	// A degraded device must attract less work when routing is enabled.
	biased := run([]float64{1, 0.05, 1})
	count := func(res *fleet.Result, dev int) int {
		n := 0
		for i := range res.Outcomes {
			if res.Outcomes[i].Device == dev {
				n++
			}
		}
		return n
	}
	if count(biased, 1) >= count(base, 1) {
		t.Fatalf("device 1 load did not drop under health 0.05: base %d, biased %d",
			count(base, 1), count(biased, 1))
	}
}

// TestShardHealthRoutingOffIsIdentical: the cran-level analogue under
// load-aware placement.
func TestShardHealthRoutingOffIsIdentical(t *testing.T) {
	probs := testProblems(t)
	var reqs []cran.Request
	for cell := 0; cell < 6; cell++ {
		p := probs[cell%len(probs)]
		init := make([]int8, p.N)
		for i := range init {
			init[i] = 1
		}
		reqs = append(reqs, cran.Request{
			Cell: cell, UE: 0, Seq: 0,
			Arrival: float64(cell) * 40, Problem: p, InitialState: init,
		})
	}
	run := func(health []float64) *cran.Result {
		res, err := cran.Serve(context.Background(), cran.Config{
			Shards:    [][]fleet.Device{logicalDevices(1), logicalDevices(1)},
			Placement: cran.PlacementLoadAware,
			Fleet:     fleet.Config{NumReads: 4},
			Seed:      3, ShardHealth: health,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	uniform := run([]float64{1, 1})
	if !reflect.DeepEqual(base.Outcomes, uniform.Outcomes) {
		t.Fatal("uniform shard health changed placement")
	}
	// With shard 1 at zero health every cell must land on shard 0.
	drained := run([]float64{1, 0})
	for _, o := range drained.Outcomes {
		if o.Shard != 0 {
			t.Fatalf("cell %d placed on drained shard %d", o.Cell, o.Shard)
		}
	}
}

// driftRequests builds a two-phase load: a light warmup, then a burst
// arriving faster than the pool drains, pushing queue delay (and thus
// latency) far past the warmup level.
func driftRequests(t testing.TB, streams, warm, burst int, warmGap float64) []fleet.Request {
	t.Helper()
	probs := testProblems(t)
	var reqs []fleet.Request
	for s := 0; s < streams; s++ {
		for q := 0; q < warm+burst; q++ {
			arrival := float64(q) * warmGap
			if q >= warm {
				// Burst: everything lands just after the warmup.
				arrival = float64(warm)*warmGap + float64(q-warm)*5
			}
			p := probs[(s+q)%len(probs)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, fleet.Request{
				Stream: s, Seq: q, Arrival: arrival,
				Problem: p, InitialState: init,
			})
		}
	}
	return reqs
}

// TestDriftInjectionSelfTest is the acceptance self-test: one device
// carries heavy injected calibration drift; the health scorer must flag
// exactly that device, and the overload-induced latency breach must walk
// the p99 burn-rate alert through firing.
func TestDriftInjectionSelfTest(t *testing.T) {
	devs := logicalDevices(3)
	devs[1].Faults = annealer.FaultModel{CalibrationDriftRate: 0.95, DriftSigma: 0.8}
	reqs := driftRequests(t, 4, 10, 20, 400)

	tr := telemetry.NewTracer()
	// Threshold between warmup latency and burst latency; tick sized so
	// the burst spans several ticks.
	cfg := Config{
		TickMicros: 100,
		Specs: []Spec{{
			Name: "frame-p99-latency", Kind: KindLatency,
			LatencyMicros: 60, Budget: 0.01,
			FastTicks: 2, SlowTicks: 8, FastBurn: 10, SlowBurn: 5, MinEvents: 10,
		}},
	}
	m := NewMonitor(cfg)
	tr.AddSink(m)
	if _, err := fleet.Serve(context.Background(), fleet.Config{
		Devices: devs, NumReads: 4, Seed: 17, Trace: tr,
	}, reqs); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Health: device 1 (and only device 1) is the outlier.
	if len(snap.Devices) != 3 {
		t.Fatalf("scored %d devices, want 3: %+v", len(snap.Devices), snap.Devices)
	}
	for _, h := range snap.Devices {
		if h.Device == 1 {
			if !h.Suspect {
				t.Fatalf("drifting device not flagged: %+v", snap.Devices)
			}
			if h.Score >= 0.5 {
				t.Fatalf("drifting device score %g too healthy", h.Score)
			}
		} else if h.Suspect {
			t.Fatalf("healthy device %d flagged: %+v", h.Device, h)
		}
	}

	// Alerting: the latency SLO must fire and eventually leave firing.
	fired := false
	for _, tr := range snap.Alerts {
		if tr.SLO == "frame-p99-latency" && tr.To == StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("p99 alert never fired; alerts: %+v, tier %+v", snap.Alerts, snap.Tier)
	}

	// And the scores feed the next run's scheduler as plain numbers.
	scores := Scores(snap.Devices, 3)
	if scores[1] >= scores[0] || scores[1] >= scores[2] {
		t.Fatalf("score vector does not single out device 1: %v", scores)
	}
	if _, err := fleet.Serve(context.Background(), fleet.Config{
		Devices: devs, NumReads: 4, Seed: 17, DeviceHealth: scores,
	}, reqs); err != nil {
		t.Fatalf("health-aware rerun failed: %v", err)
	}
}
