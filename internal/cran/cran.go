// Package cran is the paper's centralized-RAN story taken to city scale:
// a two-level serving tier where a front-end shard router places cells
// onto N independent fleet shards, each an internal/fleet dispatcher over
// its own simulated-QPU pool. The router owns cell placement (consistent
// hashing or load-aware), cross-shard failover when a shard's whole pool
// is dead, and per-shard admission backpressure; each shard keeps the
// fleet's bit-deterministic plan/execute contract.
//
// Determinism contract: Serve routes in two phases, mirroring fleet.Serve.
// The ROUTE phase is a single-threaded pass over frames in simulated
// arrival order that fixes every placement, failover epoch, admission
// decision, and router trace record — it depends only on the request set
// and static configuration (shard death times come from device FailAt
// config via fleet.PoolDeadAt, never from execution). The EXECUTE phase
// then runs each shard's fleet.Serve concurrently on up to ShardWorkers
// goroutines; per-shard seeds and telemetry shard labels are fixed by the
// route, so merged outcomes and the exported trace are bit-identical for
// any ShardWorkers, any per-shard Workers count, and any shard execution
// order.
package cran

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/qubo"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// Router shed reasons reported in Outcome.Frame.ShedReason and the
// cran_router_shed_total{reason} counter. They extend the fleet's
// degradation ladder one level up.
const (
	// ShedNoLiveShard: every shard's pool is dead at the frame's arrival.
	ShedNoLiveShard = "no-live-shard"
	// ShedShardBackpressure: the serving shard's estimated queueing delay
	// exceeded AdmitQueueMicros at the frame's arrival.
	ShedShardBackpressure = "shard-backpressure"
)

// classicalFallbackPerSpin matches fleet's (and pipeline's) modelled
// μs-per-spin cost of answering a shed frame classically, so router-shed
// and fleet-shed frames price identically.
const classicalFallbackPerSpin = 1e-3

// Stream identity limits: a (cell, ue) pair packs into one fleet stream
// id as cell·1024 + ue, which must stay inside the fleet's [0, 2^31)
// stream range.
const (
	// MaxCells bounds Request.Cell.
	MaxCells = 1 << 20
	// MaxUEsPerCell bounds Request.UE.
	MaxUEsPerCell = 1 << 10
)

// Request is one detection frame submitted to the serving tier,
// addressed by (cell, UE) instead of a flat stream id.
type Request struct {
	// Cell is the originating base station, in [0, MaxCells). The router
	// places whole cells: every frame of a cell lands on the cell's
	// current shard.
	Cell int
	// UE identifies the user stream within the cell, in [0, MaxUEsPerCell).
	UE int
	// Seq orders frames within a (cell, UE) stream; per-stream FIFO is
	// defined over Seq, and arrivals must be non-decreasing in Seq order.
	Seq int
	// Arrival is the simulated-μs arrival time.
	Arrival float64
	// Deadline is the latency budget in μs after Arrival (0: none).
	Deadline float64
	// Problem is the reduced detection problem.
	Problem *qubo.Ising
	// InitialState is the classical candidate (len == Problem.N).
	InitialState []int8
	// Sp, Tp, NumReads override shard-level defaults (0: defaults).
	Sp, Tp   float64
	NumReads int
}

// StreamID packs the (cell, ue) pair into the fleet stream id the shard
// dispatcher sees.
func StreamID(cell, ue int) int { return cell*MaxUEsPerCell + ue }

// Config tunes one Serve call.
type Config struct {
	// Shards partitions the QPU pool: Shards[i] is shard i's device list
	// (required: ≥ 1 shard, every shard non-empty).
	Shards [][]fleet.Device
	// Placement selects the cell-placement policy (default PlacementHash).
	Placement Placement
	// VirtualNodes is the consistent-hash ring's per-shard point count
	// (default 64; see ring's documented balance bound).
	VirtualNodes int
	// Fleet is the per-shard dispatcher template: policy, anneal
	// defaults, batching, queue bounds, and per-shard Workers all apply
	// to every shard. Devices, Seed, ShardLabel, Trace, and Metrics are
	// owned by the router and overwritten per shard.
	Fleet fleet.Config
	// AdmitQueueMicros bounds each shard's estimated queueing delay: a
	// frame whose serving shard's backlog estimate exceeds it at arrival
	// is shed at admission with ShedShardBackpressure. 0 disables router
	// backpressure (shards still shed by their own queue bounds).
	AdmitQueueMicros float64
	// EstReadMicros is the admission estimator's per-read service cost in
	// μs (default 1): an admitted frame advances its shard's drain
	// estimate by reads·EstReadMicros/len(devices). It is a routing
	// estimate only — actual timing is fixed by the shard's own plan.
	EstReadMicros float64
	// ShardHealth optionally biases load-aware placement with per-shard
	// health scores in [0, 1] (e.g. from a previous run's SLO monitor,
	// internal/slo): a shard's estimated load is divided by its health,
	// so degraded shards attract proportionally fewer cells, and a score
	// of 0 excludes the shard from new placements entirely (it still
	// serves cells already placed on it). Must be nil or have one entry
	// per shard. Nil — the default — keeps placement identical to a
	// health-blind router; a regression test pins that. Scores are static
	// routing inputs, never fed back from the run being served, so the
	// route phase stays a pure function of (cfg, reqs).
	ShardHealth []float64
	// Seed roots every RNG stream; shard i serves under an independent
	// seed split from (Seed, i).
	Seed uint64
	// ShardWorkers caps how many shard Serves run concurrently (default
	// min(GOMAXPROCS, shards)). It cannot affect results.
	ShardWorkers int
	// Trace and Metrics receive router and shard telemetry (nil-safe).
	// They are shared across shards: every shard-emitted record carries a
	// shard attribute/label (fleet.Config.ShardLabel), which keeps the
	// merged trace export deterministic.
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry

	// execPerm, when non-nil, fixes the order shard Serves are launched
	// in. It is an in-package test hook for proving shard execution order
	// cannot affect results; the zero value launches shards in index
	// order.
	execPerm []int
}

// Outcome is one frame's fate at the tier level: where the router sent
// it and what the shard (or the router's own shed path) answered.
type Outcome struct {
	Cell int `json:"cell"`
	UE   int `json:"ue"`
	Seq  int `json:"seq"`
	// Shard is the serving shard after any failover; −1 when the router
	// shed the frame before admission.
	Shard int `json:"shard"`
	// Epoch is the cell's placement epoch the frame was admitted under
	// (0: original placement; each failover increments it).
	Epoch int `json:"epoch"`
	// FailedOver marks frames admitted under a failover epoch: the cell
	// had been moved off its original shard by the frame's arrival.
	FailedOver bool `json:"failed_over,omitempty"`
	// RouterShed marks frames the router answered classically without
	// admitting to any shard; Frame.ShedReason says why.
	RouterShed bool `json:"router_shed,omitempty"`
	// Frame is the shard-level outcome (or the router's synthesized
	// fallback outcome for router-shed frames). Frame.Stream is the
	// packed StreamID(Cell, UE).
	Frame fleet.Outcome `json:"frame"`
}

// PlacementRecord is one epoch of a cell's placement history. Epoch 0 is
// the original placement; each cross-shard failover appends the next
// epoch. SinceMicros is the arrival time of the frame that established
// the epoch.
type PlacementRecord struct {
	Cell        int     `json:"cell"`
	Epoch       int     `json:"epoch"`
	Shard       int     `json:"shard"`
	SinceMicros float64 `json:"since_us"`
}

// Result is one Serve call's full output.
type Result struct {
	// Outcomes holds one entry per request, ordered by (Cell, UE, Seq).
	Outcomes []Outcome
	// Placements is the full placement history, ordered by (Cell, Epoch).
	Placements []PlacementRecord
	// ShardReports holds each shard's fleet report (zero value for shards
	// that admitted no frames).
	ShardReports []fleet.Report
	// Report aggregates tier-level statistics.
	Report Report
}

func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Shards) == 0 {
		return cfg, fmt.Errorf("cran: no shards")
	}
	for i, devs := range cfg.Shards {
		if len(devs) == 0 {
			return cfg, fmt.Errorf("cran: shard %d has no devices", i)
		}
	}
	if !cfg.Placement.valid() {
		return cfg, fmt.Errorf("cran: unknown placement %d", int(cfg.Placement))
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.VirtualNodes < 1 {
		return cfg, fmt.Errorf("cran: virtual nodes %d < 1", cfg.VirtualNodes)
	}
	if cfg.ShardHealth != nil {
		if len(cfg.ShardHealth) != len(cfg.Shards) {
			return cfg, fmt.Errorf("cran: %d shard health scores for %d shards", len(cfg.ShardHealth), len(cfg.Shards))
		}
		for i, h := range cfg.ShardHealth {
			if math.IsNaN(h) || h < 0 || h > 1 {
				return cfg, fmt.Errorf("cran: shard %d health %g outside [0, 1]", i, h)
			}
		}
	}
	if cfg.AdmitQueueMicros < 0 || math.IsNaN(cfg.AdmitQueueMicros) {
		return cfg, fmt.Errorf("cran: bad admit queue bound %g", cfg.AdmitQueueMicros)
	}
	if cfg.EstReadMicros == 0 {
		cfg.EstReadMicros = 1
	}
	if cfg.EstReadMicros < 0 || math.IsNaN(cfg.EstReadMicros) || math.IsInf(cfg.EstReadMicros, 0) {
		return cfg, fmt.Errorf("cran: bad per-read estimate %g", cfg.EstReadMicros)
	}
	if cfg.ShardWorkers == 0 {
		cfg.ShardWorkers = runtime.GOMAXPROCS(0)
		if cfg.ShardWorkers > len(cfg.Shards) {
			cfg.ShardWorkers = len(cfg.Shards)
		}
	}
	if cfg.ShardWorkers < 1 {
		return cfg, fmt.Errorf("cran: shard workers %d < 1", cfg.ShardWorkers)
	}
	if cfg.execPerm != nil {
		if len(cfg.execPerm) != len(cfg.Shards) {
			return cfg, fmt.Errorf("cran: exec perm length %d for %d shards", len(cfg.execPerm), len(cfg.Shards))
		}
		seen := make([]bool, len(cfg.Shards))
		for _, s := range cfg.execPerm {
			if s < 0 || s >= len(cfg.Shards) || seen[s] {
				return cfg, fmt.Errorf("cran: exec perm is not a permutation of shards")
			}
			seen[s] = true
		}
	}
	return cfg, nil
}

// ValidateRequests checks a request set is servable at the tier level:
// cell/UE identities in range, plus every fleet-level requirement
// (problems present, candidates sized, unique (cell, ue, seq), per-stream
// arrivals non-decreasing) checked over the packed stream ids.
func ValidateRequests(reqs []Request) error {
	for i, r := range reqs {
		if r.Cell < 0 || r.Cell >= MaxCells {
			return fmt.Errorf("cran: request %d: cell %d out of [0, %d)", i, r.Cell, MaxCells)
		}
		if r.UE < 0 || r.UE >= MaxUEsPerCell {
			return fmt.Errorf("cran: request %d: ue %d out of [0, %d)", i, r.UE, MaxUEsPerCell)
		}
	}
	freqs := make([]fleet.Request, len(reqs))
	for i, r := range reqs {
		freqs[i] = toFleetRequest(r)
	}
	return fleet.ValidateRequests(freqs)
}

func toFleetRequest(r Request) fleet.Request {
	return fleet.Request{
		Stream: StreamID(r.Cell, r.UE), Seq: r.Seq,
		Arrival: r.Arrival, Deadline: r.Deadline,
		Problem: r.Problem, InitialState: r.InitialState,
		Sp: r.Sp, Tp: r.Tp, NumReads: r.NumReads,
	}
}

// cellState is one cell's routing state during the route phase.
type cellState struct {
	shard int
	epoch int
}

// router is the single-threaded route-phase state.
type router struct {
	cfg    Config
	ring   *ring
	deadAt []float64 // per shard: fleet.PoolDeadAt

	cells    map[int]*cellState
	records  []PlacementRecord
	estDrain []float64 // per shard: estimated drain instant (abs μs)
	estLoad  []float64 // per shard: cumulative estimated service μs

	perShard   [][]fleet.Request // admitted fleet requests per shard
	frameShard []int             // per request index: shard or −1
	frameEpoch []int
	routerShed int
	failovers  int
}

// Serve routes and executes one tier run over a request set. It returns
// one Outcome per request ordered by (Cell, UE, Seq); the only errors
// are invalid inputs, context cancellation, and non-fault shard
// execution failures — dead shards and overload degrade to failover and
// classical fallbacks instead.
func Serve(ctx context.Context, cfg Config, reqs []Request) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ValidateRequests(reqs); err != nil {
		return nil, err
	}

	rt := &router{
		cfg:        cfg,
		ring:       buildRing(len(cfg.Shards), cfg.VirtualNodes, cfg.Seed),
		deadAt:     make([]float64, len(cfg.Shards)),
		cells:      make(map[int]*cellState),
		estDrain:   make([]float64, len(cfg.Shards)),
		estLoad:    make([]float64, len(cfg.Shards)),
		perShard:   make([][]fleet.Request, len(cfg.Shards)),
		frameShard: make([]int, len(reqs)),
		frameEpoch: make([]int, len(reqs)),
	}
	for s, devs := range cfg.Shards {
		rt.deadAt[s] = fleet.PoolDeadAt(devs)
	}

	outcomes := make([]Outcome, len(reqs))
	rt.route(reqs, outcomes)

	reports, err := rt.execute(ctx, reqs, outcomes)
	if err != nil {
		return nil, err
	}

	sort.Slice(outcomes, func(i, j int) bool {
		a, b := outcomes[i], outcomes[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		return a.Seq < b.Seq
	})
	sort.Slice(rt.records, func(i, j int) bool {
		if rt.records[i].Cell != rt.records[j].Cell {
			return rt.records[i].Cell < rt.records[j].Cell
		}
		return rt.records[i].Epoch < rt.records[j].Epoch
	})

	res := &Result{
		Outcomes:     outcomes,
		Placements:   rt.records,
		ShardReports: reports,
	}
	res.Report = rt.report(res)
	return res, nil
}

// route is the single-threaded route phase: frames in simulated arrival
// order (ties by cell, ue, seq) are placed, failed over, admitted, or
// shed. Everything it decides is a pure function of (cfg, reqs).
func (rt *router) route(reqs []Request, outcomes []Outcome) {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Arrival != rb.Arrival {
			return ra.Arrival < rb.Arrival
		}
		if ra.Cell != rb.Cell {
			return ra.Cell < rb.Cell
		}
		if ra.UE != rb.UE {
			return ra.UE < rb.UE
		}
		return ra.Seq < rb.Seq
	})

	for _, i := range order {
		r := reqs[i]
		cs := rt.placeCell(r.Cell, r.Arrival)
		if cs == nil || rt.deadAt[cs.shard] <= r.Arrival {
			if cs != nil {
				cs = rt.failOver(cs, r.Cell, r.Arrival)
			}
			if cs == nil {
				rt.shed(i, r, ShedNoLiveShard, outcomes)
				continue
			}
		}
		s := cs.shard
		reads := r.NumReads
		if reads == 0 {
			reads = rt.cfg.Fleet.NumReads
		}
		if reads == 0 {
			reads = 50 // fleet's default read count
		}
		cost := float64(reads) * rt.cfg.EstReadMicros / float64(len(rt.cfg.Shards[s]))
		if rt.estDrain[s] < r.Arrival {
			rt.estDrain[s] = r.Arrival
		}
		if rt.cfg.AdmitQueueMicros > 0 && rt.estDrain[s]-r.Arrival > rt.cfg.AdmitQueueMicros {
			rt.shed(i, r, ShedShardBackpressure, outcomes)
			continue
		}
		rt.estDrain[s] += cost
		rt.estLoad[s] += cost
		rt.frameShard[i] = s
		rt.frameEpoch[i] = cs.epoch
		rt.perShard[s] = append(rt.perShard[s], toFleetRequest(r))
		if rt.cfg.Metrics != nil {
			rt.cfg.Metrics.Counter("cran_admitted_total",
				telemetry.Label{Key: "shard", Value: fmt.Sprint(s)}).Inc()
		}
	}
}

// placeCell returns the cell's current state, establishing epoch 0 on
// first touch. A nil return means no shard is live at t (load-aware
// placement refuses to place a cell on a dead shard; the hash ring
// always returns its owner and lets the failover walk sort it out).
func (rt *router) placeCell(cell int, t float64) *cellState {
	if cs, ok := rt.cells[cell]; ok {
		return cs
	}
	var s int
	switch rt.cfg.Placement {
	case PlacementLoadAware:
		s = rt.leastLoadedLive(t, -1)
		if s < 0 {
			return nil
		}
	default:
		s = rt.ring.place(cell)
	}
	cs := &cellState{shard: s}
	rt.cells[cell] = cs
	rt.records = append(rt.records, PlacementRecord{Cell: cell, Epoch: 0, Shard: s, SinceMicros: t})
	return cs
}

// failOver moves a cell off its dead shard to the next live one,
// recording the new epoch; nil when every shard is dead at t.
func (rt *router) failOver(cs *cellState, cell int, t float64) *cellState {
	from := cs.shard
	next := -1
	switch rt.cfg.Placement {
	case PlacementLoadAware:
		next = rt.leastLoadedLive(t, from)
	default:
		for _, s := range rt.ring.successors(cell) {
			if rt.deadAt[s] > t {
				next = s
				break
			}
		}
	}
	if next < 0 {
		return nil
	}
	cs.shard = next
	cs.epoch++
	rt.failovers++
	rt.records = append(rt.records, PlacementRecord{Cell: cell, Epoch: cs.epoch, Shard: next, SinceMicros: t})
	rt.cfg.Trace.Event("cran/failover", t, telemetry.Attrs{
		"cell": cell, "epoch": cs.epoch, "from": from, "to": next,
	})
	if rt.cfg.Metrics != nil {
		rt.cfg.Metrics.Counter("cran_failovers_total").Inc()
	}
	return cs
}

// leastLoadedLive returns the live shard with the least estimated load
// (ties to the lowest index), skipping `not`; −1 when none is live.
// With ShardHealth set, load is health-weighted: estLoad/health, so a
// half-healthy shard looks twice as loaded, and a zero-health shard is
// infinitely loaded (placed on only when every live shard is at zero
// health). Without ShardHealth the comparison is the plain estimate.
func (rt *router) leastLoadedLive(t float64, not int) int {
	load := func(s int) float64 {
		if rt.cfg.ShardHealth == nil {
			return rt.estLoad[s]
		}
		h := rt.cfg.ShardHealth[s]
		if h <= 0 {
			return math.Inf(1)
		}
		return rt.estLoad[s] / h
	}
	best := -1
	for s := range rt.cfg.Shards {
		if s == not || rt.deadAt[s] <= t {
			continue
		}
		if best < 0 || load(s) < load(best) {
			best = s
		}
	}
	return best
}

// shed answers a frame classically at admission, pricing the fallback
// exactly like the fleet's own shed path.
func (rt *router) shed(i int, r Request, reason string, outcomes []Outcome) {
	rt.frameShard[i] = -1
	rt.frameEpoch[i] = 0
	rt.routerShed++
	o := fleet.Outcome{
		Stream: StreamID(r.Cell, r.UE), Seq: r.Seq,
		Arrival: r.Arrival,
		Start:   r.Arrival,
		Finish:  r.Arrival + float64(r.Problem.N)*classicalFallbackPerSpin,
		Device:  -1, Batch: -1,
		Shed: true, ShedReason: reason,
		Source: core.AnswerClassicalFallback,
		Best: qubo.Sample{
			Spins:  append([]int8(nil), r.InitialState...),
			Energy: r.Problem.Energy(r.InitialState),
		},
	}
	if r.Deadline > 0 && o.Finish > r.Arrival+r.Deadline {
		o.DeadlineMissed = true
	}
	outcomes[i] = Outcome{
		Cell: r.Cell, UE: r.UE, Seq: r.Seq,
		Shard: -1, RouterShed: true, Frame: o,
	}
	rt.cfg.Trace.Event("cran/router-shed", r.Arrival, telemetry.Attrs{
		"cell": r.Cell, "ue": r.UE, "seq": r.Seq, "reason": reason,
	})
	if rt.cfg.Metrics != nil {
		rt.cfg.Metrics.Counter("cran_router_shed_total",
			telemetry.Label{Key: "reason", Value: reason}).Inc()
	}
}

// execute runs every non-empty shard's fleet.Serve, up to ShardWorkers
// at a time, in execPerm launch order, then merges shard outcomes back
// into the tier outcomes. Seeds, labels, and admitted sets are all fixed
// by the route phase, so concurrency here cannot affect results.
func (rt *router) execute(ctx context.Context, reqs []Request, outcomes []Outcome) ([]fleet.Report, error) {
	nShards := len(rt.cfg.Shards)
	results := make([]*fleet.Result, nShards)
	errs := make([]error, nShards)
	seeds := rng.New(rt.cfg.Seed).SplitString("cran/shard-seed")

	order := rt.cfg.execPerm
	if order == nil {
		order = make([]int, nShards)
		for i := range order {
			order[i] = i
		}
	}

	sem := make(chan struct{}, rt.cfg.ShardWorkers)
	var wg sync.WaitGroup
	for _, s := range order {
		if len(rt.perShard[s]) == 0 {
			continue
		}
		fc := rt.cfg.Fleet
		fc.Devices = rt.cfg.Shards[s]
		fc.Seed = seeds.Split(uint64(s)).Uint64()
		fc.ShardLabel = fmt.Sprint(s)
		fc.Trace = rt.cfg.Trace
		fc.Metrics = rt.cfg.Metrics
		wg.Add(1)
		sem <- struct{}{}
		go func(s int, fc fleet.Config) {
			defer func() { <-sem; wg.Done() }()
			results[s], errs[s] = fleet.Serve(ctx, fc, rt.perShard[s])
		}(s, fc)
	}
	wg.Wait()
	for s := 0; s < nShards; s++ {
		if errs[s] != nil {
			return nil, fmt.Errorf("cran: shard %d: %w", s, errs[s])
		}
	}

	// Merge: shard outcomes come back ordered by (stream, seq); map each
	// back to its request slot by frame identity.
	slot := make(map[[2]int]int, len(reqs))
	for i, r := range reqs {
		slot[[2]int{StreamID(r.Cell, r.UE), r.Seq}] = i
	}
	reports := make([]fleet.Report, nShards)
	for s := 0; s < nShards; s++ {
		if results[s] == nil {
			continue
		}
		reports[s] = results[s].Report
		for _, fo := range results[s].Outcomes {
			i := slot[[2]int{fo.Stream, fo.Seq}]
			outcomes[i] = Outcome{
				Cell: reqs[i].Cell, UE: reqs[i].UE, Seq: reqs[i].Seq,
				Shard:      s,
				Epoch:      rt.frameEpoch[i],
				FailedOver: rt.frameEpoch[i] > 0,
				Frame:      fo,
			}
		}
	}
	return reports, nil
}
