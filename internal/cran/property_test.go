package cran

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
)

// checkTierInvariants asserts the routing properties every placement
// policy must uphold, whatever the load, deaths, or backpressure:
//   - conservation: exactly one outcome per request, and every frame is
//     exactly one of served or shed (router- or shard-level);
//   - placement discipline: every admitted frame ran on the shard its
//     cell's recorded epoch placed it on, the epoch was active at the
//     frame's arrival, and that shard's pool was alive then;
//   - router-shed frames carry a reason and a classical answer.
func checkTierInvariants(t *testing.T, cfg Config, reqs []Request, res *Result) {
	t.Helper()
	if len(res.Outcomes) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), len(reqs))
	}
	want := map[[3]int]bool{}
	for _, r := range reqs {
		want[[3]int{r.Cell, r.UE, r.Seq}] = true
	}
	// epochs[cell] is the cell's placement history in epoch order.
	epochs := map[int][]PlacementRecord{}
	for _, p := range res.Placements {
		if p.Epoch != len(epochs[p.Cell]) {
			t.Fatalf("cell %d epoch history has a gap: %+v", p.Cell, res.Placements)
		}
		epochs[p.Cell] = append(epochs[p.Cell], p)
	}

	seen := map[[3]int]bool{}
	served, shed, routerShed, failedOver := 0, 0, 0, 0
	for _, o := range res.Outcomes {
		k := [3]int{o.Cell, o.UE, o.Seq}
		if !want[k] {
			t.Fatalf("outcome for unknown frame %v", k)
		}
		if seen[k] {
			t.Fatalf("frame %v reported twice", k)
		}
		seen[k] = true
		if o.Frame.Stream != StreamID(o.Cell, o.UE) || o.Frame.Seq != o.Seq {
			t.Fatalf("frame %v identity mismatch: %+v", k, o.Frame)
		}
		if o.FailedOver {
			failedOver++
		}
		switch {
		case o.RouterShed:
			routerShed++
			shed++
			if o.Shard != -1 {
				t.Fatalf("router-shed frame %v claims shard %d", k, o.Shard)
			}
			if o.Frame.ShedReason != ShedNoLiveShard && o.Frame.ShedReason != ShedShardBackpressure {
				t.Fatalf("router-shed frame %v has reason %q", k, o.Frame.ShedReason)
			}
			if !o.Frame.Shed || o.Frame.Source != core.AnswerClassicalFallback || len(o.Frame.Best.Spins) == 0 {
				t.Fatalf("router-shed frame %v lacks a fallback answer: %+v", k, o.Frame)
			}
		case o.Frame.Shed:
			shed++
			if o.Shard < 0 || o.Shard >= len(cfg.Shards) {
				t.Fatalf("shard-shed frame %v has shard %d", k, o.Shard)
			}
		default:
			served++
			if o.Shard < 0 || o.Shard >= len(cfg.Shards) {
				t.Fatalf("served frame %v has shard %d", k, o.Shard)
			}
		}
		if o.Shard >= 0 {
			// Placement discipline: the admitting epoch exists, names this
			// shard, and was active at the frame's arrival.
			hist := epochs[o.Cell]
			if o.Epoch >= len(hist) {
				t.Fatalf("frame %v admitted under unrecorded epoch %d (history %+v)", k, o.Epoch, hist)
			}
			rec := hist[o.Epoch]
			if rec.Shard != o.Shard {
				t.Fatalf("frame %v served by shard %d but epoch %d placed cell on %d", k, o.Shard, o.Epoch, rec.Shard)
			}
			if rec.SinceMicros > o.Frame.Arrival {
				t.Fatalf("frame %v (arrival %g) admitted under epoch %d established later at %g",
					k, o.Frame.Arrival, o.Epoch, rec.SinceMicros)
			}
			if o.Epoch+1 < len(hist) && hist[o.Epoch+1].SinceMicros < o.Frame.Arrival {
				t.Fatalf("frame %v (arrival %g) admitted under epoch %d after epoch %d took over at %g",
					k, o.Frame.Arrival, o.Epoch, o.Epoch+1, hist[o.Epoch+1].SinceMicros)
			}
			if dead := fleet.PoolDeadAt(cfg.Shards[o.Shard]); dead <= o.Frame.Arrival {
				t.Fatalf("frame %v admitted to shard %d dead since %g", k, o.Shard, dead)
			}
			if (o.Epoch > 0) != o.FailedOver {
				t.Fatalf("frame %v failover flag disagrees with epoch %d", k, o.Epoch)
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("%d frames answered of %d submitted", len(seen), len(want))
	}
	rep := res.Report
	if served != rep.Served || shed != rep.Shed || served+shed != len(reqs) {
		t.Fatalf("conservation broken: served=%d shed=%d frames=%d report=%+v", served, shed, len(reqs), rep)
	}
	if routerShed != rep.RouterShed || rep.Admitted != len(reqs)-routerShed {
		t.Fatalf("admission miscounted: routerShed=%d report=%+v", routerShed, rep)
	}
	if failedOver != rep.FailedOverFrames {
		t.Fatalf("failed-over frames miscounted: %d vs report %d", failedOver, rep.FailedOverFrames)
	}
}

// tierScenario is a hostile mixed scenario: one shard dead from the
// start, one dying mid-run, backpressure on, deadlines tight.
func tierScenario(t *testing.T, placement Placement) (Config, []Request) {
	t.Helper()
	shards := logicalShards(4, 2)
	// Kill cell 0's hash owner almost immediately (under load-aware every
	// shard hosts cells anyway) and another shard mid-run.
	victim := buildRing(4, 64, 0xBEEF).place(0)
	shards[victim][0].FailAt = 1
	shards[victim][1].FailAt = 1
	other := (victim + 1) % 4
	shards[other][0].FailAt = 700
	shards[other][1].FailAt = 900
	cfg := Config{
		Shards:           shards,
		Placement:        placement,
		Fleet:            fleet.Config{NumReads: 4, BatchMax: 2, StreamQueueBound: 4},
		AdmitQueueMicros: 4_000,
		EstReadMicros:    30,
		Seed:             0xBEEF,
	}
	reqs := cityRequests(t, 10, 2, 5, 300, 6_000)
	return cfg, reqs
}

func TestTierInvariants(t *testing.T) {
	for _, placement := range []Placement{PlacementHash, PlacementLoadAware} {
		t.Run(placement.String(), func(t *testing.T) {
			cfg, reqs := tierScenario(t, placement)
			res, err := Serve(context.Background(), cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Failovers == 0 {
				t.Fatal("scenario produced no failovers; it is not exercising the property")
			}
			checkTierInvariants(t, cfg, reqs, res)
		})
	}
}

// TestLoadAwareBalance pins the load-aware policy's point: with uniform
// cells, placement spreads load within a factor of the shard count.
func TestLoadAwareBalance(t *testing.T) {
	cfg := Config{
		Shards:    logicalShards(4, 1),
		Placement: PlacementLoadAware,
		Fleet:     fleet.Config{NumReads: 4},
		Seed:      5,
	}
	reqs := cityRequests(t, 32, 1, 2, 100, 0)
	res, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, p := range res.Placements {
		counts[p.Shard]++
	}
	for s, c := range counts {
		if c != 8 {
			t.Fatalf("load-aware placed %d uniform cells on shard %d, want 8 (counts %v)", c, s, counts)
		}
	}
}

// FuzzCellPlacement asserts the consistent-hash ring's contract over
// arbitrary shapes: placement is total (a valid shard for every cell),
// stable (a pure function of cell and ring shape, with the failover walk
// starting at the owner and visiting every shard exactly once), and —
// for populations of ≥ 64 cells per shard at ≥ 64 virtual nodes —
// balanced within the documented 4× bound.
func FuzzCellPlacement(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(64), uint16(512))
	f.Add(uint64(0xC4A17), uint8(8), uint8(64), uint16(1024))
	f.Add(uint64(7), uint8(1), uint8(1), uint16(16))
	f.Add(uint64(42), uint8(16), uint8(128), uint16(2000))
	f.Fuzz(func(t *testing.T, seed uint64, shards, vnodes uint8, cells uint16) {
		ns := int(shards)%16 + 1
		nv := int(vnodes)%128 + 1
		nc := int(cells)%4096 + 1

		r := buildRing(ns, nv, seed)
		again := buildRing(ns, nv, seed)
		counts := make([]int, ns)
		for cell := 0; cell < nc; cell++ {
			s := r.place(cell)
			if s < 0 || s >= ns {
				t.Fatalf("cell %d placed on shard %d of %d", cell, s, ns)
			}
			if s2 := again.place(cell); s2 != s {
				t.Fatalf("cell %d placement unstable: %d then %d", cell, s, s2)
			}
			succ := r.successors(cell)
			if len(succ) != ns || succ[0] != s {
				t.Fatalf("cell %d failover walk %v does not start at owner %d or cover %d shards", cell, succ, s, ns)
			}
			hit := make([]bool, ns)
			for _, x := range succ {
				if x < 0 || x >= ns || hit[x] {
					t.Fatalf("cell %d failover walk %v is not a shard permutation", cell, succ)
				}
				hit[x] = true
			}
			counts[s]++
		}
		if nv >= 64 && nc >= 64*ns {
			mean := float64(nc) / float64(ns)
			for s, c := range counts {
				if float64(c) > 4*mean {
					t.Fatalf("shard %d owns %d of %d cells (mean %.1f): beyond the documented 4x bound", s, c, nc, mean)
				}
			}
		}
	})
}

// FuzzTierRoute generates random but conforming city workloads and tier
// shapes, then asserts the routing invariants hold and the run is
// reproducible.
func FuzzTierRoute(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(6), uint8(0), uint16(0), false)
	f.Add(uint64(9), uint8(4), uint8(12), uint8(1), uint16(2000), true)
	f.Fuzz(func(t *testing.T, seed uint64, shards, cells, placement uint8, admit uint16, deaths bool) {
		ns := int(shards)%4 + 1
		nc := int(cells)%12 + 1
		pol := Placement(int(placement) % 2)

		cfg := Config{
			Shards:           logicalShards(ns, 2),
			Placement:        pol,
			Fleet:            fleet.Config{NumReads: 2, BatchMax: 2, StreamQueueBound: 3},
			AdmitQueueMicros: float64(admit),
			EstReadMicros:    40,
			Seed:             seed,
		}
		if deaths {
			cfg.Shards[0][0].FailAt = 500
			cfg.Shards[0][1].FailAt = 700
		}
		reqs := cityRequests(t, nc, 2, 3, 150, 4_000)
		res, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkTierInvariants(t, cfg, reqs, res)

		again, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(res.Outcomes)
		jb, _ := json.Marshal(again.Outcomes)
		if !bytes.Equal(ja, jb) {
			t.Fatal("re-run diverged")
		}
	})
}

// TestRingSuccessorOrderMatchesPlacement pins the documented failover
// semantics: successors is the clockwise shard order, so the first live
// entry is the failover target the router must choose.
func TestRingSuccessorOrderMatchesPlacement(t *testing.T) {
	r := buildRing(5, 64, 123)
	for cell := 0; cell < 200; cell++ {
		succ := r.successors(cell)
		sorted := append([]int(nil), succ...)
		sort.Ints(sorted)
		for s := 0; s < 5; s++ {
			if sorted[s] != s {
				t.Fatalf("cell %d walk %v misses shard %d", cell, succ, s)
			}
		}
	}
}
