package cran

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
)

// TestHybridShards serves a tier whose shards mix QPU and classical
// backends under hardness routing: the run must stay deterministic, both
// backend classes must serve frames, and per-backend accounting must
// surface in each shard's fleet report without any cran-level change.
func TestHybridShards(t *testing.T) {
	hard, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	easy := testProblems(t)
	var reqs []Request
	for c := 0; c < 4; c++ {
		for q := 0; q < 3; q++ {
			p := hard.Reduction.Ising
			if c%2 == 0 {
				p = easy[(c+q)%len(easy)]
			}
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, Request{
				Cell: c, UE: 0, Seq: q,
				Arrival:      float64(q) * 300,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	run := func() *Result {
		res, err := Serve(context.Background(), Config{
			Shards: [][]fleet.Device{fleet.HybridDevices(1, 1, 0), fleet.HybridDevices(1, 0, 1)},
			Fleet:  fleet.Config{NumReads: 4, Route: fleet.RouteHybrid},
			Seed:   7,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatal("hybrid tier outcomes not deterministic across identical runs")
	}
	if !reflect.DeepEqual(a.ShardReports, b.ShardReports) {
		t.Fatal("hybrid tier shard reports not deterministic across identical runs")
	}

	classical, quantum := 0, 0
	for _, o := range a.Outcomes {
		if o.Frame.Shed {
			continue
		}
		if o.Frame.Source == core.AnswerClassicalSolver {
			classical++
		} else {
			quantum++
		}
	}
	if classical == 0 || quantum == 0 {
		t.Fatalf("hybrid shards should serve both classes, got %d classical / %d quantum", classical, quantum)
	}

	seen := map[string]bool{}
	for _, fr := range a.ShardReports {
		for _, bs := range fr.Backends {
			if bs.Frames > 0 {
				seen[bs.Backend] = true
			}
		}
	}
	if !seen[fleet.BackendQPUSim.String()] {
		t.Fatalf("no QPU frames in shard backend stats: %v", seen)
	}
	if !seen[fleet.BackendParallelTempering.String()] && !seen[fleet.BackendSimulatedAnnealing.String()] {
		t.Fatalf("no classical frames in shard backend stats: %v", seen)
	}
}
