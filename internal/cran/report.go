package cran

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// ShardStats aggregates one shard's slice of the tier run.
type ShardStats struct {
	Shard int `json:"shard"`
	// Cells counts cells whose final placement epoch lives on this shard.
	Cells   int `json:"cells"`
	Devices int `json:"devices"`
	Frames  int `json:"frames"`
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	// MeanUtilization averages device utilization from the shard's fleet
	// report.
	MeanUtilization float64 `json:"mean_utilization"`
}

// Report summarizes one tier Serve call.
type Report struct {
	Placement string `json:"placement"`
	Shards    int    `json:"shards"`
	Devices   int    `json:"devices"`
	Cells     int    `json:"cells"`
	Streams   int    `json:"streams"`
	Frames    int    `json:"frames"`
	// Admitted frames reached a shard dispatcher; RouterShed frames were
	// answered classically at admission. Admitted + RouterShed = Frames.
	Admitted   int `json:"admitted"`
	RouterShed int `json:"router_shed"`
	// Failovers counts cell moves; FailedOverFrames counts frames
	// admitted under an epoch > 0.
	Failovers        int `json:"failovers"`
	FailedOverFrames int `json:"failed_over_frames"`
	// Served/Shed partition all frames: Shed includes both router- and
	// shard-level sheds.
	Served int `json:"served"`
	Shed   int `json:"shed"`
	// MakespanMicros spans simulated time zero to the last finish.
	MakespanMicros float64 `json:"makespan_us"`
	// ThroughputPerSecond is served frames per simulated second.
	ThroughputPerSecond float64 `json:"throughput_fps"`
	// Latency figures are Finish − Arrival over served frames.
	MeanLatencyMicros float64 `json:"mean_latency_us"`
	P50LatencyMicros  float64 `json:"p50_latency_us"`
	P99LatencyMicros  float64 `json:"p99_latency_us"`
	P99QueueMicros    float64 `json:"p99_queue_us"`
	DeadlineMissRate  float64 `json:"deadline_miss_rate"`
	ShedRate          float64 `json:"shed_rate"`

	ShardRows []ShardStats `json:"shard_rows"`
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted xs by
// nearest-rank, 0 for empty input (matches the fleet's convention).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// report aggregates the run into a Report.
func (rt *router) report(res *Result) Report {
	rep := Report{
		Placement:  rt.cfg.Placement.String(),
		Shards:     len(rt.cfg.Shards),
		Failovers:  rt.failovers,
		RouterShed: rt.routerShed,
		Frames:     len(res.Outcomes),
	}
	for _, devs := range rt.cfg.Shards {
		rep.Devices += len(devs)
	}

	cells := map[int]bool{}
	streams := map[int]bool{}
	perShard := make([]ShardStats, len(rt.cfg.Shards))
	for s := range perShard {
		perShard[s].Shard = s
		perShard[s].Devices = len(rt.cfg.Shards[s])
		fr := res.ShardReports[s]
		var util float64
		for _, d := range fr.Devices {
			util += d.Utilization
		}
		if len(fr.Devices) > 0 {
			util /= float64(len(fr.Devices))
		}
		perShard[s].MeanUtilization = util
	}
	for _, cs := range rt.cells {
		perShard[cs.shard].Cells++
	}

	var latencies, queues []float64
	var latSum float64
	misses := 0
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		cells[o.Cell] = true
		streams[StreamID(o.Cell, o.UE)] = true
		if o.Frame.Finish > rep.MakespanMicros {
			rep.MakespanMicros = o.Frame.Finish
		}
		if o.FailedOver {
			rep.FailedOverFrames++
		}
		if o.Shard >= 0 {
			rep.Admitted++
			perShard[o.Shard].Frames++
		}
		if o.Frame.Shed {
			rep.Shed++
			if o.Shard >= 0 {
				perShard[o.Shard].Shed++
			}
		} else {
			rep.Served++
			perShard[o.Shard].Served++
			lat := o.Frame.Finish - o.Frame.Arrival
			latencies = append(latencies, lat)
			queues = append(queues, o.Frame.QueueMicros)
			latSum += lat
		}
		if o.Frame.DeadlineMissed {
			misses++
		}
	}
	rep.Cells = len(cells)
	rep.Streams = len(streams)
	if rep.Served > 0 {
		rep.MeanLatencyMicros = latSum / float64(rep.Served)
	}
	sort.Float64s(latencies)
	sort.Float64s(queues)
	rep.P50LatencyMicros = percentile(latencies, 0.50)
	rep.P99LatencyMicros = percentile(latencies, 0.99)
	rep.P99QueueMicros = percentile(queues, 0.99)
	if rep.Frames > 0 {
		rep.DeadlineMissRate = float64(misses) / float64(rep.Frames)
		rep.ShedRate = float64(rep.Shed) / float64(rep.Frames)
	}
	if rep.MakespanMicros > 0 {
		rep.ThroughputPerSecond = float64(rep.Served) / rep.MakespanMicros * 1e6
	}
	rep.ShardRows = perShard
	return rep
}

// WriteTable renders the report for terminals.
func (r Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "placement\t%s (%d shards, %d devices)\n", r.Placement, r.Shards, r.Devices)
	fmt.Fprintf(tw, "workload\t%d cells, %d streams, %d frames\n", r.Cells, r.Streams, r.Frames)
	fmt.Fprintf(tw, "admission\t%d admitted, %d router-shed\n", r.Admitted, r.RouterShed)
	fmt.Fprintf(tw, "failover\t%d cell moves, %d frames on failover shards\n", r.Failovers, r.FailedOverFrames)
	fmt.Fprintf(tw, "frames\tserved %d, shed %d (%.1f%%)\n", r.Served, r.Shed, 100*r.ShedRate)
	fmt.Fprintf(tw, "makespan\t%.0f µs\n", r.MakespanMicros)
	fmt.Fprintf(tw, "throughput\t%.1f frames/s\n", r.ThroughputPerSecond)
	fmt.Fprintf(tw, "latency\tmean %.0f µs, p50 %.0f µs, p99 %.0f µs\n",
		r.MeanLatencyMicros, r.P50LatencyMicros, r.P99LatencyMicros)
	fmt.Fprintf(tw, "queueing\tp99 %.0f µs\n", r.P99QueueMicros)
	fmt.Fprintf(tw, "deadline misses\t%.1f%%\n", 100*r.DeadlineMissRate)
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "shard\tcells\tdevices\tframes\tserved\tshed\tutilization")
	for _, s := range r.ShardRows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
			s.Shard, s.Cells, s.Devices, s.Frames, s.Served, s.Shed, 100*s.MeanUtilization)
	}
	return tw.Flush()
}
