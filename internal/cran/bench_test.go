package cran

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/telemetry"
)

var (
	benchWorkloadOnce sync.Once
	benchWorkload     []Request
)

// benchRequests is the tier's reference city workload: 64 cells × 2 UEs
// of mixed-class diurnal traffic arriving faster than one shard drains
// it, so added shards translate into throughput.
func benchRequests(b *testing.B) []Request {
	b.Helper()
	benchWorkloadOnce.Do(func() {
		var err error
		benchWorkload, err = Workload{
			Cells: 64, UEsPerCell: 2,
			DurationMicros:  100_000,
			FramesPerSecond: 300,
			Diurnal:         DefaultDiurnal(),
			BurstProb:       0.2, BurstFactor: 2,
			NumReads: 30,
			Seed:     1,
		}.Generate()
		if err != nil {
			b.Fatal(err)
		}
	})
	if len(benchWorkload) == 0 {
		b.Fatal("bench workload is empty")
	}
	return benchWorkload
}

// benchCRANConfig is the Config payload of a tier benchmark's
// BENCH_*.json record.
type benchCRANConfig struct {
	Shards           int     `json:"shards"`
	Devices          int     `json:"devices"`
	Cells            int     `json:"cells"`
	Frames           int     `json:"frames"`
	Reads            int     `json:"reads"`
	FramesPerSecond  float64 `json:"frames_per_sec_simulated"`
	P99LatencyMicros float64 `json:"p99_latency_us"`
	ShedRate         float64 `json:"shed_rate"`
}

func benchmarkCRANServe(b *testing.B, shards int) {
	reqs := benchRequests(b)
	pools := make([][]fleet.Device, shards)
	for s := range pools {
		pools[s] = fleet.DefaultDevices(4)
	}
	cfg := Config{
		Shards: pools,
		Fleet:  fleet.Config{BatchMax: 4, StreamQueueBound: 64},
		Seed:   1,
	}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	rep := last.Report
	b.ReportMetric(rep.ThroughputPerSecond, "frames/sim-s")
	b.ReportMetric(rep.P99LatencyMicros, "p99-latency-µs")
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		cfgRec := benchCRANConfig{
			Shards: shards, Devices: rep.Devices, Cells: rep.Cells,
			Frames: len(reqs), Reads: 30,
			FramesPerSecond:  rep.ThroughputPerSecond,
			P99LatencyMicros: rep.P99LatencyMicros,
			ShedRate:         rep.ShedRate,
		}
		rec := telemetry.BenchRecord{
			Name:       fmt.Sprintf("CRANServeShards%d", shards),
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config:     cfgRec,
			Series: fmt.Sprintf("shards=%d devices=%d cells=%d frames=%d fps=%.1f p99_latency_us=%.0f shed=%.3f",
				shards, rep.Devices, rep.Cells, len(reqs), rep.ThroughputPerSecond, rep.P99LatencyMicros, rep.ShedRate),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRANServe(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkCRANServe(b, shards)
		})
	}
}
