package cran

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

var (
	problemOnce sync.Once
	problemPool []*qubo.Ising
)

// testProblems returns a small pool of detection Isings (6 spins each),
// synthesized once — tier tests exercise routing, not anneal quality.
func testProblems(t testing.TB) []*qubo.Ising {
	t.Helper()
	problemOnce.Do(func() {
		for seed := uint64(1); seed <= 4; seed++ {
			in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			problemPool = append(problemPool, in.Reduction.Ising)
		}
	})
	return problemPool
}

// cityRequests lays out perStream frames on each (cell, ue) stream,
// arriving interval μs apart.
func cityRequests(t testing.TB, cells, uesPerCell, perStream int, interval, deadline float64) []Request {
	t.Helper()
	probs := testProblems(t)
	var reqs []Request
	for c := 0; c < cells; c++ {
		for u := 0; u < uesPerCell; u++ {
			for q := 0; q < perStream; q++ {
				p := probs[(c+u+q)%len(probs)]
				init := make([]int8, p.N)
				for i := range init {
					init[i] = 1
				}
				reqs = append(reqs, Request{
					Cell: c, UE: u, Seq: q,
					Arrival:      float64(q) * interval,
					Deadline:     deadline,
					Problem:      p,
					InitialState: init,
				})
			}
		}
	}
	return reqs
}

// logicalShards builds n shards of m plain logical devices each.
func logicalShards(n, m int) [][]fleet.Device {
	shards := make([][]fleet.Device, n)
	for s := range shards {
		shards[s] = make([]fleet.Device, m)
		for d := range shards[s] {
			shards[s][d].SweepsPerMicrosecond = 30
		}
	}
	return shards
}

// cellOn finds a cell id the config's ring places on the wanted shard.
func cellOn(t testing.TB, cfg Config, shard int) int {
	t.Helper()
	vn := cfg.VirtualNodes
	if vn == 0 {
		vn = 64
	}
	r := buildRing(len(cfg.Shards), vn, cfg.Seed)
	for cell := 0; cell < 10_000; cell++ {
		if r.place(cell) == shard {
			return cell
		}
	}
	t.Fatalf("no cell places on shard %d", shard)
	return -1
}

func TestServeBasic(t *testing.T) {
	reqs := cityRequests(t, 6, 2, 3, 50, 0)
	cfg := Config{
		Shards: logicalShards(3, 2),
		Fleet:  fleet.Config{NumReads: 4},
		Seed:   1,
	}
	res, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), len(reqs))
	}
	for i := 1; i < len(res.Outcomes); i++ {
		a, b := res.Outcomes[i-1], res.Outcomes[i]
		if a.Cell > b.Cell || (a.Cell == b.Cell && a.UE > b.UE) ||
			(a.Cell == b.Cell && a.UE == b.UE && a.Seq >= b.Seq) {
			t.Fatalf("outcomes unordered at %d: %+v then %+v", i, a, b)
		}
	}
	rep := res.Report
	if rep.Frames != len(reqs) || rep.Admitted != len(reqs) || rep.RouterShed != 0 {
		t.Fatalf("report miscounts: %+v", rep)
	}
	if rep.Served+rep.Shed != rep.Frames {
		t.Fatalf("served %d + shed %d != frames %d", rep.Served, rep.Shed, rep.Frames)
	}
	if rep.Cells != 6 || rep.Streams != 12 {
		t.Fatalf("workload shape miscounted: %+v", rep)
	}
	if len(res.ShardReports) != 3 || len(rep.ShardRows) != 3 {
		t.Fatalf("want 3 shard reports, got %d/%d", len(res.ShardReports), len(rep.ShardRows))
	}
	// Every cell has exactly one epoch-0 record on a valid shard.
	seen := map[int]bool{}
	for _, p := range res.Placements {
		if p.Epoch != 0 {
			t.Fatalf("unexpected failover record %+v in a healthy run", p)
		}
		if p.Shard < 0 || p.Shard >= 3 || seen[p.Cell] {
			t.Fatalf("bad placement record %+v", p)
		}
		seen[p.Cell] = true
	}
	if len(seen) != 6 {
		t.Fatalf("placed %d cells, want 6", len(seen))
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "placement") || !strings.Contains(buf.String(), "shard") {
		t.Fatalf("report table missing sections:\n%s", buf.String())
	}
}

func TestServeEmptyRequests(t *testing.T) {
	res, err := Serve(context.Background(), Config{Shards: logicalShards(2, 1), Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Report.Frames != 0 || len(res.ShardReports) != 2 {
		t.Fatalf("empty run produced %+v", res.Report)
	}
}

func TestServeConfigErrors(t *testing.T) {
	reqs := cityRequests(t, 1, 1, 1, 0, 0)
	bads := []Config{
		{},
		{Shards: [][]fleet.Device{{}}},
		{Shards: logicalShards(2, 1), Placement: Placement(9)},
		{Shards: logicalShards(2, 1), VirtualNodes: -1},
		{Shards: logicalShards(2, 1), AdmitQueueMicros: -5},
		{Shards: logicalShards(2, 1), EstReadMicros: -1},
		{Shards: logicalShards(2, 1), ShardWorkers: -2},
		{Shards: logicalShards(2, 1), execPerm: []int{0}},
		{Shards: logicalShards(2, 1), execPerm: []int{1, 1}},
	}
	for i, cfg := range bads {
		if _, err := Serve(context.Background(), cfg, reqs); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestValidateRequests(t *testing.T) {
	probs := testProblems(t)
	ok := Request{Cell: 1, UE: 2, Seq: 0, Problem: probs[0], InitialState: make([]int8, probs[0].N)}
	if err := ValidateRequests([]Request{ok}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bads := [][]Request{
		{{Cell: -1, UE: 0, Problem: probs[0], InitialState: make([]int8, probs[0].N)}},
		{{Cell: MaxCells, UE: 0, Problem: probs[0], InitialState: make([]int8, probs[0].N)}},
		{{Cell: 0, UE: MaxUEsPerCell, Problem: probs[0], InitialState: make([]int8, probs[0].N)}},
		{ok, ok}, // duplicate (cell, ue, seq)
		{{Cell: 0, UE: 0, Problem: nil}},
		{{Cell: 0, UE: 0, Problem: probs[0], InitialState: make([]int8, 1)}},
		{
			{Cell: 0, UE: 0, Seq: 0, Arrival: 100, Problem: probs[0], InitialState: make([]int8, probs[0].N)},
			{Cell: 0, UE: 0, Seq: 1, Arrival: 50, Problem: probs[0], InitialState: make([]int8, probs[0].N)},
		},
	}
	for i, reqs := range bads {
		if err := ValidateRequests(reqs); err == nil {
			t.Fatalf("bad request set %d accepted", i)
		}
	}
}

func TestParsePlacement(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Placement
	}{{"hash", PlacementHash}, {"consistent-hash", PlacementHash}, {"load", PlacementLoadAware}, {"load-aware", PlacementLoadAware}} {
		got, err := ParsePlacement(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePlacement(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" || !got.valid() {
			t.Fatalf("placement %v unprintable or invalid", got)
		}
	}
	if _, err := ParsePlacement("nope"); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if Placement(42).String() == "" {
		t.Fatal("unknown placement unprintable")
	}
}

// TestFailover pins the cross-shard failover path: a cell whose shard
// dies mid-run moves to a live shard at the next frame arrival, with the
// epoch history recorded.
func TestFailover(t *testing.T) {
	for _, placement := range []Placement{PlacementHash, PlacementLoadAware} {
		t.Run(placement.String(), func(t *testing.T) {
			cfg := Config{
				Shards:    logicalShards(3, 2),
				Placement: placement,
				Fleet:     fleet.Config{NumReads: 4},
				Seed:      7,
			}
			// Kill the victim shard's whole pool at t=500.
			victim := 0
			if placement == PlacementHash {
				victim = buildRing(3, 64, cfg.Seed).place(5)
			}
			for d := range cfg.Shards[victim] {
				cfg.Shards[victim][d].FailAt = 500
			}

			probs := testProblems(t)
			p := probs[0]
			init := make([]int8, p.N)
			var reqs []Request
			for q := 0; q < 6; q++ {
				reqs = append(reqs, Request{
					Cell: 5, UE: 0, Seq: q, Arrival: float64(q) * 200,
					Problem: p, InitialState: init,
				})
			}
			res, err := Serve(context.Background(), cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Failovers != 1 {
				t.Fatalf("want 1 failover, got %d (placements %+v)", res.Report.Failovers, res.Placements)
			}
			if len(res.Placements) != 2 {
				t.Fatalf("want 2 placement records, got %+v", res.Placements)
			}
			r0, r1 := res.Placements[0], res.Placements[1]
			if r0.Epoch != 0 || r0.Shard != victim || r1.Epoch != 1 || r1.Shard == victim {
				t.Fatalf("bad epoch history: %+v", res.Placements)
			}
			if r1.SinceMicros < 500 {
				t.Fatalf("failover before the pool died: %+v", r1)
			}
			for _, o := range res.Outcomes {
				switch {
				case o.Frame.Arrival < 500:
					if o.Shard != victim || o.Epoch != 0 || o.FailedOver {
						t.Fatalf("pre-death frame misrouted: %+v", o)
					}
				default:
					if o.Shard != r1.Shard || o.Epoch != 1 || !o.FailedOver {
						t.Fatalf("post-death frame not failed over: %+v", o)
					}
				}
			}
		})
	}
}

// TestNoLiveShard pins the tier's last rung: when every pool is dead, the
// router answers classically with ShedNoLiveShard.
func TestNoLiveShard(t *testing.T) {
	cfg := Config{
		Shards: logicalShards(2, 1),
		Fleet:  fleet.Config{NumReads: 4},
		Seed:   3,
	}
	for s := range cfg.Shards {
		for d := range cfg.Shards[s] {
			cfg.Shards[s][d].FailAt = 100
		}
	}
	probs := testProblems(t)
	p := probs[1]
	reqs := []Request{
		{Cell: 1, UE: 0, Seq: 0, Arrival: 0, Problem: p, InitialState: make([]int8, p.N)},
		{Cell: 1, UE: 0, Seq: 1, Arrival: 1_000, Problem: p, InitialState: make([]int8, p.N), Deadline: 0.001},
	}
	res, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	late := res.Outcomes[1]
	if !late.RouterShed || late.Shard != -1 || late.Frame.ShedReason != ShedNoLiveShard {
		t.Fatalf("late frame not router-shed: %+v", late)
	}
	if !late.Frame.DeadlineMissed {
		t.Fatalf("classical fallback beat a %gµs deadline: %+v", reqs[1].Deadline, late.Frame)
	}
	if len(late.Frame.Best.Spins) != p.N {
		t.Fatalf("router-shed frame lacks a fallback answer: %+v", late.Frame)
	}
	if res.Report.RouterShed != 1 {
		t.Fatalf("report miscounts router sheds: %+v", res.Report)
	}
}

// TestBackpressure pins admission control: with a tiny queue bound, a
// burst beyond the drain estimate sheds with ShedShardBackpressure.
func TestBackpressure(t *testing.T) {
	cfg := Config{
		Shards:           logicalShards(1, 1),
		Fleet:            fleet.Config{NumReads: 50},
		AdmitQueueMicros: 100,
		EstReadMicros:    10, // 500 µs estimated per frame
		Seed:             11,
	}
	reqs := cityRequests(t, 1, 1, 8, 0.001, 0) // near-simultaneous burst
	res, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, o := range res.Outcomes {
		if o.RouterShed {
			if o.Frame.ShedReason != ShedShardBackpressure {
				t.Fatalf("wrong shed reason: %+v", o.Frame)
			}
			shed++
		}
	}
	if shed == 0 || shed == len(reqs) {
		t.Fatalf("backpressure shed %d of %d frames, want some but not all", shed, len(reqs))
	}
	if res.Report.RouterShed != shed || res.Report.Admitted != len(reqs)-shed {
		t.Fatalf("report disagrees with outcomes: %+v", res.Report)
	}
}
