package cran

import (
	"fmt"
	"sort"
)

// Placement selects how the router maps cells onto shards.
type Placement int

const (
	// PlacementHash places each cell by consistent hashing over a ring of
	// virtual nodes. Placement of a cell depends only on (cell, shard
	// count, VirtualNodes, ring seed) — never on what other cells exist —
	// so it is stable under any workload and cheap to recompute. Failover
	// walks the ring clockwise to the next live shard.
	PlacementHash Placement = iota
	// PlacementLoadAware places each cell, at its first frame's arrival,
	// on the live shard with the least estimated admitted load (ties to
	// the lowest shard index), and keeps it there (sticky) until failover.
	// Failover re-places on the least-loaded live shard.
	PlacementLoadAware
)

// ParsePlacement maps a CLI spelling to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "hash", "consistent-hash":
		return PlacementHash, nil
	case "load", "load-aware":
		return PlacementLoadAware, nil
	}
	return 0, fmt.Errorf("cran: unknown placement %q (want hash or load-aware)", s)
}

func (p Placement) String() string {
	switch p {
	case PlacementHash:
		return "hash"
	case PlacementLoadAware:
		return "load-aware"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

func (p Placement) valid() bool {
	return p == PlacementHash || p == PlacementLoadAware
}

// mix64 is the SplitMix64 finalizer — the same mixing the repo's rng
// package builds on — used as a stateless integer hash for ring points
// and cell keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is the consistent-hash placement structure: VirtualNodes points
// per shard on a 64-bit circle. A cell hashes to a position and is owned
// by the clockwise-next point's shard.
//
// Balance bound (documented and fuzz-checked by FuzzCellPlacement): with
// ≥ 64 virtual nodes per shard, once the cell population is large enough
// to average ≥ 64 cells per shard, no shard's cell count exceeds 4× the
// mean. Small populations can be arbitrarily skewed — hashing says
// nothing about 3 cells on 8 shards.
type ring struct {
	seed   uint64
	shards int
	points []ringPoint
}

// buildRing lays out shards×virtualNodes points. Point positions derive
// from (seed, shard, vnode) only, so the ring — and therefore every
// cell's placement — is a pure function of the Config.
func buildRing(shards, virtualNodes int, seed uint64) *ring {
	r := &ring{seed: seed, shards: shards, points: make([]ringPoint, 0, shards*virtualNodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodes; v++ {
			h := mix64(mix64(seed^uint64(s)) + uint64(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	// Shard index breaks (vanishingly rare) hash ties so the ring order
	// never depends on sort internals.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// start returns the index of the clockwise-next ring point for a cell.
func (r *ring) start(cell int) int {
	h := mix64(r.seed ^ 0xce11ce11ce11ce11 ^ uint64(cell))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// place returns the cell's owning shard.
func (r *ring) place(cell int) int {
	return r.points[r.start(cell)].shard
}

// successors returns every shard in the cell's clockwise ring order,
// starting with its owner — the router's failover walk order.
func (r *ring) successors(cell int) []int {
	seen := make([]bool, r.shards)
	order := make([]int, 0, r.shards)
	for i, n := r.start(cell), len(r.points); len(order) < r.shards && n > 0; i, n = (i+1)%len(r.points), n-1 {
		s := r.points[i].shard
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	return order
}
