package cran

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Class is one traffic class in the workload mix: a per-frame detection
// shape and the relative probability a cell carries it.
type Class struct {
	// Users is the per-frame MIMO user count (square antenna setting).
	Users int
	// Scheme is the modulation.
	Scheme modulation.Scheme
	// Weight is the cell-draw probability weight (> 0, finite).
	Weight float64
}

// DefaultClasses is the mixed city traffic: mostly small QPSK cells with
// a denser QPSK tier and a 16-QAM tier, spanning 4–8 spin problems.
func DefaultClasses() []Class {
	return []Class{
		{Users: 2, Scheme: modulation.QPSK, Weight: 2},
		{Users: 3, Scheme: modulation.QPSK, Weight: 1},
		{Users: 2, Scheme: modulation.QAM16, Weight: 1},
	}
}

// DefaultDiurnal is a 12-bucket day shape: quiet night, morning ramp,
// midday plateau, evening peak.
func DefaultDiurnal() []float64 {
	return []float64{0.3, 0.2, 0.25, 0.45, 0.8, 1.0, 1.1, 1.0, 0.95, 1.2, 1.35, 0.7}
}

// Workload declares a city-scale request set: Cells×UEsPerCell Poisson
// arrival streams whose rate is modulated by a diurnal profile and
// per-(cell, bucket) bursts, with detection problems drawn from mixed
// modulation/user-count classes. Generate is a pure function of the
// spec: equal specs produce bit-identical request sets.
type Workload struct {
	// Cells and UEsPerCell size the city; streams = Cells × UEsPerCell.
	Cells      int
	UEsPerCell int
	// DurationMicros is the simulated arrival horizon.
	DurationMicros float64
	// FramesPerSecond is one UE's mean arrival rate at diurnal level 1.
	FramesPerSecond float64
	// Diurnal scales the rate over the horizon: bucket i covers
	// [i, i+1)·DurationMicros/len(Diurnal). Required non-empty; entries
	// finite and ≥ 0 with at least one > 0 (DefaultDiurnal for a day
	// shape, []float64{1} for a flat profile).
	Diurnal []float64
	// BurstProb is the probability each (cell, bucket) pair bursts;
	// BurstFactor (≥ 1) multiplies the rate inside a burst.
	BurstProb   float64
	BurstFactor float64
	// Classes is the traffic mix (default DefaultClasses). Each cell
	// draws one class for its lifetime.
	Classes []Class
	// Instances is the per-class detection-problem corpus size (default
	// 3); frames cycle through the corpus.
	Instances int
	// DeadlineMicros, NumReads, Sp, Tp stamp every request (0: serving
	// defaults).
	DeadlineMicros float64
	NumReads       int
	Sp, Tp         float64
	// MaxFrames, when > 0, truncates the generated set to its earliest
	// MaxFrames arrivals (a time-prefix, so per-stream FIFO survives).
	MaxFrames int
	// Seed roots every draw.
	Seed uint64
}

// Streams is the concurrent UE stream count.
func (w Workload) Streams() int { return w.Cells * w.UEsPerCell }

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Validate rejects unservable specs: NaN/Inf/negative rates, zero cells,
// empty diurnal profiles, and malformed classes.
func (w Workload) Validate() error {
	if w.Cells < 1 || w.Cells > MaxCells {
		return fmt.Errorf("cran: workload cells %d out of [1, %d]", w.Cells, MaxCells)
	}
	if w.UEsPerCell < 1 || w.UEsPerCell > MaxUEsPerCell {
		return fmt.Errorf("cran: workload UEs per cell %d out of [1, %d]", w.UEsPerCell, MaxUEsPerCell)
	}
	if bad(w.DurationMicros) || w.DurationMicros <= 0 {
		return fmt.Errorf("cran: workload duration %g must be positive and finite", w.DurationMicros)
	}
	if bad(w.FramesPerSecond) || w.FramesPerSecond <= 0 {
		return fmt.Errorf("cran: workload rate %g frames/s must be positive and finite", w.FramesPerSecond)
	}
	if len(w.Diurnal) == 0 {
		return fmt.Errorf("cran: workload diurnal profile is empty (use DefaultDiurnal() or []float64{1})")
	}
	peak := 0.0
	for i, d := range w.Diurnal {
		if bad(d) || d < 0 {
			return fmt.Errorf("cran: workload diurnal[%d] = %g must be finite and ≥ 0", i, d)
		}
		if d > peak {
			peak = d
		}
	}
	if peak == 0 {
		return fmt.Errorf("cran: workload diurnal profile is all zero")
	}
	if bad(w.BurstProb) || w.BurstProb < 0 || w.BurstProb > 1 {
		return fmt.Errorf("cran: workload burst probability %g out of [0, 1]", w.BurstProb)
	}
	if w.BurstProb > 0 && (bad(w.BurstFactor) || w.BurstFactor < 1) {
		return fmt.Errorf("cran: workload burst factor %g must be finite and ≥ 1", w.BurstFactor)
	}
	for i, c := range w.Classes {
		if c.Users < 1 {
			return fmt.Errorf("cran: workload class %d: users %d < 1", i, c.Users)
		}
		if bad(c.Weight) || c.Weight <= 0 {
			return fmt.Errorf("cran: workload class %d: weight %g must be positive and finite", i, c.Weight)
		}
	}
	if w.Instances < 0 {
		return fmt.Errorf("cran: workload corpus size %d < 0", w.Instances)
	}
	if bad(w.DeadlineMicros) || w.DeadlineMicros < 0 {
		return fmt.Errorf("cran: workload deadline %g must be finite and ≥ 0", w.DeadlineMicros)
	}
	if w.NumReads < 0 {
		return fmt.Errorf("cran: workload read count %d < 0", w.NumReads)
	}
	if w.MaxFrames < 0 {
		return fmt.Errorf("cran: workload frame cap %d < 0", w.MaxFrames)
	}
	return nil
}

// classProblem is one prepared detection problem: the reduced Ising and
// its greedy classical candidate.
type classProblem struct {
	ising *qubo.Ising
	init  []int8
}

// Generate materializes the request set: per-class problem corpora, one
// class and per-bucket burst pattern per cell, and one thinned
// non-homogeneous Poisson arrival stream per (cell, UE). Requests come
// back sorted by (Arrival, Cell, UE, Seq).
func (w Workload) Generate() ([]Request, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	classes := w.Classes
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	corpus := w.Instances
	if corpus == 0 {
		corpus = 3
	}
	root := rng.New(w.Seed)

	problems := make([][]classProblem, len(classes))
	for c, cl := range classes {
		insts, err := instance.Corpus(instance.Spec{Users: cl.Users, Scheme: cl.Scheme},
			root.SplitString("cran/corpus").Split(uint64(c)).Uint64(), corpus)
		if err != nil {
			return nil, fmt.Errorf("cran: workload class %d: %w", c, err)
		}
		for _, inst := range insts {
			is := inst.Reduction.Ising
			problems[c] = append(problems[c], classProblem{
				ising: is,
				init:  qubo.GreedySearchIsing(is, qubo.OrderDescending),
			})
		}
	}

	var totalWeight float64
	for _, cl := range classes {
		totalWeight += cl.Weight
	}
	baseRate := w.FramesPerSecond / 1e6 // frames per μs at level 1
	peak := 0.0
	for _, d := range w.Diurnal {
		if d > peak {
			peak = d
		}
	}
	maxBurst := 1.0
	if w.BurstProb > 0 {
		maxBurst = w.BurstFactor
	}
	lambdaMax := baseRate * peak * maxBurst
	bucketLen := w.DurationMicros / float64(len(w.Diurnal))

	var reqs []Request
	for cell := 0; cell < w.Cells; cell++ {
		// The cell's class, by weighted draw.
		cr := root.SplitString("cran/cell").Split(uint64(cell))
		pick := cr.Float64() * totalWeight
		class := len(classes) - 1
		for c, cl := range classes {
			if pick < cl.Weight {
				class = c
				break
			}
			pick -= cl.Weight
		}
		// The cell's burst pattern, one draw per diurnal bucket.
		bursts := make([]bool, len(w.Diurnal))
		for b := range bursts {
			bursts[b] = w.BurstProb > 0 && cr.Float64() < w.BurstProb
		}

		for ue := 0; ue < w.UEsPerCell; ue++ {
			sr := root.SplitString("cran/stream").Split(uint64(StreamID(cell, ue)))
			t, seq := 0.0, 0
			for {
				// Thinning: step at the peak rate, accept at λ(t)/λmax.
				t += -math.Log(1-sr.Float64()) / lambdaMax
				if t >= w.DurationMicros {
					break
				}
				bucket := int(t / bucketLen)
				if bucket >= len(w.Diurnal) {
					bucket = len(w.Diurnal) - 1
				}
				rate := baseRate * w.Diurnal[bucket]
				if bursts[bucket] {
					rate *= w.BurstFactor
				}
				if sr.Float64()*lambdaMax >= rate {
					continue
				}
				p := problems[class][sr.Intn(len(problems[class]))]
				reqs = append(reqs, Request{
					Cell: cell, UE: ue, Seq: seq,
					Arrival:      t,
					Deadline:     w.DeadlineMicros,
					Problem:      p.ising,
					InitialState: p.init,
					Sp:           w.Sp, Tp: w.Tp,
					NumReads: w.NumReads,
				})
				seq++
			}
		}
	}

	sort.Slice(reqs, func(i, j int) bool {
		a, b := reqs[i], reqs[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		return a.Seq < b.Seq
	})
	if w.MaxFrames > 0 && len(reqs) > w.MaxFrames {
		reqs = reqs[:w.MaxFrames]
	}
	return reqs, nil
}
