package cran

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/annealer"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

// determinismScenario is a busy 3-shard tier over mixed device pools —
// logical, embedded-QPU, and noisy devices — with one shard dying
// mid-run (failover in play) and backpressure enabled, serving a
// generated city workload with bursty diurnal arrivals.
func determinismScenario(t testing.TB, faults bool) (Config, []Request) {
	t.Helper()
	prof := annealer.CalibratedProfile()
	shards := [][]fleet.Device{
		{
			{SweepsPerMicrosecond: 30},
			{QPU: annealer.NewQPU2000Q(), Profile: &prof, SweepsPerMicrosecond: 30},
		},
		{
			{SweepsPerMicrosecond: 30, FailAt: 20_000},
			{SweepsPerMicrosecond: 30, ICE: annealer.DWave2000QICE(), FailAt: 25_000},
		},
		{
			{SweepsPerMicrosecond: 30},
			{SweepsPerMicrosecond: 30},
		},
	}
	if faults {
		shards[0][0].Faults = annealer.FaultModel{ProgrammingFailureRate: 0.4}
		shards[2][1].Faults = annealer.FaultModel{ReadTimeoutRate: 0.2, ChainBreakStormRate: 0.1, CalibrationDriftRate: 0.1}
	}
	cfg := Config{
		Shards:           shards,
		Fleet:            fleet.Config{NumReads: 6, BatchMax: 3},
		AdmitQueueMicros: 30_000,
		EstReadMicros:    50,
		Seed:             0xC4A17,
	}
	return cfg, determinismWorkload(t)
}

var (
	detWorkloadOnce sync.Once
	detWorkload     []Request
)

// determinismWorkload generates the shared city workload once: 10 cells
// × 2 UEs of bursty diurnal traffic over 50 simulated ms.
func determinismWorkload(t testing.TB) []Request {
	t.Helper()
	detWorkloadOnce.Do(func() {
		var err error
		detWorkload, err = Workload{
			Cells: 10, UEsPerCell: 2,
			DurationMicros:  50_000,
			FramesPerSecond: 1_000,
			Diurnal:         DefaultDiurnal(),
			BurstProb:       0.3, BurstFactor: 3,
			NumReads:       6,
			DeadlineMicros: 40_000,
			Seed:           99,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(detWorkload) < 20 {
			t.Fatalf("determinism workload too small: %d frames", len(detWorkload))
		}
	})
	return detWorkload
}

// tierArtifacts serves the scenario and returns the export surfaces the
// determinism contract covers: marshaled outcomes, placement history,
// and trace JSONL.
func tierArtifacts(t testing.TB, workers, shardWorkers int, perm []int, faults bool) (outcomes, placements, trace []byte) {
	t.Helper()
	cfg, reqs := determinismScenario(t, faults)
	cfg.Fleet.Workers = workers
	cfg.ShardWorkers = shardWorkers
	cfg.execPerm = perm
	cfg.Trace = telemetry.NewTracer()
	res, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := json.Marshal(res.Placements)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return out, pl, buf.Bytes()
}

// TestCRANDeterminism is the gating regression for the tier's
// determinism contract: outcomes, placement history, and the merged
// trace export must be bit-identical across per-shard worker counts
// 1/4/16, shard concurrency, and any shard execution order, with faults
// off and on.
func TestCRANDeterminism(t *testing.T) {
	for _, faults := range []bool{false, true} {
		name := "faults-off"
		if faults {
			name = "faults-on"
		}
		t.Run(name, func(t *testing.T) {
			refOut, refPl, refTrace := tierArtifacts(t, 1, 1, nil, faults)
			if len(refTrace) == 0 {
				t.Fatal("trace export is empty")
			}
			cases := []struct {
				label        string
				workers      int
				shardWorkers int
				perm         []int
			}{
				{"workers=4", 4, 1, nil},
				{"workers=16", 16, 1, nil},
				{"shard-workers=3", 1, 3, nil},
				{"perm-reversed", 4, 3, []int{2, 1, 0}},
				{"perm-rotated", 16, 2, []int{1, 2, 0}},
			}
			for _, tc := range cases {
				out, pl, trace := tierArtifacts(t, tc.workers, tc.shardWorkers, tc.perm, faults)
				if !bytes.Equal(out, refOut) {
					t.Fatalf("outcomes diverge at %s", tc.label)
				}
				if !bytes.Equal(pl, refPl) {
					t.Fatalf("placement history diverges at %s", tc.label)
				}
				if !bytes.Equal(trace, refTrace) {
					t.Fatalf("trace export diverges at %s", tc.label)
				}
			}
		})
	}
}

// TestCRANSeedSensitivity guards the opposite failure: a router that
// ignores its seed would pass the identity checks while serving canned
// results.
func TestCRANSeedSensitivity(t *testing.T) {
	cfg, reqs := determinismScenario(t, true)
	a, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := Serve(context.Background(), cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Outcomes)
	jb, _ := json.Marshal(b.Outcomes)
	if bytes.Equal(ja, jb) {
		t.Fatal("outcomes identical across different seeds")
	}
}

// TestWorkloadGenerateDeterminism pins the generator half of the
// contract: equal specs produce bit-identical request sets.
func TestWorkloadGenerateDeterminism(t *testing.T) {
	spec := Workload{
		Cells: 6, UEsPerCell: 3,
		DurationMicros:  20_000,
		FramesPerSecond: 500,
		Diurnal:         DefaultDiurnal(),
		BurstProb:       0.5, BurstFactor: 2,
		Seed: 4242,
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reruns sized %d and %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Cell != y.Cell || x.UE != y.UE || x.Seq != y.Seq || x.Arrival != y.Arrival ||
			x.Problem.N != y.Problem.N || x.Problem.Energy(x.InitialState) != y.Problem.Energy(y.InitialState) {
			t.Fatalf("frame %d diverges: %+v vs %+v", i, x, y)
		}
	}
}
