package cran

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/annealer"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

// TestCRANStressRace hammers the tier under the race detector: one
// shard's whole pool dying mid-flight (cross-shard failover), device
// faults, backpressure, full shard concurrency, and two Serves running
// concurrently against a SHARED tracer and registry — the shard-labeled
// telemetry merge is part of the surface under test.
func TestCRANStressRace(t *testing.T) {
	shards := logicalShards(4, 2)
	// Shard 1 dies entirely mid-run (before the last arrivals, so
	// failover fires); shard 2 is flaky.
	shards[1][0].FailAt = 1_000
	shards[1][1].FailAt = 1_200
	shards[2][0].Faults = annealer.FaultModel{ProgrammingFailureRate: 0.3}
	shards[2][1].Faults = annealer.FaultModel{ReadTimeoutRate: 0.3, ChainBreakStormRate: 0.2}

	tracer := telemetry.NewTracer()
	registry := telemetry.NewRegistry()
	var wg sync.WaitGroup
	for run := 0; run < 2; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			cfg := Config{
				Shards: shards,
				Fleet: fleet.Config{
					Policy:           fleet.PolicyEDF,
					NumReads:         4,
					BatchMax:         3,
					StreamQueueBound: 4,
					Workers:          8,
				},
				AdmitQueueMicros: 5_000,
				EstReadMicros:    20,
				ShardWorkers:     4,
				Seed:             uint64(run + 1),
				Trace:            tracer,
				Metrics:          registry,
			}
			reqs := cityRequests(t, 12, 2, 6, 400, 8_000)
			res, err := Serve(context.Background(), cfg, reqs)
			if err != nil {
				t.Errorf("run %d: %v", run, err)
				return
			}
			if len(res.Outcomes) != len(reqs) {
				t.Errorf("run %d: %d outcomes for %d requests", run, len(res.Outcomes), len(reqs))
			}
			if res.Report.Failovers == 0 {
				t.Errorf("run %d: dead shard produced no failovers", run)
			}
		}(run)
	}
	wg.Wait()
	if tracer.Len() == 0 {
		t.Fatal("shared tracer collected nothing")
	}
}

// TestCRANServeCancellation covers both cancellation surfaces: a context
// cancelled before Serve, and one cancelled while shards are in flight.
func TestCRANServeCancellation(t *testing.T) {
	cfg := Config{
		Shards: logicalShards(2, 1),
		Fleet:  fleet.Config{NumReads: 4},
		Seed:   1,
	}
	reqs := cityRequests(t, 4, 2, 4, 10, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Serve(ctx, cfg, reqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Serve returned %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	// Either the run slips in before the cancel or it reports the
	// cancellation — both are correct; racing must never corrupt.
	big := Config{
		Shards: logicalShards(2, 1),
		Fleet:  fleet.Config{NumReads: 400, Workers: 2},
		Seed:   1,
	}
	if _, err := Serve(ctx, big, cityRequests(t, 6, 1, 10, 0, 0)); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel returned %v", err)
	}
	cancel()
}
