package cran

import (
	"math"
	"testing"

	"repro/internal/modulation"
)

// validWorkload is a small spec every rejection case below perturbs.
func validWorkload() Workload {
	return Workload{
		Cells: 4, UEsPerCell: 2,
		DurationMicros:  10_000,
		FramesPerSecond: 800,
		Diurnal:         []float64{1},
		Seed:            1,
	}
}

func TestWorkloadValidateRejections(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		mut  func(*Workload)
	}{
		{"zero-cells", func(w *Workload) { w.Cells = 0 }},
		{"negative-cells", func(w *Workload) { w.Cells = -3 }},
		{"too-many-cells", func(w *Workload) { w.Cells = MaxCells + 1 }},
		{"zero-ues", func(w *Workload) { w.UEsPerCell = 0 }},
		{"too-many-ues", func(w *Workload) { w.UEsPerCell = MaxUEsPerCell + 1 }},
		{"zero-duration", func(w *Workload) { w.DurationMicros = 0 }},
		{"nan-duration", func(w *Workload) { w.DurationMicros = nan }},
		{"inf-duration", func(w *Workload) { w.DurationMicros = inf }},
		{"zero-rate", func(w *Workload) { w.FramesPerSecond = 0 }},
		{"negative-rate", func(w *Workload) { w.FramesPerSecond = -5 }},
		{"nan-rate", func(w *Workload) { w.FramesPerSecond = nan }},
		{"inf-rate", func(w *Workload) { w.FramesPerSecond = inf }},
		{"empty-diurnal", func(w *Workload) { w.Diurnal = nil }},
		{"all-zero-diurnal", func(w *Workload) { w.Diurnal = []float64{0, 0} }},
		{"negative-diurnal", func(w *Workload) { w.Diurnal = []float64{1, -0.5} }},
		{"nan-diurnal", func(w *Workload) { w.Diurnal = []float64{1, nan} }},
		{"inf-diurnal", func(w *Workload) { w.Diurnal = []float64{1, inf} }},
		{"bad-burst-prob", func(w *Workload) { w.BurstProb = 1.5 }},
		{"nan-burst-prob", func(w *Workload) { w.BurstProb = nan }},
		{"small-burst-factor", func(w *Workload) { w.BurstProb = 0.5; w.BurstFactor = 0.5 }},
		{"inf-burst-factor", func(w *Workload) { w.BurstProb = 0.5; w.BurstFactor = inf }},
		{"zero-user-class", func(w *Workload) { w.Classes = []Class{{Users: 0, Scheme: modulation.QPSK, Weight: 1}} }},
		{"zero-weight-class", func(w *Workload) { w.Classes = []Class{{Users: 2, Scheme: modulation.QPSK, Weight: 0}} }},
		{"nan-weight-class", func(w *Workload) { w.Classes = []Class{{Users: 2, Scheme: modulation.QPSK, Weight: nan}} }},
		{"negative-corpus", func(w *Workload) { w.Instances = -1 }},
		{"nan-deadline", func(w *Workload) { w.DeadlineMicros = nan }},
		{"negative-deadline", func(w *Workload) { w.DeadlineMicros = -1 }},
		{"negative-reads", func(w *Workload) { w.NumReads = -1 }},
		{"negative-cap", func(w *Workload) { w.MaxFrames = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := validWorkload()
			tc.mut(&w)
			if err := w.Validate(); err == nil {
				t.Fatalf("spec %+v accepted", w)
			}
			if _, err := w.Generate(); err == nil {
				t.Fatal("Generate accepted an invalid spec")
			}
		})
	}
	if err := validWorkload().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestWorkloadGenerateShape(t *testing.T) {
	w := validWorkload()
	w.BurstProb, w.BurstFactor = 0.4, 2
	w.DeadlineMicros = 5_000
	w.NumReads = 7
	reqs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("workload generated no frames")
	}
	if err := ValidateRequests(reqs); err != nil {
		t.Fatalf("generated set fails tier validation: %v", err)
	}
	// Sorted by arrival; seqs contiguous from 0 per stream in time order.
	nextSeq := map[int]int{}
	for i, r := range reqs {
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrivals unsorted at %d", i)
		}
		if r.Deadline != 5_000 || r.NumReads != 7 {
			t.Fatalf("frame %d not stamped with spec overrides: %+v", i, r)
		}
		sid := StreamID(r.Cell, r.UE)
		if r.Seq != nextSeq[sid] {
			t.Fatalf("stream %d: seq %d out of order (want %d)", sid, r.Seq, nextSeq[sid])
		}
		nextSeq[sid]++
	}
}

func TestWorkloadMaxFramesIsTimePrefix(t *testing.T) {
	w := validWorkload()
	full, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("workload too small to truncate: %d frames", len(full))
	}
	w.MaxFrames = len(full) / 2
	cut, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != w.MaxFrames {
		t.Fatalf("cap %d produced %d frames", w.MaxFrames, len(cut))
	}
	for i, r := range cut {
		if r.Cell != full[i].Cell || r.UE != full[i].UE || r.Seq != full[i].Seq || r.Arrival != full[i].Arrival {
			t.Fatalf("truncation is not a prefix at %d", i)
		}
	}
	if err := ValidateRequests(cut); err != nil {
		t.Fatalf("truncated set fails validation: %v", err)
	}
}

// TestWorkloadDiurnalModulation pins the profile semantics: a zero
// bucket generates no arrivals in its window.
func TestWorkloadDiurnalModulation(t *testing.T) {
	w := validWorkload()
	w.Cells, w.UEsPerCell = 8, 4
	w.Diurnal = []float64{0, 1}
	reqs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no frames in the live bucket")
	}
	half := w.DurationMicros / 2
	for _, r := range reqs {
		if r.Arrival < half {
			t.Fatalf("frame at %g µs inside the zero-rate bucket", r.Arrival)
		}
	}
}

// TestWorkloadBurstsRaiseRate pins burst semantics: forcing bursts on
// every bucket multiplies the arrival count.
func TestWorkloadBurstsRaiseRate(t *testing.T) {
	base := validWorkload()
	base.Cells, base.UEsPerCell = 8, 4
	calm, err := base.Generate()
	if err != nil {
		t.Fatal(err)
	}
	bursty := base
	bursty.BurstProb, bursty.BurstFactor = 1, 4
	hot, err := bursty.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) <= len(calm) {
		t.Fatalf("bursting every bucket 4x produced %d frames vs %d calm", len(hot), len(calm))
	}
}

// TestWorkloadClassMix pins the mixed-modulation story: distinct classes
// produce distinct problem sizes across cells.
func TestWorkloadClassMix(t *testing.T) {
	w := validWorkload()
	w.Cells = 24
	w.Classes = []Class{
		{Users: 2, Scheme: modulation.QPSK, Weight: 1},  // 4 spins
		{Users: 2, Scheme: modulation.QAM16, Weight: 1}, // 8 spins
	}
	reqs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	cellSize := map[int]int{}
	for _, r := range reqs {
		sizes[r.Problem.N] = true
		if prev, ok := cellSize[r.Cell]; ok && prev != r.Problem.N {
			t.Fatalf("cell %d mixes classes within its lifetime", r.Cell)
		}
		cellSize[r.Cell] = r.Problem.N
		if len(r.InitialState) != r.Problem.N {
			t.Fatalf("candidate sized %d for %d-spin problem", len(r.InitialState), r.Problem.N)
		}
	}
	if len(sizes) < 2 {
		t.Fatalf("24 cells drew only problem sizes %v", sizes)
	}
}
