package modulation

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s       Scheme
		bits    int
		order   int
		bitsI   int
		bitsQ   int
		name    string
		normInv float64 // 1/Norm squared = average raw energy
	}{
		{BPSK, 1, 2, 1, 0, "BPSK", 1},
		{QPSK, 2, 4, 1, 1, "QPSK", 2},
		{QAM16, 4, 16, 2, 2, "16-QAM", 10},
		{QAM64, 6, 64, 3, 3, "64-QAM", 42},
	}
	for _, c := range cases {
		if c.s.BitsPerSymbol() != c.bits || c.s.Order() != c.order {
			t.Fatalf("%v: bits/order wrong", c.s)
		}
		if c.s.BitsPerDimI() != c.bitsI || c.s.BitsPerDimQ() != c.bitsQ {
			t.Fatalf("%v: dim bits wrong", c.s)
		}
		if c.s.String() != c.name {
			t.Fatalf("name %q", c.s.String())
		}
		if math.Abs(c.s.Norm()-1/math.Sqrt(c.normInv)) > 1e-12 {
			t.Fatalf("%v: norm %v", c.s, c.s.Norm())
		}
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"bpsk", "qpsk", "16qam", "64qam"} {
		if _, err := ParseScheme(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseScheme("256qam"); err == nil {
		t.Fatal("bad name accepted")
	}
}

// TestUnitAverageEnergy: §4.2's "unit gain signal".
func TestUnitAverageEnergy(t *testing.T) {
	for _, s := range Schemes {
		if e := s.AverageEnergy(); math.Abs(e-1) > 1e-12 {
			t.Fatalf("%v: average energy %v", s, e)
		}
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, s := range Schemes {
		for trial := 0; trial < 200; trial++ {
			bits := make([]int8, s.BitsPerSymbol())
			for i := range bits {
				if r.Bool() {
					bits[i] = 1
				}
			}
			x, err := s.Modulate(bits)
			if err != nil {
				t.Fatal(err)
			}
			back := s.Demodulate(x)
			for i := range bits {
				if bits[i] != back[i] {
					t.Fatalf("%v: round trip failed for %v -> %v -> %v", s, bits, x, back)
				}
			}
		}
	}
}

func TestModulateWrongLength(t *testing.T) {
	if _, err := QPSK.Modulate([]int8{1}); err == nil {
		t.Fatal("wrong bit count accepted")
	}
}

func TestAlphabetSizeAndUniqueness(t *testing.T) {
	for _, s := range Schemes {
		alpha := s.Alphabet()
		if len(alpha) != s.Order() {
			t.Fatalf("%v: alphabet size %d", s, len(alpha))
		}
		for i := range alpha {
			for j := i + 1; j < len(alpha); j++ {
				if alpha[i] == alpha[j] {
					t.Fatalf("%v: duplicate point %v", s, alpha[i])
				}
			}
		}
	}
}

// TestModulateCoversAlphabet: every alphabet point is hit by exactly one
// bit pattern.
func TestModulateCoversAlphabet(t *testing.T) {
	for _, s := range Schemes {
		seen := map[complex128]int{}
		n := s.BitsPerSymbol()
		for mask := 0; mask < 1<<uint(n); mask++ {
			bits := make([]int8, n)
			for i := 0; i < n; i++ {
				bits[i] = int8(mask >> uint(n-1-i) & 1)
			}
			x, err := s.Modulate(bits)
			if err != nil {
				t.Fatal(err)
			}
			seen[x]++
		}
		if len(seen) != s.Order() {
			t.Fatalf("%v: %d distinct symbols from %d patterns", s, len(seen), s.Order())
		}
		for x, c := range seen {
			if c != 1 {
				t.Fatalf("%v: symbol %v produced by %d patterns", s, x, c)
			}
		}
	}
}

// TestGrayAdjacency: nearest-neighbour constellation points along one
// dimension differ in exactly one bit — the Gray property.
func TestGrayAdjacency(t *testing.T) {
	for _, s := range Schemes {
		b := s.BitsPerDimI()
		levels := Levels(b)
		for k := 1; k < len(levels); k++ {
			a := bitsFromLevel(levels[k-1], b)
			c := bitsFromLevel(levels[k], b)
			diff := 0
			for i := range a {
				if a[i] != c[i] {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("%v: levels %v and %v differ in %d bits", s, levels[k-1], levels[k], diff)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	got := Levels(2)
	want := []float64{-3, -1, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Levels(2) = %v", got)
		}
	}
	if l := Levels(1); l[0] != -1 || l[1] != 1 {
		t.Fatalf("Levels(1) = %v", l)
	}
}

// TestSpinDecompositionBijective: the weighted-spin decomposition maps
// {−1,+1}^b one-to-one onto the PAM levels.
func TestSpinDecompositionBijective(t *testing.T) {
	for _, b := range []int{1, 2, 3} {
		seen := map[float64]bool{}
		for mask := 0; mask < 1<<uint(b); mask++ {
			spins := make([]int8, b)
			for i := 0; i < b; i++ {
				if mask>>uint(i)&1 == 1 {
					spins[i] = 1
				} else {
					spins[i] = -1
				}
			}
			v := SpinsToLevel(spins)
			if seen[v] {
				t.Fatalf("b=%d: level %v duplicated", b, v)
			}
			seen[v] = true
			// Must be a valid level.
			valid := false
			for _, l := range Levels(b) {
				if l == v {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("b=%d: %v is not a PAM level", b, v)
			}
			// Round trip.
			back := LevelToSpins(v, b)
			for i := range spins {
				if spins[i] != back[i] {
					t.Fatalf("b=%d: LevelToSpins(%v) = %v, want %v", b, v, back, spins)
				}
			}
		}
	}
}

func TestSliceIdempotentOnAlphabet(t *testing.T) {
	for _, s := range Schemes {
		for _, x := range s.Alphabet() {
			if got := s.Slice(x); cmplx.Abs(got-x) > 1e-12 {
				t.Fatalf("%v: Slice(%v) = %v", s, x, got)
			}
		}
	}
}

func TestSliceSnapsNoise(t *testing.T) {
	r := rng.New(2)
	for _, s := range Schemes {
		for trial := 0; trial < 100; trial++ {
			pt := s.Alphabet()[r.Intn(s.Order())]
			// Perturb by less than half the min distance: must snap back.
			eps := s.MinDistance() * 0.49
			noisy := pt + complex(eps/math.Sqrt2*0.9, eps/math.Sqrt2*0.9)
			if s == BPSK {
				noisy = pt + complex(eps*0.9, 0)
			}
			if got := s.Slice(noisy); cmplx.Abs(got-pt) > 1e-12 {
				t.Fatalf("%v: Slice did not snap %v back to %v (got %v)", s, noisy, pt, got)
			}
		}
	}
}

func TestSliceClampsOutOfRange(t *testing.T) {
	// Far outside the constellation, Slice returns the nearest corner.
	got := QAM16.Slice(complex(100, -100))
	want := complex(3*QAM16.Norm(), -3*QAM16.Norm())
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("Slice(100,-100i) = %v, want %v", got, want)
	}
}

func TestMinDistance(t *testing.T) {
	// 16-QAM raw spacing 2, normalized by 1/√10.
	if d := QAM16.MinDistance(); math.Abs(d-2/math.Sqrt(10)) > 1e-12 {
		t.Fatalf("16-QAM min distance %v", d)
	}
	if d := BPSK.MinDistance(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("BPSK min distance %v", d)
	}
}

func TestGrayCodeHelpers(t *testing.T) {
	for i := 0; i < 64; i++ {
		if grayDecode(grayEncode(i)) != i {
			t.Fatalf("gray round trip failed at %d", i)
		}
	}
}

func TestBPSKIsReal(t *testing.T) {
	for _, x := range BPSK.Alphabet() {
		if imag(x) != 0 {
			t.Fatalf("BPSK point %v has imaginary part", x)
		}
	}
}

func TestModulateBinaryRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		n := s.BitsPerSymbol()
		for mask := 0; mask < 1<<uint(n); mask++ {
			bits := make([]int8, n)
			for i := 0; i < n; i++ {
				bits[i] = int8(mask >> uint(n-1-i) & 1)
			}
			x, err := s.ModulateBinary(bits)
			if err != nil {
				t.Fatal(err)
			}
			back := s.DemodulateBinary(x)
			for i := range bits {
				if bits[i] != back[i] {
					t.Fatalf("%v: binary round trip failed for %v", s, bits)
				}
			}
		}
	}
}

// TestModulateBinaryMatchesSpinDecomposition: the binary labeling is by
// construction the spin decomposition — bit k is (s_k+1)/2.
func TestModulateBinaryMatchesSpinDecomposition(t *testing.T) {
	s := QAM16
	bits := []int8{1, 0, 0, 1} // I: (+,−) → 2−1=1; Q: (−,+) → −2+1=−1
	x, err := s.ModulateBinary(bits)
	if err != nil {
		t.Fatal(err)
	}
	want := complex(1*s.Norm(), -1*s.Norm())
	if cmplx.Abs(x-want) > 1e-12 {
		t.Fatalf("got %v, want %v", x, want)
	}
}

func TestModulateBinaryCoversAlphabet(t *testing.T) {
	for _, s := range Schemes {
		seen := map[complex128]bool{}
		n := s.BitsPerSymbol()
		for mask := 0; mask < 1<<uint(n); mask++ {
			bits := make([]int8, n)
			for i := 0; i < n; i++ {
				bits[i] = int8(mask >> uint(i) & 1)
			}
			x, _ := s.ModulateBinary(bits)
			seen[x] = true
		}
		if len(seen) != s.Order() {
			t.Fatalf("%v: binary labeling covers %d/%d points", s, len(seen), s.Order())
		}
	}
}

func TestModulateBinaryWrongLength(t *testing.T) {
	if _, err := QPSK.ModulateBinary([]int8{1}); err == nil {
		t.Fatal("wrong bit count accepted")
	}
}
