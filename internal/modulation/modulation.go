// Package modulation implements the digital modulation schemes the paper
// evaluates (BPSK, QPSK, 16-QAM, 64-QAM): Gray-coded bit↔symbol maps,
// constellation alphabets, unit-average-energy normalization, and the
// per-dimension weighted-spin decomposition that the ML-to-QUBO reduction
// (QuAMax mapping, paper reference [29]) builds on.
//
// Every scheme is a square constellation: the in-phase (I) and quadrature
// (Q) dimensions each carry an independent pulse-amplitude (PAM) level
// from {±1, ±3, …}, except BPSK, which uses only the I dimension. A
// symbol's bits split into a Gray-coded label per dimension, so adjacent
// constellation points differ in one bit — the property Figure 4's
// soft-information scheme exploits.
package modulation

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Scheme identifies a modulation.
type Scheme int

// The schemes evaluated in the paper (§4.2).
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
)

// Schemes lists all supported schemes in evaluation order.
var Schemes = []Scheme{BPSK, QPSK, QAM16, QAM64}

// ParseScheme resolves a scheme name ("bpsk", "qpsk", "16qam", "64qam").
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "bpsk", "BPSK":
		return BPSK, nil
	case "qpsk", "QPSK":
		return QPSK, nil
	case "16qam", "16QAM", "qam16", "QAM16":
		return QAM16, nil
	case "64qam", "64QAM", "qam64", "QAM64":
		return QAM64, nil
	}
	return 0, fmt.Errorf("modulation: unknown scheme %q", name)
}

// String returns the conventional name.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerDimI returns the number of bits carried by the I dimension.
func (s Scheme) BitsPerDimI() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1
	case QAM16:
		return 2
	case QAM64:
		return 3
	}
	panic("modulation: unknown scheme")
}

// BitsPerDimQ returns the number of bits carried by the Q dimension
// (zero for BPSK, which is real-valued).
func (s Scheme) BitsPerDimQ() int {
	if s == BPSK {
		return 0
	}
	return s.BitsPerDimI()
}

// BitsPerSymbol returns the total bits per complex symbol.
func (s Scheme) BitsPerSymbol() int { return s.BitsPerDimI() + s.BitsPerDimQ() }

// Order returns the constellation size M.
func (s Scheme) Order() int { return 1 << uint(s.BitsPerSymbol()) }

// Norm returns the scale factor applied to raw PAM amplitudes so the
// constellation has unit average symbol energy ("unit gain signal",
// §4.2): 1/√1 for BPSK, 1/√2 QPSK, 1/√10 16-QAM, 1/√42 64-QAM.
func (s Scheme) Norm() float64 {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	}
	panic("modulation: unknown scheme")
}

// Levels returns the raw (unnormalized) PAM amplitudes of one dimension
// in increasing order: {−1, 1}, {−3, −1, 1, 3}, or {−7 … 7}.
func Levels(bitsPerDim int) []float64 {
	n := 1 << uint(bitsPerDim)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(2*i - n + 1)
	}
	return out
}

// grayEncode returns the Gray code of i.
func grayEncode(i int) int { return i ^ (i >> 1) }

// grayDecode inverts grayEncode.
func grayDecode(g int) int {
	i := 0
	for ; g != 0; g >>= 1 {
		i ^= g
	}
	return i
}

// levelFromBits maps a Gray-coded per-dimension bit label (MSB first) to
// its raw PAM amplitude.
func levelFromBits(bits []int8) float64 {
	g := 0
	for _, b := range bits {
		g = g<<1 | int(b&1)
	}
	idx := grayDecode(g)
	n := 1 << uint(len(bits))
	return float64(2*idx - n + 1)
}

// bitsFromLevel maps a raw PAM amplitude (which must be a valid level) to
// its Gray-coded bit label (MSB first).
func bitsFromLevel(level float64, bitsPerDim int) []int8 {
	n := 1 << uint(bitsPerDim)
	idx := int(math.Round((level + float64(n) - 1) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx > n-1 {
		idx = n - 1
	}
	g := grayEncode(idx)
	bits := make([]int8, bitsPerDim)
	for k := bitsPerDim - 1; k >= 0; k-- {
		bits[k] = int8(g & 1)
		g >>= 1
	}
	return bits
}

// Modulate maps BitsPerSymbol() Gray-coded bits (I bits first, then Q) to
// a normalized constellation point.
func (s Scheme) Modulate(bits []int8) (complex128, error) {
	if len(bits) != s.BitsPerSymbol() {
		return 0, fmt.Errorf("modulation: %s needs %d bits, got %d", s, s.BitsPerSymbol(), len(bits))
	}
	bi := s.BitsPerDimI()
	i := levelFromBits(bits[:bi])
	q := 0.0
	if bq := s.BitsPerDimQ(); bq > 0 {
		q = levelFromBits(bits[bi:])
	}
	return complex(i*s.Norm(), q*s.Norm()), nil
}

// Demodulate hard-slices a (noisy) received point to the nearest
// constellation symbol's Gray-coded bits.
func (s Scheme) Demodulate(x complex128) []int8 {
	bi := s.BitsPerDimI()
	iLevel := nearestLevel(real(x)/s.Norm(), bi)
	bits := bitsFromLevel(iLevel, bi)
	if bq := s.BitsPerDimQ(); bq > 0 {
		qLevel := nearestLevel(imag(x)/s.Norm(), bq)
		bits = append(bits, bitsFromLevel(qLevel, bq)...)
	}
	return bits
}

// nearestLevel snaps a raw amplitude to the closest valid PAM level.
func nearestLevel(v float64, bitsPerDim int) float64 {
	n := 1 << uint(bitsPerDim)
	idx := int(math.Round((v + float64(n) - 1) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx > n-1 {
		idx = n - 1
	}
	return float64(2*idx - n + 1)
}

// Slice returns the nearest normalized constellation point to x.
func (s Scheme) Slice(x complex128) complex128 {
	bi := s.BitsPerDimI()
	i := nearestLevel(real(x)/s.Norm(), bi) * s.Norm()
	q := 0.0
	if bq := s.BitsPerDimQ(); bq > 0 {
		q = nearestLevel(imag(x)/s.Norm(), bq) * s.Norm()
	}
	return complex(i, q)
}

// Alphabet returns every normalized constellation point, ordered by
// (I level, Q level).
func (s Scheme) Alphabet() []complex128 {
	iLevels := Levels(s.BitsPerDimI())
	var qLevels []float64
	if s.BitsPerDimQ() > 0 {
		qLevels = Levels(s.BitsPerDimQ())
	} else {
		qLevels = []float64{0}
	}
	out := make([]complex128, 0, len(iLevels)*len(qLevels))
	for _, iv := range iLevels {
		for _, qv := range qLevels {
			out = append(out, complex(iv*s.Norm(), qv*s.Norm()))
		}
	}
	return out
}

// AverageEnergy returns the mean |x|² over the alphabet (≈1 by
// construction; exposed for tests and SNR accounting).
func (s Scheme) AverageEnergy() float64 {
	var sum float64
	alpha := s.Alphabet()
	for _, x := range alpha {
		sum += real(x)*real(x) + imag(x)*imag(x)
	}
	return sum / float64(len(alpha))
}

// SpinWeights returns the weights w_k such that a dimension's raw PAM
// amplitude is Σ_k w_k·s_k over spins s_k ∈ {−1, +1}: w = (2^{b−1}, …, 2,
// 1) for b bits. This is the linear spin decomposition the ML-to-QUBO
// reduction uses; SpinsToLevel/LevelToSpins convert between the two
// labelings.
func SpinWeights(bitsPerDim int) []float64 {
	w := make([]float64, bitsPerDim)
	for k := range w {
		w[k] = float64(int(1) << uint(bitsPerDim-1-k))
	}
	return w
}

// SpinsToLevel evaluates the weighted-spin decomposition.
func SpinsToLevel(spins []int8) float64 {
	w := SpinWeights(len(spins))
	var v float64
	for k, s := range spins {
		v += w[k] * float64(s)
	}
	return v
}

// LevelToSpins inverts SpinsToLevel for a valid PAM level.
func LevelToSpins(level float64, bitsPerDim int) []int8 {
	spins := make([]int8, bitsPerDim)
	v := level
	for k, w := range SpinWeights(bitsPerDim) {
		if v >= 0 {
			spins[k] = 1
			v -= w
		} else {
			spins[k] = -1
			v += w
		}
	}
	return spins
}

// MinDistance returns the minimum Euclidean distance between distinct
// normalized constellation points.
func (s Scheme) MinDistance() float64 {
	alpha := s.Alphabet()
	best := math.Inf(1)
	for i := range alpha {
		for j := i + 1; j < len(alpha); j++ {
			if d := cmplx.Abs(alpha[i] - alpha[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// ModulateBinary maps BitsPerSymbol() bits to a constellation point under
// the BINARY (weighted-spin) labeling instead of the Gray transmit
// labeling: bit k of each dimension is the spin-decomposition digit, so
// the resulting symbol's Ising encoding equals the bits directly. Coded
// systems that consume the annealer's per-spin soft output use this
// labeling end to end.
func (s Scheme) ModulateBinary(bits []int8) (complex128, error) {
	if len(bits) != s.BitsPerSymbol() {
		return 0, fmt.Errorf("modulation: %s needs %d bits, got %d", s, s.BitsPerSymbol(), len(bits))
	}
	bi := s.BitsPerDimI()
	i := SpinsToLevel(bitsToSpins(bits[:bi]))
	q := 0.0
	if bq := s.BitsPerDimQ(); bq > 0 {
		q = SpinsToLevel(bitsToSpins(bits[bi:]))
	}
	return complex(i*s.Norm(), q*s.Norm()), nil
}

// DemodulateBinary inverts ModulateBinary by hard slicing.
func (s Scheme) DemodulateBinary(x complex128) []int8 {
	bi := s.BitsPerDimI()
	bits := spinsToBits01(LevelToSpins(nearestLevel(real(x)/s.Norm(), bi), bi))
	if bq := s.BitsPerDimQ(); bq > 0 {
		bits = append(bits, spinsToBits01(LevelToSpins(nearestLevel(imag(x)/s.Norm(), bq), bq))...)
	}
	return bits
}

func bitsToSpins(bits []int8) []int8 {
	out := make([]int8, len(bits))
	for i, b := range bits {
		if b != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

func spinsToBits01(spins []int8) []int8 {
	out := make([]int8, len(spins))
	for i, sp := range spins {
		if sp > 0 {
			out[i] = 1
		}
	}
	return out
}
