package annealer

import (
	"reflect"
	"testing"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/rng"
)

func leaseTestIsing(t *testing.T) *instance.Instance {
	t.Helper()
	in, err := instance.Synthesize(instance.Spec{Users: 4, Scheme: modulation.QAM16, Seed: 0x1EA5E})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// A leased run must be bit-identical to a direct Run with the same
// parameters and seed — the lease amortizes Prepare, nothing else.
func TestLeaseRunMatchesDirectRun(t *testing.T) {
	in := leaseTestIsing(t)
	is := in.Reduction.Ising
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int8, is.N)
	for i := range init {
		init[i] = 1
	}
	p := Params{
		Schedule: sc, InitialState: init, NumReads: 12,
		SweepsPerMicrosecond: 30,
		ICE:                  ICE{SigmaH: 0.02, SigmaJ: 0.01},
		Faults:               FaultModel{ReadTimeoutRate: 0.1, CalibrationDriftRate: 0.1},
	}
	direct, err := Run(is, p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lease, err := NewLease(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		leased, err := lease.Run(is, init, 12, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.Samples, leased.Samples) {
			t.Fatalf("trial %d: leased samples diverge from direct run", trial)
		}
		if direct.Best.Energy != leased.Best.Energy || direct.Faults != leased.Faults {
			t.Fatalf("trial %d: best/faults diverge: %+v vs %+v", trial, direct.Faults, leased.Faults)
		}
	}
}

// The embedded path through a QPU lease must match QPU.Run exactly too.
func TestQPULeaseMatchesQPURun(t *testing.T) {
	in := leaseTestIsing(t)
	is := in.Reduction.Ising
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQPU2000Q()
	p := Params{Schedule: sc, NumReads: 8, SweepsPerMicrosecond: 30}
	direct, err := q.Run(is, p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	lease, err := q.Lease(p)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Embedded() {
		t.Fatal("QPU lease should report embedded")
	}
	leased, err := lease.Run(is, nil, 8, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Samples, leased.Samples) {
		t.Fatal("embedded leased samples diverge from QPU.Run")
	}
	if direct.BrokenChainRate != leased.BrokenChainRate {
		t.Fatalf("broken-chain rate diverges: %g vs %g", direct.BrokenChainRate, leased.BrokenChainRate)
	}
}

// One lease must serve many distinct problems without cross-talk: each
// problem's result matches a fresh direct run.
func TestLeaseServesManyProblems(t *testing.T) {
	sc, err := Reverse(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		is := in.Reduction.Ising
		init := make([]int8, is.N)
		for i := range init {
			init[i] = -1
		}
		leased, err := lease.Run(is, init, 6, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Run(is, Params{Schedule: sc, InitialState: init, NumReads: 6, SweepsPerMicrosecond: 30}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.Samples, leased.Samples) {
			t.Fatalf("seed %d: lease run diverges from direct run", seed)
		}
	}
}

func TestLeaseErrorContracts(t *testing.T) {
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLease(Params{}); err == nil {
		t.Fatal("nil schedule must fail lease creation")
	}
	if _, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: -1}); err == nil {
		t.Fatal("negative sweep rate must fail lease creation")
	}
	lease, err := NewLease(Params{Schedule: sc})
	if err != nil {
		t.Fatal(err)
	}
	in := leaseTestIsing(t)
	is := in.Reduction.Ising
	if _, err := lease.Run(is, nil, 4, rng.New(1)); err == nil {
		t.Fatal("reverse lease without an initial state must fail")
	}
	if _, err := lease.Run(is, make([]int8, is.N), MaxReads+1, rng.New(1)); err == nil {
		t.Fatal("reads beyond MaxReads must fail")
	}
	if got := lease.ServiceMicros(10); got != 10*sc.Duration() {
		t.Fatalf("logical ServiceMicros = %g, want %g", got, 10*sc.Duration())
	}
	q := NewQPU2000Q()
	ql, err := q.Lease(Params{Schedule: sc})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ql.ServiceMicros(10), q.ServiceTime(sc, 10); got != want {
		t.Fatalf("QPU ServiceMicros = %g, want %g", got, want)
	}
}
