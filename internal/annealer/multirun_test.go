package annealer

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// TestRunPreparedMultiMatchesSequential: the multi-initial-state batch is
// pure sugar — every arm's result must be bit-identical to the standalone
// RunPrepared call with the same (init, reads, rng), on both the logical
// and the embedded paths, regardless of how arms are partitioned.
func TestRunPreparedMultiMatchesSequential(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Schedule: sc, NumReads: 8, SweepsPerMicrosecond: 30,
		ICE: ICE{SigmaH: 0.02, SigmaJ: 0.01},
	}
	leases := map[string]*Lease{}
	l, err := NewLease(p)
	if err != nil {
		t.Fatal(err)
	}
	leases["logical"] = l
	if l, err = NewQPU2000Q().Lease(p); err != nil {
		t.Fatal(err)
	}
	leases["embedded"] = l
	inits := make([][]int8, 3)
	for c := range inits {
		inits[c] = make([]int8, is.N)
		for i := range inits[c] {
			if (i+c)%2 == 0 {
				inits[c][i] = 1
			} else {
				inits[c][i] = -1
			}
		}
	}
	for name, l := range leases {
		t.Run(name, func(t *testing.T) {
			prep, err := l.PrepareProblem(is)
			if err != nil {
				t.Fatal(err)
			}
			runs := make([]PreparedRun, len(inits))
			for c := range inits {
				runs[c] = PreparedRun{InitialState: inits[c], NumReads: 8, Rng: rng.New(100 + uint64(c))}
			}
			results, errs, err := l.RunPreparedMulti(prep, runs)
			if err != nil {
				t.Fatal(err)
			}
			for c := range inits {
				if errs[c] != nil {
					t.Fatalf("arm %d errored: %v", c, errs[c])
				}
				want, err := l.RunPrepared(prep, inits[c], 8, rng.New(100+uint64(c)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, results[c]) {
					t.Fatalf("%s arm %d diverges from standalone RunPrepared", name, c)
				}
			}
		})
	}
}

// TestRunPreparedMultiIsolatesArmFaults: a faulted arm reports its error
// in errs without aborting the batch or poisoning its neighbours.
func TestRunPreparedMultiIsolatesArmFaults(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLease(Params{
		Schedule: sc, NumReads: 5, SweepsPerMicrosecond: 30,
		Faults: FaultModel{ProgrammingFailureRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := l.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int8, is.N)
	for i := range init {
		init[i] = 1
	}
	runs := make([]PreparedRun, 16)
	for i := range runs {
		runs[i] = PreparedRun{InitialState: init, NumReads: 5, Rng: rng.New(uint64(i))}
	}
	results, errs, err := l.RunPreparedMulti(prep, runs)
	if err != nil {
		t.Fatal(err)
	}
	faulted, healthy := 0, 0
	for i := range runs {
		switch {
		case errs[i] != nil:
			if _, ok := AsFault(errs[i]); !ok {
				t.Fatalf("arm %d error %v is not a typed fault", i, errs[i])
			}
			if results[i] != nil {
				t.Fatalf("faulted arm %d still has a result", i)
			}
			faulted++
		case results[i] == nil:
			t.Fatalf("arm %d has neither result nor error", i)
		default:
			healthy++
		}
	}
	if faulted == 0 || healthy == 0 {
		t.Fatalf("want a mixed batch, got %d faulted / %d healthy", faulted, healthy)
	}
}

// TestRunPreparedMultiValidates: foreign prepared problems, empty
// batches and nil RNG streams are rejected up front.
func TestRunPreparedMultiValidates(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Schedule: sc, NumReads: 5, SweepsPerMicrosecond: 30}
	l1, err := NewLease(p)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLease(p)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := l1.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int8, is.N)
	for i := range init {
		init[i] = 1
	}
	good := []PreparedRun{{InitialState: init, NumReads: 5, Rng: rng.New(1)}}
	if _, _, err := l2.RunPreparedMulti(prep, good); err == nil {
		t.Fatal("foreign prepared problem accepted")
	}
	if _, _, err := l1.RunPreparedMulti(nil, good); err == nil {
		t.Fatal("nil prepared problem accepted")
	}
	if _, _, err := l1.RunPreparedMulti(prep, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := l1.RunPreparedMulti(prep, []PreparedRun{{InitialState: init, NumReads: 5}}); err == nil {
		t.Fatal("nil rng stream accepted")
	}
}
