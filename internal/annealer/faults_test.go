package annealer

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/rng"
)

func TestFaultModelValidate(t *testing.T) {
	cases := []FaultModel{
		{ProgrammingFailureRate: -0.1},
		{ProgrammingFailureRate: 1.1},
		{ReadTimeoutRate: 2},
		{ChainBreakStormRate: -1},
		{StormFlipFraction: 1.5},
		{CalibrationDriftRate: 7},
		{DriftSigma: -0.1},
	}
	for i, fm := range cases {
		if fm.Validate() == nil {
			t.Fatalf("case %d: invalid fault model accepted: %+v", i, fm)
		}
	}
	if (FaultModel{}).Validate() != nil {
		t.Fatal("zero fault model rejected")
	}
	if (FaultModel{}).Enabled() {
		t.Fatal("zero fault model reports enabled")
	}
	// withDefaults carries the validation into Run.
	fa, _ := Forward(1, 0.41, 1)
	is := ferroChain(4)
	if _, err := Run(is, Params{Schedule: fa, Faults: FaultModel{ReadTimeoutRate: -1}}, rng.New(1)); err == nil {
		t.Fatal("Run accepted an invalid fault model")
	}
}

// TestWithDefaultsRejectsBadKnobs: negative parallelism and over-limit
// read counts are configuration errors, not silent misbehaviour.
func TestWithDefaultsRejectsBadKnobs(t *testing.T) {
	fa, _ := Forward(1, 0.41, 1)
	is := ferroChain(4)
	if _, err := Run(is, Params{Schedule: fa, Parallelism: -1}, rng.New(1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if _, err := Run(is, Params{Schedule: fa, NumReads: MaxReads + 1}, rng.New(1)); err == nil {
		t.Fatal("over-limit NumReads accepted")
	}
	if _, err := NewQPU2000Q().Run(is, Params{Schedule: fa, Parallelism: -3}, rng.New(1)); err == nil {
		t.Fatal("QPU accepted negative parallelism")
	}
}

func TestProgrammingFailureIsTyped(t *testing.T) {
	fa, _ := Forward(1, 0.41, 1)
	is := ferroChain(6)
	_, err := Run(is, Params{Schedule: fa, NumReads: 5, SweepsPerMicrosecond: 50,
		Faults: FaultModel{ProgrammingFailureRate: 1}}, rng.New(3))
	if err == nil {
		t.Fatal("certain programming failure did not error")
	}
	fe, ok := AsFault(err)
	if !ok || fe.Kind != FaultProgramming {
		t.Fatalf("error %v is not a programming FaultError", err)
	}
	// The embedded path surfaces the same typed error.
	_, err = NewQPU2000Q().Run(is, Params{Schedule: fa, NumReads: 5, SweepsPerMicrosecond: 50,
		Faults: FaultModel{ProgrammingFailureRate: 1}}, rng.New(3))
	if fe, ok := AsFault(err); !ok || fe.Kind != FaultProgramming {
		t.Fatalf("QPU error %v is not a programming FaultError", err)
	}
}

func TestReadTimeoutsDropReadsDeterministically(t *testing.T) {
	fa, _ := Forward(1, 0.41, 1)
	is := frustrated(8, 7)
	p := Params{Schedule: fa, NumReads: 40, SweepsPerMicrosecond: 50,
		Faults: FaultModel{ReadTimeoutRate: 0.4}}
	a, err := Run(is, p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Faults.ReadTimeouts == 0 {
		t.Fatal("40% timeout rate produced no timeouts in 40 reads")
	}
	if len(a.Samples)+a.Faults.ReadTimeouts != 40 {
		t.Fatalf("%d samples + %d timeouts ≠ 40 reads", len(a.Samples), a.Faults.ReadTimeouts)
	}
	// Timed-out reads still occupy the device.
	if a.TotalAnnealTime != 40*fa.Duration() {
		t.Fatalf("total anneal time %v does not charge lost reads", a.TotalAnnealTime)
	}
	b, err := Run(is, p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != len(a.Samples) || b.Faults != a.Faults {
		t.Fatal("same-seed faulty runs diverged")
	}
}

func TestAllReadsLostIsTyped(t *testing.T) {
	fa, _ := Forward(1, 0.41, 1)
	is := ferroChain(6)
	_, err := Run(is, Params{Schedule: fa, NumReads: 10, SweepsPerMicrosecond: 50,
		Faults: FaultModel{ReadTimeoutRate: 1}}, rng.New(5))
	if fe, ok := AsFault(err); !ok || fe.Kind != FaultAllReadsLost {
		t.Fatalf("error %v is not an all-reads-lost FaultError", err)
	}
}

// TestChainBreakStormCorruptsReadout: a storm on every read of an easy
// problem must visibly degrade sample quality (the storm happens after
// the quench, so it is raw readout corruption).
func TestChainBreakStormCorruptsReadout(t *testing.T) {
	is := ferroChain(10)
	fa, _ := Forward(1, 0.41, 1)
	clean, err := Run(is, Params{Schedule: fa, NumReads: 30, SweepsPerMicrosecond: 100}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	stormy, err := Run(is, Params{Schedule: fa, NumReads: 30, SweepsPerMicrosecond: 100,
		Faults: FaultModel{ChainBreakStormRate: 1, StormFlipFraction: 0.5}}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if stormy.Faults.ChainBreakStorms != 30 {
		t.Fatalf("storm count %d, want 30", stormy.Faults.ChainBreakStorms)
	}
	if meanEnergy(stormy.Samples) <= meanEnergy(clean.Samples) {
		t.Fatalf("storms did not degrade mean energy: %v vs %v",
			meanEnergy(stormy.Samples), meanEnergy(clean.Samples))
	}
}

func TestCalibrationDriftCountsAndPerturbs(t *testing.T) {
	is := frustrated(10, 17)
	fa, _ := Forward(1, 0.41, 1)
	clean, err := Run(is, Params{Schedule: fa, NumReads: 20, SweepsPerMicrosecond: 50}, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	drifty, err := Run(is, Params{Schedule: fa, NumReads: 20, SweepsPerMicrosecond: 50,
		Faults: FaultModel{CalibrationDriftRate: 1, DriftSigma: 0.5}}, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if drifty.Faults.CalibrationDrifts != 20 {
		t.Fatalf("drift count %d, want 20", drifty.Faults.CalibrationDrifts)
	}
	same := true
	for i := range clean.Samples {
		if !spinsEqual(clean.Samples[i].Spins, drifty.Samples[i].Spins) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("heavy calibration drift changed no read")
	}
	// Reported energies stay in the caller's problem scale.
	for _, s := range drifty.Samples {
		if is.Energy(s.Spins) != s.Energy {
			t.Fatal("drifted sample energy not re-evaluated on the true problem")
		}
	}
}

// TestNearZeroFaultModelIsNoop: an enabled-but-never-firing fault model
// must reproduce the clean run bit-for-bit, because fault decisions come
// from dedicated RNG splits that never advance the dynamics streams.
func TestNearZeroFaultModelIsNoop(t *testing.T) {
	is := frustrated(10, 23)
	fa, _ := Forward(1, 0.41, 1)
	clean, err := Run(is, Params{Schedule: fa, NumReads: 15, SweepsPerMicrosecond: 50,
		ICE: ICE{SigmaH: 0.02, SigmaJ: 0.02}}, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Run(is, Params{Schedule: fa, NumReads: 15, SweepsPerMicrosecond: 50,
		ICE:    ICE{SigmaH: 0.02, SigmaJ: 0.02},
		Faults: FaultModel{ProgrammingFailureRate: 1e-15, ReadTimeoutRate: 1e-15, ChainBreakStormRate: 1e-15, CalibrationDriftRate: 1e-15}}, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Samples {
		if clean.Samples[i].Energy != guarded.Samples[i].Energy ||
			!spinsEqual(clean.Samples[i].Spins, guarded.Samples[i].Spins) {
			t.Fatalf("fault bookkeeping perturbed read %d", i)
		}
	}
}

// TestParallelismDeterministicWithFaults is the determinism regression of
// this PR: Parallelism ∈ {1, 4, GOMAXPROCS} yields bit-identical
// Result.Samples for the same seed, for both SVMC and PIMC, with the
// fault model both off and injecting every fault class.
func TestParallelismDeterministicWithFaults(t *testing.T) {
	is := frustrated(10, 31)
	fa, _ := Forward(1, 0.41, 1)
	models := []FaultModel{
		{},
		{ReadTimeoutRate: 0.2, ChainBreakStormRate: 0.3, CalibrationDriftRate: 0.3, DriftSigma: 0.2},
	}
	engines := []Engine{SVMC{}, PIMC{Slices: 8}}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, fm := range models {
		for _, eng := range engines {
			var base *Result
			for _, par := range levels {
				got, err := Run(is, Params{Schedule: fa, NumReads: 24, Engine: eng,
					SweepsPerMicrosecond: 30, Faults: fm, Parallelism: par}, rng.New(37))
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = got
					continue
				}
				if len(got.Samples) != len(base.Samples) || got.Faults != base.Faults {
					t.Fatalf("%s faults=%v: parallelism %d changed sample/fault counts", eng.Name(), fm.Enabled(), par)
				}
				for i := range base.Samples {
					if base.Samples[i].Energy != got.Samples[i].Energy ||
						!spinsEqual(base.Samples[i].Spins, got.Samples[i].Spins) {
						t.Fatalf("%s faults=%v: parallelism %d diverged at read %d", eng.Name(), fm.Enabled(), par, i)
					}
				}
			}
		}
	}
}

// TestQPUFaultPath: the embedded sampler honours timeouts and storms and
// keeps its chain accounting on surviving reads.
func TestQPUFaultPath(t *testing.T) {
	is := frustrated(8, 41)
	fa, _ := Forward(1, 0.41, 1)
	qpu := NewQPU2000Q()
	res, err := qpu.Run(is, Params{Schedule: fa, NumReads: 20, SweepsPerMicrosecond: 50,
		Faults: FaultModel{ReadTimeoutRate: 0.3, ChainBreakStormRate: 0.3}}, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.ReadTimeouts == 0 {
		t.Fatal("no timeouts at 30% over 20 reads")
	}
	if len(res.Samples)+res.Faults.ReadTimeouts != 20 {
		t.Fatal("sample accounting incomplete")
	}
	if res.BrokenChainRate < 0 || res.BrokenChainRate > 1 {
		t.Fatalf("broken chain rate %v", res.BrokenChainRate)
	}
	for _, s := range res.Samples {
		if len(s.Spins) != is.N {
			t.Fatal("unembedded sample has wrong width")
		}
	}
}

func TestFaultStatsTotalAndKindNames(t *testing.T) {
	s := FaultStats{ReadTimeouts: 1, ChainBreakStorms: 2, CalibrationDrifts: 3}
	if s.Total() != 6 {
		t.Fatalf("total %d", s.Total())
	}
	if FaultProgramming.String() != "programming-failure" || FaultAllReadsLost.String() != "all-reads-lost" {
		t.Fatal("fault kind names wrong")
	}
	if (&FaultError{Kind: FaultProgramming}).Error() == "" {
		t.Fatal("empty fault error string")
	}
	if _, ok := AsFault(errors.New("unrelated")); ok {
		t.Fatal("AsFault matched a non-fault error")
	}
}
