package annealer

import (
	"fmt"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Engine is a classical surrogate for the annealer's quantum dynamics: it
// evolves one sample through an anneal schedule and returns the measured
// classical state.
//
// Two engines are provided. SVMC (spin-vector Monte Carlo) models each
// qubit as a classical O(2) rotor — cheap and known to capture much of
// D-Wave's equilibrium behaviour. PIMC (path-integral Monte Carlo /
// simulated quantum annealing) simulates the transverse-field Ising model
// through its Suzuki–Trotter decomposition — the standard reference
// surrogate in the quantum-annealing benchmarking literature.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Anneal evolves one read. init is the programmed classical initial
	// state for schedules that start at s = 1 (reverse annealing) and is
	// ignored otherwise; sweepsPerMicrosecond converts schedule time to
	// Monte-Carlo sweeps.
	Anneal(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source) []int8
}

// ProbedEngine is implemented by engines that can report per-sweep
// observations to a Probe. Run dispatches through it when Params.Probe is
// set; plain Engines still work, just unobserved. AnnealProbed with a nil
// probe must be exactly Anneal — probing may never perturb the dynamics
// (the probe sees state, it does not touch the RNG).
type ProbedEngine interface {
	Engine
	AnnealProbed(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source, probe Probe) []int8
}

// sweepCount converts a schedule duration to an integer sweep count
// (at least 1 per schedule point segment).
func sweepCount(sc *Schedule, sweepsPerMicrosecond float64) (int, error) {
	if sweepsPerMicrosecond <= 0 {
		return 0, fmt.Errorf("annealer: sweeps per microsecond must be positive")
	}
	n := int(sc.Duration() * sweepsPerMicrosecond)
	if n < 2 {
		n = 2
	}
	return n, nil
}
