package annealer

import (
	"fmt"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Engine is a classical surrogate for the annealer's quantum dynamics.
//
// Two engines are provided. SVMC (spin-vector Monte Carlo) models each
// qubit as a classical O(2) rotor — cheap and known to capture much of
// D-Wave's equilibrium behaviour. PIMC (path-integral Monte Carlo /
// simulated quantum annealing) simulates the transverse-field Ising model
// through its Suzuki–Trotter decomposition — the standard reference
// surrogate in the quantum-annealing benchmarking literature.
//
// An engine runs in two phases. Prepare compiles the batch-invariant
// sweep program — the per-sweep schedule quantities s(t), A(s), B(s) and
// any engine-specific factors derived from them, which are identical for
// every read of a batch — and returns the ReadFunc that evolves one read.
// Run calls Prepare once and fans the ReadFunc out across reads, so the
// per-sweep trigonometry/transcendentals are paid once per batch instead
// of once per read.
//
// Precondition (validated by the caller, once): the schedule has passed
// (*Schedule).Validate and the profile (Profile).Validate. Run/QPU.Run
// establish this in withDefaults before any engine code runs; engines do
// not re-validate and must not panic on schedule content. The one knob an
// engine interprets itself — the sweep rate — is checked in Prepare,
// which returns an error (never panics) for a non-positive rate.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Prepare compiles the sweep program for one batch. See the interface
	// comment for the validation contract.
	Prepare(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, error)
}

// ReadFunc evolves one read against pr — the compiled problem, whose
// topology is the batch's but whose coefficients may carry per-read noise
// (ICE, calibration drift) — and writes the measured classical state into
// out (length pr.N). init is the programmed initial state for schedules
// that start at s = 1 (reverse annealing) and is ignored otherwise. probe,
// when non-nil, receives one observation per sweep; a nil probe must cost
// nothing beyond a per-sweep nil check, and probing may never perturb the
// dynamics (the probe sees state, it does not touch the RNG).
//
// ReadFuncs are safe for concurrent use: compiled state is read-only and
// per-read scratch is pooled internally, so steady-state reads allocate
// nothing.
type ReadFunc func(pr *qubo.CSR, init []int8, out []int8, r *rng.Source, probe Probe)

// BatchRead describes one resident read of a lockstep group: the compiled
// problem it runs against (all reads of a group must share the problem
// TOPOLOGY — Offsets/Cols — though coefficients may differ per read), the
// output spin buffer, and the read's private RNG stream.
type BatchRead struct {
	Prog *qubo.CSR
	Out  []int8
	Rng  *rng.Source
}

// BatchReadFunc evolves a group of reads in LOCKSTEP: all reads advance
// through the sweep program together, with spin state stored as
// struct-of-arrays (read-major contiguous blocks) so the per-sweep
// schedule constants are loaded once per group and the reads' independent
// dependency chains overlap in the pipeline instead of serializing.
//
// Each read draws from its own Rng in EXACTLY the order the one-read
// ReadFunc would — the streams are private, so interleaving reads cannot
// change any draw — and performs the identical floating-point operations,
// so outcomes are bit-identical to running the reads sequentially through
// the ReadFunc (the reference implementation, enforced by
// TestLockstepMatchesSequential). On return every Rng has advanced
// exactly as the sequential read would have left it.
//
// init is the shared programmed initial state (schedules starting at
// s = 1); probes are not supported — probed runs take the sequential
// reference path. BatchReadFuncs are safe for concurrent use: group
// scratch is pooled internally.
type BatchReadFunc func(init []int8, reads []BatchRead)

// BatchEngine is implemented by engines that provide a lockstep
// multi-read kernel alongside the one-read reference path. PrepareBatch
// compiles the same batch-invariant sweep program as Prepare and returns
// both entry points; the caller picks per run (the batched path whenever
// no probe is attached).
type BatchEngine interface {
	Engine
	// PrepareBatch compiles the sweep program once and returns the
	// sequential reference ReadFunc plus the lockstep BatchReadFunc.
	// The validation contract matches Prepare.
	PrepareBatch(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, BatchReadFunc, error)
}

// lockstepWidth is the number of reads resident in one lockstep group.
// Eight reads give the out-of-order core enough independent RNG/trig/
// field dependency chains to hide each chain's latency while the group's
// struct-of-arrays spin state still fits comfortably in L2 for the
// paper's embedded problem sizes.
const lockstepWidth = 8

// sweepTable is the batch-shared sweep program: for each Monte-Carlo
// sweep, the schedule time, anneal fraction and energy scales every read
// will see there. Engines extend it with their own derived columns
// (temporal coupling, move scales) in Prepare.
type sweepTable struct {
	duration float64
	t        []float64 // μs into the schedule
	s        []float64 // anneal fraction s(t)
	a        []float64 // transverse-field scale A(s)
	b        []float64 // problem scale B(s)
}

func newSweepTable(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (*sweepTable, error) {
	sweeps, err := sweepCount(sc, sweepsPerMicrosecond)
	if err != nil {
		return nil, err
	}
	tab := &sweepTable{
		duration: sc.Duration(),
		t:        make([]float64, sweeps),
		s:        make([]float64, sweeps),
		a:        make([]float64, sweeps),
		b:        make([]float64, sweeps),
	}
	for i := 0; i < sweeps; i++ {
		t := tab.duration * float64(i) / float64(sweeps-1)
		s := sc.At(t)
		tab.t[i] = t
		tab.s[i] = s
		tab.a[i] = prof.A(s)
		tab.b[i] = prof.B(s)
	}
	return tab, nil
}

func (tab *sweepTable) sweeps() int { return len(tab.t) }

// sweepCount converts a schedule duration to an integer sweep count
// (at least 1 per schedule point segment).
func sweepCount(sc *Schedule, sweepsPerMicrosecond float64) (int, error) {
	if sweepsPerMicrosecond <= 0 {
		return 0, fmt.Errorf("annealer: sweeps per microsecond must be positive")
	}
	n := int(sc.Duration() * sweepsPerMicrosecond)
	if n < 2 {
		n = 2
	}
	return n, nil
}
