// AVX2 lockstep SVMC proposal kernel. See svmc_simd_amd64.go for the
// contract. Everything here is either exact integer arithmetic or an
// IEEE-754 vector op whose 4-lane rounding matches the scalar op bit
// for bit; FMA is deliberately absent (it would contract mul+add pairs
// and change the rounding). Constants come from ·svmcSIMDTab — each
// replicated across a 32-byte row so VEX memory operands can use them
// directly (VEX encodings carry no alignment requirement). Table rows:
//   +0 mask32  +32 magicHi  +64 magicLo  +96 magicSub(2⁸⁴+2⁵²)
//   +128 2⁻⁵³  +160 0.5  +192 0.25  +224 absMask  +256 signBit
//   +288+32k sinPiCoef[k] (k ≤ 6)   +512+32k cosPiCoef[k] (k ≤ 7)
//   +768 expGridStep  +800 expGridMax (int64)

#include "textflag.h"

// XOSHIRO advances one 4-lane xoshiro256++ state (S0..S3), leaving the
// output x = rotl(s0+s3, 23) + s0 in X, then applying the state update
// (t = s1<<17; s2^=s0; s3^=s1; s1^=s2; s0^=s3; s2^=t; s3 = rotl(s3,45))
// in exactly xoshiroNext's order. T0/T1 are clobbered.
#define XOSHIRO(S0, S1, S2, S3, X, T0, T1) \
	VPADDQ S3, S0, T0  \
	VPSLLQ $23, T0, T1 \
	VPSRLQ $41, T0, T0 \
	VPOR   T1, T0, T0  \
	VPADDQ S0, T0, X   \
	VPSLLQ $17, S1, T0 \
	VPXOR  S0, S2, S2  \
	VPXOR  S1, S3, S3  \
	VPXOR  S2, S1, S1  \
	VPXOR  S3, S0, S0  \
	VPXOR  T0, S2, S2  \
	VPSLLQ $45, S3, T0 \
	VPSRLQ $19, S3, S3 \
	VPOR   T0, S3, S3

// BOUND is the Lemire bounded draw for one 4-lane half: NB holds
// nb < 2³² in each qword, X the raw draw. The 128-bit product x·nb is
// assembled from 32-bit limbs (x·nb = xh·nb·2³² + xl·nb = p2·2³² + p1):
//   s  = p2 + (p1 >> 32)          (cannot overflow: p2 ≤ 2⁶⁴−2³³+1)
//   hi = s >> 32                  (the bounded index, into HI)
//   lo = (s << 32) | (p1 & 2³²−1) (the rejection test operand)
// MSK receives per-lane all-ones where lo < negnb unsigned — those
// lanes must redraw. NEGB holds negnb with the sign bit pre-flipped;
// flipping lo's sign bit too turns VPCMPGTQ's signed compare into the
// unsigned one. T0/T1 are clobbered; HI may alias X.
#define BOUND(X, NB, NEGB, HI, MSK, T0, T1) \
	VPMULUDQ NB, X, T0                    \
	VPSRLQ   $32, X, T1                   \
	VPMULUDQ NB, T1, T1                   \
	VPSRLQ   $32, T0, MSK                 \
	VPADDQ   MSK, T1, T1                  \
	VPSRLQ   $32, T1, HI                  \
	VPSLLQ   $32, T1, T1                  \
	VPAND    ·svmcSIMDTab+0(SB), T0, T0   \
	VPOR     T1, T0, T0                   \
	VPXOR    ·svmcSIMDTab+256(SB), T0, T0 \
	VPCMPGTQ T0, NEGB, MSK

// SINCOSPI computes u = (x>>11)·2⁻⁵³ and (sin πu, cos πu) for one
// 4-lane half, mirroring sinCosPi in sincospi.go operation for
// operation. X holds the raw angle draw; SN/CS receive the results;
// the remaining six registers are clobbered.
//
// The u64→f64 conversion is the two-part magic-number trick: with
// v = x>>11 < 2⁵³ split as hi21·2³² + lo32, OR-ing hi21 into the
// mantissa of 2⁸⁴ and lo32 into the mantissa of 2⁵² gives the doubles
// thi = 2⁸⁴ + hi21·2³² and tlo = 2⁵² + lo32; then
// (thi − (2⁸⁴+2⁵²)) + tlo reconstructs v with both steps exact (every
// intermediate is below 2⁵³ in magnitude and a multiple of a common
// power of two), so it equals Go's exact float64(v) conversion, and
// the final ·2⁻⁵³ is an exact power-of-two scale.
//
// The folds t1 = ½−|u−½| and t2 = ¼−|t1−¼|, the Estrin-grouped
// polynomials, the sin↔cos swap keyed on the sign of q = ¼−t1
// (VBLENDVPD reads only the sign bit — the scalar code's
// -(bits(q)>>63) mask), and the cosine sign flip by the sign bit of
// ½−u replicate the scalar expression tree exactly; only commutative
// operand order within single adds differs, which cannot change
// rounding. Sequence (sinQuarter then cosQuarter, both over zz = t2²,
// z4 = zz², z8 = z4²):
//   sin = t2·(((S0+S1·zz) + z4·(S2+S3·zz)) + z8·((S4+S5·zz) + z4·S6))
//   cos = ((K0+K1·zz) + z4·(K2+K3·zz)) + z8·((K4+K5·zz) + z4·(K6+K7·zz))
#define SINCOSPI(X, SN, CS, Q, HU, T2, ZZ, Z4, Z8, T0) \
	VPSRLQ $11, X, T0                      \
	VPSRLQ $32, T0, ZZ                     \
	VPAND  ·svmcSIMDTab+0(SB), T0, T2      \
	VPOR   ·svmcSIMDTab+32(SB), ZZ, ZZ     \
	VPOR   ·svmcSIMDTab+64(SB), T2, T2     \
	VSUBPD ·svmcSIMDTab+96(SB), ZZ, ZZ     \
	VADDPD T2, ZZ, T0                      \
	VMULPD ·svmcSIMDTab+128(SB), T0, T0    \
	VMOVUPD ·svmcSIMDTab+160(SB), Z4       \
	VMOVUPD ·svmcSIMDTab+192(SB), Z8       \
	VSUBPD T0, Z4, HU                      \
	VSUBPD Z4, T0, ZZ                      \
	VANDPD ·svmcSIMDTab+224(SB), ZZ, ZZ    \
	VSUBPD ZZ, Z4, T2                      \
	VSUBPD T2, Z8, Q                       \
	VSUBPD Z8, T2, ZZ                      \
	VANDPD ·svmcSIMDTab+224(SB), ZZ, ZZ    \
	VSUBPD ZZ, Z8, T2                      \
	VMULPD T2, T2, ZZ                      \
	VMULPD ZZ, ZZ, Z4                      \
	VMULPD Z4, Z4, Z8                      \
	VMULPD ·svmcSIMDTab+320(SB), ZZ, SN    \
	VADDPD ·svmcSIMDTab+288(SB), SN, SN    \
	VMULPD ·svmcSIMDTab+384(SB), ZZ, T0    \
	VADDPD ·svmcSIMDTab+352(SB), T0, T0    \
	VMULPD Z4, T0, T0                      \
	VADDPD T0, SN, SN                      \
	VMULPD ·svmcSIMDTab+448(SB), ZZ, T0    \
	VADDPD ·svmcSIMDTab+416(SB), T0, T0    \
	VMULPD ·svmcSIMDTab+480(SB), Z4, CS    \
	VADDPD CS, T0, T0                      \
	VMULPD Z8, T0, T0                      \
	VADDPD T0, SN, SN                      \
	VMULPD T2, SN, SN                      \
	VMULPD ·svmcSIMDTab+544(SB), ZZ, CS    \
	VADDPD ·svmcSIMDTab+512(SB), CS, CS    \
	VMULPD ·svmcSIMDTab+608(SB), ZZ, T0    \
	VADDPD ·svmcSIMDTab+576(SB), T0, T0    \
	VMULPD Z4, T0, T0                      \
	VADDPD T0, CS, CS                      \
	VMULPD ·svmcSIMDTab+672(SB), ZZ, T0    \
	VADDPD ·svmcSIMDTab+640(SB), T0, T0    \
	VMULPD ·svmcSIMDTab+736(SB), ZZ, T2    \
	VADDPD ·svmcSIMDTab+704(SB), T2, T2    \
	VMULPD Z4, T2, T2                      \
	VADDPD T2, T0, T0                      \
	VMULPD Z8, T0, T0                      \
	VADDPD T0, CS, CS                      \
	VBLENDVPD Q, CS, SN, T0                \
	VBLENDVPD Q, SN, CS, CS                \
	VMOVAPD T0, SN                         \
	VANDPD ·svmcSIMDTab+256(SB), HU, HU    \
	VXORPD HU, CS, CS

// SCORE finishes the proposal step for one 4-lane half at byte offset
// OFF of every per-lane array, OR-ing its four verdict bits into the
// accumulators at bit position SHIFT. Inputs, all set up by the main
// body: CX the args struct (read-only here; sn/cs pointers come from
// it), R8–R11 the state arrays (holding post-angle-draw states),
// R12 idx, R13 rot, R14 lanoff, R15 expBounds, DX dE, SI u, and the
// stack frame holds na2 (0), b2 (32), beta (64) broadcast 4-wide.
// DI/BX accumulate the acc/ex bitmasks. AX and Y0–Y8/X2 are clobbered.
// The sequence, with the operand convention "op A, B, C ⇒ C = B op A"
// throughout:
//
//  1. gi = lanoff + 3·idx; gather the spin triplet zv = rot[gi],
//     sT = rot[gi+1], fv = rot[gi+2] (each gather needs a fresh
//     all-ones mask — the instruction clears its mask register).
//  2. dE = na2·(sn−sT) + (b2·(cs−zv))·fv, the scalar expression tree
//     op for op; store it. M0 = (dE ≤ 0), the downhill accept mask.
//  3. Reload the post-angle states, advance them once (the uphill
//     uniform draw), and blend: uphill lanes keep the advanced state,
//     downhill lanes the memory copy — exactly "draw u only when
//     dE > 0". Store the final states; convert the draw to
//     u = (x>>11)·2⁻⁵³ by the magic-number trick and store it.
//  4. k = trunc(beta·dE·expGridStep) via the truncating f64→i32
//     convert (out-of-range goes to 0x80000000, which the k ≥ 0 check
//     catches exactly like the scalar uint conversion's wraparound —
//     both land in the frozen-tail branch). inTable = 0 ≤ k < cap;
//     gmask = uphill ∧ inTable.
//  5. Gather the bracket hiB = expBounds[2k], loB = expBounds[2k+1]
//     under gmask (masked-off lanes touch no memory, so garbage k in
//     downhill/tail lanes is harmless). accLo = u < loB,
//     accHi = u < hiB; inside-the-bracket lanes (accLo ≠ accHi) are
//     undecided. Tail lanes (uphill, ¬inTable) are undecided only when
//     u < 2⁻⁵³ — otherwise they reject, exp(−x) being below every
//     representable draw.
//  6. ex = undecided; acc = M0 ∨ (gmask ∧ accLo). VMOVMSKPD packs each
//     mask's four sign bits into a nibble, shifted to SHIFT and OR-ed
//     into BX (ex) / DI (acc).
#define SCORE(OFF, SHIFT) \
	VMOVDQU OFF(R12), Y1                    \
	VPSLLQ $1, Y1, Y2                       \
	VPADDQ Y2, Y1, Y1                       \
	VPADDQ OFF(R14), Y1, Y1                 \
	VPCMPEQQ Y2, Y2, Y2                     \
	VXORPD Y3, Y3, Y3                       \
	VGATHERQPD Y2, (R13)(Y1*8), Y3          \
	VPCMPEQQ Y2, Y2, Y2                     \
	VXORPD Y4, Y4, Y4                       \
	VGATHERQPD Y2, 8(R13)(Y1*8), Y4         \
	VPCMPEQQ Y2, Y2, Y2                     \
	VXORPD Y5, Y5, Y5                       \
	VGATHERQPD Y2, 16(R13)(Y1*8), Y5        \
	MOVQ 40(CX), AX                         \
	VMOVUPD OFF(AX), Y6                     \
	MOVQ 48(CX), AX                         \
	VMOVUPD OFF(AX), Y7                     \
	VSUBPD Y4, Y6, Y6                       \
	VMULPD (SP), Y6, Y6                     \
	VSUBPD Y3, Y7, Y7                       \
	VMULPD 32(SP), Y7, Y7                   \
	VMULPD Y5, Y7, Y7                       \
	VADDPD Y7, Y6, Y6                       \
	VMOVUPD Y6, OFF(DX)                     \
	VXORPD Y0, Y0, Y0                       \
	VCMPPD $2, Y0, Y6, Y8                   \
	VMOVDQU OFF(R8), Y1                     \
	VMOVDQU OFF(R9), Y2                     \
	VMOVDQU OFF(R10), Y3                    \
	VMOVDQU OFF(R11), Y4                    \
	XOSHIRO(Y1, Y2, Y3, Y4, Y5, Y0, Y7)     \
	VBLENDVPD Y8, OFF(R8), Y1, Y1           \
	VBLENDVPD Y8, OFF(R9), Y2, Y2           \
	VBLENDVPD Y8, OFF(R10), Y3, Y3          \
	VBLENDVPD Y8, OFF(R11), Y4, Y4          \
	VMOVDQU Y1, OFF(R8)                     \
	VMOVDQU Y2, OFF(R9)                     \
	VMOVDQU Y3, OFF(R10)                    \
	VMOVDQU Y4, OFF(R11)                    \
	VPSRLQ $11, Y5, Y5                      \
	VPSRLQ $32, Y5, Y1                      \
	VPAND  ·svmcSIMDTab+0(SB), Y5, Y2       \
	VPOR   ·svmcSIMDTab+32(SB), Y1, Y1      \
	VPOR   ·svmcSIMDTab+64(SB), Y2, Y2      \
	VSUBPD ·svmcSIMDTab+96(SB), Y1, Y1      \
	VADDPD Y2, Y1, Y1                       \
	VMULPD ·svmcSIMDTab+128(SB), Y1, Y1     \
	VMOVUPD Y1, OFF(SI)                     \
	VMULPD 64(SP), Y6, Y2                   \
	VMULPD ·svmcSIMDTab+768(SB), Y2, Y2     \
	VCVTTPD2DQY Y2, X2                      \
	VPMOVSXDQ X2, Y2                        \
	VPXOR Y3, Y3, Y3                        \
	VPCMPGTQ Y2, Y3, Y4                     \
	VMOVDQU ·svmcSIMDTab+800(SB), Y7        \
	VPCMPGTQ Y2, Y7, Y5                     \
	VPANDN Y5, Y4, Y5                       \
	VPANDN Y5, Y8, Y7                       \
	VPSLLQ $1, Y2, Y2                       \
	VMOVDQA Y7, Y4                          \
	VXORPD Y3, Y3, Y3                       \
	VGATHERQPD Y4, (R15)(Y2*8), Y3          \
	VMOVDQA Y7, Y4                          \
	VXORPD Y0, Y0, Y0                       \
	VGATHERQPD Y4, 8(R15)(Y2*8), Y0         \
	VCMPPD $1, Y0, Y1, Y0                   \
	VCMPPD $1, Y3, Y1, Y3                   \
	VPXOR Y3, Y0, Y4                        \
	VPAND Y7, Y4, Y4                        \
	VPCMPEQQ Y2, Y2, Y2                     \
	VPXOR Y2, Y8, Y2                        \
	VPANDN Y2, Y5, Y2                       \
	VCMPPD $1, ·svmcSIMDTab+128(SB), Y1, Y1 \
	VPAND Y2, Y1, Y1                        \
	VPOR Y1, Y4, Y4                         \
	VMOVMSKPD Y4, AX                        \
	SHLL $SHIFT, AX                         \
	ORL AX, BX                              \
	VPAND Y7, Y0, Y0                        \
	VPOR Y8, Y0, Y0                         \
	VMOVMSKPD Y0, AX                        \
	SHLL $SHIFT, AX                         \
	ORL AX, DI

// func svmcStepx8(a *svmcStepArgs) bool
//
// The svmcStepArgs field offsets (+0 rs0 … +130 exm) are a hard
// contract with the struct definition in svmc_batch.go — the kernel is
// called once per spin per sweep, and a single struct pointer beats
// marshaling 17 stack arguments per call. CX holds the struct base for
// the whole body.
TEXT ·svmcStepx8(SB), NOSPLIT, $96-9
	MOVQ a+0(FP), CX
	MOVQ 0(CX), R8   // rs0
	MOVQ 8(CX), R9   // rs1
	MOVQ 16(CX), R10 // rs2
	MOVQ 24(CX), R11 // rs3

	VPBROADCASTQ 88(CX), Y12 // nb
	VPBROADCASTQ 96(CX), Y13 // negnb
	VPXOR ·svmcSIMDTab+256(SB), Y13, Y13 // bias negnb for the signed compare

	// States: half A (lanes 0–3) in Y0–Y3, half B (lanes 4–7) in Y4–Y7.
	VMOVDQU (R8), Y0
	VMOVDQU 32(R8), Y4
	VMOVDQU (R9), Y1
	VMOVDQU 32(R9), Y5
	VMOVDQU (R10), Y2
	VMOVDQU 32(R10), Y6
	VMOVDQU (R11), Y3
	VMOVDQU 32(R11), Y7

	// Draw 1: the proposal index. Until the Lemire check clears, nothing
	// may be stored — a rejecting call must leave all memory untouched.
	XOSHIRO(Y0, Y1, Y2, Y3, Y8, Y10, Y11)
	XOSHIRO(Y4, Y5, Y6, Y7, Y9, Y10, Y11)
	BOUND(Y8, Y12, Y13, Y8, Y14, Y10, Y11)
	BOUND(Y9, Y12, Y13, Y9, Y15, Y10, Y11)
	VPOR   Y15, Y14, Y14
	VPTEST Y14, Y14
	JNZ reject

	MOVQ 32(CX), R12 // idx
	VMOVDQU Y8, (R12)
	VMOVDQU Y9, 32(R12)

	// Broadcast the scoring scalars to the frame while registers are
	// cheap; SCORE reads them as VEX memory operands.
	VPBROADCASTQ 104(CX), Y10 // na2
	VMOVDQU Y10, (SP)
	VPBROADCASTQ 112(CX), Y10 // b2
	VMOVDQU Y10, 32(SP)
	VPBROADCASTQ 120(CX), Y10 // beta
	VMOVDQU Y10, 64(SP)

	// Draw 2: the proposal angle. Store the states now — they are final
	// for downhill lanes, and SCORE re-advances and re-stores the lanes
	// whose uphill test consumes a third draw.
	XOSHIRO(Y0, Y1, Y2, Y3, Y8, Y10, Y11)
	XOSHIRO(Y4, Y5, Y6, Y7, Y9, Y10, Y11)
	VMOVDQU Y0, (R8)
	VMOVDQU Y4, 32(R8)
	VMOVDQU Y1, (R9)
	VMOVDQU Y5, 32(R9)
	VMOVDQU Y2, (R10)
	VMOVDQU Y6, 32(R10)
	VMOVDQU Y3, (R11)
	VMOVDQU Y7, 32(R11)

	MOVQ 40(CX), AX // sn
	MOVQ 48(CX), DX // cs (DX is free until SCORE needs it for dE)

	SINCOSPI(Y8, Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, Y10)
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, (DX)

	SINCOSPI(Y9, Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, Y10)
	VMOVUPD Y0, 32(AX)
	VMOVUPD Y1, 32(DX)

	MOVQ 56(CX), R13 // rot
	MOVQ 64(CX), R14 // lanoff
	LEAQ ·expBounds(SB), R15
	MOVQ 72(CX), DX // dE
	MOVQ 80(CX), SI // u
	XORL DI, DI     // acc bitmask
	XORL BX, BX     // ex bitmask

	SCORE(0, 0)
	SCORE(32, 4)

	MOVW DI, 128(CX) // accm
	MOVW BX, 130(CX) // exm
	VZEROUPPER
	MOVB $1, ret+8(FP)
	RET

reject:
	VZEROUPPER
	MOVB $0, ret+8(FP)
	RET

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — OSXSAVE (bit 27) and AVX (bit 28).
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no
	// XCR0 — the OS must save/restore XMM (bit 1) and YMM (bit 2) state.
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.(7,0):EBX bit 5 — AVX2.
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET
