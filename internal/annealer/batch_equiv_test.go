package annealer

import (
	"fmt"
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// seqOnly hides an engine's BatchEngine implementation so callers fall
// back to the one-read reference path — the handle equivalence tests use
// to pit the lockstep kernel against its reference.
type seqOnly struct{ Engine }

func lockstepGroup(t testing.TB, eng Engine, sc *Schedule, prof Profile, rate float64,
	pr *qubo.CSR, init []int8, reads int, seed uint64) ([][]int8, []rng.Source) {
	t.Helper()
	be, ok := eng.(BatchEngine)
	if !ok {
		t.Fatalf("engine %s does not implement BatchEngine", eng.Name())
	}
	_, batch, err := be.PrepareBatch(sc, prof, rate)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int8, reads)
	rngs := make([]rng.Source, reads)
	group := make([]BatchRead, reads)
	root := rng.New(seed)
	for j := 0; j < reads; j++ {
		outs[j] = make([]int8, pr.N)
		root.SplitInto(&rngs[j], uint64(j))
		group[j] = BatchRead{Prog: pr, Out: outs[j], Rng: &rngs[j]}
	}
	batch(init, group)
	return outs, rngs
}

func sequentialGroup(t testing.TB, eng Engine, sc *Schedule, prof Profile, rate float64,
	pr *qubo.CSR, init []int8, reads int, seed uint64) ([][]int8, []rng.Source) {
	t.Helper()
	read, err := eng.Prepare(sc, prof, rate)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int8, reads)
	rngs := make([]rng.Source, reads)
	root := rng.New(seed)
	for j := 0; j < reads; j++ {
		outs[j] = make([]int8, pr.N)
		root.SplitInto(&rngs[j], uint64(j))
		read(pr, init, outs[j], &rngs[j], nil)
	}
	return outs, rngs
}

// assertGroupsEqual compares spins and final RNG states read by read.
func assertGroupsEqual(t *testing.T, label string, seqOuts, batchOuts [][]int8, seqRngs, batchRngs []rng.Source) {
	t.Helper()
	for j := range seqOuts {
		for i := range seqOuts[j] {
			if seqOuts[j][i] != batchOuts[j][i] {
				t.Fatalf("%s: read %d spin %d: sequential %d, lockstep %d",
					label, j, i, seqOuts[j][i], batchOuts[j][i])
			}
		}
		a0, a1, a2, a3 := seqRngs[j].State()
		b0, b1, b2, b3 := batchRngs[j].State()
		if a0 != b0 || a1 != b1 || a2 != b2 || a3 != b3 {
			t.Fatalf("%s: read %d: final RNG state diverged", label, j)
		}
	}
}

// TestLockstepMatchesSequential is the lockstep≡sequential equivalence
// property test: across engines, schedule shapes, problem shapes and
// group sizes (including partial groups), the lockstep kernel must
// reproduce the one-read reference path bit for bit — same spins, same
// final RNG state per read.
func TestLockstepMatchesSequential(t *testing.T) {
	prof := DWave2000QProfile()
	r := rng.New(0x10c)
	for _, tc := range []struct {
		name string
		eng  Engine
	}{
		{"svmc", SVMC{}},
		{"svmc-tf", SVMC{TFMoves: true}},
		{"pimc", PIMC{Slices: 16}},
		{"pimc-p3", PIMC{Slices: 3}},
	} {
		for _, n := range []int{1, 5, 33} {
			for _, reads := range []int{1, 3, 8, 11} {
				for _, sched := range []string{"forward", "reverse"} {
					name := fmt.Sprintf("%s/n=%d/reads=%d/%s", tc.name, n, reads, sched)
					t.Run(name, func(t *testing.T) {
						is := randomIsing(t, r, n, 0.4)
						pr := qubo.NewCSR(is)
						pr.Normalize()
						var sc *Schedule
						var err error
						var init []int8
						if sched == "forward" {
							sc, err = Forward(1, 0.41, 1)
						} else {
							sc, err = Reverse(0.55, 0.6)
							init = make([]int8, n)
							for i := range init {
								init[i] = int8(1 - 2*(i%2))
							}
						}
						if err != nil {
							t.Fatal(err)
						}
						seed := r.Uint64()
						seqOuts, seqRngs := sequentialGroup(t, tc.eng, sc, prof, 50, pr, init, reads, seed)
						batchOuts, batchRngs := lockstepGroup(t, tc.eng, sc, prof, 50, pr, init, reads, seed)
						assertGroupsEqual(t, name, seqOuts, batchOuts, seqRngs, batchRngs)
					})
				}
			}
		}
	}
}

// randomIsing builds a dense-ish random problem with Gaussian couplings.
func randomIsing(t testing.TB, r *rng.Source, n int, density float64) *qubo.Ising {
	t.Helper()
	is := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		is.H[i] = r.NormFloat64()
		for j := i + 1; j < n; j++ {
			if r.Float64() < density {
				is.SetCoupling(i, j, r.NormFloat64())
			}
		}
	}
	return is
}
