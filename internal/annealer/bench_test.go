package annealer

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/chimera"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// The hot-path benchmarks run the paper's reference workload: the 8-user
// 16-QAM detection instance (32 logical spins), clique-embedded onto
// Chimera and normalized — the physical problem an anneal batch actually
// sweeps. Set BENCH_JSON_DIR to record machine-readable BENCH_*.json
// results; each record carries the pre-CSR baseline measured on the same
// workload so the speedup is tracked across PRs.

// baselineNsPerSweep holds the ns/sweep of the adjacency-list engines
// before the CSR/sweep-table/pooling restructuring (same instance, same
// schedule, same host class), recorded by the perf PR that introduced
// these benchmarks.
var baselineNsPerSweep = map[string]float64{
	"svmc": 47840,
	"pimc": 258372,
}

func embeddedBenchIsing(b *testing.B) *qubo.Ising {
	b.Helper()
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 0xBE9C})
	if err != nil {
		b.Fatal(err)
	}
	logical := in.Reduction.Ising
	g := chimera.NewGraph(chimera.MinGridFor(logical.N))
	emb, err := chimera.EmbedClique(g, logical.N)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := emb.EmbedIsing(logical, chimera.RecommendedChainStrength(logical))
	if err != nil {
		b.Fatal(err)
	}
	norm, _ := phys.Normalized()
	return norm
}

// benchSweepConfig is the Config payload of a sweep benchmark's
// BENCH_*.json record.
type benchSweepConfig struct {
	Engine             string  `json:"engine"`
	Spins              int     `json:"spins"`
	SweepsPerRead      int     `json:"sweeps_per_read"`
	NsPerSweep         float64 `json:"ns_per_sweep"`
	BaselineNsPerSweep float64 `json:"baseline_ns_per_sweep"`
	Speedup            float64 `json:"speedup"`
}

func benchmarkSweep(b *testing.B, eng Engine) {
	is := embeddedBenchIsing(b)
	pr := qubo.NewCSR(is)
	fa, _ := Forward(1, 0.41, 1)
	prof := DWave2000QProfile()
	sweeps, err := sweepCount(fa, 100)
	if err != nil {
		b.Fatal(err)
	}
	read, err := eng.Prepare(fa, prof, 100)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	out := make([]int8, pr.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		read(pr, nil, out, r, nil)
	}
	nsPerSweep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*sweeps)
	b.ReportMetric(nsPerSweep, "ns/sweep")
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		base := baselineNsPerSweep[eng.Name()]
		cfg := benchSweepConfig{
			Engine: eng.Name(), Spins: pr.N, SweepsPerRead: sweeps,
			NsPerSweep: nsPerSweep, BaselineNsPerSweep: base,
		}
		if base > 0 && nsPerSweep > 0 {
			cfg.Speedup = base / nsPerSweep
		}
		rec := telemetry.BenchRecord{
			Name:       "Annealer" + eng.Name() + "Sweep",
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config:     cfg,
			Series: fmt.Sprintf("engine=%s spins=%d ns/sweep=%.0f baseline=%.0f speedup=%.2fx",
				eng.Name(), pr.N, nsPerSweep, base, cfg.Speedup),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMCSweep(b *testing.B) { benchmarkSweep(b, SVMC{}) }
func BenchmarkPIMCSweep(b *testing.B) { benchmarkSweep(b, PIMC{Slices: 16}) }

// BenchmarkRun measures a full 32-read batch through the public entry
// point — normalization, CSR compilation, engine prepare, reads, quench,
// sampling. Run with -benchmem: the per-read allocation count is the
// zero-alloc acceptance gate (scratch is pooled; the only growth is the
// returned samples).
func BenchmarkRun(b *testing.B) {
	is := embeddedBenchIsing(b)
	fa, _ := Forward(1, 0.41, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(is, Params{Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30}, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		rec := telemetry.BenchRecord{
			Name:       "AnnealerRun32Reads",
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config: map[string]any{
				"engine": "svmc", "reads": 32, "spins": is.N,
				"baseline_bytes_per_op": 605264, "baseline_allocs_per_op": 556,
			},
			Series: fmt.Sprintf("reads=32 spins=%d ns/op=%.0f", is.N,
				float64(b.Elapsed().Nanoseconds())/float64(b.N)),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeasePreparedHit measures what a serving tier pays per frame
// once the prepared-problem cache is warm: RunPrepared on an embedded
// lease against an already-compiled Prepared, skipping clique
// embedding, chain strength, physical layout and normalization. Compare
// against BenchmarkLeaseRunUncached for the compile the cache elides.
func BenchmarkLeasePreparedHit(b *testing.B) {
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 0xBE9C})
	if err != nil {
		b.Fatal(err)
	}
	is := in.Reduction.Ising
	fa, _ := Forward(1, 0.41, 1)
	p := Params{Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30}
	l, err := NewQPU2000Q().Lease(p)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := l.PrepareProblem(is)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunPrepared(prep, nil, 32, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		rec := telemetry.BenchRecord{
			Name:       "AnnealerLeasePreparedHit32Reads",
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config: map[string]any{
				"engine": "svmc", "reads": 32, "spins": is.N, "path": "embedded-cache-hit",
			},
			Series: fmt.Sprintf("reads=32 spins=%d ns/op=%.0f", is.N,
				float64(b.Elapsed().Nanoseconds())/float64(b.N)),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaseRunUncached is BenchmarkLeasePreparedHit's control: the
// same embedded batch through Lease.Run, recompiling the problem every
// call the way a cache miss (or cache-off serve) does.
func BenchmarkLeaseRunUncached(b *testing.B) {
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 0xBE9C})
	if err != nil {
		b.Fatal(err)
	}
	is := in.Reduction.Ising
	fa, _ := Forward(1, 0.41, 1)
	l, err := NewQPU2000Q().Lease(Params{Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Run(is, nil, 32, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunICEFaults exercises the noisy programming path (per-read
// coefficient clones) to pin that pooled clones keep it allocation-light.
func BenchmarkRunICEFaults(b *testing.B) {
	is := embeddedBenchIsing(b)
	fa, _ := Forward(1, 0.41, 1)
	p := Params{
		Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30,
		ICE:    DWave2000QICE(),
		Faults: FaultModel{CalibrationDriftRate: 0.2, ReadTimeoutRate: 0.05},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(is, p, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
