package annealer

import (
	"math"
	"testing"
)

func TestForwardSchedulePaperForm(t *testing.T) {
	// §4.1: [0,0] →F [sp,sp] →P [sp+tp,sp] →F [ta+tp, 1] with ta=1, tp=1.
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{0, 0}, {0.41, 0.41}, {1.41, 0.41}, {2, 1}}
	if len(sc.Points) != len(want) {
		t.Fatalf("points: %v", sc.Points)
	}
	for i, p := range want {
		if math.Abs(sc.Points[i].Time-p.Time) > 1e-12 || math.Abs(sc.Points[i].S-p.S) > 1e-12 {
			t.Fatalf("point %d = %v, want %v", i, sc.Points[i], p)
		}
	}
	if math.Abs(sc.Duration()-2) > 1e-12 {
		t.Fatalf("duration %v", sc.Duration())
	}
	if sc.StartsClassical() {
		t.Fatal("FA reported as classical start")
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseSchedulePaperForm(t *testing.T) {
	// §4.1: [0,1] →R [1−sp,sp] →P [1−sp+tp,sp] →F [2(1−sp)+tp, 1].
	sc, err := Reverse(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{0, 1}, {0.6, 0.4}, {1.6, 0.4}, {2.2, 1}}
	for i, p := range want {
		if math.Abs(sc.Points[i].Time-p.Time) > 1e-12 || math.Abs(sc.Points[i].S-p.S) > 1e-12 {
			t.Fatalf("point %d = %v, want %v", i, sc.Points[i], p)
		}
	}
	if !sc.StartsClassical() {
		t.Fatal("RA must start classical")
	}
	// RA duration depends on sp: 2(1−sp) + tp.
	if math.Abs(sc.Duration()-2.2) > 1e-12 {
		t.Fatalf("duration %v", sc.Duration())
	}
}

func TestForwardReverseSchedulePaperForm(t *testing.T) {
	// §4.1: [0,0]→F[cp,cp]→R[2cp−sp,sp]→P[2cp−sp+tp,sp]→F[2cp−2sp+tp+ta,1].
	cp, sp, tp, ta := 0.7, 0.4, 1.0, 1.0
	sc, err := ForwardReverse(cp, sp, tp, ta)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{
		{0, 0},
		{0.7, 0.7},
		{1.0, 0.4},
		{2.0, 0.4},
		{2.6, 1},
	}
	for i, p := range want {
		if math.Abs(sc.Points[i].Time-p.Time) > 1e-9 || math.Abs(sc.Points[i].S-p.S) > 1e-9 {
			t.Fatalf("point %d = %v, want %v", i, sc.Points[i], p)
		}
	}
	if sc.StartsClassical() {
		t.Fatal("FR must start quantum")
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAtInterpolates(t *testing.T) {
	sc, _ := Reverse(0.5, 1)
	// Ramp down: at t=0.25, halfway from 1 to 0.5 over 0.5 μs.
	if got := sc.At(0.25); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("At(0.25) = %v", got)
	}
	// During pause.
	if got := sc.At(1.0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(1.0) = %v", got)
	}
	// Clamps outside.
	if sc.At(-1) != 1 || sc.At(100) != 1 {
		t.Fatal("At does not clamp")
	}
}

func TestZeroPauseSchedulesValid(t *testing.T) {
	for _, build := range []func() (*Schedule, error){
		func() (*Schedule, error) { return Forward(1, 0.5, 0) },
		func() (*Schedule, error) { return Reverse(0.5, 0) },
		func() (*Schedule, error) { return ForwardReverse(0.7, 0.4, 0, 1) },
	} {
		sc, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("zero-pause schedule invalid: %v", err)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		err  bool
		f    func() (*Schedule, error)
	}{
		{"FA sp=0", true, func() (*Schedule, error) { return Forward(1, 0, 1) }},
		{"FA sp=1", true, func() (*Schedule, error) { return Forward(1, 1, 1) }},
		{"FA ta<0", true, func() (*Schedule, error) { return Forward(-1, 0.5, 1) }},
		{"FA tp<0", true, func() (*Schedule, error) { return Forward(1, 0.5, -1) }},
		{"RA sp out", true, func() (*Schedule, error) { return Reverse(1.2, 1) }},
		{"FR cp<=sp", true, func() (*Schedule, error) { return ForwardReverse(0.4, 0.4, 1, 1) }},
		{"FR cp>1", true, func() (*Schedule, error) { return ForwardReverse(1.1, 0.4, 1, 1) }},
		{"FR ta<=sp", true, func() (*Schedule, error) { return ForwardReverse(0.7, 0.4, 1, 0.3) }},
		{"FA ok", false, func() (*Schedule, error) { return Forward(1, 0.41, 1) }},
		{"RA ok", false, func() (*Schedule, error) { return Reverse(0.25, 1) }},
		{"FR ok", false, func() (*Schedule, error) { return ForwardReverse(0.99, 0.25, 1, 1) }},
	}
	for _, c := range cases {
		_, err := c.f()
		if c.err && err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !c.err && err != nil {
			t.Fatalf("%s: unexpected error %v", c.name, err)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := []*Schedule{
		{Points: []Point{{0, 0}}},                     // too short
		{Points: []Point{{0, 0}, {1, 1.5}}},           // s out of range
		{Points: []Point{{0, 0}, {1, 0.5}, {0.5, 1}}}, // time not increasing
		{Points: []Point{{0, 0}, {1, 0.5}}},           // does not end at 1
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Fatalf("bad schedule %d accepted", i)
		}
	}
}

// TestRADurationShrinksWithSp: the paper notes RA total duration depends
// on sp — higher sp (shallower reversal) means shorter programs.
func TestRADurationShrinksWithSp(t *testing.T) {
	lo, _ := Reverse(0.3, 1)
	hi, _ := Reverse(0.8, 1)
	if hi.Duration() >= lo.Duration() {
		t.Fatalf("duration(sp=0.8)=%v not < duration(sp=0.3)=%v", hi.Duration(), lo.Duration())
	}
}

func TestKindStrings(t *testing.T) {
	if ForwardKind.String() != "FA" || ReverseKind.String() != "RA" || ForwardReverseKind.String() != "FR" {
		t.Fatal("kind names wrong")
	}
}

// TestRenderShapes: Figure 5's three flavors render with the right
// endpoints — FA starts at the bottom (s=0), RA at the top (s=1), FR at
// the bottom with a dip after the turn — and all end at the top.
func TestRenderShapes(t *testing.T) {
	fa, _ := Forward(1, 0.41, 1)
	ra, _ := Reverse(0.45, 1)
	fr, _ := ForwardReverse(0.7, 0.4, 1, 1)
	for _, tc := range []struct {
		sc        *Schedule
		startsTop bool
	}{
		{fa, false}, {ra, true}, {fr, false},
	} {
		out := tc.sc.Render(40, 10)
		lines := splitLines(out)
		if len(lines) < 11 {
			t.Fatalf("%s: render too short:\n%s", tc.sc.Kind, out)
		}
		top, bottom := lines[0], lines[len(lines)-2]
		// First column of the plot area is offset 4 ("s=1 " prefix).
		startRow := top
		if !tc.startsTop {
			startRow = bottom
		}
		if startRow[4] != '*' {
			t.Fatalf("%s: does not start on the expected edge:\n%s", tc.sc.Kind, out)
		}
		// Ends at s=1 (top) for readout.
		if top[len(top)-1] != '*' {
			t.Fatalf("%s: does not end at s=1:\n%s", tc.sc.Kind, out)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// TestRenderConnected: no column of the plot is empty (ramps are filled).
func TestRenderConnected(t *testing.T) {
	ra, _ := Reverse(0.3, 1)
	out := ra.Render(30, 8)
	lines := splitLines(out)
	plot := lines[:len(lines)-1]
	for x := 4; x < 4+30; x++ {
		seen := false
		for _, line := range plot {
			if x < len(line) && (line[x] == '*' || line[x] == '|') {
				seen = true
				break
			}
		}
		if !seen {
			t.Fatalf("column %d empty:\n%s", x, out)
		}
	}
}
