package annealer

import (
	"math"
	"math/bits"
	"sync"
)

// Lockstep SVMC: R reads of one batch advance through the sweep program
// together. The sequential read loop is latency-bound — every proposal
// chains an RNG step into sinCosPi's polynomial into the dE compare, and
// the core sits idle waiting on each link. Interleaving R independent
// reads per (sweep, proposal) step gives the out-of-order window R
// disjoint chains to overlap, which is where the kernel's speedup comes
// from; the schedule constants and the shared CSR topology are also
// loaded once per group step instead of once per read.
//
// Per-read state is struct-of-arrays in read-major contiguous blocks:
// read j's rotor caches live at [j*n, (j+1)*n) (theta only materializes
// for TF moves, the one variant that reads it). The three per-spin
// quantities the accept test reads together — z, sin θ, and the local
// field — are interleaved as triplets in one flat rot array (spin bi at
// rot[3bi..3bi+2]), so scoring a proposal touches ONE cache line where
// the column layout took three: with eight resident reads the rotor
// state overflows L1, and the dE loads were the kernel's largest miss
// source. Each proposal step is split into two stages:
// stage 1 draws the proposal (index + angle) and evaluates the trig for
// every resident read — branch-light, so the FP chains pipeline back to
// back — and stage 2 scores and applies it, confining the unpredictable
// accept/reject branches to code the trig no longer waits on. Every read
// draws from its own stream in exactly the sequential order (index draw,
// angle draw, then one uniform per uphill proposal), so outcomes are
// bit-identical to the one-read reference path.
type svmcBatchScratch struct {
	rot                []float64 // z, sinT, zField triplets per (read, spin)
	theta              []float64 // read-major rotor angles, TF-only
	rs0, rs1, rs2, rs3 []uint64  // per-read xoshiro256++ state
	idx                []uint64  // stage-1 proposal index per read
	nsin, ncos         []float64 // stage-1 proposal trig per read
	nang               []float64 // stage-1 proposal angle (TF only)
	dE                 []float64 // stage-2 proposal energy delta per read
	u                  []float64 // stage-2 uphill uniform per read (SIMD)
	lanoff             []uint64  // per-lane rot offset 3·j·n (0 for padding)
	args               []svmcStepArgs
}

// svmcStepArgs is the 8-lane SIMD kernel's argument block: one chunk's
// array pointers and scalars at fixed offsets, so each per-proposal
// kernel call marshals a single pointer instead of 17 stack arguments
// (the call sits in a loop that runs once per spin per sweep — the
// marshaling alone was a measurable slice of the sweep). The layout is
// hard offsets in svmc_simd_amd64.s, asserted at init; accm/exm are
// OUTPUTS the kernel writes: bit j of accm/exm is lane j's
// accepted-outright / bracket-undecided verdict.
type svmcStepArgs struct {
	rs0, rs1, rs2, rs3 *[8]uint64  // +0 +8 +16 +24
	idx                *[8]uint64  // +32
	sn, cs             *[8]float64 // +40 +48
	rot                *float64    // +56
	lanoff             *[8]uint64  // +64
	dE, u              *[8]float64 // +72 +80
	nb, negnb          uint64      // +88 +96
	na2, b2, beta      float64     // +104 +112 +120
	accm, exm          uint16      // +128 +130 (kernel-written)
}

// ensure sizes the scratch for an r-read group of n spins. The per-lane
// arrays (states, proposal outputs) are rounded up to a multiple of the
// 8-lane SIMD chunk; lanes beyond r are padding the SIMD kernel can
// advance harmlessly (stage 2 and the epilogue only walk j < r).
func (st *svmcBatchScratch) ensure(r, n int) {
	if cap(st.rot) < 3*r*n {
		st.rot = make([]float64, 3*r*n)
		st.theta = make([]float64, r*n)
	}
	st.rot = st.rot[:3*r*n]
	st.theta = st.theta[:r*n]
	rr := (r + 7) &^ 7
	if cap(st.rs0) < rr {
		st.rs0 = make([]uint64, rr)
		st.rs1 = make([]uint64, rr)
		st.rs2 = make([]uint64, rr)
		st.rs3 = make([]uint64, rr)
		st.idx = make([]uint64, rr)
		st.nsin = make([]float64, rr)
		st.ncos = make([]float64, rr)
		st.nang = make([]float64, rr)
		st.dE = make([]float64, rr)
		st.u = make([]float64, rr)
		st.lanoff = make([]uint64, rr)
		st.args = make([]svmcStepArgs, rr/8)
	}
	st.rs0 = st.rs0[:rr]
	st.rs1 = st.rs1[:rr]
	st.rs2 = st.rs2[:rr]
	st.rs3 = st.rs3[:rr]
	st.idx = st.idx[:rr]
	st.nsin = st.nsin[:rr]
	st.ncos = st.ncos[:rr]
	st.nang = st.nang[:rr]
	st.dE = st.dE[:rr]
	st.u = st.u[:rr]
	st.lanoff = st.lanoff[:rr]
	st.args = st.args[:rr/8]
}

// PrepareBatch implements BatchEngine: the same compiled sweep program as
// Prepare, returned with both the one-read reference path and the
// lockstep group kernel over it.
func (e SVMC) PrepareBatch(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, BatchReadFunc, error) {
	read, err := e.Prepare(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, nil, err
	}
	tab, err := newSweepTable(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, nil, err
	}
	beta := 1 / prof.TemperatureGHz
	minScale := e.MinMoveScale
	if minScale <= 0 {
		minScale = 0.02
	}
	var scale []float64
	if e.TFMoves {
		scale = make([]float64, tab.sweeps())
		for i := range scale {
			scale[i] = moveScale(tab.a[i], tab.b[i], minScale)
		}
	}
	startsClassical := sc.StartsClassical()
	pool := &sync.Pool{New: func() any { return new(svmcBatchScratch) }}
	batch := func(init []int8, reads []BatchRead) {
		if len(reads) == 0 {
			return
		}
		st := pool.Get().(*svmcBatchScratch)
		svmcBatchRead(tab, scale, beta, startsClassical, init, reads, st)
		pool.Put(st)
	}
	return read, batch, nil
}

// svmcBatchRead evolves one lockstep group. Reads must share problem
// topology (per-read coefficient clones off one base CSR qualify).
func svmcBatchRead(tab *sweepTable, scale []float64, beta float64,
	startsClassical bool, init []int8, reads []BatchRead, st *svmcBatchScratch) {
	r := len(reads)
	n := reads[0].Prog.N
	st.ensure(r, n)
	rot, theta := st.rot, st.theta
	tf := scale != nil

	// Per-read state initialisation — identical constants to the
	// sequential path, with the reverse-start transcendentals hoisted
	// (cos π = −1 exactly; sin π is the libm value at the double nearest
	// π, not zero, and must match bit for bit).
	sinPi := math.Sin(math.Pi)
	for j := range reads {
		base := j * n
		if startsClassical {
			for i, s := range init {
				if s > 0 {
					if tf {
						theta[base+i] = 0
					}
					rot[3*(base+i)] = 1
					rot[3*(base+i)+1] = 0
				} else {
					if tf {
						theta[base+i] = math.Pi
					}
					rot[3*(base+i)] = -1
					rot[3*(base+i)+1] = sinPi
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if tf {
					theta[base+i] = math.Pi / 2
				}
				rot[3*(base+i)] = 0
				rot[3*(base+i)+1] = 1
			}
		}
		pr := reads[j].Prog
		cols, w, offs := pr.Cols, pr.W, pr.Offsets
		for i := 0; i < n; i++ {
			f := pr.H[i]
			for k := offs[i]; k < offs[i+1]; k++ {
				f += w[k] * rot[3*(base+int(cols[k]))]
			}
			rot[3*(base+i)+2] = f
		}
		st.rs0[j], st.rs1[j], st.rs2[j], st.rs3[j] = reads[j].Rng.State()
	}
	rs0, rs1, rs2, rs3 := st.rs0, st.rs1, st.rs2, st.rs3
	idx, nsin, ncos, nang := st.idx, st.nsin, st.ncos, st.nang
	// SIMD padding lanes: any nonzero xoshiro state works — they are
	// advanced alongside the real lanes and their outputs never read.
	rr := len(rs0)
	for j := r; j < rr; j++ {
		rs0[j], rs1[j], rs2[j], rs3[j] = 0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, uint64(j)+1
	}

	nb := uint64(n)
	negnb := lemireThreshold(n)
	// The AVX2 kernel covers the default (global-move) proposal; TF moves
	// branch on the gate draw and read theta, so they stay scalar. The
	// nb bound is the 32-bit limb decomposition's precondition.
	useSIMD := hasBatchSIMD && !tf && nb <= 0xFFFFFFFF
	// Per-lane rot offsets for the kernel's triplet gathers; padding
	// lanes alias read 0's block so their (masked-off, never-read)
	// gathers stay inside the allocation.
	lan := st.lanoff
	for j := 0; j < r; j++ {
		lan[j] = uint64(3 * j * n)
	}
	for j := r; j < rr; j++ {
		lan[j] = 0
	}
	dEs, uu := st.dE, st.u
	for ci := range st.args {
		c := ci * 8
		*(&st.args[ci]) = svmcStepArgs{
			rs0: (*[8]uint64)(rs0[c:]), rs1: (*[8]uint64)(rs1[c:]),
			rs2: (*[8]uint64)(rs2[c:]), rs3: (*[8]uint64)(rs3[c:]),
			idx: (*[8]uint64)(idx[c:]),
			sn:  (*[8]float64)(nsin[c:]), cs: (*[8]float64)(ncos[c:]),
			rot: &rot[0], lanoff: (*[8]uint64)(lan[c:]),
			dE: (*[8]float64)(dEs[c:]), u: (*[8]float64)(uu[c:]),
			nb: uint64(n), negnb: lemireThreshold(n), beta: beta,
		}
	}
	sweeps := tab.sweeps()
	for sweep := 0; sweep < sweeps; sweep++ {
		na2 := -tab.a[sweep] / 2
		b2 := tab.b[sweep] / 2
		sc := 1.0
		if tf {
			sc = scale[sweep]
		}
		if useSIMD {
			for ci := range st.args {
				st.args[ci].na2, st.args[ci].b2 = na2, b2
			}
		}
		for k := 0; k < n; k++ {
			// Stage 1+2 on amd64: the AVX2 kernel runs the whole proposal
			// step 4-wide — draws, trig, the triplet gather and dE score,
			// the conditional uphill draw and the exp-bracket verdict —
			// with the gathers' L2 latency hidden under the polynomial
			// work. The Go loop below only acts on the verdict masks: the
			// rare bracket-undecided lanes call math.Exp, accepted lanes
			// apply the spin update and walk the CSR row. Chunks where a
			// lane hits the Lemire rejection (probability n/2⁶⁴) replay
			// through the scalar reference scorer.
			if useSIMD {
				for ci := range st.args {
					a := &st.args[ci]
					var am, em uint32
					if svmcStepx8(a) {
						am, em = uint32(a.accm), uint32(a.exm)
					} else {
						am, em = svmcScoreScalar(st, ci*8, nb, negnb, rot, na2, b2, beta)
					}
					// Walk only the lanes with something to do — in the
					// frozen tail of the anneal nearly every proposal
					// rejects outright and the whole chunk is skipped.
					c := ci * 8
					nlive := r - c
					if nlive > 8 {
						nlive = 8
					}
					live := uint32(1)<<uint(nlive) - 1
					work := (am | em) & live
					for work != 0 {
						jj := uint(work & -work)
						j := c + bits.TrailingZeros32(work)
						work &= work - 1
						accept := am&uint32(jj) != 0
						if em&uint32(jj) != 0 {
							accept = metropolisExpExact(uu[j], beta*dEs[j])
						}
						if accept {
							bi := int(lan[j]) + 3*int(idx[j])
							nz := ncos[j]
							dz := nz - rot[bi]
							rot[bi] = nz
							rot[bi+1] = nsin[j]
							pr := reads[j].Prog
							cols, w, offs := pr.Cols, pr.W, pr.Offsets
							i := int(idx[j])
							base := j * n
							for kk := offs[i]; kk < offs[i+1]; kk++ {
								rot[3*(base+int(cols[kk]))+2] += w[kk] * dz
							}
						}
					}
				}
				continue
			}
			// Stage 1 (non-SIMD): draw every resident read's proposal and
			// evaluate its trig. No data-dependent branches on the default
			// path (the Lemire rejection loop retries with probability
			// n/2⁶⁴), so the R sinCosPi chains overlap freely.
			if !tf {
				svmcStage1Scalar(st, 0, r, nb, negnb)
			} else {
				// TF proposals draw index, gate, then angle — exactly the
				// sequential order — and need the current rotor angle for
				// local moves, so theta is live here.
				for j := 0; j < r; j++ {
					s0, s1, s2, s3 := rs0[j], rs1[j], rs2[j], rs3[j]
					var x uint64
					x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
					hi, lo := bits.Mul64(x, nb)
					for lo < negnb {
						x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
						hi, lo = bits.Mul64(x, nb)
					}
					i := int(hi)
					x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
					global := float64(x>>11)*(1.0/(1<<53)) < sc
					var nt, sinNt, nz float64
					x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
					if global {
						u := float64(x>>11) * (1.0 / (1 << 53))
						nt = math.Pi * u
						sinNt, nz = sinCosPi(u)
					} else {
						nt = theta[j*n+i] + (2*(float64(x>>11)*(1.0/(1<<53)))-1)*math.Pi*sc
						if nt < 0 {
							nt = -nt
						}
						if nt > math.Pi {
							nt = 2*math.Pi - nt
						}
						u := nt * (1 / math.Pi)
						if u > 1 {
							u = 1 // guard the π·(1/π) rounding at nt = π
						}
						sinNt, nz = sinCosPi(u)
					}
					rs0[j], rs1[j], rs2[j], rs3[j] = s0, s1, s2, s3
					idx[j] = hi
					nang[j] = nt
					nsin[j], ncos[j] = sinNt, nz
				}
			}
			// Stage 2a: score every resident read branch-free. Split from
			// the decision loop below so all R triplet loads issue and
			// retire before the first unpredictable accept branch — a
			// mispredict there would otherwise flush the speculated loads
			// of every later read and serialize the misses.
			dEs := st.dE
			for j := 0; j < r; j++ {
				bi := 3 * (j*n + int(idx[j]))
				// One triplet load — same expression tree as the sequential
				// engine, so the rounding is identical.
				dEs[j] = na2*(nsin[j]-rot[bi+1]) + b2*(ncos[j]-rot[bi])*rot[bi+2]
			}
			// Stage 2b: decide and apply. The accept/reject branches live
			// here, after every read's trig and dE have already retired.
			for j := 0; j < r; j++ {
				bi := 3 * (j*n + int(idx[j]))
				sn := nsin[j]
				nz := ncos[j]
				dE := dEs[j]
				accept := dE <= 0
				if !accept {
					s0, s1, s2, s3 := rs0[j], rs1[j], rs2[j], rs3[j]
					var x uint64
					x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
					rs0[j], rs1[j], rs2[j], rs3[j] = s0, s1, s2, s3
					u := float64(x>>11) * (1.0 / (1 << 53))
					xx := beta * dE
					// metroBracket, unrolled branchlessly: the outcome of
					// u < exp(−xx) is a coin flip the branch predictor
					// cannot learn, so resolve both bracket compares as
					// flags (one cache line, loads issued unconditionally)
					// and branch only for the rare inside-the-bracket case.
					// Decision-identical to metropolisExp on every input.
					k := uint(xx * expGridStep)
					if k < expGridMax {
						acc := u < expBounds[2*k+1]
						if acc != (u < expBounds[2*k]) {
							acc = metropolisExpExact(u, xx)
						}
						accept = acc
					} else {
						accept = u < 0x1p-53 && metropolisExpExact(u, xx)
					}
				}
				if accept {
					dz := nz - rot[bi]
					if tf {
						theta[j*n+int(idx[j])] = nang[j]
					}
					rot[bi] = nz
					rot[bi+1] = sn
					pr := reads[j].Prog
					cols, w, offs := pr.Cols, pr.W, pr.Offsets
					i := int(idx[j])
					base := j * n
					for kk := offs[i]; kk < offs[i+1]; kk++ {
						rot[3*(base+int(cols[kk]))+2] += w[kk] * dz
					}
				}
			}
		}
	}

	for j := range reads {
		reads[j].Rng.SetState(rs0[j], rs1[j], rs2[j], rs3[j])
		base := j * n
		out := reads[j].Out
		for i := 0; i < n; i++ {
			if rot[3*(base+i)] >= 0 {
				out[i] = 1
			} else {
				out[i] = -1
			}
		}
	}
}

// svmcStage1Scalar is the pure-Go stage 1 for the default (global-move)
// proposal over lanes [c0, c1): one bounded index draw, one angle draw,
// sinCosPi. It is both the non-SIMD path and the reference the AVX2
// kernel must match bit for bit — and the fallback that replays a chunk
// whose SIMD call bailed on a Lemire rejection (the kernel stores
// nothing in that case, so replaying from the untouched states is
// exact, rejection loop included).
func svmcStage1Scalar(st *svmcBatchScratch, c0, c1 int, nb, negnb uint64) {
	rs0, rs1, rs2, rs3 := st.rs0, st.rs1, st.rs2, st.rs3
	idx, nsin, ncos := st.idx, st.nsin, st.ncos
	for j := c0; j < c1; j++ {
		s0, s1, s2, s3 := rs0[j], rs1[j], rs2[j], rs3[j]
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		hi, lo := bits.Mul64(x, nb)
		for lo < negnb {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			hi, lo = bits.Mul64(x, nb)
		}
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		rs0[j], rs1[j], rs2[j], rs3[j] = s0, s1, s2, s3
		u := float64(x>>11) * (1.0 / (1 << 53))
		sn, cs := sinCosPi(u)
		idx[j] = hi
		nsin[j], ncos[j] = sn, cs
	}
}

// svmcScoreScalar is the scalar reference for the full SIMD proposal
// step over the 8-lane chunk starting at c0: stage 1 plus the dE score,
// the conditional uphill draw, and the bracket verdict, materialized
// into the same per-lane arrays and verdict bitmasks svmcStepx8 fills.
// It replays a chunk whose SIMD call bailed on a Lemire rejection — the
// kernel stores nothing in that case, so replaying from the untouched
// states is exact. Padding lanes score against read 0's block through
// their zero lanoff, mirroring the kernel's in-bounds garbage lanes.
func svmcScoreScalar(st *svmcBatchScratch, c0 int, nb, negnb uint64,
	rot []float64, na2, b2, beta float64) (am, em uint32) {
	svmcStage1Scalar(st, c0, c0+8, nb, negnb)
	for j := c0; j < c0+8; j++ {
		bi := int(st.lanoff[j]) + 3*int(st.idx[j])
		dE := na2*(st.nsin[j]-rot[bi+1]) + b2*(st.ncos[j]-rot[bi])*rot[bi+2]
		st.dE[j] = dE
		bit := uint32(1) << uint(j-c0)
		if dE <= 0 {
			am |= bit
		} else {
			s0, s1, s2, s3 := st.rs0[j], st.rs1[j], st.rs2[j], st.rs3[j]
			var x uint64
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			st.rs0[j], st.rs1[j], st.rs2[j], st.rs3[j] = s0, s1, s2, s3
			u := float64(x>>11) * (1.0 / (1 << 53))
			st.u[j] = u
			switch metroBracket(u, beta*dE) {
			case 1:
				am |= bit
			case 0:
				em |= bit
			}
		}
	}
	return am, em
}
