package annealer

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/rng"
)

func mulHiLo(x, n uint64) (hi, lo uint64) { return bits.Mul64(x, n) }

// The engines advance xoshiro state in locals; the inline step and the
// hoisted Lemire bound must reproduce rng.Source's stream bit for bit.
func TestXoshiroNextMatchesSource(t *testing.T) {
	a := rng.New(0xD1CE)
	b := rng.New(0xD1CE)
	s0, s1, s2, s3 := b.State()
	var x uint64
	for i := 0; i < 100_000; i++ {
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		if want := a.Uint64(); x != want {
			t.Fatalf("draw %d: xoshiroNext = %#x, want %#x", i, x, want)
		}
	}
	b.SetState(s0, s1, s2, s3)
	for i := 0; i < 100; i++ {
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("post-SetState draw %d: %#x != %#x", i, got, want)
		}
	}
	// The inline bounded draw: accepting lo >= threshold is exactly
	// Intn's accept condition, and rejections redraw in the same order.
	for _, n := range []int{1, 2, 3, 7, 512, 1000003} {
		a := rng.New(uint64(n))
		b := rng.New(uint64(n))
		nb := uint64(n)
		negnb := lemireThreshold(n)
		s0, s1, s2, s3 := b.State()
		for i := 0; i < 50_000; i++ {
			var x uint64
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			hi, lo := mulHiLo(x, nb)
			for lo < negnb {
				x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
				hi, lo = mulHiLo(x, nb)
			}
			if want := a.Intn(n); int(hi) != want {
				t.Fatalf("n=%d draw %d: inline Intn = %d, want %d", n, i, hi, want)
			}
		}
	}
}

// metropolisExp must agree with the exact comparison u < exp(−x) on every
// input — the bracket is an accelerator, not an approximation.
func TestMetropolisExpExact(t *testing.T) {
	r := rng.New(0xFA57E)
	check := func(u, x float64) {
		t.Helper()
		want := u < math.Exp(-x)
		if got := metropolisExp(u, x); got != want {
			t.Fatalf("metropolisExp(%v, %v) = %v, want %v", u, x, got, want)
		}
	}
	for i := 0; i < 2_000_000; i++ {
		u := r.Float64()
		x := r.Float64() * 50
		check(u, x)
		// Adversarial draws hugging the threshold, where the bracket must
		// fall back to the exact comparison.
		e := math.Exp(-x)
		check(e, x)
		check(math.Nextafter(e, 0), x)
		check(math.Nextafter(e, 1), x)
	}
	// Grid-edge and extreme cases.
	for k := 0; k <= expGridMax+3; k++ {
		x := float64(k) / expGridStep
		for _, u := range []float64{0, 1e-300, math.Exp(-x), 0.999999999999, 0.5} {
			check(u, x)
		}
	}
	check(0, 800) // beyond exp underflow: exp(−x) == 0 exactly, reject
	check(0, 100) // exp(−x) tiny but nonzero, u == 0 accepts
}

// sinCosPi approximates (sin πu, cos πu); its documented error budget is
// well under 1e−13, far below the thermal noise of the SVMC dynamics.
func TestSinCosPiAccuracy(t *testing.T) {
	r := rng.New(0x51C0)
	const tol = 1e-13
	check := func(u float64) {
		t.Helper()
		s, c := sinCosPi(u)
		ws, wc := math.Sincos(math.Pi * u)
		if math.Abs(s-ws) > tol || math.Abs(c-wc) > tol {
			t.Fatalf("sinCosPi(%v) = (%v, %v), want (%v, %v)", u, s, c, ws, wc)
		}
		if s < 0 || s > 1+tol {
			t.Fatalf("sinCosPi(%v): sin %v outside [0, 1]", u, s)
		}
		if math.Abs(c) > 1+tol {
			t.Fatalf("sinCosPi(%v): |cos| = %v > 1", u, math.Abs(c))
		}
	}
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1, 1e-300, 1e-17, 0.2499999999, 0.5000000001} {
		check(u)
	}
	for i := 0; i < 5_000_000; i++ {
		check(r.Float64())
	}
}
