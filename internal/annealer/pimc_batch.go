package annealer

import (
	"math/bits"
	"sync"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Bit-packed lockstep read path for PIMC. The replica matrix — p slices
// of n ±1 spins — collapses to one uint64 word per spin: bit k of
// spins[i] is set iff s_{i,k} = −1. Everything a Metropolis proposal
// needs from the replica matrix (the current slice value and both
// imaginary-time neighbours) comes out of a single word load and three
// shifts instead of three byte loads over a p·n matrix, the accepted
// flip is one XOR, and for the default p = 16 the whole spin state of a
// 130-spin embedded problem fits in ~1 KB of L1. The arithmetic is
// untouched: a spin only ever enters the float pipeline as ±1.0, and
// IEEE-754 multiplication by ±1.0 is exact, so every dS, every field
// update, and every draw matches the int8 reference path bit for bit —
// enforced by TestLockstepMatchesSequential.
//
// Packing requires p ≤ 64; a larger Trotter number (never the default)
// simply gets no batch kernel and the caller falls back to the
// sequential reference path.

type pimcBatchScratch struct {
	spins     []uint64  // bit k of spins[i] set ⇔ s_{i,k} = −1
	fieldFlat []float64 // k-major: slice k's fields at [k*n : (k+1)*n]
	fields    [][]float64
}

func (st *pimcBatchScratch) ensure(p, n int) {
	if cap(st.spins) < n || len(st.fields) != p || len(st.fields[0]) != n {
		st.spins = make([]uint64, n)
		st.fieldFlat = make([]float64, p*n)
		st.fields = make([][]float64, p)
		for k := 0; k < p; k++ {
			st.fields[k] = st.fieldFlat[k*n : (k+1)*n]
		}
	}
	st.spins = st.spins[:n]
}

// PrepareBatch implements BatchEngine: the same compiled sweep program
// as Prepare, returned with the bit-packed group kernel. With p > 64
// the batch path is nil and callers stay on the reference ReadFunc.
func (e PIMC) PrepareBatch(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, BatchReadFunc, error) {
	read, err := e.Prepare(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, nil, err
	}
	p := e.slices()
	if p > 64 {
		return read, nil, nil
	}
	tab, err := newSweepTable(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, nil, err
	}
	beta := 1 / prof.TemperatureGHz
	spatial := make([]float64, tab.sweeps())
	temporal := make([]float64, tab.sweeps())
	for i := range spatial {
		spatial[i] = beta * tab.b[i] / (2 * float64(p))
		temporal[i] = e.temporalCoupling(beta, tab.a[i], p)
	}
	startsClassical := sc.StartsClassical()
	pool := &sync.Pool{New: func() any { return new(pimcBatchScratch) }}
	batch := func(init []int8, reads []BatchRead) {
		for _, br := range reads {
			st := pool.Get().(*pimcBatchScratch)
			st.ensure(p, br.Prog.N)
			pimcPackedRead(br.Prog, tab, spatial, temporal, p, startsClassical, init, br.Out, st, br.Rng)
			pool.Put(st)
		}
	}
	return read, batch, nil
}

// pimcPackedRead is pimcRead over the packed representation, probe-free
// (the batch path never carries a probe). The draw sequence — the
// slice-major init spins, one bounded index per proposal, one uniform
// per uphill proposal, the final replica selection — is unchanged.
func pimcPackedRead(pr *qubo.CSR, tab *sweepTable, spatial, temporal []float64, p int,
	startsClassical bool, init, out []int8, st *pimcBatchScratch, r *rng.Source) {
	n := pr.N
	spins, fields := st.spins, st.fields
	cols, w, offs := pr.Cols, pr.W, pr.Offsets
	all := ^uint64(0) >> uint(64-p)
	if startsClassical {
		if len(init) != n {
			panic("annealer: PIMC reverse anneal requires an initial state")
		}
		for i, s := range init {
			if s == 1 {
				spins[i] = 0
			} else {
				spins[i] = all
			}
		}
	} else {
		// Slice-major draw order; Spin() is one Uint64 with bit 0 deciding
		// the sign (1 → +1), replicated here on the packed words.
		for i := range spins {
			spins[i] = 0
		}
		for k := 0; k < p; k++ {
			bit := uint64(1) << uint(k)
			for i := 0; i < n; i++ {
				if r.Uint64()&1 == 0 {
					spins[i] |= bit
				}
			}
		}
	}
	// fields[k][i] = h_i + Σ_j J_ij·s_{j,k}; w·(±1.0) is the exact ±w,
	// so the conditional add/sub reproduces the reference sums bit for
	// bit while skipping the int8→float convert and multiply.
	for k := 0; k < p; k++ {
		f := fields[k]
		bit := uint64(1) << uint(k)
		for i := 0; i < n; i++ {
			fi := pr.H[i]
			for kk := offs[i]; kk < offs[i+1]; kk++ {
				if spins[int(cols[kk])]&bit != 0 {
					fi -= w[kk]
				} else {
					fi += w[kk]
				}
			}
			f[i] = fi
		}
	}

	nb := uint64(n)
	negnb := lemireThreshold(n)
	rs0, rs1, rs2, rs3 := r.State()
	sweeps := tab.sweeps()
	for sweep := 0; sweep < sweeps; sweep++ {
		spm2 := -2 * spatial[sweep]
		tc2 := 2 * temporal[sweep]
		for k := 0; k < p; k++ {
			kPrev := k - 1
			if kPrev < 0 {
				kPrev = p - 1
			}
			kNext := k + 1
			if kNext == p {
				kNext = 0
			}
			f := fields[k]
			bit := uint64(1) << uint(k)
			for m := 0; m < n; m++ {
				var x uint64
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				hi, lo := bits.Mul64(x, nb)
				for lo < negnb {
					x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
					hi, lo = bits.Mul64(x, nb)
				}
				i := int(hi)
				sp := spins[i]
				si := 1.0
				if sp&bit != 0 {
					si = -1
				}
				// s_prev + s_next from the down bits b ∈ {0,1}: each spin is
				// 1−2b, so the sum is 2 − 2(b_prev+b_next) ∈ {−2, 0, 2} —
				// the same exact small integer the int8 path adds up.
				nsum := 2 - 2*int(sp>>uint(kPrev)&1+sp>>uint(kNext)&1)
				dS := spm2*si*f[i] + tc2*si*float64(nsum)
				accept := dS <= 0
				if !accept {
					x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
					u := float64(x>>11) * (1.0 / (1 << 53))
					v := metroBracket(u, dS)
					accept = v > 0 || (v == 0 && metropolisExpExact(u, dS))
				}
				if accept {
					spins[i] = sp ^ bit
					nvf := -si
					for kk := offs[i]; kk < offs[i+1]; kk++ {
						f[cols[kk]] += 2 * w[kk] * nvf
					}
				}
			}
		}
	}

	r.SetState(rs0, rs1, rs2, rs3)

	kSel := r.Intn(p)
	selBit := uint64(1) << uint(kSel)
	for i := 0; i < n; i++ {
		if spins[i]&selBit != 0 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
}
