package annealer

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// FuzzScheduleValidate throws randomly generated piecewise-linear anneal
// programs — including hostile ones with NaN/Inf vertices, reversed
// timestamps, and out-of-range fractions — at Validate. Validate must
// never panic, and any schedule it accepts must evaluate and render to
// finite values everywhere.
func FuzzScheduleValidate(f *testing.F) {
	f.Add(uint64(1), uint8(4), false)
	f.Add(uint64(2), uint8(0), false)
	f.Add(uint64(3), uint8(12), true)
	f.Add(uint64(0xdead), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed uint64, n uint8, forceValid bool) {
		r := rng.New(seed)
		pts := make([]Point, int(n)%16)
		tm := 0.0
		for i := range pts {
			if forceValid {
				// Strictly increasing finite times, fractions in [0,1].
				tm += 0.01 + r.Float64()
				pts[i] = Point{Time: tm, S: r.Float64()}
			} else {
				pts[i] = Point{Time: hostileFloat(r), S: hostileFloat(r)}
			}
		}
		if forceValid && len(pts) > 0 {
			pts[len(pts)-1].S = 1 // readout requirement
		}
		sc := &Schedule{Kind: Kind(int(seed % 4)), Points: pts}
		err := sc.Validate() // must not panic on any input
		if err != nil {
			return
		}
		// Accepted schedules must be well-behaved end to end.
		dur := sc.Duration()
		if math.IsNaN(dur) || math.IsInf(dur, 0) {
			t.Fatalf("valid schedule has non-finite duration %g: %+v", dur, pts)
		}
		for i := 0; i <= 32; i++ {
			at := sc.At(dur * float64(i) / 32)
			if math.IsNaN(at) || math.IsInf(at, 0) || at < 0 || at > 1 {
				t.Fatalf("valid schedule evaluates to %g at step %d: %+v", at, i, pts)
			}
		}
		art := sc.Render(40, 10)
		if strings.Contains(art, "NaN") || strings.Contains(art, "Inf") {
			t.Fatalf("render leaked non-finite values:\n%s", art)
		}
	})
}

// hostileFloat emits finite values mixed with NaN, ±Inf, negatives, and
// zeros so the fuzzer starts near the interesting corners.
func hostileFloat(r *rng.Source) float64 {
	switch r.Uint64() % 8 {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 0
	case 4:
		return -r.Float64() * 10
	default:
		return (r.Float64() - 0.25) * 4
	}
}
