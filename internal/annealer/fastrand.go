package annealer

// The engines draw one bounded index and up to three uniforms per
// Metropolis proposal. Through rng.Source each draw is a non-inlinable
// method call whose state lives in memory; that call-and-store traffic
// profiles at roughly a quarter of both engines' sweep time. The sweep
// loops instead carry the four xoshiro256++ state words in locals
// (registers) via rng.(*Source).State/SetState and advance them with
// xoshiroNext, which is small enough to inline. The step is the same
// algorithm with the same constants, so the stream is bit-identical to
// drawing through the Source — TestXoshiroNextMatchesSource holds the
// two implementations together.

// xoshiroNext advances a xoshiro256++ state held in locals and returns
// the next output followed by the successor state. It must match
// rng.(*Source).Uint64 exactly.
func xoshiroNext(s0, s1, s2, s3 uint64) (x, n0, n1, n2, n3 uint64) {
	x = ((s0+s3)<<23 | (s0+s3)>>41) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = s3<<45 | s3>>19
	return x, s0, s1, s2, s3
}

// lemireThreshold returns the rejection threshold Intn(n) compares the
// low product half against: draws with lo below it are redrawn, which
// happens with probability n/2⁶⁴. Hoisting it out of a sweep loop (n is
// fixed for the whole read) keeps the inline bounded draw bit-identical
// to rng.(*Source).Intn — Intn's lo ≥ n shortcut only ever accepts draws
// that lo ≥ threshold accepts too, since threshold < n.
func lemireThreshold(n int) uint64 {
	bound := uint64(n)
	return (-bound) % bound
}
