// Package annealer simulates a D-Wave-2000Q-style quantum annealer: the
// FA/RA/FR anneal schedules of §4.1, a transverse-field/problem
// energy-scale model A(s)/B(s), control-error ("ICE") noise, and two
// classical surrogate engines for the quantum dynamics — path-integral
// Monte Carlo (simulated quantum annealing) and spin-vector Monte Carlo.
//
// This package is the substitution for the physical quantum hardware the
// paper prototypes on (see DESIGN.md): it reproduces the mechanisms the
// paper's comparisons rest on — reverse annealing as a refined local
// search whose escape radius is set by the switch/pause location s_p,
// freeze-out near s = 1, and information wipe-out at small s — with the
// paper's μs-based schedule timing, so time-to-solution comparisons carry
// the same semantics.
package annealer

import (
	"fmt"
	"math"
)

// Point is one vertex of a piecewise-linear anneal schedule: at Time (μs)
// the anneal fraction is S.
type Point struct {
	Time float64 // μs from anneal start
	S    float64 // anneal fraction, 0 (fully quantum) .. 1 (classical)
}

// Kind labels the three schedule flavors of Figure 5.
type Kind int

// The schedule flavors compared in the paper.
const (
	ForwardKind Kind = iota
	ReverseKind
	ForwardReverseKind
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ForwardKind:
		return "FA"
	case ReverseKind:
		return "RA"
	case ForwardReverseKind:
		return "FR"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Schedule is a piecewise-linear anneal program s(t).
type Schedule struct {
	Kind   Kind
	Points []Point
}

// Forward builds the FA schedule of §4.1 with anneal time ta, pause
// location sp, and pause duration tp (all μs / fractions):
//
//	[0, 0] →F [sp, sp] →P [sp+tp, sp] →F [ta+tp, 1]
//
// The paper sets ta = 1 μs (the 2000Q hardware minimum) so the ramps run
// at unit rate; the formula keeps ta explicit.
func Forward(ta, sp, tp float64) (*Schedule, error) {
	if ta <= 0 {
		return nil, fmt.Errorf("annealer: anneal time %g must be positive", ta)
	}
	if sp <= 0 || sp >= 1 {
		return nil, fmt.Errorf("annealer: FA pause location %g must lie in (0,1)", sp)
	}
	if tp < 0 {
		return nil, fmt.Errorf("annealer: negative pause time %g", tp)
	}
	// The paper's step list places the pause at time sp·ta into the ramp
	// for ta = 1; for general ta the ramp reaches sp at sp·ta.
	t1 := sp * ta
	return &Schedule{Kind: ForwardKind, Points: dedupe([]Point{
		{0, 0},
		{t1, sp},
		{t1 + tp, sp},
		{ta + tp, 1},
	})}, nil
}

// dedupe drops points that repeat the previous time stamp (a zero-length
// pause), keeping schedules valid for tp = 0.
func dedupe(pts []Point) []Point {
	out := pts[:1]
	for _, p := range pts[1:] {
		if p.Time > out[len(out)-1].Time {
			out = append(out, p)
		}
	}
	return out
}

// Reverse builds the RA schedule of §4.1 with switch+pause location sp
// and pause duration tp:
//
//	[0, 1] →R [1−sp, sp] →P [1−sp+tp, sp] →F [2(1−sp)+tp, 1]
//
// Ramps run at unit rate (1 anneal-fraction per μs), so the total
// duration depends on sp, as the paper notes.
func Reverse(sp, tp float64) (*Schedule, error) {
	if sp <= 0 || sp >= 1 {
		return nil, fmt.Errorf("annealer: RA switch location %g must lie in (0,1)", sp)
	}
	if tp < 0 {
		return nil, fmt.Errorf("annealer: negative pause time %g", tp)
	}
	d := 1 - sp
	return &Schedule{Kind: ReverseKind, Points: dedupe([]Point{
		{0, 1},
		{d, sp},
		{d + tp, sp},
		{2*d + tp, 1},
	})}, nil
}

// ForwardReverse builds the single-step FR schedule of §4.1: forward to
// cp, backward to sp, pause, then forward to 1:
//
//	[0,0] →F [cp,cp] →R [2cp−sp, sp] →P [2cp−sp+tp, sp]
//	      →F [2cp−2sp+tp+ta, 1]
//
// cp must exceed sp for the reverse leg to exist.
func ForwardReverse(cp, sp, tp, ta float64) (*Schedule, error) {
	if sp <= 0 || sp >= 1 {
		return nil, fmt.Errorf("annealer: FR pause location %g must lie in (0,1)", sp)
	}
	if cp <= sp || cp > 1 {
		return nil, fmt.Errorf("annealer: FR turn point %g must lie in (sp, 1]", cp)
	}
	if tp < 0 || ta <= 0 {
		return nil, fmt.Errorf("annealer: bad FR times tp=%g ta=%g", tp, ta)
	}
	if ta <= sp {
		return nil, fmt.Errorf("annealer: FR anneal time %g must exceed sp=%g for the final ramp", ta, sp)
	}
	t3 := 2*cp - sp + tp
	return &Schedule{Kind: ForwardReverseKind, Points: dedupe([]Point{
		{0, 0},
		{cp, cp},
		{2*cp - sp, sp},
		{t3, sp},
		{t3 + (ta - sp), 1},
	})}, nil
}

// Duration returns the total schedule length in μs.
func (sc *Schedule) Duration() float64 {
	if len(sc.Points) == 0 {
		return 0
	}
	return sc.Points[len(sc.Points)-1].Time
}

// At returns the anneal fraction s at time t (μs), clamping outside the
// program.
func (sc *Schedule) At(t float64) float64 {
	pts := sc.Points
	if len(pts) == 0 {
		return 1
	}
	if t <= pts[0].Time {
		return pts[0].S
	}
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].Time {
			span := pts[i].Time - pts[i-1].Time
			if span == 0 {
				return pts[i].S
			}
			f := (t - pts[i-1].Time) / span
			return pts[i-1].S + f*(pts[i].S-pts[i-1].S)
		}
	}
	return pts[len(pts)-1].S
}

// StartsClassical reports whether the schedule begins at s = 1 (and so
// requires a programmed initial state — reverse annealing).
func (sc *Schedule) StartsClassical() bool {
	return len(sc.Points) > 0 && sc.Points[0].S >= 1
}

// Validate checks finite, monotone time and in-range anneal fractions.
func (sc *Schedule) Validate() error {
	if len(sc.Points) < 2 {
		return fmt.Errorf("annealer: schedule needs at least 2 points")
	}
	for i, p := range sc.Points {
		// NaN fails every ordered comparison, so check finiteness first:
		// a NaN fraction or timestamp would otherwise slip past the range
		// and monotonicity tests below and poison At/Render.
		if math.IsNaN(p.Time) || math.IsInf(p.Time, 0) || math.IsNaN(p.S) || math.IsInf(p.S, 0) {
			return fmt.Errorf("annealer: point %d not finite (t=%g, s=%g)", i, p.Time, p.S)
		}
		if p.S < 0 || p.S > 1 {
			return fmt.Errorf("annealer: point %d anneal fraction %g out of [0,1]", i, p.S)
		}
		if i > 0 && p.Time <= sc.Points[i-1].Time {
			return fmt.Errorf("annealer: point %d time %g not increasing", i, p.Time)
		}
	}
	if sc.Points[len(sc.Points)-1].S != 1 {
		return fmt.Errorf("annealer: schedule must end at s = 1 for readout")
	}
	return nil
}
