//go:build !amd64

package annealer

// Non-amd64 builds take the pure-Go staged kernel; hasBatchSIMD gates
// every call site, so the stub below is unreachable.
var hasBatchSIMD = false

func svmcStepx8(a *svmcStepArgs) bool {
	panic("annealer: svmcStepx8 without SIMD support")
}
