package annealer

import "math"

// The lockstep SVMC proposal kernel in svmc_simd_amd64.s: one call runs
// a full proposal step for eight resident reads with 4-wide AVX2
// vectors — index and angle draws, sinCosPi, the triplet gather of
// (z, sinθ, field), the dE score, the conditional uphill uniform draw,
// and the exp-bracket verdict. Every operation is either exact integer
// arithmetic (xoshiro256++, the Lemire product, the (x>>11)·2⁻⁵³
// conversion, the fold/swap/sign bit masks, the mask logic) or an
// IEEE-754 vector mul/add/sub that rounds identically to its scalar
// counterpart, so the outputs are bit-identical to the scalar path —
// enforced by TestLockstepMatchesSequential. FMA is never used:
// contracting a mul+add pair would change the rounding.
//
// svmcStepx8 advances a.rs0..rs3 (index draw, angle draw, and — only
// for lanes whose dE came out positive — the uphill uniform, exactly
// the sequential draw order) and fills a.idx, sn, cs, dE (the
// proposal's energy delta), u (the uphill uniform; garbage for downhill
// lanes), and the verdict bitmasks a.accm (bit j: lane j accepted
// outright) and a.exm (bit j: the bracket could not decide and the
// caller must settle u < exp(−beta·dE) with metropolisExpExact; such
// lanes' accm bit is meaningless). Lane j's spin triplets live at
// rot[lanoff[j]+3i]; a padding lane must carry lanoff 0 so its gathers
// stay in bounds. If any lane's index draw hits the Lemire rejection
// (probability n/2⁶⁴ per lane), the kernel returns false WITHOUT
// writing anything — states included — and the caller redoes the step
// through the scalar reference path. Requires nb < 2³², nonzero states,
// and AVX2 (hasBatchSIMD).
func svmcStepx8(a *svmcStepArgs) bool

// cpuHasAVX2 reports AVX2 plus OS support for YMM state (OSXSAVE +
// XCR0 XMM|YMM), probed with CPUID/XGETBV in svmc_simd_amd64.s.
func cpuHasAVX2() bool

var hasBatchSIMD = cpuHasAVX2()

// svmcSIMDTab is the constant table the assembly kernel loads its
// 256-bit operands from: each logical constant replicated across the
// four lanes of a YMM register. The polynomial coefficients are copied
// from the same init()-computed sinPiCoef/cosPiCoef tables the scalar
// sinCosPi reads, so the two paths cannot drift. Field order and the
// 32-byte stride are hard offsets in svmc_simd_amd64.s — keep in sync.
var svmcSIMDTab struct {
	mask32   [4]uint64     // +0    0x00000000FFFFFFFF
	magicHi  [4]uint64     // +32   exponent bits placing hi21 at 2³²
	magicLo  [4]uint64     // +64   exponent bits placing lo32 at 2⁰
	magicSub [4]float64    // +96   2⁸⁴ + 2⁵²
	scale    [4]float64    // +128  2⁻⁵³
	half     [4]float64    // +160  0.5
	quarter  [4]float64    // +192  0.25
	absMask  [4]uint64     // +224  0x7FFFFFFFFFFFFFFF
	signBit  [4]uint64     // +256  0x8000000000000000
	sinC     [7][4]float64 // +288
	cosC     [8][4]float64 // +512
	expStep  [4]float64    // +768  expGridStep
	expCap   [4]uint64     // +800  expGridMax (as int64)
}

func init() {
	fill := func(dst *[4]uint64, v uint64) { dst[0], dst[1], dst[2], dst[3] = v, v, v, v }
	fillF := func(dst *[4]float64, v float64) { dst[0], dst[1], dst[2], dst[3] = v, v, v, v }
	fill(&svmcSIMDTab.mask32, 0x00000000FFFFFFFF)
	fill(&svmcSIMDTab.magicHi, 0x4530000000000000)
	fill(&svmcSIMDTab.magicLo, 0x4330000000000000)
	fillF(&svmcSIMDTab.magicSub, 0x1p84+0x1p52)
	fillF(&svmcSIMDTab.scale, 0x1p-53)
	fillF(&svmcSIMDTab.half, 0.5)
	fillF(&svmcSIMDTab.quarter, 0.25)
	fill(&svmcSIMDTab.absMask, 0x7FFFFFFFFFFFFFFF)
	fill(&svmcSIMDTab.signBit, 0x8000000000000000)
	for k := 0; k < 7; k++ {
		fillF(&svmcSIMDTab.sinC[k], sinPiCoef[k])
	}
	for k := 0; k < 8; k++ {
		fillF(&svmcSIMDTab.cosC[k], cosPiCoef[k])
	}
	fillF(&svmcSIMDTab.expStep, expGridStep)
	fill(&svmcSIMDTab.expCap, expGridMax)
	// The u64→f64 magic-number identity the conversion rests on, checked
	// once at startup so a miscompiled constant can never ship silently.
	if v := uint64(1)<<52 | 12345; float64(v) != (math.Float64frombits(0x4530000000000000|v>>32)-(0x1p84+0x1p52))+math.Float64frombits(0x4330000000000000|v&0xFFFFFFFF) {
		panic("annealer: SIMD u64→f64 magic constants are wrong")
	}
}
