package annealer

import (
	"math"
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// ferroChain builds an N-spin ferromagnetic chain with a field pinning the
// ground state to all-up: an easy problem every engine should solve.
func ferroChain(n int) *qubo.Ising {
	is := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		is.H[i] = -0.2
		if i+1 < n {
			is.SetCoupling(i, i+1, -1)
		}
	}
	return is
}

// frustrated builds a small problem with a planted deep ground state and
// competing local minima, from a fixed random draw.
func frustrated(n int, seed uint64) *qubo.Ising {
	r := rng.New(seed)
	is := qubo.NewIsing(n)
	for i := 0; i < n; i++ {
		is.H[i] = r.NormFloat64() * 0.3
		for j := i + 1; j < n; j++ {
			is.SetCoupling(i, j, r.NormFloat64()*0.5)
		}
	}
	return is
}

func groundOf(t *testing.T, is *qubo.Ising) qubo.Sample {
	t.Helper()
	g, err := qubo.ExhaustiveIsing(is)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProfileShape(t *testing.T) {
	for _, p := range []Profile{DWave2000QProfile(), LinearProfile()} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.A(0) != p.AMax || p.A(1) != 0 {
			t.Fatalf("%s: A endpoints wrong", p.Name)
		}
		if p.B(0) != 0 || p.B(1) != p.BMax {
			t.Fatalf("%s: B endpoints wrong", p.Name)
		}
		// A decreasing, B increasing.
		prev := p.A(0)
		for s := 0.1; s <= 1.0; s += 0.1 {
			if a := p.A(s); a > prev+1e-12 {
				t.Fatalf("%s: A not decreasing at %v", p.Name, s)
			} else {
				prev = a
			}
		}
		if p.B(0.3) >= p.B(0.7) {
			t.Fatalf("%s: B not increasing", p.Name)
		}
		// A must dominate B at small s and vice versa at large s.
		if p.A(0.05) <= p.B(0.05) {
			t.Fatalf("%s: transverse field does not dominate early", p.Name)
		}
		if p.A(0.95) >= p.B(0.95) {
			t.Fatalf("%s: problem term does not dominate late", p.Name)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	bad := Profile{AMax: 0, BMax: 1, ACurve: 1, TemperatureGHz: 0.1}
	if bad.Validate() == nil {
		t.Fatal("AMax=0 accepted")
	}
}

func TestICEZeroIsIdentity(t *testing.T) {
	is := ferroChain(4)
	out := ICE{}.Perturb(is, rng.New(1))
	if out != is {
		t.Fatal("zero ICE should return the problem unchanged")
	}
}

func TestICEPerturbsCoefficients(t *testing.T) {
	is := ferroChain(6)
	ice := ICE{SigmaH: 0.05, SigmaJ: 0.05}
	out := ice.Perturb(is, rng.New(2))
	if out == is {
		t.Fatal("ICE returned the same object")
	}
	changedH, changedJ := false, false
	for i := range is.H {
		if out.H[i] != is.H[i] {
			changedH = true
		}
		if math.Abs(out.H[i]-is.H[i]) > 0.5 {
			t.Fatal("ICE perturbation implausibly large")
		}
	}
	for _, e := range is.Edges() {
		if out.Coupling(e.I, e.J) != e.V {
			changedJ = true
		}
	}
	if !changedH || !changedJ {
		t.Fatal("ICE did not perturb both h and J")
	}
	// Zero terms stay zero (no phantom fields).
	isz := qubo.NewIsing(3)
	isz.SetCoupling(0, 1, 1)
	outz := ICE{SigmaH: 0.1}.Perturb(isz, rng.New(3))
	for i, h := range outz.H {
		if h != 0 {
			t.Fatalf("phantom field on spin %d", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	is := ferroChain(4)
	r := rng.New(1)
	if _, err := Run(is, Params{}, r); err == nil {
		t.Fatal("nil schedule accepted")
	}
	ra, _ := Reverse(0.5, 1)
	if _, err := Run(is, Params{Schedule: ra}, r); err == nil {
		t.Fatal("RA without initial state accepted")
	}
	fa, _ := Forward(1, 0.5, 1)
	if _, err := Run(qubo.NewIsing(0), Params{Schedule: fa}, r); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Run(is, Params{Schedule: fa, SweepsPerMicrosecond: -1}, r); err == nil {
		t.Fatal("negative sweep rate accepted")
	}
}

func TestRunDeterministicAndConsistent(t *testing.T) {
	is := frustrated(8, 7)
	fa, _ := Forward(1, 0.41, 1)
	p := Params{Schedule: fa, NumReads: 20, SweepsPerMicrosecond: 50}
	a, err := Run(is, p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(is, p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 20 || len(b.Samples) != 20 {
		t.Fatal("read count wrong")
	}
	for i := range a.Samples {
		if a.Samples[i].Energy != b.Samples[i].Energy {
			t.Fatal("same-seed runs diverged")
		}
		// Reported energies are consistent with reported spins.
		if math.Abs(is.Energy(a.Samples[i].Spins)-a.Samples[i].Energy) > 1e-9 {
			t.Fatal("sample energy inconsistent")
		}
		if a.Samples[i].Energy < a.Best.Energy {
			t.Fatal("Best is not the minimum sample")
		}
	}
	if a.TotalAnnealTime != 20*fa.Duration() {
		t.Fatalf("total anneal time %v", a.TotalAnnealTime)
	}
}

// TestForwardAnnealSolvesEasyProblem: both engines must find the ground
// state of a ferromagnetic chain with high probability.
func TestForwardAnnealSolvesEasyProblem(t *testing.T) {
	is := ferroChain(8)
	g := groundOf(t, is)
	fa, _ := Forward(1, 0.41, 1)
	for _, eng := range []Engine{SVMC{}, PIMC{Slices: 8}} {
		res, err := Run(is, Params{Schedule: fa, NumReads: 30, Engine: eng, SweepsPerMicrosecond: 100}, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, s := range res.Samples {
			if math.Abs(s.Energy-g.Energy) < 1e-9 {
				hits++
			}
		}
		if hits < 15 {
			t.Fatalf("%s: FA found ground state on %d/30 reads of an easy problem", eng.Name(), hits)
		}
	}
}

// TestReverseAnnealHighSpFreezesInitialState: with sp near 1, quantum
// fluctuations are too weak to perturb the programmed state (§4.3's
// discussion of sp): starting AT the ground state must stay there.
func TestReverseAnnealHighSpFreezesInitialState(t *testing.T) {
	is := frustrated(10, 13)
	g := groundOf(t, is)
	ra, _ := Reverse(0.97, 1)
	for _, eng := range []Engine{SVMC{}, PIMC{Slices: 8}} {
		res, err := Run(is, Params{Schedule: ra, InitialState: g.Spins, NumReads: 20, Engine: eng, SweepsPerMicrosecond: 100}, rng.New(17))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, s := range res.Samples {
			if math.Abs(s.Energy-g.Energy) < 1e-9 {
				hits++
			}
		}
		if hits < 18 {
			t.Fatalf("%s: frozen RA kept the ground state on only %d/20 reads", eng.Name(), hits)
		}
	}
}

// TestReverseAnnealLowSpWipesInitialState: with sp near 0 the reversal
// erases the programmed state — final samples should not preferentially
// remember a programmed excited state.
func TestReverseAnnealLowSpWipesInitialState(t *testing.T) {
	is := frustrated(10, 19)
	g := groundOf(t, is)
	// Program the COMPLEMENT of the ground state: an (almost surely) bad
	// state that only survives if information is retained.
	bad := make([]int8, is.N)
	for i, s := range g.Spins {
		bad[i] = -s
	}
	badEnergy := is.Energy(bad)
	raLow, _ := Reverse(0.05, 1)
	res, err := Run(is, Params{Schedule: raLow, InitialState: bad, NumReads: 30, SweepsPerMicrosecond: 100}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	stayedBad := 0
	for _, s := range res.Samples {
		if math.Abs(s.Energy-badEnergy) < 1e-9 && spinsEqual(s.Spins, bad) {
			stayedBad++
		}
	}
	if stayedBad > 10 {
		t.Fatalf("deep reversal retained the programmed state on %d/30 reads", stayedBad)
	}
}

func spinsEqual(a, b []int8) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReverseFromGoodBeatsReverseFromRandom is Figure 6's core claim in
// miniature: RA initialized at a near-optimal state yields lower-energy
// samples than RA initialized at random states.
func TestReverseFromGoodBeatsReverseFromRandom(t *testing.T) {
	is := frustrated(12, 29)
	g := groundOf(t, is)
	ra, _ := Reverse(0.55, 1)
	r := rng.New(31)

	good, err := Run(is, Params{Schedule: ra, InitialState: g.Spins, NumReads: 40, SweepsPerMicrosecond: 100}, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	randInit := qubo.RandomSample(is, r.Split(2))
	randRes, err := Run(is, Params{Schedule: ra, InitialState: randInit.Spins, NumReads: 40, SweepsPerMicrosecond: 100}, r.Split(3))
	if err != nil {
		t.Fatal(err)
	}
	if meanEnergy(good.Samples) >= meanEnergy(randRes.Samples) {
		t.Fatalf("RA(ground init) mean %v not better than RA(random init) mean %v",
			meanEnergy(good.Samples), meanEnergy(randRes.Samples))
	}
}

func meanEnergy(samples []qubo.Sample) float64 {
	var sum float64
	for _, s := range samples {
		sum += s.Energy
	}
	return sum / float64(len(samples))
}

// TestICEDegradesSuccess: control-error noise should not improve an FA
// run's ability to hit the true ground state on a frustrated problem.
func TestICEDegradesSuccess(t *testing.T) {
	is := frustrated(10, 37)
	g := groundOf(t, is)
	fa, _ := Forward(1, 0.41, 1)
	clean, err := Run(is, Params{Schedule: fa, NumReads: 60, SweepsPerMicrosecond: 60}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(is, Params{Schedule: fa, NumReads: 60, SweepsPerMicrosecond: 60, ICE: ICE{SigmaH: 0.25, SigmaJ: 0.25}}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	ch, nh := 0, 0
	for i := range clean.Samples {
		if math.Abs(clean.Samples[i].Energy-g.Energy) < 1e-9 {
			ch++
		}
		if math.Abs(noisy.Samples[i].Energy-g.Energy) < 1e-9 {
			nh++
		}
	}
	if nh > ch+8 {
		t.Fatalf("heavy ICE noise improved success (%d vs %d) — noise wiring suspect", nh, ch)
	}
}

func TestQPUEmbeddedRun(t *testing.T) {
	is := frustrated(8, 43)
	g := groundOf(t, is)
	qpu := NewQPU2000Q()
	fa, _ := Forward(1, 0.41, 1)
	res, err := qpu.Run(is, Params{Schedule: fa, NumReads: 20, SweepsPerMicrosecond: 60}, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 {
		t.Fatal("read count wrong")
	}
	if res.BrokenChainRate < 0 || res.BrokenChainRate > 1 {
		t.Fatalf("broken chain rate %v", res.BrokenChainRate)
	}
	// The embedded sampler should land at or near the logical optimum at
	// least sometimes on an 8-spin problem.
	if res.Best.Energy > g.Energy+2.0 {
		t.Fatalf("embedded best %v far above ground %v", res.Best.Energy, g.Energy)
	}
	// Reverse mode through the QPU exercises chain-state initialization.
	ra, _ := Reverse(0.6, 1)
	res2, err := qpu.Run(is, Params{Schedule: ra, InitialState: g.Spins, NumReads: 10, SweepsPerMicrosecond: 60}, rng.New(49))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Best.Energy-g.Energy) > 1e-9 {
		t.Fatalf("embedded RA from ground state lost it: best %v vs %v", res2.Best.Energy, g.Energy)
	}
}

func TestQPUCapacityAndServiceTime(t *testing.T) {
	qpu := NewQPU2000Q()
	if qpu.MaxProblemSize() != 64 {
		t.Fatalf("capacity %d", qpu.MaxProblemSize())
	}
	fa, _ := Forward(1, 0.41, 1)
	if _, err := qpu.Run(qubo.NewIsing(65), Params{Schedule: fa}, rng.New(1)); err == nil {
		t.Fatal("overcapacity problem accepted")
	}
	st := qpu.ServiceTime(fa, 100)
	want := 10_000 + 100*(fa.Duration()+123)
	if math.Abs(st-want) > 1e-9 {
		t.Fatalf("service time %v, want %v", st, want)
	}
}

func TestEngineNames(t *testing.T) {
	if (SVMC{}).Name() != "svmc" || (PIMC{}).Name() != "pimc" {
		t.Fatal("engine names wrong")
	}
}

func TestPIMCTemporalCoupling(t *testing.T) {
	e := PIMC{}
	beta := 4.0
	// Strong transverse field: weak replica coupling.
	weak := e.temporalCoupling(beta, 6.0, 16)
	// Vanishing transverse field: clamped maximum coupling.
	strong := e.temporalCoupling(beta, 1e-30, 16)
	if weak >= strong {
		t.Fatalf("K(A=6)=%v not below K(A≈0)=%v", weak, strong)
	}
	if strong != e.kMax() {
		t.Fatalf("K not clamped: %v", strong)
	}
	if e.temporalCoupling(beta, 0, 16) != e.kMax() {
		t.Fatal("A=0 not clamped")
	}
}

func BenchmarkSVMCAnneal32(b *testing.B) {
	benchmarkEngineAnneal32(b, SVMC{})
}

func BenchmarkPIMCAnneal32(b *testing.B) {
	benchmarkEngineAnneal32(b, PIMC{Slices: 16})
}

func benchmarkEngineAnneal32(b *testing.B, eng Engine) {
	pr := qubo.NewCSR(frustrated(32, 1))
	fa, _ := Forward(1, 0.41, 1)
	read, err := eng.Prepare(fa, DWave2000QProfile(), 100)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	out := make([]int8, pr.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		read(pr, nil, out, r, nil)
	}
}

// TestParallelismDeterministic: reads are bit-identical regardless of the
// worker count, because each read derives its RNG stream from its index.
func TestParallelismDeterministic(t *testing.T) {
	is := frustrated(10, 91)
	fa, _ := Forward(1, 0.41, 1)
	base, err := Run(is, Params{Schedule: fa, NumReads: 24, SweepsPerMicrosecond: 50}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16, 100} {
		got, err := Run(is, Params{Schedule: fa, NumReads: 24, SweepsPerMicrosecond: 50, Parallelism: par}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Samples {
			if base.Samples[i].Energy != got.Samples[i].Energy ||
				!spinsEqual(base.Samples[i].Spins, got.Samples[i].Spins) {
				t.Fatalf("parallelism %d diverged at read %d", par, i)
			}
		}
		if got.Best.Energy != base.Best.Energy {
			t.Fatalf("parallelism %d changed Best", par)
		}
	}
}

// TestQuenchProducesLocalMinima: with the default quench every sample is
// a 1-flip local minimum of its programmed problem; NoQuench may return
// non-minimal states.
func TestQuenchProducesLocalMinima(t *testing.T) {
	is := frustrated(12, 97)
	fa, _ := Forward(1, 0.41, 1)
	res, err := Run(is, Params{Schedule: fa, NumReads: 30, SweepsPerMicrosecond: 50}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		for i := 0; i < is.N; i++ {
			if is.FlipDelta(s.Spins, i) < -1e-9 {
				t.Fatal("quenched sample is not a local minimum")
			}
		}
	}
	// NoQuench: at least one sample should NOT be a local minimum (hot
	// readout) — probabilistic but overwhelmingly likely at this size.
	raw, err := Run(is, Params{Schedule: fa, NumReads: 30, SweepsPerMicrosecond: 50, NoQuench: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	nonMinimal := 0
	for _, s := range raw.Samples {
		for i := 0; i < is.N; i++ {
			if is.FlipDelta(s.Spins, i) < -1e-9 {
				nonMinimal++
				break
			}
		}
	}
	if nonMinimal == 0 {
		t.Log("warning: every raw read was already locally minimal (possible but unusual)")
	}
	// Quench never hurts the mean energy.
	if meanEnergy(res.Samples) > meanEnergy(raw.Samples)+1e-9 {
		t.Fatal("quench increased mean sample energy")
	}
}

func TestCalibratedProfileShape(t *testing.T) {
	p := CalibratedProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	base := DWave2000QProfile()
	if p.TemperatureGHz >= base.TemperatureGHz {
		t.Fatal("calibrated profile should run cooler than the physical one")
	}
	if p.AMax != base.AMax || p.BMax != base.BMax || p.ACurve != base.ACurve {
		t.Fatal("calibration must only touch the temperature")
	}
	if DWave2000QICE().SigmaH <= 0 || DWave2000QICE().SigmaJ <= 0 {
		t.Fatal("device ICE magnitudes missing")
	}
}

// TestSVMCTFRetainsHarder: the TF-moves engine retains a reverse-anneal
// initial state at least as well as the uniform-move default.
func TestSVMCTFRetainsHarder(t *testing.T) {
	is := frustrated(12, 101)
	g := groundOf(t, is)
	ra, _ := Reverse(0.85, 1)
	prof := CalibratedProfile()
	count := func(eng Engine) int {
		res, err := Run(is, Params{Schedule: ra, InitialState: g.Spins, NumReads: 30,
			Engine: eng, Profile: &prof, SweepsPerMicrosecond: 30}, rng.New(103))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, s := range res.Samples {
			if math.Abs(s.Energy-g.Energy) < 1e-9 {
				hits++
			}
		}
		return hits
	}
	uniform := count(SVMC{})
	tf := count(SVMC{TFMoves: true})
	if tf < uniform {
		t.Fatalf("TF retention %d below uniform %d", tf, uniform)
	}
	if (SVMC{TFMoves: true}).Name() != "svmc-tf" {
		t.Fatal("TF engine name wrong")
	}
}
