package annealer

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// PIMC is the path-integral Monte Carlo engine — simulated quantum
// annealing, the standard classical surrogate for transverse-field
// quantum annealing dynamics (Boixo et al. 2014; Rønnow et al. 2014).
//
// The transverse-field Ising model at inverse temperature β is mapped by
// the Suzuki–Trotter decomposition onto P coupled classical replicas
// ("imaginary-time slices") with action
//
//	S = (β·B(s)/2P)·Σ_k E_problem(slice k)
//	  − K(s)·Σ_k Σ_i s_{i,k}·s_{i,k+1} ,
//	K(s) = −½·ln tanh(β·A(s)/2P) ≥ 0  (periodic in k),
//
// evolved by Metropolis single-spin flips as s(t) follows the schedule.
// Strong transverse field (small s) means weak replica coupling —
// replicas decorrelate, measurement is random; near s = 1 the replicas
// lock ferromagnetically and the system behaves as a classical register.
// Measurement returns one uniformly chosen replica, mirroring the
// projective readout of the device.
type PIMC struct {
	// Slices is the Trotter number P (default 16).
	Slices int
	// MaxTemporalCoupling clamps K(s) as A(s) → 0 so late-schedule
	// dynamics freeze smoothly instead of dividing by zero (default 5).
	MaxTemporalCoupling float64
}

// Name implements Engine.
func (PIMC) Name() string { return "pimc" }

func (e PIMC) slices() int {
	if e.Slices <= 0 {
		return 16
	}
	return e.Slices
}

func (e PIMC) kMax() float64 {
	if e.MaxTemporalCoupling <= 0 {
		return 5
	}
	return e.MaxTemporalCoupling
}

// temporalCoupling returns K(s), clamped to [0, kMax].
func (e PIMC) temporalCoupling(beta, a float64, p int) float64 {
	arg := beta * a / (2 * float64(p))
	if arg <= 0 {
		return e.kMax()
	}
	t := math.Tanh(arg)
	if t <= 0 {
		return e.kMax()
	}
	k := -0.5 * math.Log(t)
	if k < 0 {
		k = 0 // tanh > 1 cannot happen; guard for rounding
	}
	if k > e.kMax() {
		k = e.kMax()
	}
	return k
}

// pimcScratch is one read's working state, pooled per batch. The replica
// matrix is stored n-major — spin i of slice k lives at replicaFlat[i*p+k]
// — so the three slice values a Metropolis proposal touches (current,
// imaginary-time neighbours k±1) sit in the same 16-byte block instead of
// three cache lines P·N bytes apart. The field matrix stays k-major
// because the accept path streams a whole row of slice k's fields.
type pimcScratch struct {
	replicaFlat []int8    // n-major: spin i of slice k at [i*p+k]
	fieldFlat   []float64 // k-major: slice k's fields at [k*n : (k+1)*n]
	fields      [][]float64
	energies    []float64 // per-replica problem energies (probed runs only)
	gather      []int8    // one replica's spins, contiguous (probe init only)
}

func (sc *pimcScratch) ensure(p, n int) {
	if cap(sc.replicaFlat) < p*n || len(sc.fields) != p || len(sc.fields[0]) != n {
		sc.replicaFlat = make([]int8, p*n)
		sc.fieldFlat = make([]float64, p*n)
		sc.fields = make([][]float64, p)
		for k := 0; k < p; k++ {
			sc.fields[k] = sc.fieldFlat[k*n : (k+1)*n]
		}
		sc.energies = make([]float64, p)
		sc.gather = make([]int8, n)
	}
}

// Prepare implements Engine: the per-sweep spatial action factor
// β·B(s)/2P and clamped temporal coupling K(s) — a tanh+log per sweep —
// are computed once for the batch instead of once per read, and replica/
// field scratch is pooled across reads.
func (e PIMC) Prepare(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, error) {
	tab, err := newSweepTable(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, err
	}
	p := e.slices()
	beta := 1 / prof.TemperatureGHz
	spatial := make([]float64, tab.sweeps())
	temporal := make([]float64, tab.sweeps())
	for i := range spatial {
		spatial[i] = beta * tab.b[i] / (2 * float64(p))
		temporal[i] = e.temporalCoupling(beta, tab.a[i], p)
	}
	startsClassical := sc.StartsClassical()
	pool := &sync.Pool{New: func() any { return new(pimcScratch) }}
	return func(pr *qubo.CSR, init []int8, out []int8, r *rng.Source, probe Probe) {
		st := pool.Get().(*pimcScratch)
		st.ensure(p, pr.N)
		pimcRead(pr, tab, spatial, temporal, p, startsClassical, init, out, st, r, probe)
		pool.Put(st)
	}, nil
}

// pimcRead evolves one PIMC read. It draws from r in exactly the same
// order regardless of probe, so probed and unprobed runs are
// bit-identical; the per-replica problem energies a probe reports are
// maintained incrementally during flips (O(1) per flip) instead of
// recomputed from scratch every sweep (O(P·n·deg)).
func pimcRead(pr *qubo.CSR, tab *sweepTable, spatial, temporal []float64, p int,
	startsClassical bool, init, out []int8, st *pimcScratch, r *rng.Source, probe Probe) {
	n := pr.N
	flat, fields := st.replicaFlat, st.fields
	cols, w, offs := pr.Cols, pr.W, pr.Offsets
	if startsClassical {
		if len(init) != n {
			panic("annealer: PIMC reverse anneal requires an initial state")
		}
		for i, s := range init {
			base := i * p
			for k := 0; k < p; k++ {
				flat[base+k] = s
			}
		}
	} else {
		// Slice-major draw order, matching the previous k-major layout's
		// initialisation stream bit for bit.
		for k := 0; k < p; k++ {
			for i := 0; i < n; i++ {
				flat[i*p+k] = r.Spin()
			}
		}
	}
	// fields[k][i] = h_i + Σ_j J_ij·s_{j,k}, maintained incrementally
	// (the inlined row walk is CSR.LocalField against the strided layout).
	for k := 0; k < p; k++ {
		f := fields[k]
		for i := 0; i < n; i++ {
			fi := pr.H[i]
			for kk := offs[i]; kk < offs[i+1]; kk++ {
				fi += w[kk] * float64(flat[int(cols[kk])*p+k])
			}
			f[i] = fi
		}
	}
	// trackE: replica problem energies only matter when someone watches.
	trackE := probe != nil
	if trackE {
		for k := 0; k < p; k++ {
			for i := 0; i < n; i++ {
				st.gather[i] = flat[i*p+k]
			}
			st.energies[k] = pr.Energy(st.gather)
		}
	}

	// The sweep loop advances the generator in locals (see fastrand.go);
	// the draw sequence — one bounded index per proposal, one uniform per
	// uphill proposal — is bit-identical to r.Intn/r.Float64.
	nb := uint64(n)
	negnb := lemireThreshold(n)
	rs0, rs1, rs2, rs3 := r.State()
	sweeps := tab.sweeps()
	for sweep := 0; sweep < sweeps; sweep++ {
		// −2·sp and 2·tc are exact (power-of-two scalings), so hoisting
		// them out of the proposal loop cannot change any rounding.
		spm2 := -2 * spatial[sweep]
		tc2 := 2 * temporal[sweep]
		accepted := 0
		for k := 0; k < p; k++ {
			kPrev := k - 1
			if kPrev < 0 {
				kPrev = p - 1
			}
			kNext := k + 1
			if kNext == p {
				kNext = 0
			}
			f := fields[k]
			for m := 0; m < n; m++ {
				var x uint64
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				hi, lo := bits.Mul64(x, nb)
				for lo < negnb {
					x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
					hi, lo = bits.Mul64(x, nb)
				}
				i := int(hi)
				base := i * p
				si8 := flat[base+k]
				si := float64(si8)
				// Spatial action delta: flipping s changes slice energy by
				// −2·s·f, scaled by the spatial action factor; the two
				// temporal bonds change by +2·K·s·(s_prev + s_next).
				dS := spm2*si*f[i] + tc2*si*float64(flat[base+kPrev]+flat[base+kNext])
				accept := dS <= 0
				if !accept {
					x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
					u := float64(x>>11) * (1.0 / (1 << 53))
					v := metroBracket(u, dS)
					accept = v > 0 || (v == 0 && metropolisExpExact(u, dS))
				}
				if accept {
					accepted++
					if trackE {
						// Problem-frame energy delta of the flip; f[i]
						// excludes s_i, so it is still valid here.
						st.energies[k] -= 2 * float64(si8) * f[i]
					}
					nv := -si8
					flat[base+k] = nv
					nvf := float64(nv)
					for kk := offs[i]; kk < offs[i+1]; kk++ {
						f[cols[kk]] += 2 * w[kk] * nvf
					}
				}
			}
		}
		if probe != nil {
			// Copy the tracked energies so the observation owns its slice
			// (probes may retain it past this sweep).
			energies := make([]float64, p)
			var mean float64
			for k, e := range st.energies {
				energies[k] = e
				mean += e
			}
			probe.ObserveSweep(SweepObservation{
				Sweep: sweep, TotalSweeps: sweeps, TimeMicros: tab.t[sweep], S: tab.s[sweep],
				Energy: mean / float64(p), ReplicaEnergies: energies,
				Accepted: accepted, Proposed: p * n,
			})
		}
	}

	r.SetState(rs0, rs1, rs2, rs3)

	// Projective measurement: one uniformly chosen replica.
	kSel := r.Intn(p)
	for i := 0; i < n; i++ {
		out[i] = flat[i*p+kSel]
	}
}
