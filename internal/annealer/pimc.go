package annealer

import (
	"math"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// PIMC is the path-integral Monte Carlo engine — simulated quantum
// annealing, the standard classical surrogate for transverse-field
// quantum annealing dynamics (Boixo et al. 2014; Rønnow et al. 2014).
//
// The transverse-field Ising model at inverse temperature β is mapped by
// the Suzuki–Trotter decomposition onto P coupled classical replicas
// ("imaginary-time slices") with action
//
//	S = (β·B(s)/2P)·Σ_k E_problem(slice k)
//	  − K(s)·Σ_k Σ_i s_{i,k}·s_{i,k+1} ,
//	K(s) = −½·ln tanh(β·A(s)/2P) ≥ 0  (periodic in k),
//
// evolved by Metropolis single-spin flips as s(t) follows the schedule.
// Strong transverse field (small s) means weak replica coupling —
// replicas decorrelate, measurement is random; near s = 1 the replicas
// lock ferromagnetically and the system behaves as a classical register.
// Measurement returns one uniformly chosen replica, mirroring the
// projective readout of the device.
type PIMC struct {
	// Slices is the Trotter number P (default 16).
	Slices int
	// MaxTemporalCoupling clamps K(s) as A(s) → 0 so late-schedule
	// dynamics freeze smoothly instead of dividing by zero (default 5).
	MaxTemporalCoupling float64
}

// Name implements Engine.
func (PIMC) Name() string { return "pimc" }

func (e PIMC) slices() int {
	if e.Slices <= 0 {
		return 16
	}
	return e.Slices
}

func (e PIMC) kMax() float64 {
	if e.MaxTemporalCoupling <= 0 {
		return 5
	}
	return e.MaxTemporalCoupling
}

// temporalCoupling returns K(s), clamped to [0, kMax].
func (e PIMC) temporalCoupling(beta, a float64, p int) float64 {
	arg := beta * a / (2 * float64(p))
	if arg <= 0 {
		return e.kMax()
	}
	t := math.Tanh(arg)
	if t <= 0 {
		return e.kMax()
	}
	k := -0.5 * math.Log(t)
	if k < 0 {
		k = 0 // tanh > 1 cannot happen; guard for rounding
	}
	if k > e.kMax() {
		k = e.kMax()
	}
	return k
}

// Anneal implements Engine.
func (e PIMC) Anneal(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source) []int8 {
	return e.AnnealProbed(is, sc, prof, init, sweepsPerMicrosecond, r, nil)
}

// AnnealProbed implements ProbedEngine: identical dynamics, with one
// nil-checked observation per sweep (per-replica problem energies, s(t),
// acceptance counts) when probe is non-nil.
func (e PIMC) AnnealProbed(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source, probe Probe) []int8 {
	n := is.N
	p := e.slices()
	sweeps, err := sweepCount(sc, sweepsPerMicrosecond)
	if err != nil {
		panic(err)
	}
	beta := 1 / prof.TemperatureGHz

	// replica[k] is slice k's spin configuration.
	replica := make([][]int8, p)
	for k := range replica {
		replica[k] = make([]int8, n)
	}
	if sc.StartsClassical() {
		if len(init) != n {
			panic("annealer: PIMC reverse anneal requires an initial state")
		}
		for k := range replica {
			copy(replica[k], init)
		}
	} else {
		for k := range replica {
			for i := range replica[k] {
				replica[k][i] = r.Spin()
			}
		}
	}
	// fields[k][i] = h_i + Σ_j J_ij·s_{j,k}, maintained incrementally.
	fields := make([][]float64, p)
	for k := range fields {
		fields[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			fields[k][i] = is.LocalField(replica[k], i)
		}
	}

	duration := sc.Duration()
	for sweep := 0; sweep < sweeps; sweep++ {
		t := duration * float64(sweep) / float64(sweeps-1)
		s := sc.At(t)
		spatial := beta * prof.B(s) / (2 * float64(p))
		temporal := e.temporalCoupling(beta, prof.A(s), p)
		accepted := 0
		for k := 0; k < p; k++ {
			prev := replica[(k+p-1)%p]
			next := replica[(k+1)%p]
			cur := replica[k]
			f := fields[k]
			for m := 0; m < n; m++ {
				i := r.Intn(n)
				si := float64(cur[i])
				// Spatial action delta: flipping s changes slice energy by
				// −2·s·f, scaled by the spatial action factor; the two
				// temporal bonds change by +2·K·s·(s_prev + s_next).
				dS := spatial*(-2*si*f[i]) + 2*temporal*si*float64(prev[i]+next[i])
				if dS <= 0 || r.Float64() < math.Exp(-dS) {
					accepted++
					cur[i] = -cur[i]
					for _, c := range is.Adj[i] {
						f[c.To] += 2 * c.J * float64(cur[i])
					}
				}
			}
		}
		if probe != nil {
			energies := make([]float64, p)
			var mean float64
			for k := range replica {
				energies[k] = is.Energy(replica[k])
				mean += energies[k]
			}
			probe.ObserveSweep(SweepObservation{
				Sweep: sweep, TotalSweeps: sweeps, TimeMicros: t, S: s,
				Energy: mean / float64(p), ReplicaEnergies: energies,
				Accepted: accepted, Proposed: p * n,
			})
		}
	}

	// Projective measurement: one uniformly chosen replica.
	out := make([]int8, n)
	copy(out, replica[r.Intn(p)])
	return out
}
