package annealer

// Regression pins for the telemetry layer's two load-bearing guarantees:
// (1) tracing/probing is observation-only — a fully instrumented run's
// samples are bit-identical to an uninstrumented run's, at any
// parallelism; (2) a traced batch's qpu/* span durations sum exactly to
// the device timing model's programming + N×(anneal + readout) budget,
// the same number QPU.ServiceTime reports.

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/telemetry"
)

// instrumented returns Params with every telemetry hook wired.
func instrumented(p Params) (Params, *telemetry.Tracer, *telemetry.Registry) {
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	p.Trace = tr
	p.Metrics = reg
	p.Probe = &MetricsProbe{Trace: tr, Metrics: reg, Engine: "test", SampleEvery: 16}
	return p, tr, reg
}

func TestTracedRunBitIdentical(t *testing.T) {
	is := frustrated(10, 123)
	for _, engine := range []Engine{SVMC{}, SVMC{TFMoves: true}, PIMC{}} {
		for _, par := range []int{1, 4} {
			sc, _ := Forward(1, 0.41, 1)
			base := Params{Schedule: sc, NumReads: 16, Engine: engine,
				SweepsPerMicrosecond: 50, Parallelism: par,
				Faults: FaultModel{ReadTimeoutRate: 0.1, CalibrationDriftRate: 0.1}}
			plain, err := Run(is, base, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			traced, tr, reg := instrumented(base)
			traced.Timing = &DeviceTiming{ProgrammingMicros: 100, ReadoutMicros: 10}
			got, err := Run(is, traced, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Samples) != len(plain.Samples) {
				t.Fatalf("%s par=%d: sample count changed under tracing", engine.Name(), par)
			}
			for i := range plain.Samples {
				if plain.Samples[i].Energy != got.Samples[i].Energy ||
					!spinsEqual(plain.Samples[i].Spins, got.Samples[i].Spins) {
					t.Fatalf("%s par=%d: read %d diverged under tracing", engine.Name(), par, i)
				}
			}
			if tr.Len() == 0 || reg.Counter("annealer_reads_issued_total").Value() != 16 {
				t.Fatalf("%s par=%d: telemetry not actually collected", engine.Name(), par)
			}
		}
	}
}

func TestTracedRunDeterministicTrace(t *testing.T) {
	// Two runs at different parallelism levels must produce byte-identical
	// traces: the record set is seed-determined and Records() orders it.
	is := frustrated(10, 55)
	sc, _ := Reverse(0.45, 1)
	init := make([]int8, is.N)
	for i := range init {
		init[i] = 1
	}
	trace := func(par int) []telemetry.Record {
		p, tr, _ := instrumented(Params{Schedule: sc, InitialState: init,
			NumReads: 12, SweepsPerMicrosecond: 40, Parallelism: par})
		p.Timing = &DeviceTiming{ProgrammingMicros: 50, ReadoutMicros: 5}
		if _, err := Run(is, p, rng.New(3)); err != nil {
			t.Fatal(err)
		}
		return tr.Records()
	}
	a, b := trace(1), trace(8)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Name != b[i].Name ||
			a[i].T0 != b[i].T0 || a[i].T1 != b[i].T1 {
			t.Fatalf("record %d differs across parallelism: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpanDurationsSumToServiceTime(t *testing.T) {
	// The acceptance invariant: per-read span durations (programming +
	// anneals + readouts) sum to the QPU's service-time budget — including
	// reads lost to injected timeouts, which still occupy the device.
	is := ferroChain(8)
	sc, _ := Forward(1, 0.5, 1)
	q := NewQPU2000Q()
	const reads = 20
	tr := telemetry.NewTracer()
	p := Params{Schedule: sc, NumReads: reads, SweepsPerMicrosecond: 30,
		Trace: tr, Faults: FaultModel{ReadTimeoutRate: 0.2}}
	res, err := q.Run(is, p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.ReadTimeouts == 0 {
		t.Fatal("want some injected timeouts for this pin; raise the rate")
	}
	var sum float64
	counts := map[string]int{}
	for _, r := range tr.Records() {
		switch r.Name {
		case "qpu/program", "qpu/anneal", "qpu/readout":
			sum += r.Duration()
			counts[r.Name]++
		}
	}
	if counts["qpu/program"] != 1 || counts["qpu/anneal"] != reads || counts["qpu/readout"] != reads {
		t.Fatalf("span counts %v, want 1 program + %d anneal + %d readout", counts, reads, reads)
	}
	want := q.ServiceTime(sc, reads)
	if math.Abs(sum-want) > 1e-6*want {
		t.Fatalf("span durations sum to %v, want ServiceTime %v", sum, want)
	}
}

func TestProbeSeesEverySweep(t *testing.T) {
	// A counting probe must observe reads × sweeps observations with the
	// right read stamps, for both engines.
	is := ferroChain(6)
	sc, _ := Forward(1, 0.5, 1)
	for _, engine := range []Engine{SVMC{}, PIMC{}} {
		var obs []SweepObservation
		probe := probeFunc(func(ob SweepObservation) { obs = append(obs, ob) })
		p := Params{Schedule: sc, NumReads: 3, Engine: engine,
			SweepsPerMicrosecond: 10, Probe: probe}
		if _, err := Run(is, p, rng.New(2)); err != nil {
			t.Fatal(err)
		}
		if len(obs) == 0 {
			t.Fatalf("%s: probe never fired", engine.Name())
		}
		perRead := map[int]int{}
		for _, ob := range obs {
			perRead[ob.Read]++
			if ob.S < 0 || ob.S > 1 {
				t.Fatalf("%s: s(t) = %v out of [0,1]", engine.Name(), ob.S)
			}
			if ob.Proposed <= 0 || ob.Accepted < 0 || ob.Accepted > ob.Proposed {
				t.Fatalf("%s: acceptance counts %d/%d", engine.Name(), ob.Accepted, ob.Proposed)
			}
			if math.IsNaN(ob.Energy) {
				t.Fatalf("%s: NaN probe energy", engine.Name())
			}
		}
		if len(perRead) != 3 {
			t.Fatalf("%s: observations from %d reads, want 3", engine.Name(), len(perRead))
		}
		if _, ok := engine.(PIMC); ok && obs[0].ReplicaEnergies == nil {
			t.Fatal("PIMC probe missing replica energies")
		}
	}
}

// probeFunc adapts a function to the Probe interface (serial tests only).
type probeFunc func(SweepObservation)

func (f probeFunc) ObserveSweep(ob SweepObservation) { f(ob) }

func TestHardFaultCounted(t *testing.T) {
	is := ferroChain(6)
	sc, _ := Forward(1, 0.5, 1)
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	p := Params{Schedule: sc, NumReads: 4, Trace: tr, Metrics: reg,
		Faults: FaultModel{ProgrammingFailureRate: 1}}
	if _, err := Run(is, p, rng.New(1)); err == nil {
		t.Fatal("want programming failure")
	}
	kind := telemetry.Label{Key: "kind", Value: FaultProgramming.String()}
	if reg.Counter("annealer_faults_total", kind).Value() != 1 {
		t.Fatal("programming failure not counted")
	}
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Name != "fault" {
		t.Fatalf("want one fault event, got %+v", recs)
	}
}

// BenchmarkAnnealBaseline and BenchmarkAnnealTelemetryOff measure the
// acceptance criterion that disabled telemetry (nil hooks) costs < 2% on
// the hot path: the only difference between the two is that the second
// goes through Params fields explicitly set to nil — the exact code path
// instrumented callers take when tracing is off.
func BenchmarkAnnealBaseline(b *testing.B) {
	benchmarkAnneal(b, Params{})
}

func BenchmarkAnnealTelemetryOff(b *testing.B) {
	benchmarkAnneal(b, Params{Trace: nil, Metrics: nil, Probe: nil, Timing: nil})
}

// BenchmarkAnnealTelemetryOn quantifies the cost of full instrumentation
// (tracer + registry + per-sweep probe) for comparison; it is allowed to
// be slower.
func BenchmarkAnnealTelemetryOn(b *testing.B) {
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	benchmarkAnneal(b, Params{Trace: tr, Metrics: reg,
		Probe:  &MetricsProbe{Trace: tr, Metrics: reg, Engine: "svmc"},
		Timing: &DeviceTiming{ProgrammingMicros: 100, ReadoutMicros: 10}})
}

func benchmarkAnneal(b *testing.B, p Params) {
	is := frustrated(16, 7)
	sc, _ := Forward(1, 0.41, 1)
	p.Schedule = sc
	p.NumReads = 50
	p.SweepsPerMicrosecond = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(is, p, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
