package annealer

import (
	"fmt"
	"math"
	"strings"
)

// Render draws the schedule's s(t) trajectory as ASCII art — the three
// flavors of Figure 5 — with time on the x axis and anneal fraction on
// the y axis (s = 1 at the top: classical memory register; s = 0 at the
// bottom: fully quantum state).
func (sc *Schedule) Render(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	dur := sc.Duration()
	if dur <= 0 {
		return ""
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	prevRow := -1
	for x := 0; x < width; x++ {
		t := dur * float64(x) / float64(width-1)
		s := sc.At(t)
		row := int(math.Round((1 - s) * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][x] = '*'
		// Fill vertical gaps so steep ramps stay connected.
		if prevRow >= 0 && abs(row-prevRow) > 1 {
			step := 1
			if row < prevRow {
				step = -1
			}
			for y := prevRow + step; y != row; y += step {
				grid[y][x] = '|'
			}
		}
		prevRow = row
	}
	var b strings.Builder
	fmt.Fprintf(&b, "s=1 %s\n", string(grid[0]))
	for y := 1; y < height-1; y++ {
		fmt.Fprintf(&b, "    %s\n", string(grid[y]))
	}
	fmt.Fprintf(&b, "s=0 %s\n", string(grid[height-1]))
	fmt.Fprintf(&b, "    t=0%st=%.2fµs (%s)\n", strings.Repeat(" ", max(1, width-14)), dur, sc.Kind)
	return b.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
