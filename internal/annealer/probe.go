package annealer

import (
	"math"

	"repro/internal/telemetry"
)

// SweepObservation is one Monte-Carlo sweep's probe sample: where the
// schedule is, how the dynamics are moving, and what energy the current
// state sits at — the per-read visibility X-ResQ-style RA diagnosis
// needs. Energies are in the PROGRAMMED (normalized, post-ICE/drift)
// coefficient frame the engine actually evolves, not the caller's
// original scale.
type SweepObservation struct {
	// Read is the read index within the batch (stamped by Run).
	Read int
	// Sweep / TotalSweeps locate the observation in the schedule.
	Sweep, TotalSweeps int
	// TimeMicros is the simulated μs into the schedule; S the anneal
	// fraction s(t) there.
	TimeMicros float64
	S          float64
	// Energy is the problem-frame energy of the engine's current state:
	// SVMC reports its projected classical state, PIMC the mean over
	// Trotter replicas.
	Energy float64
	// ReplicaEnergies holds PIMC's per-replica problem energies (nil for
	// single-worldline engines).
	ReplicaEnergies []float64
	// Accepted / Proposed count this sweep's Metropolis decisions.
	Accepted, Proposed int
}

// Probe receives per-sweep observations from an engine. Probes run inside
// the read loop: implementations must be safe for concurrent use when
// Params.Parallelism > 1, must not mutate the observation's slices, and
// must not consume any RNG — the determinism regression test pins that a
// probed run's samples are bit-identical to an unprobed run's.
type Probe interface {
	ObserveSweep(ob SweepObservation)
}

// readProbe stamps the batch read index onto engine observations (engines
// see one read at a time and do not know their index).
type readProbe struct {
	p    Probe
	read int
}

func (rp readProbe) ObserveSweep(ob SweepObservation) {
	ob.Read = rp.read
	rp.p.ObserveSweep(ob)
}

// MetricsProbe is the standard Probe: it aggregates sweep observations
// into a telemetry registry (acceptance-rate and energy histograms) and
// optionally records a downsampled s(t)/energy trajectory as trace
// events. Both sinks are nil-safe, so either half can be wired alone.
type MetricsProbe struct {
	// Trace receives "sweep" events (one per SampleEvery sweeps per read)
	// with the schedule time, s(t), energy, and acceptance counts.
	Trace *telemetry.Tracer
	// Metrics receives annealer_sweep_acceptance_rate and
	// annealer_sweep_energy histograms plus an observation counter.
	Metrics *telemetry.Registry
	// SampleEvery thins trace events to every k-th sweep (default 64;
	// histograms always see every observed sweep).
	SampleEvery int
	// Engine labels the metrics series (e.g. "svmc", "pimc").
	Engine string
}

// ObserveSweep implements Probe.
func (mp *MetricsProbe) ObserveSweep(ob SweepObservation) {
	label := telemetry.Label{Key: "engine", Value: mp.Engine}
	if mp.Metrics != nil {
		mp.Metrics.Counter("annealer_sweeps_observed_total", label).Inc()
		if ob.Proposed > 0 {
			mp.Metrics.Histogram("annealer_sweep_acceptance_rate", 0, 1, 20, label).
				Observe(float64(ob.Accepted) / float64(ob.Proposed))
		}
		// Normalized-frame energies are O(N) for coupling magnitudes ≤ 1;
		// the fixed [-100, 100) window covers every paper-scale problem.
		mp.Metrics.Histogram("annealer_sweep_energy", -100, 100, 40, label).Observe(ob.Energy)
	}
	every := mp.SampleEvery
	if every <= 0 {
		every = 64
	}
	if mp.Trace != nil && (ob.Sweep%every == 0 || ob.Sweep == ob.TotalSweeps-1) {
		attrs := telemetry.Attrs{
			"read": ob.Read, "sweep": ob.Sweep, "s": ob.S,
			"energy": ob.Energy, "accepted": ob.Accepted, "proposed": ob.Proposed,
		}
		if ob.ReplicaEnergies != nil {
			attrs["replica_energies"] = append([]float64(nil), ob.ReplicaEnergies...)
		}
		mp.Trace.Event("sweep", ob.TimeMicros, attrs)
	}
}

// DeviceTiming models the per-call and per-read device overheads used to
// lay out trace spans on the simulated clock — the Table-1 decomposition
// of one QPU call into programming → anneal → readout. It affects ONLY
// telemetry emission, never results: span durations for a batch sum to
//
//	ProgrammingMicros + NumReads × (schedule duration + ReadoutMicros),
//
// the same budget QPU.ServiceTime reports.
type DeviceTiming struct {
	ProgrammingMicros float64
	ReadoutMicros     float64
}

// emitBatchTelemetry publishes one batch's spans and counters after the
// reads complete. faults has one entry per issued read (timed-out reads
// included — they occupy the device and are charged readout like any
// other read, so traced span durations reproduce the service-time
// budget).
func (p Params) emitBatchTelemetry(res *Result, faults []readFault) {
	if p.Trace == nil && p.Metrics == nil {
		return
	}
	var prog, readout float64
	if p.Timing != nil {
		prog, readout = p.Timing.ProgrammingMicros, p.Timing.ReadoutMicros
	}
	if p.Trace != nil {
		if prog > 0 {
			p.Trace.Span("qpu/program", 0, prog, nil)
		}
		t := prog
		for read, f := range faults {
			attrs := telemetry.Attrs{"read": read}
			if f.timeout {
				attrs["fault"] = "read-timeout"
			}
			if f.storm {
				attrs["storm"] = true
			}
			if f.drift {
				attrs["drift"] = true
			}
			p.Trace.Span("qpu/anneal", t, t+res.ScheduleDuration, attrs)
			t += res.ScheduleDuration
			if readout > 0 {
				p.Trace.Span("qpu/readout", t, t+readout, telemetry.Attrs{"read": read})
				t += readout
			}
		}
		// Batch summary at the batch's (relative-clock) end: read yield,
		// fault tallies, and the surviving-sample energy statistics the SLO
		// monitor's device health scoring keys off.
		stats := telemetry.Attrs{
			"issued":   len(faults),
			"survived": len(res.Samples),
			"timeouts": res.Faults.ReadTimeouts,
			"storms":   res.Faults.ChainBreakStorms,
			"drifts":   res.Faults.CalibrationDrifts,
		}
		if len(res.Samples) > 0 {
			sum, best := 0.0, math.Inf(1)
			for _, s := range res.Samples {
				sum += s.Energy
				if s.Energy < best {
					best = s.Energy
				}
			}
			stats["mean_energy"] = sum / float64(len(res.Samples))
			stats["best_energy"] = best
		}
		p.Trace.Event("qpu/batch-stats", t, stats)
	}
	if p.Metrics != nil {
		p.Metrics.Counter("annealer_batches_total").Inc()
		p.Metrics.Counter("annealer_reads_issued_total").Add(float64(len(faults)))
		p.Metrics.Counter("annealer_reads_survived_total").Add(float64(len(res.Samples)))
		p.Metrics.Counter("annealer_anneal_micros_total").Add(res.TotalAnnealTime)
		emitFaultCounters(p.Metrics, res.Faults)
	}
}

// emitFaultCounters publishes soft-fault tallies by kind.
func emitFaultCounters(reg *telemetry.Registry, fs FaultStats) {
	if fs.ReadTimeouts > 0 {
		reg.Counter("annealer_faults_total", telemetry.Label{Key: "kind", Value: "read-timeout"}).Add(float64(fs.ReadTimeouts))
	}
	if fs.ChainBreakStorms > 0 {
		reg.Counter("annealer_faults_total", telemetry.Label{Key: "kind", Value: "chain-break-storm"}).Add(float64(fs.ChainBreakStorms))
	}
	if fs.CalibrationDrifts > 0 {
		reg.Counter("annealer_faults_total", telemetry.Label{Key: "kind", Value: "calibration-drift"}).Add(float64(fs.CalibrationDrifts))
	}
}

// emitHardFault publishes a batch-aborting fault (programming failure,
// all reads lost) to both sinks.
func (p Params) emitHardFault(kind FaultKind) {
	name := kind.String()
	p.Trace.Event("fault", 0, telemetry.Attrs{"kind": name})
	if p.Metrics != nil {
		p.Metrics.Counter("annealer_faults_total", telemetry.Label{Key: "kind", Value: name}).Inc()
	}
}
