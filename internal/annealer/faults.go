package annealer

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// FaultModel injects hard device failures alongside the soft ICE noise —
// the failure classes a production cQ-RAN integration must survive:
// programming failures (the whole batch is lost before any read), per-read
// timeouts (a read returns nothing), chain-break storms (a read's readout
// comes back corrupted), and calibration drift (a read runs against stale
// coefficients).
//
// Every fault decision is drawn from a dedicated split of the run's RNG
// (never from the dynamics stream), so a zero-rate model is an exact
// no-op, results are bit-identical at any Parallelism level, and the same
// seed replays the same faults.
type FaultModel struct {
	// ProgrammingFailureRate is the probability one Run/QPU.Run call fails
	// to program the device at all; the call returns a *FaultError of kind
	// FaultProgramming before any read is drawn.
	ProgrammingFailureRate float64
	// ReadTimeoutRate is the per-read probability the read times out and
	// is dropped from Result.Samples.
	ReadTimeoutRate float64
	// ChainBreakStormRate is the per-read probability the measured state
	// is corrupted at readout: each spin flips independently with
	// probability StormFlipFraction.
	ChainBreakStormRate float64
	// StormFlipFraction is the per-spin flip probability inside a storm
	// (default 0.25).
	StormFlipFraction float64
	// CalibrationDriftRate is the per-read probability the programmed
	// coefficients drift by N(0, DriftSigma²) on top of ICE — stale
	// calibration between recalibration cycles.
	CalibrationDriftRate float64
	// DriftSigma is the drift magnitude when a drift fires (default 0.05,
	// relative to the normalized ±1 coefficient range).
	DriftSigma float64
}

// Enabled reports whether any fault class can fire.
func (fm FaultModel) Enabled() bool {
	return fm.ProgrammingFailureRate > 0 || fm.ReadTimeoutRate > 0 ||
		fm.ChainBreakStormRate > 0 || fm.CalibrationDriftRate > 0
}

// Validate checks every rate is a probability and magnitudes are sane.
func (fm FaultModel) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"programming failure rate", fm.ProgrammingFailureRate},
		{"read timeout rate", fm.ReadTimeoutRate},
		{"chain-break storm rate", fm.ChainBreakStormRate},
		{"storm flip fraction", fm.StormFlipFraction},
		{"calibration drift rate", fm.CalibrationDriftRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("annealer: %s %g out of [0,1]", p.name, p.v)
		}
	}
	if fm.DriftSigma < 0 {
		return fmt.Errorf("annealer: negative drift sigma %g", fm.DriftSigma)
	}
	return nil
}

// ProgrammingFails decides one batch-level programming failure. It is
// exported so serving layers (internal/fleet) can pre-draw a batch's
// fate when planning dispatch timing: Run and QPU.Run draw from the same
// "fault/programming" split of the batch's root stream, so a plan and
// its execution always agree. A zero rate consumes no draw.
func (fm FaultModel) ProgrammingFails(r *rng.Source) bool {
	return fm.ProgrammingFailureRate > 0 && r.Float64() < fm.ProgrammingFailureRate
}

// WithoutProgrammingFailures returns the model with the batch-level
// programming-failure class disabled, leaving per-read classes intact —
// for callers (a fleet dispatcher) that own the programming-cycle draw
// themselves and must not have the execution layer re-draw it.
func (fm FaultModel) WithoutProgrammingFailures() FaultModel {
	fm.ProgrammingFailureRate = 0
	return fm
}

// readTimesOut decides one read's timeout from the read's fault stream.
func (fm FaultModel) readTimesOut(fr *rng.Source) bool {
	return fm.ReadTimeoutRate > 0 && fr.Float64() < fm.ReadTimeoutRate
}

// driftFires decides one read's calibration-drift fault from its fault
// stream, consuming exactly one draw iff the rate is positive (so a
// zero-rate model stays an exact no-op). The drifted coefficients
// themselves are programmed by applyGaussianCSR with driftSigma.
func (fm FaultModel) driftFires(fr *rng.Source) bool {
	return fm.CalibrationDriftRate > 0 && fr.Float64() < fm.CalibrationDriftRate
}

// driftSigma returns the coefficient sigma applied when a drift fires.
func (fm FaultModel) driftSigma() float64 {
	if fm.DriftSigma == 0 {
		return 0.05
	}
	return fm.DriftSigma
}

// storm corrupts the measured state in place when a chain-break storm
// fires, returning whether it did.
func (fm FaultModel) storm(spins []int8, fr *rng.Source) bool {
	if fm.ChainBreakStormRate <= 0 || fr.Float64() >= fm.ChainBreakStormRate {
		return false
	}
	flip := fm.StormFlipFraction
	if flip == 0 {
		flip = 0.25
	}
	for i := range spins {
		if fr.Float64() < flip {
			spins[i] = -spins[i]
		}
	}
	return true
}

// FaultKind labels the failure classes a FaultError can report.
type FaultKind int

// The fault classes surfaced as errors; soft per-read faults (storms,
// drift) degrade samples and are tallied in FaultStats instead.
const (
	// FaultProgramming: the device could not be programmed; no reads ran.
	FaultProgramming FaultKind = iota
	// FaultAllReadsLost: every read in the batch timed out.
	FaultAllReadsLost
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultProgramming:
		return "programming-failure"
	case FaultAllReadsLost:
		return "all-reads-lost"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultError is the typed error an injected hard fault surfaces, so
// callers (the pipeline's retry policy, the hybrid's fallback) can
// distinguish a transient device fault from a caller bug.
type FaultError struct {
	Kind FaultKind
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("annealer: injected fault: %s", e.Kind)
}

// AsFault unwraps err into a *FaultError if one is in its chain.
func AsFault(err error) (*FaultError, bool) {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// FaultStats tallies the soft faults injected over a batch of reads.
type FaultStats struct {
	// ReadTimeouts is the number of reads dropped by timeouts.
	ReadTimeouts int
	// ChainBreakStorms is the number of reads corrupted at readout.
	ChainBreakStorms int
	// CalibrationDrifts is the number of reads run on drifted coefficients.
	CalibrationDrifts int
}

// Total is the total number of fault events.
func (s FaultStats) Total() int {
	return s.ReadTimeouts + s.ChainBreakStorms + s.CalibrationDrifts
}
