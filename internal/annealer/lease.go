// Device handle / lease API: a Lease pins one device session's validated
// parameters and the engine's compiled sweep program so a serving layer
// can run MANY problems through the same device without re-validating or
// re-running Engine.Prepare per call. Run and QPU.Run pay the Prepare
// compile (schedule tables, per-sweep transcendentals) once per batch;
// a lease pays it once per (device, schedule) for an arbitrarily long
// stream of batches — the amortization a multi-QPU fleet dispatcher
// needs when frames arrive faster than schedules change.
package annealer

import (
	"fmt"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Lease is a prepared session on one simulated device: a validated
// Params template plus the engine's batch-invariant compiled ReadFunc.
// A lease is safe for concurrent Run calls — the compiled program is
// read-only and per-read scratch is pooled per batch — so an execution
// layer may run batches of the same device on multiple workers.
type Lease struct {
	p     Params
	read  ReadFunc
	bread BatchReadFunc // lockstep kernel; nil when the engine has none
	qpu   *QPU
}

// NewLease validates p once, compiles the engine's sweep program, and
// returns the reusable session. p.InitialState and p.NumReads act as
// per-call defaults that Run's arguments override; every other field
// (schedule, engine, profile, noise, fault model, telemetry hooks) is
// fixed for the lease's lifetime.
func NewLease(p Params) (*Lease, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if be, ok := p.Engine.(BatchEngine); ok {
		read, bread, err := be.PrepareBatch(p.Schedule, *p.Profile, p.SweepsPerMicrosecond)
		if err != nil {
			return nil, err
		}
		return &Lease{p: p, read: read, bread: bread}, nil
	}
	read, err := p.Engine.Prepare(p.Schedule, *p.Profile, p.SweepsPerMicrosecond)
	if err != nil {
		return nil, err
	}
	return &Lease{p: p, read: read}, nil
}

// Lease returns a prepared session whose runs take the full hardware
// path: minor-embedding onto the QPU's Chimera graph, physical anneal,
// majority-vote unembedding.
func (q *QPU) Lease(p Params) (*Lease, error) {
	l, err := NewLease(p)
	if err != nil {
		return nil, err
	}
	l.qpu = q
	return l, nil
}

// Schedule returns the anneal program the lease was prepared for.
func (l *Lease) Schedule() *Schedule { return l.p.Schedule }

// Embedded reports whether runs take the Chimera-embedded QPU path.
func (l *Lease) Embedded() bool { return l.qpu != nil }

// Faults returns the fault model runs are subject to.
func (l *Lease) Faults() FaultModel { return l.p.Faults }

// ServiceMicros returns the modelled wall-clock μs one Run call of
// numReads reads occupies the device: the leased QPU's programming and
// readout overheads around the anneal time, or the bare anneal time for
// a logical lease (numReads ≤ 0 uses the lease default).
func (l *Lease) ServiceMicros(numReads int) float64 {
	if numReads <= 0 {
		numReads = l.p.NumReads
	}
	if l.qpu != nil {
		return l.qpu.ServiceTime(l.p.Schedule, numReads)
	}
	return float64(numReads) * l.p.Schedule.Duration()
}

// Run draws numReads reads (≤ 0: the lease default) for one problem,
// reverse-annealing from init when the leased schedule starts classical.
// Results are bit-identical to Run/QPU.Run with the same parameters and
// RNG — the lease only amortizes validation and Prepare, it never
// changes the dynamics.
func (l *Lease) Run(is *qubo.Ising, init []int8, numReads int, r *rng.Source) (*Result, error) {
	p := l.p
	p.InitialState = init
	if numReads > 0 {
		p.NumReads = numReads
	}
	if p.NumReads > MaxReads {
		return nil, fmt.Errorf("annealer: %d reads exceed the per-read stream limit %d", p.NumReads, MaxReads)
	}
	if l.qpu != nil {
		return l.qpu.runEmbedded(is, p, l.read, l.bread, r)
	}
	return runLogical(is, p, l.read, l.bread, r)
}
