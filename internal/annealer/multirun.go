// Multi-initial-state batch planning over one prepared problem: the
// reverse-anneal primitive a flexible-parallelism ensemble detector
// (X-ResQ) needs. All arms of one detection frame share the SAME problem
// and the SAME schedule — only the initial state (classical candidate)
// and the RNG stream differ — so the per-problem compile (embedding,
// normalization, CSR) is paid once by PrepareProblem and every arm runs
// against the shared Prepared snapshot.
package annealer

import (
	"fmt"

	"repro/internal/rng"
)

// PreparedRun is one arm of a multi-initial-state batch: the candidate
// state that seeds the reverse anneal, the arm's read count (≤ 0: the
// lease default), and the arm's private RNG stream.
type PreparedRun struct {
	InitialState []int8
	NumReads     int
	Rng          *rng.Source
}

// RunPreparedMulti runs every arm against one prepared problem,
// sequentially in arm order. Each arm's result is bit-identical to the
// equivalent standalone RunPrepared call with the same (init, reads, rng)
// — the batch form only amortizes the problem compile, it cannot change
// an answer — so callers may re-partition arms across calls freely.
//
// Per-arm run failures (e.g. injected device faults) do not abort the
// batch: results[i] is nil and errs[i] carries the arm's error, leaving
// the caller to apply its own degradation policy (an ensemble detector
// fuses the surviving arms). The error return covers argument validation
// only.
func (l *Lease) RunPreparedMulti(prep *Prepared, runs []PreparedRun) (results []*Result, errs []error, err error) {
	if prep == nil || prep.l != l {
		return nil, nil, fmt.Errorf("annealer: prepared problem does not belong to this lease")
	}
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("annealer: multi-run batch needs at least one arm")
	}
	for i, ru := range runs {
		if ru.Rng == nil {
			return nil, nil, fmt.Errorf("annealer: multi-run arm %d has no rng stream", i)
		}
	}
	results = make([]*Result, len(runs))
	errs = make([]error, len(runs))
	for i, ru := range runs {
		results[i], errs[i] = l.RunPrepared(prep, ru.InitialState, ru.NumReads, ru.Rng)
	}
	return results, errs, nil
}
