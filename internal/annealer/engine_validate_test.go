package annealer

import (
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Prepare must reject a non-positive sweep rate with an error, never a
// panic: the validation is part of the Engine contract so callers can
// surface bad configs instead of crashing a batch worker.
func TestPrepareRejectsNonPositiveSweepRate(t *testing.T) {
	sc, err := Forward(1, 0.5, 0)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	prof := CalibratedProfile()
	engines := []Engine{SVMC{}, SVMC{TFMoves: true}, PIMC{Slices: 8}}
	for _, e := range engines {
		for _, rate := range []float64{0, -1, -1e9} {
			read, err := e.Prepare(sc, prof, rate)
			if err == nil {
				t.Fatalf("%s.Prepare(rate=%g): want error, got nil", e.Name(), rate)
			}
			if read != nil {
				t.Fatalf("%s.Prepare(rate=%g): non-nil ReadFunc alongside error", e.Name(), rate)
			}
		}
		if _, err := e.Prepare(sc, prof, 100); err != nil {
			t.Fatalf("%s.Prepare(rate=100): unexpected error %v", e.Name(), err)
		}
	}
}

// applyGaussianCSR is the per-read noise path on the compiled problem;
// it must program the same coefficients as ICE.Perturb on the adjacency
// form given the same seed, so the CSR refactor cannot change which
// noisy instance a read sees.
func TestApplyGaussianCSRMatchesPerturb(t *testing.T) {
	r := rng.New(0x1CE0)
	is := qubo.NewIsing(12)
	for i := 0; i < is.N; i++ {
		is.H[i] = 2*r.Float64() - 1
		for j := i + 1; j < is.N; j++ {
			if r.Float64() < 0.5 {
				is.SetCoupling(i, j, 2*r.Float64()-1)
			}
		}
	}
	is.H[3] = 0 // zero fields must stay exactly zero under ICE

	ice := ICE{SigmaH: 0.03, SigmaJ: 0.02}
	const seed = 0xD1F7
	want := qubo.NewCSR(ice.Perturb(is, rng.New(seed)))
	got := qubo.NewCSR(is)
	applyGaussianCSR(got, ice.SigmaH, ice.SigmaJ, rng.New(seed))

	for i := range want.H {
		if got.H[i] != want.H[i] {
			t.Fatalf("H[%d] = %v, want %v", i, got.H[i], want.H[i])
		}
	}
	if got.H[3] != 0 {
		t.Fatalf("zero field perturbed to %v", got.H[3])
	}
	for k := range want.W {
		if got.W[k] != want.W[k] {
			t.Fatalf("W[%d] = %v, want %v", k, got.W[k], want.W[k])
		}
	}
}
