package annealer

import "math"

// SVMC proposes a fresh rotor angle θ′ = π·u per update and needs
// (sin θ′, cos θ′) to score it — two libm transcendentals per proposal,
// which profile as roughly half the engine's sweep time. Working from u
// directly removes the general-purpose argument reduction entirely: fold
// u into a quarter period t ∈ [0, ¼] (both folds are exact — Sterbenz
// subtractions against 0.5 and 1), then evaluate sin(πt) and cos(πt) as
// short even/odd Taylor polynomials in t², Estrin-grouped so the two
// chains pipeline instead of serializing.
//
// Truncation error is ≤ 2.1e−14 (sin, the (πt)¹⁵/15! tail at t = ¼) and
// ≤ 1.1e−15 (cos) — far below the thermal noise of the Metropolis
// dynamics, and small enough that an acceptance decision could only
// differ from the libm evaluation when a uniform draw lands within
// ~1e−14 of the acceptance threshold. The polynomial is deterministic,
// so every same-seed reproducibility and parallelism/probe/trace
// bit-identity invariant is unaffected.

// sinPiCoef[k] = (−1)ᵏ·π^(2k+1)/(2k+1)!, cosPiCoef[k] = (−1)ᵏ·π^(2k)/(2k)!.
var sinPiCoef, cosPiCoef [8]float64

func init() {
	pi2 := math.Pi * math.Pi
	s, c := math.Pi, 1.0
	for k := 0; k < 8; k++ {
		sinPiCoef[k] = s
		cosPiCoef[k] = c
		s = -s * pi2 / float64((2*k+2)*(2*k+3))
		c = -c * pi2 / float64((2*k+1)*(2*k+2))
	}
}

// sinQuarter evaluates sin(πt) for t ∈ [0, ¼].
func sinQuarter(t float64) float64 {
	zz := t * t
	z4 := zz * zz
	z8 := z4 * z4
	return t * ((sinPiCoef[0] + sinPiCoef[1]*zz) + z4*(sinPiCoef[2]+sinPiCoef[3]*zz) +
		z8*((sinPiCoef[4]+sinPiCoef[5]*zz)+z4*sinPiCoef[6]))
}

// cosQuarter evaluates cos(πt) for t ∈ [0, ¼].
func cosQuarter(t float64) float64 {
	zz := t * t
	z4 := zz * zz
	z8 := z4 * z4
	return (cosPiCoef[0] + cosPiCoef[1]*zz) + z4*(cosPiCoef[2]+cosPiCoef[3]*zz) +
		z8*((cosPiCoef[4]+cosPiCoef[5]*zz)+z4*(cosPiCoef[6]+cosPiCoef[7]*zz))
}

// sinCosPi returns (sin πu, cos πu) for u ∈ [0, 1].
//
// The folds to the first quarter period are branch-free: u is a uniform
// draw, so data-dependent branches here would mispredict half the time
// and cost more than both polynomials together. t1 reflects about ½
// (sin symmetry), t2 about ¼ (sin↔cos swap); the swap and the cosine's
// sign flip are applied with sign-bit masks. The Abs folds round at the
// 0.5 binade, adding at most ~2⁻⁵³ of absolute argument error on top of
// the polynomial truncation — still far below the 1e−13 budget.
func sinCosPi(u float64) (sin, cos float64) {
	t1 := 0.5 - math.Abs(u-0.5)
	t2 := 0.25 - math.Abs(t1-0.25)
	sb := math.Float64bits(sinQuarter(t2))
	cb := math.Float64bits(cosQuarter(t2))
	// swap sin↔cos when t1 > ¼, i.e. when 0.25−t1 is negative.
	m := -(math.Float64bits(0.25-t1) >> 63)
	sinB := (sb &^ m) | (cb & m)
	cosB := (cb &^ m) | (sb & m)
	// cos πu is negative for u > ½, i.e. when 0.5−u is negative.
	cosB ^= (math.Float64bits(0.5-u) >> 63) << 63
	return math.Float64frombits(sinB), math.Float64frombits(cosB)
}
