package annealer

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func allocTestIsing(t *testing.T) *qubo.Ising {
	t.Helper()
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 0xBE9C})
	if err != nil {
		t.Fatal(err)
	}
	return in.Reduction.Ising
}

// TestRunBatchAllocs pins the steady-state allocation count of a full
// 32-read Run on the benchmark workload. The lockstep batch kernel
// shares one pooled struct-of-arrays scratch across all 32 reads, so
// the remaining allocations are the returned samples plus a handful of
// compile-time slices — measured at 72. The bound leaves headroom for
// runtime jitter but fails loudly if per-read allocation creeps back in
// (the pre-batch code cost 556 allocs/op; see BenchmarkRun's committed
// baseline).
func TestRunBatchAllocs(t *testing.T) {
	is := allocTestIsing(t)
	fa, _ := Forward(1, 0.41, 1)
	p := Params{Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30}
	var seed uint64
	if _, err := Run(is, p, rng.New(1)); err != nil { // warm scratch pools
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := Run(is, p, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
	})
	if got > 110 {
		t.Errorf("32-read Run allocates %.0f objects, want ≤ 110 (steady state is ~72)", got)
	}
}

// TestRunPreparedCacheHitAllocs pins what a cache-hit serve costs on the
// embedded path: RunPrepared against an already-compiled Prepared skips
// clique embedding, chain-strength scan, physical coefficient layout and
// CSR normalization, leaving ~37 allocations versus ~4000 for an
// uncached Lease.Run of the same batch. Both sides are pinned so the
// cache's value and the hit path's cost are each guarded.
func TestRunPreparedCacheHitAllocs(t *testing.T) {
	is := allocTestIsing(t)
	fa, _ := Forward(1, 0.41, 1)
	p := Params{Schedule: fa, NumReads: 32, SweepsPerMicrosecond: 30}
	l, err := NewQPU2000Q().Lease(p)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := l.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64
	if _, err := l.RunPrepared(prep, nil, 32, rng.New(1)); err != nil { // warm pools
		t.Fatal(err)
	}
	hit := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := l.RunPrepared(prep, nil, 32, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
	})
	if hit > 64 {
		t.Errorf("cache-hit RunPrepared allocates %.0f objects, want ≤ 64 (steady state is ~37)", hit)
	}
	uncached := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := l.Run(is, nil, 32, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
	})
	if uncached < 10*hit {
		t.Errorf("uncached Lease.Run allocates %.0f objects vs %.0f on a hit; the compile the cache elides has shrunk below 10× — re-baseline these pins", uncached, hit)
	}
}
