package annealer

import (
	"fmt"
	"math"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// Profile models the annealer's energy scales: the transverse-field
// envelope A(s) (quantum fluctuations, strong at s = 0 and suppressed at
// s = 1) and the problem-Hamiltonian envelope B(s), both in GHz, plus the
// operating temperature. The quantum Hamiltonian being emulated is
//
//	H(s) = −A(s)/2·Σ σˣ_i + B(s)/2·(Σ h_i·σᶻ_i + Σ J_ij·σᶻ_i·σᶻ_j).
//
// The qualitative shape matters more than exact hardware curves: A must
// dominate B at small s (a measurement there returns a random bitstring,
// Figure 5's caption), cross B somewhere mid-schedule, and be negligible
// near s = 1 (classical memory register).
type Profile struct {
	Name string
	// AMax and BMax are the s = 0 transverse-field and s = 1 problem
	// energy scales in GHz.
	AMax, BMax float64
	// ACurve shapes A(s) = AMax·(1−s)^ACurve; the 2000Q's published
	// schedule decays faster than linearly, so the default uses 3.
	ACurve float64
	// TemperatureGHz is k_B·T/h for the device mixing chamber
	// (≈ 12 mK ≈ 0.25 GHz on the 2000Q).
	TemperatureGHz float64
}

// DWave2000QProfile approximates the paper's hardware platform.
func DWave2000QProfile() Profile {
	return Profile{
		Name:           "dwave-2000q",
		AMax:           6.0,
		BMax:           12.0,
		ACurve:         3,
		TemperatureGHz: 0.25,
	}
}

// CalibratedProfile is the 2000Q profile with the simulator's effective
// temperature calibrated against the paper's workload. Auto-scaling
// normalizes a MIMO QUBO by its LARGEST coefficient, leaving typical
// couplings well below 1, so the physical 0.25 GHz runs the surrogate
// dynamics slightly too hot relative to the problem scale. 0.15 GHz
// places the pause of a reverse anneal at s_p ≈ 0.3–0.6 in the effective
// inverse-temperature band (β·B(s_p)/2 ≈ 8–20 in normalized energy
// units) where measured barrier-crossing rates let a good initial state's
// defects heal without erasing it — the repair window Figures 7 and 8
// hinge on. Experiments default to this profile; DWave2000QProfile
// remains available for ablation.
func CalibratedProfile() Profile {
	p := DWave2000QProfile()
	p.Name = "dwave-2000q-calibrated"
	p.TemperatureGHz = 0.15
	return p
}

// LinearProfile is a textbook linear interpolation schedule, useful for
// ablation against the hardware-like profile.
func LinearProfile() Profile {
	return Profile{
		Name:           "linear",
		AMax:           6.0,
		BMax:           12.0,
		ACurve:         1,
		TemperatureGHz: 0.25,
	}
}

// A returns the transverse-field scale at anneal fraction s (GHz).
func (p Profile) A(s float64) float64 {
	if s >= 1 {
		return 0
	}
	if s <= 0 {
		return p.AMax
	}
	return p.AMax * math.Pow(1-s, p.ACurve)
}

// B returns the problem-Hamiltonian scale at anneal fraction s (GHz).
func (p Profile) B(s float64) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return p.BMax
	}
	return p.BMax * s
}

// Validate checks the profile is physically sensible.
func (p Profile) Validate() error {
	if p.AMax <= 0 || p.BMax <= 0 {
		return fmt.Errorf("annealer: non-positive energy scales A=%g B=%g", p.AMax, p.BMax)
	}
	if p.ACurve <= 0 {
		return fmt.Errorf("annealer: non-positive A curve exponent %g", p.ACurve)
	}
	if p.TemperatureGHz <= 0 {
		return fmt.Errorf("annealer: non-positive temperature %g", p.TemperatureGHz)
	}
	return nil
}

// ICE models integrated-control-error noise: every anneal programs the
// device with slightly perturbed coefficients, h_i + N(0, SigmaH²) and
// J_ij + N(0, SigmaJ²). On the 2000Q these are a few percent of the
// full-scale range; zero sigmas disable the noise.
type ICE struct {
	SigmaH, SigmaJ float64
}

// DWave2000QICE returns the device-typical control-error magnitudes
// (relative to the normalized ±1 coefficient range).
func DWave2000QICE() ICE { return ICE{SigmaH: 0.03, SigmaJ: 0.02} }

// Validate checks the noise magnitudes are non-negative. Run validates the
// model once per batch, so the per-read apply paths never re-check.
func (ice ICE) Validate() error {
	if ice.SigmaH < 0 || ice.SigmaJ < 0 {
		return fmt.Errorf("annealer: negative ICE sigma (h=%g, j=%g)", ice.SigmaH, ice.SigmaJ)
	}
	return nil
}

// enabled reports whether any noise can be drawn.
func (ice ICE) enabled() bool { return ice.SigmaH != 0 || ice.SigmaJ != 0 }

// applyGaussianCSR perturbs a compiled problem's coefficients in place:
// nonzero fields by N(0, sigmaH²) and each undirected coupling by
// N(0, sigmaJ²), both halves of the mirrored entry receiving the same
// draw. The draw order — fields in spin order, then couplings in (i, j),
// i < j order — matches ICE.Perturb on the adjacency form, so a seed
// programs the same noise through either path.
func applyGaussianCSR(c *qubo.CSR, sigmaH, sigmaJ float64, r *rng.Source) {
	if sigmaH > 0 {
		for i, h := range c.H {
			if h != 0 {
				c.H[i] += sigmaH * r.NormFloat64()
			}
		}
	}
	if sigmaJ > 0 {
		for i := 0; i < c.N; i++ {
			for k := c.Offsets[i]; k < c.Offsets[i+1]; k++ {
				if int(c.Cols[k]) > i {
					dv := sigmaJ * r.NormFloat64()
					c.W[k] += dv
					c.W[c.Mirror[k]] += dv
				}
			}
		}
	}
}

// Perturb returns a copy of the problem with control-error noise applied
// (or the original when the ICE is zero).
func (ice ICE) Perturb(is *qubo.Ising, r *rng.Source) *qubo.Ising {
	if ice.SigmaH == 0 && ice.SigmaJ == 0 {
		return is
	}
	if ice.SigmaH < 0 || ice.SigmaJ < 0 {
		panic("annealer: negative ICE sigma")
	}
	out := is.Clone()
	if ice.SigmaH > 0 {
		for i := range out.H {
			if out.H[i] != 0 {
				out.H[i] += ice.SigmaH * r.NormFloat64()
			}
		}
	}
	if ice.SigmaJ > 0 {
		for _, e := range out.Edges() {
			out.SetCoupling(e.I, e.J, e.V+ice.SigmaJ*r.NormFloat64())
		}
	}
	return out
}
