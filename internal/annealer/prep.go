// Prepared problems and the prepared-problem cache. A Lease already
// amortizes Params validation and the engine's sweep-program compile
// across calls; what it still pays per Run is the per-PROBLEM compile —
// clique embedding, chain strength, physical coefficients, CSR layout,
// normalization. The paper's serving workload re-submits the same
// (channel, modulation) detection instances across frames, so that
// compile is highly redundant: PrepareProblem hoists it into a reusable
// Prepared, RunPrepared runs a batch against one, and PrepCache is the
// LRU a serving tier (internal/fleet) puts in front of PrepareProblem,
// keyed by (lease, problem content hash) with verified hits.
//
// Correctness is structural: a Prepared holds exactly the artifacts the
// uncached path would recompute — byte for byte, since the compile is
// deterministic — and they are read-only during runs, so RunPrepared is
// bit-identical to Run and cache hits can never change an answer, only
// skip work. A hash collision is caught by full-content verification
// and falls back to a fresh compile.
package annealer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/chimera"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Prepared is one problem compiled for one lease: the normalized CSR of
// the problem the engine actually sweeps (physical for embedded leases)
// plus, on the QPU path, the minor embedding. It is immutable after
// PrepareProblem and safe for concurrent RunPrepared calls.
type Prepared struct {
	l   *Lease
	is  *qubo.Ising // private snapshot of the problem, for hit verification
	pr  *qubo.CSR
	emb *chimera.Embedding
}

// Problem returns the prepared problem's private snapshot. Mutating it
// would desynchronize it from the compiled artifacts — treat as
// read-only.
func (p *Prepared) Problem() *qubo.Ising { return p.is }

// PrepareProblem compiles is for this lease: CSR + normalization, plus
// embedding and physical coefficients when the lease is QPU-backed. The
// snapshot it keeps is a deep copy, so later mutation of is cannot
// desynchronize a cached entry from its compiled artifacts.
func (l *Lease) PrepareProblem(is *qubo.Ising) (*Prepared, error) {
	if is.N == 0 {
		return nil, fmt.Errorf("annealer: empty problem")
	}
	prep := &Prepared{l: l, is: is.Clone()}
	if l.qpu != nil {
		emb, pr, err := l.qpu.prepareEmbedded(prep.is)
		if err != nil {
			return nil, err
		}
		prep.emb, prep.pr = emb, pr
	} else {
		pr := qubo.NewCSR(prep.is)
		pr.Normalize()
		prep.pr = pr
	}
	return prep, nil
}

// RunPrepared is Lease.Run against a prepared problem: bit-identical
// results, minus the per-call problem compile. prep must have come from
// this lease's PrepareProblem.
func (l *Lease) RunPrepared(prep *Prepared, init []int8, numReads int, r *rng.Source) (*Result, error) {
	if prep == nil || prep.l != l {
		return nil, fmt.Errorf("annealer: prepared problem does not belong to this lease")
	}
	p := l.p
	p.InitialState = init
	if numReads > 0 {
		p.NumReads = numReads
	}
	if p.NumReads > MaxReads {
		return nil, fmt.Errorf("annealer: %d reads exceed the per-read stream limit %d", p.NumReads, MaxReads)
	}
	if l.qpu != nil {
		return l.qpu.runEmbeddedCompiled(prep.is, prep.emb, prep.pr, p, l.read, l.bread, r)
	}
	return runLogicalCompiled(prep.is, prep.pr, p, l.read, l.bread, r)
}

// PrepCacheStats is a point-in-time snapshot of a cache's counters.
// Hits are verified hits; Collisions count lookups whose hash matched a
// resident entry with different content (served by a fresh, uncached
// compile); Misses led to a compile that was then inserted.
type PrepCacheStats struct {
	Hits, Misses, Evictions, Collisions uint64
}

// PrepCache is an LRU of Prepared problems keyed by (lease, problem
// content hash). It is safe for concurrent use, but a serving tier that
// needs deterministic eviction (and therefore deterministic counters)
// at any worker count should drive it from a single-threaded planning
// pass — see internal/fleet's execute pre-pass.
type PrepCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[prepKey]*list.Element
	stats PrepCacheStats
}

type prepKey struct {
	l    *Lease
	hash uint64
}

type prepEntry struct {
	key  prepKey
	prep *Prepared
}

// NewPrepCache returns a cache retaining at most capacity prepared
// problems (capacity ≥ 1).
func NewPrepCache(capacity int) *PrepCache {
	if capacity < 1 {
		panic("annealer: prep cache capacity must be ≥ 1")
	}
	return &PrepCache{cap: capacity, ll: list.New(), byKey: make(map[prepKey]*list.Element)}
}

// Get returns the lease's prepared form of is, compiling on miss and
// inserting the result. A hit is trusted only after full content
// verification against the entry's snapshot; a hash collision compiles
// fresh without touching the resident entry.
func (c *PrepCache) Get(l *Lease, is *qubo.Ising) (*Prepared, error) {
	k := prepKey{l, is.ContentHash()}
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		e := el.Value.(*prepEntry)
		if e.prep.is.Equal(is) {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			c.mu.Unlock()
			return e.prep, nil
		}
		c.stats.Collisions++
		c.mu.Unlock()
		return l.PrepareProblem(is)
	}
	c.stats.Misses++
	c.mu.Unlock()

	prep, err := l.PrepareProblem(is)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.byKey[k]; !ok {
		for len(c.byKey) >= c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*prepEntry).key)
			c.stats.Evictions++
		}
		c.byKey[k] = c.ll.PushFront(&prepEntry{key: k, prep: prep})
	}
	c.mu.Unlock()
	return prep, nil
}

// Stats returns a snapshot of the cache counters.
func (c *PrepCache) Stats() PrepCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of resident entries.
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
