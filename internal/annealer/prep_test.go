package annealer

import (
	"reflect"
	"testing"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func prepTestProblems(t *testing.T, count int) []*qubo.Ising {
	t.Helper()
	out := make([]*qubo.Ising, count)
	for i := range out {
		in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = in.Reduction.Ising
	}
	return out
}

// RunPrepared must be bit-identical to Lease.Run — the prepared form
// only skips the per-call compile — on both the logical and the
// embedded (QPU) paths, and for repeated runs of one Prepared.
func TestRunPreparedMatchesRun(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Reverse(0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int8, is.N)
	for i := range init {
		init[i] = 1
	}
	p := Params{
		Schedule: sc, NumReads: 10, SweepsPerMicrosecond: 30,
		ICE:    ICE{SigmaH: 0.02, SigmaJ: 0.01},
		Faults: FaultModel{ReadTimeoutRate: 0.1, CalibrationDriftRate: 0.1},
	}
	leases := map[string]*Lease{}
	l, err := NewLease(p)
	if err != nil {
		t.Fatal(err)
	}
	leases["logical"] = l
	if l, err = NewQPU2000Q().Lease(p); err != nil {
		t.Fatal(err)
	}
	leases["embedded"] = l
	for name, l := range leases {
		t.Run(name, func(t *testing.T) {
			direct, err := l.Run(is, init, 10, rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			prep, err := l.PrepareProblem(is)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 2; trial++ {
				got, err := l.RunPrepared(prep, init, 10, rng.New(3))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(direct.Samples, got.Samples) {
					t.Fatalf("trial %d: prepared samples diverge from Lease.Run", trial)
				}
				if direct.Best.Energy != got.Best.Energy || direct.Faults != got.Faults ||
					direct.BrokenChainRate != got.BrokenChainRate {
					t.Fatalf("trial %d: prepared result metadata diverges", trial)
				}
			}
		})
	}
}

// A Prepared is bound to the lease that compiled it.
func TestRunPreparedWrongLease(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := a.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunPrepared(prep, nil, 2, rng.New(1)); err == nil {
		t.Fatal("prepared problem from lease a must be rejected by lease b")
	}
	if _, err := a.RunPrepared(nil, nil, 2, rng.New(1)); err == nil {
		t.Fatal("nil prepared problem must be rejected")
	}
}

// PrepareProblem snapshots the problem: mutating the caller's Ising
// after preparing must not desynchronize the compiled artifacts.
func TestPreparedSnapshotIsolation(t *testing.T) {
	is := prepTestProblems(t, 1)[0]
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := l.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	want, err := l.RunPrepared(prep, nil, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	is.H[0] += 100 // caller mutates after preparing
	got, err := l.RunPrepared(prep, nil, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Samples, got.Samples) {
		t.Fatal("mutating the source problem changed a prepared run")
	}
}

// Cache behavior: verified hits, misses on first sight, LRU eviction at
// capacity, and recency updates on hit.
func TestPrepCacheHitMissEvict(t *testing.T) {
	ps := prepTestProblems(t, 3)
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	c := NewPrepCache(2)
	first, err := c.Get(l, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Get(l, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("second lookup of the same problem must return the cached Prepared")
	}
	if _, err := c.Get(l, ps[1]); err != nil {
		t.Fatal(err)
	}
	// Touch ps[0] so ps[1] is LRU, then insert ps[2] to evict it.
	if _, err := c.Get(l, ps[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(l, ps[2]); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get(l, ps[0]); err != nil || got != first {
		t.Fatalf("recently used entry was evicted (err %v)", err)
	}
	if _, err := c.Get(l, ps[1]); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	want := PrepCacheStats{Hits: 3, Misses: 4, Evictions: 2}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	// Distinct leases must not share entries even for the same problem.
	l2, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	other, err := c.Get(l2, ps[1])
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != want.Misses+1 {
		t.Fatalf("same problem under a different lease must miss; stats %+v", st)
	}
	if other.l != l2 {
		t.Fatal("cross-lease lookup returned another lease's Prepared")
	}
}

// A hash collision — same 64-bit content hash, different problem — must
// fall back to a fresh compile for the requester and leave the resident
// entry untouched. Real collisions are not constructible on demand, so
// the test plants one directly in the cache's internal map.
func TestPrepCacheCollisionFallback(t *testing.T) {
	ps := prepTestProblems(t, 2)
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLease(Params{Schedule: sc, SweepsPerMicrosecond: 30})
	if err != nil {
		t.Fatal(err)
	}
	c := NewPrepCache(4)
	resident, err := l.PrepareProblem(ps[0])
	if err != nil {
		t.Fatal(err)
	}
	// Register ps[0]'s compile under ps[1]'s hash: Get(ps[1]) now sees a
	// hash hit whose content verification must fail.
	k := prepKey{l, ps[1].ContentHash()}
	c.byKey[k] = c.ll.PushFront(&prepEntry{key: k, prep: resident})
	got, err := c.Get(l, ps[1])
	if err != nil {
		t.Fatal(err)
	}
	if got == resident {
		t.Fatal("collision served the resident entry's artifacts")
	}
	if !got.is.Equal(ps[1]) {
		t.Fatal("collision fallback compiled the wrong problem")
	}
	if st := c.Stats(); st.Collisions != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want exactly one collision and no hits", st)
	}
	if el, ok := c.byKey[k]; !ok || el.Value.(*prepEntry).prep != resident {
		t.Fatal("collision displaced the resident entry")
	}
	// The colliding problem still runs correctly through its fallback.
	direct, err := l.Run(ps[1], nil, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	viaCache, err := l.RunPrepared(got, nil, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Samples, viaCache.Samples) {
		t.Fatal("collision fallback produced different samples")
	}
}

// ContentHash/Equal are the cache's correctness foundation: equal
// content hashes equal, and any content difference — field value, edge
// weight, topology, offset — breaks both.
func TestIsingContentHashEqual(t *testing.T) {
	base := prepTestProblems(t, 1)[0]
	same := base.Clone()
	if base.ContentHash() != same.ContentHash() || !base.Equal(same) {
		t.Fatal("clone must hash and compare equal")
	}
	mutate := []func(*qubo.Ising){
		func(is *qubo.Ising) { is.H[1] += 1e-9 },
		func(is *qubo.Ising) { is.Offset++ },
		func(is *qubo.Ising) { is.Adj[0][0].J *= 1.0000001 },
		func(is *qubo.Ising) { is.SetCoupling(0, is.N-1, 12345) },
	}
	for i, f := range mutate {
		m := base.Clone()
		f(m)
		if base.Equal(m) {
			t.Fatalf("mutation %d not detected by Equal", i)
		}
		if base.ContentHash() == m.ContentHash() {
			t.Fatalf("mutation %d not reflected in ContentHash", i)
		}
	}
}
