package annealer

import (
	"fmt"
	"sync"

	"repro/internal/chimera"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// Params configures a batch of anneal reads (the N_s device calls of §2).
type Params struct {
	// Schedule is the anneal program (required).
	Schedule *Schedule
	// InitialState is the programmed classical state for reverse
	// annealing; required iff the schedule starts at s = 1.
	InitialState []int8
	// NumReads is the number of samples to draw (default 1).
	NumReads int
	// Engine simulates the quantum dynamics (default SVMC{}).
	Engine Engine
	// Profile sets the device energy scales (default DWave2000QProfile).
	Profile *Profile
	// SweepsPerMicrosecond converts schedule time into Monte-Carlo sweeps
	// (default 100). It is the simulation's "clock rate": TTS comparisons
	// must hold it fixed across solvers.
	SweepsPerMicrosecond float64
	// ICE adds control-error noise to the programmed coefficients on
	// every read (default none).
	ICE ICE
	// NoQuench disables the end-of-anneal quench. By default every read
	// is relaxed to its local minimum by zero-temperature steepest
	// descent before readout, modelling the freeze-out at the very end of
	// the schedule where B(s) dwarfs the thermal scale and the system
	// falls into the basin it occupies; without it, readout is polluted
	// by near-degenerate single-spin thermal flips that no hardware
	// anneal would report.
	NoQuench bool
	// Parallelism runs reads on up to this many goroutines (default 1:
	// sequential). Each read derives its own RNG stream from its index,
	// so results are bit-identical at any parallelism level.
	Parallelism int
}

func (p Params) withDefaults() (Params, error) {
	if p.Schedule == nil {
		return p, fmt.Errorf("annealer: nil schedule")
	}
	if err := p.Schedule.Validate(); err != nil {
		return p, err
	}
	if p.NumReads <= 0 {
		p.NumReads = 1
	}
	if p.Engine == nil {
		p.Engine = SVMC{}
	}
	if p.Profile == nil {
		prof := DWave2000QProfile()
		p.Profile = &prof
	}
	if err := p.Profile.Validate(); err != nil {
		return p, err
	}
	if p.SweepsPerMicrosecond == 0 {
		p.SweepsPerMicrosecond = 100
	}
	if p.SweepsPerMicrosecond < 0 {
		return p, fmt.Errorf("annealer: negative sweeps per microsecond")
	}
	return p, nil
}

// Result is the outcome of a batch of reads.
type Result struct {
	// Samples holds every read's measured state and its energy under the
	// ORIGINAL (unnormalized) problem.
	Samples []qubo.Sample
	// Best is the lowest-energy sample (§2: "the best sample is selected
	// as the final solution").
	Best qubo.Sample
	// ScheduleDuration is one read's anneal time in μs.
	ScheduleDuration float64
	// TotalAnnealTime = NumReads × ScheduleDuration (μs), the quantity
	// TTS-style metrics account.
	TotalAnnealTime float64
	// BrokenChainRate is the fraction of (read × chain) events where a
	// chain was not unanimous; zero for unembedded runs.
	BrokenChainRate float64
}

// Run draws reads from the simulated annealer for a logical (all-to-all
// capable) problem. The problem is normalized to the device coefficient
// range for the dynamics; reported energies are in the caller's original
// scale.
func Run(is *qubo.Ising, p Params, r *rng.Source) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if is.N == 0 {
		return nil, fmt.Errorf("annealer: empty problem")
	}
	if p.Schedule.StartsClassical() && len(p.InitialState) != is.N {
		return nil, fmt.Errorf("annealer: reverse anneal needs an initial state of %d spins, got %d", is.N, len(p.InitialState))
	}
	norm, _ := is.Normalized()
	res := &Result{ScheduleDuration: p.Schedule.Duration()}
	res.Samples = sampleReads(p.NumReads, p.Parallelism, r, func(rr *rng.Source) []int8 {
		prog := p.ICE.Perturb(norm, rr)
		spins := p.Engine.Anneal(prog, p.Schedule, *p.Profile, p.InitialState, p.SweepsPerMicrosecond, rr)
		if !p.NoQuench {
			spins = qubo.SteepestDescent(prog, spins).Spins
		}
		return spins
	}, is.Energy)
	res.Best = bestSample(res.Samples)
	res.TotalAnnealTime = float64(p.NumReads) * res.ScheduleDuration
	return res, nil
}

// sampleReads draws numReads samples, optionally across a worker pool.
// Read i always uses r.Split(i), so the result is independent of the
// parallelism level.
func sampleReads(numReads, parallelism int, r *rng.Source, anneal func(*rng.Source) []int8, energy func([]int8) float64) []qubo.Sample {
	samples := make([]qubo.Sample, numReads)
	oneRead := func(read int) {
		spins := anneal(r.Split(uint64(read)))
		samples[read] = qubo.Sample{Spins: spins, Energy: energy(spins)}
	}
	if parallelism <= 1 || numReads <= 1 {
		for read := 0; read < numReads; read++ {
			oneRead(read)
		}
		return samples
	}
	if parallelism > numReads {
		parallelism = numReads
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for read := range jobs {
				oneRead(read)
			}
		}()
	}
	for read := 0; read < numReads; read++ {
		jobs <- read
	}
	close(jobs)
	wg.Wait()
	return samples
}

// bestSample returns the lowest-energy sample (first wins ties).
func bestSample(samples []qubo.Sample) qubo.Sample {
	best := samples[0]
	for _, s := range samples[1:] {
		if s.Energy < best.Energy {
			best = s
		}
	}
	return best
}

// QPU couples the anneal simulation to the Chimera hardware model: logical
// problems are minor-embedded as cliques, run on the physical graph, and
// unembedded by majority vote — the full path a problem takes through the
// 2000Q.
type QPU struct {
	// Grid is the Chimera dimension (16 for the 2000Q).
	Grid int
	// ChainStrength overrides the ferromagnetic chain coupling; 0 means
	// chimera.RecommendedChainStrength per problem.
	ChainStrength float64
	// ProgrammingTime and ReadoutTime (μs) model the per-call and
	// per-read device overheads used by the pipeline experiments
	// (defaults: 10 ms programming, 123 μs readout, 2000Q-typical).
	ProgrammingTime float64
	ReadoutTime     float64
}

// NewQPU2000Q returns the paper's device: C_16 with typical overheads.
func NewQPU2000Q() *QPU {
	return &QPU{Grid: 16, ProgrammingTime: 10_000, ReadoutTime: 123}
}

// MaxProblemSize returns the largest embeddable clique.
func (q *QPU) MaxProblemSize() int { return chimera.MaxCliqueSize(q.Grid) }

// ServiceTime returns the wall-clock μs the device is busy for a batch of
// reads under a schedule: programming + reads × (anneal + readout).
func (q *QPU) ServiceTime(sc *Schedule, numReads int) float64 {
	return q.ProgrammingTime + float64(numReads)*(sc.Duration()+q.ReadoutTime)
}

// Run embeds the logical problem onto the smallest sufficient Chimera
// region (bounded by Grid), anneals the physical problem, and unembeds
// each read. Sample energies are logical-problem energies.
func (q *QPU) Run(logical *qubo.Ising, p Params, r *rng.Source) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if logical.N > q.MaxProblemSize() {
		return nil, fmt.Errorf("annealer: %d variables exceed QPU clique capacity %d", logical.N, q.MaxProblemSize())
	}
	m := chimera.MinGridFor(logical.N)
	if m > q.Grid {
		m = q.Grid
	}
	graph := chimera.NewGraph(m)
	emb, err := chimera.EmbedClique(graph, logical.N)
	if err != nil {
		return nil, err
	}
	cs := q.ChainStrength
	if cs == 0 {
		cs = chimera.RecommendedChainStrength(logical)
	}
	phys, err := emb.EmbedIsing(logical, cs)
	if err != nil {
		return nil, err
	}
	if p.Schedule.StartsClassical() {
		if len(p.InitialState) != logical.N {
			return nil, fmt.Errorf("annealer: reverse anneal needs an initial state of %d spins, got %d", logical.N, len(p.InitialState))
		}
		p.InitialState = emb.EmbedSpins(p.InitialState)
	}
	normPhys, _ := phys.Normalized()
	res := &Result{ScheduleDuration: p.Schedule.Duration()}
	// Chain breakage is counted on the RAW engine output — the state the
	// device's readout would see — before the quench heals chains on the
	// way to each sample's reported basin.
	totalBroken := 0
	var brokenMu sync.Mutex
	res.Samples = sampleReads(p.NumReads, p.Parallelism, r, func(rr *rng.Source) []int8 {
		prog := p.ICE.Perturb(normPhys, rr)
		physSpins := p.Engine.Anneal(prog, p.Schedule, *p.Profile, p.InitialState, p.SweepsPerMicrosecond, rr)
		_, b := emb.Unembed(physSpins)
		brokenMu.Lock()
		totalBroken += b
		brokenMu.Unlock()
		if !p.NoQuench {
			physSpins = qubo.SteepestDescent(prog, physSpins).Spins
		}
		return physSpins
	}, func([]int8) float64 { return 0 })
	for i := range res.Samples {
		spins, _ := emb.Unembed(res.Samples[i].Spins)
		res.Samples[i] = qubo.Sample{Spins: spins, Energy: logical.Energy(spins)}
	}
	if p.NumReads > 0 {
		res.BrokenChainRate = float64(totalBroken) / float64(p.NumReads*logical.N)
	}
	res.Best = bestSample(res.Samples)
	res.TotalAnnealTime = float64(p.NumReads) * res.ScheduleDuration
	return res, nil
}
