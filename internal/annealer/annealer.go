package annealer

import (
	"fmt"
	"sync"

	"repro/internal/chimera"
	"repro/internal/qubo"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// MaxReads bounds NumReads so per-read RNG stream derivation (uint64 read
// keys) and μs accounting (exact float64 integers) cannot overflow —
// requests beyond it are configuration errors, not workloads.
const MaxReads = 1 << 30

// Params configures a batch of anneal reads (the N_s device calls of §2).
type Params struct {
	// Schedule is the anneal program (required).
	Schedule *Schedule
	// InitialState is the programmed classical state for reverse
	// annealing; required iff the schedule starts at s = 1.
	InitialState []int8
	// NumReads is the number of samples to draw (default 1, max MaxReads).
	NumReads int
	// Engine simulates the quantum dynamics (default SVMC{}).
	Engine Engine
	// Profile sets the device energy scales (default DWave2000QProfile).
	Profile *Profile
	// SweepsPerMicrosecond converts schedule time into Monte-Carlo sweeps
	// (default 100). It is the simulation's "clock rate": TTS comparisons
	// must hold it fixed across solvers.
	SweepsPerMicrosecond float64
	// ICE adds control-error noise to the programmed coefficients on
	// every read (default none).
	ICE ICE
	// Faults injects hard device failures — programming failures, read
	// timeouts, chain-break storms, calibration drift (default none).
	Faults FaultModel
	// NoQuench disables the end-of-anneal quench. By default every read
	// is relaxed to its local minimum by zero-temperature steepest
	// descent before readout, modelling the freeze-out at the very end of
	// the schedule where B(s) dwarfs the thermal scale and the system
	// falls into the basin it occupies; without it, readout is polluted
	// by near-degenerate single-spin thermal flips that no hardware
	// anneal would report.
	NoQuench bool
	// Parallelism runs reads on up to this many goroutines (default 1:
	// sequential). Each read derives its own RNG stream from its index,
	// so results are bit-identical at any parallelism level.
	Parallelism int

	// Telemetry hooks — all optional and nil-safe. None of them touches
	// the RNG or the dynamics: a traced run's samples are bit-identical
	// to an untraced run's, and with every hook nil the hot path pays
	// nothing beyond a per-sweep nil check.

	// Trace receives per-read device spans (programming → anneal →
	// readout on the simulated-μs clock) and hard-fault events.
	Trace *telemetry.Tracer
	// Metrics receives batch counters: reads issued/survived, total
	// anneal μs, and faults by kind.
	Metrics *telemetry.Registry
	// Probe receives per-sweep engine observations (replica energies,
	// acceptance rates, s(t)) from the engine's read loop.
	Probe Probe
	// Timing lays the trace spans out with device overheads (programming,
	// readout μs). Results never depend on it. QPU.Run fills it from its
	// own ProgrammingTime/ReadoutTime when unset.
	Timing *DeviceTiming
}

func (p Params) withDefaults() (Params, error) {
	if p.Schedule == nil {
		return p, fmt.Errorf("annealer: nil schedule")
	}
	if err := p.Schedule.Validate(); err != nil {
		return p, err
	}
	if p.NumReads <= 0 {
		p.NumReads = 1
	}
	if p.NumReads > MaxReads {
		return p, fmt.Errorf("annealer: %d reads exceed the per-read stream limit %d", p.NumReads, MaxReads)
	}
	if p.Parallelism < 0 {
		return p, fmt.Errorf("annealer: negative parallelism %d", p.Parallelism)
	}
	if p.Engine == nil {
		p.Engine = SVMC{}
	}
	if p.Profile == nil {
		prof := DWave2000QProfile()
		p.Profile = &prof
	}
	if err := p.Profile.Validate(); err != nil {
		return p, err
	}
	if err := p.ICE.Validate(); err != nil {
		return p, err
	}
	if err := p.Faults.Validate(); err != nil {
		return p, err
	}
	if p.SweepsPerMicrosecond == 0 {
		p.SweepsPerMicrosecond = 100
	}
	if p.SweepsPerMicrosecond < 0 {
		return p, fmt.Errorf("annealer: negative sweeps per microsecond")
	}
	return p, nil
}

// Result is the outcome of a batch of reads.
type Result struct {
	// Samples holds every surviving read's measured state and its energy
	// under the ORIGINAL (unnormalized) problem. Reads lost to injected
	// timeouts are dropped; len(Samples) may be below NumReads when a
	// FaultModel is active.
	Samples []qubo.Sample
	// Best is the lowest-energy sample (§2: "the best sample is selected
	// as the final solution").
	Best qubo.Sample
	// ScheduleDuration is one read's anneal time in μs.
	ScheduleDuration float64
	// TotalAnnealTime = NumReads × ScheduleDuration (μs), the quantity
	// TTS-style metrics account. Timed-out reads still occupy the device,
	// so they are charged.
	TotalAnnealTime float64
	// BrokenChainRate is the fraction of (read × chain) events where a
	// chain was not unanimous; zero for unembedded runs.
	BrokenChainRate float64
	// Faults tallies the soft faults injected into this batch.
	Faults FaultStats
}

// readFault carries one read's fault flags; indexed per read so the
// parallel read loop tallies without shared state.
type readFault struct {
	timeout, storm, drift bool
}

// compactReads drops timed-out reads (keeping read order) and tallies the
// batch's fault statistics.
func compactReads(samples []qubo.Sample, faults []readFault) ([]qubo.Sample, FaultStats) {
	var stats FaultStats
	kept := samples[:0]
	for i, f := range faults {
		if f.timeout {
			stats.ReadTimeouts++
			continue
		}
		if f.storm {
			stats.ChainBreakStorms++
		}
		if f.drift {
			stats.CalibrationDrifts++
		}
		kept = append(kept, samples[i])
	}
	return kept, stats
}

// readScratch is the per-read working set that survives between reads of
// a batch: the RNG streams (split in place instead of allocated), the
// coefficient clone that per-read noise is programmed into, and the
// quench's local-field buffer.
type readScratch struct {
	rr, fr rng.Source
	prog   *qubo.CSR // lazily cloned from the batch base on first use
	field  []float64
}

// batch holds one Run call's shared compiled state: the base CSR problem
// every read programs from, and the scratch pool that makes steady-state
// reads allocation-free.
type batch struct {
	p     Params
	base  *qubo.CSR
	read  ReadFunc
	bread BatchReadFunc // lockstep kernel; nil when the engine has none
	pool  sync.Pool
}

func newBatch(p Params, base *qubo.CSR) (*batch, error) {
	if be, ok := p.Engine.(BatchEngine); ok {
		read, bread, err := be.PrepareBatch(p.Schedule, *p.Profile, p.SweepsPerMicrosecond)
		if err != nil {
			return nil, err
		}
		return newPreparedBatch(p, base, read, bread), nil
	}
	read, err := p.Engine.Prepare(p.Schedule, *p.Profile, p.SweepsPerMicrosecond)
	if err != nil {
		return nil, err
	}
	return newPreparedBatch(p, base, read, nil), nil
}

// newPreparedBatch builds a batch around an ALREADY compiled ReadFunc —
// the amortization a Lease provides: Engine.Prepare runs once per lease,
// not once per problem.
func newPreparedBatch(p Params, base *qubo.CSR, read ReadFunc, bread BatchReadFunc) *batch {
	b := &batch{p: p, base: base, read: read, bread: bread}
	b.pool.New = func() any {
		return &readScratch{field: make([]float64, base.N)}
	}
	return b
}

// program returns the problem read should run against: the shared base
// when no noise applies, or the scratch's pooled coefficient clone with
// ICE and (when the fault fires) calibration drift programmed in. The
// noise draw order matches the adjacency-list ICE/drift path: h in spin
// order (nonzero entries only), then couplings in (i, j), i < j order.
func (b *batch) program(st *readScratch, drifted *bool) *qubo.CSR {
	ice := b.p.ICE
	*drifted = b.p.Faults.driftFires(&st.fr)
	if !ice.enabled() && !*drifted {
		return b.base
	}
	if st.prog == nil {
		st.prog = b.base.CloneCoeffs()
	} else {
		st.prog.CopyCoeffsFrom(b.base)
	}
	if ice.enabled() {
		applyGaussianCSR(st.prog, ice.SigmaH, ice.SigmaJ, &st.rr)
	}
	if *drifted {
		sigma := b.p.Faults.driftSigma()
		applyGaussianCSR(st.prog, sigma, sigma, &st.fr)
	}
	return st.prog
}

// oneRead runs read index `read` of the batch: stream derivation, fault
// draws, programming, dynamics, quench, storm. out receives the measured
// state; the returned problem is what the read actually ran against.
func (b *batch) oneRead(read int, root *rng.Source, out []int8, f *readFault) (ran bool) {
	st := b.pool.Get().(*readScratch)
	defer b.pool.Put(st)
	root.SplitInto(&st.rr, uint64(read))
	// Split never advances rr: dynamics stay fault-independent.
	st.rr.SplitStringInto(&st.fr, "fault")
	if b.p.Faults.readTimesOut(&st.fr) {
		f.timeout = true
		return false
	}
	prog := b.program(st, &f.drift)
	var probe Probe
	if b.p.Probe != nil {
		probe = readProbe{b.p.Probe, read}
	}
	b.read(prog, b.p.InitialState, out, &st.rr, probe)
	if !b.p.NoQuench {
		prog.Quench(out, st.field)
	}
	f.storm = b.p.Faults.storm(out, &st.fr)
	return true
}

// groupReads runs reads [lo, hi) of the batch as one lockstep group
// through the engine's BatchReadFunc. Per-read stream derivation, fault
// draws and programming happen in read order exactly as oneRead performs
// them — only the dynamics are interleaved, and each read's private
// stream makes that interleaving invisible — so results are bit-identical
// to the sequential path. post runs once per surviving read, in read
// order, and owns everything after the dynamics (quench, storm,
// unembedding, sample capture); timed-out reads are marked in faults and
// skipped.
func (b *batch) groupReads(lo, hi int, root *rng.Source, spins []int8, n int,
	faults []readFault, post func(read int, prog *qubo.CSR, out []int8, st *readScratch)) {
	var sts [lockstepWidth]*readScratch
	var group [lockstepWidth]BatchRead
	var member [lockstepWidth]int
	ng := 0
	for read := lo; read < hi; read++ {
		st := b.pool.Get().(*readScratch)
		sts[read-lo] = st
		root.SplitInto(&st.rr, uint64(read))
		// Split never advances rr: dynamics stay fault-independent.
		st.rr.SplitStringInto(&st.fr, "fault")
		if b.p.Faults.readTimesOut(&st.fr) {
			faults[read].timeout = true
			continue
		}
		group[ng] = BatchRead{
			Prog: b.program(st, &faults[read].drift),
			Out:  spins[read*n : (read+1)*n],
			Rng:  &st.rr,
		}
		member[ng] = read
		ng++
	}
	if ng > 0 {
		b.bread(b.p.InitialState, group[:ng])
	}
	for k := 0; k < ng; k++ {
		read := member[k]
		post(read, group[k].Prog, group[k].Out, sts[read-lo])
	}
	for j := lo; j < hi; j++ {
		b.pool.Put(sts[j-lo])
	}
}

// groupCount returns the number of lockstep groups covering n reads.
func groupCount(n int) int { return (n + lockstepWidth - 1) / lockstepWidth }

// Run draws reads from the simulated annealer for a logical (all-to-all
// capable) problem. The problem is normalized to the device coefficient
// range for the dynamics; reported energies are in the caller's original
// scale.
//
// The hot path is compiled once per batch: the normalized problem becomes
// a flat CSR view shared read-only by every read, the engine precomputes
// its per-sweep schedule tables in Prepare, and per-read scratch (engine
// state, coefficient clones, quench fields, sample spins) comes from
// pools or one flat block — steady-state batches allocate O(1) beyond
// the returned samples.
//
// With an active FaultModel, Run returns a *FaultError when the batch
// programming fails or every read is lost; surviving soft faults are
// reported in Result.Faults.
func Run(is *qubo.Ising, p Params, r *rng.Source) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	return runLogical(is, p, nil, nil, r)
}

// runLogical is the shared logical-problem body behind Run and
// Lease.Run: pre-flight checks, the programming-fault draw, the CSR
// compile, and the read loop. A non-nil read skips Engine.Prepare (the
// lease compiled it already, along with the optional lockstep bread);
// p must have passed withDefaults.
func runLogical(is *qubo.Ising, p Params, read ReadFunc, bread BatchReadFunc, r *rng.Source) (*Result, error) {
	if is.N == 0 {
		return nil, fmt.Errorf("annealer: empty problem")
	}
	pr := qubo.NewCSR(is)
	pr.Normalize()
	return runLogicalCompiled(is, pr, p, read, bread, r)
}

// runLogicalCompiled runs a batch whose CSR compile already happened —
// either just now (runLogical) or once, cached, via Lease.RunPrepared.
// pr must be the normalized CSR of is; it is only read, never written,
// so one compiled problem may serve concurrent calls.
func runLogicalCompiled(is *qubo.Ising, pr *qubo.CSR, p Params, read ReadFunc, bread BatchReadFunc, r *rng.Source) (*Result, error) {
	if p.Schedule.StartsClassical() && len(p.InitialState) != is.N {
		return nil, fmt.Errorf("annealer: reverse anneal needs an initial state of %d spins, got %d", is.N, len(p.InitialState))
	}
	// Batch-level fault: the device rejects the programming cycle. Drawn
	// from a dedicated split so the per-read streams below are untouched.
	if p.Faults.ProgrammingFails(r.SplitString("fault/programming")) {
		p.emitHardFault(FaultProgramming)
		return nil, &FaultError{Kind: FaultProgramming}
	}
	var b *batch
	if read != nil {
		b = newPreparedBatch(p, pr, read, bread)
	} else {
		var err error
		b, err = newBatch(p, pr)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{ScheduleDuration: p.Schedule.Duration()}
	samples := make([]qubo.Sample, p.NumReads)
	faults := make([]readFault, p.NumReads)
	// One flat spin block backs every sample, so the batch performs O(1)
	// allocations regardless of NumReads.
	spins := make([]int8, p.NumReads*is.N)
	if b.bread != nil && p.Probe == nil {
		// Lockstep path: reads advance through the sweep program in groups
		// of lockstepWidth; per-read streams keep the outcome bit-identical
		// to the sequential loop below (TestLockstepMatchesSequential).
		finish := func(read int, prog *qubo.CSR, out []int8, st *readScratch) {
			if !p.NoQuench {
				prog.Quench(out, st.field)
			}
			faults[read].storm = p.Faults.storm(out, &st.fr)
			samples[read] = qubo.Sample{Spins: out, Energy: is.Energy(out)}
		}
		parallelFor(groupCount(p.NumReads), p.Parallelism, func(g int) {
			lo, hi := g*lockstepWidth, (g+1)*lockstepWidth
			if hi > p.NumReads {
				hi = p.NumReads
			}
			b.groupReads(lo, hi, r, spins, is.N, faults, finish)
		})
	} else {
		parallelFor(p.NumReads, p.Parallelism, func(read int) {
			out := spins[read*is.N : (read+1)*is.N]
			if b.oneRead(read, r, out, &faults[read]) {
				samples[read] = qubo.Sample{Spins: out, Energy: is.Energy(out)}
			}
		})
	}
	res.Samples, res.Faults = compactReads(samples, faults)
	res.TotalAnnealTime = float64(p.NumReads) * res.ScheduleDuration
	p.emitBatchTelemetry(res, faults)
	if len(res.Samples) == 0 {
		p.emitHardFault(FaultAllReadsLost)
		return nil, &FaultError{Kind: FaultAllReadsLost}
	}
	res.Best = bestSample(res.Samples)
	return res, nil
}

// parallelFor runs body(0..n-1), optionally across a worker pool. Each
// worker owns one contiguous index chunk — no per-index channel
// operations, whose send/recv overhead is measurable when reads are
// short. Callers derive read i's RNG stream from its index, so the
// result is independent of the parallelism level and of the chunk
// assignment.
func parallelFor(n, parallelism int, body func(i int)) {
	if parallelism <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if parallelism > n {
		parallelism = n
	}
	chunk := (n + parallelism - 1) / parallelism
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// bestSample returns the lowest-energy sample (first wins ties).
func bestSample(samples []qubo.Sample) qubo.Sample {
	best := samples[0]
	for _, s := range samples[1:] {
		if s.Energy < best.Energy {
			best = s
		}
	}
	return best
}

// QPU couples the anneal simulation to the Chimera hardware model: logical
// problems are minor-embedded as cliques, run on the physical graph, and
// unembedded by majority vote — the full path a problem takes through the
// 2000Q.
type QPU struct {
	// Grid is the Chimera dimension (16 for the 2000Q).
	Grid int
	// ChainStrength overrides the ferromagnetic chain coupling; 0 means
	// chimera.RecommendedChainStrength per problem.
	ChainStrength float64
	// ProgrammingTime and ReadoutTime (μs) model the per-call and
	// per-read device overheads used by the pipeline experiments
	// (defaults: 10 ms programming, 123 μs readout, 2000Q-typical).
	ProgrammingTime float64
	ReadoutTime     float64
}

// NewQPU2000Q returns the paper's device: C_16 with typical overheads.
func NewQPU2000Q() *QPU {
	return &QPU{Grid: 16, ProgrammingTime: 10_000, ReadoutTime: 123}
}

// MaxProblemSize returns the largest embeddable clique.
func (q *QPU) MaxProblemSize() int { return chimera.MaxCliqueSize(q.Grid) }

// ServiceTime returns the wall-clock μs the device is busy for a batch of
// reads under a schedule: programming + reads × (anneal + readout).
func (q *QPU) ServiceTime(sc *Schedule, numReads int) float64 {
	return q.ProgrammingTime + float64(numReads)*(sc.Duration()+q.ReadoutTime)
}

// Run embeds the logical problem onto the smallest sufficient Chimera
// region (bounded by Grid), anneals the physical problem, and unembeds
// each read. Sample energies are logical-problem energies.
//
// Injected faults behave as in the logical Run; chain-break storms corrupt
// the PHYSICAL readout, so majority-vote unembedding partially heals them
// — chain redundancy is a storm mitigation the logical path lacks.
func (q *QPU) Run(logical *qubo.Ising, p Params, r *rng.Source) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	return q.runEmbedded(logical, p, nil, nil, r)
}

// runEmbedded is the shared embedded-problem body behind QPU.Run and
// Lease.Run: embedding, pre-flight checks, the programming-fault draw,
// and the physical read loop with per-read unembedding. A non-nil read
// skips Engine.Prepare (the lease compiled it already, along with the
// optional lockstep bread); p must have passed withDefaults.
func (q *QPU) runEmbedded(logical *qubo.Ising, p Params, read ReadFunc, bread BatchReadFunc, r *rng.Source) (*Result, error) {
	emb, prPhys, err := q.prepareEmbedded(logical)
	if err != nil {
		return nil, err
	}
	return q.runEmbeddedCompiled(logical, emb, prPhys, p, read, bread, r)
}

// prepareEmbedded performs the per-problem compile of the embedded path:
// clique embedding onto the smallest sufficient Chimera region, chain
// strength, physical coefficients, CSR compile, normalization. The
// result depends only on (QPU, problem), so Lease.PrepareProblem caches
// it across calls.
func (q *QPU) prepareEmbedded(logical *qubo.Ising) (*chimera.Embedding, *qubo.CSR, error) {
	if logical.N > q.MaxProblemSize() {
		return nil, nil, fmt.Errorf("annealer: %d variables exceed QPU clique capacity %d", logical.N, q.MaxProblemSize())
	}
	m := chimera.MinGridFor(logical.N)
	if m > q.Grid {
		m = q.Grid
	}
	graph := chimera.NewGraph(m)
	emb, err := chimera.EmbedClique(graph, logical.N)
	if err != nil {
		return nil, nil, err
	}
	cs := q.ChainStrength
	if cs == 0 {
		cs = chimera.RecommendedChainStrength(logical)
	}
	phys, err := emb.EmbedIsing(logical, cs)
	if err != nil {
		return nil, nil, err
	}
	prPhys := qubo.NewCSR(phys)
	prPhys.Normalize()
	return emb, prPhys, nil
}

// runEmbeddedCompiled is runEmbedded after the compile: prPhys must be
// the normalized physical CSR of logical under emb. Like
// runLogicalCompiled it only reads the compiled artifacts, so a cached
// (emb, prPhys) pair may serve concurrent calls.
func (q *QPU) runEmbeddedCompiled(logical *qubo.Ising, emb *chimera.Embedding, prPhys *qubo.CSR,
	p Params, read ReadFunc, bread BatchReadFunc, r *rng.Source) (*Result, error) {
	if p.Schedule.StartsClassical() {
		if len(p.InitialState) != logical.N {
			return nil, fmt.Errorf("annealer: reverse anneal needs an initial state of %d spins, got %d", logical.N, len(p.InitialState))
		}
		p.InitialState = emb.EmbedSpins(p.InitialState)
	}
	// The QPU knows its own overheads; fill the span-layout timing model
	// unless the caller pinned one (telemetry only — results unaffected).
	if p.Timing == nil {
		p.Timing = &DeviceTiming{ProgrammingMicros: q.ProgrammingTime, ReadoutMicros: q.ReadoutTime}
	}
	if p.Faults.ProgrammingFails(r.SplitString("fault/programming")) {
		p.emitHardFault(FaultProgramming)
		return nil, &FaultError{Kind: FaultProgramming}
	}
	var b *batch
	if read != nil {
		b = newPreparedBatch(p, prPhys, read, bread)
	} else {
		var err error
		b, err = newBatch(p, prPhys)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{ScheduleDuration: p.Schedule.Duration()}
	samples := make([]qubo.Sample, p.NumReads)
	faults := make([]readFault, p.NumReads)
	// Flat blocks back both the physical readout and the unembedded
	// logical samples — O(1) allocations per batch.
	physSpins := make([]int8, p.NumReads*prPhys.N)
	logSpins := make([]int8, p.NumReads*logical.N)
	// Chain breakage is counted on the RAW engine output — the state the
	// device's readout would see — before the quench heals chains on the
	// way to each sample's reported basin, and before any storm.
	broken := make([]int, p.NumReads)
	if b.bread != nil && p.Probe == nil {
		// Lockstep path over the physical problem; mirrors runLogical.
		finish := func(read int, prog *qubo.CSR, phys []int8, st *readScratch) {
			logical2 := logSpins[read*logical.N : (read+1)*logical.N]
			broken[read] = emb.UnembedInto(logical2, phys)
			if !p.NoQuench {
				prog.Quench(phys, st.field)
			}
			faults[read].storm = p.Faults.storm(phys, &st.fr)
			emb.UnembedInto(logical2, phys)
			samples[read] = qubo.Sample{Spins: logical2, Energy: logical.Energy(logical2)}
		}
		parallelFor(groupCount(p.NumReads), p.Parallelism, func(g int) {
			lo, hi := g*lockstepWidth, (g+1)*lockstepWidth
			if hi > p.NumReads {
				hi = p.NumReads
			}
			b.groupReads(lo, hi, r, physSpins, b.base.N, faults, finish)
		})
	} else {
		parallelFor(p.NumReads, p.Parallelism, func(read int) {
			phys := physSpins[read*b.base.N : (read+1)*b.base.N]
			logical2 := logSpins[read*logical.N : (read+1)*logical.N]
			st := b.pool.Get().(*readScratch)
			r.SplitInto(&st.rr, uint64(read))
			st.rr.SplitStringInto(&st.fr, "fault")
			if b.p.Faults.readTimesOut(&st.fr) {
				faults[read].timeout = true
				b.pool.Put(st)
				return
			}
			prog := b.program(st, &faults[read].drift)
			var probe Probe
			if p.Probe != nil {
				probe = readProbe{p.Probe, read}
			}
			b.read(prog, p.InitialState, phys, &st.rr, probe)
			broken[read] = emb.UnembedInto(logical2, phys)
			if !p.NoQuench {
				prog.Quench(phys, st.field)
			}
			faults[read].storm = p.Faults.storm(phys, &st.fr)
			emb.UnembedInto(logical2, phys)
			samples[read] = qubo.Sample{Spins: logical2, Energy: logical.Energy(logical2)}
			b.pool.Put(st)
		})
	}
	res.Samples, res.Faults = compactReads(samples, faults)
	res.TotalAnnealTime = float64(p.NumReads) * res.ScheduleDuration
	p.emitBatchTelemetry(res, faults)
	if len(res.Samples) == 0 {
		p.emitHardFault(FaultAllReadsLost)
		return nil, &FaultError{Kind: FaultAllReadsLost}
	}
	totalBroken := 0
	for read, br := range broken {
		if !faults[read].timeout {
			totalBroken += br
		}
	}
	res.BrokenChainRate = float64(totalBroken) / float64(len(res.Samples)*logical.N)
	if p.Metrics != nil {
		p.Metrics.Gauge("annealer_broken_chain_rate").Set(res.BrokenChainRate)
	}
	res.Best = bestSample(res.Samples)
	return res, nil
}
