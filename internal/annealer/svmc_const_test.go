package annealer

import (
	"math"
	"testing"
)

// TestSVMCStartConstants pins the exact trigonometric values SVMC's
// start-state initialization hoists out of its loops (svmc.go). The
// forward start writes the literals cos(π/2) = 0 is NOT assumed —
// rotors start at θ = π/2 with z = 0 by definition — but sinT[i] = 1
// relies on sin(π/2) evaluating to exactly 1. The reverse start writes
// θ ∈ {0, π} with z = ±1 and sinT ∈ {0, sin π}; sin 0 = 0, cos 0 = 1
// and cos π = −1 are exact in IEEE-754, while sin π is the nonzero
// libm value at the double nearest π, so the hoisted constant must stay
// bit-identical to a fresh math.Sin call. If a Go release ever changed
// any of these, reverse/forward anneals would silently stop being
// bit-reproducible against committed goldens — this test turns that
// into a loud failure.
func TestSVMCStartConstants(t *testing.T) {
	if v := math.Sin(math.Pi / 2); v != 1 {
		t.Errorf("sin(π/2) = %x, want exactly 1", v)
	}
	if v := math.Cos(0); v != 1 {
		t.Errorf("cos(0) = %x, want exactly 1", v)
	}
	if v := math.Sin(0); v != 0 || math.Signbit(v) {
		t.Errorf("sin(0) = %x, want exactly +0", v)
	}
	if v := math.Cos(math.Pi); v != -1 {
		t.Errorf("cos(π) = %x, want exactly -1", v)
	}
	// sin π is NOT zero: math.Pi is below π, so sin(math.Pi) is a
	// residual ≈ 1.2246e-16. The reverse start stores this value for
	// down spins; pin the bit pattern of Go's implementation (slightly
	// off the correctly-rounded 0x3ca1a62633145c07 — that inaccuracy is
	// harmless, but it must not drift between releases, or reverse
	// anneals stop reproducing committed goldens).
	sinPi := math.Sin(math.Pi)
	if sinPi == 0 {
		t.Error("sin(math.Pi) evaluated to 0; the hoisted reverse-start constant assumes a nonzero residual")
	}
	if got := math.Float64bits(sinPi); got != 0x3ca1a62633145c00 {
		t.Errorf("sin(math.Pi) bits = %#x, want 0x3ca1a62633145c00", got)
	}
}
