package annealer

import "math"

// The Metropolis acceptance test u < exp(−x) consumes most of both
// engines' sweep time when evaluated with math.Exp per uphill proposal.
// But the dynamics only need the BOOLEAN, and exp is monotone: a coarse
// table of exp at grid points brackets exp(−x) between rigorous bounds,
// so almost every draw resolves against the bracket with two compares.
// Only draws landing inside the bracket — a few percent, the bracket
// being ~3% of the local value — fall back to math.Exp, so the outcome
// is bit-identical to evaluating math.Exp every time.

const (
	// expGridStep is the bracket resolution: 32 slots per unit of x.
	expGridStep = 32
	// expGridMax covers x < 40; beyond it exp(−x) < 4.3e−18, smaller
	// than the smallest nonzero Float64() draw (2⁻⁵³ ≈ 1.1e−16).
	expGridMax = 40 * expGridStep
)

// expBounds interleaves the bracket for slot k at [2k, 2k+1]:
// expBounds[2k] ≥ exp(−x) for all x ≥ k/32 and expBounds[2k+1] ≤ exp(−x)
// for all x ≤ (k+1)/32, so one acceptance test touches one cache line.
// The 1e−9 margins dwarf every rounding error in the table construction
// and the x·32 slot index.
var expBounds [2 * (expGridMax + 1)]float64

func init() {
	for k := 0; k <= expGridMax; k++ {
		expBounds[2*k] = math.Exp(-float64(k)/expGridStep) * (1 + 1e-9)
		expBounds[2*k+1] = math.Exp(-float64(k+1)/expGridStep) * (1 - 1e-9)
	}
}

// metroBracket resolves u < exp(−x) against the bracket alone: +1 means
// accept, −1 reject, 0 undecided (the draw landed inside the bracket) —
// undecided must be settled by metropolisExpExact. It contains no calls,
// so it inlines into the engines' proposal loops.
//
// Past the table (x ≥ 40, up to one rounding of x·32) exp(−x) < 4.3e−18
// is strictly below 2⁻⁵³, so every u ≥ 2⁻⁵³ rejects without touching the
// table — this is the frozen tail of the anneal, where uphill costs
// dwarf the temperature and the old unconditional math.Exp fallback
// burned ~20 ns per proposal. Since Float64() draws are multiples of
// 2⁻⁵³, the only engine draw the tail cannot settle is u == 0
// (probability 2⁻⁵³): whether it accepts depends on whether exp(−x) has
// underflowed to exactly 0, which the exact comparison gets right.
func metroBracket(u, x float64) int32 {
	k := uint(x * expGridStep)
	if k >= expGridMax {
		if u >= 0x1p-53 {
			return -1
		}
		return 0
	}
	if u >= expBounds[2*k] {
		return -1
	}
	if u < expBounds[2*k+1] {
		return 1
	}
	return 0
}

// metropolisExp reports u < exp(−x) for x > 0, bit-identically to
// computing math.Exp(−x) — the bracket only short-circuits decisions the
// exact comparison could not decide differently.
func metropolisExp(u, x float64) bool {
	v := metroBracket(u, x)
	return v > 0 || (v == 0 && metropolisExpExact(u, x))
}

// metropolisExpExact is the math.Exp fallback. It also covers x ≥ 40
// directly: there exp(−x) is smaller than the smallest nonzero Float64()
// draw, so u < exp(−x) is false for every u except u == 0, which the
// comparison itself gets right (including after exp underflows to 0).
// Kept out of line so metropolisExp fits the inlining budget.
//
//go:noinline
func metropolisExpExact(u, x float64) bool {
	return u < math.Exp(-x)
}
