package annealer

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// SVMC is the spin-vector Monte Carlo engine (Shin, Smith, Smolin &
// Vazirani's classical model of D-Wave dynamics): each qubit i is a
// classical rotor with angle θ_i ∈ [0, π], with energy
//
//	E(θ; s) = −A(s)/2·Σ sin θ_i
//	        + B(s)/2·(Σ h_i·cos θ_i + Σ J_ij·cos θ_i·cos θ_j),
//
// evolved by Metropolis updates at the device temperature while s(t)
// follows the anneal schedule. Measurement projects each rotor to
// sign(cos θ).
//
// The model reproduces the schedule physics the paper's comparison rests
// on: at small s the transverse term dominates and rotors sit near π/2
// (random measurement), near s = 1 the problem term with β·B/2 ≫ 1
// freezes the rotors (classical memory), and in between quantum-style
// fluctuations let a reverse anneal escape shallow local minima around
// its programmed initial state.
// The zero value proposes fresh uniform angles per update (the original
// SVMC of Shin et al.). TFMoves switches to transverse-field-scaled
// proposals (the "SVMC-TF" variant of Albash et al.): θ' = θ +
// u·π·A(s)/(A(s)+B(s)) with occasional global jumps at the same rate, so
// move sizes shrink as the problem Hamiltonian overtakes the driver and
// the dynamics freeze out hard. TF moves retain reverse-anneal initial
// states essentially perfectly but also block the local cluster repairs
// that make a hybrid's reverse anneal useful, so the uniform-move model
// plus the device's final quench (annealer.Params) is the calibrated
// default; TF remains available for ablation.
type SVMC struct {
	TFMoves bool
	// MinMoveScale floors the TF proposal width (fraction of π) so the
	// frozen regime retains a sliver of ergodicity (default 0.02).
	MinMoveScale float64
}

// Name implements Engine.
func (e SVMC) Name() string {
	if e.TFMoves {
		return "svmc-tf"
	}
	return "svmc"
}

// moveScale is the TF proposal width as a fraction of π: A/(A+B),
// floored. Early in the schedule (A ≫ B) rotors make full-range moves;
// as the problem Hamiltonian overtakes the driver the moves shrink and
// the dynamics freeze out.
func moveScale(a, b, floor float64) float64 {
	if a+b <= 0 {
		return 1
	}
	s := a / (a + b)
	if s < floor {
		s = floor
	}
	return s
}

// svmcScratch is one read's working state, pooled per batch. sinT caches
// sin θ_i alongside the cos θ_i cache z, so a proposal evaluates one
// fused Sincos for the proposed angle instead of three transcendentals.
type svmcScratch struct {
	theta, z, sinT, zField []float64
	probeSpins             []int8
}

func (sc *svmcScratch) ensure(n int) {
	if cap(sc.theta) < n {
		sc.theta = make([]float64, n)
		sc.z = make([]float64, n)
		sc.sinT = make([]float64, n)
		sc.zField = make([]float64, n)
		sc.probeSpins = make([]int8, n)
	}
	sc.theta = sc.theta[:n]
	sc.z = sc.z[:n]
	sc.sinT = sc.sinT[:n]
	sc.zField = sc.zField[:n]
	sc.probeSpins = sc.probeSpins[:n]
}

// Prepare implements Engine: it compiles the sweep program — s(t), A(s),
// B(s) and, for TF moves, the per-sweep proposal scale — once for the
// whole batch, and hands back a read function whose scratch (rotor
// angles, cos-θ cache, incremental z-field) is pooled across reads.
func (e SVMC) Prepare(sc *Schedule, prof Profile, sweepsPerMicrosecond float64) (ReadFunc, error) {
	tab, err := newSweepTable(sc, prof, sweepsPerMicrosecond)
	if err != nil {
		return nil, err
	}
	beta := 1 / prof.TemperatureGHz
	minScale := e.MinMoveScale
	if minScale <= 0 {
		minScale = 0.02
	}
	// TF proposal widths are pure functions of the sweep's (A, B): one
	// table shared by every read instead of a divide per sweep per read.
	var scale []float64
	if e.TFMoves {
		scale = make([]float64, tab.sweeps())
		for i := range scale {
			scale[i] = moveScale(tab.a[i], tab.b[i], minScale)
		}
	}
	startsClassical := sc.StartsClassical()
	pool := &sync.Pool{New: func() any { return new(svmcScratch) }}
	return func(pr *qubo.CSR, init []int8, out []int8, r *rng.Source, probe Probe) {
		st := pool.Get().(*svmcScratch)
		st.ensure(pr.N)
		e.read(pr, tab, scale, beta, startsClassical, init, out, st, r, probe)
		pool.Put(st)
	}, nil
}

// read evolves one SVMC read. It draws from r in exactly the same order
// regardless of probe, so probed and unprobed runs are bit-identical.
func (e SVMC) read(pr *qubo.CSR, tab *sweepTable, scale []float64, beta float64,
	startsClassical bool, init, out []int8, st *svmcScratch, r *rng.Source, probe Probe) {
	n := pr.N
	theta, z, sinT, zField := st.theta, st.z, st.sinT, st.zField
	if startsClassical {
		if len(init) != n {
			panic("annealer: SVMC reverse anneal requires an initial state")
		}
		// Loop-invariant transcendentals hoisted: cos 0 = 1, sin 0 = 0 and
		// cos π = −1 are exact; sin π is the (nonzero) libm value at the
		// double nearest π and must stay bit-identical to math.Sin, which
		// TestSVMCStartConstants pins.
		sinPi := math.Sin(math.Pi)
		for i, s := range init {
			if s > 0 {
				theta[i] = 0
				z[i] = 1
				sinT[i] = 0
			} else {
				theta[i] = math.Pi
				z[i] = -1
				sinT[i] = sinPi
			}
		}
	} else {
		// Forward start: rotors aligned with the transverse field.
		// sin(π/2) evaluates to exactly 1 (TestSVMCStartConstants).
		for i := range theta {
			theta[i] = math.Pi / 2
			z[i] = 0
			sinT[i] = 1
		}
	}
	// zField[i] = h_i + Σ_j J_ij·cos θ_j, maintained incrementally.
	cols, w, offs := pr.Cols, pr.W, pr.Offsets
	for i := 0; i < n; i++ {
		f := pr.H[i]
		for k := offs[i]; k < offs[i+1]; k++ {
			f += w[k] * z[cols[k]]
		}
		zField[i] = f
	}

	// The sweep loop advances the generator in locals (see fastrand.go);
	// the draw sequence — index, optional TF gate, proposal angle, one
	// uniform per uphill proposal — is bit-identical to r.Intn/r.Float64.
	nb := uint64(n)
	negnb := lemireThreshold(n)
	rs0, rs1, rs2, rs3 := r.State()
	sweeps := tab.sweeps()
	for sweep := 0; sweep < sweeps; sweep++ {
		a := tab.a[sweep]
		b := tab.b[sweep]
		sc := 1.0
		if scale != nil {
			sc = scale[sweep]
		}
		accepted := 0
		for k := 0; k < n; k++ {
			var x uint64
			x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
			hi, lo := bits.Mul64(x, nb)
			for lo < negnb {
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				hi, lo = bits.Mul64(x, nb)
			}
			i := int(hi)
			global := scale == nil
			if !global {
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				global = float64(x>>11)*(1.0/(1<<53)) < sc
			}
			var nt, sinNt, nz float64
			if global {
				// Global move: a fresh uniform angle. Under TF scaling
				// these occur at rate A/(A+B) — the surrogate for the
				// multi-spin tunnelling channel that closes as the
				// transverse field is suppressed. The draw u is the angle
				// in units of π, so sinCosPi needs no argument reduction;
				// the current angle's sine comes from the sinT cache.
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				u := float64(x>>11) * (1.0 / (1 << 53))
				nt = math.Pi * u
				sinNt, nz = sinCosPi(u)
			} else {
				// Local TF-scaled move around the current angle,
				// reflected into [0, π].
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				nt = theta[i] + (2*(float64(x>>11)*(1.0/(1<<53)))-1)*math.Pi*sc
				if nt < 0 {
					nt = -nt
				}
				if nt > math.Pi {
					nt = 2*math.Pi - nt
				}
				u := nt * (1 / math.Pi)
				if u > 1 {
					u = 1 // guard the π·(1/π) rounding at nt = π
				}
				sinNt, nz = sinCosPi(u)
			}
			dE := -a/2*(sinNt-sinT[i]) + b/2*(nz-z[i])*zField[i]
			accept := dE <= 0
			if !accept {
				x, rs0, rs1, rs2, rs3 = xoshiroNext(rs0, rs1, rs2, rs3)
				u := float64(x>>11) * (1.0 / (1 << 53))
				xx := beta * dE
				v := metroBracket(u, xx)
				accept = v > 0 || (v == 0 && metropolisExpExact(u, xx))
			}
			if accept {
				accepted++
				dz := nz - z[i]
				theta[i] = nt
				z[i] = nz
				sinT[i] = sinNt
				for kk := offs[i]; kk < offs[i+1]; kk++ {
					zField[cols[kk]] += w[kk] * dz
				}
			}
		}
		if probe != nil {
			for i, zi := range z {
				if zi >= 0 {
					st.probeSpins[i] = 1
				} else {
					st.probeSpins[i] = -1
				}
			}
			probe.ObserveSweep(SweepObservation{
				Sweep: sweep, TotalSweeps: sweeps, TimeMicros: tab.t[sweep], S: tab.s[sweep],
				Energy: pr.Energy(st.probeSpins), Accepted: accepted, Proposed: n,
			})
		}
	}

	r.SetState(rs0, rs1, rs2, rs3)

	for i, zi := range z {
		if zi >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
}
