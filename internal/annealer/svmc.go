package annealer

import (
	"math"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// SVMC is the spin-vector Monte Carlo engine (Shin, Smith, Smolin &
// Vazirani's classical model of D-Wave dynamics): each qubit i is a
// classical rotor with angle θ_i ∈ [0, π], with energy
//
//	E(θ; s) = −A(s)/2·Σ sin θ_i
//	        + B(s)/2·(Σ h_i·cos θ_i + Σ J_ij·cos θ_i·cos θ_j),
//
// evolved by Metropolis updates at the device temperature while s(t)
// follows the anneal schedule. Measurement projects each rotor to
// sign(cos θ).
//
// The model reproduces the schedule physics the paper's comparison rests
// on: at small s the transverse term dominates and rotors sit near π/2
// (random measurement), near s = 1 the problem term with β·B/2 ≫ 1
// freezes the rotors (classical memory), and in between quantum-style
// fluctuations let a reverse anneal escape shallow local minima around
// its programmed initial state.
// The zero value proposes fresh uniform angles per update (the original
// SVMC of Shin et al.). TFMoves switches to transverse-field-scaled
// proposals (the "SVMC-TF" variant of Albash et al.): θ' = θ +
// u·π·A(s)/(A(s)+B(s)) with occasional global jumps at the same rate, so
// move sizes shrink as the problem Hamiltonian overtakes the driver and
// the dynamics freeze out hard. TF moves retain reverse-anneal initial
// states essentially perfectly but also block the local cluster repairs
// that make a hybrid's reverse anneal useful, so the uniform-move model
// plus the device's final quench (annealer.Params) is the calibrated
// default; TF remains available for ablation.
type SVMC struct {
	TFMoves bool
	// MinMoveScale floors the TF proposal width (fraction of π) so the
	// frozen regime retains a sliver of ergodicity (default 0.02).
	MinMoveScale float64
}

// Name implements Engine.
func (e SVMC) Name() string {
	if e.TFMoves {
		return "svmc-tf"
	}
	return "svmc"
}

// moveScale is the TF proposal width as a fraction of π: A/(A+B),
// floored. Early in the schedule (A ≫ B) rotors make full-range moves;
// as the problem Hamiltonian overtakes the driver the moves shrink and
// the dynamics freeze out.
func moveScale(a, b, floor float64) float64 {
	if a+b <= 0 {
		return 1
	}
	s := a / (a + b)
	if s < floor {
		s = floor
	}
	return s
}

// Anneal implements Engine.
func (e SVMC) Anneal(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source) []int8 {
	return e.AnnealProbed(is, sc, prof, init, sweepsPerMicrosecond, r, nil)
}

// AnnealProbed implements ProbedEngine: identical dynamics, with one
// nil-checked observation per sweep (projected-state energy, s(t),
// acceptance counts) when probe is non-nil.
func (e SVMC) AnnealProbed(is *qubo.Ising, sc *Schedule, prof Profile, init []int8, sweepsPerMicrosecond float64, r *rng.Source, probe Probe) []int8 {
	n := is.N
	sweeps, err := sweepCount(sc, sweepsPerMicrosecond)
	if err != nil {
		panic(err)
	}
	beta := 1 / prof.TemperatureGHz

	theta := make([]float64, n)
	z := make([]float64, n) // cos θ cache
	if sc.StartsClassical() {
		if len(init) != n {
			panic("annealer: SVMC reverse anneal requires an initial state")
		}
		for i, s := range init {
			if s > 0 {
				theta[i] = 0
			} else {
				theta[i] = math.Pi
			}
			z[i] = math.Cos(theta[i])
		}
	} else {
		// Forward start: rotors aligned with the transverse field.
		for i := range theta {
			theta[i] = math.Pi / 2
			z[i] = 0
		}
	}
	// zField[i] = h_i + Σ_j J_ij·cos θ_j, maintained incrementally.
	zField := make([]float64, n)
	for i := 0; i < n; i++ {
		f := is.H[i]
		for _, c := range is.Adj[i] {
			f += c.J * z[c.To]
		}
		zField[i] = f
	}

	minScale := e.MinMoveScale
	if minScale <= 0 {
		minScale = 0.02
	}
	var probeSpins []int8
	if probe != nil {
		probeSpins = make([]int8, n)
	}
	duration := sc.Duration()
	for sweep := 0; sweep < sweeps; sweep++ {
		t := duration * float64(sweep) / float64(sweeps-1)
		s := sc.At(t)
		a := prof.A(s)
		b := prof.B(s)
		scale := 1.0
		if e.TFMoves {
			scale = moveScale(a, b, minScale)
		}
		accepted := 0
		for k := 0; k < n; k++ {
			i := r.Intn(n)
			var nt float64
			if !e.TFMoves || r.Float64() < scale {
				// Global move: a fresh uniform angle. Under TF scaling
				// these occur at rate A/(A+B) — the surrogate for the
				// multi-spin tunnelling channel that closes as the
				// transverse field is suppressed.
				nt = math.Pi * r.Float64()
			} else {
				// Local TF-scaled move around the current angle,
				// reflected into [0, π].
				nt = theta[i] + (2*r.Float64()-1)*math.Pi*scale
				if nt < 0 {
					nt = -nt
				}
				if nt > math.Pi {
					nt = 2*math.Pi - nt
				}
			}
			nz := math.Cos(nt)
			dE := -a/2*(math.Sin(nt)-math.Sin(theta[i])) + b/2*(nz-z[i])*zField[i]
			if dE <= 0 || r.Float64() < math.Exp(-beta*dE) {
				accepted++
				dz := nz - z[i]
				theta[i] = nt
				z[i] = nz
				for _, c := range is.Adj[i] {
					zField[c.To] += c.J * dz
				}
			}
		}
		if probe != nil {
			for i, zi := range z {
				if zi >= 0 {
					probeSpins[i] = 1
				} else {
					probeSpins[i] = -1
				}
			}
			probe.ObserveSweep(SweepObservation{
				Sweep: sweep, TotalSweeps: sweeps, TimeMicros: t, S: s,
				Energy: is.Energy(probeSpins), Accepted: accepted, Proposed: n,
			})
		}
	}

	out := make([]int8, n)
	for i, zi := range z {
		if zi >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
