package annealer

import (
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

// TestLockstepScalarMatchesSIMD pins the pure-Go staged kernel against
// whatever path the host CPU takes by default: with the SIMD gate forced
// off, the lockstep batch must still reproduce the sequential reference
// bit for bit. On AVX2 hosts this exercises the scalar stage-1 kernel the
// SIMD path shadows; elsewhere it is a plain re-run of the equivalence
// property.
func TestLockstepScalarMatchesSIMD(t *testing.T) {
	saved := hasBatchSIMD
	hasBatchSIMD = false
	defer func() { hasBatchSIMD = saved }()

	prof := DWave2000QProfile()
	r := rng.New(0x5ca1a)
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 17} {
		for _, reads := range []int{3, 9} {
			is := randomIsing(t, r, n, 0.5)
			pr := qubo.NewCSR(is)
			pr.Normalize()
			seed := r.Uint64()
			seqOuts, seqRngs := sequentialGroup(t, SVMC{}, sc, prof, 50, pr, nil, reads, seed)
			batchOuts, batchRngs := lockstepGroup(t, SVMC{}, sc, prof, 50, pr, nil, reads, seed)
			assertGroupsEqual(t, "scalar-svmc", seqOuts, batchOuts, seqRngs, batchRngs)
		}
	}
}

// TestScalarScoreMatchesStage1 pins the scalar replay scorer (the Lemire
// rejection fallback of the SIMD chunk loop) to the plain staged kernel:
// on the same scratch state both must produce identical proposal draws,
// trig, and advance the lane RNGs identically — the scorer only adds the
// accept/exp verdict masks.
func TestScalarScoreMatchesStage1(t *testing.T) {
	if !hasBatchSIMD {
		t.Skip("no SIMD batch path on this host")
	}
	prof := DWave2000QProfile()
	r := rng.New(0xbeef)
	is := randomIsing(t, r, 9, 0.6)
	pr := qubo.NewCSR(is)
	pr.Normalize()
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Force the SIMD gate off for one group and on for another with the
	// same seed: the verdict replay path and the staged kernel must agree
	// on every read's output and final RNG state.
	seed := r.Uint64()
	simdOuts, simdRngs := lockstepGroup(t, SVMC{}, sc, prof, 50, pr, nil, 8, seed)
	hasBatchSIMD = false
	scalarOuts, scalarRngs := lockstepGroup(t, SVMC{}, sc, prof, 50, pr, nil, 8, seed)
	hasBatchSIMD = true
	assertGroupsEqual(t, "simd-vs-scalar", simdOuts, scalarOuts, simdRngs, scalarRngs)
}

// TestScalarScoreReplay drives the Lemire-rejection replay scorer
// directly (the SIMD path reaches it with probability ~n/2⁶⁴, so no
// workload covers it naturally): replaying from identical scratch states
// must be bit-deterministic, the accept/exp masks must be disjoint and
// consistent with the materialized dE values, and downhill proposals must
// always accept.
func TestScalarScoreReplay(t *testing.T) {
	const n, reads = 5, 8
	build := func() *svmcBatchScratch {
		st := new(svmcBatchScratch)
		st.ensure(reads, n)
		r := rng.New(0x5c0e)
		for j := 0; j < reads; j++ {
			st.rs0[j], st.rs1[j], st.rs2[j], st.rs3[j] = r.Uint64()|1, r.Uint64(), r.Uint64(), r.Uint64()
			st.lanoff[j] = uint64(3 * n * j)
			for i := 0; i < n; i++ {
				sn, cs := sinCosPi(r.Float64())
				st.rot[3*(n*j+i)] = cs
				st.rot[3*(n*j+i)+1] = sn
				st.rot[3*(n*j+i)+2] = r.NormFloat64()
			}
		}
		return st
	}
	nb := uint64(n)
	negnb := lemireThreshold(n)
	a, b := build(), build()
	amA, emA := svmcScoreScalar(a, 0, nb, negnb, a.rot, 0.8, 1.2, 3)
	amB, emB := svmcScoreScalar(b, 0, nb, negnb, b.rot, 0.8, 1.2, 3)
	if amA != amB || emA != emB {
		t.Fatalf("replay not deterministic: masks %x/%x vs %x/%x", amA, emA, amB, emB)
	}
	if amA&emA != 0 {
		t.Fatalf("accept and exp masks overlap: %x & %x", amA, emA)
	}
	for j := 0; j < reads; j++ {
		if a.dE[j] != b.dE[j] {
			t.Fatalf("lane %d dE differs across replays", j)
		}
		if a.rs0[j] != b.rs0[j] || a.rs3[j] != b.rs3[j] {
			t.Fatalf("lane %d RNG state differs across replays", j)
		}
		bit := uint32(1) << uint(j)
		if a.dE[j] <= 0 && amA&bit == 0 {
			t.Fatalf("lane %d: downhill proposal (dE=%g) not accepted", j, a.dE[j])
		}
		if a.dE[j] <= 0 && emA&bit != 0 {
			t.Fatalf("lane %d: downhill proposal marked exp-undecided", j)
		}
		if int(a.idx[j]) >= n {
			t.Fatalf("lane %d proposed spin %d out of range", j, a.idx[j])
		}
	}
}

// TestLeaseAccessors covers the read-only lease surface the fleet
// dispatcher consumes.
func TestLeaseAccessors(t *testing.T) {
	sc, err := Forward(1, 0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	fm := FaultModel{ProgrammingFailureRate: 0.5, ReadTimeoutRate: 0.25}
	lease, err := NewLease(Params{Schedule: sc, NumReads: 4, SweepsPerMicrosecond: 30, Faults: fm})
	if err != nil {
		t.Fatal(err)
	}
	if lease.Schedule() != sc {
		t.Fatal("Schedule() did not return the prepared schedule")
	}
	if lease.Embedded() {
		t.Fatal("logical lease reports embedded")
	}
	if got := lease.Faults(); got != fm {
		t.Fatalf("Faults() = %+v, want %+v", got, fm)
	}

	stripped := fm.WithoutProgrammingFailures()
	if stripped.ProgrammingFailureRate != 0 {
		t.Fatal("WithoutProgrammingFailures kept the programming class")
	}
	if stripped.ReadTimeoutRate != fm.ReadTimeoutRate {
		t.Fatal("WithoutProgrammingFailures dropped a per-read class")
	}

	r := rng.New(1)
	is := randomIsing(t, r, 6, 0.5)
	prep, err := lease.PrepareProblem(is)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Problem().Equal(is) {
		t.Fatal("Problem() snapshot does not match the prepared problem")
	}
	// The snapshot is a deep copy: mutating the original must not leak in.
	is.H[0] += 1
	if prep.Problem().Equal(is) {
		t.Fatal("Problem() snapshot aliases the caller's model")
	}
}
