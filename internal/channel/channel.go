// Package channel models the wireless channels between users and the base
// station's antennas: the unit-gain random-phase channel the paper
// synthesizes instances with (§4.2), the standard i.i.d. Rayleigh-fading
// channel for the richer end-to-end examples, and AWGN injection with SNR
// accounting.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// Model selects the distribution channel matrices are drawn from.
type Model int

const (
	// UnitGainRandomPhase draws every entry as e^{jθ} with θ uniform on
	// [0, 2π): unit amplitude, random phase — the paper's §4.2 workload.
	UnitGainRandomPhase Model = iota
	// Rayleigh draws every entry i.i.d. circularly-symmetric complex
	// Gaussian CN(0, 1).
	Rayleigh
)

// String names the model.
func (m Model) String() string {
	switch m {
	case UnitGainRandomPhase:
		return "unit-gain-random-phase"
	case Rayleigh:
		return "rayleigh"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Draw samples an nr×nt channel matrix (nr receive antennas, nt users /
// transmit antennas) from the model.
func Draw(m Model, r *rng.Source, nr, nt int) *linalg.CMatrix {
	h := linalg.NewCMatrix(nr, nt)
	switch m {
	case UnitGainRandomPhase:
		for i := range h.Data {
			theta := 2 * math.Pi * r.Float64()
			h.Data[i] = cmplx.Exp(complex(0, theta))
		}
	case Rayleigh:
		for i := range h.Data {
			// CN(0,1): real and imaginary parts N(0, 1/2).
			h.Data[i] = complex(r.NormFloat64()/math.Sqrt2, r.NormFloat64()/math.Sqrt2)
		}
	default:
		panic("channel: unknown model")
	}
	return h
}

// AWGN adds circularly-symmetric complex Gaussian noise of per-sample
// variance n0 to y in place and returns y. n0 = 0 is a no-op (the paper's
// experiments exclude noise).
func AWGN(r *rng.Source, y []complex128, n0 float64) []complex128 {
	if n0 < 0 {
		panic("channel: negative noise variance")
	}
	if n0 == 0 {
		return y
	}
	sigma := math.Sqrt(n0 / 2)
	for i := range y {
		y[i] += complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
	}
	return y
}

// NoiseVarianceForSNR returns the per-receive-antenna noise variance N0
// that realizes a given average receive SNR (dB) for unit-energy transmit
// symbols over a channel with per-entry second moment gain ≈ 1 and nt
// transmitters: SNR = nt / N0.
func NoiseVarianceForSNR(snrDB float64, nt int) float64 {
	snr := math.Pow(10, snrDB/10)
	return float64(nt) / snr
}

// Transmit pushes symbol vector x through channel h and adds noise with
// variance n0, returning the received vector y = Hx + n.
func Transmit(r *rng.Source, h *linalg.CMatrix, x []complex128, n0 float64) []complex128 {
	y := h.MulVec(x)
	return AWGN(r, y, n0)
}

// DrawCorrelated samples a Kronecker-correlated Rayleigh channel
// H = R_rx^{1/2} · H_w · R_tx^{1/2}, with exponential correlation
// matrices R[i][j] = ρ^{|i−j|} on each side — the standard model for
// closely spaced antennas, which degrades linear detectors and makes
// near-ML detection (and hence quantum offload) more valuable.
// rho ∈ [0, 1); rho = 0 reduces to the i.i.d. Rayleigh channel.
func DrawCorrelated(r *rng.Source, nr, nt int, rho float64) (*linalg.CMatrix, error) {
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("channel: correlation %g must lie in [0, 1)", rho)
	}
	hw := Draw(Rayleigh, r, nr, nt)
	if rho == 0 {
		return hw, nil
	}
	rxHalf, err := sqrtExpCorrelation(nr, rho)
	if err != nil {
		return nil, err
	}
	txHalf, err := sqrtExpCorrelation(nt, rho)
	if err != nil {
		return nil, err
	}
	return rxHalf.Mul(hw).Mul(txHalf), nil
}

// sqrtExpCorrelation returns the (real, SPD) Cholesky square root of the
// exponential correlation matrix R[i][j] = ρ^{|i−j|}, lifted to complex.
func sqrtExpCorrelation(n int, rho float64) (*linalg.CMatrix, error) {
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, math.Pow(rho, math.Abs(float64(i-j))))
		}
	}
	l, err := m.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("channel: correlation matrix not SPD: %w", err)
	}
	out := linalg.NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, complex(l.At(i, j), 0))
		}
	}
	return out, nil
}
