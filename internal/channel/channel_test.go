package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestUnitGainEntriesHaveUnitMagnitude(t *testing.T) {
	r := rng.New(1)
	h := Draw(UnitGainRandomPhase, r, 8, 8)
	for _, v := range h.Data {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("entry %v has magnitude %v", v, cmplx.Abs(v))
		}
	}
}

func TestUnitGainPhaseUniform(t *testing.T) {
	r := rng.New(2)
	h := Draw(UnitGainRandomPhase, r, 100, 100)
	// Mean of e^{jθ} over uniform θ is 0; with 10⁴ samples the sample
	// mean magnitude should be ≪ 1.
	var sum complex128
	for _, v := range h.Data {
		sum += v
	}
	mean := sum / complex(float64(len(h.Data)), 0)
	if cmplx.Abs(mean) > 0.05 {
		t.Fatalf("phase not uniform: |mean| = %v", cmplx.Abs(mean))
	}
	// Quadrant balance.
	quad := [4]int{}
	for _, v := range h.Data {
		i := 0
		if real(v) < 0 {
			i |= 1
		}
		if imag(v) < 0 {
			i |= 2
		}
		quad[i]++
	}
	n := float64(len(h.Data))
	for q, c := range quad {
		if math.Abs(float64(c)-n/4) > 5*math.Sqrt(n/4) {
			t.Fatalf("quadrant %d has %d of %v entries", q, c, n)
		}
	}
}

func TestRayleighMoments(t *testing.T) {
	r := rng.New(3)
	h := Draw(Rayleigh, r, 200, 200)
	var sumRe, sumIm, sumPow float64
	for _, v := range h.Data {
		sumRe += real(v)
		sumIm += imag(v)
		sumPow += real(v)*real(v) + imag(v)*imag(v)
	}
	n := float64(len(h.Data))
	if math.Abs(sumRe/n) > 0.01 || math.Abs(sumIm/n) > 0.01 {
		t.Fatalf("Rayleigh mean (%v, %v) not ≈ 0", sumRe/n, sumIm/n)
	}
	if math.Abs(sumPow/n-1) > 0.02 {
		t.Fatalf("Rayleigh power %v not ≈ 1", sumPow/n)
	}
}

func TestDrawDeterministic(t *testing.T) {
	a := Draw(UnitGainRandomPhase, rng.New(7), 4, 4)
	b := Draw(UnitGainRandomPhase, rng.New(7), 4, 4)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Draw not deterministic for equal seeds")
		}
	}
}

func TestAWGNZeroIsNoop(t *testing.T) {
	r := rng.New(4)
	y := []complex128{1 + 2i, 3}
	orig := append([]complex128(nil), y...)
	AWGN(r, y, 0)
	for i := range y {
		if y[i] != orig[i] {
			t.Fatal("zero-variance AWGN modified the signal")
		}
	}
}

func TestAWGNVariance(t *testing.T) {
	r := rng.New(5)
	n := 100000
	y := make([]complex128, n)
	AWGN(r, y, 2.0)
	var pow float64
	for _, v := range y {
		pow += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := pow / float64(n); math.Abs(got-2.0) > 0.05 {
		t.Fatalf("noise power %v, want 2.0", got)
	}
}

func TestAWGNNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative variance did not panic")
		}
	}()
	AWGN(rng.New(1), []complex128{0}, -1)
}

func TestNoiseVarianceForSNR(t *testing.T) {
	// 0 dB with 4 users: N0 = 4.
	if got := NoiseVarianceForSNR(0, 4); math.Abs(got-4) > 1e-12 {
		t.Fatalf("N0 = %v", got)
	}
	// 10 dB with 1 user: N0 = 0.1.
	if got := NoiseVarianceForSNR(10, 1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("N0 = %v", got)
	}
}

func TestTransmitNoiselessIsExact(t *testing.T) {
	r := rng.New(6)
	h := linalg.CMatrixFromRows([][]complex128{{1, 1i}, {2, 0}})
	x := []complex128{1, 1}
	y := Transmit(r, h, x, 0)
	want := []complex128{1 + 1i, 2}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v", y)
		}
	}
}

func TestModelString(t *testing.T) {
	if UnitGainRandomPhase.String() != "unit-gain-random-phase" || Rayleigh.String() != "rayleigh" {
		t.Fatal("model names wrong")
	}
}

func TestDrawCorrelatedValidation(t *testing.T) {
	r := rng.New(8)
	if _, err := DrawCorrelated(r, 4, 4, -0.1); err == nil {
		t.Fatal("negative rho accepted")
	}
	if _, err := DrawCorrelated(r, 4, 4, 1.0); err == nil {
		t.Fatal("rho=1 accepted")
	}
}

func TestDrawCorrelatedZeroRhoIsRayleigh(t *testing.T) {
	a, err := DrawCorrelated(rng.New(9), 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := Draw(Rayleigh, rng.New(9), 4, 4)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("rho=0 differs from i.i.d. Rayleigh")
		}
	}
}

// TestDrawCorrelatedNeighborCorrelation: adjacent receive antennas' rows
// must correlate near rho, far pairs near rho^|i-j|.
func TestDrawCorrelatedNeighborCorrelation(t *testing.T) {
	r := rng.New(10)
	const rho = 0.7
	const n = 8
	const trials = 400
	var c01, c07, p0 float64
	for k := 0; k < trials; k++ {
		h, err := DrawCorrelated(r, n, n, rho)
		if err != nil {
			t.Fatal(err)
		}
		// Empirical E[h_{0j}·conj(h_{1j})] vs E[|h_{0j}|²].
		for j := 0; j < n; j++ {
			c01 += real(h.At(0, j) * cmplx.Conj(h.At(1, j)))
			c07 += real(h.At(0, j) * cmplx.Conj(h.At(7, j)))
			p0 += real(h.At(0, j) * cmplx.Conj(h.At(0, j)))
		}
	}
	corr01 := c01 / p0
	corr07 := c07 / p0
	if math.Abs(corr01-rho) > 0.08 {
		t.Fatalf("adjacent-row correlation %v, want ≈ %v", corr01, rho)
	}
	want07 := math.Pow(rho, 7)
	if math.Abs(corr07-want07) > 0.08 {
		t.Fatalf("distant-row correlation %v, want ≈ %v", corr07, want07)
	}
}

// TestDrawCorrelatedPreservesPower: the Kronecker construction keeps the
// average per-entry power at 1.
func TestDrawCorrelatedPreservesPower(t *testing.T) {
	r := rng.New(11)
	var pow float64
	const trials = 200
	for k := 0; k < trials; k++ {
		h, err := DrawCorrelated(r, 6, 6, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range h.Data {
			pow += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	avg := pow / float64(trials*36)
	if math.Abs(avg-1) > 0.05 {
		t.Fatalf("per-entry power %v, want ≈ 1", avg)
	}
}
