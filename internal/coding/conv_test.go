package coding

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomBits(r *rng.Source, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		if r.Bool() {
			out[i] = 1
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := NewConvCode75().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewConvCode133171().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*ConvCode{
		{K: 1, Polys: []uint32{1}},
		{K: 3, Polys: nil},
		{K: 3, Polys: []uint32{0}},
		{K: 3, Polys: []uint32{0o17}}, // exceeds K bits
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("bad code %d accepted", i)
		}
	}
}

func TestEncodeKnownVector(t *testing.T) {
	// K=3 (7,5): input 1 0 1 1 from the zero state is the textbook
	// example; outputs (g7, g5) per step, with two tail zeros.
	c := NewConvCode75()
	coded, err := c.Encode([]int8{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The textbook trellis for input 1011: 11 10 00 01, then the tail
	// 01 11 returning to state 00.
	want := []int8{
		1, 1, // in=1, reg=001
		1, 0, // in=0, reg=010
		0, 0, // in=1, reg=101
		0, 1, // in=1, reg=011
		0, 1, // tail 0, reg=110
		1, 1, // tail 0, reg=100
	}
	if len(coded) != c.CodedLength(4) {
		t.Fatalf("coded length %d, want %d", len(coded), c.CodedLength(4))
	}
	for i := range want {
		if coded[i] != want[i] {
			t.Fatalf("coded[%d] = %d, want %d (full %v)", i, coded[i], want[i], coded)
		}
	}
}

func TestEncodeRejectsNonBits(t *testing.T) {
	if _, err := NewConvCode75().Encode([]int8{0, 2}); err == nil {
		t.Fatal("non-bit accepted")
	}
}

// TestDecodeCleanRoundTrip: property test — decoding an uncorrupted
// codeword recovers the information bits for both codes.
func TestDecodeCleanRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, c := range []*ConvCode{NewConvCode75(), NewConvCode133171()} {
		f := func(seedByte uint8, lenByte uint8) bool {
			n := 1 + int(lenByte)%64
			info := randomBits(r.Split(uint64(seedByte)*257+uint64(lenByte)), n)
			coded, err := c.Encode(info)
			if err != nil {
				return false
			}
			decoded, err := c.DecodeHard(coded)
			if err != nil {
				return false
			}
			return BitErrors(info, decoded) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("K=%d: %v", c.K, err)
		}
	}
}

// TestDecodeCorrectsErrors: the (7,5) code has free distance 5 — any two
// channel bit errors far apart are corrected.
func TestDecodeCorrectsErrors(t *testing.T) {
	c := NewConvCode75()
	r := rng.New(3)
	info := randomBits(r, 40)
	coded, err := c.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]int8(nil), coded...)
	corrupted[6] ^= 1
	corrupted[40] ^= 1
	corrupted[70] ^= 1
	decoded, err := c.DecodeHard(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if e := BitErrors(info, decoded); e != 0 {
		t.Fatalf("decoder left %d errors after 3 dispersed channel errors", e)
	}
}

// TestSoftBeatsHard: with Gaussian LLRs, soft-decision decoding makes
// strictly fewer information-bit errors than hard slicing + hard Viterbi
// over a noisy batch.
func TestSoftBeatsHard(t *testing.T) {
	c := NewConvCode133171()
	r := rng.New(5)
	const frames = 60
	const n = 48
	sigma := 1.0 // Eb/N0 around the waterfall for rate 1/2 BPSK
	hardErrs, softErrs := 0, 0
	for f := 0; f < frames; f++ {
		info := randomBits(r, n)
		coded, err := c.Encode(info)
		if err != nil {
			t.Fatal(err)
		}
		llrs := make([]float64, len(coded))
		hard := make([]int8, len(coded))
		for i, b := range coded {
			tx := float64(2*b - 1)
			rx := tx + sigma*r.NormFloat64()
			llrs[i] = 2 * rx / (sigma * sigma)
			if rx > 0 {
				hard[i] = 1
			}
		}
		hd, err := c.DecodeHard(hard)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := c.DecodeSoft(llrs)
		if err != nil {
			t.Fatal(err)
		}
		hardErrs += BitErrors(info, hd)
		softErrs += BitErrors(info, sd)
	}
	if softErrs >= hardErrs {
		t.Fatalf("soft decoding (%d errors) not better than hard (%d)", softErrs, hardErrs)
	}
}

func TestDecodeValidation(t *testing.T) {
	c := NewConvCode75()
	if _, err := c.DecodeHard(make([]int8, 3)); err == nil {
		t.Fatal("non-multiple length accepted")
	}
	if _, err := c.DecodeHard(make([]int8, 2)); err == nil {
		t.Fatal("shorter-than-tail codeword accepted")
	}
}

func TestCodedLengthAndRate(t *testing.T) {
	c := NewConvCode75()
	if c.CodedLength(10) != 24 {
		t.Fatalf("coded length %d", c.CodedLength(10))
	}
	if c.Rate() != 0.5 {
		t.Fatalf("rate %v", c.Rate())
	}
}
