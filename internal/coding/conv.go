// Package coding implements a convolutional channel code with hard- and
// soft-decision Viterbi decoding — the link-layer substrate around the
// paper's detector: the ARQ turn-around that motivates its latency
// budget exists because frames are coded, decoded, and acknowledged, and
// a soft-output detector (core.SampleSoftOutput) only pays off if a
// soft-input decoder consumes the LLRs.
package coding

import (
	"fmt"
	"math"
	"math/bits"
)

// ConvCode is a rate-1/len(Polys) binary convolutional code with
// constraint length K: each input bit shifts into a K-bit register and
// every generator polynomial emits the parity of its masked taps.
type ConvCode struct {
	K     int      // constraint length (register bits)
	Polys []uint32 // generator polynomials, LSB = newest bit
}

// NewConvCode75 returns the classic K=3, rate-1/2 code with octal
// generators (7, 5) — the standard example code with free distance 5.
func NewConvCode75() *ConvCode { return &ConvCode{K: 3, Polys: []uint32{0o7, 0o5}} }

// NewConvCode133171 returns the K=7, rate-1/2 "Voyager" code with octal
// generators (133, 171), free distance 10 — the workhorse of practical
// wireless standards.
func NewConvCode133171() *ConvCode { return &ConvCode{K: 7, Polys: []uint32{0o133, 0o171}} }

// Rate returns the code rate 1/len(Polys).
func (c *ConvCode) Rate() float64 { return 1 / float64(len(c.Polys)) }

// Validate checks the code's shape.
func (c *ConvCode) Validate() error {
	if c.K < 2 || c.K > 16 {
		return fmt.Errorf("coding: constraint length %d out of [2, 16]", c.K)
	}
	if len(c.Polys) == 0 {
		return fmt.Errorf("coding: no generator polynomials")
	}
	for _, p := range c.Polys {
		if p == 0 || p >= 1<<uint(c.K) {
			return fmt.Errorf("coding: polynomial %#o out of range for K=%d", p, c.K)
		}
	}
	return nil
}

// states returns the trellis state count 2^(K−1).
func (c *ConvCode) states() int { return 1 << uint(c.K-1) }

// CodedLength returns the codeword length for n information bits,
// including the K−1 tail bits that flush the register.
func (c *ConvCode) CodedLength(n int) int { return (n + c.K - 1) * len(c.Polys) }

// outputs computes the coded bits emitted when `in` enters state `st`
// (state = previous K−1 input bits, LSB = most recent).
func (c *ConvCode) outputs(st int, in int) []int8 {
	reg := uint32(st)<<1 | uint32(in)
	out := make([]int8, len(c.Polys))
	for i, p := range c.Polys {
		out[i] = int8(bits.OnesCount32(reg&p) & 1)
	}
	return out
}

// next returns the trellis successor state.
func (c *ConvCode) next(st int, in int) int {
	return (st<<1 | in) & (c.states() - 1)
}

// Encode convolves the information bits and appends K−1 zero tail bits,
// returning CodedLength(len(info)) coded bits.
func (c *ConvCode) Encode(info []int8) ([]int8, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]int8, 0, c.CodedLength(len(info)))
	st := 0
	emit := func(b int) {
		out = append(out, c.outputs(st, b)...)
		st = c.next(st, b)
	}
	for _, b := range info {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("coding: information bits must be 0/1")
		}
		emit(int(b))
	}
	for t := 0; t < c.K-1; t++ {
		emit(0)
	}
	return out, nil
}

// DecodeHard runs hard-decision Viterbi over received coded bits and
// returns the information bits (tail removed). The received length must
// be a multiple of the rate denominator and cover at least the tail.
func (c *ConvCode) DecodeHard(coded []int8) ([]int8, error) {
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		if b != 0 {
			llrs[i] = 1
		} else {
			llrs[i] = -1
		}
	}
	return c.DecodeSoft(llrs)
}

// DecodeSoft runs soft-decision Viterbi: llrs[i] > 0 means coded bit i is
// more likely 1, with |llrs[i]| the confidence. Metrics maximize
// Σ llr_i·(2b_i−1), the correlation decoder.
func (c *ConvCode) DecodeSoft(llrs []float64) ([]int8, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := len(c.Polys)
	if len(llrs)%r != 0 {
		return nil, fmt.Errorf("coding: %d coded values not a multiple of rate denominator %d", len(llrs), r)
	}
	steps := len(llrs) / r
	if steps < c.K-1 {
		return nil, fmt.Errorf("coding: codeword shorter than the tail")
	}
	nStates := c.states()
	neg := math.Inf(-1)
	metric := make([]float64, nStates)
	for s := 1; s < nStates; s++ {
		metric[s] = neg // the encoder starts in state 0
	}
	// back[t][s] packs the predecessor state and input bit.
	back := make([][]int32, steps)
	next := make([]float64, nStates)
	for t := 0; t < steps; t++ {
		back[t] = make([]int32, nStates)
		for s := 0; s < nStates; s++ {
			next[s] = neg
		}
		seg := llrs[t*r : (t+1)*r]
		for s := 0; s < nStates; s++ {
			if metric[s] == neg {
				continue
			}
			for in := 0; in <= 1; in++ {
				outBits := c.outputs(s, in)
				branch := 0.0
				for i, b := range outBits {
					if b == 1 {
						branch += seg[i]
					} else {
						branch -= seg[i]
					}
				}
				ns := c.next(s, in)
				if m := metric[s] + branch; m > next[ns] {
					next[ns] = m
					back[t][ns] = int32(s<<1 | in)
				}
			}
		}
		copy(metric, next)
	}
	// The tail drives the encoder back to state 0.
	if metric[0] == neg {
		return nil, fmt.Errorf("coding: no surviving path to the zero state")
	}
	decoded := make([]int8, steps)
	st := 0
	for t := steps - 1; t >= 0; t-- {
		packed := back[t][st]
		decoded[t] = int8(packed & 1)
		st = int(packed >> 1)
	}
	return decoded[:steps-(c.K-1)], nil
}

// BitErrors counts positions where a and b differ (equal lengths).
func BitErrors(a, b []int8) int {
	if len(a) != len(b) {
		panic("coding: BitErrors length mismatch")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
