package coding

import (
	"testing"

	"repro/internal/rng"
)

// FuzzEncodeDecodeRoundTrip: clean-channel decode always recovers the
// information bits, for both codes and arbitrary packet contents.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(10), false)
	f.Add(uint64(2), uint8(63), true)
	f.Fuzz(func(t *testing.T, seed uint64, lenByte uint8, longCode bool) {
		code := NewConvCode75()
		if longCode {
			code = NewConvCode133171()
		}
		n := 1 + int(lenByte)%96
		info := randomBits(rng.New(seed), n)
		coded, err := code.Encode(info)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := code.DecodeHard(coded)
		if err != nil {
			t.Fatal(err)
		}
		if BitErrors(info, decoded) != 0 {
			t.Fatalf("round trip failed for %d bits", n)
		}
	})
}

// FuzzDecodeNeverPanics: arbitrary (well-shaped) LLR inputs must decode
// or error, never panic.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add(uint64(5), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, lenByte uint8) {
		code := NewConvCode75()
		steps := 2 + int(lenByte)%40
		r := rng.New(seed)
		llrs := make([]float64, steps*2)
		for i := range llrs {
			llrs[i] = 10 * r.NormFloat64()
		}
		if _, err := code.DecodeSoft(llrs); err != nil {
			t.Fatal(err)
		}
	})
}
