package mimo

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/modulation"
	"repro/internal/qubo"
)

// This file implements the ML-to-Ising reduction — the paper's reference
// [29] (QuAMax) mapping between QUBO variables and wireless symbols, which
// §4.2 applies unchanged.
//
// Derivation. After the real-valued decomposition ỹ = H̃·x̃ (linalg.
// RealDecompose), each of the 2·nt real dimensions carries a PAM amplitude
// expressible as a weighted sum of spins (modulation.SpinWeights):
//
//	x̃_d = norm · Σ_k w_k·s_{σ(d)+k} ,  s ∈ {−1,+1}
//
// so x̃ = A·s for a sparse weight matrix A. Substituting into the ML
// objective,
//
//	‖ỹ − H̃·A·s‖² = sᵀ·(AᵀGA)·s − 2·(AᵀH̃ᵀỹ)ᵀ·s + ‖ỹ‖²,  G = H̃ᵀH̃,
//
// which, since s_i² = 1 moves the diagonal of AᵀGA into the constant,
// is the Ising model
//
//	h_i = −2·c_i,  J_ij = 2·M_ij (i<j),  offset = tr(M) + ‖ỹ‖²
//
// with M = AᵀGA and c = AᵀH̃ᵀỹ. The ground-state energy of this Ising
// model equals the minimum of ‖y − H·x‖² over the constellation — zero in
// the paper's noiseless workload.

// Reduction holds the Ising form of a detection problem together with the
// spin layout needed to decode samples back into symbols.
type Reduction struct {
	Ising   *qubo.Ising
	problem *Problem
	scheme  modulation.Scheme
	nt      int
	// dimBits[d] is the spin count of real dimension d (d < nt: I of user
	// d; d >= nt: Q of user d−nt); dimOffset[d] is its first spin index.
	dimBits   []int
	dimOffset []int
}

// Reduce converts a detection problem into its exactly equivalent Ising
// model.
func Reduce(p *Problem) (*Reduction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nt := p.Nt()
	hr, yr := linalg.RealDecompose(p.H, p.Y)
	norm := p.Scheme.Norm()

	biI := p.Scheme.BitsPerDimI()
	biQ := p.Scheme.BitsPerDimQ()
	dimBits := make([]int, 2*nt)
	dimOffset := make([]int, 2*nt)
	total := 0
	for d := 0; d < 2*nt; d++ {
		b := biI
		if d >= nt {
			b = biQ
		}
		dimBits[d] = b
		dimOffset[d] = total
		total += b
	}
	if total == 0 {
		return nil, fmt.Errorf("mimo: reduction produced no spins")
	}

	// A is (2·nt) × total with A[d][σ(d)+k] = norm·w_k.
	a := linalg.NewMatrix(2*nt, total)
	for d := 0; d < 2*nt; d++ {
		w := modulation.SpinWeights(dimBits[d])
		for k, wk := range w {
			a.Set(d, dimOffset[d]+k, norm*wk)
		}
	}

	g := hr.Transpose().Mul(hr)
	m := a.Transpose().Mul(g).Mul(a)
	// c = Aᵀ·H̃ᵀ·ỹ
	hty := hr.Transpose().MulVec(yr)
	c := a.Transpose().MulVec(hty)

	is := qubo.NewIsing(total)
	is.Offset = linalg.VecNormSq(yr)
	for i := 0; i < total; i++ {
		is.H[i] = -2 * c[i]
		is.Offset += m.At(i, i)
		for j := i + 1; j < total; j++ {
			if v := m.At(i, j); v != 0 {
				// M is symmetric; s_i·s_j collects M_ij + M_ji = 2·M_ij.
				is.AddCoupling(i, j, 2*v)
			}
		}
	}
	return &Reduction{
		Ising:     is,
		problem:   p,
		scheme:    p.Scheme,
		nt:        nt,
		dimBits:   dimBits,
		dimOffset: dimOffset,
	}, nil
}

// NumSpins returns the Ising problem size.
func (r *Reduction) NumSpins() int { return r.Ising.N }

// DecodeSpins converts a spin configuration into the nt detected symbols.
func (r *Reduction) DecodeSpins(spins []int8) []complex128 {
	if len(spins) != r.Ising.N {
		panic("mimo: DecodeSpins length mismatch")
	}
	norm := r.scheme.Norm()
	out := make([]complex128, r.nt)
	for u := 0; u < r.nt; u++ {
		iLevel := r.dimLevel(spins, u)
		qLevel := 0.0
		if r.dimBits[r.nt+u] > 0 {
			qLevel = r.dimLevel(spins, r.nt+u)
		}
		out[u] = complex(iLevel*norm, qLevel*norm)
	}
	return out
}

func (r *Reduction) dimLevel(spins []int8, d int) float64 {
	b := r.dimBits[d]
	off := r.dimOffset[d]
	return modulation.SpinsToLevel(spins[off : off+b])
}

// EncodeSymbols converts a symbol vector into the spin configuration that
// represents it — e.g. the transmitted symbols into the ground state of a
// noiseless instance, or a classical detector's output into a reverse-
// annealing initial state.
func (r *Reduction) EncodeSymbols(symbols []complex128) ([]int8, error) {
	if len(symbols) != r.nt {
		return nil, fmt.Errorf("mimo: EncodeSymbols got %d symbols for %d users", len(symbols), r.nt)
	}
	norm := r.scheme.Norm()
	spins := make([]int8, r.Ising.N)
	for u, x := range symbols {
		iLevel := real(x) / norm
		copySpins(spins, r.dimOffset[u], modulation.LevelToSpins(iLevel, r.dimBits[u]))
		if b := r.dimBits[r.nt+u]; b > 0 {
			qLevel := imag(x) / norm
			copySpins(spins, r.dimOffset[r.nt+u], modulation.LevelToSpins(qLevel, b))
		}
	}
	return spins, nil
}

func copySpins(dst []int8, off int, src []int8) {
	copy(dst[off:off+len(src)], src)
}

// SpinsPerUser returns the number of spins encoding one user's symbol.
func (r *Reduction) SpinsPerUser() int { return r.scheme.BitsPerSymbol() }

// Scheme returns the modulation the reduction was built for.
func (r *Reduction) Scheme() modulation.Scheme { return r.scheme }

// Users returns the number of users nt.
func (r *Reduction) Users() int { return r.nt }

// Problem returns the detection problem the reduction was built from.
func (r *Reduction) Problem() *Problem { return r.problem }
