package mimo

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func TestSoftOutputNeedsNoise(t *testing.T) {
	if _, err := SoftOutput(modulation.QPSK, []complex128{0}, 0); err == nil {
		t.Fatal("zero noise variance accepted")
	}
}

// TestSoftOutputSignsMatchTruth: with the filtered output sitting exactly
// on a constellation point, every LLR's sign must agree with that point's
// binary label, and magnitudes must be large.
func TestSoftOutputSignsMatchTruth(t *testing.T) {
	for _, s := range modulation.Schemes {
		for _, pt := range s.Alphabet() {
			llrs, err := SoftOutput(s, []complex128{pt}, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if len(llrs) != s.BitsPerSymbol() {
				t.Fatalf("%v: %d LLRs", s, len(llrs))
			}
			want := spinLabel(s, pt)
			for _, l := range llrs {
				got := bitFromLLR(l.LLR)
				if got != want[l.Bit] {
					t.Fatalf("%v %v: bit %d LLR %v disagrees with label %d", s, pt, l.Bit, l.LLR, want[l.Bit])
				}
				// Minimum magnitude = dmin²/N0 (64-QAM: (2/√42)²/0.1 ≈ 0.95).
				minMag := s.MinDistance() * s.MinDistance() / 0.1 * 0.99
				if math.Abs(l.LLR) < minMag {
					t.Fatalf("%v: on-point LLR magnitude %v below %v", s, l.LLR, minMag)
				}
			}
		}
	}
}

// TestSoftOutputUncertainMidpoint: halfway between two points differing
// in one bit, that bit's LLR is ≈ 0 while the shared bits stay strong.
func TestSoftOutputUncertainMidpoint(t *testing.T) {
	s := modulation.QAM16
	norm := s.Norm()
	// Midpoint between I-levels −3 and −1 (binary labels 00 and 01 for
	// the I dimension): the second I bit is ambiguous.
	mid := complex(-2*norm, 3*norm)
	llrs, err := SoftOutput(s, []complex128{mid}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range llrs {
		switch l.Bit {
		case 1: // ambiguous I bit
			if math.Abs(l.LLR) > 1e-9 {
				t.Fatalf("ambiguous bit has LLR %v", l.LLR)
			}
		case 0: // I sign bit: clearly negative side → 0
			if bitFromLLR(l.LLR) != 0 || math.Abs(l.LLR) < 1 {
				t.Fatalf("I sign bit LLR %v", l.LLR)
			}
		}
	}
}

// TestSoftOutputScalesWithNoise: halving the noise variance doubles
// every LLR magnitude (max-log is linear in 1/N0).
func TestSoftOutputScalesWithNoise(t *testing.T) {
	s := modulation.QAM16
	xf := []complex128{complex(0.2, -0.5)}
	a, _ := SoftOutput(s, xf, 0.2)
	b, _ := SoftOutput(s, xf, 0.1)
	for i := range a {
		if math.Abs(b[i].LLR-2*a[i].LLR) > 1e-9 {
			t.Fatalf("LLR not ∝ 1/N0: %v vs %v", a[i].LLR, b[i].LLR)
		}
	}
}

// TestSpinIndexLayout: BitLLR.SpinIndex agrees with the reduction's
// encode layout — flipping the spin at SpinIndex changes exactly the
// symbol bit the LLR refers to.
func TestSpinIndexLayout(t *testing.T) {
	r := rng.New(3)
	for _, s := range modulation.Schemes {
		p, _ := synth(r, s, 3, 0)
		red, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		syms, _ := RandomSymbols(r, s, 3)
		spins, _ := red.EncodeSymbols(syms)
		for u := 0; u < 3; u++ {
			for b := 0; b < s.BitsPerSymbol(); b++ {
				l := BitLLR{User: u, Bit: b}
				idx := l.SpinIndex(red)
				// The spin's bit value must equal the symbol's binary
				// label bit.
				want := spinLabel(s, syms[u])[b]
				got := int8(0)
				if spins[idx] > 0 {
					got = 1
				}
				if got != want {
					t.Fatalf("%v user %d bit %d: spin %d has bit %d, label %d", s, u, b, idx, got, want)
				}
			}
		}
	}
}

// TestConfidentConstraintsEndToEnd: on a noisy instance, constraints
// derived from MMSE soft output with CORRECT high-confidence bits must
// not displace the reduced problem's optimum.
func TestConfidentConstraintsEndToEnd(t *testing.T) {
	r := rng.New(7)
	s := modulation.QAM16
	nt := 3
	n0 := channel.NoiseVarianceForSNR(18, nt)
	h := channel.Draw(channel.UnitGainRandomPhase, r, nt, nt)
	x, _ := RandomSymbols(r, s, nt)
	y := channel.Transmit(r, h, x, n0)
	p := &Problem{H: h, Y: y, Scheme: s}
	red, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	// Soft output from the MMSE-filtered (unsliced) observation.
	hh := p.H.ConjTranspose()
	gram := hh.Mul(p.H).AddScaledIdentity(complex(n0, 0))
	inv, err := gram.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	xf := inv.Mul(hh).MulVec(p.Y)
	llrs, err := SoftOutput(s, xf, n0)
	if err != nil {
		t.Fatal(err)
	}
	cons := ConfidentConstraints(red, llrs, 8.0, 1.0, 4)
	if len(cons) == 0 {
		t.Skip("no bit pair cleared the confidence threshold on this draw")
	}
	base := red.Ising.ToQUBO()
	baseOpt, err := qubo.Exhaustive(base)
	if err != nil {
		t.Fatal(err)
	}
	constrained := qubo.ApplyConstraints(base, cons)
	conOpt, err := qubo.Exhaustive(constrained)
	if err != nil {
		t.Fatal(err)
	}
	// High-confidence correct priors must keep the optimum's energy
	// unchanged under the ORIGINAL objective.
	if math.Abs(base.Energy(conOpt.Bits)-baseOpt.Energy) > 1e-6 {
		t.Fatalf("constraints displaced the optimum: %v vs %v",
			base.Energy(conOpt.Bits), baseOpt.Energy)
	}
}

// TestConfidentConstraintsThreshold: a huge threshold yields no
// constraints; pairs are disjoint and bounded by maxPairs.
func TestConfidentConstraintsThreshold(t *testing.T) {
	r := rng.New(9)
	p, _ := synth(r, modulation.QAM16, 4, 0.4)
	red, _ := Reduce(p)
	xf := make([]complex128, 4)
	for i := range xf {
		xf[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	llrs, _ := SoftOutput(modulation.QAM16, xf, 0.4)
	if cons := ConfidentConstraints(red, llrs, 1e12, 1, 8); len(cons) != 0 {
		t.Fatalf("impossible threshold produced %d constraints", len(cons))
	}
	cons := ConfidentConstraints(red, llrs, 0, 1, 3)
	if len(cons) > 3 {
		t.Fatalf("maxPairs exceeded: %d", len(cons))
	}
	seen := map[int]bool{}
	for _, c := range cons {
		if seen[c.I] || seen[c.J] || c.I == c.J {
			t.Fatal("constraint spins not disjoint")
		}
		seen[c.I], seen[c.J] = true, true
	}
}
