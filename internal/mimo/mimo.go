// Package mimo implements Large MIMO detection: the maximum-likelihood
// problem, the classical detector zoo the paper positions around its
// hybrid design (zero-forcing, MMSE, sphere decoding, K-best, FCSD), and
// the ML-to-Ising/QUBO reduction (the QuAMax mapping, paper reference
// [29]) that makes the problem solvable on a quantum annealer.
//
// The detection problem: nt users each transmit one constellation symbol
// x_i; the base station's nr antennas receive y = H·x + n and must
// recover x. Optimal (ML) detection minimizes ‖y − H·x‖² over the
// constellation lattice — exponential in nt for exact search, which is
// exactly the computational bottleneck that motivates quantum offload.
package mimo

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/modulation"
	"repro/internal/rng"
)

// Problem is one MIMO detection instance: recover the nt transmitted
// symbols from Y = H·x + n.
type Problem struct {
	H      *linalg.CMatrix // nr × nt channel, known at the receiver
	Y      []complex128    // nr received samples
	Scheme modulation.Scheme
}

// Nt returns the number of transmitters (users).
func (p *Problem) Nt() int { return p.H.Cols }

// Nr returns the number of receive antennas.
func (p *Problem) Nr() int { return p.H.Rows }

// NumSpins returns the number of Ising spins the reduction produces:
// bits-per-symbol spins per user.
func (p *Problem) NumSpins() int { return p.Nt() * p.Scheme.BitsPerSymbol() }

// Objective evaluates the ML cost ‖y − H·x‖² for a candidate symbol
// vector.
func (p *Problem) Objective(x []complex128) float64 {
	return linalg.CVecNormSq(linalg.CVecSub(p.Y, p.H.MulVec(x)))
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if p.H == nil {
		return fmt.Errorf("mimo: nil channel")
	}
	if len(p.Y) != p.H.Rows {
		return fmt.Errorf("mimo: y has %d entries for %d receive antennas", len(p.Y), p.H.Rows)
	}
	if p.H.Cols == 0 {
		return fmt.Errorf("mimo: no transmitters")
	}
	return nil
}

// Detector recovers transmitted symbols from a Problem.
type Detector interface {
	// Detect returns one normalized constellation point per user.
	Detect(p *Problem) ([]complex128, error)
	// Name identifies the detector in experiment output.
	Name() string
}

// SymbolErrors counts positions where est differs from truth (exact
// complex equality — both sides are sliced constellation points).
func SymbolErrors(est, truth []complex128) int {
	if len(est) != len(truth) {
		panic("mimo: SymbolErrors length mismatch")
	}
	errs := 0
	for i := range est {
		if est[i] != truth[i] {
			errs++
		}
	}
	return errs
}

// BitErrors counts bit differences between the Gray demappings of est and
// truth under the scheme.
func BitErrors(s modulation.Scheme, est, truth []complex128) int {
	if len(est) != len(truth) {
		panic("mimo: BitErrors length mismatch")
	}
	errs := 0
	for i := range est {
		a := s.Demodulate(est[i])
		b := s.Demodulate(truth[i])
		for k := range a {
			if a[k] != b[k] {
				errs++
			}
		}
	}
	return errs
}

// RandomSymbols draws nt uniform constellation points with their Gray bit
// labels, for workload synthesis.
func RandomSymbols(r *rng.Source, s modulation.Scheme, nt int) (symbols []complex128, bits []int8) {
	alpha := s.Alphabet()
	symbols = make([]complex128, nt)
	bits = make([]int8, 0, nt*s.BitsPerSymbol())
	for i := range symbols {
		symbols[i] = alpha[r.Intn(len(alpha))]
		bits = append(bits, s.Demodulate(symbols[i])...)
	}
	return symbols, bits
}
