package mimo

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/linalg"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

// synth builds a noiseless square detection problem with known transmitted
// symbols, per §4.2's workload definition.
func synth(r *rng.Source, s modulation.Scheme, nt int, n0 float64) (*Problem, []complex128) {
	h := channel.Draw(channel.UnitGainRandomPhase, r, nt, nt)
	x, _ := RandomSymbols(r, s, nt)
	y := channel.Transmit(r, h, x, n0)
	return &Problem{H: h, Y: y, Scheme: s}, x
}

func symbolsEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(real(a[i])-real(b[i])) > tol || math.Abs(imag(a[i])-imag(b[i])) > tol {
			return false
		}
	}
	return true
}

func TestProblemValidate(t *testing.T) {
	r := rng.New(1)
	p, _ := synth(r, modulation.QPSK, 3, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Problem{H: p.H, Y: p.Y[:2], Scheme: p.Scheme}
	if err := bad.Validate(); err == nil {
		t.Fatal("short y accepted")
	}
	if err := (&Problem{}).Validate(); err == nil {
		t.Fatal("nil channel accepted")
	}
}

func TestObjectiveZeroAtTruthNoiseless(t *testing.T) {
	r := rng.New(2)
	for _, s := range modulation.Schemes {
		p, x := synth(r, s, 4, 0)
		if obj := p.Objective(x); obj > 1e-18 {
			t.Fatalf("%v: noiseless objective at truth = %v", s, obj)
		}
	}
}

// TestReductionEnergyMatchesObjective is the central reduction invariant:
// for EVERY candidate symbol vector, the Ising energy of its spin encoding
// equals the ML objective ‖y − Hx‖² exactly.
func TestReductionEnergyMatchesObjective(t *testing.T) {
	r := rng.New(3)
	for _, s := range modulation.Schemes {
		for trial := 0; trial < 10; trial++ {
			p, _ := synth(r, s, 2+r.Intn(3), 0)
			red, err := Reduce(p)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 25; k++ {
				cand, _ := RandomSymbols(r, s, p.Nt())
				spins, err := red.EncodeSymbols(cand)
				if err != nil {
					t.Fatal(err)
				}
				got := red.Ising.Energy(spins)
				want := p.Objective(cand)
				if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
					t.Fatalf("%v: Ising energy %v != objective %v", s, got, want)
				}
			}
		}
	}
}

// TestReductionGroundStateIsTransmitted: with no noise, the Ising ground
// state decodes to the transmitted symbols and has (near-)zero energy.
func TestReductionGroundStateIsTransmitted(t *testing.T) {
	r := rng.New(4)
	cases := []struct {
		s  modulation.Scheme
		nt int
	}{
		{modulation.BPSK, 8},  // 8 spins
		{modulation.QPSK, 6},  // 12 spins
		{modulation.QAM16, 4}, // 16 spins
		{modulation.QAM64, 3}, // 18 spins
	}
	for _, c := range cases {
		p, x := synth(r, c.s, c.nt, 0)
		red, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		ground, err := qubo.ExhaustiveIsing(red.Ising)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ground.Energy) > 1e-6 {
			t.Fatalf("%v: ground energy %v, want ≈0", c.s, ground.Energy)
		}
		decoded := red.DecodeSpins(ground.Spins)
		if !symbolsEqual(decoded, x, 1e-9) {
			t.Fatalf("%v: ground state decodes to %v, transmitted %v", c.s, decoded, x)
		}
	}
}

func TestReductionSpinCount(t *testing.T) {
	r := rng.New(5)
	cases := []struct {
		s    modulation.Scheme
		nt   int
		want int
	}{
		{modulation.BPSK, 12, 12},
		{modulation.QPSK, 9, 18},
		{modulation.QAM16, 9, 36}, // the paper's 36-variable setting
		{modulation.QAM64, 6, 36},
		{modulation.QAM16, 8, 32}, // the paper's 8-user 16-QAM instance
	}
	for _, c := range cases {
		p, _ := synth(r, c.s, c.nt, 0)
		red, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		if red.NumSpins() != c.want {
			t.Fatalf("%v nt=%d: %d spins, want %d", c.s, c.nt, red.NumSpins(), c.want)
		}
		if p.NumSpins() != c.want {
			t.Fatalf("Problem.NumSpins = %d, want %d", p.NumSpins(), c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(6)
	for _, s := range modulation.Schemes {
		p, _ := synth(r, s, 4, 0)
		red, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			cand, _ := RandomSymbols(r, s, 4)
			spins, err := red.EncodeSymbols(cand)
			if err != nil {
				t.Fatal(err)
			}
			back := red.DecodeSpins(spins)
			if !symbolsEqual(back, cand, 1e-12) {
				t.Fatalf("%v: decode(encode(x)) != x", s)
			}
		}
	}
}

func TestEncodeSymbolsWrongCount(t *testing.T) {
	r := rng.New(7)
	p, _ := synth(r, modulation.QPSK, 3, 0)
	red, _ := Reduce(p)
	if _, err := red.EncodeSymbols(make([]complex128, 2)); err == nil {
		t.Fatal("wrong symbol count accepted")
	}
}

func TestMLRecoversNoiselessTruth(t *testing.T) {
	r := rng.New(8)
	for _, s := range modulation.Schemes {
		p, x := synth(r, s, 3, 0)
		got, err := ML{}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		if !symbolsEqual(got, x, 1e-9) {
			t.Fatalf("%v: ML missed noiseless truth", s)
		}
	}
}

func TestMLSizeLimit(t *testing.T) {
	r := rng.New(9)
	p, _ := synth(r, modulation.QAM64, 5, 0)
	// 64^5 = 2^30 > limit.
	if _, err := (ML{}).Detect(p); err == nil {
		t.Fatal("oversized ML accepted")
	}
}

func TestSphereDecoderMatchesML(t *testing.T) {
	r := rng.New(10)
	for _, s := range modulation.Schemes {
		for trial := 0; trial < 10; trial++ {
			// Noisy so the optimum is nontrivial.
			p, _ := synth(r, s, 3, 0.5)
			ml, err := ML{}.Detect(p)
			if err != nil {
				t.Fatal(err)
			}
			sd, err := SphereDecoder{}.Detect(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p.Objective(sd)-p.Objective(ml)) > 1e-8 {
				t.Fatalf("%v: SD objective %v, ML %v", s, p.Objective(sd), p.Objective(ml))
			}
		}
	}
}

func TestKBestLargeKMatchesML(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		p, _ := synth(r, modulation.QAM16, 3, 0.5)
		ml, err := ML{}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := KBest{K: 4096}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Objective(kb)-p.Objective(ml)) > 1e-8 {
			t.Fatalf("K-best(∞) objective %v, ML %v", p.Objective(kb), p.Objective(ml))
		}
	}
}

func TestKBestSmallKStillDecodesNoiseless(t *testing.T) {
	r := rng.New(12)
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		p, x := synth(r, modulation.QAM16, 4, 0)
		kb, err := KBest{K: 8}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		if symbolsEqual(kb, x, 1e-9) {
			hits++
		}
	}
	if hits < trials/2 {
		t.Fatalf("K-best(8) recovered truth on only %d/%d noiseless instances", hits, trials)
	}
}

func TestKBestRejectsBadK(t *testing.T) {
	r := rng.New(13)
	p, _ := synth(r, modulation.QPSK, 2, 0)
	if _, err := (KBest{K: 0}).Detect(p); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestFCSDFullExpansionMatchesML(t *testing.T) {
	r := rng.New(14)
	for trial := 0; trial < 10; trial++ {
		p, _ := synth(r, modulation.QPSK, 3, 0.5)
		ml, err := ML{}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		// rho = 2·nt: every dimension fully expanded — exact search.
		fc, err := FCSD{FullExpansion: 6}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Objective(fc)-p.Objective(ml)) > 1e-8 {
			t.Fatalf("FCSD(full) objective %v, ML %v", p.Objective(fc), p.Objective(ml))
		}
	}
}

func TestFCSDPartialNotWorseThanSIC(t *testing.T) {
	r := rng.New(15)
	for trial := 0; trial < 10; trial++ {
		p, _ := synth(r, modulation.QAM16, 4, 1.0)
		sic, err := FCSD{FullExpansion: 0}.Detect(p) // pure SIC
		if err != nil {
			t.Fatal(err)
		}
		fc, err := FCSD{FullExpansion: 3}.Detect(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Objective(fc) > p.Objective(sic)+1e-9 {
			t.Fatalf("more expansion made FCSD worse: %v vs %v", p.Objective(fc), p.Objective(sic))
		}
	}
}

func TestZFRecoversNoiselessTruth(t *testing.T) {
	r := rng.New(16)
	for _, s := range modulation.Schemes {
		for trial := 0; trial < 10; trial++ {
			p, x := synth(r, s, 4, 0)
			got, err := ZeroForcing{}.Detect(p)
			if err != nil {
				t.Fatal(err)
			}
			// Noiseless ZF inverts the channel exactly.
			if !symbolsEqual(got, x, 1e-6) {
				t.Fatalf("%v: ZF missed noiseless truth", s)
			}
		}
	}
}

func TestMMSEZeroNoiseEqualsZF(t *testing.T) {
	r := rng.New(17)
	p, _ := synth(r, modulation.QAM16, 4, 0.3)
	zf, err := ZeroForcing{}.Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := MMSE{NoiseVariance: 0}.Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	if !symbolsEqual(zf, mm, 1e-9) {
		t.Fatal("MMSE(0) != ZF")
	}
}

func TestMMSENegativeNoiseRejected(t *testing.T) {
	r := rng.New(18)
	p, _ := synth(r, modulation.QPSK, 2, 0)
	if _, err := (MMSE{NoiseVariance: -1}).Detect(p); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestDetectorNames(t *testing.T) {
	dets := []Detector{ML{}, ZeroForcing{}, MMSE{}, SphereDecoder{}, KBest{K: 1}, FCSD{}}
	want := []string{"ml", "zf", "mmse", "sd", "kbest", "fcsd"}
	for i, d := range dets {
		if d.Name() != want[i] {
			t.Fatalf("detector %d name %q, want %q", i, d.Name(), want[i])
		}
	}
}

func TestSymbolAndBitErrors(t *testing.T) {
	s := modulation.QAM16
	alpha := s.Alphabet()
	truth := []complex128{alpha[0], alpha[5], alpha[9]}
	est := []complex128{alpha[0], alpha[5], alpha[9]}
	if SymbolErrors(est, truth) != 0 || BitErrors(s, est, truth) != 0 {
		t.Fatal("errors on identical vectors")
	}
	est[1] = alpha[6]
	if SymbolErrors(est, truth) != 1 {
		t.Fatal("symbol error miscount")
	}
	if be := BitErrors(s, est, truth); be < 1 {
		t.Fatalf("bit errors = %d", be)
	}
}

// TestGrayBitErrorsAdjacent: adjacent symbols differ by exactly 1 bit —
// the reason Gray labeling is used for BER accounting.
func TestGrayBitErrorsAdjacent(t *testing.T) {
	s := modulation.QAM16
	norm := s.Norm()
	a := []complex128{complex(-3*norm, 1*norm)}
	b := []complex128{complex(-1*norm, 1*norm)} // I-adjacent
	if be := BitErrors(s, a, b); be != 1 {
		t.Fatalf("adjacent symbols differ in %d bits, want 1", be)
	}
}

func TestRankDeficientChannelRejected(t *testing.T) {
	h := linalg.NewCMatrix(2, 2) // all-zero channel
	p := &Problem{H: h, Y: []complex128{0, 0}, Scheme: modulation.QPSK}
	if _, err := (SphereDecoder{}).Detect(p); err == nil {
		t.Fatal("singular channel accepted by SD")
	}
	if _, err := (ZeroForcing{}).Detect(p); err == nil {
		t.Fatal("singular channel accepted by ZF")
	}
}

func BenchmarkReduce16QAM8User(b *testing.B) {
	r := rng.New(1)
	p, _ := synth(r, modulation.QAM16, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reduce(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSphereDecoder16QAM4User(b *testing.B) {
	r := rng.New(1)
	p, _ := synth(r, modulation.QAM16, 4, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SphereDecoder{}).Detect(p); err != nil {
			b.Fatal(err)
		}
	}
}

// synthTall builds a rectangular (nr > nt) problem.
func synthTall(r *rng.Source, s modulation.Scheme, nt, nr int, n0 float64) (*Problem, []complex128) {
	h := channel.Draw(channel.Rayleigh, r, nr, nt)
	x, _ := RandomSymbols(r, s, nt)
	y := channel.Transmit(r, h, x, n0)
	return &Problem{H: h, Y: y, Scheme: s}, x
}

// TestDetectorsOnTallChannel: all detectors handle nr > nt, and the
// reduction invariant holds on rectangular channels.
func TestDetectorsOnTallChannel(t *testing.T) {
	r := rng.New(41)
	p, x := synthTall(r, modulation.QAM16, 3, 9, 0.3)
	ml, err := ML{}.Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Detector{ZeroForcing{}, MMSE{NoiseVariance: 0.3}, SphereDecoder{}, KBest{K: 64}, FCSD{FullExpansion: 2}} {
		got, err := d.Detect(p)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(got) != 3 {
			t.Fatalf("%s: %d symbols", d.Name(), len(got))
		}
		if d.Name() == "sd" && math.Abs(p.Objective(got)-p.Objective(ml)) > 1e-8 {
			t.Fatalf("SD != ML on tall channel")
		}
	}
	// Tall channels at this SNR decode reliably via ML.
	if SymbolErrors(ml, x) > 1 {
		t.Fatalf("ML erred on a 9x3 channel")
	}
	// Reduction invariant on a rectangular system.
	red, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		cand, _ := RandomSymbols(r, modulation.QAM16, 3)
		spins, _ := red.EncodeSymbols(cand)
		if math.Abs(red.Ising.Energy(spins)-p.Objective(cand)) > 1e-8*(1+p.Objective(cand)) {
			t.Fatal("reduction invariant fails on tall channel")
		}
	}
}

// TestTallChannelEasierForZF: with 3x oversampling, ZF matches ML far
// more often than on the square channel at the same SNR.
func TestTallChannelEasierForZF(t *testing.T) {
	r := rng.New(43)
	const trials = 20
	squareHits, tallHits := 0, 0
	for k := 0; k < trials; k++ {
		sq, _ := synthTall(r, modulation.QAM16, 3, 3, 0.5)
		tall, _ := synthTall(r, modulation.QAM16, 3, 9, 0.5)
		for _, tc := range []struct {
			p    *Problem
			hits *int
		}{{sq, &squareHits}, {tall, &tallHits}} {
			zf, err := ZeroForcing{}.Detect(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			ml, err := ML{}.Detect(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if SymbolErrors(zf, ml) == 0 {
				*tc.hits++
			}
		}
	}
	if tallHits <= squareHits {
		t.Fatalf("oversampling did not help ZF: square %d vs tall %d", squareHits, tallHits)
	}
}

func TestReductionAccessors(t *testing.T) {
	r := rng.New(77)
	p, _ := synth(r, modulation.QAM16, 3, 0)
	red, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nr() != 3 || p.Nt() != 3 {
		t.Fatal("problem dims wrong")
	}
	if red.SpinsPerUser() != 4 || red.Users() != 3 {
		t.Fatal("reduction accessors wrong")
	}
	if red.Scheme() != modulation.QAM16 {
		t.Fatal("scheme accessor wrong")
	}
	if red.Problem() != p {
		t.Fatal("problem accessor wrong")
	}
}
