package mimo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/qubo"
)

// This file extends the soft-information path to ensemble detection
// (X-ResQ's flexible parallelism): many reverse-anneal arms — different
// classical candidates × different s_p switch points — each return a
// sample ensemble for the SAME reduced problem, and the receiver fuses
// all of them into one per-spin LLR vector before handing soft bits to
// the channel decoder.

// FuseLLRs fuses the per-arm read ensembles of one detection frame into
// per-spin log-likelihood ratios under a joint Boltzmann re-weighting:
//
//	LLR_i = log Σ_{s: s_i=+1} e^{−β(E(s)−E_min)}
//	      − log Σ_{s: s_i=−1} e^{−β(E(s)−E_min)} ,
//
// with the sums running over the POOLED samples of every arm. beta ≤ 0
// selects a scale-free default from the pooled energy spread
// (4 / (E_max − E_min), floored for degenerate ensembles); LLR magnitudes
// are clamped to maxAbs (≤ 0: 50), since a missing side would otherwise
// be ±∞.
//
// Fusion is bitwise permutation-invariant in both arm order and read
// order: the pooled samples are accumulated in a canonical (energy, spins)
// order, so any partition of the same read multiset into arms produces
// byte-identical LLRs. Samples with non-finite energies (NaN, ±Inf — a
// poisoned read would otherwise capture or erase the whole weighting) are
// dropped, the same policy metrics.Histogram applies to unbinnable NaN
// observations.
func FuseLLRs(arms [][]qubo.Sample, beta, maxAbs float64) ([]float64, error) {
	if maxAbs <= 0 {
		maxAbs = 50
	}
	var pool []qubo.Sample
	n := -1
	for _, arm := range arms {
		for _, s := range arm {
			if math.IsNaN(s.Energy) || math.IsInf(s.Energy, 0) {
				continue
			}
			if n < 0 {
				n = len(s.Spins)
			} else if len(s.Spins) != n {
				return nil, fmt.Errorf("mimo: fusion got %d-spin and %d-spin samples", n, len(s.Spins))
			}
			pool = append(pool, s)
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("mimo: fusion needs at least one finite-energy sample")
	}
	// Canonical accumulation order: energy, then spins lexicographically.
	// Samples that tie on both are identical, so float accumulation is a
	// pure function of the pooled multiset.
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].Energy != pool[b].Energy {
			return pool[a].Energy < pool[b].Energy
		}
		sa, sb := pool[a].Spins, pool[b].Spins
		for i := range sa {
			if sa[i] != sb[i] {
				return sa[i] < sb[i]
			}
		}
		return false
	})
	eMin := pool[0].Energy
	if beta <= 0 {
		spread := pool[len(pool)-1].Energy - eMin
		if spread < 1e-9 {
			beta = 1
		} else {
			beta = 4 / spread
		}
	}
	up := make([]float64, n)
	down := make([]float64, n)
	for _, s := range pool {
		w := math.Exp(-beta * (s.Energy - eMin))
		for i, sp := range s.Spins {
			if sp > 0 {
				up[i] += w
			} else {
				down[i] += w
			}
		}
	}
	llrs := make([]float64, n)
	for i := range llrs {
		switch {
		case up[i] == 0:
			llrs[i] = -maxAbs
		case down[i] == 0:
			llrs[i] = maxAbs
		default:
			l := math.Log(up[i]) - math.Log(down[i])
			if l > maxAbs {
				l = maxAbs
			}
			if l < -maxAbs {
				l = -maxAbs
			}
			llrs[i] = l
		}
	}
	return llrs, nil
}
