package mimo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/modulation"
)

// This file implements the tree-search detectors: the Schnorr–Euchner
// depth-first sphere decoder (exact ML at data-dependent cost), the
// K-best breadth-first decoder (paper reference [17]), and the fixed-
// complexity sphere decoder FCSD (paper reference [4]). The conclusion
// names K-best and FCSD as tunable-complexity classical modules whose
// output quality Δ𝐸_IS% can be traded against parallelizable compute.
//
// All three search the real-valued lattice: after RealDecompose, the
// problem is min ‖ỹ − H̃·x̃‖² with x̃_d ranging over the scheme's
// normalized PAM levels (the Q dimensions of BPSK are pinned to 0). With
// G = H̃ᵀH̃ = RᵀR (Cholesky) and x_LS = G⁻¹H̃ᵀỹ the objective decomposes
// as const + ‖R·(x̃ − x_LS)‖², which a triangular tree search explores
// dimension by dimension from the last row of R upward.

// realLattice is the shared triangular-search preparation.
type realLattice struct {
	r      *linalg.Matrix // upper-triangular Cholesky factor of H̃ᵀH̃
	center []float64      // unconstrained LS solution x_LS
	levels [][]float64    // candidate normalized amplitudes per dimension
	nt     int
	scheme modulation.Scheme
}

func newRealLattice(p *Problem) (*realLattice, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hr, yr := linalg.RealDecompose(p.H, p.Y)
	g := hr.Transpose().Mul(hr)
	l, err := g.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("mimo: channel Gram matrix not positive definite (rank-deficient channel): %w", err)
	}
	r := l.Transpose()
	ginv, err := g.Inverse()
	if err != nil {
		return nil, fmt.Errorf("mimo: %w", err)
	}
	center := ginv.MulVec(hr.Transpose().MulVec(yr))

	nt := p.Nt()
	norm := p.Scheme.Norm()
	levels := make([][]float64, 2*nt)
	iLevels := scaled(modulation.Levels(p.Scheme.BitsPerDimI()), norm)
	var qLevels []float64
	if b := p.Scheme.BitsPerDimQ(); b > 0 {
		qLevels = scaled(modulation.Levels(b), norm)
	} else {
		qLevels = []float64{0}
	}
	for d := 0; d < nt; d++ {
		levels[d] = iLevels
		levels[nt+d] = qLevels
	}
	return &realLattice{r: r, center: center, levels: levels, nt: nt, scheme: p.Scheme}, nil
}

func scaled(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// conditionalCenter returns the value of dimension d that would zero the
// residual given already-fixed dimensions above d: x_LS[d] −
// Σ_{j>d} R_dj·(x_j − x_LS[j]) / R_dd.
func (rl *realLattice) conditionalCenter(d int, x []float64) float64 {
	n := len(rl.center)
	sum := 0.0
	for j := d + 1; j < n; j++ {
		sum += rl.r.At(d, j) * (x[j] - rl.center[j])
	}
	return rl.center[d] - sum/rl.r.At(d, d)
}

// branchCost returns the added squared distance of choosing value v at
// dimension d given the conditional center c: (R_dd·(v − c))².
func (rl *realLattice) branchCost(d int, v, c float64) float64 {
	t := rl.r.At(d, d) * (v - c)
	return t * t
}

// symbols assembles the complex symbol vector from a real lattice point.
func (rl *realLattice) symbols(x []float64) []complex128 {
	out := make([]complex128, rl.nt)
	for u := 0; u < rl.nt; u++ {
		out[u] = complex(x[u], x[rl.nt+u])
	}
	return out
}

// SphereDecoder is the Schnorr–Euchner depth-first sphere decoder. It is
// an exact ML detector: it returns the same answer as exhaustive ML at a
// (typically far smaller, but worst-case exponential) data-dependent
// cost. InitialRadius optionally seeds the pruning radius (0 = infinite).
type SphereDecoder struct {
	InitialRadius float64
}

// Name implements Detector.
func (SphereDecoder) Name() string { return "sd" }

// Detect implements Detector.
func (d SphereDecoder) Detect(p *Problem) ([]complex128, error) {
	rl, err := newRealLattice(p)
	if err != nil {
		return nil, err
	}
	n := len(rl.center)
	x := make([]float64, n)
	best := make([]float64, n)
	bestCost := math.Inf(1)
	if d.InitialRadius > 0 {
		bestCost = d.InitialRadius * d.InitialRadius
	}
	found := false

	var descend func(dim int, partial float64)
	descend = func(dim int, partial float64) {
		if dim < 0 {
			if partial < bestCost {
				bestCost = partial
				copy(best, x)
				found = true
			}
			return
		}
		c := rl.conditionalCenter(dim, x)
		// Schnorr–Euchner: try levels in increasing distance from the
		// conditional center so the first leaf is already good and later
		// pruning is tight.
		order := enumerateByDistance(rl.levels[dim], c)
		for _, v := range order {
			cost := partial + rl.branchCost(dim, v, c)
			if cost >= bestCost {
				// Levels are in increasing branch cost: all further
				// candidates at this dimension are at least as bad.
				break
			}
			x[dim] = v
			descend(dim-1, cost)
		}
	}
	descend(n-1, 0)
	if !found {
		return nil, fmt.Errorf("mimo: sphere decoder found no lattice point within initial radius %g", d.InitialRadius)
	}
	return rl.symbols(best), nil
}

// enumerateByDistance returns the levels sorted by |level − center|.
func enumerateByDistance(levels []float64, center float64) []float64 {
	out := append([]float64(nil), levels...)
	sort.Slice(out, func(a, b int) bool {
		return math.Abs(out[a]-center) < math.Abs(out[b]-center)
	})
	return out
}

// KBest is the breadth-first K-best sphere decoder [17]: at each tree
// level it keeps the K partial paths with the lowest accumulated cost.
// K trades accuracy against a fixed, parallelizable workload; K ≥ L^n
// reduces to exact ML.
type KBest struct {
	K int
}

// Name implements Detector.
func (KBest) Name() string { return "kbest" }

// Detect implements Detector.
func (d KBest) Detect(p *Problem) ([]complex128, error) {
	if d.K <= 0 {
		return nil, fmt.Errorf("mimo: K-best requires K >= 1, got %d", d.K)
	}
	rl, err := newRealLattice(p)
	if err != nil {
		return nil, err
	}
	n := len(rl.center)
	type path struct {
		x    []float64 // filled from dimension n−1 down
		cost float64
	}
	paths := []path{{x: make([]float64, n)}}
	for dim := n - 1; dim >= 0; dim-- {
		var next []path
		for _, pth := range paths {
			c := rl.conditionalCenter(dim, pth.x)
			for _, v := range rl.levels[dim] {
				nx := append([]float64(nil), pth.x...)
				nx[dim] = v
				next = append(next, path{x: nx, cost: pth.cost + rl.branchCost(dim, v, c)})
			}
		}
		sort.Slice(next, func(a, b int) bool { return next[a].cost < next[b].cost })
		if len(next) > d.K {
			next = next[:d.K]
		}
		paths = next
	}
	return rl.symbols(paths[0].x), nil
}

// FCSD is the fixed-complexity sphere decoder [4]: it fully enumerates
// the first FullExpansion tree levels and completes each branch by
// successive interference cancellation (slicing to the nearest level),
// giving a constant, fully parallelizable workload of L^FullExpansion
// branches.
type FCSD struct {
	FullExpansion int
}

// Name implements Detector.
func (FCSD) Name() string { return "fcsd" }

// Detect implements Detector.
func (d FCSD) Detect(p *Problem) ([]complex128, error) {
	rl, err := newRealLattice(p)
	if err != nil {
		return nil, err
	}
	n := len(rl.center)
	rho := d.FullExpansion
	if rho < 0 {
		return nil, fmt.Errorf("mimo: FCSD FullExpansion must be >= 0")
	}
	if rho > n {
		rho = n
	}
	x := make([]float64, n)
	best := make([]float64, n)
	bestCost := math.Inf(1)

	// complete finishes a branch below the fully-expanded region by SIC.
	complete := func(partial float64) float64 {
		cost := partial
		for dim := n - 1 - rho; dim >= 0; dim-- {
			c := rl.conditionalCenter(dim, x)
			v := nearestOf(rl.levels[dim], c)
			x[dim] = v
			cost += rl.branchCost(dim, v, c)
		}
		return cost
	}

	var expand func(dim int, partial float64)
	expand = func(dim int, partial float64) {
		if dim < n-rho {
			if cost := complete(partial); cost < bestCost {
				bestCost = cost
				copy(best, x)
			}
			return
		}
		c := rl.conditionalCenter(dim, x)
		for _, v := range rl.levels[dim] {
			x[dim] = v
			expand(dim-1, partial+rl.branchCost(dim, v, c))
		}
	}
	expand(n-1, 0)
	return rl.symbols(best), nil
}

func nearestOf(levels []float64, c float64) float64 {
	best, bd := levels[0], math.Abs(levels[0]-c)
	for _, v := range levels[1:] {
		if d := math.Abs(v - c); d < bd {
			best, bd = v, d
		}
	}
	return best
}
