package mimo

import (
	"fmt"
	"math"
)

// MaxMLCandidates bounds exhaustive ML search; beyond ~2²⁴ lattice points
// the sphere decoder is the exact-ML tool.
const MaxMLCandidates = 1 << 24

// ML is the exhaustive maximum-likelihood detector: it enumerates the full
// constellation lattice and returns argmin ‖y − H·x‖². Exponential in the
// number of users — usable only on small instances, where it serves as the
// ground-truth oracle for every other detector.
type ML struct{}

// Name implements Detector.
func (ML) Name() string { return "ml" }

// Detect implements Detector.
func (ML) Detect(p *Problem) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	alpha := p.Scheme.Alphabet()
	nt := p.Nt()
	total := 1.0
	for i := 0; i < nt; i++ {
		total *= float64(len(alpha))
		if total > MaxMLCandidates {
			return nil, fmt.Errorf("mimo: ML search space %v exceeds limit %d", total, MaxMLCandidates)
		}
	}
	idx := make([]int, nt)
	x := make([]complex128, nt)
	best := make([]complex128, nt)
	bestCost := math.Inf(1)
	for {
		for i, k := range idx {
			x[i] = alpha[k]
		}
		if c := p.Objective(x); c < bestCost {
			bestCost = c
			copy(best, x)
		}
		// Odometer increment.
		i := 0
		for ; i < nt; i++ {
			idx[i]++
			if idx[i] < len(alpha) {
				break
			}
			idx[i] = 0
		}
		if i == nt {
			break
		}
	}
	return best, nil
}
