package mimo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/modulation"
	"repro/internal/qubo"
)

// This file implements a concrete source for §3.1's "soft information to
// narrow the search space": per-bit log-likelihood ratios computed from a
// linear detector's filtered output (the partial-marginalization family
// of soft MIMO detectors the paper cites), turned into the pairwise
// QUBO constraints of Figure 4 for the bit pairs the receiver is most
// confident about.

// BitLLR is the reliability of one bit of one user's symbol:
// LLR = log P(bit = 1 | y) − log P(bit = 0 | y) under a per-user
// Gaussian approximation of the filtered observation.
type BitLLR struct {
	User int
	Bit  int // index within the user's Gray label
	LLR  float64
}

// SpinIndex returns the bit's position in the reduction's spin layout.
// The reduction orders spins per real dimension (all users' I bits, then
// all users' Q bits), while Gray labels order I bits before Q bits per
// user; this helper bridges the two.
func (l BitLLR) SpinIndex(red *Reduction) int {
	biI := red.Scheme().BitsPerDimI()
	if l.Bit < biI {
		return red.dimOffset[l.User] + l.Bit
	}
	return red.dimOffset[red.nt+l.User] + (l.Bit - biI)
}

// SoftOutput computes max-log per-bit LLRs from a filtered symbol
// estimate: for each bit, the difference of the squared distances from
// the estimate to the nearest constellation point with the bit 0 and
// with the bit 1, scaled by 1/noiseVar.
//
// Bits are labelled in the REDUCTION's binary (weighted-spin) labeling,
// not the Gray transmit labeling: a prior on such a bit is exactly a
// prior on one Ising spin, which is what the Figure 4 constraints need.
// (Gray bits are XORs of adjacent binary bits, so a Gray-bit prior has
// no single-spin expression.)
//
// xf is the UNsliced filtered output (e.g. the ZF/MMSE estimate before
// hard slicing); noiseVar calibrates confidence (the effective
// post-filter noise variance — using the channel N0 is the standard
// first-order choice).
func SoftOutput(s modulation.Scheme, xf []complex128, noiseVar float64) ([]BitLLR, error) {
	if noiseVar <= 0 {
		return nil, fmt.Errorf("mimo: soft output needs positive noise variance")
	}
	alpha := s.Alphabet()
	bitsPer := s.BitsPerSymbol()
	labels := make([][]int8, len(alpha))
	for i, pt := range alpha {
		labels[i] = spinLabel(s, pt)
	}
	var out []BitLLR
	for u, est := range xf {
		for b := 0; b < bitsPer; b++ {
			d0, d1 := math.Inf(1), math.Inf(1)
			for i, pt := range alpha {
				d := sqAbs(est - pt)
				if labels[i][b] == 0 {
					if d < d0 {
						d0 = d
					}
				} else if d < d1 {
					d1 = d
				}
			}
			// Max-log LLR: (d0 − d1)/N0; positive favours bit = 1.
			out = append(out, BitLLR{User: u, Bit: b, LLR: (d0 - d1) / noiseVar})
		}
	}
	return out, nil
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// spinLabel returns a constellation point's bits in the reduction's
// binary labeling: the I dimension's weighted-spin bits, then the Q
// dimension's, with q = (s+1)/2.
func spinLabel(s modulation.Scheme, pt complex128) []int8 {
	norm := s.Norm()
	bits := spinsToBits(modulation.LevelToSpins(real(pt)/norm, s.BitsPerDimI()))
	if bq := s.BitsPerDimQ(); bq > 0 {
		bits = append(bits, spinsToBits(modulation.LevelToSpins(imag(pt)/norm, bq))...)
	}
	return bits
}

func spinsToBits(spins []int8) []int8 {
	out := make([]int8, len(spins))
	for i, sp := range spins {
		if sp > 0 {
			out[i] = 1
		}
	}
	return out
}

// ConfidentConstraints converts the most reliable DISJOINT bit pairs into
// Figure 4 soft constraints on the reduced QUBO: bits are ranked by
// |LLR|, paired greedily within each user's symbol (the paper's example
// constrains q1q2 and q3q4 of one symbol), and each pair whose weaker
// bit still clears minAbsLLR yields one constraint with the given
// weight. The returned constraints reference SPIN indices of red's
// layout, ready for qubo.ApplyConstraints on red.Ising.ToQUBO().
func ConfidentConstraints(red *Reduction, llrs []BitLLR, minAbsLLR, weight float64, maxPairs int) []qubo.SoftConstraint {
	if maxPairs <= 0 {
		maxPairs = 4
	}
	// Group by user, sort each group by reliability.
	byUser := map[int][]BitLLR{}
	for _, l := range llrs {
		byUser[l.User] = append(byUser[l.User], l)
	}
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	var cons []qubo.SoftConstraint
	for _, u := range users {
		group := byUser[u]
		sort.Slice(group, func(a, b int) bool {
			return math.Abs(group[a].LLR) > math.Abs(group[b].LLR)
		})
		for k := 0; k+1 < len(group) && len(cons) < maxPairs; k += 2 {
			a, b := group[k], group[k+1]
			if math.Abs(b.LLR) < minAbsLLR {
				break // weaker pairs in this group only get worse
			}
			cons = append(cons, qubo.SoftConstraint{
				I:       a.SpinIndex(red),
				J:       b.SpinIndex(red),
				TargetI: bitFromLLR(a.LLR),
				TargetJ: bitFromLLR(b.LLR),
				Weight:  weight,
			})
		}
		if len(cons) >= maxPairs {
			break
		}
	}
	return cons
}

func bitFromLLR(llr float64) int8 {
	if llr > 0 {
		return 1
	}
	return 0
}
