package mimo

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/qubo"
	"repro/internal/rng"
)

func sample(energy float64, spins ...int8) qubo.Sample {
	return qubo.Sample{Spins: spins, Energy: energy}
}

// TestFuseLLRsEmpty: an empty read set — no arms, empty arms, or arms
// whose every read carries a non-finite energy — is an error, not a
// silently-confident LLR vector.
func TestFuseLLRsEmpty(t *testing.T) {
	cases := [][][]qubo.Sample{
		nil,
		{},
		{{}, {}},
		{{sample(math.NaN(), 1, -1)}, {sample(math.Inf(1), 1, 1), sample(math.Inf(-1), -1, -1)}},
	}
	for i, arms := range cases {
		if _, err := FuseLLRs(arms, 0, 0); err == nil {
			t.Fatalf("case %d: empty fusion accepted", i)
		}
	}
}

// TestFuseLLRsAllIdenticalReads: a degenerate ensemble (every read the
// same state, zero energy spread) fuses to saturated LLRs at the clamp,
// signed by the read's spins — not NaN from a 0/0 normalization.
func TestFuseLLRsAllIdenticalReads(t *testing.T) {
	arms := [][]qubo.Sample{
		{sample(-3, 1, -1), sample(-3, 1, -1)},
		{sample(-3, 1, -1)},
	}
	llrs, err := FuseLLRs(arms, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(llrs, []float64{50, -50}) {
		t.Fatalf("identical-read fusion gave %v, want saturated ±50", llrs)
	}
	llrs, err = FuseLLRs(arms, 0, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(llrs, []float64{7.5, -7.5}) {
		t.Fatalf("clamp override ignored: %v", llrs)
	}
}

// TestFuseLLRsDropsNonFinite: NaN/±Inf energies are dropped like
// metrics.Histogram drops unbinnable observations — a single poisoned
// read must not capture (−Inf), erase (+Inf), or NaN-poison the fusion.
func TestFuseLLRsDropsNonFinite(t *testing.T) {
	clean := [][]qubo.Sample{{sample(-2, 1, 1), sample(-1, 1, -1), sample(0, -1, -1)}}
	want, err := FuseLLRs(clean, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := [][]qubo.Sample{
		{sample(math.NaN(), -1, 1), sample(-2, 1, 1), sample(math.Inf(-1), -1, 1)},
		{sample(-1, 1, -1), sample(math.Inf(1), -1, 1), sample(0, -1, -1)},
	}
	got, err := FuseLLRs(poisoned, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("poisoned fusion %v differs from clean %v", got, want)
	}
	for i, l := range got {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("LLR %d is non-finite: %g", i, l)
		}
	}
}

// TestFuseLLRsSignsFollowBoltzmann: lower-energy states dominate the
// weighting, so each spin's LLR sign follows the low-energy consensus.
func TestFuseLLRsSignsFollowBoltzmann(t *testing.T) {
	arms := [][]qubo.Sample{
		{sample(-10, 1, -1), sample(-10, 1, -1), sample(0, -1, 1)},
	}
	llrs, err := FuseLLRs(arms, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if llrs[0] <= 0 || llrs[1] >= 0 {
		t.Fatalf("LLR signs %v contradict the low-energy reads (+1, −1)", llrs)
	}
	// An explicit sharper beta pushes both further toward the consensus.
	sharp, err := FuseLLRs(arms, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sharp[0] <= llrs[0] || sharp[1] >= llrs[1] {
		t.Fatalf("beta=10 fusion %v not sharper than auto %v", sharp, llrs)
	}
}

// TestFuseLLRsMixedSpinLengthsRejected: arms must agree on the problem.
func TestFuseLLRsMixedSpinLengthsRejected(t *testing.T) {
	arms := [][]qubo.Sample{{sample(-1, 1, -1)}, {sample(-1, 1, -1, 1)}}
	if _, err := FuseLLRs(arms, 0, 0); err == nil {
		t.Fatal("mixed spin lengths accepted")
	}
}

// TestFuseLLRsPermutationInvariant: fusion is BITWISE invariant in arm
// order and in how the same read multiset is partitioned into arms —
// the canonical accumulation order makes float summation order a pure
// function of the pooled reads.
func TestFuseLLRsPermutationInvariant(t *testing.T) {
	r := rng.New(41)
	var reads []qubo.Sample
	for i := 0; i < 60; i++ {
		spins := make([]int8, 6)
		for j := range spins {
			spins[j] = r.Spin()
		}
		reads = append(reads, qubo.Sample{Spins: spins, Energy: math.Round(r.NormFloat64()*4) / 2})
	}
	baseline, err := FuseLLRs([][]qubo.Sample{reads}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]qubo.Sample(nil), reads...)
		r.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		// Random partition into 1–6 arms.
		narms := 1 + r.Intn(6)
		arms := make([][]qubo.Sample, narms)
		for _, s := range shuffled {
			a := r.Intn(narms)
			arms[a] = append(arms[a], s)
		}
		got, err := FuseLLRs(arms, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Fatalf("trial %d: partition changed fusion bytes: %v vs %v", trial, got, baseline)
		}
	}
}
