package mimo

import (
	"fmt"
)

// This file implements the linear detectors the paper's conclusion
// discusses as alternative classical modules: zero-forcing, which nulls
// the channel by (pseudo-)inversion, and MMSE, which regularizes the
// inversion by the noise variance. Both cost one matrix inversion — more
// than greedy search, less than tree search — and both slice the filtered
// output to the nearest constellation point per user.

// ZeroForcing is the ZF linear detector: x̂ = slice((HᴴH)⁻¹Hᴴ·y).
type ZeroForcing struct{}

// Name implements Detector.
func (ZeroForcing) Name() string { return "zf" }

// Detect implements Detector.
func (ZeroForcing) Detect(p *Problem) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hh := p.H.ConjTranspose()
	gram := hh.Mul(p.H)
	inv, err := gram.Inverse()
	if err != nil {
		return nil, fmt.Errorf("mimo: zero-forcing: %w", err)
	}
	xf := inv.Mul(hh).MulVec(p.Y)
	return sliceAll(p, xf), nil
}

// MMSE is the linear minimum mean-square-error detector:
// x̂ = slice((HᴴH + N0·I)⁻¹Hᴴ·y), with N0 the noise variance (per unit
// symbol energy). With N0 = 0 it coincides with zero-forcing.
type MMSE struct {
	NoiseVariance float64
}

// Name implements Detector.
func (MMSE) Name() string { return "mmse" }

// Detect implements Detector.
func (d MMSE) Detect(p *Problem) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.NoiseVariance < 0 {
		return nil, fmt.Errorf("mimo: mmse: negative noise variance")
	}
	hh := p.H.ConjTranspose()
	gram := hh.Mul(p.H).AddScaledIdentity(complex(d.NoiseVariance, 0))
	inv, err := gram.Inverse()
	if err != nil {
		return nil, fmt.Errorf("mimo: mmse: %w", err)
	}
	xf := inv.Mul(hh).MulVec(p.Y)
	return sliceAll(p, xf), nil
}

func sliceAll(p *Problem, xf []complex128) []complex128 {
	out := make([]complex128, len(xf))
	for i, v := range xf {
		out[i] = p.Scheme.Slice(v)
	}
	return out
}
