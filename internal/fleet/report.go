package fleet

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/annealer"
)

// DeviceStats aggregates one device's plan-phase accounting.
type DeviceStats struct {
	ID int `json:"id"`
	// Backend names the device's backend kind (heterogeneous pools only;
	// empty for homogeneous QPU fleets).
	Backend     string  `json:"backend,omitempty"`
	Batches     int     `json:"batches"`
	Frames      int     `json:"frames"`
	BusyMicros  float64 `json:"busy_us"`
	Utilization float64 `json:"utilization"`
}

// BackendStats aggregates one backend kind's devices (heterogeneous pools
// only).
type BackendStats struct {
	Backend string `json:"backend"`
	Devices int    `json:"devices"`
	Batches int    `json:"batches"`
	Frames  int    `json:"frames"`
	// Utilization is the mean across the kind's devices.
	Utilization float64 `json:"utilization"`
}

// StreamStats aggregates one stream's outcomes.
type StreamStats struct {
	Stream         int     `json:"stream"`
	Frames         int     `json:"frames"`
	Served         int     `json:"served"`
	Shed           int     `json:"shed"`
	DeadlineMisses int     `json:"deadline_misses"`
	MeanLatency    float64 `json:"mean_latency_us"`
}

// Report summarizes one Serve call.
type Report struct {
	Policy string `json:"policy"`
	// Route is the routing policy (set only when hybrid routing is on).
	Route string `json:"route,omitempty"`
	// RouteFallbacks counts frames whose routing class was relaxed to any
	// after their backend class died.
	RouteFallbacks int `json:"route_fallbacks,omitempty"`
	Frames         int `json:"frames"`
	Served         int `json:"served"`
	Shed           int `json:"shed"`
	Retries        int `json:"retries"`
	Batches        int `json:"batches"`
	// MeanBatchSize counts frames per non-faulted programming cycle.
	MeanBatchSize float64 `json:"mean_batch_size"`
	// MakespanMicros spans simulated time zero to the last finish.
	MakespanMicros float64 `json:"makespan_us"`
	// ThroughputPerSecond is served frames per simulated second.
	ThroughputPerSecond float64 `json:"throughput_fps"`
	// Latency figures are Finish − Arrival over served frames; queueing
	// delay is Start − Arrival.
	MeanLatencyMicros float64 `json:"mean_latency_us"`
	P50LatencyMicros  float64 `json:"p50_latency_us"`
	P99LatencyMicros  float64 `json:"p99_latency_us"`
	P99QueueMicros    float64 `json:"p99_queue_us"`
	DeadlineMissRate  float64 `json:"deadline_miss_rate"`
	// PrepCache reports the prepared-problem cache's warm-pass counters
	// (all zero when Config.PrepCacheSize < 0 disabled it).
	PrepCache annealer.PrepCacheStats `json:"prep_cache"`

	Devices []DeviceStats `json:"devices"`
	// Backends is per-backend-kind accounting (nil for homogeneous pools).
	Backends []BackendStats `json:"backends,omitempty"`
	Streams  []StreamStats  `json:"streams"`
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted xs by
// nearest-rank, 0 for empty input.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// report aggregates the plan's accounting into a Report.
func (pl *planner) report() Report {
	rep := Report{
		Policy:  pl.cfg.Policy.String(),
		Frames:  len(pl.outcomes),
		Retries: pl.retries,
		Batches: len(pl.batches),
	}
	rep.MakespanMicros = pl.makespan()
	rep.PrepCache = pl.prepStats

	var latencies, queues []float64
	perStream := map[int]*StreamStats{}
	var latSum float64
	misses := 0
	for i := range pl.outcomes {
		o := &pl.outcomes[i]
		ss := perStream[o.Stream]
		if ss == nil {
			ss = &StreamStats{Stream: o.Stream}
			perStream[o.Stream] = ss
		}
		ss.Frames++
		lat := o.Finish - o.Arrival
		ss.MeanLatency += lat
		if o.Shed {
			rep.Shed++
			ss.Shed++
		} else {
			rep.Served++
			ss.Served++
			latencies = append(latencies, lat)
			queues = append(queues, o.QueueMicros)
			latSum += lat
		}
		if o.DeadlineMissed {
			misses++
			ss.DeadlineMisses++
		}
	}
	if rep.Served > 0 {
		rep.MeanLatencyMicros = latSum / float64(rep.Served)
	}
	sort.Float64s(latencies)
	sort.Float64s(queues)
	rep.P50LatencyMicros = percentile(latencies, 0.50)
	rep.P99LatencyMicros = percentile(latencies, 0.99)
	rep.P99QueueMicros = percentile(queues, 0.99)
	if rep.Frames > 0 {
		rep.DeadlineMissRate = float64(misses) / float64(rep.Frames)
	}
	if rep.MakespanMicros > 0 {
		rep.ThroughputPerSecond = float64(rep.Served) / rep.MakespanMicros * 1e6
	}

	served := 0
	devs := make([]DeviceStats, len(pl.cfg.Devices))
	for d := range devs {
		devs[d].ID = d
		devs[d].BusyMicros = pl.busy[d]
		if rep.MakespanMicros > 0 {
			devs[d].Utilization = pl.busy[d] / rep.MakespanMicros
		}
		if pl.hetero {
			devs[d].Backend = pl.cfg.Devices[d].Backend.String()
		}
	}
	goodBatches := 0
	for i := range pl.batches {
		b := &pl.batches[i]
		devs[b.dev].Batches++
		if !b.faulted {
			devs[b.dev].Frames += len(b.frames)
			served += len(b.frames)
			goodBatches++
		}
	}
	if goodBatches > 0 {
		rep.MeanBatchSize = float64(served) / float64(goodBatches)
	}
	rep.Devices = devs
	if pl.hetero {
		if pl.cfg.Route != RouteAny {
			rep.Route = pl.cfg.Route.String()
		}
		rep.RouteFallbacks = pl.routeFallbacks
		for kind := BackendQPUSim; kind <= BackendQAOA; kind++ {
			bs := BackendStats{Backend: kind.String()}
			for d := range devs {
				if pl.cfg.Devices[d].Backend != kind {
					continue
				}
				bs.Devices++
				bs.Batches += devs[d].Batches
				bs.Frames += devs[d].Frames
				bs.Utilization += devs[d].Utilization
			}
			if bs.Devices == 0 {
				continue
			}
			bs.Utilization /= float64(bs.Devices)
			rep.Backends = append(rep.Backends, bs)
		}
	}

	for _, id := range pl.streams {
		ss := perStream[id]
		if ss == nil {
			continue
		}
		if ss.Frames > 0 {
			ss.MeanLatency /= float64(ss.Frames)
		}
		rep.Streams = append(rep.Streams, *ss)
	}
	return rep
}

// WriteTable renders the report for terminals.
func (r Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "policy\t%s\n", r.Policy)
	fmt.Fprintf(tw, "frames\t%d (served %d, shed %d, retries %d)\n", r.Frames, r.Served, r.Shed, r.Retries)
	fmt.Fprintf(tw, "batches\t%d (mean size %.2f)\n", r.Batches, r.MeanBatchSize)
	fmt.Fprintf(tw, "makespan\t%.0f µs\n", r.MakespanMicros)
	fmt.Fprintf(tw, "throughput\t%.1f frames/s\n", r.ThroughputPerSecond)
	fmt.Fprintf(tw, "latency\tmean %.0f µs, p50 %.0f µs, p99 %.0f µs\n",
		r.MeanLatencyMicros, r.P50LatencyMicros, r.P99LatencyMicros)
	fmt.Fprintf(tw, "queueing\tp99 %.0f µs\n", r.P99QueueMicros)
	fmt.Fprintf(tw, "deadline misses\t%.1f%%\n", 100*r.DeadlineMissRate)
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "device\tbatches\tframes\tbusy µs\tutilization")
	for _, d := range r.Devices {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\t%.1f%%\n", d.ID, d.Batches, d.Frames, d.BusyMicros, 100*d.Utilization)
	}
	if len(r.Backends) > 0 {
		fmt.Fprintln(tw)
		fmt.Fprintln(tw, "backend\tdevices\tbatches\tframes\tutilization")
		for _, b := range r.Backends {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f%%\n", b.Backend, b.Devices, b.Batches, b.Frames, 100*b.Utilization)
		}
		if r.Route != "" {
			fmt.Fprintf(tw, "route\t%s (%d fallbacks)\n", r.Route, r.RouteFallbacks)
		}
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "stream\tframes\tserved\tshed\tmisses\tmean latency µs")
	for _, s := range r.Streams {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.0f\n", s.Stream, s.Frames, s.Served, s.Shed, s.DeadlineMisses, s.MeanLatency)
	}
	return tw.Flush()
}
