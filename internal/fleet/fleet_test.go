package fleet

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/annealer"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/telemetry"
)

var (
	problemOnce sync.Once
	problemPool []*qubo.Ising
)

// testProblems returns a small pool of detection Isings (6 spins each),
// synthesized once — fleet tests exercise scheduling, not anneal quality.
func testProblems(t testing.TB) []*qubo.Ising {
	t.Helper()
	problemOnce.Do(func() {
		for seed := uint64(1); seed <= 4; seed++ {
			in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			problemPool = append(problemPool, in.Reduction.Ising)
		}
	})
	return problemPool
}

// uniformRequests lays out perStream frames on each of streams streams,
// arriving interval μs apart per stream.
func uniformRequests(t testing.TB, streams, perStream int, interval, deadline float64) []Request {
	t.Helper()
	probs := testProblems(t)
	var reqs []Request
	for s := 0; s < streams; s++ {
		for q := 0; q < perStream; q++ {
			p := probs[(s*perStream+q)%len(probs)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * interval,
				Deadline:     deadline,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

func logicalDevices(n int) []Device {
	devs := make([]Device, n)
	for i := range devs {
		devs[i].SweepsPerMicrosecond = 30
	}
	return devs
}

func TestServeBasic(t *testing.T) {
	reqs := uniformRequests(t, 3, 4, 50, 0)
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(2), NumReads: 4, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), len(reqs))
	}
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if i > 0 {
			prev := &res.Outcomes[i-1]
			if o.Stream < prev.Stream || (o.Stream == prev.Stream && o.Seq <= prev.Seq) {
				t.Fatalf("outcomes not ordered by (stream, seq) at %d", i)
			}
		}
		if o.Shed {
			t.Fatalf("frame (%d,%d) shed (%s) in an underloaded fleet", o.Stream, o.Seq, o.ShedReason)
		}
		if o.Device < 0 || o.Batch < 0 || o.Attempts != 1 {
			t.Fatalf("frame (%d,%d): bad placement %+v", o.Stream, o.Seq, o)
		}
		if o.Start < o.Arrival || o.Finish <= o.Start {
			t.Fatalf("frame (%d,%d): bad timing arrival=%g start=%g finish=%g", o.Stream, o.Seq, o.Arrival, o.Start, o.Finish)
		}
		if len(o.Best.Spins) == 0 {
			t.Fatalf("frame (%d,%d): empty answer", o.Stream, o.Seq)
		}
	}
	rep := res.Report
	if rep.Frames != len(reqs) || rep.Served != len(reqs) || rep.Shed != 0 {
		t.Fatalf("report totals inconsistent: %+v", rep)
	}
	if rep.ThroughputPerSecond <= 0 || rep.P99LatencyMicros < rep.P50LatencyMicros {
		t.Fatalf("report stats inconsistent: %+v", rep)
	}
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "least-loaded") {
		t.Fatalf("report table missing policy:\n%s", sb.String())
	}
}

func TestShedStreamQueueFull(t *testing.T) {
	reqs := uniformRequests(t, 1, 4, 0, 0) // all arrive at t=0
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(1), NumReads: 4, BatchMax: 1, StreamQueueBound: 1, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, o := range res.Outcomes {
		if o.Shed {
			shed++
			if o.ShedReason != ShedStreamQueueFull {
				t.Fatalf("frame (%d,%d): reason %q, want %q", o.Stream, o.Seq, o.ShedReason, ShedStreamQueueFull)
			}
			if o.Source != core.AnswerClassicalFallback {
				t.Fatalf("shed frame answered from %v", o.Source)
			}
		}
	}
	if shed != 2 { // seq 0 dispatches, seq 1 queues, seqs 2–3 shed
		t.Fatalf("shed %d frames, want 2", shed)
	}
}

func TestShedFleetOverload(t *testing.T) {
	probs := testProblems(t)
	var reqs []Request
	for s := 0; s < 4; s++ {
		p := probs[s%len(probs)]
		reqs = append(reqs, Request{
			Stream: s, Seq: 0, Problem: p, InitialState: make([]int8, p.N),
		})
		for i := range reqs[len(reqs)-1].InitialState {
			reqs[len(reqs)-1].InitialState[i] = -1
		}
	}
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(1), NumReads: 4, BatchMax: 1, FleetQueueBound: 2, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	for _, o := range res.Outcomes {
		if o.Shed {
			reasons = append(reasons, o.ShedReason)
		}
	}
	if len(reasons) != 1 || reasons[0] != ShedFleetOverload {
		t.Fatalf("shed reasons %v, want one %q", reasons, ShedFleetOverload)
	}
}

func TestShedDeadlineExpired(t *testing.T) {
	reqs := uniformRequests(t, 1, 2, 0, 10) // 10 μs budget, service ≫ 10 μs
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(1), NumReads: 50, BatchMax: 1, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Outcomes[0], res.Outcomes[1]
	if first.Shed || !first.DeadlineMissed {
		t.Fatalf("first frame: want served-but-missed, got %+v", first)
	}
	if !second.Shed || second.ShedReason != ShedDeadlineExpired {
		t.Fatalf("second frame: want %q shed, got %+v", ShedDeadlineExpired, second)
	}
}

func TestRetriesExhausted(t *testing.T) {
	devs := logicalDevices(1)
	devs[0].Faults = annealer.FaultModel{ProgrammingFailureRate: 1}
	reg := telemetry.NewRegistry()
	reqs := uniformRequests(t, 2, 2, 0, 0)
	res, err := Serve(context.Background(), Config{
		Devices: devs, NumReads: 4, MaxAttempts: 2, Seed: 1, Metrics: reg,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if !o.Shed || o.ShedReason != ShedRetriesExhausted {
			t.Fatalf("frame (%d,%d): want %q shed, got %+v", o.Stream, o.Seq, ShedRetriesExhausted, o)
		}
		if o.Attempts != 2 {
			t.Fatalf("frame (%d,%d): %d attempts, want 2", o.Stream, o.Seq, o.Attempts)
		}
	}
	if res.Report.Retries == 0 {
		t.Fatal("report shows no retries")
	}
	if reg.Counter("fleet_retries_total").Value() != float64(res.Report.Retries) {
		t.Fatal("retry counter disagrees with report")
	}
}

func TestDeviceFailAt(t *testing.T) {
	// Device 1 dies before the first arrival; everything must run on
	// device 0.
	devs := logicalDevices(2)
	devs[1].FailAt = 1e-9
	reqs := uniformRequests(t, 2, 3, 10, 0)
	for i := range reqs {
		reqs[i].Arrival += 1
	}
	res, err := Serve(context.Background(), Config{Devices: devs, NumReads: 4, Seed: 1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Shed || o.Device != 0 {
			t.Fatalf("frame (%d,%d) ran on device %d (shed=%v)", o.Stream, o.Seq, o.Device, o.Shed)
		}
	}

	// Whole fleet down before anything arrives: degradation ladder's
	// last rung answers every frame classically.
	devs = logicalDevices(1)
	devs[0].FailAt = 1
	late := uniformRequests(t, 1, 2, 5, 0)
	for i := range late {
		late[i].Arrival += 5
	}
	res, err = Serve(context.Background(), Config{Devices: devs, NumReads: 4, Seed: 1}, late)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if !o.Shed || o.ShedReason != ShedDeviceUnavailable {
			t.Fatalf("frame (%d,%d): want %q shed, got %+v", o.Stream, o.Seq, ShedDeviceUnavailable, o)
		}
	}
}

func TestBatchingRules(t *testing.T) {
	probs := testProblems(t)
	mk := func(stream, seq int, arrival, sp float64) Request {
		p := probs[0]
		init := make([]int8, p.N)
		for i := range init {
			init[i] = 1
		}
		return Request{Stream: stream, Seq: seq, Arrival: arrival, Problem: p, InitialState: init, Sp: sp}
	}

	// Occupy the one device with stream 9, queue three stream-0 frames
	// plus an incompatible-schedule frame; on completion the three
	// compatible frames must share one programming cycle (continuation
	// included), the odd schedule must not.
	reqs := []Request{
		mk(9, 0, 0, 0),
		mk(0, 0, 1, 0), mk(0, 1, 2, 0), mk(0, 2, 3, 0),
		mk(1, 0, 1, 0.6),
	}
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(1), NumReads: 8, BatchMax: 8, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]Outcome{}
	for _, o := range res.Outcomes {
		byKey[[2]int{o.Stream, o.Seq}] = o
	}
	b0 := byKey[[2]int{0, 0}].Batch
	if byKey[[2]int{0, 1}].Batch != b0 || byKey[[2]int{0, 2}].Batch != b0 {
		t.Fatalf("stream-0 frames split across batches: %v", byKey)
	}
	if byKey[[2]int{1, 0}].Batch == b0 {
		t.Fatal("incompatible schedule (sp=0.6) batched with sp-default frames")
	}
	for seq := 1; seq <= 2; seq++ {
		if byKey[[2]int{0, seq}].Finish <= byKey[[2]int{0, seq - 1}].Finish {
			t.Fatal("same-batch frames should finish staggered in FIFO order")
		}
	}
}

func TestRoundRobinSpreadsDevices(t *testing.T) {
	reqs := uniformRequests(t, 4, 2, 0, 0)
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(4), Policy: PolicyRoundRobin, NumReads: 4, BatchMax: 1, Seed: 1,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, o := range res.Outcomes {
		used[o.Device] = true
	}
	if len(used) != 4 {
		t.Fatalf("round-robin used %d of 4 devices", len(used))
	}
}

func TestValidateRequests(t *testing.T) {
	p := testProblems(t)[0]
	good := func() Request {
		init := make([]int8, p.N)
		return Request{Stream: 0, Seq: 0, Problem: p, InitialState: init}
	}
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"nil problem", func(r *Request) { r.Problem = nil }},
		{"short candidate", func(r *Request) { r.InitialState = r.InitialState[:1] }},
		{"negative arrival", func(r *Request) { r.Arrival = -1 }},
		{"NaN arrival", func(r *Request) { r.Arrival = nan() }},
		{"inf arrival", func(r *Request) { r.Arrival = inf() }},
		{"negative deadline", func(r *Request) { r.Deadline = -5 }},
		{"NaN deadline", func(r *Request) { r.Deadline = nan() }},
		{"bad sp", func(r *Request) { r.Sp = 1.5 }},
		{"negative tp", func(r *Request) { r.Tp = -1 }},
		{"negative reads", func(r *Request) { r.NumReads = -1 }},
		{"huge reads", func(r *Request) { r.NumReads = annealer.MaxReads + 1 }},
		{"negative stream", func(r *Request) { r.Stream = -1 }},
		{"huge seq", func(r *Request) { r.Seq = 1 << 31 }},
	}
	for _, tc := range cases {
		r := good()
		tc.mutate(&r)
		if err := ValidateRequests([]Request{r}); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := ValidateRequests([]Request{good(), good()}); err == nil {
		t.Error("duplicate (stream, seq) passed")
	}
	a, b := good(), good()
	b.Seq, b.Arrival = 1, 0
	a.Arrival = 10 // seq 0 arrives after seq 1
	if err := ValidateRequests([]Request{a, b}); err == nil {
		t.Error("out-of-order per-stream arrivals passed")
	}
}

func TestConfigValidation(t *testing.T) {
	reqs := uniformRequests(t, 1, 1, 0, 0)
	bads := []Config{
		{},
		{Devices: logicalDevices(1), Policy: Policy(99)},
		{Devices: logicalDevices(1), BatchMax: -1},
		{Devices: logicalDevices(1), StreamQueueBound: -1},
		{Devices: logicalDevices(1), FleetQueueBound: -1},
		{Devices: logicalDevices(1), MaxAttempts: -1},
		{Devices: logicalDevices(1), Workers: -1},
		{Devices: logicalDevices(1), Sp: 2},
		{Devices: logicalDevices(1), NumReads: -1},
		{Devices: []Device{{SweepsPerMicrosecond: -1}}},
		{Devices: []Device{{Faults: annealer.FaultModel{ReadTimeoutRate: 2}}}},
		{Devices: logicalDevices(2), DeviceHealth: []float64{1}},
		{Devices: logicalDevices(2), DeviceHealth: []float64{1, 1.5}},
		{Devices: logicalDevices(2), DeviceHealth: []float64{1, nan()}},
	}
	for i, cfg := range bads {
		if _, err := Serve(context.Background(), cfg, reqs); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDeviceHealthRouting: nil health and uniform all-ones health must
// schedule bit-identically (the knob is off by default), while a
// degraded score must steer load away from that device whenever the
// scheduler has a real choice.
func TestDeviceHealthRouting(t *testing.T) {
	// Two streams over three devices: every arrival tick leaves the
	// least-loaded pick a non-forced choice.
	reqs := uniformRequests(t, 2, 9, 100, 0)
	run := func(health []float64) *Result {
		res, err := Serve(context.Background(), Config{
			Devices: logicalDevices(3), NumReads: 4, Seed: 11, DeviceHealth: health,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	count := func(res *Result, dev int) int {
		n := 0
		for i := range res.Outcomes {
			if res.Outcomes[i].Device == dev {
				n++
			}
		}
		return n
	}
	base := run(nil)
	if !reflect.DeepEqual(base.Outcomes, run([]float64{1, 1, 1}).Outcomes) {
		t.Fatal("uniform health changed scheduling")
	}
	if biased := run([]float64{1, 0.05, 1}); count(biased, 1) >= count(base, 1) {
		t.Fatalf("device 1 load did not drop under health 0.05: base %d, biased %d",
			count(base, 1), count(biased, 1))
	}
	if drained := run([]float64{1, 0, 1}); count(drained, 1) >= count(base, 1) {
		t.Fatalf("zero-health device still attracts load: base %d, drained %d",
			count(base, 1), count(drained, 1))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{PolicyLeastLoaded, PolicyRoundRobin, PolicyEDF} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("unknown policy parsed")
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }
