package fleet

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/telemetry"
)

// benchRequests is the paper's reference workload at serving scale: 8
// concurrent streams of 8-user 16-QAM frames (32 logical spins each)
// arriving much faster than one device can drain them, so every stream
// carries a backlog (continuation-filled batches) and added devices
// translate into throughput.
func benchRequests(b *testing.B, frames int) []Request {
	b.Helper()
	var probs []*qubo.Ising
	for seed := uint64(1); seed <= 4; seed++ {
		in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		probs = append(probs, in.Reduction.Ising)
	}
	const streams = 8
	var reqs []Request
	for s := 0; s < streams; s++ {
		for q := 0; q < frames/streams; q++ {
			p := probs[(s+q)%len(probs)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * 100,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

// benchFleetConfig is the Config payload of a fleet benchmark's
// BENCH_*.json record.
type benchFleetConfig struct {
	Devices          int     `json:"devices"`
	Frames           int     `json:"frames"`
	Reads            int     `json:"reads"`
	FramesPerSecond  float64 `json:"frames_per_sec_simulated"`
	P99QueueMicros   float64 `json:"p99_queue_us"`
	P99LatencyMicros float64 `json:"p99_latency_us"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
}

func benchmarkFleetServe(b *testing.B, devices int) {
	reqs := benchRequests(b, 48)
	cfg := Config{
		Devices:          DefaultDevices(devices),
		NumReads:         60,
		BatchMax:         4,
		StreamQueueBound: 64,
		Seed:             1,
	}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	rep := last.Report
	b.ReportMetric(rep.ThroughputPerSecond, "frames/sim-s")
	b.ReportMetric(rep.P99QueueMicros, "p99-queue-µs")
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		cfgRec := benchFleetConfig{
			Devices: devices, Frames: len(reqs), Reads: cfg.NumReads,
			FramesPerSecond: rep.ThroughputPerSecond,
			P99QueueMicros:  rep.P99QueueMicros, P99LatencyMicros: rep.P99LatencyMicros,
			MeanBatchSize: rep.MeanBatchSize,
		}
		rec := telemetry.BenchRecord{
			Name:       fmt.Sprintf("FleetServeDevices%d", devices),
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config:     cfgRec,
			Series: fmt.Sprintf("devices=%d frames=%d fps=%.1f p99_queue_us=%.0f p99_latency_us=%.0f batch=%.2f",
				devices, len(reqs), rep.ThroughputPerSecond, rep.P99QueueMicros, rep.P99LatencyMicros, rep.MeanBatchSize),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetServe(b *testing.B) {
	for _, devices := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			benchmarkFleetServe(b, devices)
		})
	}
}

// benchHybridRequests mixes the reference heavy workload with easy
// 3-user QPSK streams — the shape hybrid routing exists for.
func benchHybridRequests(b *testing.B, frames int) []Request {
	reqs := benchRequests(b, frames/2)
	var easy []*qubo.Ising
	for seed := uint64(1); seed <= 4; seed++ {
		in, err := instance.Synthesize(instance.Spec{Users: 3, Scheme: modulation.QPSK, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		easy = append(easy, in.Reduction.Ising)
	}
	const streams = 8
	for s := 0; s < streams; s++ {
		for q := 0; q < frames/2/streams; q++ {
			p := easy[(s+q)%len(easy)]
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, Request{
				Stream: 100 + s, Seq: q,
				Arrival:      float64(q) * 100,
				Deadline:     4_000,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

// BenchmarkFleetServeHybrid serves the mixed workload on a hybrid pool
// (2 QPU + 1 PT + 1 SA) with hardness/deadline routing — the
// heterogeneous counterpart of BenchmarkFleetServe for the benchdiff job.
func BenchmarkFleetServeHybrid(b *testing.B) {
	reqs := benchHybridRequests(b, 48)
	cfg := Config{
		Devices:          HybridDevices(2, 1, 1),
		Route:            RouteHybrid,
		NumReads:         60,
		BatchMax:         4,
		StreamQueueBound: 64,
		Seed:             1,
	}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	rep := last.Report
	b.ReportMetric(rep.ThroughputPerSecond, "frames/sim-s")
	b.ReportMetric(rep.P99QueueMicros, "p99-queue-µs")
	if dir := os.Getenv(telemetry.BenchJSONDirEnv); dir != "" {
		cfgRec := benchFleetConfig{
			Devices: len(cfg.Devices), Frames: len(reqs), Reads: cfg.NumReads,
			FramesPerSecond: rep.ThroughputPerSecond,
			P99QueueMicros:  rep.P99QueueMicros, P99LatencyMicros: rep.P99LatencyMicros,
			MeanBatchSize: rep.MeanBatchSize,
		}
		rec := telemetry.BenchRecord{
			Name:       "FleetServeHybrid",
			NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Iterations: b.N,
			Config:     cfgRec,
			Series: fmt.Sprintf("devices=%d frames=%d fps=%.1f p99_queue_us=%.0f p99_latency_us=%.0f batch=%.2f",
				len(cfg.Devices), len(reqs), rep.ThroughputPerSecond, rep.P99QueueMicros, rep.P99LatencyMicros, rep.MeanBatchSize),
		}
		if err := telemetry.WriteBenchJSON(dir, rec); err != nil {
			b.Fatal(err)
		}
	}
}
