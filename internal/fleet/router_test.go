package fleet

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func hardProblem(t testing.TB, seed uint64) *qubo.Ising {
	t.Helper()
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in.Reduction.Ising
}

func TestHardnessScale(t *testing.T) {
	if h := Hardness(nil); h != 0 {
		t.Fatalf("nil hardness %g", h)
	}
	easy := Hardness(testProblems(t)[0])
	hard := Hardness(hardProblem(t, 1))
	if easy < 0 || easy > 1 || hard < 0 || hard > 1 {
		t.Fatalf("hardness out of [0,1]: easy %g hard %g", easy, hard)
	}
	if easy >= hard {
		t.Fatalf("6-spin QPSK (%g) not easier than 32-spin 16QAM (%g)", easy, hard)
	}
	// The default threshold must actually split the two workload classes.
	def := RouterConfig{}.withDefaults()
	if easy > def.HardnessThreshold || hard <= def.HardnessThreshold {
		t.Fatalf("default threshold %g does not separate easy %g from hard %g", def.HardnessThreshold, easy, hard)
	}
}

func TestRouteDecisions(t *testing.T) {
	rc := RouterConfig{}
	easy, hard := testProblems(t)[0], hardProblem(t, 2)

	if d := rc.Route(easy, 0, 8); d.Class != ClassClassical {
		t.Fatalf("easy frame with no deadline routed %v", d.Class)
	}
	if d := rc.Route(hard, 0, 8); d.Class != ClassQuantum {
		t.Fatalf("hard frame routed %v", d.Class)
	}
	// A deadline below the slack-padded classical estimate must force the
	// easy frame onto the quantum class.
	est := rc.Route(easy, 0, 8).ClassicalMicros
	if d := rc.Route(easy, est, 8); d.Class != ClassQuantum {
		t.Fatalf("tight easy frame routed %v (deadline %g, estimate %g)", d.Class, est, est)
	}
	if d := rc.Route(easy, 10*est, 8); d.Class != ClassClassical {
		t.Fatalf("loose easy frame routed %v", d.Class)
	}
	// ForceClass overrides scoring in both directions.
	for _, force := range []BackendClass{ClassQuantum, ClassClassical} {
		frc := RouterConfig{ForceClass: force}
		if d := frc.Route(easy, 1, 8); d.Class != force {
			t.Fatalf("forced %v, routed %v", force, d.Class)
		}
		if d := frc.Route(hard, 0, 8); d.Class != force {
			t.Fatalf("forced %v, routed %v", force, d.Class)
		}
	}
}

// TestRouteDeadlineMonotone sweeps deadlines downward over random
// instances: once a frame routes quantum, every tighter deadline must
// also route quantum (tightening never moves work to a slower class).
func TestRouteDeadlineMonotone(t *testing.T) {
	rc := RouterConfig{}
	src := rng.New(99)
	probs := append(append([]*qubo.Ising{}, testProblems(t)...), hardProblem(t, 3))
	for trial := 0; trial < 50; trial++ {
		is := probs[src.Uint64()%uint64(len(probs))]
		reads := int(src.Uint64()%30) + 1
		start := src.Float64() * 100_000
		quantumSeen := false
		for deadline := start; deadline > 1e-3; deadline *= 0.7 {
			d := rc.Route(is, deadline, reads)
			if d.Class == ClassQuantum {
				quantumSeen = true
			} else if quantumSeen {
				t.Fatalf("trial %d: deadline %g routed %v after a looser deadline routed quantum", trial, deadline, d.Class)
			}
		}
	}
}

// TestHybridRoutingConservation serves a mixed workload under hybrid
// routing with faults and a mid-run classical death, then asserts the
// global scheduling invariants: every frame lands on exactly one device
// or shed rung.
func TestHybridRoutingConservation(t *testing.T) {
	devs := heteroDevices()
	devs[2].FailAt = 50_000 // the PT worker dies mid-run
	devs[0].Faults.ProgrammingFailureRate = 0.3
	reqs := mixedWorkload(t, 3, 4)
	res, err := Serve(context.Background(), Config{
		Devices: devs, Route: RouteHybrid, NumReads: 4, Seed: 77,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, reqs, res)
	if res.Report.Route != "hybrid" {
		t.Fatalf("report route %q", res.Report.Route)
	}
}

// mixedWorkload interleaves easy 6-spin streams with loose deadlines and
// hard 32-spin streams with tight ones — the hybrid experiment's shape.
func mixedWorkload(t testing.TB, streams, perStream int) []Request {
	t.Helper()
	easy := testProblems(t)
	var reqs []Request
	for s := 0; s < streams; s++ {
		hard := s%2 == 1
		for q := 0; q < perStream; q++ {
			var p *qubo.Ising
			deadline := 5_000.0
			if hard {
				p = hardProblem(t, uint64(s*perStream+q)+1)
				deadline = 80_000
			} else {
				p = easy[(s*perStream+q)%len(easy)]
			}
			init := make([]int8, p.N)
			for i := range init {
				init[i] = 1
			}
			reqs = append(reqs, Request{
				Stream: s, Seq: q,
				Arrival:      float64(q) * 2_000,
				Deadline:     deadline,
				Problem:      p,
				InitialState: init,
			})
		}
	}
	return reqs
}

// TestHybridClassDie exercises the per-backend fallback rung: when every
// classical device dies, classically-routed frames must fall back to the
// quantum class (route-fallback) instead of starving or shedding.
func TestHybridClassDie(t *testing.T) {
	devs := HybridDevices(1, 1, 0)
	devs[1].FailAt = 1 // classical worker dies immediately
	reqs := mixedWorkload(t, 2, 3)
	res, err := Serve(context.Background(), Config{
		Devices: devs, Route: RouteHybrid, NumReads: 3, Seed: 21,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, reqs, res)
	for _, o := range res.Outcomes {
		if o.Shed && o.ShedReason != ShedDeadlineExpired {
			t.Fatalf("frame (%d,%d) shed with %q after class death", o.Stream, o.Seq, o.ShedReason)
		}
	}
	if res.Report.RouteFallbacks == 0 {
		t.Fatal("no route fallbacks recorded after the classical class died")
	}
}

// TestShedNoCompatibleBackend pins the new shed rung: a problem no live
// backend can hold (QAOA-only pool, 32 spins) sheds with the
// no-compatible-backend reason rather than hanging.
func TestShedNoCompatibleBackend(t *testing.T) {
	big := hardProblem(t, 5)
	reqs := []Request{{
		Stream: 0, Seq: 0, Problem: big, InitialState: make([]int8, big.N),
	}}
	res, err := Serve(context.Background(), Config{
		Devices: []Device{{Backend: BackendQAOA}}, NumReads: 2, Seed: 3,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if !o.Shed || o.ShedReason != ShedNoCompatibleBackend {
		t.Fatalf("outcome %+v, want shed %q", o, ShedNoCompatibleBackend)
	}
	if o.Source != core.AnswerClassicalFallback {
		t.Fatalf("shed source %v", o.Source)
	}
}

// FuzzBackendRoute generates random hybrid pools and workloads, asserting
// the invariants plus per-class placement: a frame routed to a class is
// served by that class unless a fallback or relaxation was recorded.
func FuzzBackendRoute(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(1), uint8(1), uint16(2000), false)
	f.Add(uint64(9), uint8(3), uint8(2), uint8(2), uint8(0), uint16(0), true)
	f.Add(uint64(33), uint8(1), uint8(5), uint8(0), uint8(2), uint16(400), true)
	f.Fuzz(func(t *testing.T, seed uint64, streams, perStream, nQPU, nClassical uint8, deadline uint16, faults bool) {
		ns := int(streams)%4 + 1
		nf := int(perStream)%5 + 1
		nq := int(nQPU) % 3
		nc := int(nClassical) % 3
		if nq+nc == 0 {
			nq = 1
		}
		devs := DefaultDevices(nq)
		kinds := []BackendKind{BackendParallelTempering, BackendSimulatedAnnealing, BackendQAOA}
		for i := 0; i < nc; i++ {
			devs = append(devs, Device{Backend: kinds[(int(seed)+i)%len(kinds)]})
		}
		if faults && len(devs) > 1 {
			devs[0].Faults.ProgrammingFailureRate = 0.4
			devs[len(devs)-1].FailAt = 30_000
		}
		probs := testProblems(t)
		src := rng.New(seed)
		var reqs []Request
		for s := 0; s < ns; s++ {
			arrival := 0.0
			for q := 0; q < nf; q++ {
				p := probs[src.Uint64()%uint64(len(probs))]
				init := make([]int8, p.N)
				for i := range init {
					init[i] = int8(2*int(src.Uint64()&1) - 1)
				}
				arrival += 500 * src.Float64()
				reqs = append(reqs, Request{
					Stream: s, Seq: q, Arrival: arrival, Deadline: float64(deadline),
					Problem: p, InitialState: init,
				})
			}
		}
		cfg := Config{
			Devices: devs, Route: RouteHybrid, NumReads: 2,
			StreamQueueBound: 4, Seed: seed,
		}
		res, err := Serve(context.Background(), cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, reqs, res)
		// Class placement: with no quantum devices, nothing may claim a
		// quantum answer; with no classical devices, no classical-solver
		// answers can appear.
		for _, o := range res.Outcomes {
			if nq == 0 && o.Source == core.AnswerQuantum {
				t.Fatalf("quantum answer from a QPU-free pool: %+v", o)
			}
			if nc == 0 && o.Source == core.AnswerClassicalSolver {
				t.Fatalf("classical-solver answer from a classical-free pool: %+v", o)
			}
		}
	})
}
