package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/modulation"
	"repro/internal/qubo"
	"repro/internal/rng"
)

func TestBackendKindRoundTrip(t *testing.T) {
	for k := BackendQPUSim; k <= BackendQAOA; k++ {
		got, err := ParseBackendKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	for spell, want := range map[string]BackendKind{
		"qpu": BackendQPUSim, "pt": BackendParallelTempering, "sa": BackendSimulatedAnnealing,
	} {
		if got, err := ParseBackendKind(spell); err != nil || got != want {
			t.Fatalf("alias %q: got %v, %v", spell, got, err)
		}
	}
	if _, err := ParseBackendKind("abacus"); err == nil {
		t.Fatal("unknown backend parsed")
	}
}

// TestClassicalServiceModel pins the timing model's shape: positive for
// every kind, linear in reads for the MC solvers, and monotone in problem
// size.
func TestClassicalServiceModel(t *testing.T) {
	p := ClassicalParams{}.withDefaults()
	small := testProblems(t)[0]
	for _, kind := range []BackendKind{BackendSimulatedAnnealing, BackendParallelTempering, BackendQAOA} {
		one := classicalServiceMicros(kind, p, small, 1)
		ten := classicalServiceMicros(kind, p, small, 10)
		if one <= 0 || ten <= one {
			t.Fatalf("%v: service(1)=%g service(10)=%g", kind, one, ten)
		}
		if kind != BackendQAOA && ten != 10*one {
			t.Fatalf("%v: reads not linear: %g vs %g", kind, ten, 10*one)
		}
	}
	// PT runs Replicas sweeps-fuls per read, so it must cost more than SA
	// at equal defaults? Not necessarily (different sweep counts) — but
	// both must grow with problem size.
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	big := in.Reduction.Ising
	for _, kind := range []BackendKind{BackendSimulatedAnnealing, BackendParallelTempering} {
		if classicalServiceMicros(kind, p, big, 4) <= classicalServiceMicros(kind, p, small, 4) {
			t.Fatalf("%v: larger problem not slower", kind)
		}
	}
}

// TestRunClassicalFindsGround checks the quality model: on tiny instances
// every classical backend's best-of-reads matches the exhaustive ground
// energy, and repeated runs with one RNG key are bit-identical.
func TestRunClassicalFindsGround(t *testing.T) {
	p := ClassicalParams{}.withDefaults()
	for _, is := range testProblems(t) {
		want, err := qubo.ExhaustiveIsing(is)
		if err != nil {
			t.Fatal(err)
		}
		init := make([]int8, is.N)
		for i := range init {
			init[i] = 1
		}
		for _, kind := range []BackendKind{BackendSimulatedAnnealing, BackendParallelTempering, BackendQAOA} {
			best, mean, err := runClassical(kind, p, is, init, 8, rng.New(42))
			if err != nil {
				t.Fatal(err)
			}
			// Incremental FlipDelta accumulation vs the exhaustive direct
			// evaluation differ at float rounding scale; compare within it.
			if kind != BackendQAOA && math.Abs(best.Energy-want.Energy) > 1e-9 {
				t.Fatalf("%v: best %g, exhaustive ground %g", kind, best.Energy, want.Energy)
			}
			// QAOA samples from a shallow circuit; require it close on a
			// 6-spin instance rather than exact.
			if kind == BackendQAOA && best.Energy > want.Energy+1e-9 && mean == best.Energy {
				t.Fatalf("qaoa: degenerate sampling (best=mean=%g, ground %g)", best.Energy, want.Energy)
			}
			if best.Energy > mean+1e-9 {
				t.Fatalf("%v: best %g above mean %g", kind, best.Energy, mean)
			}
			again, meanAgain, err := runClassical(kind, p, is, init, 8, rng.New(42))
			if err != nil {
				t.Fatal(err)
			}
			if again.Energy != best.Energy || meanAgain != mean {
				t.Fatalf("%v: re-run diverged", kind)
			}
		}
	}
}

// heteroDevices is the canonical mixed pool the heterogeneous tests
// serve from: two spread QPUs, one parallel-tempering worker, one
// simulated-annealing worker.
func heteroDevices() []Device {
	return HybridDevices(2, 1, 1)
}

func TestServeHeterogeneousPool(t *testing.T) {
	reqs := uniformRequests(t, 4, 4, 300, 0)
	res, err := Serve(context.Background(), Config{
		Devices: heteroDevices(), NumReads: 4, Seed: 7,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, reqs, res)
	classical := 0
	for _, o := range res.Outcomes {
		if o.Shed {
			continue
		}
		if o.Backend == "" {
			t.Fatalf("served frame (%d,%d) missing backend label", o.Stream, o.Seq)
		}
		switch o.Source {
		case core.AnswerQuantum, core.AnswerClassicalCandidate, core.AnswerClassicalSolver:
		default:
			t.Fatalf("frame (%d,%d): unexpected source %v", o.Stream, o.Seq, o.Source)
		}
		if o.Backend != BackendQPUSim.String() {
			classical++
			if o.Source == core.AnswerQuantum {
				t.Fatalf("frame (%d,%d): classical backend %s reported a quantum answer", o.Stream, o.Seq, o.Backend)
			}
		}
	}
	if classical == 0 {
		t.Fatal("no frame landed on a classical backend (classical setup is 50 µs vs 10 ms QPU programming — they should win easy work)")
	}
	if len(res.Report.Backends) == 0 {
		t.Fatal("heterogeneous report has no backend stats")
	}
	var table bytes.Buffer
	if err := res.Report.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(table.Bytes(), []byte("parallel-tempering")) {
		t.Fatal("report table missing backend section")
	}
}

// TestServeQAOABackend runs a pool containing a QAOA statevector worker:
// small problems must serve there, and a problem above the qubit cap must
// route around it rather than fail.
func TestServeQAOABackend(t *testing.T) {
	devs := []Device{{Backend: BackendQAOA}, {SweepsPerMicrosecond: 30}}
	in, err := instance.Synthesize(instance.Spec{Users: 8, Scheme: modulation.QAM16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big := in.Reduction.Ising // 32 spins > qaoa.MaxQubits
	reqs := uniformRequests(t, 2, 3, 200, 0)
	reqs = append(reqs, Request{
		Stream: 9, Seq: 0, Problem: big, InitialState: make([]int8, big.N),
	})
	res, err := Serve(context.Background(), Config{Devices: devs, NumReads: 3, Seed: 5}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, reqs, res)
	qaoaServed := false
	for _, o := range res.Outcomes {
		if o.Stream == 9 {
			if o.Shed {
				t.Fatal("oversized frame shed instead of routed to the QPU")
			}
			if o.Backend == BackendQAOA.String() {
				t.Fatal("32-spin frame landed on the 20-qubit QAOA backend")
			}
		}
		if o.Backend == BackendQAOA.String() {
			qaoaServed = true
		}
	}
	if !qaoaServed {
		t.Fatal("no frame served by the QAOA backend")
	}
}

// TestHomogeneousOutcomesUnchanged pins the gating: a homogeneous QPU
// pool's outcomes contain no backend labels and its report no backend
// section, so pre-heterogeneous artifacts stay byte-identical.
func TestHomogeneousOutcomesUnchanged(t *testing.T) {
	reqs := uniformRequests(t, 2, 3, 100, 0)
	res, err := Serve(context.Background(), Config{
		Devices: logicalDevices(2), NumReads: 3, Seed: 11,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(res.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(j, []byte(`"backend"`)) {
		t.Fatal("homogeneous outcomes grew a backend field")
	}
	if res.Report.Backends != nil || res.Report.Route != "" {
		t.Fatal("homogeneous report grew backend stats")
	}
	for _, d := range res.Report.Devices {
		if d.Backend != "" {
			t.Fatal("homogeneous device stats grew a backend label")
		}
	}
}
